// Package torture is the crash-consistency torture harness: it drives a
// randomized workload (durable inserts, reorganizations, leveled
// compactions, drops, checkpoints, scans) against a database living on a
// fault-injecting in-memory file system, and at EVERY write and sync the
// store issues it simulates a power cut — snapshotting what a crash at that
// instant would leave on disk, reopening the snapshot through full
// recovery, and verifying it against a model of committed state.
//
// The invariants checked at every kill point:
//
//   - No acknowledged commit is ever lost: every row the model holds must
//     come back from a scan of the recovered snapshot.
//   - Atomicity: the recovered state may additionally contain the one batch
//     whose insert was in flight at the kill point — all of it or none of
//     it, never a partial batch.
//   - No divergence: recovered payloads must match the model exactly, and
//     during reorganizations, compactions or drops the recovered catalog
//     must be wholly old or wholly new — a power cut mid-compaction must
//     never lose acknowledged rows or resurface data from freed runs.
//
// Between operations the harness also power-cuts the live store itself
// (cycling drop/keep semantics) and reopens it, verifying an exact match.
// Snapshot kills cycle CrashDrop and CrashKeep; CrashTorn is exercised by
// the WAL-tail recovery tests (a torn page-file header write is a known
// limitation, documented in DESIGN.md).
package torture

import (
	"fmt"
	"math/rand"
	"sort"

	"rodentstore"
	"rodentstore/internal/vfs"
)

// dbPath is the database's name inside the fault FS namespace.
const dbPath = "torture.rdnt"

// maxRows caps a table's size: past it the next operation on the table is a
// drop-and-recreate, keeping per-kill-point verification affordable (and
// exercising the drop path).
const maxRows = 400

// Config parameterizes a torture run.
type Config struct {
	// Ops is how many workload operations to run.
	Ops int
	// Seed seeds the workload and the fault FS (same seed, same run).
	Seed int64
}

// Stats counts what a run covered.
type Stats struct {
	Ops, Inserts, Reorgs, Compacts, Checkpoints, Drops, Scans, Crashes int
	// KillPoints is how many write/sync points were crash-checked.
	KillPoints int
}

// inflight describes the operation whose I/O is currently executing, for the
// atomicity rule at kill points.
type inflight struct {
	kind  string // "" | "insert" | "drop"
	table string
	batch map[int64]string // insert: the not-yet-acknowledged rows
}

type harness struct {
	cfg      Config
	fs       *vfs.Fault
	db       *rodentstore.DB
	rng      *rand.Rand
	model    map[string]map[int64]string // table -> id -> payload (committed)
	layouts  map[string]string
	cur      inflight
	nextID   int64
	nextKill int
	stats    Stats
	checkErr error // first kill-point verification failure
}

// Run executes one torture run and returns what it covered; a non-nil error
// is a consistency violation (or a workload operation failing outright).
func Run(cfg Config) (Stats, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 100
	}
	h := &harness{
		cfg:   cfg,
		fs:    vfs.NewFault(cfg.Seed),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		model: make(map[string]map[int64]string),
		layouts: map[string]string{
			"alpha": "rows(alpha)",
			"beta":  "cols(beta)",
			// gamma keeps a leveled run hierarchy: tiny blocks (chunk[16])
			// shrink the per-level row targets so tail folds, in-place merges
			// and level promotions all happen within maxRows — kill points
			// land inside every phase of a compaction.
			"gamma": "leveled[2](chunk[16](rows(gamma)))",
		},
	}
	if err := h.setup(); err != nil {
		return h.stats, err
	}
	// Every write/sync from here on is a kill point.
	h.fs.OnOp = h.onOp
	err := h.loop()
	h.fs.OnOp = nil
	if err != nil {
		return h.stats, err
	}
	return h.stats, h.db.Close()
}

func (h *harness) setup() error {
	db, err := rodentstore.Create(dbPath, &rodentstore.Options{FS: h.fs, DurableInserts: true})
	if err != nil {
		return err
	}
	h.db = db
	names := h.tableNames()
	for _, name := range names {
		if err := h.createTable(name); err != nil {
			return err
		}
	}
	// Make the empty schema durable: Create/CreateTable write without
	// syncing, and the harness only guarantees what a checkpoint or a
	// durable insert acknowledged.
	if err := h.db.Checkpoint(); err != nil {
		return err
	}
	for _, name := range names {
		h.model[name] = make(map[int64]string)
	}
	return nil
}

func (h *harness) tableNames() []string {
	names := make([]string, 0, len(h.layouts))
	for name := range h.layouts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// createTable registers the table; the caller adds it to the model only
// once a checkpoint has committed it (kill points before then may recover a
// state without it).
func (h *harness) createTable(name string) error {
	return h.db.CreateTable(name, []rodentstore.Field{
		{Name: "id", Type: rodentstore.Int},
		{Name: "p", Type: rodentstore.String},
	}, h.layouts[name])
}

func payloadOf(id int64) string { return fmt.Sprintf("row-%d-%x", id, id*2654435761) }

func (h *harness) loop() error {
	for i := 0; i < h.cfg.Ops; i++ {
		if h.checkErr != nil {
			return h.checkErr
		}
		h.stats.Ops++
		name := h.tableNames()[h.rng.Intn(len(h.layouts))]
		var err error
		switch {
		case len(h.model[name]) > maxRows:
			err = h.opDrop(name)
		default:
			switch p := h.rng.Intn(100); {
			case p < 55:
				err = h.opInsert(name)
			case p < 68:
				err = h.opScan(name)
			case p < 75:
				err = h.opCompact(name)
			case p < 80:
				err = h.opReorganize(name)
			case p < 88:
				h.stats.Checkpoints++
				err = h.db.Checkpoint()
			case p < 95:
				err = h.opCrashReopen()
			default:
				err = h.opDrop(name)
			}
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	if h.checkErr != nil {
		return h.checkErr
	}
	// Final full verification through a real power cut.
	return h.opCrashReopen()
}

func (h *harness) opInsert(name string) error {
	h.stats.Inserts++
	n := 1 + h.rng.Intn(4)
	batch := make(map[int64]string, n)
	rows := make([]rodentstore.Row, 0, n)
	for j := 0; j < n; j++ {
		id := h.nextID
		h.nextID++
		batch[id] = payloadOf(id)
		rows = append(rows, rodentstore.Row{rodentstore.IntValue(id), rodentstore.StringValue(batch[id])})
	}
	h.cur = inflight{kind: "insert", table: name, batch: batch}
	err := h.db.Insert(name, rows)
	h.cur = inflight{}
	if err != nil {
		return err
	}
	// Acknowledged: the batch is committed state from here on.
	for id, p := range batch {
		h.model[name][id] = p
	}
	return nil
}

func (h *harness) opScan(name string) error {
	h.stats.Scans++
	got, err := scanAll(h.db, name)
	if err != nil {
		return err
	}
	return diff(h.model[name], got, nil)
}

func (h *harness) opReorganize(name string) error {
	h.stats.Reorgs++
	return h.db.Reorganize(name)
}

// opCompact folds the table's tails into its run hierarchy (for gamma's
// leveled layout) or falls back to a full reorganization (alpha, beta) —
// both under live kill points, so every write inside a fold is crash-checked.
func (h *harness) opCompact(name string) error {
	h.stats.Compacts++
	return h.db.Compact(name)
}

func (h *harness) opDrop(name string) error {
	h.stats.Drops++
	h.cur = inflight{kind: "drop", table: name}
	err := h.db.DropTable(name)
	h.cur = inflight{}
	if err != nil {
		return err
	}
	delete(h.model, name)
	// Recreate immediately. Until the checkpoint commits the new table,
	// kill points may recover a state without it, so it re-enters the model
	// only afterwards.
	if err := h.createTable(name); err != nil {
		return err
	}
	if err := h.db.Checkpoint(); err != nil {
		return err
	}
	h.model[name] = make(map[int64]string)
	return nil
}

// opCrashReopen power-cuts the live store and reopens it through recovery.
// No operation is in flight, so the recovered state must match the model
// exactly. Kill points keep firing during recovery's own writes.
func (h *harness) opCrashReopen() error {
	h.stats.Crashes++
	mode := vfs.CrashDrop
	if h.stats.Crashes%2 == 0 {
		mode = vfs.CrashKeep
	}
	h.fs.Crash(mode)
	db, err := rodentstore.OpenWithOptions(dbPath, &rodentstore.Options{FS: h.fs, DurableInserts: true})
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	h.db = db
	for _, name := range h.tableNames() {
		if _, ok := h.model[name]; !ok {
			continue
		}
		got, err := scanAll(h.db, name)
		if err != nil {
			return fmt.Errorf("scan %s after crash: %w", name, err)
		}
		if err := diff(h.model[name], got, nil); err != nil {
			return fmt.Errorf("table %s after crash: %w", name, err)
		}
	}
	return nil
}

// onOp is the kill-point hook: at every write and sync, verify the state a
// power cut at this instant would recover to.
func (h *harness) onOp(op vfs.Op) {
	if h.checkErr != nil {
		return
	}
	if op.Kind != vfs.OpWrite && op.Kind != vfs.OpSync {
		return
	}
	mode := vfs.CrashDrop
	if h.nextKill%2 == 1 {
		mode = vfs.CrashKeep
	}
	h.nextKill++
	h.stats.KillPoints++
	imgs := h.fs.SnapshotCrash(mode)
	if err := h.verifySnapshot(imgs); err != nil {
		h.checkErr = fmt.Errorf("kill point at op %d (%v %s off=%d len=%d, mode=%d): %w",
			op.N, op.Kind, op.Path, op.Off, op.Len, mode, err)
	}
}

// verifySnapshot opens the crash image through full recovery and checks the
// committed-state invariants.
func (h *harness) verifySnapshot(imgs map[string]vfs.Image) error {
	snapFS := vfs.NewFaultFromImages(h.cfg.Seed, imgs)
	db, err := rodentstore.OpenWithOptions(dbPath, &rodentstore.Options{FS: snapFS, DurableInserts: true})
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	defer db.Close()
	live := make(map[string]bool)
	for _, t := range db.Tables() {
		live[t] = true
	}
	for _, name := range h.tableNames() {
		want, ok := h.model[name]
		if !ok {
			continue // mid-recreate; nothing committed to check
		}
		if !live[name] {
			if h.cur.kind == "drop" && h.cur.table == name {
				continue // the in-flight drop may or may not have committed
			}
			return fmt.Errorf("table %s missing after recovery", name)
		}
		got, err := scanAll(db, name)
		if err != nil {
			return fmt.Errorf("scan %s: %w", name, err)
		}
		var pending map[int64]string
		if h.cur.kind == "insert" && h.cur.table == name {
			pending = h.cur.batch
		}
		if err := diff(want, got, pending); err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
	}
	return nil
}

// scanAll drains one table into an id -> payload map.
func scanAll(db *rodentstore.DB, name string) (map[int64]string, error) {
	cur, err := db.Scan(name, rodentstore.Query{})
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	out := make(map[int64]string)
	for {
		row, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		id := row[0].Int()
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("row id %d returned twice", id)
		}
		out[id] = row[1].Str()
	}
}

// diff enforces the committed-state invariants: every model row present with
// the right payload, and any extra rows exactly equal to the pending batch
// (or absent entirely).
func diff(want, got, pending map[int64]string) error {
	for id, p := range want {
		gp, ok := got[id]
		if !ok {
			return fmt.Errorf("acknowledged row %d lost", id)
		}
		if gp != p {
			return fmt.Errorf("row %d diverged: got %q, want %q", id, gp, p)
		}
	}
	var extra []int64
	for id := range got {
		if _, ok := want[id]; !ok {
			extra = append(extra, id)
		}
	}
	if len(extra) == 0 {
		return nil
	}
	if pending == nil {
		return fmt.Errorf("%d rows present that were never committed (first: %d)", len(extra), extra[0])
	}
	// Atomicity: extra rows must be exactly the in-flight batch.
	if len(extra) != len(pending) {
		return fmt.Errorf("partial in-flight batch recovered: %d of %d rows", len(extra), len(pending))
	}
	for _, id := range extra {
		p, ok := pending[id]
		if !ok {
			return fmt.Errorf("row %d present but neither committed nor in flight", id)
		}
		if got[id] != p {
			return fmt.Errorf("in-flight row %d diverged: got %q, want %q", id, got[id], p)
		}
	}
	return nil
}
