package torture

import (
	"flag"
	"testing"
)

// tortureOps is tunable so CI can run a longer campaign:
//
//	go test ./internal/torture -run TestTorture -torture.ops=2000
var tortureOps = flag.Int("torture.ops", 120, "workload operations per torture run")

// TestTorture runs the randomized crash-consistency campaign: every write
// and sync point is a simulated power cut, recovered and verified against
// the committed-state model.
func TestTorture(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		st, err := Run(Config{Ops: *tortureOps, Seed: seed})
		t.Logf("seed %d: %d ops (%d inserts, %d reorgs, %d compacts, %d drops, %d ckpts, %d scans), %d crashes, %d kill points",
			seed, st.Ops, st.Inserts, st.Reorgs, st.Compacts, st.Drops, st.Checkpoints, st.Scans, st.Crashes, st.KillPoints)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.KillPoints == 0 {
			t.Fatalf("seed %d: no kill points exercised", seed)
		}
		if st.Compacts == 0 {
			t.Fatalf("seed %d: no compaction ops exercised", seed)
		}
	}
}
