// Package rtree implements a disk-backed 2-D R-tree — the spatial index the
// paper's case study compares against (§6): "a relatively common approach to
// index spatial objects using a secondary R-Tree over the trajectories".
//
// Entries are (bounding box, uint64 reference) pairs; the reference is
// opaque to the tree (the Figure 2 benchmark stores row ranges of trajectory
// chunks in it, reproducing the paper's observation that dense trajectory
// data yields many overlapping boxes, each requiring a random I/O).
//
// Construction supports both one-at-a-time insertion (Guttman's quadratic
// split) and Sort-Tile-Recursive bulk loading. Nodes live in pager pages so
// index I/O is measured by the same counters as data I/O.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"rodentstore/internal/pager"
)

// Rect is an axis-aligned bounding box.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Point returns a degenerate rect for a point.
func Point(x, y float64) Rect { return Rect{x, y, x, y} }

// Intersects reports whether two rects overlap (closed boundaries).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether r fully contains o.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// Union returns the smallest rect covering both.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		math.Min(r.MinX, o.MinX), math.Min(r.MinY, o.MinY),
		math.Max(r.MaxX, o.MaxX), math.Max(r.MaxY, o.MaxY),
	}
}

// Area returns the rect's area.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// Enlargement returns the area growth of r needed to cover o.
func (r Rect) Enlargement(o Rect) float64 { return r.Union(o).Area() - r.Area() }

// Entry is one node slot: a box plus either a child page (internal) or an
// opaque reference (leaf).
type Entry struct {
	Rect Rect
	Ref  uint64 // leaf: caller reference; internal: child PageID
}

const (
	nodeHeader = 1 + 2   // isLeaf + count
	entrySize  = 4*8 + 8 // four float64 + ref
	emptyRoot  = pager.PageID(0)
)

// Tree is a disk-backed R-tree.
type Tree struct {
	file *pager.File
	root pager.PageID
	max  int // max entries per node (derived from page size)
}

type node struct {
	isLeaf  bool
	entries []Entry
}

// New creates an empty tree.
func New(file *pager.File) (*Tree, error) {
	t := &Tree{file: file, max: maxEntries(file)}
	id, err := file.Allocate()
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(id, &node{isLeaf: true}); err != nil {
		return nil, err
	}
	t.root = id
	return t, nil
}

// Open attaches to an existing tree.
func Open(file *pager.File, root pager.PageID) *Tree {
	return &Tree{file: file, root: root, max: maxEntries(file)}
}

func maxEntries(file *pager.File) int {
	m := (file.PayloadSize() - nodeHeader) / entrySize
	if m < 4 {
		m = 4
	}
	return m
}

// Root returns the root page id (persist to reopen).
func (t *Tree) Root() pager.PageID { return t.root }

// MaxEntries returns the node fan-out.
func (t *Tree) MaxEntries() int { return t.max }

func (t *Tree) readNode(id pager.PageID) (*node, error) {
	buf, err := t.file.ReadPage(id)
	if err != nil {
		return nil, err
	}
	n := &node{isLeaf: buf[0] == 1}
	count := int(binary.LittleEndian.Uint16(buf[1:]))
	off := nodeHeader
	for i := 0; i < count; i++ {
		var e Entry
		e.Rect.MinX = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		e.Rect.MinY = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		e.Rect.MaxX = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:]))
		e.Rect.MaxY = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:]))
		e.Ref = binary.LittleEndian.Uint64(buf[off+32:])
		off += entrySize
		n.entries = append(n.entries, e)
	}
	return n, nil
}

func (t *Tree) writeNode(id pager.PageID, n *node) error {
	if len(n.entries) > t.max {
		return fmt.Errorf("rtree: node overflow: %d entries (max %d)", len(n.entries), t.max)
	}
	buf := make([]byte, 0, nodeHeader+len(n.entries)*entrySize)
	if n.isLeaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.entries)))
	for _, e := range n.entries {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.MinX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.MinY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.MaxX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.MaxY))
		buf = binary.LittleEndian.AppendUint64(buf, e.Ref)
	}
	return t.file.WritePage(id, buf)
}

// Insert adds one entry (Guttman: choose-leaf by least enlargement,
// quadratic split on overflow).
func (t *Tree) Insert(rect Rect, ref uint64) error {
	split, err := t.insert(t.root, Entry{rect, ref})
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// Root split.
	oldRootRect, err := t.nodeRect(t.root)
	if err != nil {
		return err
	}
	newRootID, err := t.file.Allocate()
	if err != nil {
		return err
	}
	newRoot := &node{isLeaf: false, entries: []Entry{
		{oldRootRect, uint64(t.root)},
		*split,
	}}
	if err := t.writeNode(newRootID, newRoot); err != nil {
		return err
	}
	t.root = newRootID
	return nil
}

func (t *Tree) nodeRect(id pager.PageID) (Rect, error) {
	n, err := t.readNode(id)
	if err != nil {
		return Rect{}, err
	}
	return coverOf(n.entries), nil
}

func coverOf(entries []Entry) Rect {
	if len(entries) == 0 {
		return Rect{}
	}
	r := entries[0].Rect
	for _, e := range entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// insert returns a new sibling entry if the node split.
func (t *Tree) insert(id pager.PageID, e Entry) (*Entry, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	if n.isLeaf {
		n.entries = append(n.entries, e)
		if len(n.entries) <= t.max {
			return nil, t.writeNode(id, n)
		}
		return t.split(id, n)
	}
	// Choose subtree with least enlargement (ties: smaller area).
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range n.entries {
		enl := c.Rect.Enlargement(e.Rect)
		area := c.Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := pager.PageID(n.entries[best].Ref)
	split, err := t.insert(child, e)
	if err != nil {
		return nil, err
	}
	r, err := t.nodeRect(child)
	if err != nil {
		return nil, err
	}
	n.entries[best].Rect = r
	if split != nil {
		n.entries = append(n.entries, *split)
	}
	if len(n.entries) <= t.max {
		return nil, t.writeNode(id, n)
	}
	return t.split(id, n)
}

// split performs a quadratic split of an overflowing node, writing the left
// half back to id and the right half to a new page; it returns the new
// sibling's entry.
func (t *Tree) split(id pager.PageID, n *node) (*Entry, error) {
	// Pick seeds: the pair wasting the most area together.
	worst, s1, s2 := math.Inf(-1), 0, 1
	for i := 0; i < len(n.entries); i++ {
		for j := i + 1; j < len(n.entries); j++ {
			waste := n.entries[i].Rect.Union(n.entries[j].Rect).Area() -
				n.entries[i].Rect.Area() - n.entries[j].Rect.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	left := &node{isLeaf: n.isLeaf, entries: []Entry{n.entries[s1]}}
	right := &node{isLeaf: n.isLeaf, entries: []Entry{n.entries[s2]}}
	lRect, rRect := n.entries[s1].Rect, n.entries[s2].Rect
	minFill := t.max / 4
	var rest []Entry
	for i, e := range n.entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for i, e := range rest {
		remaining := len(rest) - i
		// Force assignment if a side must take everything to reach min fill.
		if len(left.entries)+remaining <= minFill {
			left.entries = append(left.entries, e)
			lRect = lRect.Union(e.Rect)
			continue
		}
		if len(right.entries)+remaining <= minFill {
			right.entries = append(right.entries, e)
			rRect = rRect.Union(e.Rect)
			continue
		}
		if lRect.Enlargement(e.Rect) <= rRect.Enlargement(e.Rect) {
			left.entries = append(left.entries, e)
			lRect = lRect.Union(e.Rect)
		} else {
			right.entries = append(right.entries, e)
			rRect = rRect.Union(e.Rect)
		}
	}
	rightID, err := t.file.Allocate()
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(rightID, right); err != nil {
		return nil, err
	}
	if err := t.writeNode(id, left); err != nil {
		return nil, err
	}
	return &Entry{rRect, uint64(rightID)}, nil
}

// Search visits every leaf entry whose box intersects query. fn returns
// false to stop. Node page reads are counted by the pager.
func (t *Tree) Search(query Rect, fn func(Entry) bool) error {
	stack := []pager.PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for _, e := range n.entries {
			if !e.Rect.Intersects(query) {
				continue
			}
			if n.isLeaf {
				if !fn(e) {
					return nil
				}
			} else {
				stack = append(stack, pager.PageID(e.Ref))
			}
		}
	}
	return nil
}

// Height returns the tree height (1 = single leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if n.isLeaf || len(n.entries) == 0 {
			return h, nil
		}
		h++
		id = pager.PageID(n.entries[0].Ref)
	}
}

// BulkLoad builds a tree from entries with Sort-Tile-Recursive packing:
// sort by center X, tile into vertical slices of √(n/capacity) nodes, sort
// each slice by center Y, pack. Much better clustering than repeated
// inserts for static data.
func BulkLoad(file *pager.File, entries []Entry) (*Tree, error) {
	t := &Tree{file: file, max: maxEntries(file)}
	if len(entries) == 0 {
		return New(file)
	}
	level := make([]Entry, len(entries))
	copy(level, entries)
	isLeaf := true
	for {
		packed, ids, err := t.packLevel(level, isLeaf)
		if err != nil {
			return nil, err
		}
		if len(ids) == 1 {
			t.root = ids[0]
			return t, nil
		}
		level = packed
		isLeaf = false
	}
}

// packLevel groups entries into nodes STR-style and writes them, returning
// the parent-level entries and the node ids.
func (t *Tree) packLevel(entries []Entry, isLeaf bool) ([]Entry, []pager.PageID, error) {
	cap := t.max * 3 / 4 // leave slack for later inserts
	if cap < 1 {
		cap = 1
	}
	nnodes := (len(entries) + cap - 1) / cap
	nslices := int(math.Ceil(math.Sqrt(float64(nnodes))))
	perSlice := nslices * cap

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.MinX+entries[i].Rect.MaxX < entries[j].Rect.MinX+entries[j].Rect.MaxX
	})
	var parents []Entry
	var ids []pager.PageID
	for s := 0; s < len(entries); s += perSlice {
		hi := s + perSlice
		if hi > len(entries) {
			hi = len(entries)
		}
		slice := entries[s:hi]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.MinY+slice[i].Rect.MaxY < slice[j].Rect.MinY+slice[j].Rect.MaxY
		})
		for o := 0; o < len(slice); o += cap {
			oh := o + cap
			if oh > len(slice) {
				oh = len(slice)
			}
			id, err := t.file.Allocate()
			if err != nil {
				return nil, nil, err
			}
			nd := &node{isLeaf: isLeaf, entries: slice[o:oh]}
			if err := t.writeNode(id, nd); err != nil {
				return nil, nil, err
			}
			parents = append(parents, Entry{coverOf(nd.entries), uint64(id)})
			ids = append(ids, id)
		}
	}
	return parents, ids, nil
}
