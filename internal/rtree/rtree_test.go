package rtree

import (
	"math/rand"
	"path/filepath"
	"testing"

	"rodentstore/internal/pager"
)

func newFile(t *testing.T) *pager.File {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "rt.rdnt"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	c := Rect{5, 5, 6, 6}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a,b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a,c should not intersect")
	}
	if !a.Intersects(Rect{2, 2, 4, 4}) {
		t.Error("touching boundaries intersect (closed rects)")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 3}) {
		t.Errorf("union: %+v", u)
	}
	if a.Area() != 4 {
		t.Errorf("area: %f", a.Area())
	}
	if got := a.Enlargement(b); got != 5 {
		t.Errorf("enlargement: %f", got)
	}
	if !u.Contains(a) || a.Contains(u) {
		t.Error("contains wrong")
	}
	p := Point(1, 1)
	if p.Area() != 0 || !a.Contains(p) {
		t.Error("point rect wrong")
	}
}

func bruteForce(pts []Rect, q Rect) map[uint64]bool {
	out := make(map[uint64]bool)
	for i, p := range pts {
		if p.Intersects(q) {
			out[uint64(i)] = true
		}
	}
	return out
}

func randomPoints(n int, seed int64) []Rect {
	r := rand.New(rand.NewSource(seed))
	pts := make([]Rect, n)
	for i := range pts {
		pts[i] = Point(r.Float64()*100, r.Float64()*100)
	}
	return pts
}

func checkQueries(t *testing.T, tr *Tree, pts []Rect, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for q := 0; q < 30; q++ {
		x, y := r.Float64()*90, r.Float64()*90
		query := Rect{x, y, x + 10, y + 10}
		want := bruteForce(pts, query)
		got := make(map[uint64]bool)
		err := tr.Search(query, func(e Entry) bool {
			got[e.Ref] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
		for ref := range want {
			if !got[ref] {
				t.Fatalf("query %d: missing ref %d", q, ref)
			}
		}
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	f := newFile(t)
	tr, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(2000, 7)
	for i, p := range pts {
		if err := tr.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkQueries(t, tr, pts, 8)
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	f := newFile(t)
	pts := randomPoints(5000, 9)
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{p, uint64(i)}
	}
	tr, err := BulkLoad(f, entries)
	if err != nil {
		t.Fatal(err)
	}
	checkQueries(t, tr, pts, 10)
}

func TestBulkLoadBetterClusteringThanInsert(t *testing.T) {
	// STR packing should answer window queries with fewer node reads than
	// repeated-insert construction on the same data.
	pts := randomPoints(4000, 11)
	query := Rect{40, 40, 50, 50}

	fIns := newFile(t)
	trIns, _ := New(fIns)
	for i, p := range pts {
		trIns.Insert(p, uint64(i))
	}
	fIns.ResetStats()
	trIns.Search(query, func(Entry) bool { return true })
	insReads := fIns.Stats().PageReads

	fBulk := newFile(t)
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{p, uint64(i)}
	}
	trBulk, _ := BulkLoad(fBulk, entries)
	fBulk.ResetStats()
	trBulk.Search(query, func(Entry) bool { return true })
	bulkReads := fBulk.Stats().PageReads

	if bulkReads > insReads {
		t.Errorf("bulk-loaded tree reads more pages: bulk=%d insert=%d", bulkReads, insReads)
	}
}

func TestEmptyTree(t *testing.T) {
	f := newFile(t)
	tr, _ := New(f)
	count := 0
	tr.Search(Rect{0, 0, 100, 100}, func(Entry) bool { count++; return true })
	if count != 0 {
		t.Errorf("empty tree returned %d", count)
	}
	if h, _ := tr.Height(); h != 1 {
		t.Errorf("empty height: %d", h)
	}
	empty, err := BulkLoad(newFile(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	empty.Search(Rect{0, 0, 1, 1}, func(Entry) bool { t.Error("hit in empty"); return true })
}

func TestEarlyStop(t *testing.T) {
	f := newFile(t)
	tr, _ := New(f)
	for i := 0; i < 100; i++ {
		tr.Insert(Point(float64(i%10), float64(i/10)), uint64(i))
	}
	count := 0
	tr.Search(Rect{0, 0, 10, 10}, func(Entry) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop: %d", count)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.rdnt")
	f, _ := pager.Create(path, 1024)
	pts := randomPoints(1000, 13)
	tr, _ := New(f)
	for i, p := range pts {
		tr.Insert(p, uint64(i))
	}
	f.MetaSet(7, uint64(tr.Root()))
	f.Close()

	f2, _ := pager.Open(path)
	defer f2.Close()
	tr2 := Open(f2, pager.PageID(f2.MetaGet(7)))
	checkQueries(t, tr2, pts, 14)
}

func TestRectEntries(t *testing.T) {
	// Non-point rects (trajectory bounding boxes).
	f := newFile(t)
	tr, _ := New(f)
	boxes := []Rect{
		{0, 0, 10, 10},
		{5, 5, 15, 15},
		{20, 20, 30, 30},
		{0, 20, 10, 30},
	}
	for i, b := range boxes {
		tr.Insert(b, uint64(i))
	}
	got := map[uint64]bool{}
	tr.Search(Rect{8, 8, 9, 9}, func(e Entry) bool { got[e.Ref] = true; return true })
	if !got[0] || !got[1] || got[2] || got[3] {
		t.Errorf("box query: %v", got)
	}
}

func TestHeightGrows(t *testing.T) {
	f := newFile(t)
	tr, _ := New(f)
	for i := 0; i < 3000; i++ {
		tr.Insert(Point(float64(i%100), float64(i/100)), uint64(i))
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("3000 points must split 1KB nodes: height %d", h)
	}
}

func BenchmarkInsert(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "rt.rdnt"), 4096)
	defer f.Close()
	tr, _ := New(f)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Point(r.Float64()*100, r.Float64()*100), uint64(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "rt.rdnt"), 4096)
	defer f.Close()
	pts := randomPoints(50000, 2)
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{p, uint64(i)}
	}
	tr, _ := BulkLoad(f, entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % 90)
		tr.Search(Rect{x, x, x + 10, x + 10}, func(Entry) bool { return true })
	}
}
