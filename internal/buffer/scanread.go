package buffer

// Scan-resistant coalesced reads. A large scan that leases every page it
// touches marches straight through the CLOCK shards, evicting the hot
// point-lookup working set for pages that will not be touched again — the
// classic sequential-flooding failure. ReadRunInto is the pool's coalesced
// read path with a single-touch bypass lane: resident pages are served from
// their frames (a re-reference, so they keep their place in the ring), while
// non-resident pages are read straight from the pager in one positional read
// per gap and handed to the scan WITHOUT being installed in the ring.
//
// Each bypassed page leaves its ID in a per-shard ghost ring (sized like the
// shard's frame array). A page found in the ghost ring on a later scan touch
// has proven it is re-referenced — not one-shot scan traffic — and is then
// admitted into the CLOCK ring for real. Stats.Bypassed / Stats.Admitted
// count both sides of the lane.

import (
	"rodentstore/internal/pager"
)

// ReadRunInto implements segment.RangeReader over the pool: it appends the
// payloads of npages pages starting at start to dst, serving resident pages
// from their cached frames and reading each maximal gap of non-resident
// pages from the pager with one coalesced positional read. Gap pages bypass
// the CLOCK ring (see package comment) unless the ghost ring proves them
// re-referenced. On a checksum failure in a gap the verified payload prefix
// is still appended and the error identifies the corrupt page.
func (p *Pool) ReadRunInto(dst []byte, start pager.PageID, npages uint64) ([]byte, error) {
	payload := uint64(p.file.PayloadSize())
	for i := uint64(0); i < npages; {
		id := start + pager.PageID(i)
		if p.Resident(id) {
			// Serve from the frame; LeasePage degrades to an uncached read
			// if the page was evicted (or its shard fully pinned) since the
			// probe — either way the bytes are correct.
			data, release, err := p.LeasePage(id)
			if err != nil {
				return dst, err
			}
			dst = append(dst, data...)
			if err := release(); err != nil {
				return dst, err
			}
			i++
			continue
		}
		j := i + 1
		for j < npages && !p.Resident(start+pager.PageID(j)) {
			j++
		}
		mark := len(dst)
		var err error
		dst, err = p.file.ReadRunInto(dst, id, j-i)
		for k := uint64(0); k < uint64(len(dst)-mark)/payload; k++ {
			pg := id + pager.PageID(k)
			p.shardOf(pg).noteScanPage(p.file, pg, dst[mark+int(uint64(k)*payload):mark+int((uint64(k)+1)*payload)])
		}
		if err != nil {
			return dst, err
		}
		i = j
	}
	return dst, nil
}

// noteScanPage records one bypassed scan read of page id (whose payload is
// data, borrowed only for the duration of the call). First touch goes into
// the ghost ring; a touch that finds the page already ghosted admits it into
// the CLOCK ring. Pages that became resident since the gap was computed are
// left alone.
func (sh *shard) noteScanPage(file *pager.File, id pager.PageID, data []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.index[id]; ok {
		return
	}
	if sh.ghostIdx[id] {
		// Second touch inside the ghost window: this page is re-referenced,
		// not one-shot scan traffic — admit it. The ring slot it occupied
		// becomes a harmless tombstone, overwritten as the ring rotates.
		delete(sh.ghostIdx, id)
		if fi, err := sh.victim(file); err == nil {
			buf := make([]byte, len(data))
			copy(buf, data)
			sh.frames[fi] = frame{id: id, data: buf, refbit: true, occupied: true}
			sh.index[id] = fi
			sh.admitted.Add(1)
			return
		}
		// No evictable frame right now: fall through and count a bypass.
	}
	sh.bypassed.Add(1)
	if sh.ghostIdx == nil {
		sh.ghostIdx = make(map[pager.PageID]bool, len(sh.frames))
		sh.ghost = make([]pager.PageID, 0, len(sh.frames))
	}
	if sh.ghostIdx[id] {
		return
	}
	if len(sh.ghost) < cap(sh.ghost) {
		sh.ghost = append(sh.ghost, id)
	} else {
		old := sh.ghost[sh.ghostPos]
		delete(sh.ghostIdx, old)
		sh.ghost[sh.ghostPos] = id
		sh.ghostPos = (sh.ghostPos + 1) % len(sh.ghost)
	}
	sh.ghostIdx[id] = true
}
