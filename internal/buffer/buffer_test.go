package buffer

import (
	"math/rand"
	"path/filepath"
	"testing"

	"rodentstore/internal/pager"
)

func newPoolT(t *testing.T, frames, pages int) (*Pool, *pager.File, pager.PageID) {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "pool.rdnt"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	start, err := f.AllocateRun(uint64(pages))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := f.WritePage(start+pager.PageID(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPool(f, frames)
	if err != nil {
		t.Fatal(err)
	}
	return p, f, start
}

func TestNewPoolRejectsZeroCapacity(t *testing.T) {
	if _, err := NewPool(nil, 0); err == nil {
		t.Error("expected error")
	}
}

func TestGetCachesPages(t *testing.T) {
	p, f, start := newPoolT(t, 4, 8)
	d1, err := p.Get(start)
	if err != nil {
		t.Fatal(err)
	}
	if d1[0] != 0 {
		t.Errorf("wrong content: %d", d1[0])
	}
	p.Unpin(start)
	before := f.Stats().PageReads
	if _, err := p.Get(start); err != nil {
		t.Fatal(err)
	}
	p.Unpin(start)
	if got := f.Stats().PageReads; got != before {
		t.Errorf("second Get should hit cache: reads %d -> %d", before, got)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p, f, start := newPoolT(t, 2, 8)
	// Dirty page 0.
	d, _ := p.Get(start)
	d[0] = 0xaa
	p.MarkDirty(start)
	p.Unpin(start)
	// Touch enough pages to evict page 0 (capacity 2).
	for i := 1; i < 6; i++ {
		if _, err := p.Get(start + pager.PageID(i)); err != nil {
			t.Fatal(err)
		}
		p.Unpin(start + pager.PageID(i))
	}
	if p.Resident(start) {
		t.Fatal("page 0 should have been evicted")
	}
	got, err := f.ReadPage(start)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xaa {
		t.Error("dirty page not written back on eviction")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	p, _, start := newPoolT(t, 2, 8)
	if _, err := p.Get(start); err != nil { // pinned, never unpinned
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if _, err := p.Get(start + pager.PageID(i)); err != nil {
			t.Fatal(err)
		}
		p.Unpin(start + pager.PageID(i))
	}
	if !p.Resident(start) {
		t.Error("pinned page was evicted")
	}
}

func TestAllPinnedFails(t *testing.T) {
	p, _, start := newPoolT(t, 2, 8)
	p.Get(start)
	p.Get(start + 1)
	if _, err := p.Get(start + 2); err == nil {
		t.Error("expected error when all frames pinned")
	}
}

func TestUnpinErrors(t *testing.T) {
	p, _, start := newPoolT(t, 2, 8)
	if err := p.Unpin(start); err == nil {
		t.Error("expected error unpinning non-resident page")
	}
	p.Get(start)
	p.Unpin(start)
	if err := p.Unpin(start); err == nil {
		t.Error("expected error unpinning unpinned page")
	}
	if err := p.MarkDirty(start + 5); err == nil {
		t.Error("expected error marking non-resident page")
	}
}

func TestGetForWrite(t *testing.T) {
	p, f, _ := newPoolT(t, 4, 2)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.GetForWrite(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(d, "fresh page")
	p.Unpin(id)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:10]) != "fresh page" {
		t.Errorf("got %q", got[:10])
	}
}

func TestInvalidate(t *testing.T) {
	p, f, start := newPoolT(t, 4, 4)
	d, _ := p.Get(start)
	d[0] = 0x55
	p.MarkDirty(start)
	p.Unpin(start)
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if p.Resident(start) {
		t.Error("page still resident after Invalidate")
	}
	got, _ := f.ReadPage(start)
	if got[0] != 0x55 {
		t.Error("dirty page lost by Invalidate")
	}
	// Invalidate with a pinned page must fail.
	p.Get(start)
	if err := p.Invalidate(); err == nil {
		t.Error("expected error invalidating with pinned page")
	}
	p.Unpin(start)
}

func TestClockSecondChance(t *testing.T) {
	// A frequently touched page should survive a scan of cold pages.
	p, _, start := newPoolT(t, 3, 16)
	hot := start
	p.Get(hot)
	p.Unpin(hot)
	for i := 1; i < 16; i++ {
		p.Get(start + pager.PageID(i))
		p.Unpin(start + pager.PageID(i))
		// Re-touch the hot page so its refbit stays set.
		p.Get(hot)
		p.Unpin(hot)
	}
	if !p.Resident(hot) {
		t.Error("hot page evicted despite constant touches")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p, _, start := newPoolT(t, 8, 32)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				id := start + pager.PageID(r.Intn(32))
				d, err := p.Get(id)
				if err != nil {
					done <- err
					return
				}
				_ = d[0]
				if err := p.Unpin(id); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Hits+s.Misses != 8*500 {
		t.Errorf("accounting mismatch: %+v", s)
	}
}
