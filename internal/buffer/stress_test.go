package buffer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rodentstore/internal/pager"
)

func TestNumShards(t *testing.T) {
	cases := map[int]int{1: 1, 8: 1, 31: 1, 32: 2, 64: 4, 128: 8, 256: 16, 512: 16, 4096: 16}
	for capacity, want := range cases {
		if got := numShards(capacity); got != want {
			t.Errorf("numShards(%d) = %d, want %d", capacity, got, want)
		}
	}
}

func TestShardedCapacitySplit(t *testing.T) {
	p, _, _ := newPoolT(t, 100, 4)
	if p.Capacity() != 100 {
		t.Errorf("Capacity = %d, want 100", p.Capacity())
	}
	if p.Shards() != numShards(100) {
		t.Errorf("Shards = %d, want %d", p.Shards(), numShards(100))
	}
}

func TestLeaseZeroCopy(t *testing.T) {
	p, _, start := newPoolT(t, 8, 4)
	l, err := p.Lease(start)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Get(start) // same frame while leased
	if err != nil {
		t.Fatal(err)
	}
	if &l.Data()[0] != &d[0] {
		t.Error("Lease and Get should expose the same frame memory")
	}
	if err := p.Unpin(start); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if err := p.Invalidate(); err != nil {
		t.Errorf("all pins released, Invalidate should succeed: %v", err)
	}
	var zero Lease
	if err := zero.Release(); err == nil {
		t.Error("zero Lease Release should error")
	}
}

func TestLeasePageAdapter(t *testing.T) {
	p, _, start := newPoolT(t, 8, 4)
	data, release, err := p.LeasePage(start)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 {
		t.Errorf("wrong content: %d", data[0])
	}
	if err := release(); err != nil {
		t.Fatal(err)
	}
	if err := p.Invalidate(); err != nil {
		t.Errorf("lease released, Invalidate should succeed: %v", err)
	}
}

// TestShardedPoolStress hammers a multi-shard pool from many goroutines
// with reads (Get/Lease), private-page writes (GetForWrite + MarkDirty),
// and periodic FlushAll. Run under -race. Afterwards it checks stat
// consistency (every access is exactly one hit or one miss), that no pins
// leaked, and that all written data survived eviction traffic.
func TestShardedPoolStress(t *testing.T) {
	const (
		readPages  = 96
		workers    = 8
		iters      = 1500
		writePages = 4 // per worker, private
	)
	f, err := pager.Create(t.TempDir()+"/stress.rdnt", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start, err := f.AllocateRun(readPages + workers*writePages)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < readPages; i++ {
		if err := f.WritePage(start+pager.PageID(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity far below the working set forces steady eviction.
	p, err := NewPool(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() < 2 {
		t.Fatalf("want a sharded pool, got %d shards", p.Shards())
	}

	var accesses [workers]uint64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			mine := start + pager.PageID(readPages+w*writePages)
			for i := 0; i < iters; i++ {
				switch r.Intn(10) {
				case 0: // write a private page
					id := mine + pager.PageID(r.Intn(writePages))
					d, err := p.GetForWrite(id)
					if err != nil {
						errs <- err
						return
					}
					d[0] = byte(w)
					d[1] = byte(i)
					if err := p.MarkDirty(id); err != nil {
						errs <- err
						return
					}
					if err := p.Unpin(id); err != nil {
						errs <- err
						return
					}
				case 1: // zero-copy lease
					id := start + pager.PageID(r.Intn(readPages))
					l, err := p.Lease(id)
					if err != nil {
						errs <- err
						return
					}
					if l.Data()[0] != byte(id-start) {
						errs <- fmt.Errorf("page %d: bad content %d", id, l.Data()[0])
						l.Release()
						return
					}
					if err := l.Release(); err != nil {
						errs <- err
						return
					}
					accesses[w]++
				case 2:
					if err := p.FlushAll(); err != nil {
						errs <- err
						return
					}
				default: // pinned read
					id := start + pager.PageID(r.Intn(readPages))
					d, err := p.Get(id)
					if err != nil {
						errs <- err
						return
					}
					if d[0] != byte(id-start) {
						errs <- fmt.Errorf("page %d: bad content %d", id, d[0])
						p.Unpin(id)
						return
					}
					if err := p.Unpin(id); err != nil {
						errs <- err
						return
					}
					accesses[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Read accesses (Get + Lease) each count exactly one hit or miss;
	// GetForWrite takes neither counter.
	var reads uint64
	for _, a := range accesses {
		reads += a
	}
	s := p.Stats()
	if s.Hits+s.Misses != reads {
		t.Errorf("stat consistency: hits %d + misses %d != reads %d", s.Hits, s.Misses, reads)
	}
	if s.Evictions == 0 {
		t.Error("working set exceeds capacity; expected evictions")
	}

	// No lost pins: Invalidate flushes and drops everything or errors on a
	// leaked pin.
	if err := p.Invalidate(); err != nil {
		t.Fatalf("pins leaked: %v", err)
	}
	// Every worker's last private write must have survived write-back.
	for w := 0; w < workers; w++ {
		for i := 0; i < writePages; i++ {
			id := start + pager.PageID(readPages+w*writePages+i)
			d, err := f.ReadPage(id)
			if err != nil {
				continue // page never written by this worker's random walk
			}
			if d[0] != byte(w) {
				t.Errorf("page %d: owner byte %d, want %d", id, d[0], w)
			}
		}
	}
}

// TestConcurrentMissSamePage drives many goroutines at the same cold page:
// the insert race must resolve to one frame, with every access counted as
// exactly one hit or miss.
func TestConcurrentMissSamePage(t *testing.T) {
	for round := 0; round < 20; round++ {
		p, _, start := newPoolT(t, 16, 8)
		const n = 8
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d, err := p.Get(start)
				if err != nil {
					errs <- err
					return
				}
				if d[0] != 0 {
					errs <- fmt.Errorf("bad content %d", d[0])
				}
				errs <- p.Unpin(start)
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		s := p.Stats()
		if s.Hits+s.Misses != n {
			t.Fatalf("round %d: hits %d + misses %d != %d", round, s.Hits, s.Misses, n)
		}
		// The pending-frame protocol dedups the in-flight read: exactly one
		// goroutine pays the miss, everyone else waits and hits.
		if s.Misses != 1 {
			t.Fatalf("round %d: %d misses, want 1 (read not deduplicated)", round, s.Misses)
		}
		if err := p.Invalidate(); err != nil {
			t.Fatalf("round %d: pins leaked: %v", round, err)
		}
	}
}
