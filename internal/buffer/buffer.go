// Package buffer implements RodentStore's shared buffer pool. The paper's
// core motivation (§1) is that every new storage engine duplicates
// "transaction, lock, and memory management facilities"; the buffer pool is
// the memory-management facility shared by every layout RodentStore renders.
//
// The pool caches page payloads above the pager with CLOCK (second-chance)
// eviction, pin counts, dirty tracking and write-back. Logical I/O
// statistics for experiments are taken at the pager, so measured scans run
// with a cold pool (or bypass it) to reproduce the paper's page counts.
package buffer

import (
	"fmt"
	"sync"

	"rodentstore/internal/pager"
)

// Stats counts pool activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

type frame struct {
	id       pager.PageID
	data     []byte
	pins     int
	dirty    bool
	refbit   bool // CLOCK second-chance bit
	occupied bool
}

// Pool is a fixed-capacity page cache. All methods are safe for concurrent
// use.
type Pool struct {
	mu     sync.Mutex
	file   *pager.File
	frames []frame
	index  map[pager.PageID]int // page -> frame
	hand   int                  // CLOCK hand
	stats  Stats
}

// NewPool creates a pool with capacity frames over file.
func NewPool(file *pager.File, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d < 1", capacity)
	}
	return &Pool{
		file:   file,
		frames: make([]frame, capacity),
		index:  make(map[pager.PageID]int, capacity),
	}, nil
}

// Get returns the payload of page id, reading it through the pager on a
// miss, and pins the frame. Callers must Unpin when done. The returned
// slice is the cached frame: callers that modify it must call MarkDirty
// before Unpin.
func (p *Pool) Get(id pager.PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fi, ok := p.index[id]; ok {
		p.stats.Hits++
		p.frames[fi].pins++
		p.frames[fi].refbit = true
		return p.frames[fi].data, nil
	}
	p.stats.Misses++
	data, err := p.file.ReadPage(id)
	if err != nil {
		return nil, err
	}
	fi, err := p.victim()
	if err != nil {
		return nil, err
	}
	p.frames[fi] = frame{id: id, data: data, pins: 1, refbit: true, occupied: true}
	p.index[id] = fi
	return data, nil
}

// GetForWrite returns a pinned, writable frame for page id without reading
// it from disk (for freshly allocated pages). The frame starts dirty.
func (p *Pool) GetForWrite(id pager.PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fi, ok := p.index[id]; ok {
		p.frames[fi].pins++
		p.frames[fi].refbit = true
		p.frames[fi].dirty = true
		return p.frames[fi].data, nil
	}
	fi, err := p.victim()
	if err != nil {
		return nil, err
	}
	data := make([]byte, p.file.PayloadSize())
	p.frames[fi] = frame{id: id, data: data, pins: 1, dirty: true, refbit: true, occupied: true}
	p.index[id] = fi
	return data, nil
}

// victim finds a free or evictable frame with the CLOCK policy, flushing a
// dirty victim. Caller holds p.mu.
func (p *Pool) victim() (int, error) {
	n := len(p.frames)
	for spin := 0; spin < 2*n+1; spin++ {
		fi := p.hand
		p.hand = (p.hand + 1) % n
		f := &p.frames[fi]
		if !f.occupied {
			return fi, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		if f.dirty {
			if err := p.file.WritePage(f.id, f.data); err != nil {
				return 0, err
			}
			p.stats.Flushes++
		}
		delete(p.index, f.id)
		p.stats.Evictions++
		f.occupied = false
		return fi, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", n)
}

// MarkDirty flags the page's frame as modified. The page must be resident
// and pinned.
func (p *Pool) MarkDirty(id pager.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fi, ok := p.index[id]
	if !ok {
		return fmt.Errorf("buffer: MarkDirty on non-resident page %d", id)
	}
	p.frames[fi].dirty = true
	return nil
}

// Unpin releases one pin on page id.
func (p *Pool) Unpin(id pager.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fi, ok := p.index[id]
	if !ok {
		return fmt.Errorf("buffer: Unpin on non-resident page %d", id)
	}
	if p.frames[fi].pins == 0 {
		return fmt.Errorf("buffer: Unpin on unpinned page %d", id)
	}
	p.frames[fi].pins--
	return nil
}

// FlushAll writes every dirty frame back to the pager (without evicting).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.occupied && f.dirty {
			if err := p.file.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
			p.stats.Flushes++
		}
	}
	return nil
}

// Invalidate drops every unpinned frame (flushing dirty ones), so the next
// access is a cold read. Experiments call this between queries to reproduce
// the paper's cold-cache page counts. It fails if any frame is pinned.
func (p *Pool) Invalidate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if !f.occupied {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("buffer: Invalidate with pinned page %d", f.id)
		}
		if f.dirty {
			if err := p.file.WritePage(f.id, f.data); err != nil {
				return err
			}
			p.stats.Flushes++
		}
		delete(p.index, f.id)
		f.occupied = false
	}
	return nil
}

// Resident reports whether page id is cached (for tests).
func (p *Pool) Resident(id pager.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.index[id]
	return ok
}

// ReadPage returns a copy of the page payload, going through the cache.
// It adapts the pool to segment.PageSource so table scans can run warm.
func (p *Pool) ReadPage(id pager.PageID) ([]byte, error) {
	data, err := p.Get(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	if err := p.Unpin(id); err != nil {
		return nil, err
	}
	return out, nil
}

// PayloadSize returns the underlying file's page payload size.
func (p *Pool) PayloadSize() int { return p.file.PayloadSize() }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }
