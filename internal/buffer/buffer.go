// Package buffer implements RodentStore's shared buffer pool. The paper's
// core motivation (§1) is that every new storage engine duplicates
// "transaction, lock, and memory management facilities"; the buffer pool is
// the memory-management facility shared by every layout RodentStore renders.
//
// The pool caches page payloads above the pager with CLOCK (second-chance)
// eviction, pin counts, dirty tracking and write-back. To scale with
// concurrent readers, frames are split into lock-striped shards keyed by a
// hash of the PageID: each shard has its own mutex, frame array, CLOCK hand
// and atomic hit/miss counters, so scans on different goroutines contend
// only when they touch pages in the same shard. A shard lock is never held
// across a miss's disk read — the page is fetched outside the lock and the
// insert race (two goroutines missing on the same page) is resolved by
// adopting whichever frame was installed first.
//
// Logical I/O statistics for experiments are taken at the pager, so measured
// scans run with a cold pool (or bypass it) to reproduce the paper's page
// counts.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rodentstore/internal/pager"
)

// errShardPinned marks eviction failure because every frame of the target
// shard is pinned; scan paths degrade to uncached reads instead of failing.
var errShardPinned = errors.New("all frames in shard pinned")

// Stats counts pool activity, aggregated over all shards. Bypassed and
// Admitted account the scan-resistant lane (see scanread.go): pages a
// coalesced scan read pulled around the CLOCK ring, and pages that ghost
// re-reference promoted into it.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
	Bypassed  uint64
	Admitted  uint64
}

type frame struct {
	id       pager.PageID
	data     []byte
	pins     int
	dirty    bool
	refbit   bool // CLOCK second-chance bit
	occupied bool
	// pending is non-nil while the frame's disk read is in flight: the
	// frame is claimed (pinned, indexed) before the shard lock drops, so a
	// concurrent write+evict of the same page can never race a stale copy
	// into the cache. Waiters block on the channel, which closes when the
	// read completes (or fails and the frame is released).
	pending chan struct{}
}

// shard is one lock stripe of the pool: a private frame array with its own
// CLOCK hand and index.
type shard struct {
	mu     sync.Mutex
	frames []frame
	index  map[pager.PageID]int // page -> frame
	hand   int                  // CLOCK hand

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	flushes   atomic.Uint64
	bypassed  atomic.Uint64
	admitted  atomic.Uint64

	// Ghost ring of the scan-resistant admission lane (see scanread.go): the
	// page IDs of recent single-touch scan reads, sized like the frame array.
	// A scan page found here on its next touch is deemed re-referenced and
	// admitted to the CLOCK ring. Guarded by mu; allocated on first use so
	// pools that never see coalesced scans pay nothing.
	ghost    []pager.PageID
	ghostIdx map[pager.PageID]bool
	ghostPos int
}

// Pool is a fixed-capacity page cache. All methods are safe for concurrent
// use.
type Pool struct {
	file   *pager.File
	shards []*shard
	mask   uint64
}

// maxShards bounds lock striping; beyond this the per-shard CLOCK domains
// get too small to evict sensibly.
const maxShards = 16

// numShards picks a power-of-two shard count for a capacity, keeping at
// least 16 frames per shard so each shard's CLOCK has headroom even when
// several frames are pinned at once. Small pools (capacity < 32)
// degenerate to a single shard, which preserves the exact historical
// single-pool eviction behavior.
func numShards(capacity int) int {
	n := 1
	for n < maxShards && n*32 <= capacity {
		n *= 2
	}
	return n
}

// NewPool creates a pool with capacity frames over file, striped into
// shards (see numShards).
func NewPool(file *pager.File, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d < 1", capacity)
	}
	n := numShards(capacity)
	p := &Pool{file: file, shards: make([]*shard, n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range p.shards {
		c := base
		if i < extra {
			c++
		}
		p.shards[i] = &shard{
			frames: make([]frame, c),
			index:  make(map[pager.PageID]int, c),
		}
	}
	return p, nil
}

// shardOf maps a page to its shard with a Fibonacci hash, so sequential
// extents spread across stripes.
func (p *Pool) shardOf(id pager.PageID) *shard {
	return p.shards[(uint64(id)*0x9E3779B97F4A7C15>>47)&p.mask]
}

// Lease pins page id and returns a zero-copy view of its cached payload,
// reading through the pager on a miss. The returned Lease's Data slice is
// the cached frame itself: callers that modify it must MarkDirty before
// Release, and must not retain the slice after Release.
//
// A miss claims a frame and publishes it in the index (pinned, pending)
// *before* dropping the shard lock for the disk read, so the page can
// never be concurrently rewritten and evicted behind the reader's back —
// the interleaving that would otherwise install a stale copy. Concurrent
// accessors of an in-flight page wait for the read instead of duplicating
// it.
func (p *Pool) Lease(id pager.PageID) (Lease, error) {
	sh := p.shardOf(id)
	for {
		sh.mu.Lock()
		if fi, ok := sh.index[id]; ok {
			f := &sh.frames[fi]
			if f.pending != nil {
				ch := f.pending
				sh.mu.Unlock()
				<-ch // another goroutine's read is in flight
				continue
			}
			sh.hits.Add(1)
			f.pins++
			f.refbit = true
			data := f.data
			sh.mu.Unlock()
			return Lease{sh: sh, id: id, data: data}, nil
		}
		// Miss: claim a frame, mark the read in flight, and do the I/O
		// without holding the shard lock.
		sh.misses.Add(1)
		fi, err := sh.victim(p.file)
		if err != nil {
			sh.mu.Unlock()
			return Lease{}, err
		}
		ch := make(chan struct{})
		sh.frames[fi] = frame{id: id, pins: 1, refbit: true, occupied: true, pending: ch}
		sh.index[id] = fi
		sh.mu.Unlock()

		data, err := p.file.ReadPage(id)

		sh.mu.Lock()
		f := &sh.frames[fi]
		if err != nil {
			delete(sh.index, id)
			*f = frame{}
			sh.mu.Unlock()
			close(ch)
			return Lease{}, err
		}
		f.data = data
		f.pending = nil
		sh.mu.Unlock()
		close(ch)
		return Lease{sh: sh, id: id, data: data}, nil
	}
}

// Lease is a pinned, zero-copy view of one cached page.
type Lease struct {
	sh   *shard
	id   pager.PageID
	data []byte
}

// Data returns the cached frame payload. Valid until Release.
func (l Lease) Data() []byte { return l.data }

// Release drops the lease's pin.
func (l Lease) Release() error {
	if l.sh == nil {
		return fmt.Errorf("buffer: Release of zero Lease")
	}
	return l.sh.unpin(l.id)
}

// Get returns the payload of page id, reading it through the pager on a
// miss, and pins the frame. Callers must Unpin when done. The returned
// slice is the cached frame: callers that modify it must call MarkDirty
// before Unpin.
func (p *Pool) Get(id pager.PageID) ([]byte, error) {
	//lint:allow leaselease pin is transferred to the caller, who must Unpin
	l, err := p.Lease(id)
	if err != nil {
		return nil, err
	}
	return l.data, nil
}

// GetForWrite returns a pinned, writable frame for page id without reading
// it from disk (for freshly allocated pages). The frame starts dirty.
func (p *Pool) GetForWrite(id pager.PageID) ([]byte, error) {
	sh := p.shardOf(id)
	for {
		sh.mu.Lock()
		if fi, ok := sh.index[id]; ok {
			f := &sh.frames[fi]
			if f.pending != nil {
				ch := f.pending
				sh.mu.Unlock()
				<-ch // wait for the in-flight read before overwriting
				continue
			}
			f.pins++
			f.refbit = true
			f.dirty = true
			data := f.data
			sh.mu.Unlock()
			return data, nil
		}
		fi, err := sh.victim(p.file)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		data := make([]byte, p.file.PayloadSize())
		sh.frames[fi] = frame{id: id, data: data, pins: 1, dirty: true, refbit: true, occupied: true}
		sh.index[id] = fi
		sh.mu.Unlock()
		return data, nil
	}
}

// victim finds a free or evictable frame with the CLOCK policy, flushing a
// dirty victim. Caller holds sh.mu. (The dirty flush is the one place page
// I/O happens under a shard lock; it is rare on read-mostly paths and only
// stalls this shard, not the pool.)
func (sh *shard) victim(file *pager.File) (int, error) {
	n := len(sh.frames)
	for spin := 0; spin < 2*n+1; spin++ {
		fi := sh.hand
		sh.hand = (sh.hand + 1) % n
		f := &sh.frames[fi]
		if !f.occupied {
			return fi, nil
		}
		if f.pins > 0 || f.pending != nil {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		if f.dirty {
			if err := file.WritePage(f.id, f.data); err != nil {
				return 0, err
			}
			sh.flushes.Add(1)
		}
		delete(sh.index, f.id)
		sh.evictions.Add(1)
		f.occupied = false
		return fi, nil
	}
	return 0, fmt.Errorf("buffer: %w (%d frames)", errShardPinned, n)
}

// MarkDirty flags the page's frame as modified. The page must be resident
// and pinned.
func (p *Pool) MarkDirty(id pager.PageID) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fi, ok := sh.index[id]
	if !ok {
		return fmt.Errorf("buffer: MarkDirty on non-resident page %d", id)
	}
	sh.frames[fi].dirty = true
	return nil
}

// Unpin releases one pin on page id.
func (p *Pool) Unpin(id pager.PageID) error {
	return p.shardOf(id).unpin(id)
}

func (sh *shard) unpin(id pager.PageID) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fi, ok := sh.index[id]
	if !ok {
		return fmt.Errorf("buffer: Unpin on non-resident page %d", id)
	}
	if sh.frames[fi].pins == 0 {
		return fmt.Errorf("buffer: Unpin on unpinned page %d", id)
	}
	sh.frames[fi].pins--
	return nil
}

// FlushAll writes every dirty frame back to the pager (without evicting).
func (p *Pool) FlushAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if f.occupied && f.dirty {
				if err := p.file.WritePage(f.id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
				sh.flushes.Add(1)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Invalidate drops every unpinned frame (flushing dirty ones), so the next
// access is a cold read. Experiments call this between queries to reproduce
// the paper's cold-cache page counts. It fails if any frame is pinned.
func (p *Pool) Invalidate() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.occupied {
				continue
			}
			if f.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("buffer: Invalidate with pinned page %d", f.id)
			}
			if f.dirty {
				if err := p.file.WritePage(f.id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				sh.flushes.Add(1)
			}
			delete(sh.index, f.id)
			f.occupied = false
		}
		// Forget single-touch history too: experiments expect Invalidate to
		// restore a fully cold cache, and a stale ghost ring would promote
		// the next scan's pages as if they were re-referenced.
		sh.ghost, sh.ghostIdx, sh.ghostPos = nil, nil, 0
		sh.mu.Unlock()
	}
	return nil
}

// Resident reports whether page id is cached (for tests).
func (p *Pool) Resident(id pager.PageID) bool {
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.index[id]
	return ok
}

// ReadPage returns a copy of the page payload, going through the cache.
// It adapts the pool to segment.PageSource so table scans can run warm.
// (Scans that can tolerate pinned zero-copy access use LeasePage instead.)
// Like LeasePage, it degrades to an uncached read when the page's shard is
// momentarily out of evictable frames.
func (p *Pool) ReadPage(id pager.PageID) ([]byte, error) {
	data, release, err := p.LeasePage(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	if err := release(); err != nil {
		return nil, err
	}
	return out, nil
}

// LeasePage adapts the pool to segment.PageLeaser: pinned zero-copy page
// access for scan paths. If the page's shard is momentarily out of
// evictable frames (every frame pinned by concurrent scans), the read
// degrades to an uncached pager read instead of failing the scan.
func (p *Pool) LeasePage(id pager.PageID) ([]byte, func() error, error) {
	l, err := p.Lease(id)
	if err == nil {
		return l.data, l.Release, nil
	}
	if !errors.Is(err, errShardPinned) {
		return nil, nil, err
	}
	data, err := p.file.ReadPage(id)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

// PayloadSize returns the underlying file's page payload size.
func (p *Pool) PayloadSize() int { return p.file.PayloadSize() }

// Stats returns a snapshot of the counters aggregated over shards.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, sh := range p.shards {
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
		s.Flushes += sh.flushes.Load()
		s.Bypassed += sh.bypassed.Load()
		s.Admitted += sh.admitted.Load()
	}
	return s
}

// Capacity returns the total number of frames across shards.
func (p *Pool) Capacity() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh.frames)
	}
	return n
}

// Shards returns the number of lock stripes (for tests and diagnostics).
func (p *Pool) Shards() int { return len(p.shards) }
