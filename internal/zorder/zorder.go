// Package zorder implements the space-filling curves used by the storage
// algebra's data-reordering transforms (paper §3.5.3). The zorder transform
// rearranges nested elements "according to a z-order traversal of the
// structure" by interleaving the bits of the binary representation of element
// positions:
//
//	zorder(N) ≡ [r' | \r ← N, \r' ← r,
//	             r' orderby interleave(bin(pos(r)), bin(pos(r'))) ASC]
//
// Interleave2 is exactly that interleave(bin(x), bin(y)) helper. The package
// also provides n-dimensional Morton codes and a Hilbert curve used by the
// curve-ablation experiment (Ext-1 in DESIGN.md).
package zorder

import "fmt"

// Interleave2 interleaves the bits of x and y into a single Morton code.
// Bit i of x maps to bit 2i of the result; bit i of y maps to bit 2i+1.
// Nearby (x, y) pairs receive nearby codes, which is what lets the storage
// backend co-locate spatially adjacent grid cells on disk.
func Interleave2(x, y uint32) uint64 {
	return spread(uint64(x)) | spread(uint64(y))<<1
}

// Deinterleave2 is the inverse of Interleave2.
func Deinterleave2(z uint64) (x, y uint32) {
	return uint32(compact(z)), uint32(compact(z >> 1))
}

// spread inserts a zero bit between each of the low 32 bits of v.
func spread(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact drops the odd bits of v and packs the even bits together; it is
// the inverse of spread.
func compact(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// InterleaveN computes an n-dimensional Morton code over coords, using bits
// bits per dimension. It requires len(coords)*bits <= 64. Dimension 0
// occupies the least-significant position of each bit group.
func InterleaveN(coords []uint32, bits int) (uint64, error) {
	n := len(coords)
	if n == 0 {
		return 0, fmt.Errorf("zorder: no coordinates")
	}
	if bits <= 0 || n*bits > 64 {
		return 0, fmt.Errorf("zorder: %d dims × %d bits exceeds 64", n, bits)
	}
	var z uint64
	for b := 0; b < bits; b++ {
		for d := 0; d < n; d++ {
			bit := (uint64(coords[d]) >> b) & 1
			z |= bit << (b*n + d)
		}
	}
	return z, nil
}

// DeinterleaveN is the inverse of InterleaveN.
func DeinterleaveN(z uint64, n, bits int) ([]uint32, error) {
	if n <= 0 || bits <= 0 || n*bits > 64 {
		return nil, fmt.Errorf("zorder: invalid dims %d × bits %d", n, bits)
	}
	coords := make([]uint32, n)
	for b := 0; b < bits; b++ {
		for d := 0; d < n; d++ {
			bit := (z >> (b*n + d)) & 1
			coords[d] |= uint32(bit) << b
		}
	}
	return coords, nil
}

// Hilbert2 maps (x, y) on a 2^order × 2^order grid to its distance along the
// Hilbert curve. Hilbert codes have strictly better locality than Morton
// codes (no long diagonal jumps), which the curve ablation quantifies.
func Hilbert2(order uint, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// Hilbert2Inverse maps a Hilbert distance back to (x, y) on a 2^order grid.
func Hilbert2Inverse(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & (uint32(t) ^ rx)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// Bin renders v in binary — the algebra's bin() helper, exposed for
// debugging and for the algebra printer.
func Bin(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [64]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = '0' + byte(v&1)
		v >>= 1
	}
	return string(buf[i:])
}

// Range represents a contiguous run [Lo, Hi] of curve positions.
type Range struct {
	Lo, Hi uint64
}

// ZRangesForRect decomposes the axis-aligned cell rectangle
// [x0,x1]×[y0,y1] into maximal contiguous z-code ranges. The storage backend
// uses this to turn a spatial query into a minimal set of sequential page
// runs (each range break is a potential disk seek). The implementation
// recursively splits the quad-tree node whenever it straddles the rectangle;
// adjacent resulting ranges are coalesced.
func ZRangesForRect(order uint, x0, y0, x1, y1 uint32) []Range {
	if x1 < x0 || y1 < y0 {
		return nil
	}
	var out []Range
	var rec func(qx, qy uint32, level uint)
	rec = func(qx, qy uint32, level uint) {
		size := uint32(1) << level
		// Quad node [qx, qx+size) × [qy, qy+size).
		if qx > x1 || qy > y1 || qx+size-1 < x0 || qy+size-1 < y0 {
			return // disjoint
		}
		if qx >= x0 && qx+size-1 <= x1 && qy >= y0 && qy+size-1 <= y1 {
			// Fully contained: one contiguous z-range of size².
			lo := Interleave2(qx, qy)
			out = append(out, Range{lo, lo + uint64(size)*uint64(size) - 1})
			return
		}
		if level == 0 {
			return
		}
		half := size / 2
		// Children in z order: (0,0), (1,0), (0,1), (1,1).
		rec(qx, qy, level-1)
		rec(qx+half, qy, level-1)
		rec(qx, qy+half, level-1)
		rec(qx+half, qy+half, level-1)
	}
	rec(0, 0, order)
	// Coalesce adjacent ranges (children visited in z order so out is sorted).
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && merged[n-1].Hi+1 == r.Lo {
			merged[n-1].Hi = r.Hi
		} else {
			merged = append(merged, r)
		}
	}
	return merged
}
