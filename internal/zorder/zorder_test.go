package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleave2Known(t *testing.T) {
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{2, 3, 14}, // x=10, y=11 -> interleaved 1110
		{0xffffffff, 0, 0x5555555555555555},
		{0, 0xffffffff, 0xaaaaaaaaaaaaaaaa},
	}
	for _, c := range cases {
		if got := Interleave2(c.x, c.y); got != c.want {
			t.Errorf("Interleave2(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestInterleave2Roundtrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Deinterleave2(Interleave2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleave2Monotone(t *testing.T) {
	// Within a quadrant, increasing both coordinates increases the z-code.
	f := func(x, y uint16) bool {
		return Interleave2(uint32(x)+1, uint32(y)+1) > Interleave2(uint32(x), uint32(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaveN(t *testing.T) {
	// 2-D InterleaveN must agree with Interleave2.
	f := func(x, y uint16) bool {
		z, err := InterleaveN([]uint32{uint32(x), uint32(y)}, 16)
		return err == nil && z == Interleave2(uint32(x), uint32(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// 3-D roundtrip.
	g := func(a, b, c uint16) bool {
		coords := []uint32{uint32(a), uint32(b), uint32(c)}
		z, err := InterleaveN(coords, 16)
		if err != nil {
			return false
		}
		back, err := DeinterleaveN(z, 3, 16)
		if err != nil {
			return false
		}
		return back[0] == coords[0] && back[1] == coords[1] && back[2] == coords[2]
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaveNErrors(t *testing.T) {
	if _, err := InterleaveN(nil, 8); err == nil {
		t.Error("expected error for no coords")
	}
	if _, err := InterleaveN(make([]uint32, 9), 8); err == nil {
		t.Error("expected error for 72 bits")
	}
	if _, err := DeinterleaveN(0, 0, 8); err == nil {
		t.Error("expected error for 0 dims")
	}
}

func TestHilbertRoundtrip(t *testing.T) {
	const order = 8
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 1<<order; x += 3 {
		for y := uint32(0); y < 1<<order; y += 3 {
			d := Hilbert2(order, x, y)
			if seen[d] {
				t.Fatalf("duplicate hilbert code %d", d)
			}
			seen[d] = true
			gx, gy := Hilbert2Inverse(order, d)
			if gx != x || gy != y {
				t.Fatalf("Hilbert roundtrip (%d,%d) -> %d -> (%d,%d)", x, y, d, gx, gy)
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert positions must be 4-adjacent cells: this is the
	// locality property that makes it a candidate curve for cell layout.
	const order = 6
	px, py := Hilbert2Inverse(order, 0)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := Hilbert2Inverse(order, d)
		dx, dy := int64(x)-int64(px), int64(y)-int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("positions %d and %d not adjacent: (%d,%d) -> (%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestBin(t *testing.T) {
	cases := []struct {
		v    uint64
		want string
	}{
		{0, "0"}, {1, "1"}, {2, "10"}, {5, "101"}, {255, "11111111"},
	}
	for _, c := range cases {
		if got := Bin(c.v); got != c.want {
			t.Errorf("Bin(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestZRangesForRectFullGrid(t *testing.T) {
	// The whole grid must collapse to a single range.
	got := ZRangesForRect(4, 0, 0, 15, 15)
	if len(got) != 1 || got[0] != (Range{0, 255}) {
		t.Fatalf("full grid: got %v", got)
	}
}

func TestZRangesForRectSingleCell(t *testing.T) {
	got := ZRangesForRect(4, 5, 9, 5, 9)
	want := Interleave2(5, 9)
	if len(got) != 1 || got[0].Lo != want || got[0].Hi != want {
		t.Fatalf("single cell: got %v, want [%d,%d]", got, want, want)
	}
}

func TestZRangesForRectCoversExactly(t *testing.T) {
	// Property: the union of returned ranges equals the set of z-codes of
	// cells inside the rectangle — no more, no less.
	const order = 5 // 32x32 grid
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		x0 := uint32(r.Intn(32))
		y0 := uint32(r.Intn(32))
		x1 := x0 + uint32(r.Intn(int(32-x0)))
		y1 := y0 + uint32(r.Intn(int(32-y0)))
		ranges := ZRangesForRect(order, x0, y0, x1, y1)
		inRanges := func(z uint64) bool {
			for _, rg := range ranges {
				if z >= rg.Lo && z <= rg.Hi {
					return true
				}
			}
			return false
		}
		for x := uint32(0); x < 32; x++ {
			for y := uint32(0); y < 32; y++ {
				z := Interleave2(x, y)
				inside := x >= x0 && x <= x1 && y >= y0 && y <= y1
				if inside != inRanges(z) {
					t.Fatalf("trial %d rect(%d,%d,%d,%d): cell (%d,%d) inside=%v inRanges=%v",
						trial, x0, y0, x1, y1, x, y, inside, inRanges(z))
				}
			}
		}
		// Ranges must be sorted and non-overlapping.
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi {
				t.Fatalf("ranges overlap or unsorted: %v", ranges)
			}
		}
	}
}

func TestZRangesForRectEmpty(t *testing.T) {
	if got := ZRangesForRect(4, 5, 5, 4, 4); got != nil {
		t.Fatalf("inverted rect: got %v", got)
	}
}

func BenchmarkInterleave2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Interleave2(uint32(i), uint32(i*7))
	}
}

func BenchmarkHilbert2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hilbert2(16, uint32(i)&0xffff, uint32(i*7)&0xffff)
	}
}
