// Package btree implements a disk-backed B+tree. The paper (§1, end)
// promises that "RodentStore will include both B+Trees as well as a variety
// of geo-spatial indices" as supporting machinery; this is that B+tree. It
// maps binary keys to 64-bit values (row positions), supports range scans
// in key order, and stores its nodes in pager pages so index I/O is counted
// by the same statistics as data I/O.
//
// Nodes occupy one page each. Keys are variable-length byte strings
// compared lexicographically; callers encode typed values order-preservingly
// (see EncodeKey).
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"rodentstore/internal/pager"
	"rodentstore/internal/value"
)

// node layout (page payload):
//
//	u8 isLeaf | u16 nkeys | u64 next (leaf right-sibling; 0 for internal)
//	then nkeys × (u16 keyLen | key | u64 val)
//	internal nodes store nkeys keys and nkeys+1 children: the extra child
//	is stored as the "next" field slot 0 ... simpler: internal entries are
//	(key, child) pairs plus a leftmost child in next.
const nodeHeader = 1 + 2 + 8

// Tree is a disk-backed B+tree rooted at Root.
type Tree struct {
	file *pager.File
	root pager.PageID
}

type node struct {
	isLeaf bool
	next   pager.PageID // leaf: right sibling; internal: leftmost child
	keys   [][]byte
	vals   []uint64 // leaf: values; internal: child page ids
}

// New creates an empty tree (a single empty leaf).
func New(file *pager.File) (*Tree, error) {
	t := &Tree{file: file}
	id, err := file.Allocate()
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(id, &node{isLeaf: true}); err != nil {
		return nil, err
	}
	t.root = id
	return t, nil
}

// Open attaches to an existing tree rooted at root.
func Open(file *pager.File, root pager.PageID) *Tree {
	return &Tree{file: file, root: root}
}

// Root returns the current root page (persist it to reopen the tree).
func (t *Tree) Root() pager.PageID { return t.root }

func (t *Tree) readNode(id pager.PageID) (*node, error) {
	buf, err := t.file.ReadPage(id)
	if err != nil {
		return nil, err
	}
	n := &node{isLeaf: buf[0] == 1}
	nkeys := int(binary.LittleEndian.Uint16(buf[1:]))
	n.next = pager.PageID(binary.LittleEndian.Uint64(buf[3:]))
	off := nodeHeader
	for i := 0; i < nkeys; i++ {
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		key := make([]byte, klen)
		copy(key, buf[off:off+klen])
		off += klen
		val := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, val)
	}
	return n, nil
}

func (t *Tree) writeNode(id pager.PageID, n *node) error {
	buf := make([]byte, 0, t.file.PayloadSize())
	if n.isLeaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.keys)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n.next))
	for i, k := range n.keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, n.vals[i])
	}
	if len(buf) > t.file.PayloadSize() {
		return fmt.Errorf("btree: node overflow (%d bytes)", len(buf))
	}
	return t.file.WritePage(id, buf)
}

// entrySize returns the stored size of one entry.
func entrySize(key []byte) int { return 2 + len(key) + 8 }

// fits reports whether the node fits a page after adding key.
func (t *Tree) fits(n *node, extraKey []byte) bool {
	size := nodeHeader
	for _, k := range n.keys {
		size += entrySize(k)
	}
	size += entrySize(extraKey)
	return size <= t.file.PayloadSize()
}

// Insert adds (key, val). Duplicate keys are allowed; entries with equal
// keys are adjacent in scan order.
func (t *Tree) Insert(key []byte, val uint64) error {
	promoted, newChild, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if newChild == 0 {
		return nil
	}
	// Root split: new root with one key and two children.
	rootID, err := t.file.Allocate()
	if err != nil {
		return err
	}
	newRoot := &node{isLeaf: false, next: t.root, keys: [][]byte{promoted}, vals: []uint64{uint64(newChild)}}
	if err := t.writeNode(rootID, newRoot); err != nil {
		return err
	}
	t.root = rootID
	return nil
}

// insert descends; on child split it returns the promoted key and the new
// right node's id.
func (t *Tree) insert(id pager.PageID, key []byte, val uint64) ([]byte, pager.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, err
	}
	if n.isLeaf {
		pos := lowerBound(n.keys, key)
		n.keys = insertBytes(n.keys, pos, key)
		n.vals = insertU64(n.vals, pos, val)
		if t.fits(n, nil) {
			return nil, 0, t.writeNode(id, n)
		}
		return t.splitLeaf(id, n)
	}
	// Internal: child i covers keys < keys[i]; rightmost child covers rest.
	ci := lowerBound(n.keys, key)
	// For duplicate keys equal to a separator, descend right of it.
	for ci < len(n.keys) && bytes.Equal(n.keys[ci], key) {
		ci++
	}
	child := n.next
	if ci > 0 {
		child = pager.PageID(n.vals[ci-1])
	}
	promoted, newChild, err := t.insert(child, key, val)
	if err != nil || newChild == 0 {
		return nil, 0, err
	}
	n.keys = insertBytes(n.keys, ci, promoted)
	n.vals = insertU64(n.vals, ci, uint64(newChild))
	if t.fits(n, nil) {
		return nil, 0, t.writeNode(id, n)
	}
	return t.splitInternal(id, n)
}

func (t *Tree) splitLeaf(id pager.PageID, n *node) ([]byte, pager.PageID, error) {
	mid := len(n.keys) / 2
	rightID, err := t.file.Allocate()
	if err != nil {
		return nil, 0, err
	}
	right := &node{isLeaf: true, next: n.next, keys: n.keys[mid:], vals: n.vals[mid:]}
	left := &node{isLeaf: true, next: rightID, keys: n.keys[:mid], vals: n.vals[:mid]}
	if err := t.writeNode(rightID, right); err != nil {
		return nil, 0, err
	}
	if err := t.writeNode(id, left); err != nil {
		return nil, 0, err
	}
	return right.keys[0], rightID, nil
}

func (t *Tree) splitInternal(id pager.PageID, n *node) ([]byte, pager.PageID, error) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	rightID, err := t.file.Allocate()
	if err != nil {
		return nil, 0, err
	}
	right := &node{
		isLeaf: false,
		next:   pager.PageID(n.vals[mid]),
		keys:   append([][]byte{}, n.keys[mid+1:]...),
		vals:   append([]uint64{}, n.vals[mid+1:]...),
	}
	left := &node{isLeaf: false, next: n.next, keys: n.keys[:mid], vals: n.vals[:mid]}
	if err := t.writeNode(rightID, right); err != nil {
		return nil, 0, err
	}
	if err := t.writeNode(id, left); err != nil {
		return nil, 0, err
	}
	return promoted, rightID, nil
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertBytes(xs [][]byte, i int, x []byte) [][]byte {
	xs = append(xs, nil)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

func insertU64(xs []uint64, i int, x uint64) []uint64 {
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// Search returns the values stored under key.
func (t *Tree) Search(key []byte) ([]uint64, error) {
	var out []uint64
	err := t.Range(key, key, func(k []byte, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out, err
}

// Range visits entries with lo <= key <= hi in key order. fn returns false
// to stop early. hi nil means unbounded.
func (t *Tree) Range(lo, hi []byte, fn func(key []byte, val uint64) bool) error {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.isLeaf {
			break
		}
		// Descend LEFT of separators equal to lo: when duplicates straddle a
		// split, entries equal to the promoted separator remain in the left
		// leaf; the rightward leaf-chain walk picks up the rest.
		ci := lowerBound(n.keys, lo)
		if ci > 0 {
			id = pager.PageID(n.vals[ci-1])
		} else {
			id = n.next
		}
	}
	// Walk leaves rightward from the lower bound.
	for id != 0 {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for i := lowerBound(n.keys, lo); i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) > 0 {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		if len(n.keys) > 0 && hi != nil && bytes.Compare(n.keys[len(n.keys)-1], hi) > 0 {
			return nil
		}
		id = n.next
	}
	return nil
}

// Height returns the tree height (1 = single leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if n.isLeaf {
			return h, nil
		}
		h++
		id = n.next
	}
}

// EncodeKey builds an order-preserving binary key from a typed value:
// bytes.Compare on encoded keys agrees with value.Compare within a kind.
func EncodeKey(v value.Value) []byte {
	switch v.Kind() {
	case value.Int:
		// Flip the sign bit so two's complement orders lexicographically.
		u := uint64(v.Int()) ^ (1 << 63)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], u)
		return b[:]
	case value.Float:
		f := v.Float()
		u := math.Float64bits(f)
		if f >= 0 {
			u ^= 1 << 63
		} else {
			u = ^u
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], u)
		return b[:]
	case value.Str:
		return []byte(v.Str())
	case value.Bytes:
		return v.Bytes()
	case value.Bool:
		if v.Bool() {
			return []byte{1}
		}
		return []byte{0}
	default:
		return nil
	}
}
