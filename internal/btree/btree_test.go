package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"rodentstore/internal/pager"
	"rodentstore/internal/value"
)

func newTree(t *testing.T) (*Tree, *pager.File) {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "bt.rdnt"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	tr, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	return tr, f
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 10; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key-%02d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		vals, err := tr.Search([]byte(fmt.Sprintf("key-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i) {
			t.Errorf("key-%02d: %v", i, vals)
		}
	}
	if vals, _ := tr.Search([]byte("missing")); len(vals) != 0 {
		t.Errorf("missing key: %v", vals)
	}
}

func TestInsertManyCausesSplits(t *testing.T) {
	tr, _ := newTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert([]byte(fmt.Sprintf("k%08d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("5000 keys in 1KB pages must split: height %d", h)
	}
	// Every key findable.
	for i := 0; i < n; i += 97 {
		vals, err := tr.Search([]byte(fmt.Sprintf("k%08d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i) {
			t.Fatalf("key %d: %v", i, vals)
		}
	}
}

func TestRangeScanInOrder(t *testing.T) {
	tr, _ := newTree(t)
	const n = 2000
	for _, i := range rand.New(rand.NewSource(2)).Perm(n) {
		tr.Insert([]byte(fmt.Sprintf("k%08d", i)), uint64(i))
	}
	var got []uint64
	err := tr.Range([]byte("k00000100"), []byte("k00000199"), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("range size: %d", len(got))
	}
	for i, v := range got {
		if v != uint64(100+i) {
			t.Fatalf("range out of order at %d: %d", i, v)
		}
	}
	// Unbounded hi.
	count := 0
	tr.Range([]byte("k00001990"), nil, func(k []byte, v uint64) bool {
		count++
		return true
	})
	if count != 10 {
		t.Errorf("unbounded range: %d", count)
	}
	// Early stop.
	count = 0
	tr.Range(nil, nil, func(k []byte, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop: %d", count)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 500; i++ {
		if err := tr.Insert([]byte("dup"), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert([]byte(fmt.Sprintf("other%d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := tr.Search([]byte("dup"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 500 {
		t.Errorf("duplicates found: %d, want 500", len(vals))
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	tr, _ := newTree(t)
	ref := make(map[string][]uint64)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("k%04d", r.Intn(500))
		tr.Insert([]byte(key), uint64(i))
		ref[key] = append(ref[key], uint64(i))
	}
	for key, want := range ref {
		got, err := tr.Search([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(want) {
			t.Fatalf("key %s: %d values, want %d", key, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %s value %d: %d != %d", key, i, got[i], want[i])
			}
		}
	}
	// Full scan visits everything in sorted key order.
	var keys []string
	total := 0
	tr.Range(nil, nil, func(k []byte, v uint64) bool {
		keys = append(keys, string(k))
		total++
		return true
	})
	if total != 3000 {
		t.Errorf("full scan: %d entries", total)
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("full scan not in key order")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.rdnt")
	f, _ := pager.Create(path, 1024)
	tr, _ := New(f)
	for i := 0; i < 1000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%05d", i)), uint64(i))
	}
	root := tr.Root()
	f.MetaSet(5, uint64(root))
	f.Close()

	f2, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	tr2 := Open(f2, pager.PageID(f2.MetaGet(5)))
	vals, err := tr2.Search([]byte("k00777"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 777 {
		t.Errorf("persisted search: %v", vals)
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	// Int keys.
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(value.NewInt(a)), EncodeKey(value.NewInt(b))
		cmp := bytes.Compare(ka, kb)
		want := value.Compare(value.NewInt(a), value.NewInt(b))
		return cmp == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Float keys (excluding NaN, which has no order).
	g := func(a, b float64) bool {
		if a != a || b != b {
			return true
		}
		ka, kb := EncodeKey(value.NewFloat(a)), EncodeKey(value.NewFloat(b))
		cmp := bytes.Compare(ka, kb)
		want := value.Compare(value.NewFloat(a), value.NewFloat(b))
		return cmp == want
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// Mixed-sign specifics.
	cases := [][2]float64{{-1, 1}, {-0.5, -0.25}, {0, 1e-300}, {-1e300, 1e300}}
	for _, c := range cases {
		if bytes.Compare(EncodeKey(value.NewFloat(c[0])), EncodeKey(value.NewFloat(c[1]))) >= 0 {
			t.Errorf("EncodeKey order broken for %v", c)
		}
	}
	// Strings and bools.
	if bytes.Compare(EncodeKey(value.NewString("a")), EncodeKey(value.NewString("b"))) >= 0 {
		t.Error("string keys")
	}
	if bytes.Compare(EncodeKey(value.NewBool(false)), EncodeKey(value.NewBool(true))) >= 0 {
		t.Error("bool keys")
	}
	if EncodeKey(value.NullValue()) != nil {
		t.Error("null key should be nil")
	}
}

func TestIndexedLookupReadsFewPages(t *testing.T) {
	tr, f := newTree(t)
	for i := 0; i < 20000; i++ {
		tr.Insert(EncodeKey(value.NewInt(int64(i))), uint64(i))
	}
	h, _ := tr.Height()
	f.ResetStats()
	vals, err := tr.Search(EncodeKey(value.NewInt(12345)))
	if err != nil || len(vals) != 1 {
		t.Fatalf("search: %v %v", vals, err)
	}
	reads := f.Stats().PageReads
	if reads > uint64(h)+2 {
		t.Errorf("point lookup read %d pages for height-%d tree", reads, h)
	}
}

func BenchmarkInsert(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "bt.rdnt"), 4096)
	defer f.Close()
	tr, _ := New(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(EncodeKey(value.NewInt(int64(i))), uint64(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "bt.rdnt"), 4096)
	defer f.Close()
	tr, _ := New(f)
	for i := 0; i < 100000; i++ {
		tr.Insert(EncodeKey(value.NewInt(int64(i))), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(EncodeKey(value.NewInt(int64(i % 100000))))
	}
}
