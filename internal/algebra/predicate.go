package algebra

import (
	"fmt"
	"strings"

	"rodentstore/internal/value"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Comparison is one "field op literal" term.
type Comparison struct {
	Field string
	Op    CmpOp
	Value value.Value
}

// String renders the term in grammar form.
func (c Comparison) String() string {
	return c.Field + " " + string(c.Op) + " " + c.Value.String()
}

// Eval evaluates the term against a row under the given schema. Null field
// values never satisfy a comparison. The operator mapping is opOK — the
// same one the vectorized loops use, so the executors share one
// definition.
func (c Comparison) Eval(schema *value.Schema, row value.Row) bool {
	i := schema.Index(c.Field)
	if i < 0 || row[i].IsNull() {
		return false
	}
	return opOK(c.Op, value.Compare(row[i], c.Value))
}

// Predicate is a conjunction of comparisons. The zero Predicate is true.
// This is the condition language C of the algebra's comprehensions and the
// optional range predicate of the scan API (paper §4.1).
type Predicate struct {
	Terms []Comparison
}

// True is the empty (always-true) predicate.
var True = Predicate{}

// And returns a predicate with an extra term.
func (p Predicate) And(field string, op CmpOp, v value.Value) Predicate {
	return Predicate{Terms: append(append([]Comparison(nil), p.Terms...), Comparison{field, op, v})}
}

// IsTrue reports whether the predicate has no terms.
func (p Predicate) IsTrue() bool { return len(p.Terms) == 0 }

// Eval evaluates the conjunction against a row.
func (p Predicate) Eval(schema *value.Schema, row value.Row) bool {
	for _, t := range p.Terms {
		if !t.Eval(schema, row) {
			return false
		}
	}
	return true
}

// String renders the predicate in grammar form ("a = 1 and b < 2").
func (p Predicate) String() string {
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " and ")
}

// Fields returns the distinct field names referenced by the predicate.
func (p Predicate) Fields() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range p.Terms {
		if !seen[t.Field] {
			seen[t.Field] = true
			out = append(out, t.Field)
		}
	}
	return out
}

// Bounds extracts the interval constraint [lo, hi] that the predicate puts
// on field, if any. loOpen/hiOpen report strict inequalities; found is
// false when the field is unconstrained. Equality yields a degenerate
// closed interval. This is what grid and ordered segments use to prune.
func (p Predicate) Bounds(field string) (lo, hi value.Value, loOpen, hiOpen, found bool) {
	lo, hi = value.NullValue(), value.NullValue()
	for _, t := range p.Terms {
		if t.Field != field {
			continue
		}
		switch t.Op {
		case OpEq:
			if !found || value.Compare(t.Value, lo) > 0 {
				lo, loOpen = t.Value, false
			}
			if hi.IsNull() || value.Compare(t.Value, hi) < 0 {
				hi, hiOpen = t.Value, false
			}
			found = true
		case OpGt, OpGe:
			if lo.IsNull() || value.Compare(t.Value, lo) > 0 {
				lo, loOpen = t.Value, t.Op == OpGt
			}
			found = true
		case OpLt, OpLe:
			if hi.IsNull() || value.Compare(t.Value, hi) < 0 {
				hi, hiOpen = t.Value, t.Op == OpLt
			}
			found = true
		}
	}
	return lo, hi, loOpen, hiOpen, found
}

// Validate checks that every referenced field exists in the schema and that
// literal types are comparable with the field types.
func (p Predicate) Validate(schema *value.Schema) error {
	for _, t := range p.Terms {
		i := schema.Index(t.Field)
		if i < 0 {
			return fmt.Errorf("algebra: predicate references unknown field %q", t.Field)
		}
		ft := schema.Fields[i].Type
		vt := t.Value.Kind()
		numeric := func(k value.Kind) bool { return k == value.Int || k == value.Float }
		if vt == value.Null {
			return fmt.Errorf("algebra: predicate on %q compares against null", t.Field)
		}
		if ft == vt || (numeric(ft) && numeric(vt)) {
			continue
		}
		return fmt.Errorf("algebra: predicate on %q: cannot compare %s with %s", t.Field, ft, vt)
	}
	return nil
}
