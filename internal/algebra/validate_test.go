package algebra

import (
	"testing"

	"rodentstore/internal/value"
)

func tracesSchema() map[string]*value.Schema {
	return map[string]*value.Schema{
		"Traces": value.MustSchema(
			value.Field{Name: "t", Type: value.Int},
			value.Field{Name: "lat", Type: value.Float},
			value.Field{Name: "lon", Type: value.Float},
			value.Field{Name: "id", Type: value.Str},
		),
		"Areas": value.MustSchema(
			value.Field{Name: "area", Type: value.Int},
			value.Field{Name: "zip", Type: value.Int},
			value.Field{Name: "addr", Type: value.Str},
		),
	}
}

func TestInferValid(t *testing.T) {
	schemas := tracesSchema()
	cases := []struct {
		src  string
		want string
	}{
		{"Traces", "t:int, lat:float, lon:float, id:string"},
		{"rows(Traces)", "t:int, lat:float, lon:float, id:string"},
		{"cols(Traces)", "t:int, lat:float, lon:float, id:string"},
		{"project[lat,lon](Traces)", "lat:float, lon:float"},
		{"project[lon,lat](Traces)", "lon:float, lat:float"},
		{"colgroup[t; lat,lon; id](Traces)", "t:int, lat:float, lon:float, id:string"},
		{"orderby[t](Traces)", "t:int, lat:float, lon:float, id:string"},
		{"select[lat > 42.0](Traces)", "t:int, lat:float, lon:float, id:string"},
		{"fold[zip,addr; area](Areas)", "area:int, folded_zip_addr:list"},
		{"unfold(fold[zip; area](Areas))", "area:int, zip:int"},
		{"unfold(fold[zip,addr; area](Areas))", "area:int, zip:int, addr:string"},
		{"prejoin[area](Areas, Areas)", "area:int, zip:int, addr:string, r_zip:int, r_addr:string"},
		{"delta[lat,lon](Traces)", "t:int, lat:float, lon:float, id:string"},
		{"bitpack[t](Traces)", "t:int, lat:float, lon:float, id:string"},
		{"grid[lat,lon; 64,64](Traces)", "t:int, lat:float, lon:float, id:string"},
		{"zorder(grid[lat,lon; 8,8](Traces))", "t:int, lat:float, lon:float, id:string"},
		{"limit[10](chunk[5](Traces))", "t:int, lat:float, lon:float, id:string"},
		{"sizetiered[4](orderby[t](Traces))", "t:int, lat:float, lon:float, id:string"},
		{"leveled[8](project[lat,lon](Traces))", "lat:float, lon:float"},
		{"delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](orderby[t](groupby[id](Traces))))))", "lat:float, lon:float"},
	}
	for _, c := range cases {
		s, err := Infer(MustParse(c.src), schemas)
		if err != nil {
			t.Errorf("Infer(%q): %v", c.src, err)
			continue
		}
		if got := s.String(); got != c.want {
			t.Errorf("Infer(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestInferErrors(t *testing.T) {
	schemas := tracesSchema()
	bad := []string{
		"Nope",                               // unknown table
		"project[bogus](Traces)",             // unknown field
		"project[lat](project[lon](Traces))", // lat projected away
		"colgroup[lat; lat](Traces)",         // duplicate field
		"orderby[bogus](Traces)",             // unknown orderby field
		"groupby[bogus](Traces)",             // unknown groupby field
		"select[bogus = 1](Traces)",          // unknown predicate field
		"select[id > 5](Traces)",             // type mismatch str vs int
		"fold[bogus; area](Areas)",           // unknown fold value
		"fold[zip; bogus](Areas)",            // unknown fold key
		"fold[area; area](Areas)",            // field on both sides
		"unfold(Traces)",                     // unfold of unfolded input
		"prejoin[bogus](Areas, Areas)",       // missing join attribute
		"delta[id](Traces)",                  // delta on string
		"bitpack[lat](Traces)",               // bitpack on float
		"grid[id; 8](Traces)",                // grid on string
		"grid[bogus; 8](Traces)",             // grid on unknown field
		"zorder(Traces)",                     // curve without grid
		"zorder(project[lat](Traces))",       // curve without grid below
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q) unexpectedly failed: %v", src, err)
		}
		if _, err := Infer(e, schemas); err == nil {
			t.Errorf("Infer(%q) should fail", src)
		}
	}
	// The parser rejects malformed compaction directives, but a hand-built
	// node with a bad kind or fanout must not sneak past validation either.
	for _, n := range []Expr{
		&Compact{Kind: "mystery", Fanout: 4, Input: &Base{Name: "Traces"}},
		&Compact{Kind: CompactLeveled, Fanout: 1, Input: &Base{Name: "Traces"}},
	} {
		if _, err := Infer(n, schemas); err == nil {
			t.Errorf("Infer(%s) should fail", n)
		}
	}
}

func TestInferCaseStudyLayouts(t *testing.T) {
	// The paper's five case-study layouts must all validate (§6).
	schemas := tracesSchema()
	layouts := []string{
		"rows(Traces)",
		"project[lat,lon](orderby[t](groupby[id](Traces)))",
		"grid[lat,lon; 64,64](project[lat,lon](orderby[t](groupby[id](Traces))))",
		"zorder(grid[lat,lon; 64,64](project[lat,lon](orderby[t](groupby[id](Traces)))))",
		"delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](orderby[t](groupby[id](Traces))))))",
	}
	for _, l := range layouts {
		if _, err := Infer(MustParse(l), schemas); err != nil {
			t.Errorf("case-study layout %q: %v", l, err)
		}
	}
}
