package algebra

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"rodentstore/internal/value"
)

// Parse parses the textual form of a storage-algebra expression.
//
// Grammar (see package doc for examples):
//
//	expr    := IDENT                              base table
//	         | op '(' expr {',' expr} ')'         zorder(e), transpose(e), ...
//	         | op '[' args ']' '(' expr... ')'    project[a,b](e), grid[x,y; 8,8](e)
//	args    := sections separated by ';'; each section is a comma list of
//	           identifiers, numbers, order keys (f desc) or a predicate
//	           (select only: f = 1 and g < 2.5)
func Parse(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.text)
	}
	return e, nil
}

// MustParse is Parse for statically known expressions; it panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) [ ] , ;
	tokOp    // = != < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == ';':
		l.pos++
		return token{tokPunct, string(c), start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, fmt.Errorf("algebra: pos %d: unexpected '!'", start)
	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, string(c), start}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("algebra: pos %d: unterminated string", start)
		}
		l.pos++
		return token{tokString, sb.String(), start}, nil
	case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
		l.pos++
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if unicode.IsDigit(rune(d)) || d == '.' || d == 'e' || d == 'E' ||
				((d == '-' || d == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case unicode.IsLetter(rune(c)) || c == '_':
		l.pos++
		for l.pos < len(l.src) {
			d := rune(l.src[l.pos])
			if unicode.IsLetter(d) || unicode.IsDigit(d) || d == '_' {
				l.pos++
				continue
			}
			break
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("algebra: pos %d: unexpected character %q", start, c)
	}
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("algebra: pos %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.next()
}

// parseExpr parses one expression.
func (p *parser) parseExpr() (Expr, error) {
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected operator or table name, found %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.next(); err != nil {
		return nil, err
	}
	// Bare identifier = base table.
	if p.tok.kind != tokPunct || (p.tok.text != "(" && p.tok.text != "[") {
		return &Base{Name: name}, nil
	}

	// Optional [...] argument section, raw-tokenized per operator below.
	var args string
	if p.tok.text == "[" {
		// Capture the raw bracket content; operators parse it themselves.
		depth := 1
		start := p.lex.pos
		for depth > 0 {
			if p.lex.pos >= len(p.lex.src) {
				return nil, p.errf("unterminated '['")
			}
			switch p.lex.src[p.lex.pos] {
			case '[':
				depth++
			case ']':
				depth--
			}
			p.lex.pos++
		}
		args = p.lex.src[start : p.lex.pos-1]
		if err := p.next(); err != nil {
			return nil, err
		}
	}

	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var inputs []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, e)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return buildOp(name, args, inputs)
}

// buildOp constructs the AST node for an operator invocation.
func buildOp(name, args string, inputs []Expr) (Expr, error) {
	one := func() (Expr, error) {
		if len(inputs) != 1 {
			return nil, fmt.Errorf("algebra: %s takes exactly one input, got %d", name, len(inputs))
		}
		return inputs[0], nil
	}
	noArgs := func() error {
		if strings.TrimSpace(args) != "" {
			return fmt.Errorf("algebra: %s takes no [...] arguments", name)
		}
		return nil
	}
	switch name {
	case "rows":
		in, err := one()
		if err == nil {
			err = noArgs()
		}
		if err != nil {
			return nil, err
		}
		return &Rows{Input: in}, nil
	case "cols":
		in, err := one()
		if err == nil {
			err = noArgs()
		}
		if err != nil {
			return nil, err
		}
		return &Cols{Input: in}, nil
	case "unfold":
		in, err := one()
		if err == nil {
			err = noArgs()
		}
		if err != nil {
			return nil, err
		}
		return &Unfold{Input: in}, nil
	case "transpose":
		in, err := one()
		if err == nil {
			err = noArgs()
		}
		if err != nil {
			return nil, err
		}
		return &Transpose{Input: in}, nil
	case "zorder", "hilbert", "rowmajor":
		in, err := one()
		if err == nil {
			err = noArgs()
		}
		if err != nil {
			return nil, err
		}
		return &Curve{Kind: CurveKind(name), Input: in}, nil
	case "project":
		in, err := one()
		if err != nil {
			return nil, err
		}
		fields, err := identList(args)
		if err != nil {
			return nil, fmt.Errorf("algebra: project: %w", err)
		}
		return &Project{Fields: fields, Input: in}, nil
	case "colgroup":
		in, err := one()
		if err != nil {
			return nil, err
		}
		var groups [][]string
		for _, sect := range strings.Split(args, ";") {
			g, err := identList(sect)
			if err != nil {
				return nil, fmt.Errorf("algebra: colgroup: %w", err)
			}
			groups = append(groups, g)
		}
		return &ColGroups{Groups: groups, Input: in}, nil
	case "select":
		in, err := one()
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(args) == "" {
			return nil, fmt.Errorf("algebra: select needs a condition")
		}
		pred, err := ParsePredicate(args)
		if err != nil {
			return nil, err
		}
		return &Select{Pred: pred, Input: in}, nil
	case "orderby":
		in, err := one()
		if err != nil {
			return nil, err
		}
		keys, err := orderKeys(args)
		if err != nil {
			return nil, err
		}
		return &OrderBy{Keys: keys, Input: in}, nil
	case "groupby":
		in, err := one()
		if err != nil {
			return nil, err
		}
		fields, err := identList(args)
		if err != nil {
			return nil, fmt.Errorf("algebra: groupby: %w", err)
		}
		return &GroupBy{Fields: fields, Input: in}, nil
	case "limit":
		in, err := one()
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(args))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("algebra: limit: bad count %q", args)
		}
		return &Limit{N: n, Input: in}, nil
	case "chunk":
		in, err := one()
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(args))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("algebra: chunk: bad size %q", args)
		}
		return &Chunk{N: n, Input: in}, nil
	case "sizetiered", "leveled":
		in, err := one()
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(args))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("algebra: %s: bad fanout %q (need an integer >= 2)", name, args)
		}
		return &Compact{Kind: CompactKind(name), Fanout: n, Input: in}, nil
	case "fold":
		in, err := one()
		if err != nil {
			return nil, err
		}
		sects := strings.Split(args, ";")
		if len(sects) != 2 {
			return nil, fmt.Errorf("algebra: fold takes [values; by], got %q", args)
		}
		vals, err := identList(sects[0])
		if err != nil {
			return nil, fmt.Errorf("algebra: fold values: %w", err)
		}
		by, err := identList(sects[1])
		if err != nil {
			return nil, fmt.Errorf("algebra: fold by: %w", err)
		}
		return &Fold{Values: vals, By: by, Input: in}, nil
	case "prejoin":
		if len(inputs) != 2 {
			return nil, fmt.Errorf("algebra: prejoin takes two inputs, got %d", len(inputs))
		}
		attr := strings.TrimSpace(args)
		if attr == "" {
			return nil, fmt.Errorf("algebra: prejoin needs a join attribute")
		}
		return &Prejoin{JoinAttr: attr, Left: inputs[0], Right: inputs[1]}, nil
	case "delta", "rle", "dict", "bitpack":
		in, err := one()
		if err != nil {
			return nil, err
		}
		fields, err := identList(args)
		if err != nil {
			return nil, fmt.Errorf("algebra: %s: %w", name, err)
		}
		return &Compress{Codec: name, Fields: fields, Input: in}, nil
	case "grid":
		in, err := one()
		if err != nil {
			return nil, err
		}
		sects := strings.Split(args, ";")
		if len(sects) != 2 {
			return nil, fmt.Errorf("algebra: grid takes [fields; cells], got %q", args)
		}
		fields, err := identList(sects[0])
		if err != nil {
			return nil, fmt.Errorf("algebra: grid fields: %w", err)
		}
		var cells []int
		for _, c := range strings.Split(sects[1], ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("algebra: grid: bad cell count %q", c)
			}
			cells = append(cells, n)
		}
		if len(cells) != len(fields) {
			return nil, fmt.Errorf("algebra: grid: %d fields but %d cell counts", len(fields), len(cells))
		}
		dims := make([]GridDim, len(fields))
		for i := range fields {
			dims[i] = GridDim{Field: fields[i], Cells: cells[i]}
		}
		return &Grid{Dims: dims, Input: in}, nil
	default:
		return nil, fmt.Errorf("algebra: unknown operator %q", name)
	}
}

func identList(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		id := strings.TrimSpace(part)
		if id == "" {
			return nil, fmt.Errorf("empty identifier in %q", s)
		}
		for i, r := range id {
			if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
				return nil, fmt.Errorf("bad identifier %q", id)
			}
		}
		out = append(out, id)
	}
	return out, nil
}

func orderKeys(s string) ([]OrderKey, error) {
	var out []OrderKey
	for _, part := range strings.Split(s, ",") {
		words := strings.Fields(part)
		switch len(words) {
		case 1:
			out = append(out, OrderKey{Field: words[0]})
		case 2:
			switch strings.ToLower(words[1]) {
			case "asc":
				out = append(out, OrderKey{Field: words[0]})
			case "desc":
				out = append(out, OrderKey{Field: words[0], Desc: true})
			default:
				return nil, fmt.Errorf("algebra: orderby: bad direction %q", words[1])
			}
		default:
			return nil, fmt.Errorf("algebra: orderby: bad key %q", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("algebra: orderby needs at least one key")
	}
	return out, nil
}

// ParseOrderBy parses an order list like "t desc, id" into order keys.
func ParseOrderBy(src string) ([]OrderKey, error) {
	return orderKeys(src)
}

// ParsePredicate parses a conjunction like `lat >= 42.3 and id = "car-7"`.
func ParsePredicate(src string) (Predicate, error) {
	lex := newLexer(src)
	var pred Predicate
	for {
		tok, err := lex.lex()
		if err != nil {
			return Predicate{}, err
		}
		if tok.kind == tokEOF {
			if len(pred.Terms) == 0 && strings.TrimSpace(src) != "" {
				return Predicate{}, fmt.Errorf("algebra: bad predicate %q", src)
			}
			return pred, nil
		}
		if tok.kind != tokIdent {
			return Predicate{}, fmt.Errorf("algebra: predicate: expected field name, found %q", tok.text)
		}
		field := tok.text
		opTok, err := lex.lex()
		if err != nil {
			return Predicate{}, err
		}
		if opTok.kind != tokOp {
			return Predicate{}, fmt.Errorf("algebra: predicate: expected operator after %q, found %q", field, opTok.text)
		}
		valTok, err := lex.lex()
		if err != nil {
			return Predicate{}, err
		}
		v, err := literal(valTok)
		if err != nil {
			return Predicate{}, err
		}
		pred.Terms = append(pred.Terms, Comparison{Field: field, Op: CmpOp(opTok.text), Value: v})

		sep, err := lex.lex()
		if err != nil {
			return Predicate{}, err
		}
		if sep.kind == tokEOF {
			return pred, nil
		}
		if sep.kind != tokIdent || strings.ToLower(sep.text) != "and" {
			return Predicate{}, fmt.Errorf("algebra: predicate: expected 'and', found %q", sep.text)
		}
	}
}

func literal(t token) (value.Value, error) {
	switch t.kind {
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return value.NewInt(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("algebra: bad number %q", t.text)
		}
		return value.NewFloat(f), nil
	case tokString:
		return value.NewString(t.text), nil
	case tokIdent:
		switch t.text {
		case "true":
			return value.NewBool(true), nil
		case "false":
			return value.NewBool(false), nil
		case "null":
			return value.NullValue(), nil
		}
		return value.Value{}, fmt.Errorf("algebra: bad literal %q (strings need quotes)", t.text)
	default:
		return value.Value{}, fmt.Errorf("algebra: bad literal %q", t.text)
	}
}
