package algebra

import (
	"fmt"

	"rodentstore/internal/value"
)

// Infer computes the output schema of an expression given the base-table
// schemas, validating field references, types, and operator composition
// along the way. For Fold, nested value groups surface as a single List
// field named after the folded attributes.
func Infer(e Expr, schemas map[string]*value.Schema) (*value.Schema, error) {
	switch n := e.(type) {
	case *Base:
		s, ok := schemas[n.Name]
		if !ok {
			return nil, fmt.Errorf("algebra: unknown table %q", n.Name)
		}
		return s, nil

	case *Rows:
		return Infer(n.Input, schemas)
	case *Cols:
		return Infer(n.Input, schemas)

	case *Project:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		out, _, err := in.Project(n.Fields)
		return out, err

	case *ColGroups:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		if len(n.Groups) == 0 {
			return nil, fmt.Errorf("algebra: colgroup needs at least one group")
		}
		seen := make(map[string]bool)
		var all []string
		for _, g := range n.Groups {
			for _, f := range g {
				if seen[f] {
					return nil, fmt.Errorf("algebra: colgroup lists %q twice", f)
				}
				seen[f] = true
				all = append(all, f)
			}
		}
		// Unlisted fields are kept: they form a trailing catch-all group, so
		// colgroup reorders the schema but never drops attributes.
		for _, f := range in.Fields {
			if !seen[f.Name] {
				all = append(all, f.Name)
			}
		}
		out, _, err := in.Project(all)
		return out, err

	case *Select:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		if err := n.Pred.Validate(in); err != nil {
			return nil, err
		}
		return in, nil

	case *OrderBy:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		for _, k := range n.Keys {
			if in.Index(k.Field) < 0 {
				return nil, fmt.Errorf("algebra: orderby references unknown field %q", k.Field)
			}
		}
		return in, nil

	case *GroupBy:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		for _, f := range n.Fields {
			if in.Index(f) < 0 {
				return nil, fmt.Errorf("algebra: groupby references unknown field %q", f)
			}
		}
		return in, nil

	case *Limit:
		return Infer(n.Input, schemas)

	case *Fold:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		var fields []value.Field
		for _, f := range n.By {
			i := in.Index(f)
			if i < 0 {
				return nil, fmt.Errorf("algebra: fold by references unknown field %q", f)
			}
			fields = append(fields, in.Fields[i])
		}
		for _, f := range n.Values {
			if in.Index(f) < 0 {
				return nil, fmt.Errorf("algebra: fold values references unknown field %q", f)
			}
			if contains(n.By, f) {
				return nil, fmt.Errorf("algebra: fold field %q cannot be both value and key", f)
			}
		}
		fields = append(fields, value.Field{Name: foldedFieldName(n.Values), Type: value.List})
		return value.NewSchema(fields...)

	case *Unfold:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		// Unfold requires the input to be folded: last field must be a List.
		if in.Arity() == 0 || in.Fields[in.Arity()-1].Type != value.List {
			return nil, fmt.Errorf("algebra: unfold requires a folded input (trailing list field)")
		}
		// Recover the flat schema from the fold node below: the group keys
		// keep their places and the folded list expands back into the value
		// fields with their pre-fold types.
		fold := findFoldNode(n.Input)
		if fold == nil {
			return nil, fmt.Errorf("algebra: unfold requires a fold in its input")
		}
		preFold, err := Infer(fold.Input, schemas)
		if err != nil {
			return nil, err
		}
		fields := append([]value.Field(nil), in.Fields[:in.Arity()-1]...)
		for _, v := range fold.Values {
			i := preFold.Index(v)
			if i < 0 {
				return nil, fmt.Errorf("algebra: unfold: fold value %q missing below", v)
			}
			fields = append(fields, preFold.Fields[i])
		}
		return value.NewSchema(fields...)

	case *Prejoin:
		left, err := Infer(n.Left, schemas)
		if err != nil {
			return nil, err
		}
		right, err := Infer(n.Right, schemas)
		if err != nil {
			return nil, err
		}
		if left.Index(n.JoinAttr) < 0 || right.Index(n.JoinAttr) < 0 {
			return nil, fmt.Errorf("algebra: prejoin attribute %q missing from an input", n.JoinAttr)
		}
		var fields []value.Field
		fields = append(fields, left.Fields...)
		for _, f := range right.Fields {
			if f.Name == n.JoinAttr {
				continue // joined attribute appears once
			}
			if left.Index(f.Name) >= 0 {
				f.Name = "r_" + f.Name
			}
			fields = append(fields, f)
		}
		return value.NewSchema(fields...)

	case *Compress:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		for _, f := range n.Fields {
			i := in.Index(f)
			if i < 0 {
				return nil, fmt.Errorf("algebra: %s references unknown field %q", n.Codec, f)
			}
			ft := in.Fields[i].Type
			switch n.Codec {
			case "delta":
				if ft != value.Int && ft != value.Float {
					return nil, fmt.Errorf("algebra: delta requires numeric field, %q is %s", f, ft)
				}
			case "bitpack":
				if ft != value.Int {
					return nil, fmt.Errorf("algebra: bitpack requires int field, %q is %s", f, ft)
				}
			}
		}
		return in, nil

	case *Grid:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		if len(n.Dims) == 0 {
			return nil, fmt.Errorf("algebra: grid needs at least one dimension")
		}
		for _, d := range n.Dims {
			i := in.Index(d.Field)
			if i < 0 {
				return nil, fmt.Errorf("algebra: grid references unknown field %q", d.Field)
			}
			if t := in.Fields[i].Type; t != value.Int && t != value.Float {
				return nil, fmt.Errorf("algebra: grid dimension %q must be numeric, is %s", d.Field, t)
			}
			if d.Cells <= 0 {
				return nil, fmt.Errorf("algebra: grid dimension %q has %d cells", d.Field, d.Cells)
			}
		}
		return in, nil

	case *Curve:
		in, err := Infer(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		switch n.Kind {
		case CurveRowMajor, CurveZOrder, CurveHilbert:
		default:
			return nil, fmt.Errorf("algebra: unknown curve %q", n.Kind)
		}
		// A curve must (eventually) order grid cells.
		if !hasGridBelow(n.Input) {
			return nil, fmt.Errorf("algebra: %s requires a grid input", n.Kind)
		}
		return in, nil

	case *Transpose:
		return Infer(n.Input, schemas)

	case *Chunk:
		if n.N <= 0 {
			return nil, fmt.Errorf("algebra: chunk size %d", n.N)
		}
		return Infer(n.Input, schemas)

	case *Compact:
		switch n.Kind {
		case CompactSizeTiered, CompactLeveled:
		default:
			return nil, fmt.Errorf("algebra: unknown compaction policy %q", n.Kind)
		}
		if n.Fanout < 2 {
			return nil, fmt.Errorf("algebra: %s fanout %d (need >= 2)", n.Kind, n.Fanout)
		}
		return Infer(n.Input, schemas)

	default:
		return nil, fmt.Errorf("algebra: unknown expression node %T", e)
	}
}

// foldedFieldName names the List field produced by a Fold.
func foldedFieldName(values []string) string {
	name := "folded"
	for _, v := range values {
		name += "_" + v
	}
	return name
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func hasGridBelow(e Expr) bool {
	found := false
	Walk(e, func(x Expr) {
		if _, ok := x.(*Grid); ok {
			found = true
		}
	})
	return found
}

func findFoldNode(e Expr) *Fold {
	var found *Fold
	Walk(e, func(x Expr) {
		if f, ok := x.(*Fold); ok && found == nil {
			found = f
		}
	})
	return found
}
