package algebra

// Vectorized predicate evaluation: CompilePred lowers a Predicate into a
// sequence of typed comparison loops that run column-at-a-time over a
// vec.Batch, compacting a selection vector — no schema lookup, interface
// dispatch or value boxing per row. Results are identical to evaluating
// Predicate.Eval on every boxed row, including the null rule (a null field
// never satisfies a comparison) and value.Compare's numeric and NaN
// ordering.

import (
	"bytes"
	"fmt"
	"sort"

	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// termKind selects the typed comparison loop of one compiled term.
type termKind uint8

const (
	termIntInt     termKind = iota // int64 column vs int64 constant
	termIntFloat                   // int64 column vs float64 constant (compare as floats)
	termFloatFloat                 // float64 column vs float64 constant
	termBytes                      // arena column vs []byte constant
	termBoxed                      // fallback: box each row, value.Compare
)

// vecTerm is one compiled comparison.
type vecTerm struct {
	col  int
	op   CmpOp
	kind termKind
	i    int64
	f    float64
	b    []byte
	v    value.Value // boxed constant (termBoxed)
}

// CompiledPred is a predicate compiled against one schema, ready to filter
// batches of that schema. Terms are ordered cheap-first: fixed-width numeric
// columns (the zone-mapped ones) run before byte-string and boxed terms, so
// the selection is usually small by the time expensive comparisons run.
type CompiledPred struct {
	terms []vecTerm
	cols  []int
}

// CompilePred compiles p for batches of the given schema. The empty
// predicate compiles to a pass-through filter.
func CompilePred(p Predicate, schema *value.Schema) (*CompiledPred, error) {
	cp := &CompiledPred{}
	seen := make(map[int]bool)
	for _, t := range p.Terms {
		ci := schema.Index(t.Field)
		if ci < 0 {
			return nil, fmt.Errorf("algebra: predicate references unknown field %q", t.Field)
		}
		vt := vecTerm{col: ci, op: t.Op, kind: termBoxed, v: t.Value}
		ft := schema.Fields[ci].Type
		cv := t.Value
		switch ft {
		case value.Int:
			switch cv.Kind() {
			case value.Int:
				vt.kind, vt.i = termIntInt, cv.Int()
			case value.Float:
				vt.kind, vt.f = termIntFloat, cv.Float()
			}
		case value.Bool:
			if cv.Kind() == value.Bool {
				vt.kind, vt.i = termIntInt, cv.Int()
			}
		case value.Float:
			switch cv.Kind() {
			case value.Float, value.Int:
				// value.Compare widens Int constants to float here, so the
				// typed loop can too.
				vt.kind, vt.f = termFloatFloat, cv.Float()
			}
		case value.Str:
			if cv.Kind() == value.Str {
				vt.kind, vt.b = termBytes, []byte(cv.Str())
			}
		case value.Bytes:
			if cv.Kind() == value.Bytes {
				vt.kind, vt.b = termBytes, cv.Bytes()
			}
		}
		cp.terms = append(cp.terms, vt)
		if !seen[ci] {
			seen[ci] = true
			cp.cols = append(cp.cols, ci)
		}
	}
	sort.SliceStable(cp.terms, func(a, b int) bool {
		return cp.terms[a].cost() < cp.terms[b].cost()
	})
	return cp, nil
}

// cost orders terms cheapest-comparison-first.
func (t *vecTerm) cost() int {
	switch t.kind {
	case termIntInt, termIntFloat, termFloatFloat:
		return 0
	case termBytes:
		return 1
	default:
		return 2
	}
}

// Empty reports whether the predicate has no terms (filter is pass-through).
func (cp *CompiledPred) Empty() bool { return len(cp.terms) == 0 }

// Columns returns the distinct column indexes the filter reads, in first-use
// order. The scan decodes exactly these before filtering (late
// materialization decodes the rest only for surviving rows).
func (cp *CompiledPred) Columns() []int { return cp.cols }

// Filter compacts sel down to the rows of b satisfying the conjunction,
// reusing sel's backing array, and returns it.
func (cp *CompiledPred) Filter(b *vec.Batch, sel []int32) []int32 {
	for i := range cp.terms {
		if len(sel) == 0 {
			return sel
		}
		sel = cp.terms[i].filter(b, sel)
	}
	return sel
}

// opOK maps a three-way comparison to the term's operator.
func opOK(op CmpOp, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// cmpF is value.Compare's float ordering (NaNs sort before everything,
// including -Inf) — shared, not copied, so the executors cannot drift.
var cmpF = value.CompareFloats

// filter compacts sel by this term's comparison.
func (t *vecTerm) filter(b *vec.Batch, sel []int32) []int32 {
	v := &b.Cols[t.col]
	out := sel[:0]
	nulls := v.Nulls.Any()
	switch t.kind {
	case termIntInt:
		xs, c := v.Int64s, t.i
		for _, i := range sel {
			if nulls && v.IsNull(int(i)) {
				continue
			}
			x := xs[i]
			cmp := 0
			if x < c {
				cmp = -1
			} else if x > c {
				cmp = 1
			}
			if opOK(t.op, cmp) {
				out = append(out, i)
			}
		}
	case termIntFloat:
		xs, c := v.Int64s, t.f
		for _, i := range sel {
			if nulls && v.IsNull(int(i)) {
				continue
			}
			if opOK(t.op, cmpF(float64(xs[i]), c)) {
				out = append(out, i)
			}
		}
	case termFloatFloat:
		xs, c := v.Float64s, t.f
		for _, i := range sel {
			if nulls && v.IsNull(int(i)) {
				continue
			}
			if opOK(t.op, cmpF(xs[i], c)) {
				out = append(out, i)
			}
		}
	case termBytes:
		for _, i := range sel {
			if nulls && v.IsNull(int(i)) {
				continue
			}
			if opOK(t.op, bytes.Compare(v.BytesAt(int(i)), t.b)) {
				out = append(out, i)
			}
		}
	default: // termBoxed
		for _, i := range sel {
			x := v.Value(int(i))
			if x.IsNull() {
				continue
			}
			if opOK(t.op, value.Compare(x, t.v)) {
				out = append(out, i)
			}
		}
	}
	return out
}
