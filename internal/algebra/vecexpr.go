package algebra

// Vectorized expression evaluation: CompileExpr lowers a ScalarExpr into a
// postfix program over typed registers, evaluated column-at-a-time for the
// selected rows of a vec.Batch — the CompilePred approach applied to
// arithmetic. Results are identical to EvalScalar on every boxed row,
// including the null rule (null operand -> null result), int wraparound and
// the x/0 -> null int-division rule.

import (
	"fmt"
	"math"

	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// exprOp is one postfix instruction.
type exprOp uint8

const (
	opLoadInt   exprOp = iota // push int column (gathered through sel)
	opLoadFloat               // push float column
	opConstInt                // push int literal (broadcast)
	opConstFloat              // push float literal
	opI2F                     // widen top register int -> float
	opAddI                    // pop 2 ints, push int
	opSubI
	opMulI
	opDivI // x/0 -> null; MinInt64 / -1 -> MinInt64
	opAddF // pop 2 floats, push float (IEEE)
	opSubF
	opMulF
	opDivF
)

// exprInstr is one step of the compiled program.
type exprInstr struct {
	op  exprOp
	col int     // opLoad*
	i   int64   // opConstInt
	f   float64 // opConstFloat
}

// CompiledExpr is a scalar expression compiled against one schema, ready to
// evaluate over batches of that schema.
type CompiledExpr struct {
	prog  []exprInstr
	cols  []int
	kind  value.Kind // result kind: Int or Float
	depth int        // register stack depth the program needs
}

// exprReg is one register: a dense value array (one slot per selected row)
// plus a null bitmap.
type exprReg struct {
	ints   []int64
	floats []float64
	nulls  vec.Bitmap
}

// ExprScratch holds the reusable register file of one evaluating goroutine.
type ExprScratch struct {
	regs []exprReg
}

// CompileExpr compiles e for batches of the given schema.
func CompileExpr(e ScalarExpr, schema *value.Schema) (*CompiledExpr, error) {
	kind, err := ExprType(e, schema)
	if err != nil {
		return nil, err
	}
	ce := &CompiledExpr{kind: kind}
	seen := make(map[int]bool)
	depth := ce.emit(e, schema, seen, 0)
	ce.depth = depth
	return ce, nil
}

// emit appends e's program and returns the peak stack depth; cur is the
// stack depth at entry.
func (ce *CompiledExpr) emit(e ScalarExpr, schema *value.Schema, seen map[int]bool, cur int) int {
	switch e := e.(type) {
	case *ColExpr:
		ci := schema.Index(e.Name)
		if !seen[ci] {
			seen[ci] = true
			ce.cols = append(ce.cols, ci)
		}
		if schema.Fields[ci].Type == value.Float {
			ce.prog = append(ce.prog, exprInstr{op: opLoadFloat, col: ci})
		} else {
			ce.prog = append(ce.prog, exprInstr{op: opLoadInt, col: ci})
		}
		return cur + 1
	case *ConstExpr:
		if e.Val.Kind() == value.Float {
			ce.prog = append(ce.prog, exprInstr{op: opConstFloat, f: e.Val.Float()})
		} else {
			ce.prog = append(ce.prog, exprInstr{op: opConstInt, i: e.Val.Int()})
		}
		return cur + 1
	case *BinExpr:
		lk, _ := ExprType(e.L, schema)
		rk, _ := ExprType(e.R, schema)
		isFloat := lk == value.Float || rk == value.Float
		peak := ce.emit(e.L, schema, seen, cur)
		if isFloat && lk == value.Int {
			ce.prog = append(ce.prog, exprInstr{op: opI2F})
		}
		if p := ce.emit(e.R, schema, seen, cur+1); p > peak {
			peak = p
		}
		if isFloat && rk == value.Int {
			ce.prog = append(ce.prog, exprInstr{op: opI2F})
		}
		var op exprOp
		if isFloat {
			switch e.Op {
			case '+':
				op = opAddF
			case '-':
				op = opSubF
			case '*':
				op = opMulF
			default:
				op = opDivF
			}
		} else {
			switch e.Op {
			case '+':
				op = opAddI
			case '-':
				op = opSubI
			case '*':
				op = opMulI
			default:
				op = opDivI
			}
		}
		ce.prog = append(ce.prog, exprInstr{op: op})
		return peak
	}
	return cur
}

// Kind returns the result kind (Int or Float).
func (ce *CompiledExpr) Kind() value.Kind { return ce.kind }

// Columns returns the distinct column indexes the expression reads, in
// first-use order — the set a scan must decode before evaluating.
func (ce *CompiledExpr) Columns() []int { return ce.cols }

// EvalVec evaluates the expression for the selected rows of b (the first n
// rows when sel is nil — n is explicit because lazily decoded batches do
// not know their length), writing a dense result — slot k is the value for
// row sel[k] — into dst, which is Reset to the result kind. scratch carries
// the register file; one per evaluating goroutine.
func (ce *CompiledExpr) EvalVec(b *vec.Batch, n int, sel []int32, dst *vec.Vector, scratch *ExprScratch) error {
	if sel != nil {
		n = len(sel)
	}
	for len(scratch.regs) < ce.depth {
		scratch.regs = append(scratch.regs, exprReg{})
	}
	sp := 0
	for pi := range ce.prog {
		ins := &ce.prog[pi]
		switch ins.op {
		case opLoadInt, opLoadFloat:
			r := &scratch.regs[sp]
			sp++
			r.nulls.Reset()
			col := &b.Cols[ins.col]
			hasNulls := col.Nulls.Any()
			if ins.op == opLoadInt {
				r.ints = r.ints[:0]
				if sel == nil {
					r.ints = append(r.ints, col.Int64s[:n]...)
					if hasNulls {
						for i := 0; i < n; i++ {
							if col.IsNull(i) {
								r.nulls.Set(i)
							}
						}
					}
				} else {
					for k, i := range sel {
						r.ints = append(r.ints, col.Int64s[i])
						if hasNulls && col.IsNull(int(i)) {
							r.nulls.Set(k)
						}
					}
				}
			} else {
				r.floats = r.floats[:0]
				if sel == nil {
					r.floats = append(r.floats, col.Float64s[:n]...)
					if hasNulls {
						for i := 0; i < n; i++ {
							if col.IsNull(i) {
								r.nulls.Set(i)
							}
						}
					}
				} else {
					for k, i := range sel {
						r.floats = append(r.floats, col.Float64s[i])
						if hasNulls && col.IsNull(int(i)) {
							r.nulls.Set(k)
						}
					}
				}
			}
		case opConstInt:
			r := &scratch.regs[sp]
			sp++
			r.nulls.Reset()
			r.ints = r.ints[:0]
			for k := 0; k < n; k++ {
				r.ints = append(r.ints, ins.i)
			}
		case opConstFloat:
			r := &scratch.regs[sp]
			sp++
			r.nulls.Reset()
			r.floats = r.floats[:0]
			for k := 0; k < n; k++ {
				r.floats = append(r.floats, ins.f)
			}
		case opI2F:
			r := &scratch.regs[sp-1]
			r.floats = r.floats[:0]
			for _, x := range r.ints {
				r.floats = append(r.floats, float64(x))
			}
		case opAddI, opSubI, opMulI, opDivI:
			sp--
			l, r := &scratch.regs[sp-1], &scratch.regs[sp]
			ls, rs := l.ints, r.ints
			switch ins.op {
			case opAddI:
				for k := range ls {
					ls[k] += rs[k]
				}
			case opSubI:
				for k := range ls {
					ls[k] -= rs[k]
				}
			case opMulI:
				for k := range ls {
					ls[k] *= rs[k]
				}
			case opDivI:
				for k := range ls {
					switch {
					case rs[k] == 0:
						ls[k] = 0
						l.nulls.Set(k)
					case ls[k] == math.MinInt64 && rs[k] == -1:
						ls[k] = math.MinInt64
					default:
						ls[k] /= rs[k]
					}
				}
			}
			orNulls(&l.nulls, &r.nulls, n)
		case opAddF, opSubF, opMulF, opDivF:
			sp--
			l, r := &scratch.regs[sp-1], &scratch.regs[sp]
			ls, rs := l.floats, r.floats
			switch ins.op {
			case opAddF:
				for k := range ls {
					ls[k] += rs[k]
				}
			case opSubF:
				for k := range ls {
					ls[k] -= rs[k]
				}
			case opMulF:
				for k := range ls {
					ls[k] *= rs[k]
				}
			case opDivF:
				for k := range ls {
					ls[k] /= rs[k]
				}
			}
			orNulls(&l.nulls, &r.nulls, n)
		}
	}
	if sp != 1 {
		return fmt.Errorf("algebra: expression program left %d registers", sp)
	}
	res := &scratch.regs[0]
	dst.Reset(ce.kind)
	if ce.kind == value.Float {
		dst.Float64s = append(dst.Float64s, res.floats...)
	} else {
		dst.Int64s = append(dst.Int64s, res.ints...)
	}
	dst.SyncLen()
	if res.nulls.Any() {
		for k := 0; k < n; k++ {
			if res.nulls.Get(k) {
				dst.Nulls.Set(k)
			}
		}
	}
	return nil
}

// orNulls merges r's null bits into l.
func orNulls(l, r *vec.Bitmap, n int) {
	if !r.Any() {
		return
	}
	for k := 0; k < n; k++ {
		if r.Get(k) {
			l.Set(k)
		}
	}
}
