package algebra

import (
	"math"
	"math/rand"
	"testing"

	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

func exprSchema() *value.Schema {
	return value.MustSchema(
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "b", Type: value.Int},
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
		value.Field{Name: "s", Type: value.Str},
	)
}

func TestParseScalarExprRoundTrip(t *testing.T) {
	cases := []struct{ in, out string }{
		{"a", "a"},
		{"a + b", "a + b"},
		{"a+b*x", "a + b * x"},
		{"(a+b)*x", "(a + b) * x"},
		{"a - b - 2", "a - b - 2"},
		{"a - (b - 2)", "a - (b - 2)"},
		{"a / b / 2", "a / b / 2"},
		{"a / (b * 2)", "a / (b * 2)"},
		{"-a", "0 - a"},
		{"-5 + a", "-5 + a"},
		{"2.5 * x", "2.5 * x"},
		{"1e3 + x", "1000 + x"},
	}
	for _, c := range cases {
		e, err := ParseScalarExpr(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if got := e.String(); got != c.out {
			t.Errorf("parse %q: printed %q, want %q", c.in, got, c.out)
		}
		// The printed form must re-parse to the same tree.
		e2, err := ParseScalarExpr(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		if e2.String() != e.String() {
			t.Errorf("%q: reparse drifted to %q", e.String(), e2.String())
		}
	}
	for _, bad := range []string{"", "a +", "(a", "a b", "a & b", "1.2.3", "sum(a)"} {
		if _, err := ParseScalarExpr(bad); err == nil {
			t.Errorf("parse %q: expected error", bad)
		}
	}
}

func TestExprType(t *testing.T) {
	s := exprSchema()
	cases := []struct {
		in   string
		kind value.Kind
	}{
		{"a + b", value.Int},
		{"a / b", value.Int},
		{"a + x", value.Float},
		{"x * y", value.Float},
		{"a * 2", value.Int},
		{"a * 2.0", value.Float},
	}
	for _, c := range cases {
		e, err := ParseScalarExpr(c.in)
		if err != nil {
			t.Fatal(err)
		}
		k, err := ExprType(e, s)
		if err != nil {
			t.Fatal(err)
		}
		if k != c.kind {
			t.Errorf("%q: type %v, want %v", c.in, k, c.kind)
		}
	}
	for _, bad := range []string{"s + 1", "a + nope"} {
		e, err := ParseScalarExpr(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ExprType(e, s); err == nil {
			t.Errorf("%q: expected type error", bad)
		}
	}
}

func TestEvalScalarSemantics(t *testing.T) {
	s := exprSchema()
	row := value.Row{
		value.NewInt(7),
		value.NewInt(0),
		value.NewFloat(1.5),
		value.NewFloat(0),
		value.NewString("z"),
	}
	cases := []struct {
		in   string
		want value.Value
	}{
		{"a + 1", value.NewInt(8)},
		{"a / b", value.NullValue()},     // int division by zero -> null
		{"a / 2", value.NewInt(3)},       // truncating
		{"x / y", value.NewFloat(math.Inf(1))}, // IEEE float division
		{"a * x", value.NewFloat(10.5)},
	}
	for _, c := range cases {
		e, err := ParseScalarExpr(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		got, err := EvalScalar(e, s, row)
		if err != nil {
			t.Fatalf("eval %q: %v", c.in, err)
		}
		if !value.Equal(got, c.want) {
			t.Errorf("%q = %v, want %v", c.in, got, c.want)
		}
	}
	// Overflow wraps (two's complement), and MinInt64 / -1 is defined to
	// wrap instead of panicking.
	for _, c := range []struct {
		e    ScalarExpr
		want int64
	}{
		{&BinExpr{Op: '/', L: &ConstExpr{Val: value.NewInt(math.MinInt64)}, R: &ConstExpr{Val: value.NewInt(-1)}}, math.MinInt64},
		{&BinExpr{Op: '+', L: &ConstExpr{Val: value.NewInt(math.MaxInt64)}, R: &ConstExpr{Val: value.NewInt(1)}}, math.MinInt64},
	} {
		got, err := EvalScalar(c.e, s, row)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int() != c.want {
			t.Errorf("%s = %v, want %d", c.e, got, c.want)
		}
	}
	// Null input poisons the expression.
	nrow := value.Row{value.NullValue(), value.NewInt(1), value.NewFloat(1), value.NewFloat(1), value.NewString("z")}
	e, _ := ParseScalarExpr("a + b")
	got, err := EvalScalar(e, s, nrow)
	if err != nil || !got.IsNull() {
		t.Errorf("null input: got %v, %v; want null", got, err)
	}
}

// randExpr builds a random expression over int columns a,b and float
// columns x,y with constants, exercising every operator and the widening
// insert.
func randExpr(r *rand.Rand, depth int) ScalarExpr {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &ColExpr{Name: []string{"a", "b", "x", "y"}[r.Intn(4)]}
		case 1:
			return &ConstExpr{Val: value.NewInt(int64(r.Intn(7) - 3))}
		case 2:
			return &ConstExpr{Val: value.NewFloat(r.Float64()*4 - 2)}
		default:
			return &ColExpr{Name: []string{"a", "b"}[r.Intn(2)]}
		}
	}
	return &BinExpr{
		Op: []byte{'+', '-', '*', '/'}[r.Intn(4)],
		L:  randExpr(r, depth-1),
		R:  randExpr(r, depth-1),
	}
}

// TestCompiledExprMatchesScalar pins EvalVec to the boxed EvalScalar oracle
// over random expressions and data with nulls, NaN, ±Inf, huge ints, zero
// divisors — under nil, partial, and empty selections.
func TestCompiledExprMatchesScalar(t *testing.T) {
	s := value.MustSchema(
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "b", Type: value.Int},
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
	)
	r := rand.New(rand.NewSource(9))
	const n = 257 // odd size crosses bitmap word boundaries
	b := vec.NewBatch(s)
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		var row value.Row
		ints := []int64{0, 1, -1, 3, math.MaxInt64, math.MinInt64}
		for c := 0; c < 2; c++ {
			if r.Intn(12) == 0 {
				row = append(row, value.NullValue())
			} else {
				row = append(row, value.NewInt(ints[r.Intn(len(ints))]))
			}
		}
		floats := []float64{0, math.Copysign(0, -1), 1.25, -3.5, math.NaN(), math.Inf(1), math.Inf(-1), r.NormFloat64()}
		for c := 0; c < 2; c++ {
			if r.Intn(12) == 0 {
				row = append(row, value.NullValue())
			} else {
				row = append(row, value.NewFloat(floats[r.Intn(len(floats))]))
			}
		}
		rows[i] = row
		for c := range row {
			if err := b.Cols[c].AppendValue(row[c]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.SetLen(n); err != nil {
		t.Fatal(err)
	}
	sels := [][]int32{
		nil,
		{},            // empty selection
		{0, 64, 255},  // sparse
	}
	var half []int32
	for i := int32(0); i < n; i += 2 {
		half = append(half, i)
	}
	sels = append(sels, half)

	var scratch ExprScratch
	var dst vec.Vector
	for trial := 0; trial < 300; trial++ {
		e := randExpr(r, 3)
		ce, err := CompileExpr(e, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range sels {
			if err := ce.EvalVec(b, n, sel, &dst, &scratch); err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			count := n
			if sel != nil {
				count = len(sel)
			}
			if dst.Len() != count {
				t.Fatalf("%s: result len %d, want %d", e, dst.Len(), count)
			}
			for k := 0; k < count; k++ {
				ri := k
				if sel != nil {
					ri = int(sel[k])
				}
				want, err := EvalScalar(e, s, rows[ri])
				if err != nil {
					t.Fatal(err)
				}
				got := dst.Value(k)
				if !value.Equal(got, want) {
					t.Fatalf("%s row %d: vec %v, scalar %v", e, ri, got, want)
				}
			}
		}
	}
}
