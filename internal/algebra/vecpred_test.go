package algebra

import (
	"math"
	"math/rand"
	"testing"

	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

var vecPredOps = []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}

// randCell returns a random value of kind k, sometimes null.
func randCell(r *rand.Rand, k value.Kind, nullable bool) value.Value {
	if nullable && r.Intn(8) == 0 {
		return value.NullValue()
	}
	switch k {
	case value.Int:
		if r.Intn(10) == 0 {
			return value.NewInt(math.MaxInt64 - int64(r.Intn(3))) // beyond float precision
		}
		return value.NewInt(int64(r.Intn(20) - 10))
	case value.Float:
		switch r.Intn(10) {
		case 0:
			return value.NewFloat(math.NaN())
		case 1:
			return value.NewFloat(math.Inf(-1))
		default:
			return value.NewFloat(float64(r.Intn(20)-10) / 2)
		}
	case value.Bool:
		return value.NewBool(r.Intn(2) == 0)
	case value.Str:
		return value.NewString([]string{"", "a", "ab", "b", "zz"}[r.Intn(5)])
	case value.Bytes:
		return value.NewBytes([]byte{byte(r.Intn(4))})
	default:
		return value.NewList(value.NewInt(int64(r.Intn(3))))
	}
}

// TestCompiledPredMatchesEval is the property test: on random schemas, rows
// (with null patterns) and predicates, the vectorized filter selects exactly
// the rows the boxed row-at-a-time Eval accepts — including NaN ordering,
// cross-numeric comparisons and int values beyond float53 precision.
func TestCompiledPredMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	kinds := []value.Kind{value.Int, value.Float, value.Bool, value.Str, value.Bytes}
	for trial := 0; trial < 300; trial++ {
		nf := 1 + r.Intn(4)
		fields := make([]value.Field, nf)
		for i := range fields {
			fields[i] = value.Field{Name: string(rune('a' + i)), Type: kinds[r.Intn(len(kinds))]}
		}
		schema := value.MustSchema(fields...)
		nrows := r.Intn(60)
		rows := make([]value.Row, nrows)
		for i := range rows {
			row := make(value.Row, nf)
			for c := range row {
				row[c] = randCell(r, fields[c].Type, true)
			}
			rows[i] = row
		}
		batch, err := vec.FromRows(schema, rows)
		if err != nil {
			t.Fatal(err)
		}

		pred := True
		for n := r.Intn(4); n > 0; n-- {
			f := fields[r.Intn(nf)]
			// A constant of the field's own kind, or a cross-numeric one.
			ck := f.Type
			if (ck == value.Int || ck == value.Float) && r.Intn(3) == 0 {
				if ck == value.Int {
					ck = value.Float
				} else {
					ck = value.Int
				}
			}
			pred = pred.And(f.Name, vecPredOps[r.Intn(len(vecPredOps))], randCell(r, ck, false))
		}

		cp, err := CompilePred(pred, schema)
		if err != nil {
			t.Fatal(err)
		}
		sel := cp.Filter(batch, vec.FillSel(nil, nrows))
		var want []int32
		for i, row := range rows {
			if pred.Eval(schema, row) {
				want = append(want, int32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("trial %d: pred %q over %s: vec selected %d rows, boxed %d\nvec=%v\nboxed=%v",
				trial, pred, schema, len(sel), len(want), sel, want)
		}
		for i := range want {
			if sel[i] != want[i] {
				t.Fatalf("trial %d: pred %q: selection diverges at %d: %v vs %v", trial, pred, i, sel, want)
			}
		}
	}
}

// TestCompiledPredTermOrder checks cheap terms run first regardless of the
// predicate's textual order.
func TestCompiledPredTermOrder(t *testing.T) {
	schema := value.MustSchema(
		value.Field{Name: "s", Type: value.Str},
		value.Field{Name: "x", Type: value.Int},
	)
	pred := True.
		And("s", OpEq, value.NewString("a")).
		And("x", OpLt, value.NewInt(5))
	cp, err := CompilePred(pred, schema)
	if err != nil {
		t.Fatal(err)
	}
	if cp.terms[0].kind != termIntInt {
		t.Fatalf("numeric term should run first, got kind %d", cp.terms[0].kind)
	}
	// Columns keeps first-use order for the decode phase.
	if got := cp.Columns(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Columns() = %v", got)
	}
}

// TestCompiledPredUnknownField mirrors Predicate.Validate's error.
func TestCompiledPredUnknownField(t *testing.T) {
	schema := value.MustSchema(value.Field{Name: "a", Type: value.Int})
	if _, err := CompilePred(True.And("b", OpEq, value.NewInt(1)), schema); err == nil {
		t.Fatal("CompilePred accepted unknown field")
	}
}
