package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"rodentstore/internal/value"
)

func intLit(v int64) value.Value     { return value.NewInt(v) }
func floatLit(v float64) value.Value { return value.NewFloat(v) }
func strLit(s string) value.Value    { return value.NewString(s) }

func TestParsePrintFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	fields := []string{"alpha", "beta", "gamma", "delta_f"}
	for trial := 0; trial < 500; trial++ {
		e := genExprSafe(r, fields, 1+r.Intn(4))
		text := e.String()
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, text, err)
		}
		if parsed.String() != text {
			t.Fatalf("trial %d: fixpoint broken:\n  orig: %s\n  back: %s", trial, text, parsed.String())
		}
	}
}

// genExprSafe is genExpr minus the Select node (predicates carry literals,
// generated separately below to keep this generator total).
func genExprSafe(r *rand.Rand, fields []string, depth int) Expr {
	for {
		e := tryGen(r, fields, depth)
		if e != nil {
			return e
		}
	}
}

func tryGen(r *rand.Rand, fields []string, depth int) Expr {
	if depth <= 0 {
		return &Base{Name: "T"}
	}
	in := func() Expr { return genExprSafe(r, fields, depth-1) }
	pick := func() string { return fields[r.Intn(len(fields))] }
	pickN := func(n int) []string {
		perm := r.Perm(len(fields))
		out := make([]string, 0, n)
		for _, i := range perm[:n] {
			out = append(out, fields[i])
		}
		return out
	}
	switch r.Intn(13) {
	case 0:
		return &Rows{Input: in()}
	case 1:
		return &Cols{Input: in()}
	case 2:
		return &Project{Fields: pickN(1 + r.Intn(len(fields))), Input: in()}
	case 3:
		return &ColGroups{Groups: [][]string{pickN(1 + r.Intn(2)), {fmt.Sprintf("zzz%d", r.Intn(100))}}, Input: in()}
	case 4:
		return &OrderBy{Keys: []OrderKey{{Field: pick(), Desc: r.Intn(2) == 0}}, Input: in()}
	case 5:
		return &GroupBy{Fields: pickN(1), Input: in()}
	case 6:
		return &Limit{N: r.Intn(1000), Input: in()}
	case 7:
		return &Fold{Values: pickN(1), By: []string{fmt.Sprintf("k%d", r.Intn(10))}, Input: in()}
	case 8:
		return &Compress{Codec: []string{"delta", "rle", "dict", "bitpack"}[r.Intn(4)], Fields: pickN(1), Input: in()}
	case 9:
		return &Grid{Dims: []GridDim{{Field: pick(), Cells: 1 + r.Intn(256)}, {Field: pick(), Cells: 1 + r.Intn(256)}}, Input: in()}
	case 10:
		return &Curve{Kind: []CurveKind{CurveZOrder, CurveHilbert, CurveRowMajor}[r.Intn(3)], Input: &Grid{Dims: []GridDim{{Field: pick(), Cells: 8}}, Input: in()}}
	case 11:
		return &Chunk{N: 1 + r.Intn(10000), Input: in()}
	default:
		return &Transpose{Input: in()}
	}
}

func TestPredicatePrintParseFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for trial := 0; trial < 300; trial++ {
		p := True
		for i := 0; i <= r.Intn(4); i++ {
			field := fmt.Sprintf("f%d", r.Intn(5))
			op := ops[r.Intn(len(ops))]
			switch r.Intn(3) {
			case 0:
				p = p.And(field, op, intLit(r.Int63n(1e9)-5e8))
			case 1:
				p = p.And(field, op, floatLit(r.NormFloat64()*1000))
			default:
				p = p.And(field, op, strLit(fmt.Sprintf("s%d", r.Intn(100))))
			}
		}
		text := p.String()
		back, err := ParsePredicate(text)
		if err != nil {
			t.Fatalf("trial %d: ParsePredicate(%q): %v", trial, text, err)
		}
		if back.String() != text {
			t.Fatalf("trial %d: fixpoint broken: %q vs %q", trial, text, back.String())
		}
	}
}
