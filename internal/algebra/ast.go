// Package algebra defines RodentStore's declarative storage algebra (paper
// §3): the expression language in which a DBA or design tool describes how a
// logical table is decomposed, reordered, gridded and compressed on disk.
//
// Expressions transform the canonical row-major representation of a logical
// table. Example from the paper's introduction:
//
//	zorder(grid[y,z; 64,64](N))
//
// repartitions tuples into a 2-D matrix over attributes y and z and stores
// the cells along a z-order space-filling curve.
//
// The package provides the AST, a textual grammar with parser and printer
// (Parse ∘ String is the identity on canonical forms), schema validation,
// and the predicate language shared with the scan API.
package algebra

import (
	"fmt"
	"strings"
)

// Expr is a storage-algebra expression. Expressions are immutable trees;
// String renders the canonical textual form accepted by Parse.
type Expr interface {
	fmt.Stringer
	// Inputs returns the child expressions (empty for Base).
	Inputs() []Expr
}

// CurveKind selects a cell-ordering space-filling curve.
type CurveKind string

const (
	// CurveRowMajor stores grid cells in row-major order.
	CurveRowMajor CurveKind = "rowmajor"
	// CurveZOrder stores grid cells along a Morton (z-order) curve, the
	// paper's zorder transform.
	CurveZOrder CurveKind = "zorder"
	// CurveHilbert stores grid cells along a Hilbert curve (extension used
	// by the curve ablation).
	CurveHilbert CurveKind = "hilbert"
)

// SortOrder is an orderby direction.
type SortOrder bool

const (
	// Asc sorts ascending.
	Asc SortOrder = false
	// Desc sorts descending.
	Desc SortOrder = true
)

// OrderKey is one orderby key.
type OrderKey struct {
	Field string
	Desc  bool
}

func (k OrderKey) String() string {
	if k.Desc {
		return k.Field + " desc"
	}
	return k.Field
}

// GridDim is one dimension of a grid transform: the attribute to discretize
// and the number of cells along that axis. (The paper writes grid with
// per-dimension strides; cell counts are the equivalent stride =
// (max-min)/cells form, resolved against data statistics at render time.)
type GridDim struct {
	Field string
	Cells int
}

// Base references the canonical row-major nesting of the logical table
// (the paper's N): the identity layout every expression transforms.
type Base struct {
	Name string
}

// String implements Expr.
func (b *Base) String() string { return b.Name }

// Inputs implements Expr.
func (b *Base) Inputs() []Expr { return nil }

// Rows stores the input as contiguous full rows:
// [[r.A1, ..., r.An] | \r ← N].
type Rows struct {
	Input Expr
}

// String implements Expr.
func (e *Rows) String() string { return "rows(" + e.Input.String() + ")" }

// Inputs implements Expr.
func (e *Rows) Inputs() []Expr { return []Expr{e.Input} }

// Cols fully decomposes the input into one nesting per attribute — the DSM /
// column-store layout: [[r.A1|\r←N], ..., [r.An|\r←N]].
type Cols struct {
	Input Expr
}

// String implements Expr.
func (e *Cols) String() string { return "cols(" + e.Input.String() + ")" }

// Inputs implements Expr.
func (e *Cols) Inputs() []Expr { return []Expr{e.Input} }

// Project isolates a list of attributes (paper §3.5.1):
// project[Ai,...,Aj](N) ≡ [[r.Ai, ..., r.Aj] | \r ← N].
type Project struct {
	Fields []string
	Input  Expr
}

// String implements Expr.
func (e *Project) String() string {
	return "project[" + strings.Join(e.Fields, ",") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *Project) Inputs() []Expr { return []Expr{e.Input} }

// ColGroups partitions the attributes into co-located groups, each stored as
// its own vertical partition — the paper's "a single table can be stored
// using several different schemes (e.g., a mix of rows and columns)".
type ColGroups struct {
	Groups [][]string
	Input  Expr
}

// String implements Expr.
func (e *ColGroups) String() string {
	parts := make([]string, len(e.Groups))
	for i, g := range e.Groups {
		parts[i] = strings.Join(g, ",")
	}
	return "colgroup[" + strings.Join(parts, "; ") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *ColGroups) Inputs() []Expr { return []Expr{e.Input} }

// Select keeps the rows satisfying a condition (paper §3.5.1 selectC).
type Select struct {
	Pred  Predicate
	Input Expr
}

// String implements Expr.
func (e *Select) String() string {
	return "select[" + e.Pred.String() + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *Select) Inputs() []Expr { return []Expr{e.Input} }

// OrderBy reorders rows by the given keys (paper §3.5.3).
type OrderBy struct {
	Keys  []OrderKey
	Input Expr
}

// String implements Expr.
func (e *OrderBy) String() string {
	parts := make([]string, len(e.Keys))
	for i, k := range e.Keys {
		parts[i] = k.String()
	}
	return "orderby[" + strings.Join(parts, ",") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *OrderBy) Inputs() []Expr { return []Expr{e.Input} }

// GroupBy clusters rows with equal key values contiguously (the paper's
// groupby clause; unlike fold it keeps rows flat).
type GroupBy struct {
	Fields []string
	Input  Expr
}

// String implements Expr.
func (e *GroupBy) String() string {
	return "groupby[" + strings.Join(e.Fields, ",") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *GroupBy) Inputs() []Expr { return []Expr{e.Input} }

// Limit keeps the first N rows (the paper's limit clause).
type Limit struct {
	N     int
	Input Expr
}

// String implements Expr.
func (e *Limit) String() string {
	return fmt.Sprintf("limit[%d](%s)", e.N, e.Input.String())
}

// Inputs implements Expr.
func (e *Limit) Inputs() []Expr { return []Expr{e.Input} }

// Fold nests, for each distinct value of the By attributes, the co-occurring
// values of the Values attributes (paper §3.5.2):
//
//	fold_B,A(N) ≡ [r.A, [r'.B | \r' ← N, r.A = r'.A] | \r ← N]
type Fold struct {
	Values []string // B: the attributes nested under each group
	By     []string // A: the grouping attributes
	Input  Expr
}

// String implements Expr.
func (e *Fold) String() string {
	return "fold[" + strings.Join(e.Values, ",") + "; " + strings.Join(e.By, ",") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *Fold) Inputs() []Expr { return []Expr{e.Input} }

// Unfold reverses Fold, flattening nested groups back to rows.
type Unfold struct {
	Input Expr
}

// String implements Expr.
func (e *Unfold) String() string { return "unfold(" + e.Input.String() + ")" }

// Inputs implements Expr.
func (e *Unfold) Inputs() []Expr { return []Expr{e.Input} }

// Prejoin denormalizes two tables on a join attribute (paper §3.5.2):
// prejoin_j(N1,N2) ≡ [[r1, r2] | \r1 ← N1, \r2 ← N2, r1.j = r2.j].
type Prejoin struct {
	JoinAttr    string
	Left, Right Expr
}

// String implements Expr.
func (e *Prejoin) String() string {
	return "prejoin[" + e.JoinAttr + "](" + e.Left.String() + ", " + e.Right.String() + ")"
}

// Inputs implements Expr.
func (e *Prejoin) Inputs() []Expr { return []Expr{e.Left, e.Right} }

// Compress applies a named codec to the listed attributes (paper §3.5.2;
// delta is the paper's worked example, e.g. delta[lat,lon](...)).
type Compress struct {
	Codec  string // "delta", "rle", "dict", "bitpack"
	Fields []string
	Input  Expr
}

// String implements Expr.
func (e *Compress) String() string {
	return e.Codec + "[" + strings.Join(e.Fields, ",") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *Compress) Inputs() []Expr { return []Expr{e.Input} }

// Grid repartitions rows into an n-dimensional array of cells (paper §3.6):
// grid discretizes each listed attribute into Cells buckets and co-locates
// each cell's rows on disk, with a directory tracking cell boundaries.
type Grid struct {
	Dims  []GridDim
	Input Expr
}

// String implements Expr.
func (e *Grid) String() string {
	fields := make([]string, len(e.Dims))
	cells := make([]string, len(e.Dims))
	for i, d := range e.Dims {
		fields[i] = d.Field
		cells[i] = fmt.Sprintf("%d", d.Cells)
	}
	return "grid[" + strings.Join(fields, ",") + "; " + strings.Join(cells, ",") + "](" + e.Input.String() + ")"
}

// Inputs implements Expr.
func (e *Grid) Inputs() []Expr { return []Expr{e.Input} }

// Curve reorders the cells of a Grid along a space-filling curve. zorder is
// the paper's transform; hilbert and rowmajor support the curve ablation.
type Curve struct {
	Kind  CurveKind
	Input Expr
}

// String implements Expr.
func (e *Curve) String() string { return string(e.Kind) + "(" + e.Input.String() + ")" }

// Inputs implements Expr.
func (e *Curve) Inputs() []Expr { return []Expr{e.Input} }

// Transpose swaps the two outer nesting levels (paper §3.6):
// transpose([[1,2,3],[4,5,6]]) = [[1,4],[2,5],[3,6]].
type Transpose struct {
	Input Expr
}

// String implements Expr.
func (e *Transpose) String() string { return "transpose(" + e.Input.String() + ")" }

// Inputs implements Expr.
func (e *Transpose) Inputs() []Expr { return []Expr{e.Input} }

// Chunk splits the input into consecutive chunks of N rows (the paper's
// array chunking for storage, citing Sarawagi & Stonebraker).
type Chunk struct {
	N     int
	Input Expr
}

// String implements Expr.
func (e *Chunk) String() string {
	return fmt.Sprintf("chunk[%d](%s)", e.N, e.Input.String())
}

// Inputs implements Expr.
func (e *Chunk) Inputs() []Expr { return []Expr{e.Input} }

// CompactKind selects a run-compaction policy (leveled storage; see
// CobbleDB's composition of LSM runs in storage-algebra terms).
type CompactKind string

const (
	// CompactSizeTiered folds a level into the next once it accumulates
	// Fanout runs: each level holds up to Fanout-1 runs of similar size.
	CompactSizeTiered CompactKind = "sizetiered"
	// CompactLeveled keeps at most one run per level and folds a run into
	// the level above once it outgrows that level's target size (targets
	// grow by a factor of Fanout per level).
	CompactLeveled CompactKind = "leveled"
)

// Compact annotates a layout with a run-compaction policy: inserts
// accumulate as L0 tail batches, folds render them into organized runs, and
// compaction folds whole levels into the next — O(level) work per merge
// instead of an O(table) rewrite. Like Chunk it does not change the logical
// relation; it directs how renderings are maintained.
type Compact struct {
	Kind   CompactKind
	Fanout int
	Input  Expr
}

// String implements Expr.
func (e *Compact) String() string {
	return fmt.Sprintf("%s[%d](%s)", e.Kind, e.Fanout, e.Input.String())
}

// Inputs implements Expr.
func (e *Compact) Inputs() []Expr { return []Expr{e.Input} }

// Walk visits e and all descendants in pre-order.
func Walk(e Expr, visit func(Expr)) {
	visit(e)
	for _, c := range e.Inputs() {
		Walk(c, visit)
	}
}

// BaseOf returns the unique Base table reference of the expression, or an
// error if there are zero or several (prejoin introduces two).
func BaseOf(e Expr) (string, error) {
	var names []string
	Walk(e, func(x Expr) {
		if b, ok := x.(*Base); ok {
			names = append(names, b.Name)
		}
	})
	if len(names) == 0 {
		return "", fmt.Errorf("algebra: expression has no base table")
	}
	for _, n := range names[1:] {
		if n != names[0] {
			return "", fmt.Errorf("algebra: expression references multiple tables (%s, %s)", names[0], n)
		}
	}
	return names[0], nil
}
