// Scalar arithmetic expressions over a record's numeric fields: column
// references, int/float literals, unary minus and the four binary operators
// + - * /. They back computed projections and aggregate inputs
// (sum(a*b), avg(price - cost)) the same way Predicate backs filters:
// a small AST with a boxed row-at-a-time evaluator (EvalScalar, the
// oracle) and a compile-once typed evaluator (CompileExpr in vecexpr.go)
// that runs the expression as loops over column vectors.
//
// Semantics, shared bit-for-bit by both evaluators:
//
//   - typing: int op int -> int; if either operand is float the op is
//     float64 IEEE arithmetic (ints widen). Only Int and Float columns may
//     be referenced.
//   - nulls: any null operand makes the result null.
//   - int division: truncated (Go); x/0 is null; MinInt64 / -1 wraps to
//     MinInt64 (two's complement) instead of trapping.
//   - int overflow: wraps (two's complement), matching Go's int64.
package algebra

import (
	"fmt"
	"math"
	"strconv"

	"rodentstore/internal/value"
)

// ScalarExpr is a typed arithmetic expression tree.
type ScalarExpr interface {
	// String renders the expression in parseable form.
	String() string
	// Fields appends the referenced column names (deduplicated) to dst.
	Fields(dst []string) []string
}

// ColExpr references a column by name.
type ColExpr struct{ Name string }

// ConstExpr is an int or float literal.
type ConstExpr struct{ Val value.Value }

// BinExpr applies Op ('+', '-', '*', '/') to L and R.
type BinExpr struct {
	Op   byte
	L, R ScalarExpr
}

func (e *ColExpr) String() string { return e.Name }

func (e *ConstExpr) String() string { return e.Val.String() }

func (e *BinExpr) String() string {
	l := e.L.String()
	if lb, ok := e.L.(*BinExpr); ok && prec(lb.Op) < prec(e.Op) {
		l = "(" + l + ")"
	}
	r := e.R.String()
	if rb, ok := e.R.(*BinExpr); ok && (prec(rb.Op) < prec(e.Op) ||
		(prec(rb.Op) == prec(e.Op) && (e.Op == '-' || e.Op == '/'))) {
		r = "(" + r + ")"
	}
	return l + " " + string(e.Op) + " " + r
}

func prec(op byte) int {
	if op == '*' || op == '/' {
		return 2
	}
	return 1
}

func (e *ColExpr) Fields(dst []string) []string {
	for _, f := range dst {
		if f == e.Name {
			return dst
		}
	}
	return append(dst, e.Name)
}

func (e *ConstExpr) Fields(dst []string) []string { return dst }

func (e *BinExpr) Fields(dst []string) []string { return e.R.Fields(e.L.Fields(dst)) }

// ExprType infers the result kind (Int or Float) of e against schema. It
// errors on unknown columns and non-numeric column references.
func ExprType(e ScalarExpr, schema *value.Schema) (value.Kind, error) {
	switch e := e.(type) {
	case *ColExpr:
		i := schema.Index(e.Name)
		if i < 0 {
			return value.Null, fmt.Errorf("algebra: expression references unknown field %q", e.Name)
		}
		k := schema.Fields[i].Type
		if k != value.Int && k != value.Float {
			return value.Null, fmt.Errorf("algebra: field %q is %s; expressions take int or float", e.Name, k)
		}
		return k, nil
	case *ConstExpr:
		return e.Val.Kind(), nil
	case *BinExpr:
		lk, err := ExprType(e.L, schema)
		if err != nil {
			return value.Null, err
		}
		rk, err := ExprType(e.R, schema)
		if err != nil {
			return value.Null, err
		}
		if lk == value.Float || rk == value.Float {
			return value.Float, nil
		}
		return value.Int, nil
	}
	return value.Null, fmt.Errorf("algebra: unknown expression node %T", e)
}

// EvalScalar evaluates e against one boxed row (the differential oracle for
// CompileExpr). The row must conform to schema.
func EvalScalar(e ScalarExpr, schema *value.Schema, row value.Row) (value.Value, error) {
	kind, err := ExprType(e, schema)
	if err != nil {
		return value.NullValue(), err
	}
	v, null := evalScalar(e, schema, row)
	if null {
		return value.NullValue(), nil
	}
	if kind == value.Float {
		return value.NewFloat(v.f), nil
	}
	return value.NewInt(v.i), nil
}

// scalarVal carries an unboxed intermediate: exactly one of i/f is live,
// chosen by the node's static type.
type scalarVal struct {
	i int64
	f float64
}

func evalScalar(e ScalarExpr, schema *value.Schema, row value.Row) (scalarVal, bool) {
	switch e := e.(type) {
	case *ColExpr:
		v := row[schema.Index(e.Name)]
		if v.IsNull() {
			return scalarVal{}, true
		}
		if schema.Fields[schema.Index(e.Name)].Type == value.Float {
			return scalarVal{f: v.Float()}, false
		}
		return scalarVal{i: v.Int()}, false
	case *ConstExpr:
		if e.Val.Kind() == value.Float {
			return scalarVal{f: e.Val.Float()}, false
		}
		return scalarVal{i: e.Val.Int()}, false
	case *BinExpr:
		l, lnull := evalScalar(e.L, schema, row)
		r, rnull := evalScalar(e.R, schema, row)
		if lnull || rnull {
			return scalarVal{}, true
		}
		lk, _ := ExprType(e.L, schema)
		rk, _ := ExprType(e.R, schema)
		if lk == value.Float || rk == value.Float {
			lf, rf := l.f, r.f
			if lk == value.Int {
				lf = float64(l.i)
			}
			if rk == value.Int {
				rf = float64(r.i)
			}
			return scalarVal{f: binFloat(e.Op, lf, rf)}, false
		}
		if e.Op == '/' && r.i == 0 {
			return scalarVal{}, true
		}
		return scalarVal{i: binInt(e.Op, l.i, r.i)}, false
	}
	return scalarVal{}, true
}

func binInt(op byte, a, b int64) int64 {
	switch op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		// Go panics on MinInt64 / -1; define it to wrap like the other ops.
		if a == math.MinInt64 && b == -1 {
			return math.MinInt64
		}
		return a / b
	}
	return 0
}

func binFloat(op byte, a, b float64) float64 {
	switch op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		return a / b
	}
	return 0
}

// ParseScalarExpr parses an arithmetic expression:
//
//	expr    := term  { ('+' | '-') term }
//	term    := unary { ('*' | '/') unary }
//	unary   := '-' unary | primary
//	primary := field | number | '(' expr ')'
//
// The predicate lexer folds leading +/- into number literals and has no
// '*' or '/' tokens, so expressions use their own scanner.
func ParseScalarExpr(src string) (ScalarExpr, error) {
	s := &exprScanner{src: src}
	e, err := s.parseExpr()
	if err != nil {
		return nil, err
	}
	s.skipSpace()
	if s.pos < len(s.src) {
		return nil, fmt.Errorf("algebra: unexpected %q at offset %d in expression %q", s.src[s.pos:], s.pos, src)
	}
	return e, nil
}

type exprScanner struct {
	src string
	pos int
}

func (s *exprScanner) skipSpace() {
	for s.pos < len(s.src) && (s.src[s.pos] == ' ' || s.src[s.pos] == '\t') {
		s.pos++
	}
}

func (s *exprScanner) peek() byte {
	s.skipSpace()
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *exprScanner) parseExpr() (ScalarExpr, error) {
	l, err := s.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		c := s.peek()
		if c != '+' && c != '-' {
			return l, nil
		}
		s.pos++
		r, err := s.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: c, L: l, R: r}
	}
}

func (s *exprScanner) parseTerm() (ScalarExpr, error) {
	l, err := s.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		c := s.peek()
		if c != '*' && c != '/' {
			return l, nil
		}
		s.pos++
		r, err := s.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: c, L: l, R: r}
	}
}

func (s *exprScanner) parseUnary() (ScalarExpr, error) {
	if s.peek() == '-' {
		s.pos++
		e, err := s.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold minus into literals; desugar -x to 0 - x otherwise so both
		// evaluators share one set of operator semantics.
		if c, ok := e.(*ConstExpr); ok {
			if c.Val.Kind() == value.Float {
				return &ConstExpr{Val: value.NewFloat(-c.Val.Float())}, nil
			}
			return &ConstExpr{Val: value.NewInt(-c.Val.Int())}, nil
		}
		return &BinExpr{Op: '-', L: &ConstExpr{Val: value.NewInt(0)}, R: e}, nil
	}
	return s.parsePrimary()
}

func (s *exprScanner) parsePrimary() (ScalarExpr, error) {
	c := s.peek()
	switch {
	case c == '(':
		s.pos++
		e, err := s.parseExpr()
		if err != nil {
			return nil, err
		}
		if s.peek() != ')' {
			return nil, fmt.Errorf("algebra: missing ')' at offset %d in expression %q", s.pos, s.src)
		}
		s.pos++
		return e, nil
	case c >= '0' && c <= '9' || c == '.':
		return s.parseNumber()
	case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		start := s.pos
		for s.pos < len(s.src) && isIdentChar(s.src[s.pos]) {
			s.pos++
		}
		return &ColExpr{Name: s.src[start:s.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("algebra: expression %q ends where a value is expected", s.src)
	}
	return nil, fmt.Errorf("algebra: unexpected %q at offset %d in expression %q", string(c), s.pos, s.src)
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (s *exprScanner) parseNumber() (ScalarExpr, error) {
	start := s.pos
	isFloat := false
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c >= '0' && c <= '9':
			s.pos++
		case c == '.' || c == 'e' || c == 'E':
			isFloat = true
			s.pos++
			// Exponent sign belongs to the literal.
			if (c == 'e' || c == 'E') && s.pos < len(s.src) && (s.src[s.pos] == '+' || s.src[s.pos] == '-') {
				s.pos++
			}
		default:
			goto done
		}
	}
done:
	text := s.src[start:s.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("algebra: bad number %q in expression %q", text, s.src)
		}
		return &ConstExpr{Val: value.NewFloat(f)}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("algebra: bad number %q in expression %q", text, s.src)
	}
	return &ConstExpr{Val: value.NewInt(i)}, nil
}

// ExprFields returns the column names e references, in first-use order.
func ExprFields(e ScalarExpr) []string { return e.Fields(nil) }
