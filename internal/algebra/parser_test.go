package algebra

import (
	"strings"
	"testing"

	"rodentstore/internal/value"
)

// canonical expressions: Parse(s).String() == s must hold for each.
var canonical = []string{
	"Traces",
	"rows(Traces)",
	"cols(Traces)",
	"project[lat,lon](Traces)",
	"project[lat,lon](orderby[t](Traces))",
	"colgroup[a,b; c; d,e,f](T)",
	"orderby[t,id desc](Traces)",
	"groupby[id](Traces)",
	"limit[100](Traces)",
	"fold[zip,addr; area](T)",
	"unfold(fold[zip; area](T))",
	"prejoin[cid](Orders, Customers)",
	"delta[lat,lon](Traces)",
	"rle[area](T)",
	"dict[city](T)",
	"bitpack[t](Traces)",
	"grid[lat,lon; 64,64](project[lat,lon](Traces))",
	"zorder(grid[lat,lon; 64,64](Traces))",
	"hilbert(grid[lat,lon; 32,16](Traces))",
	"rowmajor(grid[x; 8](T))",
	"transpose(T)",
	"chunk[1000](Traces)",
	"sizetiered[4](orderby[t](Traces))",
	"leveled[8](cols(Traces))",
	"delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](orderby[t](groupby[id](Traces))))))",
	`select[area = 617](T)`,
	`select[lat >= 42.3 and lat < 42.4 and id = "car-7"](Traces)`,
}

func TestParsePrintRoundtrip(t *testing.T) {
	for _, src := range canonical {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := e.String(); got != src {
			t.Errorf("roundtrip: %q -> %q", src, got)
		}
		// Idempotence: parsing the printed form prints identically.
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		if e2.String() != e.String() {
			t.Errorf("reparse changed form: %q vs %q", e2.String(), e.String())
		}
	}
}

func TestParseWhitespaceInsensitive(t *testing.T) {
	a := MustParse("zorder( grid[ lat , lon ; 64 , 64 ]( Traces ) )")
	b := MustParse("zorder(grid[lat,lon; 64,64](Traces))")
	if a.String() != b.String() {
		t.Errorf("whitespace changed parse: %q vs %q", a.String(), b.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"rows()",
		"rows(T",
		"rows(T))",
		"rows(T, U)",
		"rows[x](T)",
		"project[](T)",
		"project[1bad](T)",
		"unknownop(T)",
		"grid[lat; 64, 64](T)",
		"grid[lat,lon](T)",
		"grid[lat,lon; 0,64](T)",
		"limit[-1](T)",
		"limit[xyz](T)",
		"chunk[0](T)",
		"fold[a](T)",
		"prejoin[](A, B)",
		"prejoin[k](A)",
		"select[](T)",
		"select[a ~ 1](T)",
		"select[a = ](T)",
		"select[a = 1 or b = 2](T)",
		"orderby[](T)",
		"orderby[a sideways](T)",
		"sizetiered[](T)",
		"sizetiered[1](T)",
		"sizetiered[abc](T)",
		"leveled[0](T)",
		"leveled[4](T, U)",
		"zorder(T) extra",
		`select[a = "unterminated](T)`,
	}
	for _, src := range bad {
		if e, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail, got %v", src, e)
		}
	}
}

func TestParsePredicate(t *testing.T) {
	p, err := ParsePredicate(`lat >= 42.3 and lon < -71.0 and id = "x" and n != 5 and ok = true`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Terms) != 5 {
		t.Fatalf("got %d terms", len(p.Terms))
	}
	if p.Terms[0].Op != OpGe || p.Terms[0].Value.Float() != 42.3 {
		t.Errorf("term 0: %+v", p.Terms[0])
	}
	if p.Terms[1].Value.Float() != -71.0 {
		t.Errorf("term 1 negative literal: %+v", p.Terms[1])
	}
	if p.Terms[2].Value.Str() != "x" {
		t.Errorf("term 2: %+v", p.Terms[2])
	}
	if p.Terms[3].Op != OpNe || p.Terms[3].Value.Int() != 5 {
		t.Errorf("term 3: %+v", p.Terms[3])
	}
	if p.Terms[4].Value.Bool() != true {
		t.Errorf("term 4: %+v", p.Terms[4])
	}
	// Empty predicate is True.
	p0, err := ParsePredicate("")
	if err != nil || !p0.IsTrue() {
		t.Errorf("empty predicate: %v %v", p0, err)
	}
}

func TestPredicateEval(t *testing.T) {
	s := value.MustSchema(
		value.Field{Name: "lat", Type: value.Float},
		value.Field{Name: "id", Type: value.Str},
	)
	row := value.Row{value.NewFloat(42.35), value.NewString("car-1")}
	cases := []struct {
		pred string
		want bool
	}{
		{"lat > 42", true},
		{"lat > 43", false},
		{"lat >= 42.35", true},
		{"lat < 42.35", false},
		{"lat <= 42.35", true},
		{`id = "car-1"`, true},
		{`id != "car-1"`, false},
		{`lat > 42 and id = "car-1"`, true},
		{`lat > 42 and id = "car-2"`, false},
		{"", true},
	}
	for _, c := range cases {
		p, err := ParsePredicate(c.pred)
		if err != nil {
			t.Fatalf("%q: %v", c.pred, err)
		}
		if got := p.Eval(s, row); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.pred, got, c.want)
		}
	}
	// Null field never matches.
	nullRow := value.Row{value.NullValue(), value.NewString("x")}
	p, _ := ParsePredicate("lat > 0")
	if p.Eval(s, nullRow) {
		t.Error("null field should not satisfy a comparison")
	}
	// Unknown field never matches.
	p2, _ := ParsePredicate("bogus = 1")
	if p2.Eval(s, row) {
		t.Error("unknown field should not satisfy a comparison")
	}
}

func TestPredicateBounds(t *testing.T) {
	p, _ := ParsePredicate("lat >= 42.3 and lat < 42.4 and lon > -71.2")
	lo, hi, loOpen, hiOpen, found := p.Bounds("lat")
	if !found || lo.Float() != 42.3 || hi.Float() != 42.4 || loOpen || !hiOpen {
		t.Errorf("lat bounds: lo=%v hi=%v loOpen=%v hiOpen=%v found=%v", lo, hi, loOpen, hiOpen, found)
	}
	lo, hi, loOpen, _, found = p.Bounds("lon")
	if !found || lo.Float() != -71.2 || !hi.IsNull() || !loOpen {
		t.Errorf("lon bounds: lo=%v hi=%v loOpen=%v found=%v", lo, hi, loOpen, found)
	}
	if _, _, _, _, found := p.Bounds("other"); found {
		t.Error("unconstrained field reported found")
	}
	// Equality produces a degenerate closed interval.
	pe, _ := ParsePredicate("a = 5")
	lo, hi, loOpen, hiOpen, found = pe.Bounds("a")
	if !found || lo.Int() != 5 || hi.Int() != 5 || loOpen || hiOpen {
		t.Errorf("eq bounds: %v %v %v %v %v", lo, hi, loOpen, hiOpen, found)
	}
}

func TestPredicateAndFields(t *testing.T) {
	p := True.And("a", OpGt, value.NewInt(1)).And("b", OpLt, value.NewInt(2)).And("a", OpLe, value.NewInt(10))
	if len(p.Terms) != 3 {
		t.Fatalf("terms: %d", len(p.Terms))
	}
	f := p.Fields()
	if len(f) != 2 || f[0] != "a" || f[1] != "b" {
		t.Errorf("Fields: %v", f)
	}
	if True.IsTrue() != true || p.IsTrue() {
		t.Error("IsTrue wrong")
	}
}

func TestBaseOf(t *testing.T) {
	e := MustParse("zorder(grid[a,b; 4,4](project[a,b](T)))")
	name, err := BaseOf(e)
	if err != nil || name != "T" {
		t.Errorf("BaseOf: %q %v", name, err)
	}
	multi := MustParse("prejoin[k](A, B)")
	if _, err := BaseOf(multi); err == nil {
		t.Error("BaseOf should fail on multi-table expressions")
	}
}

func TestWalkOrder(t *testing.T) {
	e := MustParse("zorder(grid[a; 4](T))")
	var names []string
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *Curve:
			names = append(names, "curve")
		case *Grid:
			names = append(names, "grid")
		case *Base:
			names = append(names, "base")
		}
	})
	if strings.Join(names, ",") != "curve,grid,base" {
		t.Errorf("walk order: %v", names)
	}
}
