package bench

import (
	"fmt"
	"math/rand"
	"time"

	"rodentstore/internal/cartel"
	"rodentstore/internal/cost"
	"rodentstore/internal/optimizer"
	"rodentstore/internal/table"
	"rodentstore/internal/transforms"
	"rodentstore/internal/value"
)

// CurveSeeks (Ext-1) quantifies the N3→N3′ step of the case study: the same
// grid stored along row-major, z-order and Hilbert curves. The paper: "we
// reorder the cells on disk using a space-filling curve in order to minimize
// the disk seek times".
func CurveSeeks(cfg Config) ([]Result, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)
	g := cfg.GridCells
	layouts := []struct{ Name, Layout string }{
		{"rowmajor", fmt.Sprintf("chunk[64](rowmajor(grid[lat,lon; %d,%d](project[lat,lon](Traces))))", g, g)},
		{"zorder", fmt.Sprintf("chunk[64](zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces))))", g, g)},
		{"hilbert", fmt.Sprintf("chunk[64](hilbert(grid[lat,lon; %d,%d](project[lat,lon](Traces))))", g, g)},
	}
	var out []Result
	for _, l := range layouts {
		e, err := loadLayout(cfg, "curve", l.Layout, rows)
		if err != nil {
			return nil, err
		}
		r, err := runQueries(e, "Traces", queries, []string{"lat", "lon"})
		e.close()
		if err != nil {
			return nil, err
		}
		r.Name, r.Layout = l.Name, l.Layout
		out = append(out, r)
	}
	return out, nil
}

// GridCellSweep (Ext-2) sweeps the grid resolution: too few cells scan
// excess data, too many add per-cell overhead and seeks — the granularity
// question §4.2 leaves open.
func GridCellSweep(cfg Config, cellCounts []int) ([]Result, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)
	var out []Result
	for _, cells := range cellCounts {
		layout := fmt.Sprintf("chunk[64](zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces))))", cells, cells)
		e, err := loadLayout(cfg, "cells", layout, rows)
		if err != nil {
			return nil, err
		}
		r, err := runQueries(e, "Traces", queries, []string{"lat", "lon"})
		e.close()
		if err != nil {
			return nil, err
		}
		r.Name = fmt.Sprintf("%dx%d", cells, cells)
		r.Layout = layout
		out = append(out, r)
	}
	return out, nil
}

// PageSizeSweep (Ext-3) varies the disk page size under the N4 layout —
// "What is the appropriate disk page size to use?" (paper §4.2).
func PageSizeSweep(cfg Config, pageSizes []int) ([]Result, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)
	g := cfg.GridCells
	layout := fmt.Sprintf("chunk[64](delta[lat,lon](zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces)))))", g, g)
	var out []Result
	for _, ps := range pageSizes {
		c := cfg
		c.PageSize = ps
		e, err := loadLayout(c, "pagesize", layout, rows)
		if err != nil {
			return nil, err
		}
		r, err := runQueries(e, "Traces", queries, []string{"lat", "lon"})
		e.close()
		if err != nil {
			return nil, err
		}
		r.Name = fmt.Sprintf("%dB pages", ps)
		r.Layout = layout
		out = append(out, r)
	}
	return out, nil
}

// Codecs (Ext-4) isolates the compression step of the case study (N3′→N4):
// the same z-ordered grid with different column codecs.
func Codecs(cfg Config) ([]Result, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)
	g := cfg.GridCells
	base := fmt.Sprintf("zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces)))", g, g)
	layouts := []struct{ Name, Layout string }{
		{"none", "chunk[64](" + base + ")"},
		{"delta", "chunk[64](delta[lat,lon](" + base + "))"},
		{"rle", "chunk[64](rle[lat,lon](" + base + "))"},
	}
	var out []Result
	for _, l := range layouts {
		e, err := loadLayout(cfg, "codec", l.Layout, rows)
		if err != nil {
			return nil, err
		}
		r, err := runQueries(e, "Traces", queries, []string{"lat", "lon"})
		e.close()
		if err != nil {
			return nil, err
		}
		r.Name, r.Layout = l.Name, l.Layout
		out = append(out, r)
	}
	return out, nil
}

// FoldResult is one fold-rendering measurement.
type FoldResult struct {
	Rows       int
	Keys       int
	HashMs     float64
	NestedMs   float64
	Speedup    float64
	OutputRows int
}

// FoldRender (Ext-5) times the two fold implementations of §4.2: the
// paper's Algorithm 1 (nested loops) against the hash-join-like rendering.
func FoldRender(sizes []int, keys int) []FoldResult {
	var out []FoldResult
	for _, n := range sizes {
		schema := value.MustSchema(
			value.Field{Name: "a", Type: value.Int},
			value.Field{Name: "b", Type: value.Int},
		)
		r := rand.New(rand.NewSource(7))
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{value.NewInt(int64(r.Intn(keys))), value.NewInt(int64(i))}
		}
		rel := transforms.Relation{Schema: schema, Rows: rows}

		start := time.Now()
		h, _ := transforms.FoldHash(rel, []string{"b"}, []string{"a"})
		hashMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		transforms.FoldNestedLoop(rel, []string{"b"}, []string{"a"})
		nestedMs := float64(time.Since(start).Microseconds()) / 1000

		fr := FoldResult{Rows: n, Keys: keys, HashMs: hashMs, NestedMs: nestedMs, OutputRows: len(h.Rows)}
		if hashMs > 0 {
			fr.Speedup = nestedMs / hashMs
		}
		out = append(out, fr)
	}
	return out
}

// wideSchema builds the Ext-6 synthetic analytic table: k float measures.
func wideSchema(k int) *value.Schema {
	fields := make([]value.Field, k)
	for i := range fields {
		fields[i] = value.Field{Name: fmt.Sprintf("c%d", i), Type: value.Float}
	}
	return value.MustSchema(fields...)
}

// RowVsColumn (Ext-6) reproduces the DSM motivation of the paper's §1:
// scanning one column of a wide table under row, column and hybrid layouts.
func RowVsColumn(cfg Config, width int) ([]Result, error) {
	schema := wideSchema(width)
	r := rand.New(rand.NewSource(3))
	rows := make([]value.Row, cfg.N)
	for i := range rows {
		row := make(value.Row, width)
		for c := 0; c < width; c++ {
			row[c] = value.NewFloat(r.NormFloat64())
		}
		rows[i] = row
	}
	layouts := []struct{ Name, Layout string }{
		{"rows", "rows(Wide)"},
		{"cols", "cols(Wide)"},
		{"colgroup(c0,c1)", "colgroup[c0,c1](Wide)"},
	}
	var out []Result
	for _, l := range layouts {
		e, err := newEnv(cfg, "dsm")
		if err != nil {
			return nil, err
		}
		if err := e.eng.Create("Wide", schema, l.Layout); err != nil {
			e.close()
			return nil, err
		}
		if err := e.eng.Load("Wide", rows); err != nil {
			e.close()
			return nil, err
		}
		e.file.ResetStats()
		start := time.Now()
		cur, err := e.eng.Scan("Wide", table.ScanOptions{Fields: []string{"c0"}})
		if err != nil {
			e.close()
			return nil, err
		}
		n := 0
		for {
			_, ok, err := cur.Next()
			if err != nil {
				e.close()
				return nil, err
			}
			if !ok {
				break
			}
			n++
		}
		s := e.file.Stats()
		res := Result{
			Name: l.Name, Layout: l.Layout,
			PagesQuery: float64(s.PageReads),
			SeeksQuery: float64(s.Seeks),
			MsQuery:    float64(time.Since(start).Microseconds()) / 1000,
			RowsQuery:  float64(n),
			DataPages:  e.file.NumPages(),
		}
		e.close()
		out = append(out, res)
	}
	return out, nil
}

// AdvisorQuality (Ext-7) checks §5 end to end: the optimizer's recommended
// layout must land close to the hand-tuned N4 design on the spatial
// workload, and far below the naive row store.
func AdvisorQuality(cfg Config) ([]Result, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)

	// Build optimizer inputs from a sample.
	stats := optimizer.CollectStats(transforms.Relation{Schema: cartel.Schema(), Rows: rows}, 4000)
	q0 := queries[0]
	w := optimizer.Workload{Queries: []optimizer.Query{{
		Fields: []string{"lat", "lon"},
		Pred:   queryPred(q0),
		Weight: 1,
	}}}
	opts := optimizer.DefaultOptions()
	opts.PageSize = cfg.PageSize - 4
	rec, err := optimizer.Recommend("Traces", stats, w, cost.DefaultModel(), opts)
	if err != nil {
		return nil, err
	}

	g := cfg.GridCells
	layouts := []struct{ Name, Layout string }{
		{"rows (naive)", "chunk[64](rows(Traces))"},
		{"advised", rec.Expr},
		{"hand-tuned N4", fmt.Sprintf("chunk[64](delta[lat,lon](zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces)))))", g, g)},
	}
	var out []Result
	for _, l := range layouts {
		e, err := loadLayout(cfg, "advisor", l.Layout, rows)
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", l.Name, l.Layout, err)
		}
		r, err := runQueries(e, "Traces", queries, []string{"lat", "lon"})
		e.close()
		if err != nil {
			return nil, err
		}
		r.Name, r.Layout = l.Name, l.Layout
		out = append(out, r)
	}
	return out, nil
}

// ReorgResult is one reorganization measurement.
type ReorgResult struct {
	Name       string
	PagesQuery float64
	ReorgMs    float64
}

// Reorg (Ext-8) measures §5's reorganization strategies: query cost with
// fresh inserts left as unorganized tails ("reorganize only new data"),
// after an eager merge, and the rewrite cost itself.
func Reorg(cfg Config) ([]ReorgResult, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)
	g := cfg.GridCells
	layout := fmt.Sprintf("chunk[64](zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces))))", g, g)

	half := len(rows) / 2
	e, err := loadLayout(cfg, "reorg", layout, rows[:half])
	if err != nil {
		return nil, err
	}
	defer e.close()

	var out []ReorgResult
	measure := func(name string, reorgMs float64) error {
		r, err := runQueries(e, "Traces", queries, []string{"lat", "lon"})
		if err != nil {
			return err
		}
		out = append(out, ReorgResult{Name: name, PagesQuery: r.PagesQuery, ReorgMs: reorgMs})
		return nil
	}
	if err := measure("loaded (organized)", 0); err != nil {
		return nil, err
	}
	// Insert the second half as unorganized tail batches.
	const batches = 8
	per := (len(rows) - half) / batches
	for b := 0; b < batches; b++ {
		lo := half + b*per
		hi := lo + per
		if b == batches-1 {
			hi = len(rows)
		}
		if err := e.eng.Insert("Traces", rows[lo:hi]); err != nil {
			return nil, err
		}
	}
	if err := measure("with tails (new data unorganized)", 0); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := e.eng.Reorganize("Traces"); err != nil {
		return nil, err
	}
	reorgMs := float64(time.Since(start).Microseconds()) / 1000
	if err := measure("after eager reorganize", reorgMs); err != nil {
		return nil, err
	}
	return out, nil
}
