package bench

import (
	"fmt"
	"sync"
	"time"

	"rodentstore/internal/cartel"
	"rodentstore/internal/table"
	"rodentstore/internal/value"
)

// IngestResult is one concurrent-write measurement: durable insert
// throughput at a given number of writer goroutines, under one combination
// of group commit and background tail merging.
type IngestResult struct {
	// Name labels the run, e.g. "ingest w=16 gc=on merge=off".
	Name string
	// Writers is the number of concurrent inserter goroutines.
	Writers int
	// GroupCommit reports whether WAL durability used the shared fsync
	// ticket (on) or one fsync per commit (off).
	GroupCommit bool
	// AutoMerge reports whether the background tail-merge worker ran.
	AutoMerge bool
	// Batches and Rows are the total inserted batches and rows.
	Batches int
	Rows    int64
	// Ms is the wall time from first insert issued to last insert
	// acknowledged. Background merges are not waited on — they run off the
	// callers' path, which is the point.
	Ms float64
	// RowsPerSec is Rows / wall seconds.
	RowsPerSec float64
	// Speedup is RowsPerSec over the 1-writer run of the same group-commit
	// and merge setting.
	Speedup float64
	// FinalTails is the table's tail-batch count after the run (and after
	// the merge queue drained, when merging): the read-amplification the
	// next scan pays.
	FinalTails int
}

// IngestWriterCounts is the concurrency ladder IngestThroughput measures.
var IngestWriterCounts = []int{1, 4, 16}

// ingestBatchRows is the rows per Insert call. Small batches (an OLTP-ish
// shape: a handful of rows per durable commit) make the per-commit fsync
// the dominant cost, which is what group commit amortizes.
const ingestBatchRows = 32

// ingestMergeTails is the merge policy for the merge=on axis: fold tails
// once 64 batches (2048 rows) accumulate, so reorganizations amortize over
// many commits instead of chasing every insert.
const ingestMergeTails = 64

// IngestThroughput measures the concurrent write path end to end (Ext-10):
// durable staged inserts (validate/transform/encode with no table lock,
// publish under a short exclusive lock, tail pages WAL-logged) into one
// table from 1/4/16 concurrent writers. Two ablation axes:
//
//   - group commit on/off: with it on, one fsync acknowledges every commit
//     that arrived while the previous fsync was in flight; off restores one
//     fsync per commit.
//   - background merge on/off: with it on, accumulated tail batches are
//     folded into the main rendering by the engine's worker off the insert
//     path, so the catalog (and scan read-amplification) stays bounded; off
//     lets tails pile up, the §5 "reorganize only new data" cost made
//     visible.
//
// Rows are pre-generated and pre-batched; the timer covers only Insert
// calls. Speedups are relative to the 1-writer run of the same axes. Like
// Ext-9 this is a scaling probe: on a single core the speedup comes from
// overlapping fsync latency with encode work, on multi-core hardware the
// lock-free prepare phase adds CPU parallelism on top.
func IngestThroughput(cfg Config) ([]IngestResult, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	var batches [][]value.Row
	for lo := 0; lo < len(rows); lo += ingestBatchRows {
		hi := lo + ingestBatchRows
		if hi > len(rows) {
			hi = len(rows)
		}
		batches = append(batches, rows[lo:hi])
	}

	var out []IngestResult
	for _, merge := range []bool{false, true} {
		for _, gc := range []bool{true, false} {
			var base float64
			for _, w := range IngestWriterCounts {
				r, err := runIngest(cfg, batches, w, gc, merge)
				if err != nil {
					return nil, err
				}
				if w == IngestWriterCounts[0] {
					base = r.RowsPerSec
				}
				if base > 0 {
					r.Speedup = r.RowsPerSec / base
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// runIngest times one configuration: writers goroutines split the batch
// list round-robin and insert into a fresh table.
func runIngest(cfg Config, batches [][]value.Row, writers int, gc, merge bool) (IngestResult, error) {
	e, err := newEnv(cfg, "ingest")
	if err != nil {
		return IngestResult{}, err
	}
	defer e.close()
	e.mgr.GroupCommit = gc
	e.mgr.LockTimeout = 30 * time.Second // merge holds the table lock briefly
	e.eng.SyncInserts = true
	if merge {
		e.eng.EnableAutoMerge(table.MergePolicy{MaxTails: ingestMergeTails})
		defer e.eng.DisableAutoMerge()
	}
	// chunk matches the insert batch size: one block per tail batch.
	layout := fmt.Sprintf("chunk[%d](rows(Ingest))", ingestBatchRows)
	if err := e.eng.Create("Ingest", cartel.Schema(), layout); err != nil {
		return IngestResult{}, err
	}

	errs := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(batches); i += writers {
				if err := e.eng.Insert("Ingest", batches[i]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return IngestResult{}, err
	}

	rows, err := e.eng.RowCount("Ingest")
	if err != nil {
		return IngestResult{}, err
	}
	e.eng.WaitMerges()
	if err := e.eng.MergeErr(); err != nil {
		return IngestResult{}, fmt.Errorf("background merge: %w", err)
	}
	tails, err := tailCount(e, "Ingest")
	if err != nil {
		return IngestResult{}, err
	}

	secs := elapsed.Seconds()
	rps := 0.0
	if secs > 0 {
		rps = float64(rows) / secs
	}
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	return IngestResult{
		Name: fmt.Sprintf("ingest w=%d gc=%s merge=%s",
			writers, onOff(gc), onOff(merge)),
		Writers:     writers,
		GroupCommit: gc,
		AutoMerge:   merge,
		Batches:     len(batches),
		Rows:        rows,
		Ms:          float64(elapsed.Microseconds()) / 1000.0,
		RowsPerSec:  rps,
		FinalTails:  tails,
	}, nil
}

// tailCount reads the table's tail-batch count from the catalog.
func tailCount(e *env, name string) (int, error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return 0, err
	}
	return len(tab.Tails), nil
}
