package bench

import (
	"testing"
)

// smallConfig keeps unit-test runs quick; the shape assertions below are
// scale invariant.
func smallConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig(t.TempDir())
	cfg.N = 30_000
	cfg.Queries = 10
	cfg.GridCells = 32
	return cfg
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := Figure2(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results: %d", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	n1 := byName["N1 (raw + scan)"]
	n2 := byName["N2 (raw + drop column)"]
	n3 := byName["N3 (grid)"]
	n4 := byName["N4 (zcurve + delta)"]
	rt := byName["rtree"]

	// The figure's shape (who wins, by roughly what factor):
	// N1 > N2: dropping columns cuts the full scan.
	if !(n1.PagesQuery > n2.PagesQuery*1.5) {
		t.Errorf("N1 (%0.f) should be well above N2 (%0.f)", n1.PagesQuery, n2.PagesQuery)
	}
	// N2 >> N3: gridding prunes to ~the query area — the two-orders-of-
	// magnitude step of the paper (scaled: at least 10x here).
	if !(n2.PagesQuery > n3.PagesQuery*10) {
		t.Errorf("N2 (%0.f) should be >10x N3 (%0.f)", n2.PagesQuery, n3.PagesQuery)
	}
	// N3 > N4: delta compression reduces pages further.
	if !(n3.PagesQuery > n4.PagesQuery*1.2) {
		t.Errorf("N3 (%0.f) should be above N4 (%0.f)", n3.PagesQuery, n4.PagesQuery)
	}
	// Grid beats the R-tree; R-tree beats the full scans.
	if !(rt.PagesQuery > n3.PagesQuery) {
		t.Errorf("rtree (%0.f) should be above N3 (%0.f)", rt.PagesQuery, n3.PagesQuery)
	}
	if !(rt.PagesQuery < n2.PagesQuery) {
		t.Errorf("rtree (%0.f) should be below N2 (%0.f)", rt.PagesQuery, n2.PagesQuery)
	}
	// All layouts return the same result rows.
	for _, r := range results[1:] {
		if r.RowsQuery != results[0].RowsQuery {
			t.Errorf("%s returned %f rows, N1 returned %f", r.Name, r.RowsQuery, results[0].RowsQuery)
		}
	}
}

func TestCurveSeeksShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	// The curve effect needs a fine grid relative to query size (the
	// paper's cells are ~400 m², i.e. hundreds per axis).
	cfg.GridCells = 128
	results, err := CurveSeeks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	// The paper's claim: z-ordering "reduces the number of disk seeks
	// needed to fetch data in a given spatial region". On a fine grid the
	// row-major layout pays one seek per row of touched cells; the curves
	// keep the region contiguous.
	if byName["zorder"].SeeksQuery >= byName["rowmajor"].SeeksQuery {
		t.Errorf("zorder seeks (%f) should beat rowmajor (%f)",
			byName["zorder"].SeeksQuery, byName["rowmajor"].SeeksQuery)
	}
	if byName["hilbert"].SeeksQuery > byName["zorder"].SeeksQuery {
		t.Errorf("hilbert seeks (%f) should not exceed zorder (%f)",
			byName["hilbert"].SeeksQuery, byName["zorder"].SeeksQuery)
	}
	// Head travel shrinks too: nearby cells land nearby on disk.
	if byName["zorder"].SeekDist > byName["rowmajor"].SeekDist {
		t.Errorf("zorder seek distance (%f) should not exceed rowmajor (%f)",
			byName["zorder"].SeekDist, byName["rowmajor"].SeekDist)
	}
	// Pages are identical up to block packing: same cells are read.
	if byName["zorder"].PagesQuery > byName["rowmajor"].PagesQuery*1.2 {
		t.Errorf("curves should not change pages much: z=%f rm=%f",
			byName["zorder"].PagesQuery, byName["rowmajor"].PagesQuery)
	}
}

func TestFoldRenderCrossover(t *testing.T) {
	results := FoldRender([]int{500, 4000}, 50)
	if len(results) != 2 {
		t.Fatal("sizes")
	}
	// At 4000 rows the quadratic nested loop must lose clearly.
	last := results[len(results)-1]
	if last.NestedMs <= last.HashMs {
		t.Errorf("nested loop (%f ms) should be slower than hash (%f ms) at n=%d",
			last.NestedMs, last.HashMs, last.Rows)
	}
	if last.OutputRows != 50 {
		t.Errorf("fold output groups: %d", last.OutputRows)
	}
}

func TestRowVsColumnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	cfg.N = 20000
	results, err := RowVsColumn(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	// One column of eight: the column store should read ~1/8 the pages.
	if !(byName["rows"].PagesQuery > byName["cols"].PagesQuery*4) {
		t.Errorf("rows (%f) should be >4x cols (%f)",
			byName["rows"].PagesQuery, byName["cols"].PagesQuery)
	}
	// The hybrid (c0 grouped with c1) sits between.
	hybrid := byName["colgroup(c0,c1)"].PagesQuery
	if !(hybrid < byName["rows"].PagesQuery && hybrid > byName["cols"].PagesQuery*0.9) {
		t.Errorf("hybrid (%f) should sit between cols (%f) and rows (%f)",
			hybrid, byName["cols"].PagesQuery, byName["rows"].PagesQuery)
	}
}

func TestReorgShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := Reorg(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	// Unorganized tails hurt query cost; reorganization repairs it.
	if !(results[1].PagesQuery > results[0].PagesQuery) {
		t.Errorf("tails (%f) should cost more than organized (%f)",
			results[1].PagesQuery, results[0].PagesQuery)
	}
	if !(results[2].PagesQuery < results[1].PagesQuery) {
		t.Errorf("reorganized (%f) should cost less than tails (%f)",
			results[2].PagesQuery, results[1].PagesQuery)
	}
	if results[2].ReorgMs <= 0 {
		t.Error("reorg time not measured")
	}
}
