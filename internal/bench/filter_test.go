package bench

import "testing"

func TestFilteredScanShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	results, err := FilteredScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(FilterSelectivities) {
		t.Fatalf("results: %d, want %d", len(results), 2*len(FilterSelectivities))
	}
	// Pair up boxed/vectorized per selectivity: identical matched counts
	// (the executors are differential twins), scanned rows equal to N, and
	// matched growing with selectivity.
	prevMatched := int64(-1)
	for i := 0; i < len(results); i += 2 {
		boxed, vect := results[i], results[i+1]
		if boxed.Vectorized || !vect.Vectorized {
			t.Fatalf("pair %d: executor order wrong", i)
		}
		if boxed.Selectivity != vect.Selectivity {
			t.Fatalf("pair %d: selectivities %v vs %v", i, boxed.Selectivity, vect.Selectivity)
		}
		if boxed.Matched != vect.Matched {
			t.Errorf("sel=%v: boxed matched %d, vectorized %d", boxed.Selectivity, boxed.Matched, vect.Matched)
		}
		if boxed.Rows != int64(cfg.N) || vect.Rows != int64(cfg.N) {
			t.Errorf("sel=%v: scanned %d/%d rows, want %d", boxed.Selectivity, boxed.Rows, vect.Rows, cfg.N)
		}
		if boxed.Matched < prevMatched {
			t.Errorf("matched not monotone: %d after %d", boxed.Matched, prevMatched)
		}
		prevMatched = boxed.Matched
		if vect.Speedup <= 0 {
			t.Errorf("sel=%v: speedup %v", vect.Selectivity, vect.Speedup)
		}
	}
	// At 100% selectivity every row matches.
	last := results[len(results)-1]
	if last.Matched != int64(cfg.N) {
		t.Errorf("sel=100%%: matched %d, want %d", last.Matched, cfg.N)
	}
}
