package bench

import (
	"fmt"
	"math/rand"
	"time"

	"rodentstore/internal/algebra"
	"rodentstore/internal/buffer"
	"rodentstore/internal/table"
	"rodentstore/internal/value"
)

// FilterResult is one filtered-scan measurement: full-table scan rows/sec
// at a given predicate selectivity, through the vectorized batch executor
// or the boxed row-at-a-time baseline.
type FilterResult struct {
	// Name labels the run, e.g. "sel=1% vectorized".
	Name string
	// Selectivity is the fraction of rows the predicate matches.
	Selectivity float64
	// Vectorized reports which executor ran: typed column batches drained
	// with NextBatch, or boxed rows drained with Next.
	Vectorized bool
	// Rows is the number of table rows scanned (the input size).
	Rows int64
	// Matched is the number of rows the predicate selected.
	Matched int64
	// Ms is the wall time of the best run.
	Ms float64
	// RowsPerSec is scanned Rows / wall seconds — the per-tuple CPU cost
	// the executors differ on.
	RowsPerSec float64
	// Speedup is RowsPerSec over the boxed run at the same selectivity.
	Speedup float64
}

// FilterSelectivities is the sweep FilteredScan measures.
var FilterSelectivities = []float64{0.001, 0.01, 0.1, 1.0}

// FilteredScan (Ext-11) measures the vectorized executor against the boxed
// row-at-a-time path on a CPU-bound filtered scan: a 16-byte-row table (two
// int64 columns) with a uniform-random key column, predicate selectivity
// swept from 0.1% to 100%. The buffer pool is pre-warmed and zone pruning
// disabled, so both executors decode every block and the difference is pure
// per-tuple cost — value boxing, interpreted predicate evaluation and row
// materialization against typed decode, a compiled selection-vector filter
// and late materialization. Each measurement is the best of three runs
// (the container jitter is multiplicative, not additive).
func FilteredScan(cfg Config) ([]FilterResult, error) {
	const keySpace = 1 << 20
	schema := value.MustSchema(
		value.Field{Name: "k", Type: value.Int},
		value.Field{Name: "v", Type: value.Int},
	)
	r := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]value.Row, cfg.N)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(r.Intn(keySpace))),
			value.NewInt(int64(i)),
		}
	}
	e, err := newEnv(cfg, "filter")
	if err != nil {
		return nil, err
	}
	defer e.close()
	if err := e.eng.Create("F", schema, "chunk[4096](rows(F))"); err != nil {
		return nil, err
	}
	if err := e.eng.Load("F", rows); err != nil {
		return nil, err
	}
	// A pool big enough for the whole table makes every run a hot, CPU-bound
	// scan.
	pool, err := buffer.NewPool(e.file, int(e.file.NumPages())+64)
	if err != nil {
		return nil, err
	}
	e.eng.Source = pool
	if _, _, err := scanFiltered(e, algebra.True, false); err != nil { // warm
		return nil, err
	}

	var out []FilterResult
	for _, sel := range FilterSelectivities {
		threshold := int64(float64(keySpace) * sel)
		pred := algebra.True.And("k", algebra.OpLt, value.NewInt(threshold))
		var boxedRPS float64
		for _, vectorized := range []bool{false, true} {
			best := FilterResult{Selectivity: sel, Vectorized: vectorized}
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				matched, scanned, err := scanFiltered(e, pred, !vectorized)
				elapsed := time.Since(start)
				if err != nil {
					return nil, err
				}
				ms := float64(elapsed.Microseconds()) / 1000.0
				if rep == 0 || ms < best.Ms {
					best.Ms = ms
					best.Rows = scanned
					best.Matched = matched
				}
			}
			secs := best.Ms / 1000.0
			if secs > 0 {
				best.RowsPerSec = float64(best.Rows) / secs
			}
			mode := "boxed"
			if vectorized {
				mode = "vectorized"
			} else {
				boxedRPS = best.RowsPerSec
			}
			if boxedRPS > 0 {
				best.Speedup = best.RowsPerSec / boxedRPS
			}
			best.Name = fmt.Sprintf("sel=%g%% %s", sel*100, mode)
			out = append(out, best)
		}
	}
	return out, nil
}

// scanFiltered drains one full scan of F under pred, returning matched and
// scanned row counts. The vectorized run iterates batches (NextBatch), the
// boxed run iterates rows (Next) — each executor's natural consumption
// style.
func scanFiltered(e *env, pred algebra.Predicate, noVec bool) (matched, scanned int64, err error) {
	cur, err := e.eng.Scan("F", table.ScanOptions{
		Pred:        pred,
		NoZonePrune: true,
		NoVectorize: noVec,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cur.Close()
	scanned, err = e.eng.RowCount("F")
	if err != nil {
		return 0, 0, err
	}
	if noVec {
		for {
			_, ok, err := cur.Next()
			if err != nil {
				return 0, 0, err
			}
			if !ok {
				return matched, scanned, nil
			}
			matched++
		}
	}
	for {
		b, ok, err := cur.NextBatch()
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			return matched, scanned, nil
		}
		matched += int64(b.Len())
	}
}
