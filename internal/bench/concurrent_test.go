package bench

import "testing"

func TestConcurrentThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	results, err := ConcurrentThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 temperatures × 2 modes × len(ladder) runs.
	want := 2 * 2 * len(ThroughputGoroutineCounts)
	if len(results) != want {
		t.Fatalf("results: %d, want %d", len(results), want)
	}
	for _, r := range results {
		// Every run scans the full table once per goroutine in clients
		// mode, once total in workers mode.
		perScan := int64(cfg.N)
		wantRows := perScan
		if r.Mode == "clients" {
			wantRows = perScan * int64(r.Goroutines)
		}
		if r.Rows != wantRows {
			t.Errorf("%s: rows %d, want %d", r.Name, r.Rows, wantRows)
		}
		if r.RowsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput", r.Name)
		}
		if r.Goroutines == 1 && (r.Speedup < 0.99 || r.Speedup > 1.01) {
			t.Errorf("%s: baseline speedup %f, want 1.0", r.Name, r.Speedup)
		}
	}
}
