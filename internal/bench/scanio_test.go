package bench

import "testing"

func TestScanIOShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	rep, err := ScanIO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ColdScan) != len(scanIOPipelines) || len(rep.Mixed) != len(scanIOPipelines) {
		t.Fatalf("got %d cold / %d mixed runs, want %d each", len(rep.ColdScan), len(rep.Mixed), len(scanIOPipelines))
	}
	off := rep.ColdScan[0]
	if off.Pipeline != "off" {
		t.Fatalf("first cold run is %q, want off", off.Pipeline)
	}
	for _, r := range rep.ColdScan {
		// Every pipeline setting scans the same table in full.
		if r.Rows != int64(cfg.N) {
			t.Errorf("%s: scanned %d rows, want %d", r.Name, r.Rows, cfg.N)
		}
		if r.ReadOps == 0 {
			t.Errorf("%s: counted no ReadAt ops on a cold scan", r.Name)
		}
		if r.Pipeline == "off" {
			continue
		}
		// The headline claims: coalescing collapses the op count, and the
		// bypass lane (not the CLOCK ring) absorbs the scan's pages.
		if r.OpReduction < 4 {
			t.Errorf("%s: op reduction %.1fx, want >= 4x", r.Name, r.OpReduction)
		}
		if r.Pool.Bypassed == 0 {
			t.Errorf("%s: cold scan admitted every page into the ring", r.Name)
		}
	}
	for _, m := range rep.Mixed {
		if m.Lookups == 0 {
			t.Errorf("%s: no lookups ran during the scan", m.Name)
		}
		if m.Pipeline == "off" {
			continue
		}
		// Scan-resistant admission keeps the hot set resident: the lookup hit
		// rate under a concurrent scan must not collapse below the undisturbed
		// baseline's neighborhood.
		if m.HitRate < m.BaselineHitRate*0.9 {
			t.Errorf("%s: hit rate %.2f collapsed below baseline %.2f", m.Name, m.HitRate, m.BaselineHitRate)
		}
	}
}
