package bench

import "testing"

func TestAggThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	results, err := AggThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 aggregate shapes × selectivities × (boxed, vectorized, parallel).
	want := 4 * len(AggSelectivities) * 3
	if len(results) != want {
		t.Fatalf("results: %d, want %d", len(results), want)
	}
	for i := 0; i < len(results); i += 3 {
		boxed, vect, par := results[i], results[i+1], results[i+2]
		if boxed.Mode != "boxed" || vect.Mode != "vectorized" || par.Mode != "parallel" {
			t.Fatalf("triple %d: mode order %s/%s/%s", i, boxed.Mode, vect.Mode, par.Mode)
		}
		// The three executors are differential twins: same group count.
		if boxed.Groups != vect.Groups || vect.Groups != par.Groups {
			t.Errorf("%s: groups %d/%d/%d diverge", boxed.Agg, boxed.Groups, vect.Groups, par.Groups)
		}
		if boxed.Rows != int64(cfg.N) {
			t.Errorf("%s: scanned %d rows, want %d", boxed.Name, boxed.Rows, cfg.N)
		}
		if vect.Speedup <= 0 || par.Speedup <= 0 {
			t.Errorf("%s: speedups %v/%v", boxed.Agg, vect.Speedup, par.Speedup)
		}
		if par.Gomaxprocs < 1 {
			t.Errorf("%s: parallel run did not record GOMAXPROCS", par.Name)
		}
		if boxed.Agg == "group-by" && boxed.Groups != 64 {
			t.Errorf("group-by groups: %d, want 64", boxed.Groups)
		}
		if boxed.Agg != "group-by" && boxed.Groups != 1 {
			t.Errorf("%s groups: %d, want 1", boxed.Agg, boxed.Groups)
		}
	}
}
