// Package bench implements RodentStore's experiment harness. Figure2
// regenerates the paper's only evaluation figure — average disk pages read
// per query over the CarTel trajectory data for layouts N1..N4 and a
// secondary R-tree (paper §6, Figure 2) — and the Ext-* functions run the
// ablation experiments DESIGN.md indexes (curve choice, cell size, page
// size, codecs, fold rendering, row vs column, advisor quality,
// reorganization strategies).
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rodentstore/internal/algebra"
	"rodentstore/internal/cartel"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/rtree"
	"rodentstore/internal/table"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/wal"
)

// Config parameterizes an experiment run.
type Config struct {
	// N is the number of observations (the paper uses 10,000,000; the
	// default benchmarks use a smaller N — the *shape* of Figure 2 is scale
	// invariant because all layouts shrink proportionally).
	N int
	// Queries is the number of random window queries (paper: 200).
	Queries int
	// AreaFraction is each query's area as a fraction of the region
	// (paper: 0.01).
	AreaFraction float64
	// PageSize is the disk page size (paper: 1 KB; see DESIGN.md).
	PageSize int
	// GridCells is the per-axis cell count of grid layouts. The paper's
	// cells are "about 400 m²" over greater Boston; 64×64 is the matching
	// order of magnitude for the ~10×13 km box.
	GridCells int
	// Dir is the scratch directory for database files.
	Dir string
	// Seed drives data and query generation.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(dir string) Config {
	return Config{
		N: 200_000, Queries: 50, AreaFraction: 0.01,
		PageSize: 1024, GridCells: 64, Dir: dir, Seed: 1,
	}
}

// Result is one measured layout.
type Result struct {
	Name       string
	Layout     string
	PagesQuery float64 // avg pages read per query
	SeeksQuery float64 // avg seeks per query
	SeekDist   float64 // avg seek distance (pages of head travel) per query
	MsQuery    float64 // avg wall milliseconds per query
	RowsQuery  float64 // avg result rows
	DataPages  uint64  // pages occupied by the table (and index)
}

// env is one open database for an experiment.
type env struct {
	file *pager.File
	eng  *table.Engine
	mgr  *txn.Manager
	cat  *catalog.Catalog
	path string
}

func newEnv(cfg Config, name string) (*env, error) {
	path := filepath.Join(cfg.Dir, name+".rdnt")
	os.Remove(path)
	os.Remove(path + ".wal")
	file, err := pager.Create(path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(path + ".wal")
	if err != nil {
		file.Close()
		return nil, err
	}
	cat, err := catalog.Load(file)
	if err != nil {
		file.Close()
		return nil, err
	}
	mgr := txn.NewManager(file, log)
	return &env{file: file, eng: table.NewEngine(file, cat, mgr), mgr: mgr, cat: cat, path: path}, nil
}

func (e *env) close() {
	e.file.Close()
	os.Remove(e.path)
	os.Remove(e.path + ".wal")
}

// queryPred builds the scan predicate for one window query.
func queryPred(q cartel.Query) algebra.Predicate {
	return algebra.True.
		And("lat", algebra.OpGe, value.NewFloat(q.MinLat)).
		And("lat", algebra.OpLt, value.NewFloat(q.MaxLat)).
		And("lon", algebra.OpGe, value.NewFloat(q.MinLon)).
		And("lon", algebra.OpLt, value.NewFloat(q.MaxLon))
}

// runQueries measures the average footprint of the workload against a
// loaded table. Fields restricts the scan projection (nil = all stored).
func runQueries(e *env, tableName string, queries []cartel.Query, fields []string) (Result, error) {
	return runQueriesOpt(e, tableName, queries, fields, false)
}

// runQueriesOpt optionally disables zone-map pruning so baseline layouts
// behave like the paper's plain heap scans (RodentStore's zone maps would
// otherwise act as an implicit index; see DESIGN.md).
func runQueriesOpt(e *env, tableName string, queries []cartel.Query, fields []string, noZone bool) (Result, error) {
	var r Result
	for _, q := range queries {
		e.file.ResetStats()
		start := time.Now()
		cur, err := e.eng.Scan(tableName, table.ScanOptions{Fields: fields, Pred: queryPred(q), NoZonePrune: noZone})
		if err != nil {
			return r, err
		}
		rows := 0
		for {
			_, ok, err := cur.Next()
			if err != nil {
				return r, err
			}
			if !ok {
				break
			}
			rows++
		}
		cur.Close()
		elapsed := time.Since(start)
		s := e.file.Stats()
		r.PagesQuery += float64(s.PageReads)
		r.SeeksQuery += float64(s.Seeks)
		r.SeekDist += float64(s.SeekDistance)
		r.MsQuery += float64(elapsed.Microseconds()) / 1000.0
		r.RowsQuery += float64(rows)
	}
	n := float64(len(queries))
	r.PagesQuery /= n
	r.SeeksQuery /= n
	r.SeekDist /= n
	r.MsQuery /= n
	r.RowsQuery /= n
	r.DataPages = e.file.NumPages()
	return r, nil
}

// loadLayout creates and loads the Traces table under the given layout.
func loadLayout(cfg Config, name, layout string, rows []value.Row) (*env, error) {
	e, err := newEnv(cfg, name)
	if err != nil {
		return nil, err
	}
	if err := e.eng.Create("Traces", cartel.Schema(), layout); err != nil {
		e.close()
		return nil, err
	}
	if err := e.eng.Load("Traces", rows); err != nil {
		e.close()
		return nil, err
	}
	return e, nil
}

// caseStudyLayouts returns the paper's §6 layouts in figure order.
// The chunk size keeps blocks small relative to 1 KB pages so pruning
// granularity matches page granularity.
func caseStudyLayouts(cfg Config) []struct{ Name, Layout string } {
	g := cfg.GridCells
	// The paper's N2 comprehension reads "orderby r.t, groupby r.ID":
	// sort by time, then cluster rows by trajectory (keeping time order
	// within each trajectory). Expressions apply inside-out, so the
	// clustering groupby wraps the orderby.
	return []struct{ Name, Layout string }{
		{"N1 (raw + scan)", "chunk[64](rows(Traces))"},
		{"N2 (raw + drop column)", "chunk[64](project[lat,lon](groupby[id](orderby[t](Traces))))"},
		{"N3 (grid)", fmt.Sprintf("chunk[64](grid[lat,lon; %d,%d](project[lat,lon](groupby[id](orderby[t](Traces)))))", g, g)},
		{"N4 (zcurve + delta)", fmt.Sprintf("chunk[64](delta[lat,lon](zorder(grid[lat,lon; %d,%d](project[lat,lon](groupby[id](orderby[t](Traces)))))))", g, g)},
	}
}

// PaperFigure2 holds the paper's reported pages/query for reference.
var PaperFigure2 = map[string]float64{
	"N1 (raw + scan)":        206064,
	"N2 (raw + drop column)": 82430,
	"N3 (grid)":              1792,
	"N4 (zcurve + delta)":    771,
	"rtree":                  15780,
}

// Figure2 reproduces the paper's Figure 2: avg pages/query for N1, N2, N3,
// N4 and the secondary R-tree baseline.
func Figure2(cfg Config) ([]Result, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	queries := cartel.Queries(cfg.Queries, cfg.AreaFraction, cfg.Seed+100)

	var out []Result
	for i, l := range caseStudyLayouts(cfg) {
		e, err := loadLayout(cfg, "fig2", l.Layout, rows)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name, err)
		}
		fields := []string{"lat", "lon"}
		// N1 and N2 are the paper's plain heap scans: no zone-map pruning,
		// every tuple inspected. N3/N4 use the grid machinery.
		noZone := i < 2
		r, err := runQueriesOpt(e, "Traces", queries, fields, noZone)
		e.close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name, err)
		}
		r.Name, r.Layout = l.Name, l.Layout
		out = append(out, r)
	}

	rt, err := rtreeBaseline(cfg, rows, queries)
	if err != nil {
		return nil, err
	}
	out = append(out, rt)
	return out, nil
}

// rtreeBaseline measures the paper's R-tree comparison: a trajectory-
// clustered heap with a secondary R-tree whose leaf entries are the
// bounding boxes of whole trajectories (trips). Taxis roam large parts of
// the city, so the dense data yields "a high number of overlapping bounding
// boxes, each requiring a random I/O and containing a large number of
// observations" (paper §6) — the reason the R-tree loses to the grid.
func rtreeBaseline(cfg Config, rows []value.Row, queries []cartel.Query) (Result, error) {
	e, err := loadLayout(cfg, "fig2rt",
		"chunk[64](project[lat,lon](groupby[id](orderby[t](Traces))))", rows)
	if err != nil {
		return Result{}, err
	}
	defer e.close()

	// Build the secondary index over the stored order: one bounding box per
	// trajectory. Trip boundaries show up as large jumps between
	// consecutive stored points (car change or new trip).
	cur, err := e.eng.Scan("Traces", table.ScanOptions{})
	if err != nil {
		return Result{}, err
	}
	jump := 0.003 // ~40 movement steps: must be a boundary
	var entries []rtree.Entry
	tripRows := make(map[uint64]int64) // rowStart -> row count
	var box rtree.Rect
	count := int64(0)
	rowStart := int64(0)
	pos := int64(0)
	var prevLat, prevLon float64
	flush := func() {
		if count > 0 {
			entries = append(entries, rtree.Entry{Rect: box, Ref: uint64(rowStart)})
			tripRows[uint64(rowStart)] = count
		}
	}
	for {
		row, ok, err := cur.Next()
		if err != nil {
			return Result{}, err
		}
		if !ok {
			break
		}
		lat, lon := row[0].Float(), row[1].Float()
		boundary := count > 0 && (abs(lat-prevLat) > jump || abs(lon-prevLon) > jump)
		if boundary {
			flush()
			count = 0
		}
		p := rtree.Point(lat, lon)
		if count == 0 {
			box = p
			rowStart = pos
		} else {
			box = box.Union(p)
		}
		count++
		prevLat, prevLon = lat, lon
		pos++
	}
	flush()
	tr, err := rtree.BulkLoad(e.file, entries)
	if err != nil {
		return Result{}, err
	}

	var r Result
	for _, q := range queries {
		e.file.ResetStats()
		start := time.Now()
		query := rtree.Rect{MinX: q.MinLat, MinY: q.MinLon, MaxX: q.MaxLat, MaxY: q.MaxLon}
		var hits []uint64
		if err := tr.Search(query, func(en rtree.Entry) bool {
			hits = append(hits, en.Ref)
			return true
		}); err != nil {
			return Result{}, err
		}
		// Each hit fetches its whole trajectory (random I/O) and
		// post-filters the observations.
		rowsFound := 0
		for _, h := range hits {
			cur, err := e.eng.GetElement("Traces", nil, []int64{int64(h)})
			if err != nil {
				return Result{}, err
			}
			for i := int64(0); i < tripRows[h]; i++ {
				row, ok, err := cur.Next()
				if err != nil {
					return Result{}, err
				}
				if !ok {
					break
				}
				lat, lon := row[0].Float(), row[1].Float()
				if lat >= q.MinLat && lat < q.MaxLat && lon >= q.MinLon && lon < q.MaxLon {
					rowsFound++
				}
			}
			cur.Close()
		}
		s := e.file.Stats()
		r.PagesQuery += float64(s.PageReads)
		r.SeeksQuery += float64(s.Seeks)
		r.SeekDist += float64(s.SeekDistance)
		r.MsQuery += float64(time.Since(start).Microseconds()) / 1000.0
		r.RowsQuery += float64(rowsFound)
	}
	n := float64(len(queries))
	r.PagesQuery /= n
	r.SeeksQuery /= n
	r.SeekDist /= n
	r.MsQuery /= n
	r.RowsQuery /= n
	r.DataPages = e.file.NumPages()
	r.Name = "rtree"
	r.Layout = "trajectory-clustered heap + secondary R-tree (one box per trip)"
	return r, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
