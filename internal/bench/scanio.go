package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"rodentstore/internal/buffer"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/table"
	"rodentstore/internal/value"
	"rodentstore/internal/vfs"
)

// Device model for the cold-cache phase. Inside the container every
// positional read hits the warm OS page cache and costs about a microsecond,
// so "cold" has to be simulated: each ReadAt pays a fixed issue latency plus
// the transfer time of its length at a fixed bandwidth (the profile of a
// SATA-class SSD). The sleep happens in the caller's goroutine, so the
// prefetcher genuinely overlaps device time with decode — exactly the
// overlap a real cold scan would see.
const (
	scanIODevLatency = 20 * time.Microsecond
	scanIODevMBps    = 400
)

// countingFS wraps a vfs.FS and counts ReadAt calls and bytes, so the scan
// I/O experiment reports real syscall-level op counts rather than inferred
// ones. With simulate set it also charges the device model per read.
type countingFS struct {
	inner     vfs.FS
	reads     atomic.Uint64
	readBytes atomic.Uint64
	simulate  atomic.Bool
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	f, err := c.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (c *countingFS) Remove(name string) error { return c.inner.Remove(name) }

type countingFile struct {
	vfs.File
	fs *countingFS
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.reads.Add(1)
	f.fs.readBytes.Add(uint64(len(p)))
	if f.fs.simulate.Load() {
		d := scanIODevLatency + time.Duration(len(p))*time.Second/time.Duration(scanIODevMBps<<20)
		if d >= 500*time.Microsecond {
			// Long transfers park the goroutine, so a prefetcher's device
			// time genuinely overlaps the consumer's decode.
			time.Sleep(d)
		} else {
			// The kernel timer's ~1ms granularity would inflate short waits
			// 50x; spin instead so per-op latency is charged accurately.
			for t0 := time.Now(); time.Since(t0) < d; {
			}
		}
	}
	return f.File.ReadAt(p, off)
}

// ScanIOScan is one cold-cache full-scan measurement under one pipeline
// setting.
type ScanIOScan struct {
	// Name labels the run; Pipeline is "off", "coalesce" or "prefetch".
	Name     string
	Pipeline string
	// Rows scanned and wall time of the best run.
	Rows       int64
	Ms         float64
	RowsPerSec float64
	// ReadOps / ReadBytes are the file-system ReadAt calls and bytes the
	// scan issued (counted at the vfs seam, i.e. real positional reads).
	ReadOps   uint64
	ReadBytes uint64
	// Speedup is RowsPerSec over the pipeline-off run; OpReduction is the
	// pipeline-off ReadOps over this run's.
	Speedup     float64
	OpReduction float64
	// Pool is the buffer pool's counter state after the scan: a coalesced
	// cold scan should be almost entirely Bypassed, not Evictions.
	Pool buffer.Stats
}

// ScanIOMixed is one mixed-workload measurement: point lookups against a
// hot table interleaved with an in-progress full scan of a cold table.
type ScanIOMixed struct {
	Name     string
	Pipeline string
	// Lookups performed while the scan was in progress, and the buffer-pool
	// hits/misses those lookups (alone) generated.
	Lookups      int
	LookupHits   uint64
	LookupMisses uint64
	// HitRate is LookupHits over lookup accesses; BaselineHitRate is the
	// same lookup workload before the scan started (pool warmed, no scan).
	HitRate         float64
	BaselineHitRate float64
	// Bypassed/Admitted are the pool's scan-admission counters after the
	// run: with the pipeline on, scan pages bypass the ring instead of
	// evicting the lookup working set.
	Bypassed uint64
	Admitted uint64
}

// ScanIOReport is Ext-14's full result. DevLatencyUs and DevMBps record the
// simulated device every measured ReadAt is charged against.
type ScanIOReport struct {
	TablePages   uint64
	PoolFrames   int
	DevLatencyUs float64
	DevMBps      int
	ColdScan     []ScanIOScan
	Mixed        []ScanIOMixed
}

// scanIOPipelines are the three settings Ext-14 sweeps.
var scanIOPipelines = []struct {
	name string
	opts table.ScanOptions
}{
	{"off", table.ScanOptions{}},
	{"coalesce", table.ScanOptions{Coalesce: true}},
	{"prefetch", table.ScanOptions{Prefetch: true}},
}

// ScanIO (Ext-14) measures the scan I/O pipeline end to end. Cold-cache
// phase: a full scan of a table four times the buffer pool, pipeline off
// (one ReadAt per page miss) versus coalesced and prefetched run reads (one
// large ReadAt per run gap) — reporting rows/sec and the real ReadAt op
// count at the vfs seam, with every read charged the simulated device cost
// above (the container's page cache would otherwise hide the latency a cold
// scan exists to amortize). Mixed phase: point lookups against a small hot
// table interleaved with the big scan — with the pipeline off the scan
// floods the CLOCK ring and the lookup hit rate collapses; with it on, scan
// pages ride the single-touch bypass lane and the hot set stays resident.
func ScanIO(cfg Config) (*ScanIOReport, error) {
	schema := value.MustSchema(
		value.Field{Name: "k", Type: value.Int},
		value.Field{Name: "v", Type: value.Int},
	)
	r := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]value.Row, cfg.N)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(r.Intn(1 << 20))), value.NewInt(int64(i))}
	}
	const hotRows = 1 << 12
	hot := make([]value.Row, hotRows)
	for i := range hot {
		hot[i] = value.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}
	}

	cfs := &countingFS{inner: vfs.OS}
	path := filepath.Join(cfg.Dir, "scanio.rdnt")
	os.Remove(path)
	file, err := pager.CreateAt(cfs, path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	defer func() {
		file.Close()
		os.Remove(path)
	}()
	cat, err := catalog.Load(file)
	if err != nil {
		return nil, err
	}
	eng := table.NewEngine(file, cat, nil)
	if err := eng.Create("S", schema, "chunk[4096](cols(S))"); err != nil {
		return nil, err
	}
	if err := eng.Load("S", rows); err != nil {
		return nil, err
	}
	if err := eng.Create("H", schema, "chunk[128](rows(H))"); err != nil {
		return nil, err
	}
	if err := eng.Load("H", hot); err != nil {
		return nil, err
	}

	rep := &ScanIOReport{
		TablePages:   file.NumPages(),
		DevLatencyUs: float64(scanIODevLatency.Microseconds()),
		DevMBps:      scanIODevMBps,
	}
	// Charge the device model from here on: the load above ran at native
	// speed, every measured scan and lookup below pays per-ReadAt cost.
	cfs.simulate.Store(true)
	// The pool holds a quarter of the data: every full scan is cold and must
	// not fit, which is exactly the sequential-flooding regime.
	rep.PoolFrames = int(rep.TablePages) / 4
	if rep.PoolFrames < 256 {
		rep.PoolFrames = 256
	}

	drainScan := func(opts table.ScanOptions) (int64, error) {
		cur, err := eng.Scan("S", opts)
		if err != nil {
			return 0, err
		}
		defer cur.Close()
		var n int64
		for {
			b, ok, err := cur.NextBatch()
			if err != nil {
				return 0, err
			}
			if !ok {
				return n, nil
			}
			n += int64(b.Len())
		}
	}

	var offOps uint64
	var offRPS float64
	for _, pl := range scanIOPipelines {
		best := ScanIOScan{Name: "coldscan " + pl.name, Pipeline: pl.name}
		for run := 0; run < 2; run++ {
			// A fresh pool per repetition keeps the cache cold.
			pool, err := buffer.NewPool(file, rep.PoolFrames)
			if err != nil {
				return nil, err
			}
			eng.Source = pool
			r0, b0 := cfs.reads.Load(), cfs.readBytes.Load()
			start := time.Now()
			n, err := drainScan(pl.opts)
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			ms := float64(elapsed.Microseconds()) / 1000.0
			if run == 0 || ms < best.Ms {
				best.Ms = ms
				best.Rows = n
				best.ReadOps = cfs.reads.Load() - r0
				best.ReadBytes = cfs.readBytes.Load() - b0
				best.Pool = pool.Stats()
			}
		}
		if secs := best.Ms / 1000.0; secs > 0 {
			best.RowsPerSec = float64(best.Rows) / secs
		}
		if pl.name == "off" {
			offOps, offRPS = best.ReadOps, best.RowsPerSec
		}
		if offRPS > 0 {
			best.Speedup = best.RowsPerSec / offRPS
		}
		if best.ReadOps > 0 {
			best.OpReduction = float64(offOps) / float64(best.ReadOps)
		}
		rep.ColdScan = append(rep.ColdScan, best)
	}

	for _, pl := range scanIOPipelines {
		m, err := scanIOMixed(eng, file, rep.PoolFrames, pl.name, pl.opts)
		if err != nil {
			return nil, err
		}
		rep.Mixed = append(rep.Mixed, m)
	}
	return rep, nil
}

// scanIOMixed runs the lookup-under-scan phase for one pipeline setting.
func scanIOMixed(eng *table.Engine, file *pager.File, frames int, name string, opts table.ScanOptions) (ScanIOMixed, error) {
	m := ScanIOMixed{Name: "mixed " + name, Pipeline: name}
	pool, err := buffer.NewPool(file, frames)
	if err != nil {
		return m, err
	}
	eng.Source = pool

	r := rand.New(rand.NewSource(99))
	lookup := func() error {
		cur, err := eng.GetElement("H", nil, []int64{int64(r.Intn(1 << 12))})
		if err != nil {
			return err
		}
		defer cur.Close()
		_, _, err = cur.Next()
		return err
	}
	// Warm the hot table into the pool, then measure the undisturbed hit
	// rate of the lookup workload.
	for i := 0; i < 256; i++ {
		if err := lookup(); err != nil {
			return m, err
		}
	}
	s0 := pool.Stats()
	for i := 0; i < 128; i++ {
		if err := lookup(); err != nil {
			return m, err
		}
	}
	s1 := pool.Stats()
	if acc := (s1.Hits - s0.Hits) + (s1.Misses - s0.Misses); acc > 0 {
		m.BaselineHitRate = float64(s1.Hits-s0.Hits) / float64(acc)
	}

	// Interleave lookups with an in-progress full scan of the big table:
	// after each slice of scan batches, run one lookup and charge only its
	// own pool accesses to the lookup hit rate.
	cur, err := eng.Scan("S", opts)
	if err != nil {
		return m, err
	}
	defer cur.Close()
	done := false
	for !done {
		for i := 0; i < 8; i++ {
			b, ok, err := cur.NextBatch()
			if err != nil {
				return m, err
			}
			_ = b
			if !ok {
				done = true
				break
			}
		}
		s0 := pool.Stats()
		if err := lookup(); err != nil {
			return m, err
		}
		s1 := pool.Stats()
		m.LookupHits += s1.Hits - s0.Hits
		m.LookupMisses += s1.Misses - s0.Misses
		m.Lookups++
	}
	if acc := m.LookupHits + m.LookupMisses; acc > 0 {
		m.HitRate = float64(m.LookupHits) / float64(acc)
	}
	s := pool.Stats()
	m.Bypassed, m.Admitted = s.Bypassed, s.Admitted
	return m, nil
}

// String renders the op-reduction headline for progress output.
func (r *ScanIOReport) String() string {
	return fmt.Sprintf("scanio: %d table pages, %d pool frames", r.TablePages, r.PoolFrames)
}
