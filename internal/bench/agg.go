package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"rodentstore/internal/algebra"
	"rodentstore/internal/buffer"
	"rodentstore/internal/table"
	"rodentstore/internal/value"
)

// AggResult is one aggregation measurement: full-table aggregate rows/sec
// at a given predicate selectivity, through the vectorized kernels (serial
// or morsel-parallel) or the boxed row-at-a-time oracle.
type AggResult struct {
	// Name labels the run, e.g. "sum sel=1% vectorized".
	Name string
	// Agg names the aggregate shape: count, sum, group-by, or expr.
	Agg string
	// Selectivity is the fraction of rows the predicate matches.
	Selectivity float64
	// Mode is boxed, vectorized, or parallel.
	Mode string
	// Gomaxprocs records runtime.GOMAXPROCS(0) for parallel runs (0
	// otherwise) — a parallel speedup is only meaningful with >1.
	Gomaxprocs int
	// Rows is the number of table rows scanned (the input size).
	Rows int64
	// Groups is the number of output rows (1 for ungrouped aggregates).
	Groups int
	// Ms is the wall time of the best run.
	Ms float64
	// RowsPerSec is scanned Rows / wall seconds.
	RowsPerSec float64
	// Speedup is RowsPerSec over the boxed run of the same aggregate at the
	// same selectivity.
	Speedup float64
	// ParallelSpeedup is RowsPerSec over the serial vectorized run (set on
	// parallel runs only).
	ParallelSpeedup float64
}

// AggSelectivities is the sweep AggThroughput measures.
var AggSelectivities = []float64{0.01, 1.0}

// AggThroughput (Ext-13) measures the pushed-down aggregation path: count,
// sum, hash group-by, and an arithmetic-expression sum over a four-column
// table, at 1% and 100% predicate selectivity. The boxed oracle runs the
// same aggExec semantics row-at-a-time (NoVectorize); the vectorized run
// uses the typed kernels; the parallel run adds the morsel scheduler. The
// buffer pool is pre-warmed and zone pruning is left on (the aggregate
// path prunes exactly like a scan), so differences are per-tuple CPU cost.
// Results are bit-identical across all three executors by construction —
// this experiment measures only the clock.
func AggThroughput(cfg Config) ([]AggResult, error) {
	const keySpace = 1 << 20
	schema := value.MustSchema(
		value.Field{Name: "k", Type: value.Int},
		value.Field{Name: "g", Type: value.Int},
		value.Field{Name: "v", Type: value.Int},
		value.Field{Name: "x", Type: value.Float},
	)
	r := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]value.Row, cfg.N)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(r.Intn(keySpace))),
			value.NewInt(int64(r.Intn(64))),
			value.NewInt(int64(i)),
			value.NewFloat(r.Float64()),
		}
	}
	e, err := newEnv(cfg, "agg")
	if err != nil {
		return nil, err
	}
	defer e.close()
	if err := e.eng.Create("A", schema, "chunk[4096](rows(A))"); err != nil {
		return nil, err
	}
	if err := e.eng.Load("A", rows); err != nil {
		return nil, err
	}
	pool, err := buffer.NewPool(e.file, int(e.file.NumPages())+64)
	if err != nil {
		return nil, err
	}
	e.eng.Source = pool

	specOf := func(aggs []string, groupBy []string) (*table.AggSpec, error) {
		spec := &table.AggSpec{GroupBy: groupBy}
		for _, s := range aggs {
			item, err := table.ParseAggItem(s)
			if err != nil {
				return nil, err
			}
			spec.Items = append(spec.Items, item)
		}
		return spec, nil
	}
	shapes := []struct {
		agg     string
		aggs    []string
		groupBy []string
	}{
		{"count", []string{"count"}, nil},
		{"sum", []string{"sum(v)"}, nil},
		{"group-by", []string{"count", "sum(v)"}, []string{"g"}},
		{"expr", []string{"sum(v * 2 + k)", "min(x)"}, nil},
	}
	// Warm the pool with one full pass.
	if warm, err := specOf([]string{"sum(v)"}, nil); err != nil {
		return nil, err
	} else if _, _, err := runAgg(e, warm, algebra.True, "vectorized"); err != nil {
		return nil, err
	}

	var out []AggResult
	for _, shape := range shapes {
		spec, err := specOf(shape.aggs, shape.groupBy)
		if err != nil {
			return nil, err
		}
		for _, sel := range AggSelectivities {
			pred := algebra.True.And("k", algebra.OpLt, value.NewInt(int64(float64(keySpace)*sel)))
			var boxedRPS, vecRPS float64
			for _, mode := range []string{"boxed", "vectorized", "parallel"} {
				best := AggResult{Agg: shape.agg, Selectivity: sel, Mode: mode}
				for rep := 0; rep < 3; rep++ {
					start := time.Now()
					groups, scanned, err := runAgg(e, spec, pred, mode)
					elapsed := time.Since(start)
					if err != nil {
						return nil, err
					}
					ms := float64(elapsed.Microseconds()) / 1000.0
					if rep == 0 || ms < best.Ms {
						best.Ms = ms
						best.Rows = scanned
						best.Groups = groups
					}
				}
				if secs := best.Ms / 1000.0; secs > 0 {
					best.RowsPerSec = float64(best.Rows) / secs
				}
				switch mode {
				case "boxed":
					boxedRPS = best.RowsPerSec
				case "vectorized":
					vecRPS = best.RowsPerSec
				case "parallel":
					best.Gomaxprocs = runtime.GOMAXPROCS(0)
					if vecRPS > 0 {
						best.ParallelSpeedup = best.RowsPerSec / vecRPS
					}
				}
				if boxedRPS > 0 {
					best.Speedup = best.RowsPerSec / boxedRPS
				}
				best.Name = fmt.Sprintf("%s sel=%g%% %s", shape.agg, sel*100, mode)
				out = append(out, best)
			}
		}
	}
	return out, nil
}

// runAgg runs one aggregation over A, returning the group count and the
// scanned (input) row count.
func runAgg(e *env, spec *table.AggSpec, pred algebra.Predicate, mode string) (groups int, scanned int64, err error) {
	opts := table.ScanOptions{Pred: pred, Aggregate: spec}
	switch mode {
	case "boxed":
		opts.NoVectorize = true
	case "parallel":
		opts.Parallel = true
	}
	cur, err := e.eng.Scan("A", opts)
	if err != nil {
		return 0, 0, err
	}
	defer cur.Close()
	scanned, err = e.eng.RowCount("A")
	if err != nil {
		return 0, 0, err
	}
	for {
		_, ok, err := cur.Next()
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			return groups, scanned, nil
		}
		groups++
	}
}
