package bench

import "testing"

func TestSustainedCompactionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	cfg.N = 20_000
	results, err := SustainedCompaction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(compactPolicies)*compactStages {
		t.Fatalf("results: %d, want %d", len(results), len(compactPolicies)*compactStages)
	}
	perPolicy := map[string][]CompactResult{}
	for _, r := range results {
		perPolicy[r.Policy] = append(perPolicy[r.Policy], r)
	}
	for _, policy := range compactPolicies {
		rs := perPolicy[policy]
		if len(rs) != compactStages {
			t.Fatalf("%s: %d stages", policy, len(rs))
		}
		for i, r := range rs {
			if r.Stage != i+1 {
				t.Errorf("%s: stage %d out of order", policy, r.Stage)
			}
			if r.TableRows != rs[0].TableRows*int64(i+1) {
				t.Errorf("%s stage %d: table rows %d", policy, r.Stage, r.TableRows)
			}
			if r.InsertRowsPerSec <= 0 || r.ScanRowsPerSec <= 0 {
				t.Errorf("%s stage %d: nonpositive throughput %+v", policy, r.Stage, r)
			}
			if r.Merges <= 0 || r.MergeBytes <= 0 {
				t.Errorf("%s stage %d: no merge work recorded: %+v", policy, r.Stage, r)
			}
		}
		// The table must end >= 8x past the first fold threshold.
		if last := rs[len(rs)-1]; last.TableRows < 8*rs[0].TableRows {
			t.Errorf("%s: final table only %dx the first stage", policy, last.TableRows/rs[0].TableRows)
		}
	}
	// The O(table) baseline's per-merge rewrite grows with the table; the
	// policies keep it sublinear. Compare last-stage bytes-per-merge: the
	// plain path must rewrite strictly more per merge than either policy
	// (at 8x growth the gap is already severalfold, so this is not tight).
	noneLast := perPolicy["none"][compactStages-1]
	for _, policy := range compactPolicies[1:] {
		// Compare the policy's worst late-half merge against the baseline:
		// cascade stages spike, but even the spikes stay below the full
		// rewrite.
		var worst int64
		for _, r := range perPolicy[policy][compactStages/2:] {
			if r.BytesPerMerge > worst {
				worst = r.BytesPerMerge
			}
		}
		if worst >= noneLast.BytesPerMerge {
			t.Errorf("%s: worst late bytes/merge %d not below full-rewrite %d",
				policy, worst, noneLast.BytesPerMerge)
		}
	}
}
