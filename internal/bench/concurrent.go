package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rodentstore/internal/buffer"
	"rodentstore/internal/cartel"
	"rodentstore/internal/table"
)

// ThroughputResult is one concurrent-read measurement: full-table scan
// throughput at a given degree of parallelism, against a hot (buffer pool
// pre-warmed) or cold (pager direct) read path.
type ThroughputResult struct {
	// Name labels the run, e.g. "scan-workers w=4 hot".
	Name string
	// Mode is "workers" (one scan, parallel block decode) or "clients"
	// (independent concurrent scans, one per goroutine).
	Mode string
	// Goroutines is the degree of parallelism (scan workers or client
	// goroutines).
	Goroutines int
	// Hot reports whether reads went through a pre-warmed buffer pool.
	Hot bool
	// Rows is the total rows returned across all scans of the run.
	Rows int64
	// Ms is the wall time of the run.
	Ms float64
	// RowsPerSec is Rows / wall seconds.
	RowsPerSec float64
	// Speedup is RowsPerSec over the 1-goroutine run of the same mode and
	// temperature.
	Speedup float64
}

// ThroughputGoroutineCounts is the parallelism ladder ConcurrentThroughput
// measures.
var ThroughputGoroutineCounts = []int{1, 4, 16}

// ConcurrentThroughput measures the concurrent read path end to end: the
// sharded buffer pool, the lock-free pager reads, and the parallel scan
// executor. For each pool temperature (cold = pager direct, hot = warmed
// pool) it reports full-table-scan rows/sec along two axes:
//
//   - workers: a single scan whose block decode fans out over N workers
//     (table.ScanOptions.Parallel) — intra-query parallelism;
//   - clients: N goroutines each running an independent serial scan —
//     inter-query parallelism, the shared-engine story of the paper's §1.
//
// Speedups are relative to the 1-goroutine run of the same axis and
// temperature. On a single-core host the numbers degenerate to ~1×; the
// benchmark is a scaling probe for multi-core hardware, not an assertion.
func ConcurrentThroughput(cfg Config) ([]ThroughputResult, error) {
	rows := cartel.Generate(cartel.DefaultConfig(cfg.N))
	g := cfg.GridCells
	layout := fmt.Sprintf("chunk[64](zorder(grid[lat,lon; %d,%d](project[lat,lon](Traces))))", g, g)
	e, err := loadLayout(cfg, "throughput", layout, rows)
	if err != nil {
		return nil, err
	}
	defer e.close()

	// A pool large enough to hold the whole table makes "hot" runs pure
	// cache reads.
	pool, err := buffer.NewPool(e.file, int(e.file.NumPages())+64)
	if err != nil {
		return nil, err
	}

	fields := []string{"lat", "lon"}
	scanAll := func(parallel bool, workers int) (int64, error) {
		cur, err := e.eng.Scan("Traces", table.ScanOptions{
			Fields: fields, Parallel: parallel, Workers: workers,
		})
		if err != nil {
			return 0, err
		}
		defer cur.Close()
		var n int64
		for {
			_, ok, err := cur.Next()
			if err != nil {
				return n, err
			}
			if !ok {
				return n, nil
			}
			n++
		}
	}

	var out []ThroughputResult
	for _, hot := range []bool{false, true} {
		if hot {
			e.eng.Source = pool
			if _, err := scanAll(false, 0); err != nil { // warm it
				return nil, err
			}
		} else {
			e.eng.Source = e.file
		}
		temp := "cold"
		if hot {
			temp = "hot"
		}

		var base float64
		for _, n := range ThroughputGoroutineCounts {
			start := time.Now()
			got, err := scanAll(n > 1, n)
			if err != nil {
				return nil, err
			}
			r := mkThroughput("workers", temp, n, hot, got, time.Since(start), &base)
			out = append(out, r)
		}

		base = 0
		for _, n := range ThroughputGoroutineCounts {
			var total atomic.Int64
			errs := make(chan error, n)
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					got, err := scanAll(false, 0)
					total.Add(got)
					if err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				return nil, err
			}
			r := mkThroughput("clients", temp, n, hot, total.Load(), elapsed, &base)
			out = append(out, r)
		}
	}
	return out, nil
}

// mkThroughput finalizes one measurement, tracking the 1-goroutine baseline
// of its series in *base.
func mkThroughput(mode, temp string, n int, hot bool, rows int64, elapsed time.Duration, base *float64) ThroughputResult {
	secs := elapsed.Seconds()
	rps := 0.0
	if secs > 0 {
		rps = float64(rows) / secs
	}
	if n == 1 {
		*base = rps
	}
	speedup := 0.0
	if *base > 0 {
		speedup = rps / *base
	}
	return ThroughputResult{
		Name:       fmt.Sprintf("scan-%s n=%d %s", mode, n, temp),
		Mode:       mode,
		Goroutines: n,
		Hot:        hot,
		Rows:       rows,
		Ms:         float64(elapsed.Microseconds()) / 1000.0,
		RowsPerSec: rps,
		Speedup:    speedup,
	}
}
