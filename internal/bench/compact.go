package bench

import (
	"fmt"
	"time"

	"rodentstore/internal/cartel"
	"rodentstore/internal/table"
	"rodentstore/internal/value"
)

// CompactResult is one stage of the Ext-15 sustained-ingest measurement:
// one policy's insert and scan throughput at a given table size, plus the
// fold work the stage's merges performed.
type CompactResult struct {
	// Name labels the measurement, e.g. "compact none stage=3".
	Name string
	// Policy is "none" (every merge is a full Reorganize), "sizetiered" or
	// "leveled".
	Policy string
	// Stage is the growth step (1-based); the table holds Stage×stageRows
	// rows at measurement time.
	Stage int
	// TableRows is the table size after this stage's inserts.
	TableRows int64
	// InsertRowsPerSec is acked-insert throughput over the stage: rows
	// divided by the wall time of the inserts plus their triggered merges
	// (merges run synchronously so the cost they impose on ingest is the
	// thing measured, not hidden in a background queue).
	InsertRowsPerSec float64
	// ScanRowsPerSec is full-scan throughput right after the stage.
	ScanRowsPerSec float64
	// Merges and MergeBytes are the folds this stage triggered and the
	// payload bytes they rewrote (for policy=none each merge is a full
	// Reorganize, so its bytes are the whole rendered table).
	Merges int64
	// MergeBytes is the total payload rewritten by this stage's merges.
	MergeBytes int64
	// BytesPerMerge is MergeBytes/Merges (0 when no merge ran). Sublinear
	// growth across stages is the leveled-storage claim; linear growth is
	// the O(table) baseline.
	BytesPerMerge int64
}

// compactStages is how many growth steps Ext-15 runs: the table ends 8×
// past the first stage (which itself crosses the tail-merge threshold), the
// ISSUE-15 acceptance floor.
const compactStages = 8

// compactFanout is both the compaction fanout and the tail threshold: a
// fold triggers once this many tail batches accumulate, for every policy,
// so the three curves fold equally often and differ only in what a fold
// rewrites.
const compactFanout = 4

// compactPolicies are the three curves Ext-15 sweeps. "none" is the
// committed single-rendering baseline: the same fold schedule, but every
// fold is a full Reorganize.
var compactPolicies = []string{"none", "sizetiered", "leveled"}

// SustainedCompaction (Ext-15) measures ingest-while-scanning as a table
// grows far past its tail-merge threshold. Each stage inserts a fixed
// number of rows in tail batches, folding synchronously every compactFanout
// batches — via Engine.Compact, which for a compaction-annotated layout
// folds one level's runs (O(level)) and for the plain layout rewrites the
// whole rendering (O(table)). After each stage a full scan is timed. With a
// policy the per-merge bytes stay bounded by the hierarchy, so insert and
// scan rows/sec hold roughly flat; without one the per-merge cost grows
// with the table and ingest throughput decays — the degradation ROADMAP
// item 3 describes.
func SustainedCompaction(cfg Config) ([]CompactResult, error) {
	batchRows := cfg.N / (compactStages * 2 * compactFanout) // two folds per stage
	if batchRows < 64 {
		batchRows = 64
	}
	stageRows := batchRows * 2 * compactFanout
	rows := cartel.Generate(cartel.DefaultConfig(compactStages * stageRows))

	var out []CompactResult
	for _, policy := range compactPolicies {
		res, err := runCompact(cfg, policy, rows, stageRows, batchRows)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// runCompact drives one policy's staged growth on a fresh store.
func runCompact(cfg Config, policy string, rows []value.Row, stageRows, batchRows int) ([]CompactResult, error) {
	e, err := newEnv(cfg, "compact-"+policy)
	if err != nil {
		return nil, err
	}
	defer e.close()

	base := fmt.Sprintf("chunk[%d](orderby[t](Compact))", batchRows)
	layout := base
	if policy != "none" {
		layout = fmt.Sprintf("%s[%d](%s)", policy, compactFanout, base)
	}
	if err := e.eng.Create("Compact", cartel.Schema(), layout); err != nil {
		return nil, err
	}

	var out []CompactResult
	var prev table.CompactStats
	next := 0
	for stage := 1; stage <= compactStages; stage++ {
		// Ingest phase: insert tail batches, folding synchronously at the
		// threshold. The timer spans inserts and folds together — the acked
		// throughput an application sustaining this rate would see.
		start := time.Now()
		for b := 0; b < 2*compactFanout; b++ {
			if err := e.eng.Insert("Compact", rows[next:next+batchRows]); err != nil {
				return nil, err
			}
			next += batchRows
			if b%compactFanout == compactFanout-1 {
				if err := e.eng.Compact("Compact"); err != nil {
					return nil, err
				}
			}
		}
		ingestSecs := time.Since(start).Seconds()

		total, err := e.eng.RowCount("Compact")
		if err != nil {
			return nil, err
		}
		start = time.Now()
		scanned, err := fullScanRows(e, "Compact")
		if err != nil {
			return nil, err
		}
		scanSecs := time.Since(start).Seconds()
		if scanned != total {
			return nil, fmt.Errorf("compact %s stage %d: scan saw %d of %d rows", policy, stage, scanned, total)
		}

		st := e.eng.CompactStats()
		merges := st.Merges - prev.Merges
		bytes := st.Bytes - prev.Bytes
		prev = st
		r := CompactResult{
			Name:       fmt.Sprintf("compact %s stage=%d", policy, stage),
			Policy:     policy,
			Stage:      stage,
			TableRows:  total,
			Merges:     merges,
			MergeBytes: bytes,
		}
		if ingestSecs > 0 {
			r.InsertRowsPerSec = float64(stageRows) / ingestSecs
		}
		if scanSecs > 0 {
			r.ScanRowsPerSec = float64(scanned) / scanSecs
		}
		if merges > 0 {
			r.BytesPerMerge = bytes / merges
		}
		out = append(out, r)
	}
	return out, nil
}

// fullScanRows drains a full table scan and returns the row count.
func fullScanRows(e *env, name string) (int64, error) {
	cur, err := e.eng.Scan(name, table.ScanOptions{})
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	var n int64
	for {
		_, ok, err := cur.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
