// Package cost implements RodentStore's I/O cost model (paper §5): "our
// initial plans are for it to count bytes of I/O as well as disk seeks".
// CPU costs are ignored unless decompression dominates, which prior work
// (Abadi et al., cited by the paper) shows it does not for the schemes used
// here; a small per-row CPU term is still exposed for calibration.
//
// The model converts the pager's logical counters (pages read, seeks) into
// estimated milliseconds, which is the unit the storage API's scan_cost and
// getElement_cost methods report (paper §4.1).
package cost

// Model holds the device calibration constants.
type Model struct {
	// SeekMs is the cost of one disk seek (a non-sequential page fetch).
	SeekMs float64
	// PageReadMs is the cost of sequentially reading one page.
	PageReadMs float64
	// CPURowMs is the per-row processing cost (decode + predicate).
	CPURowMs float64
}

// DefaultModel models a 2009-era commodity disk with 1 KB pages: ~4 ms
// average seek (the paper's few-ms regime), ~100 MB/s sequential bandwidth
// (1 KB / 100 MB/s = 0.01 ms), and a negligible per-row CPU cost.
func DefaultModel() Model {
	return Model{SeekMs: 4.0, PageReadMs: 0.01, CPURowMs: 0.00005}
}

// Estimate is a predicted I/O footprint.
type Estimate struct {
	Pages uint64
	Seeks uint64
	Rows  int64
}

// Ms converts an estimate to milliseconds under the model.
func (m Model) Ms(e Estimate) float64 {
	return float64(e.Seeks)*m.SeekMs + float64(e.Pages)*m.PageReadMs + float64(e.Rows)*m.CPURowMs
}

// PagesForBytes returns how many whole pages cover n bytes with the given
// page payload size.
func PagesForBytes(n uint64, payload int) uint64 {
	if n == 0 {
		return 0
	}
	return (n + uint64(payload) - 1) / uint64(payload)
}
