package cost

import (
	"testing"
	"testing/quick"
)

func TestDefaultModelMs(t *testing.T) {
	m := DefaultModel()
	// One seek dominates small sequential reads (the premise behind
	// z-ordering's seek reduction).
	oneSeek := m.Ms(Estimate{Pages: 1, Seeks: 1})
	manyPages := m.Ms(Estimate{Pages: 100, Seeks: 0})
	if oneSeek < manyPages {
		t.Errorf("a seek (%f ms) should cost more than 100 sequential pages (%f ms)", oneSeek, manyPages)
	}
	if got := m.Ms(Estimate{}); got != 0 {
		t.Errorf("empty estimate: %f", got)
	}
}

func TestMsMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(pages, seeks uint16, rows uint16) bool {
		base := m.Ms(Estimate{Pages: uint64(pages), Seeks: uint64(seeks), Rows: int64(rows)})
		more := m.Ms(Estimate{Pages: uint64(pages) + 1, Seeks: uint64(seeks) + 1, Rows: int64(rows) + 1})
		return more > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesForBytes(t *testing.T) {
	cases := []struct {
		n       uint64
		payload int
		want    uint64
	}{
		{0, 1020, 0},
		{1, 1020, 1},
		{1020, 1020, 1},
		{1021, 1020, 2},
		{10200, 1020, 10},
	}
	for _, c := range cases {
		if got := PagesForBytes(c.n, c.payload); got != c.want {
			t.Errorf("PagesForBytes(%d,%d) = %d, want %d", c.n, c.payload, got, c.want)
		}
	}
}
