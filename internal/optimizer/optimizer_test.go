package optimizer

import (
	"strings"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/cartel"
	"rodentstore/internal/cost"
	"rodentstore/internal/transforms"
)

func tracesStats(t *testing.T, n int) TableStats {
	t.Helper()
	rows := cartel.Generate(cartel.DefaultConfig(n))
	return CollectStats(transforms.Relation{Schema: cartel.Schema(), Rows: rows}, 2000)
}

func spatialPred(t *testing.T) algebra.Predicate {
	t.Helper()
	p, err := algebra.ParsePredicate("lat >= 42.35 and lat < 42.362 and lon >= -71.1 and lon < -71.087")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCollectStats(t *testing.T) {
	stats := tracesStats(t, 5000)
	if stats.RowCount != 5000 {
		t.Errorf("rows: %d", stats.RowCount)
	}
	lat := stats.Fields["lat"]
	if lat == nil || !lat.Numeric || lat.AvgBytes != 8 {
		t.Fatalf("lat stats: %+v", lat)
	}
	if lat.Min < cartel.MinLat-0.01 || lat.Max > cartel.MaxLat+0.01 {
		t.Errorf("lat range: %f..%f", lat.Min, lat.Max)
	}
	// GPS floats sorted by value delta-compress well; the sampler must
	// discover that.
	if lat.BestCodec != "delta" || lat.CodecRatio >= 0.9 {
		t.Errorf("lat codec: %q ratio %f", lat.BestCodec, lat.CodecRatio)
	}
	id := stats.Fields["id"]
	if id.Numeric {
		t.Error("id should not be numeric")
	}
	// Low-cardinality strings should pick dict (or rle on the sorted sample).
	if id.BestCodec == "" {
		t.Errorf("id codec: %+v", id)
	}
}

func TestRecommendSpatialWorkloadPicksGrid(t *testing.T) {
	stats := tracesStats(t, 20000)
	// Scale the sample statistics to the paper's production size: at 10M
	// rows page I/O dominates seeks and gridding wins; at toy sizes an
	// ordered scan is genuinely cheaper (fewer seeks), which the model
	// correctly reports.
	stats.RowCount = 10_000_000
	w := Workload{Queries: []Query{{
		Fields: []string{"lat", "lon"},
		Pred:   spatialPred(t),
		Weight: 1,
	}}}
	rec, err := Recommend("Traces", stats, w, cost.DefaultModel(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Expr, "grid[") {
		t.Errorf("spatial workload should pick a grid, got %q", rec.Expr)
	}
	if !strings.Contains(rec.Expr, "zorder(") && !strings.Contains(rec.Expr, "hilbert(") {
		t.Errorf("spatial workload should pick a locality curve, got %q", rec.Expr)
	}
	if !strings.Contains(rec.Expr, "delta[") {
		t.Errorf("smooth float columns should be delta-compressed, got %q", rec.Expr)
	}
	// The recommendation must be strictly better than the naive row store.
	naive := design{}.expr("Traces")
	var naiveMs float64
	for _, c := range rec.Candidates {
		if c.Expr == naive {
			naiveMs = c.Ms
		}
	}
	if naiveMs == 0 || rec.Ms >= naiveMs {
		t.Errorf("recommendation (%f ms) not better than rows(T) (%f ms)", rec.Ms, naiveMs)
	}
}

func TestRecommendProjectionWorkloadPicksColumns(t *testing.T) {
	stats := tracesStats(t, 20000)
	// Analytic scans reading only t: column isolation should win.
	w := Workload{Queries: []Query{{Fields: []string{"t"}, Weight: 1}}}
	rec, err := Recommend("Traces", stats, w, cost.DefaultModel(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Expr, "colgroup[") {
		t.Errorf("projection workload should vertically partition, got %q", rec.Expr)
	}
	// t must be isolated from the wide id column: t alone in its group.
	e, err := algebra.Parse(rec.Expr)
	if err != nil {
		t.Fatal(err)
	}
	var groups [][]string
	algebra.Walk(e, func(x algebra.Expr) {
		if cg, ok := x.(*algebra.ColGroups); ok {
			groups = cg.Groups
		}
	})
	for _, g := range groups {
		hasT := false
		for _, f := range g {
			if f == "t" {
				hasT = true
			}
		}
		if hasT && len(g) > 2 {
			t.Errorf("t not isolated: group %v", g)
		}
	}
}

func TestRecommendFullScanWorkloadPicksRows(t *testing.T) {
	stats := tracesStats(t, 10000)
	w := Workload{Queries: []Query{{Weight: 1}}} // SELECT * scans
	rec, err := Recommend("Traces", stats, w, cost.DefaultModel(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Any single-group design is fine (all bytes are read regardless), but
	// it must not pay extra seeks for many vertical partitions.
	var rowMs, colMs float64
	for _, c := range rec.Candidates {
		if c.Expr == "rows(Traces)" {
			rowMs = c.Ms
		}
		if strings.HasPrefix(c.Expr, "colgroup[t; lat; lon; id]") {
			colMs = c.Ms
		}
	}
	if rowMs == 0 || colMs == 0 || rowMs > colMs {
		t.Errorf("full scans should not favor full decomposition: rows=%f cols=%f", rowMs, colMs)
	}
}

func TestRecommendRangeWorkloadPicksOrder(t *testing.T) {
	stats := tracesStats(t, 20000)
	p, _ := algebra.ParsePredicate("t >= 100 and t < 200")
	w := Workload{Queries: []Query{{Pred: p, Weight: 1}}}
	rec, err := Recommend("Traces", stats, w, cost.DefaultModel(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Expr, "orderby[t]") {
		t.Errorf("range workload should order by t, got %q", rec.Expr)
	}
}

func TestRecommendErrors(t *testing.T) {
	if _, err := Recommend("T", TableStats{}, Workload{Queries: []Query{{}}}, cost.DefaultModel(), DefaultOptions()); err == nil {
		t.Error("empty stats should fail")
	}
	stats := tracesStats(t, 1000)
	if _, err := Recommend("T", stats, Workload{}, cost.DefaultModel(), DefaultOptions()); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestAllCandidatesParseAndCompile(t *testing.T) {
	stats := tracesStats(t, 5000)
	w := Workload{Queries: []Query{
		{Fields: []string{"lat", "lon"}, Pred: spatialPred(t), Weight: 10},
		{Fields: []string{"t"}, Weight: 1},
	}}
	rec, err := Recommend("Traces", stats, w, cost.DefaultModel(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) < 10 {
		t.Errorf("search explored only %d candidates", len(rec.Candidates))
	}
	for _, c := range rec.Candidates {
		if _, err := algebra.Parse(c.Expr); err != nil {
			t.Errorf("candidate %q does not parse: %v", c.Expr, err)
		}
	}
	// Candidates sorted best-first.
	for i := 1; i < len(rec.Candidates); i++ {
		if rec.Candidates[i].Ms < rec.Candidates[i-1].Ms {
			t.Fatal("candidates not sorted by cost")
		}
	}
}

func TestQueryCostMonotonicity(t *testing.T) {
	stats := tracesStats(t, 10000)
	// A narrower projection can never cost more than a wider one.
	narrow := queryCost(design{groups: [][]string{{"t"}, {"lat"}, {"lon"}, {"id"}}}, stats,
		Query{Fields: []string{"t"}}, DefaultOptions())
	wide := queryCost(design{groups: [][]string{{"t"}, {"lat"}, {"lon"}, {"id"}}}, stats,
		Query{Fields: []string{"t", "lat", "lon", "id"}}, DefaultOptions())
	if narrow.Pages > wide.Pages {
		t.Errorf("narrow projection costs more pages: %d > %d", narrow.Pages, wide.Pages)
	}
	// A selective grid query costs less than a full scan on the same design.
	g := design{grid: []algebra.GridDim{{Field: "lat", Cells: 64}, {Field: "lon", Cells: 64}}, curve: algebra.CurveZOrder}
	sel := queryCost(g, stats, Query{Pred: spatialPred(t)}, DefaultOptions())
	full := queryCost(g, stats, Query{}, DefaultOptions())
	if sel.Pages >= full.Pages {
		t.Errorf("selective query should read fewer pages: %d >= %d", sel.Pages, full.Pages)
	}
}
