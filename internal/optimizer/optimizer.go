// Package optimizer implements RodentStore's storage design optimizer
// (paper §5): given a relational schema, data statistics and a workload of
// queries, it searches the space of storage-algebra expressions and returns
// the one minimizing the workload's estimated cost.
//
// As the paper prescribes, the cost model "counts bytes of I/O as well as
// disk seeks" and ignores CPU. Plan enumeration is the hard part — "most of
// the above transformations lead to an exponential number of physical
// designs" — so the search combines exhaustive enumeration of the small
// dimensions (ordering, grid, curve, codecs) with simulated annealing over
// column groupings (the 2^n dimension the paper calls out).
package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"rodentstore/internal/algebra"
	"rodentstore/internal/compress"
	"rodentstore/internal/cost"
	"rodentstore/internal/transforms"
	"rodentstore/internal/value"
)

// Query is one workload entry: the fields it reads, its range predicate,
// and a relative weight (frequency).
type Query struct {
	Fields []string // nil = all fields
	Pred   algebra.Predicate
	Weight float64
}

// Workload is a weighted set of queries (paper §5: "a workload of SQL
// queries" reduced to their storage-level access patterns).
type Workload struct {
	Queries []Query
}

// FieldStats summarizes one column.
type FieldStats struct {
	AvgBytes   float64 // plain encoded width
	Min, Max   float64 // numeric range (0,0 for non-numeric)
	Numeric    bool
	BestCodec  string  // best measured codec ("" = none)
	CodecRatio float64 // measured compressed/raw ratio for BestCodec
}

// TableStats holds the statistics the cost model needs.
type TableStats struct {
	Schema   *value.Schema
	RowCount int64
	Fields   map[string]*FieldStats
}

// CollectStats samples the relation to estimate per-field widths, ranges
// and achievable compression. Codec ratios are measured by actually
// encoding a value-ordered sample (approximating post-clustering locality,
// which is how compressed segments are laid out).
func CollectStats(rel transforms.Relation, sample int) TableStats {
	if sample <= 0 || sample > len(rel.Rows) {
		sample = len(rel.Rows)
	}
	stats := TableStats{
		Schema:   rel.Schema,
		RowCount: int64(len(rel.Rows)),
		Fields:   make(map[string]*FieldStats, rel.Schema.Arity()),
	}
	for ci, f := range rel.Schema.Fields {
		fs := &FieldStats{Min: math.Inf(1), Max: math.Inf(-1), CodecRatio: 1}
		fs.Numeric = f.Type == value.Int || f.Type == value.Float
		var vals []value.Value
		var rawBytes int
		for i := 0; i < sample; i++ {
			v := rel.Rows[i][ci]
			if v.IsNull() {
				continue
			}
			vals = append(vals, v)
			rawBytes += len(value.AppendValue(nil, f.Type, v))
			if fs.Numeric {
				x := v.Float()
				if x < fs.Min {
					fs.Min = x
				}
				if x > fs.Max {
					fs.Max = x
				}
			}
		}
		if len(vals) > 0 {
			fs.AvgBytes = float64(rawBytes) / float64(len(vals))
		}
		if !fs.Numeric {
			fs.Min, fs.Max = 0, 0
		}
		// Measure codecs on the value-ordered sample.
		ordered := append([]value.Value(nil), vals...)
		sort.Slice(ordered, func(a, b int) bool { return value.Compare(ordered[a], ordered[b]) < 0 })
		for _, name := range compress.Names() {
			if name == "none" {
				continue
			}
			c, _ := compress.Lookup(name)
			enc, err := c.Encode(nil, f.Type, ordered)
			if err != nil {
				continue
			}
			ratio := 1.0
			if rawBytes > 0 {
				ratio = float64(len(enc)) / float64(rawBytes)
			}
			if ratio < fs.CodecRatio {
				fs.CodecRatio = ratio
				fs.BestCodec = name
			}
		}
		// Only keep codecs that actually help.
		if fs.CodecRatio > 0.9 {
			fs.BestCodec, fs.CodecRatio = "", 1
		}
		stats.Fields[f.Name] = fs
	}
	return stats
}

// Options bound the search.
type Options struct {
	// GridCells are the candidate per-axis cell counts.
	GridCells []int
	// AnnealingSteps bounds the simulated-annealing column-group search.
	AnnealingSteps int
	// Seed makes the annealing deterministic.
	Seed int64
	// PageSize is the page payload used for page-count math.
	PageSize int
}

// DefaultOptions returns the standard search bounds.
func DefaultOptions() Options {
	return Options{GridCells: []int{16, 32, 64, 128}, AnnealingSteps: 400, Seed: 1, PageSize: 1020}
}

// Candidate is one explored design with its estimated workload cost.
type Candidate struct {
	Expr string
	Ms   float64
}

// Recommendation is the optimizer's output.
type Recommendation struct {
	Expr       string
	Ms         float64
	Candidates []Candidate // all explored designs, best first
}

// design is the internal, structured candidate representation.
type design struct {
	groups [][]string // vertical partitions (nil = single row group)
	order  []string   // orderby keys
	grid   []algebra.GridDim
	curve  algebra.CurveKind
	codecs map[string]string
}

// expr renders the design as a storage-algebra expression over table.
func (d design) expr(table string) string {
	s := table
	if len(d.order) > 0 {
		s = "orderby[" + strings.Join(d.order, ",") + "](" + s + ")"
	}
	if len(d.grid) > 0 {
		fields := make([]string, len(d.grid))
		cells := make([]string, len(d.grid))
		for i, g := range d.grid {
			fields[i] = g.Field
			cells[i] = fmt.Sprintf("%d", g.Cells)
		}
		s = "grid[" + strings.Join(fields, ",") + "; " + strings.Join(cells, ",") + "](" + s + ")"
		if d.curve != "" && d.curve != algebra.CurveRowMajor {
			s = string(d.curve) + "(" + s + ")"
		}
	}
	if len(d.groups) > 0 {
		// colgroup with singleton groups is exactly cols; keeping the
		// colgroup form makes every grouping uniform and parseable.
		parts := make([]string, len(d.groups))
		for i, g := range d.groups {
			parts[i] = strings.Join(g, ",")
		}
		s = "colgroup[" + strings.Join(parts, "; ") + "](" + s + ")"
	} else {
		s = "rows(" + s + ")"
	}
	// Codec wrappers, grouped per codec for compact expressions.
	byCodec := map[string][]string{}
	for f, c := range d.codecs {
		if c != "" {
			byCodec[c] = append(byCodec[c], f)
		}
	}
	codecNames := make([]string, 0, len(byCodec))
	for c := range byCodec {
		codecNames = append(codecNames, c)
	}
	sort.Strings(codecNames)
	for _, c := range codecNames {
		fs := byCodec[c]
		sort.Strings(fs)
		s = c + "[" + strings.Join(fs, ",") + "](" + s + ")"
	}
	return s
}

// Recommend searches designs for the workload and returns the best.
func Recommend(table string, stats TableStats, w Workload, model cost.Model, opts Options) (Recommendation, error) {
	if stats.Schema == nil || stats.RowCount == 0 {
		return Recommendation{}, fmt.Errorf("optimizer: empty statistics")
	}
	if len(w.Queries) == 0 {
		return Recommendation{}, fmt.Errorf("optimizer: empty workload")
	}
	if opts.PageSize <= 0 {
		opts.PageSize = 1020
	}

	var cands []design
	names := stats.Schema.Names()

	// 1. Row store, column store, and annealed column groups.
	cands = append(cands, design{})
	var colGroups [][]string
	for _, f := range names {
		colGroups = append(colGroups, []string{f})
	}
	cands = append(cands, design{groups: colGroups})
	if g := annealGroups(table, stats, w, model, opts); g != nil {
		cands = append(cands, design{groups: g})
	}

	// 2. Orderings on fields with range predicates.
	for _, f := range rangedFields(stats, w) {
		cands = append(cands, design{order: []string{f}})
	}

	// 3. Grids on pairs of numeric fields co-constrained by some query,
	// with every candidate cell count and curve.
	for _, pair := range gridPairs(stats, w) {
		for _, cells := range opts.GridCells {
			dims := []algebra.GridDim{{Field: pair[0], Cells: cells}, {Field: pair[1], Cells: cells}}
			for _, curve := range []algebra.CurveKind{algebra.CurveRowMajor, algebra.CurveZOrder, algebra.CurveHilbert} {
				cands = append(cands, design{grid: dims, curve: curve})
			}
		}
	}

	// 4. Codec assignment: for each structural candidate, add a compressed
	// variant using each field's best measured codec.
	n := len(cands)
	for i := 0; i < n; i++ {
		codecs := map[string]string{}
		for f, fs := range stats.Fields {
			if fs.BestCodec != "" {
				codecs[f] = fs.BestCodec
			}
		}
		if len(codecs) > 0 {
			d := cands[i]
			d.codecs = codecs
			cands = append(cands, d)
		}
	}

	// Score every candidate.
	best := Recommendation{Ms: math.Inf(1)}
	for _, d := range cands {
		ms := workloadCost(d, stats, w, model, opts)
		expr := d.expr(table)
		best.Candidates = append(best.Candidates, Candidate{Expr: expr, Ms: ms})
		if ms < best.Ms {
			best.Ms = ms
			best.Expr = expr
		}
	}
	sort.Slice(best.Candidates, func(i, j int) bool { return best.Candidates[i].Ms < best.Candidates[j].Ms })
	// Sanity: the winning expression must parse.
	if _, err := algebra.Parse(best.Expr); err != nil {
		return Recommendation{}, fmt.Errorf("optimizer: produced invalid expression %q: %w", best.Expr, err)
	}
	return best, nil
}

// rangedFields lists numeric fields any query constrains.
func rangedFields(stats TableStats, w Workload) []string {
	seen := map[string]bool{}
	var out []string
	for _, q := range w.Queries {
		for _, f := range q.Pred.Fields() {
			fs, ok := stats.Fields[f]
			if ok && fs.Numeric && !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Strings(out)
	return out
}

// gridPairs lists numeric field pairs co-constrained by one query.
func gridPairs(stats TableStats, w Workload) [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	for _, q := range w.Queries {
		fields := q.Pred.Fields()
		for i := 0; i < len(fields); i++ {
			for j := i + 1; j < len(fields); j++ {
				a, b := fields[i], fields[j]
				if a > b {
					a, b = b, a
				}
				fa, oka := stats.Fields[a]
				fb, okb := stats.Fields[b]
				if !oka || !okb || !fa.Numeric || !fb.Numeric {
					continue
				}
				key := [2]string{a, b}
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		}
	}
	return out
}

// workloadCost estimates the total weighted cost of the workload under a
// design (the paper's Σ cost(query) objective).
func workloadCost(d design, stats TableStats, w Workload, model cost.Model, opts Options) float64 {
	total := 0.0
	for _, q := range w.Queries {
		weight := q.Weight
		if weight == 0 {
			weight = 1
		}
		total += weight * model.Ms(queryCost(d, stats, q, opts))
	}
	return total
}

// queryCost is the analytic I/O estimate of one query under a design.
func queryCost(d design, stats TableStats, q Query, opts Options) cost.Estimate {
	names := stats.Schema.Names()
	needed := map[string]bool{}
	if q.Fields == nil {
		for _, f := range names {
			needed[f] = true
		}
	} else {
		for _, f := range q.Fields {
			needed[f] = true
		}
	}
	for _, f := range q.Pred.Fields() {
		needed[f] = true
	}

	// Row-fraction scanned after pruning.
	fraction := 1.0
	seekFactor := 1.0
	if len(d.grid) > 0 {
		cellsTouched := 1.0
		rowsOfCells := 1.0
		constrained := false
		for di, g := range d.grid {
			fs := stats.Fields[g.Field]
			lo, hi, _, _, found := q.Pred.Bounds(g.Field)
			frac := 1.0
			if found && fs.Max > fs.Min {
				loF, hiF := fs.Min, fs.Max
				if !lo.IsNull() {
					loF = lo.Float()
				}
				if !hi.IsNull() {
					hiF = hi.Float()
				}
				frac = (hiF - loF) / (fs.Max - fs.Min)
				constrained = true
			}
			// Cell quantization: boundary cells add 1/cells per dimension.
			frac += 1.0 / float64(g.Cells)
			if frac > 1 {
				frac = 1
			}
			cellsTouched *= frac * float64(g.Cells)
			if di > 0 {
				rowsOfCells *= frac * float64(g.Cells)
			}
			fraction *= frac
		}
		if constrained {
			// Seek count depends on how the curve linearizes touched cells.
			switch d.curve {
			case algebra.CurveZOrder:
				seekFactor = math.Max(1, math.Sqrt(cellsTouched))
			case algebra.CurveHilbert:
				seekFactor = math.Max(1, math.Sqrt(cellsTouched)*0.75)
			default: // row-major: every row of cells is a separate run
				seekFactor = math.Max(1, rowsOfCells)
			}
		}
	} else if len(d.order) > 0 {
		if lo, hi, _, _, found := q.Pred.Bounds(d.order[0]); found {
			fs := stats.Fields[d.order[0]]
			if fs.Max > fs.Min {
				loF, hiF := fs.Min, fs.Max
				if !lo.IsNull() {
					loF = lo.Float()
				}
				if !hi.IsNull() {
					hiF = hi.Float()
				}
				fraction = (hiF-loF)/(fs.Max-fs.Min) + 0.01 // block quantization
				if fraction > 1 {
					fraction = 1
				}
			}
		}
	}

	groups := d.groups
	if groups == nil {
		groups = [][]string{names}
	}
	var est cost.Estimate
	for _, g := range groups {
		read := false
		width := 0.0
		for _, f := range g {
			fs := stats.Fields[f]
			w := fs.AvgBytes
			if c, ok := d.codecs[f]; ok && c == fs.BestCodec {
				w *= fs.CodecRatio
			}
			width += w
			if needed[f] {
				read = true
			}
		}
		if !read {
			continue
		}
		bytes := float64(stats.RowCount) * fraction * width
		est.Pages += uint64(math.Ceil(bytes / float64(opts.PageSize)))
		est.Seeks += uint64(math.Ceil(seekFactor))
		est.Rows += int64(float64(stats.RowCount) * fraction)
	}
	return est
}

// annealGroups searches column groupings with simulated annealing,
// returning nil when no grouping beats the trivial designs it starts from.
func annealGroups(table string, stats TableStats, w Workload, model cost.Model, opts Options) [][]string {
	names := stats.Schema.Names()
	if len(names) < 3 || opts.AnnealingSteps <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(opts.Seed))
	// State: group index per field.
	assign := make([]int, len(names))
	for i := range assign {
		assign[i] = r.Intn(len(names))
	}
	groupsOf := func(a []int) [][]string {
		m := map[int][]string{}
		for i, g := range a {
			m[g] = append(m[g], names[i])
		}
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var out [][]string
		for _, k := range keys {
			out = append(out, m[k])
		}
		return out
	}
	scoreOf := func(a []int) float64 {
		return workloadCost(design{groups: groupsOf(a)}, stats, w, model, opts)
	}
	cur := scoreOf(assign)
	best := append([]int(nil), assign...)
	bestScore := cur
	temp := cur / 10
	for step := 0; step < opts.AnnealingSteps; step++ {
		f := r.Intn(len(names))
		old := assign[f]
		assign[f] = r.Intn(len(names))
		next := scoreOf(assign)
		if next <= cur || r.Float64() < math.Exp((cur-next)/math.Max(temp, 1e-9)) {
			cur = next
			if cur < bestScore {
				bestScore = cur
				best = append(best[:0], assign...)
			}
		} else {
			assign[f] = old
		}
		temp *= 0.99
	}
	return groupsOf(best)
}
