// Package vec implements typed column batches for vectorized scan
// execution. A Vector holds one column of a block in an unboxed, kind-native
// representation (int64s, float64s, a byte arena) plus a null bitmap; a
// Batch groups the vectors of one block under a schema; a selection vector
// ([]int32 of surviving row indexes) carries filter results between
// operators without materializing rows.
//
// This is the MonetDB/C-Store execution style the paper's DSM motivation
// leans on: codecs decode straight into vectors (no value.Value interface
// boxing per cell), predicates run column-at-a-time over the typed slices,
// and only the selected rows of projected columns are materialized.
//
// Vectors and batches are designed for reuse: Reset keeps the underlying
// buffers, and Pool recycles whole batches across blocks and goroutines.
package vec

import (
	"fmt"
	"sync"

	"rodentstore/internal/value"
)

// Bitmap is a null bitmap: bit i set means row i is null. The zero Bitmap
// is empty (no nulls) and ready to use.
type Bitmap struct {
	bits []uint64
	set  int
}

// Reset clears the bitmap for reuse, keeping its buffer.
func (b *Bitmap) Reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.set = 0
}

// Set marks row i null, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for len(b.bits) <= w {
		b.bits = append(b.bits, 0)
	}
	if b.bits[w]&(1<<(i&63)) == 0 {
		b.bits[w] |= 1 << (i & 63)
		b.set++
	}
}

// Get reports whether row i is null.
func (b *Bitmap) Get(i int) bool {
	w := i >> 6
	if w >= len(b.bits) {
		return false
	}
	return b.bits[w]&(1<<(i&63)) != 0
}

// Any reports whether any bit is set. Filters use it to skip the per-row
// null check on the (typical) all-valid vector.
func (b *Bitmap) Any() bool { return b.set > 0 }

// Vector is one column of a batch in the kind-native representation:
//
//	Int, Bool   -> Int64s (Bool stored 0/1)
//	Float       -> Float64s
//	Str, Bytes  -> Data arena + Offs (n+1 offsets)
//	List, other -> Boxed (value.Value fallback)
//
// Null rows carry the representation's zero value and a set bit in Nulls.
// The typed slices are exported so codec fast paths can decode into them
// directly; call SyncLen afterwards to restore the row count invariant.
type Vector struct {
	kind value.Kind

	// Int64s holds Int and Bool columns (Bool as 0/1).
	Int64s []int64
	// Float64s holds Float columns.
	Float64s []float64
	// Data and Offs hold Str and Bytes columns: row i is
	// Data[Offs[i]:Offs[i+1]]. Offs has n+1 entries (Offs[0] == 0).
	Data []byte
	Offs []uint64
	// Boxed holds kinds without a native representation (List).
	Boxed []value.Value
	// Nulls marks null rows.
	Nulls Bitmap

	n int
}

// Reset clears the vector for reuse as a column of kind k, keeping buffers.
func (v *Vector) Reset(k value.Kind) {
	v.kind = k
	v.Int64s = v.Int64s[:0]
	v.Float64s = v.Float64s[:0]
	v.Data = v.Data[:0]
	v.Offs = v.Offs[:0]
	v.Boxed = v.Boxed[:0]
	v.Nulls.Reset()
	v.n = 0
}

// Kind returns the column kind.
func (v *Vector) Kind() value.Kind { return v.kind }

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// IsNull reports whether row i is null.
func (v *Vector) IsNull(i int) bool { return v.Nulls.Get(i) }

// native reports which representation the kind uses.
func native(k value.Kind) value.Kind {
	switch k {
	case value.Int, value.Bool:
		return value.Int
	case value.Float:
		return value.Float
	case value.Str, value.Bytes:
		return value.Bytes
	default:
		return value.List // boxed
	}
}

// SyncLen recomputes the row count from the active representation after a
// codec decoded into the exported slices directly.
func (v *Vector) SyncLen() {
	switch native(v.kind) {
	case value.Int:
		v.n = len(v.Int64s)
	case value.Float:
		v.n = len(v.Float64s)
	case value.Bytes:
		if len(v.Offs) == 0 {
			v.n = 0
		} else {
			v.n = len(v.Offs) - 1
		}
	default:
		v.n = len(v.Boxed)
	}
}

// AppendInt64 appends one Int/Bool row.
func (v *Vector) AppendInt64(x int64) {
	v.Int64s = append(v.Int64s, x)
	v.n++
}

// AppendFloat64 appends one Float row.
func (v *Vector) AppendFloat64(x float64) {
	v.Float64s = append(v.Float64s, x)
	v.n++
}

// AppendBytes appends one Str/Bytes row, copying b into the arena.
func (v *Vector) AppendBytes(b []byte) {
	if len(v.Offs) == 0 {
		v.Offs = append(v.Offs, 0)
	}
	v.Data = append(v.Data, b...)
	v.Offs = append(v.Offs, uint64(len(v.Data)))
	v.n++
}

// BytesAt returns the arena slice of row i (aliasing the arena).
func (v *Vector) BytesAt(i int) []byte { return v.Data[v.Offs[i]:v.Offs[i+1]] }

// AppendNull appends a null row (representation zero value + null bit).
func (v *Vector) AppendNull() {
	switch native(v.kind) {
	case value.Int:
		v.Int64s = append(v.Int64s, 0)
	case value.Float:
		v.Float64s = append(v.Float64s, 0)
	case value.Bytes:
		if len(v.Offs) == 0 {
			v.Offs = append(v.Offs, 0)
		}
		v.Offs = append(v.Offs, uint64(len(v.Data)))
	default:
		v.Boxed = append(v.Boxed, value.NullValue())
	}
	v.Nulls.Set(v.n)
	v.n++
}

// AppendValue appends one boxed value, unboxing into the native
// representation. It is the adapter path for codecs without a typed decoder
// and the bridge from row-at-a-time code (FromRows).
func (v *Vector) AppendValue(val value.Value) error {
	if val.IsNull() {
		v.AppendNull()
		return nil
	}
	switch native(v.kind) {
	case value.Int:
		switch val.Kind() {
		case value.Int, value.Bool:
			v.AppendInt64(val.Int())
		default:
			return fmt.Errorf("vec: cannot append %s to %s column", val.Kind(), v.kind)
		}
	case value.Float:
		switch val.Kind() {
		case value.Float, value.Int:
			v.AppendFloat64(val.Float())
		default:
			return fmt.Errorf("vec: cannot append %s to %s column", val.Kind(), v.kind)
		}
	case value.Bytes:
		switch val.Kind() {
		case value.Str:
			v.AppendBytes([]byte(val.Str()))
		case value.Bytes:
			v.AppendBytes(val.Bytes())
		default:
			return fmt.Errorf("vec: cannot append %s to %s column", val.Kind(), v.kind)
		}
	default:
		v.Boxed = append(v.Boxed, val)
		v.n++
	}
	return nil
}

// Value boxes row i back into a value.Value (the late-materialization step).
func (v *Vector) Value(i int) value.Value {
	if v.Nulls.Get(i) {
		return value.NullValue()
	}
	switch native(v.kind) {
	case value.Int:
		if v.kind == value.Bool {
			return value.NewBool(v.Int64s[i] != 0)
		}
		return value.NewInt(v.Int64s[i])
	case value.Float:
		return value.NewFloat(v.Float64s[i])
	case value.Bytes:
		b := v.BytesAt(i)
		if v.kind == value.Str {
			return value.NewString(string(b))
		}
		out := make([]byte, len(b))
		copy(out, b)
		return value.NewBytes(out)
	default:
		return v.Boxed[i]
	}
}

// AppendSel gathers the selected rows of src onto v (the gather step of
// late materialization). v must have been Reset with src's kind.
func (v *Vector) AppendSel(src *Vector, sel []int32) {
	switch native(src.kind) {
	case value.Int:
		for _, i := range sel {
			v.Int64s = append(v.Int64s, src.Int64s[i])
		}
	case value.Float:
		for _, i := range sel {
			v.Float64s = append(v.Float64s, src.Float64s[i])
		}
	case value.Bytes:
		if len(v.Offs) == 0 {
			v.Offs = append(v.Offs, 0)
		}
		for _, i := range sel {
			v.Data = append(v.Data, src.BytesAt(int(i))...)
			v.Offs = append(v.Offs, uint64(len(v.Data)))
		}
	default:
		for _, i := range sel {
			v.Boxed = append(v.Boxed, src.Boxed[i])
		}
	}
	if src.Nulls.Any() {
		for k, i := range sel {
			if src.Nulls.Get(int(i)) {
				v.Nulls.Set(v.n + k)
			}
		}
	}
	v.n += len(sel)
}

// Batch is the decoded rows of one block: one Vector per schema field, all
// the same length.
type Batch struct {
	schema *value.Schema
	// Cols are the column vectors, parallel to schema.Fields.
	Cols []Vector
	n    int
}

// NewBatch allocates a batch for the given schema.
func NewBatch(schema *value.Schema) *Batch {
	b := &Batch{}
	b.Reset(schema)
	return b
}

// Reset clears the batch for reuse under a (possibly different) schema,
// keeping column buffers.
func (b *Batch) Reset(schema *value.Schema) {
	b.schema = schema
	if cap(b.Cols) < schema.Arity() {
		cols := make([]Vector, schema.Arity())
		copy(cols, b.Cols)
		b.Cols = cols
	}
	b.Cols = b.Cols[:schema.Arity()]
	for i := range b.Cols {
		b.Cols[i].Reset(schema.Fields[i].Type)
	}
	b.n = 0
}

// Schema returns the batch schema.
func (b *Batch) Schema() *value.Schema { return b.schema }

// Len returns the row count.
func (b *Batch) Len() int { return b.n }

// SetLen declares the row count after columns were filled directly. It
// errors if any column disagrees — the cross-column alignment check.
func (b *Batch) SetLen(n int) error {
	for i := range b.Cols {
		if b.Cols[i].Len() != n {
			return fmt.Errorf("vec: column %q has %d rows, batch has %d",
				b.schema.Fields[i].Name, b.Cols[i].Len(), n)
		}
	}
	b.n = n
	return nil
}

// Row boxes row i into a fresh value.Row.
func (b *Batch) Row(i int) value.Row {
	out := make(value.Row, len(b.Cols))
	for c := range b.Cols {
		out[c] = b.Cols[c].Value(i)
	}
	return out
}

// AppendRow appends one boxed row across all columns.
func (b *Batch) AppendRow(r value.Row) error {
	if len(r) != len(b.Cols) {
		return fmt.Errorf("vec: row arity %d != batch arity %d", len(r), len(b.Cols))
	}
	for c := range b.Cols {
		if err := b.Cols[c].AppendValue(r[c]); err != nil {
			return err
		}
	}
	b.n++
	return nil
}

// FromRows builds a batch from boxed rows (the bridge used when a cursor is
// serving a materialized result through the batch API).
func FromRows(schema *value.Schema, rows []value.Row) (*Batch, error) {
	b := NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// FillSel resets sel to the identity selection [0, n), reusing its buffer.
func FillSel(sel []int32, n int) []int32 {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// Pool recycles batches across blocks and scan workers. It is safe for
// concurrent use; Get returns a batch Reset to the given schema.
type Pool struct {
	p sync.Pool
}

// NewPool creates a batch pool.
func NewPool() *Pool {
	return &Pool{p: sync.Pool{New: func() any { return &Batch{} }}}
}

// Get returns a batch reset to schema.
func (p *Pool) Get(schema *value.Schema) *Batch {
	b := p.p.Get().(*Batch)
	b.Reset(schema)
	return b
}

// Put recycles a batch. The caller must not touch it afterwards.
func (p *Pool) Put(b *Batch) {
	if b != nil {
		p.p.Put(b)
	}
}
