package vec

// Vectorized aggregate kernels: tight typed loops computing sum/min/max/
// count over the Int64s/Float64s representations, null-bitmap- and
// selection-vector-aware, in both ungrouped (scalar accumulator) and
// grouped (accumulator-per-group-id) forms; plus GroupTable, the hash
// GROUP BY operator that assigns dense group ids to distinct typed key
// tuples without boxing cells.
//
// Every kernel takes the column slice, the null bitmap (nil or empty means
// all-valid, skipping the per-row check) and a selection vector (nil means
// all rows [0, len)). Grouped kernels additionally take gids, the dense
// group id of each *selected* row: gids[k] belongs to row sel[k] (or row k
// when sel is nil). Min/max over floats use value.CompareFloats ordering so
// results match the boxed executor's value.Compare exactly (NaN sorts
// before everything, including -Inf).

import (
	"bytes"
	"math"

	"rodentstore/internal/value"
)

// SumInt64 returns the wrapping int64 sum and the count of non-null
// selected rows.
func SumInt64(xs []int64, nulls *Bitmap, sel []int32) (sum, count int64) {
	if nulls != nil && nulls.Any() {
		if sel == nil {
			for i, x := range xs {
				if !nulls.Get(i) {
					sum += x
					count++
				}
			}
			return sum, count
		}
		for _, i := range sel {
			if !nulls.Get(int(i)) {
				sum += xs[i]
				count++
			}
		}
		return sum, count
	}
	if sel == nil {
		for _, x := range xs {
			sum += x
		}
		return sum, int64(len(xs))
	}
	for _, i := range sel {
		sum += xs[i]
	}
	return sum, int64(len(sel))
}

// SumFloat64 returns the IEEE left-to-right float64 sum and the count of
// non-null selected rows.
func SumFloat64(xs []float64, nulls *Bitmap, sel []int32) (sum float64, count int64) {
	if nulls != nil && nulls.Any() {
		if sel == nil {
			for i, x := range xs {
				if !nulls.Get(i) {
					sum += x
					count++
				}
			}
			return sum, count
		}
		for _, i := range sel {
			if !nulls.Get(int(i)) {
				sum += xs[i]
				count++
			}
		}
		return sum, count
	}
	if sel == nil {
		for _, x := range xs {
			sum += x
		}
		return sum, int64(len(xs))
	}
	for _, i := range sel {
		sum += xs[i]
	}
	return sum, int64(len(sel))
}

// MinMaxInt64 returns the min and max of the non-null selected rows and
// their count; min/max are meaningful only when count > 0.
func MinMaxInt64(xs []int64, nulls *Bitmap, sel []int32) (min, max, count int64) {
	min, max = math.MaxInt64, math.MinInt64
	hasNulls := nulls != nil && nulls.Any()
	if sel == nil {
		for i, x := range xs {
			if hasNulls && nulls.Get(i) {
				continue
			}
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			count++
		}
		return min, max, count
	}
	for _, i := range sel {
		if hasNulls && nulls.Get(int(i)) {
			continue
		}
		x := xs[i]
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		count++
	}
	return min, max, count
}

// MinMaxFloat64 returns the min and max (value.CompareFloats ordering) of
// the non-null selected rows and their count.
func MinMaxFloat64(xs []float64, nulls *Bitmap, sel []int32) (min, max float64, count int64) {
	hasNulls := nulls != nil && nulls.Any()
	update := func(x float64) {
		if count == 0 {
			min, max = x, x
		} else {
			if value.CompareFloats(x, min) < 0 {
				min = x
			}
			if value.CompareFloats(x, max) > 0 {
				max = x
			}
		}
		count++
	}
	if sel == nil {
		for i, x := range xs {
			if hasNulls && nulls.Get(i) {
				continue
			}
			update(x)
		}
		return min, max, count
	}
	for _, i := range sel {
		if hasNulls && nulls.Get(int(i)) {
			continue
		}
		update(xs[i])
	}
	return min, max, count
}

// CountNonNull counts the non-null selected rows of a vector of length n.
func CountNonNull(n int, nulls *Bitmap, sel []int32) int64 {
	if nulls == nil || !nulls.Any() {
		if sel == nil {
			return int64(n)
		}
		return int64(len(sel))
	}
	var count int64
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) {
				count++
			}
		}
		return count
	}
	for _, i := range sel {
		if !nulls.Get(int(i)) {
			count++
		}
	}
	return count
}

// SumInt64Groups accumulates per-group wrapping sums and non-null counts.
// sums and counts are indexed by group id.
func SumInt64Groups(xs []int64, nulls *Bitmap, sel []int32, gids []int32, sums, counts []int64) {
	hasNulls := nulls != nil && nulls.Any()
	if sel == nil {
		for i, x := range xs {
			if hasNulls && nulls.Get(i) {
				continue
			}
			g := gids[i]
			sums[g] += x
			counts[g]++
		}
		return
	}
	for k, i := range sel {
		if hasNulls && nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		sums[g] += xs[i]
		counts[g]++
	}
}

// SumFloat64Groups accumulates per-group float sums and non-null counts.
func SumFloat64Groups(xs []float64, nulls *Bitmap, sel []int32, gids []int32, sums []float64, counts []int64) {
	hasNulls := nulls != nil && nulls.Any()
	if sel == nil {
		for i, x := range xs {
			if hasNulls && nulls.Get(i) {
				continue
			}
			g := gids[i]
			sums[g] += x
			counts[g]++
		}
		return
	}
	for k, i := range sel {
		if hasNulls && nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		sums[g] += xs[i]
		counts[g]++
	}
}

// MinMaxInt64Groups folds per-group min/max and non-null counts; mins[g]
// and maxs[g] are meaningful only when counts[g] > 0 on return.
func MinMaxInt64Groups(xs []int64, nulls *Bitmap, sel []int32, gids []int32, mins, maxs, counts []int64) {
	hasNulls := nulls != nil && nulls.Any()
	step := func(k, i int) {
		if hasNulls && nulls.Get(i) {
			return
		}
		g := gids[k]
		x := xs[i]
		if counts[g] == 0 {
			mins[g], maxs[g] = x, x
		} else {
			if x < mins[g] {
				mins[g] = x
			}
			if x > maxs[g] {
				maxs[g] = x
			}
		}
		counts[g]++
	}
	if sel == nil {
		for i := range xs {
			step(i, i)
		}
		return
	}
	for k, i := range sel {
		step(k, int(i))
	}
}

// MinMaxFloat64Groups folds per-group min/max (value.CompareFloats
// ordering) and non-null counts.
func MinMaxFloat64Groups(xs []float64, nulls *Bitmap, sel []int32, gids []int32, mins, maxs []float64, counts []int64) {
	hasNulls := nulls != nil && nulls.Any()
	step := func(k, i int) {
		if hasNulls && nulls.Get(i) {
			return
		}
		g := gids[k]
		x := xs[i]
		if counts[g] == 0 {
			mins[g], maxs[g] = x, x
		} else {
			if value.CompareFloats(x, mins[g]) < 0 {
				mins[g] = x
			}
			if value.CompareFloats(x, maxs[g]) > 0 {
				maxs[g] = x
			}
		}
		counts[g]++
	}
	if sel == nil {
		for i := range xs {
			step(i, i)
		}
		return
	}
	for k, i := range sel {
		step(k, int(i))
	}
}

// CountRowsGroups counts selected rows per group (the count(*) kernel).
func CountRowsGroups(n int, sel []int32, gids []int32, counts []int64) {
	if sel == nil {
		for i := 0; i < n; i++ {
			counts[gids[i]]++
		}
		return
	}
	for k := range sel {
		counts[gids[k]]++
	}
}

// CountNonNullGroups counts non-null selected rows per group.
func CountNonNullGroups(n int, nulls *Bitmap, sel []int32, gids []int32, counts []int64) {
	if nulls == nil || !nulls.Any() {
		CountRowsGroups(n, sel, gids, counts)
		return
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) {
				counts[gids[i]]++
			}
		}
		return
	}
	for k, i := range sel {
		if !nulls.Get(int(i)) {
			counts[gids[k]]++
		}
	}
}

// GroupTable assigns dense group ids (0, 1, 2, ... in first-seen order) to
// distinct key tuples over typed key columns, and stores each group's key
// values for output. Equality follows value.Compare within a column's kind:
// floats compare NaN == NaN and -0 == +0 (key hashing canonicalizes both),
// null equals null, strings/bytes compare by content.
type GroupTable struct {
	keys *Batch
	idx  map[uint64][]int32
}

// NewGroupTable creates a table for key tuples of the given schema.
func NewGroupTable(keySchema *value.Schema) *GroupTable {
	return &GroupTable{keys: NewBatch(keySchema), idx: make(map[uint64][]int32)}
}

// Len returns the number of distinct groups seen.
func (g *GroupTable) Len() int { return g.keys.Len() }

// Keys returns the stored key tuples: row i of the batch is group i's key.
// The batch belongs to the table; callers must not mutate it.
func (g *GroupTable) Keys() *Batch { return g.keys }

// KeyCols returns pointers to the stored key column vectors — the shape
// GroupIDs takes, so one partial table's keys can be re-keyed into another
// (the merge step of parallel aggregation).
func (g *GroupTable) KeyCols() []*Vector {
	out := make([]*Vector, len(g.keys.Cols))
	for i := range g.keys.Cols {
		out[i] = &g.keys.Cols[i]
	}
	return out
}

// GroupIDs assigns a group id to each selected row of the key columns
// (cols parallel to the key schema, each of length n), creating groups on
// first sight, and appends the dense ids to gids (reused; pass gids[:0]).
func (g *GroupTable) GroupIDs(cols []*Vector, sel []int32, n int, gids []int32) []int32 {
	if sel == nil {
		for i := 0; i < n; i++ {
			gids = append(gids, g.groupID(cols, i))
		}
		return gids
	}
	for _, i := range sel {
		gids = append(gids, g.groupID(cols, int(i)))
	}
	return gids
}

// groupID finds or inserts the key tuple at row i.
func (g *GroupTable) groupID(cols []*Vector, i int) int32 {
	h := g.hashRow(cols, i)
	for _, cand := range g.idx[h] {
		if g.equalRow(cols, i, int(cand)) {
			return cand
		}
	}
	id := int32(g.keys.Len())
	for c, col := range cols {
		kc := &g.keys.Cols[c]
		if col.Nulls.Get(i) {
			kc.AppendNull()
			continue
		}
		switch native(col.kind) {
		case value.Int:
			kc.AppendInt64(col.Int64s[i])
		case value.Float:
			kc.AppendFloat64(col.Float64s[i])
		case value.Bytes:
			kc.AppendBytes(col.BytesAt(i))
		default:
			kc.Boxed = append(kc.Boxed, col.Boxed[i])
			kc.n++
		}
	}
	g.keys.n++
	g.idx[h] = append(g.idx[h], id)
	return id
}

// hashRow hashes the key tuple at row i of cols. Cell hashes mirror the
// equality rules: float -0 and NaN are canonicalized, nulls hash to a tag.
func (g *GroupTable) hashRow(cols []*Vector, i int) uint64 {
	var h uint64 = 14695981039346656037 // FNV-64 offset basis
	for _, col := range cols {
		h = mix64(h, hashCell(col, i))
	}
	return h
}

// HashKeyCell hashes one key cell the way GroupTable does — exported so the
// boxed aggregation oracle groups under identical hashing rules.
func HashKeyCell(col *Vector, i int) uint64 { return hashCell(col, i) }

func hashCell(col *Vector, i int) uint64 {
	if col.Nulls.Get(i) {
		return 0x9e3779b97f4a7c15
	}
	switch native(col.kind) {
	case value.Int:
		return splitmix64(uint64(col.Int64s[i]))
	case value.Float:
		return splitmix64(CanonicalFloatBits(col.Float64s[i]))
	case value.Bytes:
		return hashBytes(col.BytesAt(i))
	default:
		return col.Boxed[i].Hash()
	}
}

// CanonicalFloatBits returns hash-stable bits for a float key: -0 maps to
// +0 and every NaN payload to one canonical NaN, matching
// value.CompareFloats equality.
func CanonicalFloatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// equalRow compares the key tuple at row i of cols with stored group gid.
func (g *GroupTable) equalRow(cols []*Vector, i, gid int) bool {
	for c, col := range cols {
		kc := &g.keys.Cols[c]
		ln, rn := col.Nulls.Get(i), kc.Nulls.Get(gid)
		if ln != rn {
			return false
		}
		if ln {
			continue
		}
		switch native(col.kind) {
		case value.Int:
			if col.Int64s[i] != kc.Int64s[gid] {
				return false
			}
		case value.Float:
			if value.CompareFloats(col.Float64s[i], kc.Float64s[gid]) != 0 {
				return false
			}
		case value.Bytes:
			if !bytes.Equal(col.BytesAt(i), kc.BytesAt(gid)) {
				return false
			}
		default:
			if !value.Equal(col.Boxed[i], kc.Boxed[gid]) {
				return false
			}
		}
	}
	return true
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix64 folds a cell hash into a running tuple hash.
func mix64(h, x uint64) uint64 { return splitmix64(h ^ x) }

// hashBytes is FNV-1a over a byte string.
func hashBytes(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
