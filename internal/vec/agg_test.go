package vec

import (
	"math"
	"math/rand"
	"testing"

	"rodentstore/internal/value"
)

// randInts builds a value column with nulls and extreme values, returning
// the typed data, the bitmap, and a boxed mirror for the oracle.
func randInts(r *rand.Rand, n int) ([]int64, *Bitmap, []value.Value) {
	xs := make([]int64, n)
	var nulls Bitmap
	boxed := make([]value.Value, n)
	pool := []int64{0, 1, -1, 5, -7, math.MaxInt64, math.MinInt64}
	for i := range xs {
		if r.Intn(7) == 0 {
			nulls.Set(i)
			boxed[i] = value.NullValue()
			continue
		}
		xs[i] = pool[r.Intn(len(pool))]
		boxed[i] = value.NewInt(xs[i])
	}
	return xs, &nulls, boxed
}

func randFloats(r *rand.Rand, n int) ([]float64, *Bitmap, []value.Value) {
	xs := make([]float64, n)
	var nulls Bitmap
	boxed := make([]value.Value, n)
	pool := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.NaN(), math.Inf(1), math.Inf(-1)}
	for i := range xs {
		if r.Intn(7) == 0 {
			nulls.Set(i)
			boxed[i] = value.NullValue()
			continue
		}
		if r.Intn(2) == 0 {
			xs[i] = pool[r.Intn(len(pool))]
		} else {
			xs[i] = r.NormFloat64() * 100
		}
		boxed[i] = value.NewFloat(xs[i])
	}
	return xs, &nulls, boxed
}

func sels(r *rand.Rand, n int) [][]int32 {
	var half, all []int32
	for i := int32(0); i < int32(n); i++ {
		all = append(all, i)
		if r.Intn(2) == 0 {
			half = append(half, i)
		}
	}
	return [][]int32{nil, {}, half, all}
}

func TestUngroupedKernels(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const n = 201
	ixs, inulls, _ := randInts(r, n)
	fxs, fnulls, _ := randFloats(r, n)
	for _, sel := range sels(r, n) {
		idx := sel
		if idx == nil {
			idx = FillSel(nil, n)
		}
		// Oracles.
		var wsumI, wcount int64
		var wsumF float64
		var wminI, wmaxI int64
		var wminF, wmaxF float64
		var icount, fcount int64
		for _, i := range idx {
			if !inulls.Get(int(i)) {
				if icount == 0 {
					wminI, wmaxI = ixs[i], ixs[i]
				} else {
					if ixs[i] < wminI {
						wminI = ixs[i]
					}
					if ixs[i] > wmaxI {
						wmaxI = ixs[i]
					}
				}
				wsumI += ixs[i]
				icount++
			}
			if !fnulls.Get(int(i)) {
				if fcount == 0 {
					wminF, wmaxF = fxs[i], fxs[i]
				} else {
					if value.CompareFloats(fxs[i], wminF) < 0 {
						wminF = fxs[i]
					}
					if value.CompareFloats(fxs[i], wmaxF) > 0 {
						wmaxF = fxs[i]
					}
				}
				wsumF += fxs[i]
				fcount++
			}
			wcount++
		}
		_ = wcount
		sum, count := SumInt64(ixs, inulls, sel)
		if sum != wsumI || count != icount {
			t.Fatalf("SumInt64(sel=%v): (%d,%d), want (%d,%d)", sel != nil, sum, count, wsumI, icount)
		}
		fsum, count := SumFloat64(fxs, fnulls, sel)
		if count != fcount || (fsum != wsumF && !(math.IsNaN(fsum) && math.IsNaN(wsumF))) {
			t.Fatalf("SumFloat64: (%v,%d), want (%v,%d)", fsum, count, wsumF, fcount)
		}
		mn, mx, count := MinMaxInt64(ixs, inulls, sel)
		if count != icount || (count > 0 && (mn != wminI || mx != wmaxI)) {
			t.Fatalf("MinMaxInt64: (%d,%d,%d), want (%d,%d,%d)", mn, mx, count, wminI, wmaxI, icount)
		}
		fmn, fmx, count := MinMaxFloat64(fxs, fnulls, sel)
		if count != fcount || (count > 0 && (value.CompareFloats(fmn, wminF) != 0 || value.CompareFloats(fmx, wmaxF) != 0)) {
			t.Fatalf("MinMaxFloat64: (%v,%v,%d), want (%v,%v,%d)", fmn, fmx, count, wminF, wmaxF, fcount)
		}
		if got := CountNonNull(n, inulls, sel); got != icount {
			t.Fatalf("CountNonNull: %d, want %d", got, icount)
		}
	}
	// No-null fast path.
	xs := []int64{3, 1, 2}
	if sum, count := SumInt64(xs, nil, nil); sum != 6 || count != 3 {
		t.Fatalf("SumInt64 no-null: %d,%d", sum, count)
	}
	if got := CountNonNull(3, nil, nil); got != 3 {
		t.Fatalf("CountNonNull no-null: %d", got)
	}
}

func TestGroupedKernels(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	const n, ng = 150, 5
	ixs, inulls, _ := randInts(r, n)
	fxs, fnulls, _ := randFloats(r, n)
	allGids := make([]int32, n)
	for i := range allGids {
		allGids[i] = int32(r.Intn(ng))
	}
	for _, sel := range sels(r, n) {
		idx := sel
		if idx == nil {
			idx = FillSel(nil, n)
		}
		// gids are dense: one per selected row.
		gids := make([]int32, len(idx))
		for k, i := range idx {
			gids[k] = allGids[i]
		}
		wsumI := make([]int64, ng)
		wsumF := make([]float64, ng)
		wminI, wmaxI := make([]int64, ng), make([]int64, ng)
		wminF, wmaxF := make([]float64, ng), make([]float64, ng)
		icounts, fcounts, rcounts := make([]int64, ng), make([]int64, ng), make([]int64, ng)
		for k, i := range idx {
			g := gids[k]
			rcounts[g]++
			if !inulls.Get(int(i)) {
				if icounts[g] == 0 {
					wminI[g], wmaxI[g] = ixs[i], ixs[i]
				} else {
					if ixs[i] < wminI[g] {
						wminI[g] = ixs[i]
					}
					if ixs[i] > wmaxI[g] {
						wmaxI[g] = ixs[i]
					}
				}
				wsumI[g] += ixs[i]
				icounts[g]++
			}
			if !fnulls.Get(int(i)) {
				if fcounts[g] == 0 {
					wminF[g], wmaxF[g] = fxs[i], fxs[i]
				} else {
					if value.CompareFloats(fxs[i], wminF[g]) < 0 {
						wminF[g] = fxs[i]
					}
					if value.CompareFloats(fxs[i], wmaxF[g]) > 0 {
						wmaxF[g] = fxs[i]
					}
				}
				wsumF[g] += fxs[i]
				fcounts[g]++
			}
		}
		sums, counts := make([]int64, ng), make([]int64, ng)
		SumInt64Groups(ixs, inulls, sel, gids, sums, counts)
		for g := 0; g < ng; g++ {
			if sums[g] != wsumI[g] || counts[g] != icounts[g] {
				t.Fatalf("SumInt64Groups g%d: (%d,%d), want (%d,%d)", g, sums[g], counts[g], wsumI[g], icounts[g])
			}
		}
		fsums := make([]float64, ng)
		counts = make([]int64, ng)
		SumFloat64Groups(fxs, fnulls, sel, gids, fsums, counts)
		for g := 0; g < ng; g++ {
			if counts[g] != fcounts[g] || (fsums[g] != wsumF[g] && !(math.IsNaN(fsums[g]) && math.IsNaN(wsumF[g]))) {
				t.Fatalf("SumFloat64Groups g%d: (%v,%d), want (%v,%d)", g, fsums[g], counts[g], wsumF[g], fcounts[g])
			}
		}
		mins, maxs := make([]int64, ng), make([]int64, ng)
		counts = make([]int64, ng)
		MinMaxInt64Groups(ixs, inulls, sel, gids, mins, maxs, counts)
		for g := 0; g < ng; g++ {
			if counts[g] != icounts[g] || (counts[g] > 0 && (mins[g] != wminI[g] || maxs[g] != wmaxI[g])) {
				t.Fatalf("MinMaxInt64Groups g%d: (%d,%d,%d), want (%d,%d,%d)", g, mins[g], maxs[g], counts[g], wminI[g], wmaxI[g], icounts[g])
			}
		}
		fmins, fmaxs := make([]float64, ng), make([]float64, ng)
		counts = make([]int64, ng)
		MinMaxFloat64Groups(fxs, fnulls, sel, gids, fmins, fmaxs, counts)
		for g := 0; g < ng; g++ {
			if counts[g] != fcounts[g] {
				t.Fatalf("MinMaxFloat64Groups g%d count: %d, want %d", g, counts[g], fcounts[g])
			}
			if counts[g] > 0 && (value.CompareFloats(fmins[g], wminF[g]) != 0 || value.CompareFloats(fmaxs[g], wmaxF[g]) != 0) {
				t.Fatalf("MinMaxFloat64Groups g%d: (%v,%v), want (%v,%v)", g, fmins[g], fmaxs[g], wminF[g], wmaxF[g])
			}
		}
		counts = make([]int64, ng)
		CountRowsGroups(len(idx), nil, gids, counts)
		for g := 0; g < ng; g++ {
			if counts[g] != rcounts[g] {
				t.Fatalf("CountRowsGroups g%d: %d, want %d", g, counts[g], rcounts[g])
			}
		}
		counts = make([]int64, ng)
		CountNonNullGroups(n, inulls, sel, gids, counts)
		for g := 0; g < ng; g++ {
			if counts[g] != icounts[g] {
				t.Fatalf("CountNonNullGroups g%d: %d, want %d", g, counts[g], icounts[g])
			}
		}
	}
}

// TestGroupTableDistinctness: the group table must treat NaN == NaN and
// -0 == +0 for float keys, null == null for every kind, and distinguish
// everything else — matching value.Equal semantics exactly.
func TestGroupTableDistinctness(t *testing.T) {
	fs := value.MustSchema(value.Field{Name: "k", Type: value.Float})
	gt := NewGroupTable(fs)
	col := &Vector{}
	col.Reset(value.Float)
	vals := []float64{1.5, math.NaN(), math.Copysign(0, -1), 0, math.NaN(), 1.5, math.Inf(1)}
	for _, v := range vals {
		col.AppendFloat64(v)
	}
	col.Nulls.Set(len(vals) - 1) // reuse last slot as a null key too
	col.AppendFloat64(math.Inf(1))
	gids := gt.GroupIDs([]*Vector{col}, nil, col.Len(), nil)
	// groups: 1.5, NaN, 0 (-0 and +0 merge), null, +Inf
	if gt.Len() != 5 {
		t.Fatalf("distinct float groups: %d, want 5 (gids %v)", gt.Len(), gids)
	}
	if gids[1] != gids[4] {
		t.Errorf("NaN keys split: %v", gids)
	}
	if gids[2] != gids[3] {
		t.Errorf("-0 and +0 split: %v", gids)
	}
	if gids[0] != gids[5] {
		t.Errorf("equal 1.5 keys split: %v", gids)
	}

	// Multi-kind key: (str, int) pairs, with selection vector.
	ks := value.MustSchema(
		value.Field{Name: "s", Type: value.Str},
		value.Field{Name: "i", Type: value.Int},
	)
	gt2 := NewGroupTable(ks)
	sc, ic := &Vector{}, &Vector{}
	sc.Reset(value.Str)
	ic.Reset(value.Int)
	pairs := []struct {
		s string
		i int64
	}{{"a", 1}, {"a", 2}, {"b", 1}, {"a", 1}, {"b", 1}}
	for _, p := range pairs {
		sc.AppendBytes([]byte(p.s))
		ic.AppendInt64(p.i)
	}
	sel := []int32{0, 1, 2, 3, 4}
	gids2 := gt2.GroupIDs([]*Vector{sc, ic}, sel, len(pairs), nil)
	if gt2.Len() != 3 {
		t.Fatalf("distinct pair groups: %d, want 3", gt2.Len())
	}
	if gids2[0] != gids2[3] || gids2[2] != gids2[4] || gids2[0] == gids2[1] {
		t.Errorf("pair gids: %v", gids2)
	}
	// Keys() holds one representative row per group, in first-seen order.
	keys := gt2.Keys()
	if keys.Len() != 3 {
		t.Fatalf("keys: %d rows", keys.Len())
	}
	if got := keys.Row(0); got[0].Str() != "a" || got[0].Kind() != value.Str || got[1].Int() != 1 {
		t.Errorf("group 0 key: %v", got)
	}
}

func TestCanonicalFloatBits(t *testing.T) {
	if CanonicalFloatBits(0) != CanonicalFloatBits(math.Copysign(0, -1)) {
		t.Error("-0 and +0 hash differently")
	}
	n1 := math.NaN()
	n2 := math.Float64frombits(math.Float64bits(n1) ^ 1) // different NaN payload
	if !math.IsNaN(n2) {
		t.Fatal("payload flip left NaN range")
	}
	if CanonicalFloatBits(n1) != CanonicalFloatBits(n2) {
		t.Error("NaN payloads hash differently")
	}
	if CanonicalFloatBits(1.5) == CanonicalFloatBits(-1.5) {
		t.Error("1.5 and -1.5 collide")
	}
}
