package vec

import (
	"testing"

	"rodentstore/internal/value"
)

func TestVectorRoundTripKinds(t *testing.T) {
	vals := []value.Value{
		value.NewInt(-7),
		value.NewFloat(3.25),
		value.NewString("hello"),
		value.NewBytes([]byte{1, 2, 3}),
		value.NewBool(true),
		value.NewList(value.NewInt(1), value.NewString("x")),
	}
	kinds := []value.Kind{value.Int, value.Float, value.Str, value.Bytes, value.Bool, value.List}
	for k, kind := range kinds {
		var v Vector
		v.Reset(kind)
		if err := v.AppendValue(vals[k]); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		v.AppendNull()
		if v.Len() != 2 {
			t.Fatalf("%s: len %d", kind, v.Len())
		}
		if !value.Equal(v.Value(0), vals[k]) {
			t.Fatalf("%s: got %v want %v", kind, v.Value(0), vals[k])
		}
		if !v.Value(1).IsNull() || !v.IsNull(1) || v.IsNull(0) {
			t.Fatalf("%s: null bits wrong", kind)
		}
	}
}

func TestVectorIntIntoFloatColumn(t *testing.T) {
	// Schemas declare Float but rows may carry Int (value.Schema.Validate
	// accepts the widening); the vector must widen like the boxed path.
	var v Vector
	v.Reset(value.Float)
	if err := v.AppendValue(value.NewInt(4)); err != nil {
		t.Fatal(err)
	}
	if got := v.Value(0); got.Kind() != value.Float || got.Float() != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestAppendSelGather(t *testing.T) {
	var src Vector
	src.Reset(value.Str)
	for _, s := range []string{"a", "bb", "ccc", "dddd"} {
		src.AppendBytes([]byte(s))
	}
	src.AppendNull()
	var dst Vector
	dst.Reset(value.Str)
	dst.AppendSel(&src, []int32{3, 1, 4})
	if dst.Len() != 3 {
		t.Fatalf("len %d", dst.Len())
	}
	if string(dst.BytesAt(0)) != "dddd" || string(dst.BytesAt(1)) != "bb" {
		t.Fatalf("gather wrong: %q %q", dst.BytesAt(0), dst.BytesAt(1))
	}
	if !dst.IsNull(2) || dst.IsNull(0) {
		t.Fatal("null bits not gathered")
	}
}

func TestBatchRowsAndSetLen(t *testing.T) {
	schema := value.MustSchema(
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "b", Type: value.Str},
	)
	b := NewBatch(schema)
	rows := []value.Row{
		{value.NewInt(1), value.NewString("x")},
		{value.NullValue(), value.NewString("y")},
	}
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range rows {
		got := b.Row(i)
		for c := range want {
			if !value.Equal(got[c], want[c]) {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got[c], want[c])
			}
		}
	}
	// Misaligned columns are an error, not a truncation.
	b.Cols[0].AppendInt64(9)
	if err := b.SetLen(3); err == nil {
		t.Fatal("SetLen accepted misaligned columns")
	}
}

func TestPoolReuseResetsState(t *testing.T) {
	p := NewPool()
	s1 := value.MustSchema(value.Field{Name: "a", Type: value.Int})
	b := p.Get(s1)
	b.Cols[0].AppendInt64(1)
	b.Cols[0].Nulls.Set(0)
	if err := b.SetLen(1); err != nil {
		t.Fatal(err)
	}
	p.Put(b)
	s2 := value.MustSchema(value.Field{Name: "x", Type: value.Str}, value.Field{Name: "y", Type: value.Float})
	b2 := p.Get(s2)
	if b2.Len() != 0 || len(b2.Cols) != 2 || b2.Cols[0].Kind() != value.Str {
		t.Fatalf("pool did not reset: len=%d cols=%d", b2.Len(), len(b2.Cols))
	}
	if b2.Cols[0].Nulls.Any() || b2.Cols[1].Nulls.Any() {
		t.Fatal("stale null bits after reset")
	}
}

func TestFromRows(t *testing.T) {
	schema := value.MustSchema(value.Field{Name: "a", Type: value.Float})
	b, err := FromRows(schema, []value.Row{{value.NewFloat(1.5)}, {value.NullValue()}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Cols[0].Float64s[0] != 1.5 || !b.Cols[0].IsNull(1) {
		t.Fatal("FromRows wrong")
	}
}

func TestFillSel(t *testing.T) {
	sel := FillSel(nil, 3)
	if len(sel) != 3 || sel[2] != 2 {
		t.Fatalf("sel %v", sel)
	}
	sel = FillSel(sel, 1)
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("sel %v", sel)
	}
}
