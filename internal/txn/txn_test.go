package txn

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rodentstore/internal/pager"
	"rodentstore/internal/wal"
)

func newEnv(t *testing.T) (*Manager, *pager.File, *wal.Log, string) {
	t.Helper()
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.rdnt")
	f, err := pager.Create(dbPath, 1024)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dbPath + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); f.Close() })
	return NewManager(f, l), f, l, dbPath
}

func TestCommitDurable(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, []byte("committed data")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:14]) != "committed data" {
		t.Errorf("got %q", got[:14])
	}
}

func TestAbortInvisible(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("original"))
	tx := m.Begin()
	tx.Write(id, []byte("scribble"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadPage(id)
	if string(got[:8]) != "original" {
		t.Error("aborted write leaked to disk")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("old"))
	tx := m.Begin()
	tx.Write(id, []byte("new"))
	got, err := tx.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "new" {
		t.Errorf("txn should see its own write, got %q", got[:3])
	}
	tx.Abort()
}

func TestTxnDoneErrors(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Write(id, []byte("x")); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Write after commit: %v", err)
	}
	if _, err := tx.Read(id); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Read after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double Commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Abort after commit: %v", err)
	}
	if err := tx.Lock("t", Shared); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Lock after commit: %v", err)
	}
}

func TestCrashRecovery(t *testing.T) {
	// Simulate a crash after the commit record is durable but before pages
	// are applied: write the WAL records directly, then recover.
	m, f, l, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("before"))

	l.Append(wal.Record{Type: wal.RecBegin, TxnID: 99})
	l.Append(wal.Record{Type: wal.RecPageImage, TxnID: 99, PageID: id, Payload: []byte("after crash image")})
	l.Append(wal.Record{Type: wal.RecCommit, TxnID: 99})
	l.Flush()

	n, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d txns, want 1", n)
	}
	got, _ := f.ReadPage(id)
	if string(got[:17]) != "after crash image" {
		t.Error("recovery did not apply committed image")
	}
	if l.Size() != 0 {
		t.Error("log not truncated after recovery")
	}
}

func TestUncommittedNotRecovered(t *testing.T) {
	m, f, l, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("keep me"))
	l.Append(wal.Record{Type: wal.RecBegin, TxnID: 5})
	l.Append(wal.Record{Type: wal.RecPageImage, TxnID: 5, PageID: id, Payload: []byte("drop me")})
	l.Flush()

	if n, err := m.Recover(); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, _ := f.ReadPage(id)
	if string(got[:7]) != "keep me" {
		t.Error("uncommitted image applied")
	}
}

func TestRecoveryAfterDeferredCheckpoint(t *testing.T) {
	// Commit no longer syncs the page file or truncates the log; images stay
	// in the log until the checkpoint policy fires. Simulate a crash that
	// loses the in-place page writes (they were never synced) and verify the
	// deferred log still repairs them.
	m, f, l, _ := newEnv(t)
	m.CheckpointBytes = 0 // disable the size trigger: nothing checkpoints
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, []byte("survives the crash")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Size() == 0 {
		t.Fatal("commit should leave its records in the log until a checkpoint")
	}
	// Crash: the applied (but unsynced) page content is lost; the fsync'd
	// log survives.
	f.WritePage(id, make([]byte, 18))
	n, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d txns, want 1", n)
	}
	got, _ := f.ReadPage(id)
	if string(got[:18]) != "survives the crash" {
		t.Error("deferred-checkpoint image not replayed")
	}
	if l.Size() != 0 {
		t.Error("log not truncated after recovery")
	}
}

func TestCheckpointSizePolicy(t *testing.T) {
	// With a tiny CheckpointBytes every commit trips the size trigger: the
	// log is truncated off the commit path and the applied pages are durable
	// in the page file, so a subsequent recovery replays nothing and loses
	// nothing.
	m, f, l, _ := newEnv(t)
	m.CheckpointBytes = 1
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, []byte("checkpointed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Errorf("size-triggered checkpoint should truncate the log, size=%d", l.Size())
	}
	n, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("recovery after checkpoint replayed %d txns, want 0", n)
	}
	got, _ := f.ReadPage(id)
	if string(got[:12]) != "checkpointed" {
		t.Error("checkpointed page lost")
	}
}

func TestRecoverIgnoresTornTailAfterCommit(t *testing.T) {
	// A crash can tear the record being appended when the machine died; the
	// commits fsync'd before it must still replay. Write a commit, append
	// garbage at the log's logical end, reopen, and recover.
	m, f, l, dbPath := newEnv(t)
	m.CheckpointBytes = 0
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, []byte("good commit")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	end := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := dbPath + ".wal"
	wf, err := os.OpenFile(walPath, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.WriteAt([]byte{250, 0, 0, 0, 9, 9, 9}, end); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	l2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	m2 := NewManager(f, l2)
	f.WritePage(id, make([]byte, 11)) // lose the applied page
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d txns, want 1", n)
	}
	got, _ := f.ReadPage(id)
	if string(got[:11]) != "good commit" {
		t.Error("commit before the torn tail not replayed")
	}
}

func TestLogAppliedRecovery(t *testing.T) {
	// Bulk writers write pages in place, then LogApplied makes them durable
	// after the fact. A crash that loses the in-place writes must be
	// repaired by replaying the logged images.
	m, f, _, _ := newEnv(t)
	m.CheckpointBytes = 0
	id, _ := f.Allocate()
	f.WritePage(id, []byte("bulk written"))
	if err := m.LogApplied([]PageImage{{ID: id, Payload: []byte("bulk written")}}, nil); err != nil {
		t.Fatal(err)
	}
	f.WritePage(id, make([]byte, 12)) // crash loses the unsynced write
	n, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d txns, want 1", n)
	}
	got, _ := f.ReadPage(id)
	if string(got[:12]) != "bulk written" {
		t.Error("LogApplied image not replayed")
	}
}

func TestRecoverHealsStaleHeader(t *testing.T) {
	// The page-file header (allocation cursor, free list) is only durable
	// as of the last checkpoint, so after a crash the fsync'd WAL can
	// reference pages the reopened header does not cover yet. Recovery
	// must accept those images, heal the cursor, and never hand the healed
	// pages out again.
	m, f, l, _ := newEnv(t)
	beyond := pager.PageID(f.NumPages()) + 3 // past the header's cursor
	l.Append(wal.Record{Type: wal.RecBegin, TxnID: 7})
	l.Append(wal.Record{Type: wal.RecPageImage, TxnID: 7, PageID: beyond, Payload: []byte("beyond cursor")})
	l.Append(wal.Record{Type: wal.RecCommit, TxnID: 7})
	l.Flush()
	n, err := m.Recover()
	if err != nil {
		t.Fatalf("recovery must heal a stale header, got: %v", err)
	}
	if n != 1 {
		t.Errorf("recovered %d txns, want 1", n)
	}
	got, err := f.ReadPage(beyond)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:13]) != "beyond cursor" {
		t.Error("replayed page content lost")
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id <= beyond {
		t.Errorf("allocation handed out healed page range: got %d, cursor should be past %d", id, beyond)
	}
}

func TestLogAppliedSinceBarrierFallback(t *testing.T) {
	// A writer that captured the barrier before a CheckpointBarrier ran
	// must not log its images — their extents may have been freed and
	// reallocated, and replaying them after a crash would clobber the new
	// contents. The fallback checkpoint keeps the applied state durable.
	m, f, l, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("applied"))
	b := m.Barrier()
	if err := m.CheckpointBarrier(); err != nil {
		t.Fatal(err)
	}
	if err := m.LogAppliedSince(b, []PageImage{{ID: id, Payload: []byte("stale image")}}, nil); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Error("stale images must not reach the log (fallback should checkpoint instead)")
	}
	got, _ := f.ReadPage(id)
	if string(got[:7]) != "applied" {
		t.Error("applied page lost")
	}
	if n, err := m.Recover(); err != nil || n != 0 {
		t.Errorf("recovery after fallback: n=%d err=%v", n, err)
	}
}

func TestConcurrentGroupCommitters(t *testing.T) {
	// W goroutines commit to private pages concurrently with group commit
	// on. Every commit must be durable and correctly applied, and the log
	// must never issue more fsyncs than commits (the ticket protocol's
	// amortization bound). Run under -race this also exercises the
	// leader/waiter handoff in wal.Log.SyncTo.
	m, f, l, _ := newEnv(t)
	const writers, rounds = 8, 10
	ids := make([]pager.PageID, writers)
	for w := range ids {
		ids[w], _ = f.Allocate()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				payload := []byte{byte(w), byte(i)}
				if err := tx.Write(ids[w], payload); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	commits := uint64(writers * rounds)
	if fs := l.Fsyncs(); fs == 0 || fs > commits {
		t.Errorf("fsyncs = %d, want in [1, %d]", fs, commits)
	}
	for w := 0; w < writers; w++ {
		got, err := f.ReadPage(ids[w])
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(w) || got[1] != byte(rounds-1) {
			t.Errorf("writer %d final page = %v, want [%d %d]", w, got[:2], w, rounds-1)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m, _, _, _ := newEnv(t)
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("traces", Shared); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("traces", Shared); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	t2.Abort()
}

func TestExclusiveBlocksAndTimesOut(t *testing.T) {
	m, _, _, _ := newEnv(t)
	m.LockTimeout = 50 * time.Millisecond
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("traces", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("traces", Shared); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("expected timeout, got %v", err)
	}
	t1.Abort()
	// After release the lock must be available.
	if err := t2.Lock("traces", Exclusive); err != nil {
		t.Errorf("lock after release: %v", err)
	}
	t2.Abort()
}

func TestLockHandoff(t *testing.T) {
	m, _, _, _ := newEnv(t)
	t1 := m.Begin()
	t1.Lock("t", Exclusive)
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		t2 := m.Begin()
		errCh <- t2.Lock("t", Exclusive)
		t2.Abort()
	}()
	time.Sleep(20 * time.Millisecond)
	t1.Commit() // releases the lock; waiter must wake
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Errorf("waiter should acquire after release: %v", err)
	}
}

func TestLockUpgrade(t *testing.T) {
	m, _, _, _ := newEnv(t)
	m.LockTimeout = 50 * time.Millisecond
	t1 := m.Begin()
	if err := t1.Lock("t", Shared); err != nil {
		t.Fatal(err)
	}
	if err := t1.Lock("t", Exclusive); err != nil {
		t.Fatalf("sole holder should upgrade: %v", err)
	}
	// Re-acquiring weaker/equal is a no-op.
	if err := t1.Lock("t", Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade blocked by another shared holder times out.
	t2 := m.Begin()
	if err := t2.Lock("u", Shared); err != nil {
		t.Fatal(err)
	}
	t3 := m.Begin()
	if err := t3.Lock("u", Shared); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("u", Exclusive); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("expected upgrade timeout, got %v", err)
	}
	t1.Abort()
	t2.Abort()
	t3.Abort()
}

func TestConcurrentIncrements(t *testing.T) {
	// Serialized read-modify-write under an exclusive lock must not lose
	// updates.
	m, f, _, _ := newEnv(t)
	m.LockTimeout = 30 * time.Second // commits fsync; contention can be slow
	id, _ := f.Allocate()
	f.WritePage(id, []byte{0})
	const workers, rounds = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				if err := tx.Lock("counter", Exclusive); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				data, err := tx.Read(id)
				if err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				data[0]++
				tx.Write(id, data)
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := f.ReadPage(id)
	if got[0] != workers*rounds {
		t.Errorf("lost updates: counter = %d, want %d", got[0], workers*rounds)
	}
}

func TestOversizeWriteRejected(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, make([]byte, f.PayloadSize()+1)); err == nil {
		t.Error("expected error for oversized payload")
	}
	tx.Abort()
}
