package txn

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rodentstore/internal/pager"
	"rodentstore/internal/wal"
)

func newEnv(t *testing.T) (*Manager, *pager.File, *wal.Log, string) {
	t.Helper()
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.rdnt")
	f, err := pager.Create(dbPath, 1024)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dbPath + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); f.Close() })
	return NewManager(f, l), f, l, dbPath
}

func TestCommitDurable(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, []byte("committed data")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:14]) != "committed data" {
		t.Errorf("got %q", got[:14])
	}
}

func TestAbortInvisible(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("original"))
	tx := m.Begin()
	tx.Write(id, []byte("scribble"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadPage(id)
	if string(got[:8]) != "original" {
		t.Error("aborted write leaked to disk")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("old"))
	tx := m.Begin()
	tx.Write(id, []byte("new"))
	got, err := tx.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "new" {
		t.Errorf("txn should see its own write, got %q", got[:3])
	}
	tx.Abort()
}

func TestTxnDoneErrors(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Write(id, []byte("x")); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Write after commit: %v", err)
	}
	if _, err := tx.Read(id); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Read after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double Commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Abort after commit: %v", err)
	}
	if err := tx.Lock("t", Shared); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Lock after commit: %v", err)
	}
}

func TestCrashRecovery(t *testing.T) {
	// Simulate a crash after the commit record is durable but before pages
	// are applied: write the WAL records directly, then recover.
	m, f, l, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("before"))

	l.Append(wal.Record{Type: wal.RecBegin, TxnID: 99})
	l.Append(wal.Record{Type: wal.RecPageImage, TxnID: 99, PageID: id, Payload: []byte("after crash image")})
	l.Append(wal.Record{Type: wal.RecCommit, TxnID: 99})
	l.Flush()

	n, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d txns, want 1", n)
	}
	got, _ := f.ReadPage(id)
	if string(got[:17]) != "after crash image" {
		t.Error("recovery did not apply committed image")
	}
	if l.Size() != 0 {
		t.Error("log not truncated after recovery")
	}
}

func TestUncommittedNotRecovered(t *testing.T) {
	m, f, l, _ := newEnv(t)
	id, _ := f.Allocate()
	f.WritePage(id, []byte("keep me"))
	l.Append(wal.Record{Type: wal.RecBegin, TxnID: 5})
	l.Append(wal.Record{Type: wal.RecPageImage, TxnID: 5, PageID: id, Payload: []byte("drop me")})
	l.Flush()

	if n, err := m.Recover(); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, _ := f.ReadPage(id)
	if string(got[:7]) != "keep me" {
		t.Error("uncommitted image applied")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m, _, _, _ := newEnv(t)
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("traces", Shared); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("traces", Shared); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	t2.Abort()
}

func TestExclusiveBlocksAndTimesOut(t *testing.T) {
	m, _, _, _ := newEnv(t)
	m.LockTimeout = 50 * time.Millisecond
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("traces", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("traces", Shared); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("expected timeout, got %v", err)
	}
	t1.Abort()
	// After release the lock must be available.
	if err := t2.Lock("traces", Exclusive); err != nil {
		t.Errorf("lock after release: %v", err)
	}
	t2.Abort()
}

func TestLockHandoff(t *testing.T) {
	m, _, _, _ := newEnv(t)
	t1 := m.Begin()
	t1.Lock("t", Exclusive)
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		t2 := m.Begin()
		errCh <- t2.Lock("t", Exclusive)
		t2.Abort()
	}()
	time.Sleep(20 * time.Millisecond)
	t1.Commit() // releases the lock; waiter must wake
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Errorf("waiter should acquire after release: %v", err)
	}
}

func TestLockUpgrade(t *testing.T) {
	m, _, _, _ := newEnv(t)
	m.LockTimeout = 50 * time.Millisecond
	t1 := m.Begin()
	if err := t1.Lock("t", Shared); err != nil {
		t.Fatal(err)
	}
	if err := t1.Lock("t", Exclusive); err != nil {
		t.Fatalf("sole holder should upgrade: %v", err)
	}
	// Re-acquiring weaker/equal is a no-op.
	if err := t1.Lock("t", Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade blocked by another shared holder times out.
	t2 := m.Begin()
	if err := t2.Lock("u", Shared); err != nil {
		t.Fatal(err)
	}
	t3 := m.Begin()
	if err := t3.Lock("u", Shared); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("u", Exclusive); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("expected upgrade timeout, got %v", err)
	}
	t1.Abort()
	t2.Abort()
	t3.Abort()
}

func TestConcurrentIncrements(t *testing.T) {
	// Serialized read-modify-write under an exclusive lock must not lose
	// updates.
	m, f, _, _ := newEnv(t)
	m.LockTimeout = 30 * time.Second // commits fsync; contention can be slow
	id, _ := f.Allocate()
	f.WritePage(id, []byte{0})
	const workers, rounds = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				if err := tx.Lock("counter", Exclusive); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				data, err := tx.Read(id)
				if err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				data[0]++
				tx.Write(id, data)
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := f.ReadPage(id)
	if got[0] != workers*rounds {
		t.Errorf("lost updates: counter = %d, want %d", got[0], workers*rounds)
	}
}

func TestOversizeWriteRejected(t *testing.T) {
	m, f, _, _ := newEnv(t)
	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, make([]byte, f.PayloadSize()+1)); err == nil {
		t.Error("expected error for oversized payload")
	}
	tx.Abort()
}
