// Package txn implements RodentStore's transaction and lock management —
// the facilities the paper argues (§1) should be built once and shared by
// every physical layout rather than re-implemented per storage engine.
//
// Transactions follow a no-steal / force discipline over full page images:
// writes are staged in a private write set, logged and fsync'd at commit,
// then applied through the pager. Recovery (wal.Log.Recover) makes the
// commit point atomic across crashes. Concurrency control is table-level
// strict two-phase locking with shared/exclusive modes and timeout-based
// deadlock resolution.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rodentstore/internal/pager"
	"rodentstore/internal/wal"
)

// ErrLockTimeout is returned when a lock cannot be acquired within the
// manager's timeout (the deadlock-resolution mechanism).
var ErrLockTimeout = errors.New("txn: lock wait timeout (possible deadlock)")

// ErrTxnDone is returned when operating on a committed or aborted txn.
var ErrTxnDone = errors.New("txn: transaction already finished")

// LockMode is shared (readers) or exclusive (writers).
type LockMode int

const (
	// Shared allows concurrent readers.
	Shared LockMode = iota
	// Exclusive allows one writer and no readers.
	Exclusive
)

// Manager coordinates transactions over one page file and one log.
type Manager struct {
	mu          sync.Mutex
	file        *pager.File
	log         *wal.Log
	nextTxn     uint64
	locks       *lockTable
	LockTimeout time.Duration
}

// NewManager creates a manager. Call Recover before the first transaction
// when opening an existing database.
func NewManager(file *pager.File, log *wal.Log) *Manager {
	return &Manager{
		file:        file,
		log:         log,
		nextTxn:     1,
		locks:       newLockTable(),
		LockTimeout: 2 * time.Second,
	}
}

// Recover replays committed transactions from the log into the page file
// and truncates the log. It must run before new transactions start.
func (m *Manager) Recover() (int, error) {
	n, err := m.log.Recover(func(id pager.PageID, img []byte) error {
		return m.file.WritePage(id, img)
	})
	if err != nil {
		return n, err
	}
	if n > 0 {
		if err := m.file.Sync(); err != nil {
			return n, err
		}
	}
	return n, m.log.Truncate()
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextTxn
	m.nextTxn++
	m.mu.Unlock()
	return &Txn{
		id:     id,
		mgr:    m,
		writes: make(map[pager.PageID][]byte),
		order:  nil,
		held:   make(map[string]LockMode),
	}
}

// Txn is one transaction. A Txn is not safe for concurrent use by multiple
// goroutines (like database/sql.Tx).
type Txn struct {
	id     uint64
	mgr    *Manager
	writes map[pager.PageID][]byte
	order  []pager.PageID // write order for deterministic replay
	held   map[string]LockMode
	done   bool
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Lock acquires a named lock (by convention, the table name) in the given
// mode, blocking up to the manager's timeout. Locks are held to commit or
// abort (strict 2PL). Re-acquiring a held lock upgrades Shared→Exclusive
// when possible.
func (t *Txn) Lock(name string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	if held, ok := t.held[name]; ok {
		if held == Exclusive || mode == Shared {
			return nil // already strong enough
		}
		if err := t.mgr.locks.upgrade(name, t.id, t.mgr.LockTimeout); err != nil {
			return err
		}
		t.held[name] = Exclusive
		return nil
	}
	if err := t.mgr.locks.acquire(name, t.id, mode, t.mgr.LockTimeout); err != nil {
		return err
	}
	t.held[name] = mode
	return nil
}

// Read returns the payload of a page as seen by this transaction: its own
// staged write if present, otherwise the current durable page.
func (t *Txn) Read(id pager.PageID) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if img, ok := t.writes[id]; ok {
		out := make([]byte, len(img))
		copy(out, img)
		return out, nil
	}
	return t.mgr.file.ReadPage(id)
}

// Write stages a full page image in the transaction's private write set.
func (t *Txn) Write(id pager.PageID, payload []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(payload) > t.mgr.file.PayloadSize() {
		return fmt.Errorf("txn: payload %d exceeds page payload %d", len(payload), t.mgr.file.PayloadSize())
	}
	img := make([]byte, len(payload))
	copy(img, payload)
	if _, seen := t.writes[id]; !seen {
		t.order = append(t.order, id)
	}
	t.writes[id] = img
	return nil
}

// Commit logs the write set, forces the log, applies the pages, and
// releases locks. After Commit returns nil the transaction is durable.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	defer t.releaseLocks()
	if len(t.writes) == 0 {
		return nil // read-only
	}
	if err := t.mgr.log.Append(wal.Record{Type: wal.RecBegin, TxnID: t.id}); err != nil {
		return err
	}
	for _, id := range t.order {
		if err := t.mgr.log.Append(wal.Record{
			Type: wal.RecPageImage, TxnID: t.id, PageID: id, Payload: t.writes[id],
		}); err != nil {
			return err
		}
	}
	if err := t.mgr.log.Append(wal.Record{Type: wal.RecCommit, TxnID: t.id}); err != nil {
		return err
	}
	if err := t.mgr.log.Flush(); err != nil {
		return err
	}
	// The commit point has passed: apply to the main file. Failures here
	// are repaired by Recover on next open.
	for _, id := range t.order {
		if err := t.mgr.file.WritePage(id, t.writes[id]); err != nil {
			return fmt.Errorf("txn: post-commit apply (recoverable on reopen): %w", err)
		}
	}
	if err := t.mgr.file.Sync(); err != nil {
		return err
	}
	// Checkpoint: everything applied and durable; the log can be truncated.
	return t.mgr.log.Truncate()
}

// Abort discards the write set and releases locks.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.releaseLocks()
	t.writes = nil
	return nil
}

func (t *Txn) releaseLocks() {
	names := make([]string, 0, len(t.held))
	for n := range t.held {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.mgr.locks.release(n, t.id)
	}
	t.held = make(map[string]LockMode)
}

// lockTable is a simple S/X lock table with condition-variable waiting.
type lockTable struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[string]*lockState
}

type lockState struct {
	holders map[uint64]LockMode // txn -> mode
}

func newLockTable() *lockTable {
	lt := &lockTable{locks: make(map[string]*lockState)}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

func (lt *lockTable) state(name string) *lockState {
	ls, ok := lt.locks[name]
	if !ok {
		ls = &lockState{holders: make(map[uint64]LockMode)}
		lt.locks[name] = ls
	}
	return ls
}

// compatible reports whether txn may take mode given current holders.
func (ls *lockState) compatible(txn uint64, mode LockMode) bool {
	for holder, held := range ls.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	return true
}

func (lt *lockTable) acquire(name string, txn uint64, mode LockMode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	lt.mu.Lock()
	defer lt.mu.Unlock()
	// Re-fetch the state after every wait: release deletes empty states, so
	// a captured pointer can go stale while a fresh state takes its place.
	for !lt.state(name).compatible(txn, mode) {
		if !lt.waitUntil(deadline) {
			return fmt.Errorf("%w: %s", ErrLockTimeout, name)
		}
	}
	lt.state(name).holders[txn] = mode
	return nil
}

func (lt *lockTable) upgrade(name string, txn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for !lt.state(name).compatible(txn, Exclusive) {
		if !lt.waitUntil(deadline) {
			return fmt.Errorf("%w: upgrade %s", ErrLockTimeout, name)
		}
	}
	lt.state(name).holders[txn] = Exclusive
	return nil
}

func (lt *lockTable) release(name string, txn uint64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if ls, ok := lt.locks[name]; ok {
		delete(ls.holders, txn)
		if len(ls.holders) == 0 {
			delete(lt.locks, name)
		}
	}
	lt.cond.Broadcast()
}

// waitUntil waits on the condition variable with a deadline, returning false
// when the deadline passed. Caller holds lt.mu.
func (lt *lockTable) waitUntil(deadline time.Time) bool {
	if time.Now().After(deadline) {
		return false
	}
	// cond.Wait has no timeout; poke waiters periodically.
	timer := time.AfterFunc(10*time.Millisecond, func() { lt.cond.Broadcast() })
	defer timer.Stop()
	lt.cond.Wait()
	return true
}
