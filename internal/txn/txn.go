// Package txn implements RodentStore's transaction and lock management —
// the facilities the paper argues (§1) should be built once and shared by
// every physical layout rather than re-implemented per storage engine.
//
// Transactions follow a no-steal / force discipline over full page images:
// writes are staged in a private write set, logged and fsync'd at commit,
// then applied through the pager. Recovery (wal.Log.Recover) makes the
// commit point atomic across crashes. Concurrency control is table-level
// strict two-phase locking with shared/exclusive modes and timeout-based
// deadlock resolution.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rodentstore/internal/pager"
	"rodentstore/internal/wal"
)

// ErrLockTimeout is returned when a lock cannot be acquired within the
// manager's timeout (the deadlock-resolution mechanism).
var ErrLockTimeout = errors.New("txn: lock wait timeout (possible deadlock)")

// ErrTxnDone is returned when operating on a committed or aborted txn.
var ErrTxnDone = errors.New("txn: transaction already finished")

// LockMode is shared (readers) or exclusive (writers).
type LockMode int

const (
	// Shared allows concurrent readers.
	Shared LockMode = iota
	// Exclusive allows one writer and no readers.
	Exclusive
)

// DefaultCheckpointBytes is the log size at which a commit schedules a
// checkpoint (page-file sync + log truncate) off its own durability path.
const DefaultCheckpointBytes = 4 << 20

// Manager coordinates transactions over one page file and one log.
type Manager struct {
	mu          sync.Mutex
	file        *pager.File
	log         *wal.Log
	nextTxn     uint64
	locks       *lockTable
	LockTimeout time.Duration

	// GroupCommit makes Commit's log durability wait on a shared fsync
	// ticket (wal.Log.Sync): one fsync absorbs every commit appended while
	// the previous fsync was in flight. When false each commit pays its own
	// fsync (wal.Log.Flush) — the pre-group-commit behavior, kept for the
	// ingest benchmark's ablation axis.
	GroupCommit bool

	// CheckpointBytes triggers a checkpoint when the log grows past it
	// (0 disables the size trigger). CheckpointEvery triggers one when that
	// much time has passed since the last checkpoint (0 disables the
	// interval trigger). Checkpoints run opportunistically after a commit
	// has already acknowledged, never on the commit's durability path.
	CheckpointBytes int64
	CheckpointEvery time.Duration

	// BeforeCheckpoint, when set, runs at the start of every checkpoint
	// (and after recovery replay), before the page file is synced and the
	// log truncated. The engine hooks the catalog's Flush here so buffered
	// catalog updates reach disk before the log records that could rebuild
	// them are discarded. Set it before the first transaction.
	BeforeCheckpoint func() error

	// AfterCheckpoint, when set, runs at the end of every successful
	// checkpoint, after the page file is synced and the log truncated. The
	// engine hooks deferred extent freeing here: an extent a catalog update
	// stopped referencing may only be reused once that update is durable —
	// otherwise a crash could leave the old catalog authoritative while WAL
	// replay rewrites the reallocated extent. Freeing after the checkpoint
	// makes the failure mode a page leak, never corruption.
	AfterCheckpoint func() error

	// OnRecoverCatalog, when set, receives each committed catalog delta
	// (wal.RecCatalog payload) during Recover, in log order. The engine
	// hooks the catalog's ApplyTailAppend here. Set it before Recover.
	OnRecoverCatalog func([]byte) error

	// ckptMu orders checkpoints against in-flight commits: a committing
	// transaction holds the read side from its first log append until its
	// pages are applied, so a checkpoint (write side) never truncates a
	// commit record whose pages have not reached the page file.
	ckptMu   sync.RWMutex
	lastCkpt time.Time // guarded by mu

	// barrier counts CheckpointBarrier runs — checkpoints taken because
	// extents are about to be freed. A bulk writer captures Barrier while
	// its pages cannot yet have been freed (it still holds the lock that
	// orders it against the freeing path) and passes it to LogAppliedSince,
	// which refuses to log images whose extents may have been freed (and
	// reallocated) in between — replaying those after a crash would clobber
	// the extents' new contents.
	barrier atomic.Uint64
}

// NewManager creates a manager. Call Recover before the first transaction
// when opening an existing database.
func NewManager(file *pager.File, log *wal.Log) *Manager {
	log.ReserveBuffer(file.PageSize() + 128)
	return &Manager{
		file:            file,
		log:             log,
		nextTxn:         1,
		locks:           newLockTable(),
		LockTimeout:     2 * time.Second,
		GroupCommit:     true,
		CheckpointBytes: DefaultCheckpointBytes,
		lastCkpt:        time.Now(),
	}
}

// Checkpoint forces a checkpoint now: every applied page is made durable,
// then the log is truncated. It waits for in-flight commits to finish
// applying their pages first.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	return m.checkpointLocked()
}

// Barrier returns the current free-barrier value, for LogAppliedSince.
func (m *Manager) Barrier() uint64 { return m.barrier.Load() }

// CheckpointBarrier is Checkpoint for callers about to free extents that
// may appear in not-yet-logged page images: it advances the free barrier
// so any LogAppliedSince holding an older barrier value falls back to a
// checkpoint instead of logging stale images.
func (m *Manager) CheckpointBarrier() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	m.barrier.Add(1)
	return m.checkpointLocked()
}

// checkpointLocked does the checkpoint work. Caller holds ckptMu (write).
func (m *Manager) checkpointLocked() error {
	if m.BeforeCheckpoint != nil {
		if err := m.BeforeCheckpoint(); err != nil {
			return err
		}
	}
	if err := m.file.Sync(); err != nil {
		return err
	}
	if err := m.log.Truncate(); err != nil {
		return err
	}
	m.mu.Lock()
	m.lastCkpt = time.Now()
	m.mu.Unlock()
	if m.AfterCheckpoint != nil {
		return m.AfterCheckpoint()
	}
	return nil
}

// PageImage pairs a page id with its payload, for LogApplied.
type PageImage struct {
	ID      pager.PageID
	Payload []byte
}

// LogApplied makes already-applied page writes durable: the images are
// appended to the log as one committed transaction and the log is synced
// (sharing the group-commit fsync by default). Bulk writers use it to move
// the fsync wait off their critical section — they write pages in place
// under their own higher-level lock, release it, then call LogApplied, so
// concurrent callers' fsyncs coalesce. Recovery re-applies the images,
// which is idempotent.
//
// catalogDelta, when non-nil, is logged alongside the images as a
// wal.RecCatalog record: recovery hands it to OnRecoverCatalog after
// re-applying the images, so metadata describing the pages (a catalog tail
// append) becomes redo-durable in the same fsync without rewriting the
// catalog itself.
//
// Callers that later rewrite or free those pages outside a transaction must
// CheckpointBarrier first, so a stale image cannot be replayed over the new
// content after a crash.
func (m *Manager) LogApplied(images []PageImage, catalogDelta []byte) error {
	return m.LogAppliedSince(m.barrier.Load(), images, catalogDelta)
}

// LogAppliedSince is LogApplied guarded by the free barrier: barrier is the
// Barrier() value the caller captured while it still held the lock that
// orders it against extent frees. If a CheckpointBarrier has run since,
// some of the images' extents may already be freed — and reallocated — so
// logging them could replay stale bytes over new content after a crash.
// In that case nothing is logged; a fresh checkpoint makes everything the
// caller applied durable instead (same guarantee, no redo records).
func (m *Manager) LogAppliedSince(barrier uint64, images []PageImage, catalogDelta []byte) error {
	if len(images) == 0 && catalogDelta == nil {
		return nil
	}
	m.mu.Lock()
	id := m.nextTxn
	m.nextTxn++
	m.mu.Unlock()
	m.ckptMu.RLock()
	if m.barrier.Load() != barrier {
		m.ckptMu.RUnlock()
		return m.Checkpoint()
	}
	err := func() error {
		if err := m.log.Append(wal.Record{Type: wal.RecBegin, TxnID: id}); err != nil {
			return err
		}
		for _, img := range images {
			if err := m.log.Append(wal.Record{
				Type: wal.RecPageImage, TxnID: id, PageID: img.ID, Payload: img.Payload,
			}); err != nil {
				return err
			}
		}
		if catalogDelta != nil {
			if err := m.log.Append(wal.Record{
				Type: wal.RecCatalog, TxnID: id, Payload: catalogDelta,
			}); err != nil {
				return err
			}
		}
		return m.log.Append(wal.Record{Type: wal.RecCommit, TxnID: id})
	}()
	m.ckptMu.RUnlock()
	if err != nil {
		return err
	}
	if m.GroupCommit {
		err = m.log.Sync()
	} else {
		err = m.log.Flush()
	}
	if err != nil {
		return err
	}
	return m.maybeCheckpoint()
}

// maybeCheckpoint runs a checkpoint if the size or interval policy asks for
// one and no other checkpoint or commit is in the way (contended attempts
// are skipped — the policy re-triggers on a later commit).
func (m *Manager) maybeCheckpoint() error {
	trigger := m.CheckpointBytes > 0 && m.log.Size() >= m.CheckpointBytes
	if !trigger && m.CheckpointEvery > 0 {
		m.mu.Lock()
		trigger = time.Since(m.lastCkpt) >= m.CheckpointEvery
		m.mu.Unlock()
	}
	if !trigger {
		return nil
	}
	if !m.ckptMu.TryLock() {
		return nil
	}
	defer m.ckptMu.Unlock()
	return m.checkpointLocked()
}

// Recover replays committed transactions from the log into the page file
// (catalog deltas go to OnRecoverCatalog) and truncates the log. It must
// run before new transactions start, with both hooks already set.
func (m *Manager) Recover() (int, error) {
	n, err := m.log.RecoverFull(func(id pager.PageID, img []byte) error {
		// RecoverPage, not WritePage: the stale header's allocation state
		// may not cover WAL-logged pages yet (the cursor and free list are
		// only durable as of the last checkpoint).
		return m.file.RecoverPage(id, img)
	}, m.OnRecoverCatalog)
	if err != nil {
		return n, err
	}
	if n > 0 {
		// Persist the replayed state — including catalog updates rebuilt
		// from deltas (BeforeCheckpoint flushes them) — before the log that
		// could rebuild it again is discarded.
		if m.BeforeCheckpoint != nil {
			if err := m.BeforeCheckpoint(); err != nil {
				return n, err
			}
		}
		if err := m.file.Sync(); err != nil {
			return n, err
		}
	}
	if err := m.log.Truncate(); err != nil {
		return n, err
	}
	m.mu.Lock()
	m.lastCkpt = time.Now()
	m.mu.Unlock()
	return n, nil
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextTxn
	m.nextTxn++
	m.mu.Unlock()
	return &Txn{
		id:     id,
		mgr:    m,
		writes: make(map[pager.PageID][]byte),
		order:  nil,
		held:   make(map[string]LockMode),
	}
}

// Txn is one transaction. A Txn is not safe for concurrent use by multiple
// goroutines (like database/sql.Tx).
type Txn struct {
	id     uint64
	mgr    *Manager
	writes map[pager.PageID][]byte
	order  []pager.PageID // write order for deterministic replay
	held   map[string]LockMode
	done   bool
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Lock acquires a named lock (by convention, the table name) in the given
// mode, blocking up to the manager's timeout. Locks are held to commit or
// abort (strict 2PL). Re-acquiring a held lock upgrades Shared→Exclusive
// when possible.
func (t *Txn) Lock(name string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	if held, ok := t.held[name]; ok {
		if held == Exclusive || mode == Shared {
			return nil // already strong enough
		}
		if err := t.mgr.locks.upgrade(name, t.id, t.mgr.LockTimeout); err != nil {
			return err
		}
		t.held[name] = Exclusive
		return nil
	}
	if err := t.mgr.locks.acquire(name, t.id, mode, t.mgr.LockTimeout); err != nil {
		return err
	}
	t.held[name] = mode
	return nil
}

// Read returns the payload of a page as seen by this transaction: its own
// staged write if present, otherwise the current durable page.
func (t *Txn) Read(id pager.PageID) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if img, ok := t.writes[id]; ok {
		out := make([]byte, len(img))
		copy(out, img)
		return out, nil
	}
	return t.mgr.file.ReadPage(id)
}

// Write stages a full page image in the transaction's private write set.
func (t *Txn) Write(id pager.PageID, payload []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(payload) > t.mgr.file.PayloadSize() {
		return fmt.Errorf("txn: payload %d exceeds page payload %d", len(payload), t.mgr.file.PayloadSize())
	}
	img := make([]byte, len(payload))
	copy(img, payload)
	if _, seen := t.writes[id]; !seen {
		t.order = append(t.order, id)
	}
	t.writes[id] = img
	return nil
}

// Commit logs the write set, waits for log durability (a shared group-commit
// fsync by default), applies the pages, and releases locks. After Commit
// returns nil the transaction is durable: its images are in the fsync'd log,
// and the applied pages are persisted by a later checkpoint (or replayed by
// Recover after a crash). Commit itself never syncs the page file or
// truncates the log — that is the Manager's checkpoint policy.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	defer t.releaseLocks()
	if len(t.writes) == 0 {
		return nil // read-only
	}
	m := t.mgr
	m.ckptMu.RLock()
	err := t.commitShielded()
	m.ckptMu.RUnlock()
	if err != nil {
		return err
	}
	return m.maybeCheckpoint()
}

// commitShielded logs, syncs and applies the write set. Caller holds the
// manager's ckptMu read side so a concurrent checkpoint cannot truncate this
// transaction's records before its pages are applied.
func (t *Txn) commitShielded() error {
	m := t.mgr
	if err := m.log.Append(wal.Record{Type: wal.RecBegin, TxnID: t.id}); err != nil {
		return err
	}
	for _, id := range t.order {
		if err := m.log.Append(wal.Record{
			Type: wal.RecPageImage, TxnID: t.id, PageID: id, Payload: t.writes[id],
		}); err != nil {
			return err
		}
	}
	if err := m.log.Append(wal.Record{Type: wal.RecCommit, TxnID: t.id}); err != nil {
		return err
	}
	if m.GroupCommit {
		if err := m.log.Sync(); err != nil {
			return err
		}
	} else if err := m.log.Flush(); err != nil {
		return err
	}
	// The commit point has passed: apply to the main file. Failures here
	// are repaired by Recover on next open.
	for _, id := range t.order {
		if err := m.file.WritePage(id, t.writes[id]); err != nil {
			return fmt.Errorf("txn: post-commit apply (recoverable on reopen): %w", err)
		}
	}
	return nil
}

// Abort discards the write set and releases locks.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.releaseLocks()
	t.writes = nil
	return nil
}

func (t *Txn) releaseLocks() {
	names := make([]string, 0, len(t.held))
	for n := range t.held {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.mgr.locks.release(n, t.id)
	}
	t.held = make(map[string]LockMode)
}

// lockTable is a simple S/X lock table with condition-variable waiting.
type lockTable struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[string]*lockState
}

type lockState struct {
	holders map[uint64]LockMode // txn -> mode
}

func newLockTable() *lockTable {
	lt := &lockTable{locks: make(map[string]*lockState)}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

func (lt *lockTable) state(name string) *lockState {
	ls, ok := lt.locks[name]
	if !ok {
		ls = &lockState{holders: make(map[uint64]LockMode)}
		lt.locks[name] = ls
	}
	return ls
}

// compatible reports whether txn may take mode given current holders.
func (ls *lockState) compatible(txn uint64, mode LockMode) bool {
	for holder, held := range ls.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	return true
}

func (lt *lockTable) acquire(name string, txn uint64, mode LockMode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	lt.mu.Lock()
	defer lt.mu.Unlock()
	// Re-fetch the state after every wait: release deletes empty states, so
	// a captured pointer can go stale while a fresh state takes its place.
	for !lt.state(name).compatible(txn, mode) {
		if !lt.waitUntil(deadline) {
			return fmt.Errorf("%w: %s", ErrLockTimeout, name)
		}
	}
	lt.state(name).holders[txn] = mode
	return nil
}

func (lt *lockTable) upgrade(name string, txn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for !lt.state(name).compatible(txn, Exclusive) {
		if !lt.waitUntil(deadline) {
			return fmt.Errorf("%w: upgrade %s", ErrLockTimeout, name)
		}
	}
	lt.state(name).holders[txn] = Exclusive
	return nil
}

func (lt *lockTable) release(name string, txn uint64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if ls, ok := lt.locks[name]; ok {
		delete(ls.holders, txn)
		if len(ls.holders) == 0 {
			delete(lt.locks, name)
		}
	}
	lt.cond.Broadcast()
}

// waitUntil waits on the condition variable with a deadline, returning false
// when the deadline passed. Caller holds lt.mu.
func (lt *lockTable) waitUntil(deadline time.Time) bool {
	if time.Now().After(deadline) {
		return false
	}
	// cond.Wait has no timeout; poke waiters periodically.
	timer := time.AfterFunc(10*time.Millisecond, func() { lt.cond.Broadcast() })
	defer timer.Stop()
	lt.cond.Wait()
	return true
}
