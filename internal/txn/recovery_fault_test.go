package txn

// Recovery-path tests driven by the fault-injecting VFS: each test builds a
// specific failure the design claims to survive — a torn WAL tail, a failed
// group-commit fsync, a power cut between a catalog delta and its
// checkpoint, a corrupt durable page — and verifies the recovery contract:
// every acknowledged commit survives, nothing unacknowledged is replayed.

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rodentstore/internal/pager"
	"rodentstore/internal/vfs"
	"rodentstore/internal/wal"
)

const (
	crashDB  = "crash.rdnt"
	crashWAL = "crash.rdnt.wal"
)

// newFaultEnv creates a manager over a fault file system. Handles are not
// registered for cleanup: crash tests abandon them, as a killed process
// would.
func newFaultEnv(t *testing.T, fs *vfs.Fault) (*Manager, *pager.File, *wal.Log) {
	t.Helper()
	f, err := pager.CreateAt(fs, crashDB, 1024)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenAt(fs, crashWAL)
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(f, l), f, l
}

// reopenFaultEnv reopens the store after a (simulated) crash.
func reopenFaultEnv(t *testing.T, fs *vfs.Fault) (*Manager, *pager.File, *wal.Log) {
	t.Helper()
	f, err := pager.OpenAt(fs, crashDB)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenAt(fs, crashWAL)
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(f, l), f, l
}

// TestRecoveryTornWALTail tears the WAL's file write mid-record: a synced
// commit followed by a second commit whose frames only partially reach the
// file. Recovery must replay the synced commit, ignore the torn tail, and
// Verify must classify the residue as a crash tail, not mid-log corruption.
func TestRecoveryTornWALTail(t *testing.T) {
	fs := vfs.NewFault(1)
	m, f, l := newFaultEnv(t, fs)

	p1, _ := f.Allocate()
	p2, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(p1, []byte("first txn")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Append a second transaction and tear its file write at the sector
	// boundary: the begin frame fits in the surviving prefix, the page image
	// is cut mid-body.
	if err := l.Append(wal.Record{Type: wal.RecBegin, TxnID: 99}); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 900)
	for i := range img {
		img[i] = byte(i)
	}
	if err := l.Append(wal.Record{Type: wal.RecPageImage, TxnID: 99, PageID: p2, Payload: img}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.Record{Type: wal.RecCommit, TxnID: 99}); err != nil {
		t.Fatal(err)
	}
	fs.Inject = func(op vfs.Op) vfs.Decision {
		if op.Kind == vfs.OpWrite && strings.HasSuffix(op.Path, ".wal") {
			return vfs.Tear
		}
		return vfs.OK
	}
	if err := l.Flush(); err == nil {
		t.Fatal("flush over a torn write reported success")
	}
	fs.Inject = nil

	// Power cut that persists the torn state.
	fs.Crash(vfs.CrashKeep)

	m2, f2, l2 := reopenFaultEnv(t, fs)
	rep, verr := l2.Verify()
	if verr != nil {
		t.Fatalf("torn tail misclassified as mid-log corruption: %v", verr)
	}
	if rep.TailBytes == 0 {
		t.Fatal("expected a non-empty crash tail after the torn write")
	}
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d txns, want only the synced one", n)
	}
	got, err := f2.ReadPage(p1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:9]) != "first txn" {
		t.Fatalf("synced commit lost: page reads %q", got[:9])
	}
	if _, err := f2.ReadPage(p2); err == nil {
		t.Fatal("torn, unsynced txn's page was replayed")
	}
}

// TestRecoveryGroupCommitFsyncFailure fails the WAL fsync under concurrent
// committers: every commit sharing the failed sync must surface
// wal.ErrSyncFailed (no acknowledgment on a retried fsync — the fsyncgate
// rule), the log must stay latched, and after a power cut the store must
// retain every previously acknowledged commit and nothing from the failed
// round.
func TestRecoveryGroupCommitFsyncFailure(t *testing.T) {
	fs := vfs.NewFault(2)
	m, f, _ := newFaultEnv(t, fs)

	p0, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(p0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var armed atomic.Bool
	fs.Inject = func(op vfs.Op) vfs.Decision {
		if armed.Load() && op.Kind == vfs.OpSync && strings.HasSuffix(op.Path, ".wal") {
			return vfs.Fail
		}
		return vfs.OK
	}
	armed.Store(true)

	const writers = 4
	pages := make([]pager.PageID, writers)
	for i := range pages {
		pages[i], _ = f.Allocate()
	}
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			if err := tx.Write(pages[i], []byte("lost")); err != nil {
				errs[i] = err
				return
			}
			errs[i] = tx.Commit()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var sf *wal.ErrSyncFailed
		if !errors.As(err, &sf) {
			t.Fatalf("writer %d: commit error %v is not ErrSyncFailed", i, err)
		}
	}
	// The latch holds: a later commit on the same log must fail without
	// another injected fault.
	armed.Store(false)
	late := m.Begin()
	if err := late.Write(p0, []byte("late")); err != nil {
		t.Fatal(err)
	}
	var sf *wal.ErrSyncFailed
	if err := late.Commit(); !errors.As(err, &sf) {
		t.Fatalf("post-failure commit error %v is not ErrSyncFailed (latch broken)", err)
	}

	// Power cut: un-synced data is gone. The acked commit must recover; the
	// failed round must not.
	fs.Crash(vfs.CrashDrop)
	m2, f2, _ := reopenFaultEnv(t, fs)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := f2.ReadPage(p0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "durable" {
		t.Fatalf("acked commit lost: page reads %q", got[:7])
	}
	for i, id := range pages {
		if payload, err := f2.ReadPage(id); err == nil && string(payload[:4]) == "lost" {
			t.Fatalf("writer %d: unacknowledged commit survived the crash", i)
		}
	}
}

// TestRecoveryCatalogDeltaBeforeCheckpoint cuts power between an
// acknowledged LogApplied (page images + catalog tail-append delta) and the
// checkpoint that would have persisted them: recovery must replay the pages
// and hand the delta to OnRecoverCatalog.
func TestRecoveryCatalogDeltaBeforeCheckpoint(t *testing.T) {
	fs := vfs.NewFault(3)
	m, f, _ := newFaultEnv(t, fs)

	id, _ := f.Allocate()
	payload := []byte("tail batch page")
	if err := f.WritePage(id, payload); err != nil {
		t.Fatal(err)
	}
	delta := []byte("catalog tail-append delta")
	if err := m.LogApplied([]PageImage{{ID: id, Payload: payload}}, delta); err != nil {
		t.Fatal(err)
	}

	// Acked, no checkpoint yet: the page-file write and any header update
	// vanish; only the WAL survives.
	fs.Crash(vfs.CrashDrop)

	m2, f2, _ := reopenFaultEnv(t, fs)
	var deltas [][]byte
	m2.OnRecoverCatalog = func(b []byte) error {
		deltas = append(deltas, append([]byte(nil), b...))
		return nil
	}
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d txns, want 1", n)
	}
	if len(deltas) != 1 || string(deltas[0]) != string(delta) {
		t.Fatalf("catalog delta not replayed: got %q", deltas)
	}
	got, err := f2.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:len(payload)]) != string(payload) {
		t.Fatalf("page not replayed: reads %q", got[:len(payload)])
	}
}

// TestRecoveryHealsCorruptPage corrupts a committed page's durable bytes:
// ReadPage must fail with a typed, page-addressed error, and recovery must
// heal the page from its WAL image.
func TestRecoveryHealsCorruptPage(t *testing.T) {
	fs := vfs.NewFault(4)
	m, f, _ := newFaultEnv(t, fs)

	id, _ := f.Allocate()
	tx := m.Begin()
	if err := tx.Write(id, []byte("precious data")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// At-rest corruption inside the page's payload (past the checksum).
	off := int64(id) * int64(f.PageSize())
	if n := fs.Corrupt(crashDB, off+8, 32); n != 32 {
		t.Fatalf("corrupted %d bytes, want 32", n)
	}
	_, err := f.ReadPage(id)
	var cp *pager.ErrCorruptPage
	if !errors.As(err, &cp) {
		t.Fatalf("read of corrupt page returned %v, want ErrCorruptPage", err)
	}
	if cp.Page != id {
		t.Fatalf("error names page %d, corrupted %d", cp.Page, id)
	}

	// Restart: recovery replays the commit's image over the damage.
	m2, f2, _ := reopenFaultEnv(t, fs)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := f2.ReadPage(id)
	if err != nil {
		t.Fatalf("page not healed: %v", err)
	}
	if string(got[:13]) != "precious data" {
		t.Fatalf("healed page reads %q", got[:13])
	}
}
