package lint_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"rodentstore/internal/lint"
	"rodentstore/internal/lint/linttest"
)

func fixture(name string) string { return filepath.Join("testdata", name) }

func TestLeaseLease(t *testing.T) {
	linttest.Run(t, lint.LeaseLease(), fixture("leaselease"))
}

func TestBatchLife(t *testing.T) {
	linttest.Run(t, lint.BatchLife(), fixture("batchlife"))
}

func TestLockOrder(t *testing.T) {
	dir := fixture("lockorder")
	path := linttest.FixturePath(dir)
	table := []lint.LockClass{
		{Path: path, Type: "Catalog", Field: "mu", Name: "catalog", Level: 10},
		{Path: path, Type: "Engine", Field: "mu", Name: "engine", Level: 20},
		{Path: path, Type: "MergeEngine", Field: "mergeMu", Name: "merge-registry", Level: 22},
		{Path: path, Type: "Merger", Field: "mu", Name: "merge-queue", Level: 24},
		{Path: path, Type: "Pager", Field: "stripes", Name: "pager-stripe", Level: 50},
	}
	linttest.Run(t, lint.NewLockOrder(table), dir)
}

func TestErrWrapped(t *testing.T) {
	linttest.Run(t, lint.ErrWrapped(), fixture("errwrapped"))
}

func TestNoWallClock(t *testing.T) {
	dir := fixture("nowallclock")
	linttest.Run(t, lint.NewNoWallClock([]string{linttest.FixturePath(dir)}), dir)
}

// TestRepoClean is the smoke test behind `go run ./cmd/rslint ./...`: the
// full production suite over every package of the module must report zero
// findings (suppressions via //lint:allow are allowed and counted).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out bytes.Buffer
	res, err := lint.Run([]string{"./..."}, lint.DefaultAnalyzers(), &out)
	if err != nil {
		t.Fatalf("rslint run: %v", err)
	}
	if res.Findings != 0 {
		t.Errorf("rslint found %d violation(s) in %d package(s):\n%s", res.Findings, res.Packages, out.String())
	}
	if res.Packages < 10 {
		t.Errorf("rslint only saw %d packages; pattern expansion is broken", res.Packages)
	}
	t.Logf("rslint: %d packages, %d suppressed finding(s)", res.Packages, res.Suppressed)
}
