package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (or a synthetic path for fixture dirs)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using only
// the standard library: imports resolve through the source importer, which
// compiles dependency packages (module-local and stdlib alike) from source.
// The importer is shared across loads so the stdlib closure is type-checked
// once per process.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader creates a loader with a fresh file set and import cache.
//
// The source importer resolves module-local import paths by shelling out to
// `go list`, which resolves relative to the process working directory — the
// loader therefore requires the working directory to be inside the target
// module (anywhere inside it; tests running in their package directory
// qualify).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir parses the non-test Go files of dir (honoring build constraints
// for the current platform) and type-checks them as importPath.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFilesIn lists dir's non-test Go files that match the current build
// context (so e.g. prealloc_linux.go and prealloc_other.go never collide).
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod, returning the module
// root directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Target is one directory to analyze with its import path.
type Target struct {
	Dir  string
	Path string
}

// ExpandPatterns resolves command-line patterns to package directories.
// Supported forms are "./..." (every package under the module root),
// "./dir/..." (every package under dir) and "./dir" (one package); all are
// interpreted relative to the module enclosing the working directory, so
// `rslint ./...` means the same thing from any directory inside the module.
func ExpandPatterns(patterns []string) ([]Target, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modPath, err := ModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var targets []Target
	add := func(dir string) error {
		names, err := goFilesIn(dir)
		if err != nil || len(names) == 0 {
			return nil // not a package; recursive patterns skip silently
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			targets = append(targets, Target{Dir: dir, Path: path})
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "./..." || pat == "..." {
			pat = "."
			recursive = true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat = rest
			recursive = true
		}
		base := pat
		if pat == "." {
			base = root
		} else if !filepath.IsAbs(pat) {
			base = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata holds analyzer fixtures (deliberately violating the
			// invariants), and dot/underscore dirs are ignored by the go tool.
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	return targets, nil
}
