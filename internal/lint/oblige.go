package lint

// The obligation engine: a flow-sensitive, function-local analysis shared by
// the leaselease and batchlife analyzers. An "obligation" is a value
// returned by an acquiring call (a buffer lease, a page-lease release func,
// a pooled batch) that must be discharged on every path out of the function
// — by releasing it, recycling it, returning it, or transferring ownership
// (passing it to a call, storing it in a field/struct/channel, capturing it
// in a closure).
//
// The walk is a three-state abstract interpretation over the function body:
//
//	notYet  — paths that have not executed the acquiring call
//	obliged — acquired and not yet discharged
//	done    — discharged, transferred, or exempt (the acquire failed)
//
// Statements propagate sets of these states; branches fork and re-merge by
// union, loops are walked once with a zero-iteration alternative, and the
// idiomatic error guard (`if err != nil { return ... }` on the acquiring
// call's error result) exempts the failure branch. A return (or the end of
// the function) reached with `obliged` in its state set is a leak on some
// path and is reported at that return. The analysis is deliberately lenient
// where it cannot be precise — a use inside a closure, a reassignment, or a
// transfer into any call discharges the obligation — so that every report
// is worth reading; the dynamic checkers (-race, the torture harness) stay
// the backstop for what escapes it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obligSpec configures one resource kind for the engine.
type obligSpec struct {
	// matchAcquire inspects a call; when it acquires a resource it returns
	// the index of the result holding the obligation, the index of the
	// error result (-1 if none), and a short description of the resource.
	matchAcquire func(p *Pass, call *ast.CallExpr) (obligIdx, errIdx int, what string, ok bool)
	// releaseMethods are methods on the obligation value whose call (or use
	// as a method value) discharges it, e.g. Release. Calling the
	// obligation itself, when it is a func value, always discharges.
	releaseMethods map[string]bool
}

// state bitmasks for the walk.
const (
	stNotYet = 1 << iota
	stObliged
	stDone
)

// exits is the outcome of walking a statement list: the states that fall
// off its end, reach a break, or reach a continue.
type exits struct {
	fall, brk, cont int
}

// oblig is one tracked acquisition site.
type oblig struct {
	assign *ast.AssignStmt
	obj    types.Object // the obligation variable
	errObj types.Object // the acquire's error result variable (nil if none)
	what   string
}

// checkObligations runs the engine over every function (and function
// literal) of the pass's package.
func checkObligations(p *Pass, spec *obligSpec) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			for _, o := range findAcquires(p, spec, body) {
				w := &obligWalker{p: p, spec: spec, o: o}
				e := w.stmts(body.List, stNotYet)
				w.atExit(e.fall|e.brk|e.cont, body.Rbrace)
			}
			return true // descend: nested FuncLits get their own walk
		})
	}
}

// findAcquires locates acquisition assignments directly inside body,
// excluding nested function literals (they are walked separately).
func findAcquires(p *Pass, spec *obligSpec, body *ast.BlockStmt) []oblig {
	var out []oblig
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obligIdx, errIdx, what, ok := spec.matchAcquire(p, call)
		if !ok || obligIdx >= len(as.Lhs) {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[obligIdx]).(*ast.Ident)
		if !ok {
			// Stored straight into a field/index: ownership transferred to
			// the containing object at the acquisition itself.
			return true
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "%s is discarded: the result must be released or transferred", what)
			return true
		}
		obj := p.ObjectOf(id)
		if obj == nil {
			return true
		}
		var errObj types.Object
		if errIdx >= 0 && errIdx < len(as.Lhs) {
			if eid, ok := ast.Unparen(as.Lhs[errIdx]).(*ast.Ident); ok && eid.Name != "_" {
				errObj = p.ObjectOf(eid)
			}
		}
		out = append(out, oblig{assign: as, obj: obj, errObj: errObj, what: what})
		return true
	})
	return out
}

// obligWalker tracks one obligation through one function body.
type obligWalker struct {
	p        *Pass
	spec     *obligSpec
	o        oblig
	reported bool
}

// atExit reports a leak if any path reaches an exit still obliged.
func (w *obligWalker) atExit(states int, pos token.Pos) {
	if states&stObliged != 0 && !w.reported {
		w.reported = true
		w.p.Reportf(w.o.assign.Pos(), "%s may not be released on every path (function can exit at line %d while still holding it)",
			w.o.what, w.p.Fset.Position(pos).Line)
	}
}

// discharge maps obliged paths to done.
func discharge(s int) int {
	if s&stObliged != 0 {
		return (s &^ stObliged) | stDone
	}
	return s
}

// step processes the non-branching effects of expressions within a
// statement: transfer discharges the obligation.
func (w *obligWalker) step(s int, nodes ...ast.Node) int {
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if w.transfers(n) {
			s = discharge(s)
		}
	}
	return s
}

// transfers reports whether n contains a value-position use of the
// obligation: the bare identifier (passed, assigned, returned, sent,
// composite-literal'd, captured by a closure, address-taken) or a release
// method (called or taken as a method value). Reads *through* the value —
// field selection, indexing, non-release method calls — do not transfer.
func (w *obligWalker) transfers(n ast.Node) bool {
	found := false
	var visit func(ast.Node) bool
	visit = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if w.p.ObjectOf(e) == w.o.obj {
				found = true
			}
			return false
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.p.ObjectOf(id) == w.o.obj {
				// v.Release (method value or call base) discharges; v.field
				// or v.Other() is a read, not a transfer.
				if w.spec.releaseMethods[e.Sel.Name] {
					found = true
				}
				return false
			}
			return true
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.p.ObjectOf(id) == w.o.obj {
				ast.Inspect(e.Index, visit)
				return false
			}
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && w.p.ObjectOf(id) == w.o.obj {
				found = true // calling the release func itself
				return false
			}
			return true
		case *ast.FuncLit:
			// Captured by a closure: ownership is out of this function's
			// hands (the closure may release it on any schedule).
			ast.Inspect(e.Body, visit)
			return false
		}
		return true
	}
	ast.Inspect(n, visit)
	return found
}

// reassigned reports whether stmt reassigns the obligation variable (which
// kills the old tracking; an undischarged overwrite inside a loop is caught
// at the acquisition statement itself).
func (w *obligWalker) reassigned(as *ast.AssignStmt) bool {
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && w.p.ObjectOf(id) == w.o.obj {
			return true
		}
	}
	return false
}

// errGuard classifies an if condition against the acquisition's error var:
// +1 for `err != nil` (then-branch is the failure path), -1 for `err == nil`
// (then-branch is the success path), 0 otherwise.
func (w *obligWalker) errGuard(cond ast.Expr) int {
	if w.o.errObj == nil {
		return 0
	}
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && w.p.ObjectOf(id) == w.o.errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (matches(be.X) && isNil(be.Y)) || (matches(be.Y) && isNil(be.X)) {
		if be.Op == token.NEQ {
			return 1
		}
		return -1
	}
	return 0
}

// stmts walks a statement list with an incoming state set.
func (w *obligWalker) stmts(list []ast.Stmt, in int) exits {
	out := exits{}
	s := in
	for _, st := range list {
		if s == 0 {
			break // no path reaches here
		}
		s = w.stmt(st, s, &out)
	}
	out.fall |= s
	return out
}

// stmt processes one statement, returning the fallthrough state set and
// accumulating break/continue/return exits into out.
func (w *obligWalker) stmt(st ast.Stmt, s int, out *exits) int {
	switch st := st.(type) {
	case *ast.AssignStmt:
		if st == w.o.assign {
			// The acquisition: if a previous loop iteration's obligation is
			// still live here, it is overwritten without release.
			if s&stObliged != 0 && !w.reported {
				w.reported = true
				w.p.Reportf(st.Pos(), "%s may be reacquired while a previous acquisition is unreleased", w.o.what)
			}
			return stObliged
		}
		s = w.step(s, nodesOf(st.Rhs)...)
		if w.reassigned(st) {
			s = discharge(s)
		}
		return s
	case *ast.ExprStmt:
		return w.step(s, st.X)
	case *ast.SendStmt:
		return w.step(s, st.Chan, st.Value)
	case *ast.IncDecStmt:
		return w.step(s, st.X)
	case *ast.DeclStmt:
		return w.step(s, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// defer v.Release() / go consume(v): the discharge is scheduled;
		// every later path is covered.
		return w.step(s, st)
	case *ast.ReturnStmt:
		if w.transfers(st) {
			return 0
		}
		w.atExit(s, st.Pos())
		return 0
	case *ast.IfStmt:
		if st.Init != nil {
			s = w.stmt(st.Init, s, out)
		}
		s = w.step(s, st.Cond)
		thenIn, skipIn := s, s
		switch w.errGuard(st.Cond) {
		case 1: // if err != nil: the acquire failed on the then-branch
			thenIn = discharge(s)
		case -1: // if err == nil: the acquire failed past this statement
			skipIn = discharge(s)
		}
		te := w.stmts(st.Body.List, thenIn)
		out.brk |= te.brk
		out.cont |= te.cont
		if st.Else != nil {
			ee := exits{}
			fall := w.stmt(st.Else, skipIn, &ee)
			out.brk |= ee.brk
			out.cont |= ee.cont
			return te.fall | fall | ee.fall
		}
		return te.fall | skipIn
	case *ast.BlockStmt:
		e := w.stmts(st.List, s)
		out.brk |= e.brk
		out.cont |= e.cont
		return e.fall
	case *ast.ForStmt:
		if st.Init != nil {
			s = w.stmt(st.Init, s, out)
		}
		s = w.step(s, st.Cond)
		e := w.stmts(st.Body.List, s)
		if st.Post != nil {
			inner := exits{}
			e.fall = w.stmt(st.Post, e.fall, &inner)
		}
		after := e.fall | e.brk | e.cont
		if st.Cond != nil {
			after |= s // zero iterations
		} else if e.brk == 0 && after == 0 {
			return 0 // for{} with no break: no fallthrough
		} else if st.Cond == nil {
			after = e.brk // for{}: only break exits
		}
		return after
	case *ast.RangeStmt:
		s = w.step(s, st.X)
		e := w.stmts(st.Body.List, s)
		return s | e.fall | e.brk | e.cont // zero iterations possible
	case *ast.SwitchStmt:
		if st.Init != nil {
			s = w.stmt(st.Init, s, out)
		}
		s = w.step(s, st.Tag)
		return w.clauses(st.Body, s, out, true)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s = w.stmt(st.Init, s, out)
		}
		return w.clauses(st.Body, s, out, true)
	case *ast.SelectStmt:
		return w.clauses(st.Body, s, out, false)
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			out.brk |= s
			return 0
		case token.CONTINUE:
			out.cont |= s
			return 0
		}
		return s // goto/fallthrough: lenient
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, s, out)
	default:
		return s
	}
}

// clauses walks switch/select case bodies; break inside a case falls out of
// the statement. withImplicitSkip adds the no-case-matched path (a switch
// without a default).
func (w *obligWalker) clauses(body *ast.BlockStmt, s int, out *exits, withImplicitSkip bool) int {
	fall := 0
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			s = w.step(s, nodesOf(cc.List)...)
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				inner := exits{}
				w.stmt(cc.Comm, s, &inner)
			}
			if cc.Comm == nil {
				hasDefault = true
			}
			stmts = cc.Body
		}
		e := w.stmts(stmts, s)
		fall |= e.fall | e.brk // break exits the switch/select
		out.cont |= e.cont
	}
	if withImplicitSkip && !hasDefault {
		fall |= s
	}
	return fall
}

// nodesOf adapts an expression slice to ast.Node variadics.
func nodesOf[T ast.Node](list []T) []ast.Node {
	out := make([]ast.Node, len(list))
	for i, e := range list {
		out[i] = e
	}
	return out
}
