package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Fully qualified names of the acquiring calls leaselease tracks. Matching is
// by name rather than object identity because the source importer
// type-checks its own instance of each dependency package.
const (
	poolLeaseFunc = "(*rodentstore/internal/buffer.Pool).Lease"
	leasePageName = "LeasePage"
	leaseRunName  = "LeaseRun"
)

// LeaseLease builds the leaselease analyzer: every buffer lease and segment
// page lease must be released on all paths, including error returns.
//
// Two acquisition shapes are recognized:
//
//   - l, err := pool.Lease(id): the obligation is the Lease value; it is
//     discharged by l.Release(), defer l.Release(), returning l (ownership
//     transfer), or passing l to any call.
//   - data, release, err := x.LeasePage(id) (any method named LeasePage whose
//     results include a func() error): the obligation is the release func;
//     calling it, deferring it, or returning it discharges.
//   - rf, release, err := pf.LeaseRun() (any method named LeaseRun whose
//     results include a func() error): the prefetcher's run-buffer handoff;
//     same release-func obligation as LeasePage.
func LeaseLease() *Analyzer {
	a := &Analyzer{
		Name: "leaselease",
		Doc:  "buffer/page leases must be released on every path, including error returns",
	}
	spec := &obligSpec{
		matchAcquire:   matchLeaseAcquire,
		releaseMethods: map[string]bool{"Release": true},
	}
	a.Run = func(pass *Pass) error {
		checkObligations(pass, spec)
		return nil
	}
	return a
}

func matchLeaseAcquire(p *Pass, call *ast.CallExpr) (obligIdx, errIdx int, what string, ok bool) {
	fn := p.CalleeFunc(call)
	if fn == nil {
		return 0, 0, "", false
	}
	if fn.FullName() == poolLeaseFunc {
		return 0, 1, "buffer lease", true
	}
	if fn.Name() != leasePageName && fn.Name() != leaseRunName {
		return 0, 0, "", false
	}
	// Any LeasePage or LeaseRun implementation or interface method qualifies
	// when its results include a release func() error — this covers
	// pager-backed leasers, the segment.PageLeaser interface, and the scan
	// prefetcher's run-buffer handoff alike.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, 0, "", false
	}
	res := sig.Results()
	relIdx := -1
	errAt := -1
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if isReleaseFunc(t) {
			relIdx = i
		}
		if isErrorType(t) {
			errAt = i
		}
	}
	if relIdx < 0 {
		return 0, 0, "", false
	}
	what = "page lease (release func)"
	if fn.Name() == leaseRunName {
		what = "run lease (release func)"
	}
	return relIdx, errAt, what, true
}

// isReleaseFunc reports whether t is func() error.
func isReleaseFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return isErrorType(sig.Results().At(0).Type())
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// typeFullName renders a (possibly pointer) named type as pkgpath.Name,
// shared helper for name-based matching across analyzers.
func typeFullName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// pathHasSuffix matches an import path against a configured one, tolerating
// fixture packages loaded under synthetic paths (fixture path "x/internal/vec"
// matches configured "rodentstore/internal/vec" by suffix after the module
// element).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
