package lint

import (
	"go/ast"
	"go/types"
)

// LockClass identifies one mutex in the engine's documented lock hierarchy.
// Levels increase in the direction locks may be acquired: a goroutine
// holding level N may only acquire levels > N.
type LockClass struct {
	Path  string // import path of the defining package
	Type  string // named type holding the mutex field
	Field string // the mutex (or mutex-array) field name
	Name  string // human-readable class name for diagnostics
	Level int
}

// DefaultLockOrder is the machine-readable form of the hierarchy documented
// in DESIGN.md: catalog → table engine → merge registry → merge queue →
// free queue → buffer shard → pager. Edit this table and DESIGN.md
// together.
//
// The three compaction-worker classes sit between the engine's compile
// cache and the buffer/pager layers: the merge registry (Engine.mergeMu)
// publishes the pool, the merge queue (merger.mu) hands tables to workers,
// and the free queue (Engine.freeMu) stages superseded run extents for the
// next checkpoint. None of the three may be held while acquiring the other
// two out of order, and all must be released before descending into the
// pager.
var DefaultLockOrder = []LockClass{
	{Path: "rodentstore/internal/catalog", Type: "Catalog", Field: "mu", Name: "catalog", Level: 10},
	{Path: "rodentstore/internal/table", Type: "Engine", Field: "mu", Name: "table-engine", Level: 20},
	{Path: "rodentstore/internal/table", Type: "Engine", Field: "mergeMu", Name: "merge-registry", Level: 22},
	{Path: "rodentstore/internal/table", Type: "merger", Field: "mu", Name: "merge-queue", Level: 24},
	{Path: "rodentstore/internal/table", Type: "Engine", Field: "freeMu", Name: "free-queue", Level: 26},
	{Path: "rodentstore/internal/buffer", Type: "shard", Field: "mu", Name: "buffer-shard", Level: 30},
	{Path: "rodentstore/internal/pager", Type: "File", Field: "mu", Name: "pager-meta", Level: 40},
	{Path: "rodentstore/internal/pager", Type: "File", Field: "pageLocks", Name: "pager-stripe", Level: 50},
}

// NewLockOrder builds the lockorder analyzer over a lock-class table. It
// performs a function-local walk tracking which classes are held: Lock/RLock
// on a classed mutex while a higher- or equal-level class is held is an
// out-of-order acquisition; acquiring a class already held is flagged as
// re-entrant (Go mutexes self-deadlock). Unlock/RUnlock releases; deferred
// unlocks are treated as held-to-exit, which is exact for the idiomatic
// lock-defer-unlock pattern.
//
// Classed mutexes are matched both as direct selectors (c.mu.Lock()) and
// through one level of local aliasing (lk := &p.pageLocks[i]; lk.Lock()),
// which is how the pager's stripe locks are used.
func NewLockOrder(table []LockClass) *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "lock acquisitions must follow the documented hierarchy and never re-enter",
	}
	a.Run = func(pass *Pass) error {
		lo := &lockOrder{p: pass, table: table}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body != nil {
					lo.walkFunc(body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

type lockOrder struct {
	p     *Pass
	table []LockClass
}

// held is the per-path lock state: acquisition counts per class index, plus
// the classes of deferred unlocks (which stay held to function exit).
type held struct {
	count []int
}

func (h *held) clone() *held {
	c := make([]int, len(h.count))
	copy(c, h.count)
	return &held{count: c}
}

func (h *held) maxLevel(table []LockClass) (int, string) {
	lvl, name := -1, ""
	for i, n := range h.count {
		if n > 0 && table[i].Level > lvl {
			lvl, name = table[i].Level, table[i].Name
		}
	}
	return lvl, name
}

// walkFunc analyzes one function body with an empty initial lock set.
// Nested function literals are handled by the outer Inspect with their own
// fresh state (a closure does not inherit its creator's locks at run time).
func (lo *lockOrder) walkFunc(body *ast.BlockStmt) {
	st := &held{count: make([]int, len(lo.table))}
	// aliases maps a local variable object to the lock class it was bound
	// to via lk := &x.fld or lk := &x.fld[i].
	aliases := make(map[types.Object]int)
	lo.walkStmts(body.List, st, aliases)
}

// walkStmts processes statements linearly; branches are walked with cloned
// state and not re-merged (each branch is checked independently, which is
// sound for ordering violations and avoids path explosion).
func (lo *lockOrder) walkStmts(list []ast.Stmt, st *held, aliases map[types.Object]int) {
	for _, s := range list {
		lo.walkStmt(s, st, aliases)
	}
}

func (lo *lockOrder) walkStmt(s ast.Stmt, st *held, aliases map[types.Object]int) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		lo.recordAliases(s, aliases)
		for _, e := range s.Rhs {
			lo.walkExprLocks(e, st, aliases, false)
		}
	case *ast.ExprStmt:
		lo.walkExprLocks(s.X, st, aliases, false)
	case *ast.DeferStmt:
		lo.walkExprLocks(s.Call, st, aliases, true)
	case *ast.GoStmt:
		// The spawned goroutine runs with its own (empty) lock set; its
		// literal body is walked by the outer Inspect.
	case *ast.IfStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, st, aliases)
		}
		lo.walkExprLocks(s.Cond, st, aliases, false)
		lo.walkStmts(s.Body.List, st.clone(), aliases)
		if s.Else != nil {
			lo.walkStmt(s.Else, st.clone(), aliases)
		}
	case *ast.BlockStmt:
		lo.walkStmts(s.List, st, aliases)
	case *ast.ForStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, st, aliases)
		}
		lo.walkStmts(s.Body.List, st.clone(), aliases)
	case *ast.RangeStmt:
		lo.walkStmts(s.Body.List, st.clone(), aliases)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, st, aliases)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lo.walkStmts(cc.Body, st.clone(), aliases)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lo.walkStmts(cc.Body, st.clone(), aliases)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lo.walkStmts(cc.Body, st.clone(), aliases)
			}
		}
	case *ast.LabeledStmt:
		lo.walkStmt(s.Stmt, st, aliases)
	case *ast.ReturnStmt:
		// Deferred unlocks fire here; nothing to check.
	}
}

// recordAliases tracks lk := &x.fld / lk := &x.fld[i] bindings to classed
// mutex fields.
func (lo *lockOrder) recordAliases(as *ast.AssignStmt, aliases map[types.Object]int) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := lo.p.ObjectOf(id)
		if obj == nil {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		if un, ok := rhs.(*ast.UnaryExpr); ok {
			rhs = ast.Unparen(un.X)
		}
		if ix, ok := rhs.(*ast.IndexExpr); ok {
			rhs = ast.Unparen(ix.X)
		}
		sel, ok := rhs.(*ast.SelectorExpr)
		if !ok {
			delete(aliases, obj) // reassigned to something unclassed
			continue
		}
		if ci, ok := lo.classOfSelector(sel); ok {
			aliases[obj] = ci
		} else {
			delete(aliases, obj)
		}
	}
}

// walkExprLocks finds Lock/RLock/Unlock/RUnlock calls in an expression and
// updates state. deferred marks calls inside a defer: unlocks are ignored
// (they hold the lock to exit) and locks are still checked (defer m.Lock()
// would be a bug anyway, but ordering still applies at exit time — rare
// enough to treat like an immediate acquisition).
func (lo *lockOrder) walkExprLocks(e ast.Expr, st *held, aliases map[types.Object]int, deferred bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures run on their own schedule
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := sel.Sel.Name
		isLock := op == "Lock" || op == "RLock"
		isUnlock := op == "Unlock" || op == "RUnlock"
		if !isLock && !isUnlock {
			return true
		}
		ci, ok := lo.classOfMutexExpr(sel.X, aliases)
		if !ok {
			return true
		}
		switch {
		case isLock:
			cls := lo.table[ci]
			if st.count[ci] > 0 {
				lo.p.Reportf(call.Pos(), "re-entrant acquisition of %s lock (already held on this path)", cls.Name)
			} else if lvl, holding := st.maxLevel(lo.table); lvl >= cls.Level {
				lo.p.Reportf(call.Pos(), "lock order violation: acquiring %s (level %d) while holding %s (level %d); the hierarchy is catalog → table engine → buffer shard → pager",
					cls.Name, cls.Level, holding, lvl)
			}
			st.count[ci]++
		case isUnlock && !deferred:
			if st.count[ci] > 0 {
				st.count[ci]--
			}
		}
		return true
	})
}

// classOfMutexExpr resolves the receiver expression of a Lock/Unlock call to
// a lock class: either a selector on a classed field (x.mu, x.pageLocks[i])
// or a local alias bound earlier.
func (lo *lockOrder) classOfMutexExpr(x ast.Expr, aliases map[types.Object]int) (int, bool) {
	x = ast.Unparen(x)
	if ix, ok := x.(*ast.IndexExpr); ok {
		x = ast.Unparen(ix.X)
	}
	if id, ok := x.(*ast.Ident); ok {
		if ci, ok := aliases[lo.p.ObjectOf(id)]; ok {
			return ci, true
		}
		return 0, false
	}
	if sel, ok := x.(*ast.SelectorExpr); ok {
		return lo.classOfSelector(sel)
	}
	return 0, false
}

// classOfSelector matches x.field against the lock table by the named type
// of x (through pointers) and the field name.
func (lo *lockOrder) classOfSelector(sel *ast.SelectorExpr) (int, bool) {
	t := lo.p.TypeOf(sel.X)
	if t == nil {
		return 0, false
	}
	full := typeFullName(t)
	if full == "" {
		return 0, false
	}
	for i, cls := range lo.table {
		if sel.Sel.Name == cls.Field && pathHasSuffix(full, cls.Path+"."+cls.Type) {
			return i, true
		}
	}
	return 0, false
}
