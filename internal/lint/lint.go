// Package lint is RodentStore's in-repo static-analysis suite: a small
// go/analysis-style framework plus repo-specific analyzers that mechanically
// enforce the engine's concurrency and resource invariants — buffer-lease
// release, pooled-batch lifetimes, the documented lock hierarchy, typed-error
// wrapping, and wall-clock-free replay paths.
//
// The framework is deliberately self-contained (go/ast + go/types + the
// standard library's source importer) so the suite builds and runs with no
// network and no module downloads: the container bakes in the toolchain and
// nothing else, and CI must be able to run `go run ./cmd/rslint ./...`
// offline. The API mirrors golang.org/x/tools/go/analysis closely enough
// that the analyzers could be ported to a real multichecker if the
// dependency ever lands.
//
// # Suppression
//
// An intentional exception is annotated at the reported line (or the line
// directly above it) with:
//
//	//lint:allow <analyzer> <reason>
//
// The driver honors the annotation — the finding is counted as suppressed,
// not reported — and requires a non-empty reason so exceptions stay
// self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings matched by a //lint:allow annotation; the
	// driver counts them instead of failing the build.
	Suppressed bool
	// AllowReason is the annotation's reason when Suppressed.
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e (nil if untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object (use or def).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// CalleeFunc resolves a call expression to the called *types.Func (method or
// function), nil for calls through non-named function values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.ObjectOf(id).(*types.Func)
	return fn
}

// allowIndex maps "file:line" to the set of analyzer names allowed there.
type allowEntry struct {
	analyzers map[string]string // analyzer -> reason
}

type allowIndex map[string]allowEntry

const allowPrefix = "lint:allow"

// buildAllowIndex scans a file's comments for //lint:allow annotations. An
// annotation covers its own line and the line directly below it (so it can
// sit either at the end of the offending line or on its own line above).
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// An allow with no reason is ignored: exceptions must
					// say why, or they fail the build like any finding.
					continue
				}
				name, reason := fields[0], strings.Join(fields[1:], " ")
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					e, ok := idx[key]
					if !ok {
						e = allowEntry{analyzers: make(map[string]string)}
						idx[key] = e
					}
					e.analyzers[name] = reason
				}
			}
		}
	}
	return idx
}

// applyAllows marks diagnostics matched by an annotation as suppressed.
func applyAllows(idx allowIndex, diags []Diagnostic) {
	for i := range diags {
		key := fmt.Sprintf("%s:%d", diags[i].Pos.Filename, diags[i].Pos.Line)
		if e, ok := idx[key]; ok {
			if reason, ok := e.analyzers[diags[i].Analyzer]; ok {
				diags[i].Suppressed = true
				diags[i].AllowReason = reason
			}
		}
	}
}

// RunAnalyzers applies each analyzer to a loaded package and returns its
// diagnostics, allow-suppression already applied, in stable position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	applyAllows(buildAllowIndex(pkg.Fset, pkg.Files), diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
