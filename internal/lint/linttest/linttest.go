// Package linttest runs lint analyzers over fixture packages and checks
// their diagnostics against expectations embedded in the fixture source,
// following the golang.org/x/tools analysistest convention:
//
//	l, _ := pool.Lease(id) // want `may not be released`
//
// A `// want` comment holds one or more backquoted regexps; each must match
// a distinct diagnostic reported on that line, and every diagnostic must be
// matched by some expectation. Diagnostics suppressed by //lint:allow count
// as not reported — a fixture line carrying both an allow annotation and no
// want expectation therefore asserts the suppression works.
package linttest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rodentstore/internal/lint"
)

// FixturePath is the synthetic import path fixtures are loaded under:
// "fixture/" + the fixture directory's base name. Analyzers configured with
// package-path lists (lockorder tables, nowallclock paths) use this to
// scope themselves to a fixture.
func FixturePath(dir string) string {
	return "fixture/" + filepath.Base(dir)
}

// Run loads the fixture package in dir, applies the analyzer, and reports
// any mismatch between diagnostics and // want expectations as test
// failures.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	loader := lint.NewLoader()
	pkg, err := loader.LoadDir(dir, FixturePath(dir))
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	var reported []lint.Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			reported = append(reported, d)
		}
	}

	matched := make([]bool, len(reported))
	for _, w := range wants {
		found := false
		for i, d := range reported {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
	for i, d := range reported {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// collectWants scans fixture comments for // want expectations.
func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment (expect backquoted regexps): %s", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
