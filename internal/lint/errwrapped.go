package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrapped builds the errwrapped analyzer: the engine's typed errors
// (pager.ErrCorruptPage, segment.ErrCorruptExtent, wal.ErrCorruptRecord,
// wal.ErrSyncFailed, and sentinels generally) must be produced with %w and
// tested with errors.Is / errors.As — never with ==, type assertions, or
// string matching. Four checks:
//
//  1. A type assertion or type switch case naming a concrete error type:
//     use errors.As, which unwraps. (Assertions to interfaces are fine.)
//  2. == or != between an error value and a package-level error variable:
//     use errors.Is. (Comparisons to nil are the idiom and are ignored.)
//  3. fmt.Errorf whose constant format has no %w but whose arguments
//     include an error: the cause is flattened to text and errors.Is/As
//     stop working downstream.
//  4. String matching on err.Error() — strings.Contains and friends, or
//     ==/!= against a string literal: brittle and locale-hostile.
func ErrWrapped() *Analyzer {
	a := &Analyzer{
		Name: "errwrapped",
		Doc:  "typed errors are wrapped with %w and tested with errors.Is/As, never == or string matching",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeAssertExpr:
					checkErrAssert(pass, n)
				case *ast.TypeSwitchStmt:
					checkErrTypeSwitch(pass, n)
				case *ast.BinaryExpr:
					checkErrCompare(pass, n)
				case *ast.CallExpr:
					checkErrorfWrap(pass, n)
					checkErrStringMatch(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// isConcrete reports whether t is a non-interface type (through pointers).
func isConcrete(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, iface := t.Underlying().(*types.Interface)
	return !iface
}

func checkErrAssert(p *Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // the x.(type) of a type switch; handled there
	}
	if !isErrorType(p.TypeOf(ta.X)) {
		return
	}
	asserted := p.TypeOf(ta.Type)
	if asserted == nil || !isConcrete(asserted) || !implementsError(asserted) {
		return
	}
	p.Reportf(ta.Pos(), "type assertion on error to concrete type %s: use errors.As, which unwraps", types.TypeString(asserted, types.RelativeTo(p.Pkg)))
}

func checkErrTypeSwitch(p *Pass, ts *ast.TypeSwitchStmt) {
	// The switch operand is inside an ExprStmt or AssignStmt wrapping the
	// TypeAssertExpr.
	var operand ast.Expr
	switch s := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	}
	if operand == nil || !isErrorType(p.TypeOf(operand)) {
		return
	}
	for _, c := range ts.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, te := range cc.List {
			t := p.TypeOf(te)
			if t == nil || !isConcrete(t) || !implementsError(t) {
				continue
			}
			p.Reportf(te.Pos(), "type switch on error over concrete type %s: use errors.As, which unwraps", types.TypeString(t, types.RelativeTo(p.Pkg)))
		}
	}
}

// checkErrCompare flags err == pkgErrVar / err != pkgErrVar.
func checkErrCompare(p *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	// String matching: err.Error() == "..." (check 4, reported here because
	// it is a comparison shape; both sides are strings, so this must precede
	// the error-typed gate).
	if isErrorCallExpr(p, be.X) || isErrorCallExpr(p, be.Y) {
		p.Reportf(be.Pos(), "comparing err.Error() text: match the typed error with errors.Is/As instead")
		return
	}
	if !isErrorType(p.TypeOf(be.X)) && !isErrorType(p.TypeOf(be.Y)) {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		// A sentinel is a package-level error variable — bare (errDone) or
		// package-qualified (io.EOF). == misses wrapped causes; locals and
		// nil comparisons are the normal idiom and pass.
		var id *ast.Ident
		switch e := ast.Unparen(side).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			if _, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				id = e.Sel
			}
		}
		if id == nil {
			continue
		}
		v, ok := p.ObjectOf(id).(*types.Var)
		if !ok || v.Parent() == nil || v.Pkg() == nil {
			continue
		}
		if v.Parent() == v.Pkg().Scope() && isErrorType(v.Type()) {
			p.Reportf(be.Pos(), "error compared to sentinel %s with %s: use errors.Is, which unwraps", id.Name, be.Op)
			return
		}
	}
}

// isErrorCallExpr matches <error-typed expr>.Error().
func isErrorCallExpr(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(p.TypeOf(sel.X))
}

// checkErrorfWrap flags fmt.Errorf("... no %w ...", errArg).
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := p.TypeOf(arg)
		if t == nil || !isErrorType(t) {
			continue
		}
		// %v/%s on an error flattens the chain; errors.Is/As downstream
		// stop seeing the typed cause.
		p.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w: the typed cause is lost to errors.Is/As")
		return
	}
}

// stringMatchFuncs are strings-package predicates that should never see
// error text.
var stringMatchFuncs = map[string]bool{
	"strings.Contains":  true,
	"strings.HasPrefix": true,
	"strings.HasSuffix": true,
	"strings.EqualFold": true,
	"strings.Index":     true,
}

func checkErrStringMatch(p *Pass, call *ast.CallExpr) {
	fn := p.CalleeFunc(call)
	if fn == nil || !stringMatchFuncs[fn.FullName()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorCallExpr(p, arg) {
			p.Reportf(call.Pos(), "string-matching on err.Error() text: match the typed error with errors.Is/As instead")
			return
		}
	}
}
