package lint

import (
	"fmt"
	"io"
)

// Result summarizes one Run.
type Result struct {
	Packages   int
	Findings   int // reported violations (build-failing)
	Suppressed int // findings matched by //lint:allow
}

// Run expands patterns, loads each package and applies the analyzers,
// printing reported findings (and a suppression summary) to out. It is the
// engine behind cmd/rslint and the repo smoke test.
func Run(patterns []string, analyzers []*Analyzer, out io.Writer) (Result, error) {
	targets, err := ExpandPatterns(patterns)
	if err != nil {
		return Result{}, err
	}
	loader := NewLoader()
	var res Result
	for _, t := range targets {
		pkg, err := loader.LoadDir(t.Dir, t.Path)
		if err != nil {
			return res, err
		}
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return res, err
		}
		res.Packages++
		for _, d := range diags {
			if d.Suppressed {
				res.Suppressed++
				continue
			}
			res.Findings++
			fmt.Fprintln(out, d)
		}
	}
	return res, nil
}

// DefaultAnalyzers returns the production-configured suite: the five
// repo-specific analyzers over RodentStore's real lock table, lease/batch
// APIs and deterministic-path package list.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		LeaseLease(),
		BatchLife(),
		NewLockOrder(DefaultLockOrder),
		ErrWrapped(),
		NewNoWallClock(DefaultDeterministicPackages),
	}
}
