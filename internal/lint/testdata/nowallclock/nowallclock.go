// Fixture for the nowallclock analyzer: the test configures the analyzer
// with this fixture's package path, standing in for the engine's
// deterministic replay/recovery packages.
package nowallclock

import (
	"math/rand"
	"time"
)

// Positive: a wall-clock read makes replay unreproducible.
func stampRecord() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

// Positive: the global rand source is time-seeded.
func jitter() time.Duration {
	return time.Duration(rand.Int63n(100)) * time.Millisecond // want `global math/rand`
}

// Positive: sleeping couples replay to the scheduler.
func backoff(d time.Duration) {
	time.Sleep(d) // want `time.Sleep`
}

// Near-miss: an explicitly seeded source is the approved idiom.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Near-miss: methods on an owned *rand.Rand are deterministic given the seed.
func draw(r *rand.Rand) int64 {
	return r.Int63()
}

// Near-miss: converting a stored stamp reads no clock.
func format(stamp int64) time.Time {
	return time.Unix(0, stamp)
}

// Suppressed: a documented exception.
func allowClock() time.Time {
	//lint:allow nowallclock operator-facing log line, outside the replay path
	return time.Now()
}
