// Fixture for the lockorder analyzer. The test configures its own lock
// table over these types: Catalog.mu (level 10) → Engine.mu (level 20) →
// Pager.stripes (level 50), mirroring the engine's hierarchy.
package lockorder

import "sync"

type Catalog struct{ mu sync.Mutex }
type Engine struct{ mu sync.RWMutex }
type Pager struct{ stripes [8]sync.RWMutex }

// Near-miss: acquisitions in hierarchy order.
func ordered(c *Catalog, e *Engine) {
	c.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	c.mu.Unlock()
}

// Positive: the catalog lock is below the engine lock in the hierarchy.
func inverted(c *Catalog, e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c.mu.Lock() // want `lock order violation`
	c.mu.Unlock()
}

// Positive: Go mutexes self-deadlock on re-entry.
func reentrant(c *Catalog) {
	c.mu.Lock()
	c.mu.Lock() // want `re-entrant acquisition`
	c.mu.Unlock()
	c.mu.Unlock()
}

// Positive: stripe locks are matched through the local-alias idiom.
func stripeAlias(p *Pager, e *Engine, i int) {
	lk := &p.stripes[i]
	lk.Lock()
	e.mu.Lock() // want `lock order violation`
	e.mu.Unlock()
	lk.Unlock()
}

// Near-miss: a read lock on a stripe, deferred unlock.
func stripeOK(p *Pager, i int) int {
	lk := &p.stripes[i]
	lk.RLock()
	defer lk.RUnlock()
	return i
}

// Near-miss: sequential (released before the lower level is taken) is not
// out of order.
func sequential(c *Catalog, e *Engine) {
	e.mu.Lock()
	e.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// Near-miss: a goroutine starts with an empty lock set.
func spawn(c *Catalog, e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		c.mu.Lock()
		c.mu.Unlock()
	}()
}

// Suppressed: a documented exception.
func startup(c *Catalog, e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:allow lockorder startup path is single-threaded by construction
	c.mu.Lock()
	c.mu.Unlock()
}

// Merger mirrors the compaction worker pool: the engine's merge registry
// (level 22) publishes the pool, the pool's queue lock (level 24) hands
// tables to workers.
type Merger struct{ mu sync.Mutex }

type MergeEngine struct{ mergeMu sync.Mutex }

// Near-miss: the worker pattern — registry consulted and released, then the
// queue lock taken, released across the fold, retaken for bookkeeping.
func workerLoop(e *MergeEngine, m *Merger) {
	e.mergeMu.Lock()
	e.mergeMu.Unlock()
	m.mu.Lock()
	m.mu.Unlock()
	// ... fold runs without either lock held ...
	m.mu.Lock()
	m.mu.Unlock()
}

// Positive: consulting the registry while holding the queue lock inverts
// the hierarchy (and would deadlock against EnableAutoMerge's replace).
func queueThenRegistry(e *MergeEngine, m *Merger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.mergeMu.Lock() // want `lock order violation`
	e.mergeMu.Unlock()
}

// Positive: a worker re-entering its own queue lock self-deadlocks.
func workerReentry(m *Merger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mu.Lock() // want `re-entrant acquisition`
	m.mu.Unlock()
}
