// Fixture for the batchlife analyzer: pooled batches flow to exactly one of
// recycle or consumer, and are never touched after recycle.
package batchlife

import (
	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// Positive: leaked on the early return, recycled on the long path.
func leakOnSkip(pool *vec.Pool, schema *value.Schema, skip bool) int {
	b := pool.Get(schema) // want `pooled batch may not be released`
	if skip {
		return 0
	}
	n := b.Len()
	pool.Put(b)
	return n
}

// Positive: referenced after being handed back to the pool.
func useAfterPut(pool *vec.Pool, schema *value.Schema) int {
	b := pool.Get(schema)
	pool.Put(b)
	return b.Len() // want `used after being recycled`
}

// Positive: recycled twice (the second Put is a use of a recycled batch).
func doublePut(pool *vec.Pool, schema *value.Schema) {
	b := pool.Get(schema)
	pool.Put(b)
	pool.Put(b) // want `used after being recycled`
}

// Positive: a same-package helper that hands back a pooled batch propagates
// the obligation to its caller.
func decode(pool *vec.Pool, schema *value.Schema) (*vec.Batch, error) {
	return pool.Get(schema), nil
}

func leakFromHelper(pool *vec.Pool, schema *value.Schema, cond bool) error {
	b, err := decode(pool, schema) // want `pooled batch may not be released`
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	pool.Put(b)
	return nil
}

// Near-miss: deferred recycle covers every path, and uses between the defer
// statement and the return are fine (the Put runs last).
func deferPut(pool *vec.Pool, schema *value.Schema) int {
	b := pool.Get(schema)
	defer pool.Put(b)
	return b.Len()
}

// Near-miss: reassignment ends the recycled region.
func reuseVar(pool *vec.Pool, schema *value.Schema) int {
	b := pool.Get(schema)
	pool.Put(b)
	b = pool.Get(schema)
	n := b.Len()
	pool.Put(b)
	return n
}

// Near-miss: the batch transfers to the consumer through the return.
func produce(pool *vec.Pool, schema *value.Schema) *vec.Batch {
	b := pool.Get(schema)
	return b
}

// Near-miss: stored into a longer-lived owner (a cursor keeps the batch).
type cursor struct{ batch *vec.Batch }

func stash(pool *vec.Pool, schema *value.Schema, c *cursor) {
	b := pool.Get(schema)
	c.batch = b
}

// Suppressed: ownership intentionally parked, annotated with the reason.
func parked(pool *vec.Pool, schema *value.Schema) int {
	//lint:allow batchlife batch is owned by the registry until shutdown
	b := pool.Get(schema)
	return b.Len()
}
