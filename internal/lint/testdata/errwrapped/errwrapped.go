// Fixture for the errwrapped analyzer: typed errors are wrapped with %w and
// tested with errors.Is/As, never ==, type assertions, or string matching.
package errwrapped

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

type CorruptPage struct{ Page uint64 }

func (e *CorruptPage) Error() string { return fmt.Sprintf("corrupt page %d", e.Page) }

var errDone = errors.New("done")

// Positive: a type assertion to a concrete error type misses wrapped causes.
func assertConcrete(err error) uint64 {
	if ce, ok := err.(*CorruptPage); ok { // want `use errors.As`
		return ce.Page
	}
	return 0
}

// Positive: same through a type switch.
func switchConcrete(err error) string {
	switch e := err.(type) {
	case *CorruptPage: // want `use errors.As`
		_ = e
		return "corrupt"
	default:
		return "other"
	}
}

// Positive: == against a stdlib sentinel misses wrapped causes.
func compareSentinel(err error) bool {
	return err == io.EOF // want `use errors.Is`
}

// Positive: same for a package-local sentinel.
func compareLocalSentinel(err error) bool {
	return err != errDone // want `use errors.Is`
}

// Positive: %v flattens the cause out of the chain.
func flattenWrap(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `without %w`
}

// Positive: matching on rendered text is brittle.
func stringMatch(err error) bool {
	return strings.Contains(err.Error(), "corrupt") // want `string-matching`
}

// Positive: so is comparing it.
func textCompare(err error) bool {
	return err.Error() == "done" // want `err.Error\(\) text`
}

// Near-misses: the approved idioms.
func good(err error) (uint64, error) {
	var ce *CorruptPage
	if errors.As(err, &ce) {
		return ce.Page, fmt.Errorf("recovering: %w", err)
	}
	if errors.Is(err, io.EOF) || err == nil {
		return 0, nil
	}
	return 0, err
}

// Near-miss: assertions to interfaces are how net-style errors are probed.
func assertInterface(err error) bool {
	_, ok := err.(interface{ Timeout() bool })
	return ok
}

// Near-miss: string predicates on non-error text.
func plainStrings(s string) bool {
	return strings.Contains(s, "corrupt") && s == "done"
}

// Suppressed: a documented exception.
func allowCompare(err error) bool {
	//lint:allow errwrapped csv.Reader documents it returns io.EOF unwrapped
	return err == io.EOF
}
