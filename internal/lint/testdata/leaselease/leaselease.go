// Fixture for the leaselease analyzer: buffer leases and page leases must
// be released on every path. This package type-checks but is never run.
package leaselease

import (
	"errors"

	"rodentstore/internal/buffer"
	"rodentstore/internal/pager"
)

var errEmpty = errors.New("empty")

// Positive: the lease is never released on the success path.
func leak(pool *buffer.Pool, id pager.PageID) []byte {
	l, err := pool.Lease(id) // want `buffer lease may not be released`
	if err != nil {
		return nil
	}
	return l.Data()
}

// Positive: released on the happy path, leaked on the early error return.
func leakOnError(pool *buffer.Pool, id pager.PageID) ([]byte, error) {
	l, err := pool.Lease(id) // want `buffer lease may not be released`
	if err != nil {
		return nil, err
	}
	data := append([]byte(nil), l.Data()...)
	if len(data) == 0 {
		return nil, errEmpty // forgot l.Release()
	}
	if rerr := l.Release(); rerr != nil {
		return nil, rerr
	}
	return data, nil
}

// Positive: the lease is discarded outright.
func discard(pool *buffer.Pool, id pager.PageID) error {
	_, err := pool.Lease(id) // want `buffer lease is discarded`
	return err
}

// Positive: a page lease's release func is called on one path only.
func leakRelease(pool *buffer.Pool, id pager.PageID) []byte {
	data, release, err := pool.LeasePage(id) // want `page lease \(release func\) may not be released`
	if err != nil {
		return nil
	}
	if len(data) > 0 {
		_ = release()
		return data
	}
	return nil // release never called here
}

// Near-miss: deferred release covers every path.
func deferRelease(pool *buffer.Pool, id pager.PageID) []byte {
	l, err := pool.Lease(id)
	if err != nil {
		return nil
	}
	defer l.Release()
	return append([]byte(nil), l.Data()...)
}

// Near-miss: the error guard exempts the failure path; the success path
// releases with an error check.
func checkedRelease(pool *buffer.Pool, id pager.PageID) (int, error) {
	data, release, err := pool.LeasePage(id)
	if err != nil {
		return 0, err
	}
	n := len(data)
	if rerr := release(); rerr != nil {
		return 0, rerr
	}
	return n, nil
}

// Near-miss: ownership transfers to the caller through the return.
func acquire(pool *buffer.Pool, id pager.PageID) (buffer.Lease, error) {
	l, err := pool.Lease(id)
	return l, err
}

// Near-miss: ownership transfers by passing the lease to a call.
func handoff(pool *buffer.Pool, id pager.PageID) error {
	l, err := pool.Lease(id)
	if err != nil {
		return err
	}
	return consume(l)
}

func consume(l buffer.Lease) error { return l.Release() }

// Near-miss: the release obligation is returned as a method value — the
// shape of buffer.Pool.LeasePage itself.
func leaseBytes(pool *buffer.Pool, id pager.PageID) ([]byte, func() error, error) {
	l, err := pool.Lease(id)
	if err != nil {
		return nil, nil, err
	}
	return l.Data(), l.Release, nil
}

// Suppressed: an intentional pin-transfer, annotated with the reason.
func pinned(pool *buffer.Pool, id pager.PageID) []byte {
	//lint:allow leaselease pin is transferred to the caller, released via Pool.Unpin
	l, err := pool.Lease(id)
	if err != nil {
		return nil
	}
	return l.Data()
}
