// Fixture for the leaselease analyzer: buffer leases and page leases must
// be released on every path. This package type-checks but is never run.
package leaselease

import (
	"errors"

	"rodentstore/internal/buffer"
	"rodentstore/internal/pager"
)

var errEmpty = errors.New("empty")

// Positive: the lease is never released on the success path.
func leak(pool *buffer.Pool, id pager.PageID) []byte {
	l, err := pool.Lease(id) // want `buffer lease may not be released`
	if err != nil {
		return nil
	}
	return l.Data()
}

// Positive: released on the happy path, leaked on the early error return.
func leakOnError(pool *buffer.Pool, id pager.PageID) ([]byte, error) {
	l, err := pool.Lease(id) // want `buffer lease may not be released`
	if err != nil {
		return nil, err
	}
	data := append([]byte(nil), l.Data()...)
	if len(data) == 0 {
		return nil, errEmpty // forgot l.Release()
	}
	if rerr := l.Release(); rerr != nil {
		return nil, rerr
	}
	return data, nil
}

// Positive: the lease is discarded outright.
func discard(pool *buffer.Pool, id pager.PageID) error {
	_, err := pool.Lease(id) // want `buffer lease is discarded`
	return err
}

// Positive: a page lease's release func is called on one path only.
func leakRelease(pool *buffer.Pool, id pager.PageID) []byte {
	data, release, err := pool.LeasePage(id) // want `page lease \(release func\) may not be released`
	if err != nil {
		return nil
	}
	if len(data) > 0 {
		_ = release()
		return data
	}
	return nil // release never called here
}

// Near-miss: deferred release covers every path.
func deferRelease(pool *buffer.Pool, id pager.PageID) []byte {
	l, err := pool.Lease(id)
	if err != nil {
		return nil
	}
	defer l.Release()
	return append([]byte(nil), l.Data()...)
}

// Near-miss: the error guard exempts the failure path; the success path
// releases with an error check.
func checkedRelease(pool *buffer.Pool, id pager.PageID) (int, error) {
	data, release, err := pool.LeasePage(id)
	if err != nil {
		return 0, err
	}
	n := len(data)
	if rerr := release(); rerr != nil {
		return 0, rerr
	}
	return n, nil
}

// Near-miss: ownership transfers to the caller through the return.
func acquire(pool *buffer.Pool, id pager.PageID) (buffer.Lease, error) {
	l, err := pool.Lease(id)
	return l, err
}

// Near-miss: ownership transfers by passing the lease to a call.
func handoff(pool *buffer.Pool, id pager.PageID) error {
	l, err := pool.Lease(id)
	if err != nil {
		return err
	}
	return consume(l)
}

func consume(l buffer.Lease) error { return l.Release() }

// Near-miss: the release obligation is returned as a method value — the
// shape of buffer.Pool.LeasePage itself.
func leaseBytes(pool *buffer.Pool, id pager.PageID) ([]byte, func() error, error) {
	l, err := pool.Lease(id)
	if err != nil {
		return nil, nil, err
	}
	return l.Data(), l.Release, nil
}

// Suppressed: an intentional pin-transfer, annotated with the reason.
func pinned(pool *buffer.Pool, id pager.PageID) []byte {
	//lint:allow leaselease pin is transferred to the caller, released via Pool.Unpin
	l, err := pool.Lease(id)
	if err != nil {
		return nil
	}
	return l.Data()
}

// runFetch and runPrefetcher mirror the scan prefetcher's run-buffer
// handoff: LeaseRun returns the fetched run plus a release func() error that
// recycles the buffers, the same obligation shape as LeasePage.
type runFetch struct{ data []byte }

type runPrefetcher struct{}

func (*runPrefetcher) LeaseRun() (runFetch, func() error, error) {
	return runFetch{}, func() error { return nil }, nil
}

// Positive: the run lease's release func is dropped on the early return.
func leakRunLease(pf *runPrefetcher) []byte {
	rf, release, err := pf.LeaseRun() // want `run lease \(release func\) may not be released`
	if err != nil {
		return nil
	}
	if len(rf.data) == 0 {
		return nil // forgot release()
	}
	_ = release()
	return rf.data
}

// Positive: the release obligation is discarded outright.
func discardRunLease(pf *runPrefetcher) ([]byte, error) {
	rf, _, err := pf.LeaseRun() // want `run lease \(release func\) is discarded`
	return rf.data, err
}

// Near-miss: stored into a struct field — ownership transfers to the holder
// (the runLoader shape: the loader releases the previous lease when the next
// run is adopted and on close).
type runHolder struct{ release func() error }

func storeRunLease(pf *runPrefetcher, h *runHolder) error {
	rf, release, err := pf.LeaseRun()
	if err != nil {
		return err
	}
	h.release = release
	_ = rf.data
	return nil
}

// Near-miss: released on every path, with the error checked.
func checkedRunLease(pf *runPrefetcher) (int, error) {
	rf, release, err := pf.LeaseRun()
	if err != nil {
		return 0, err
	}
	n := len(rf.data)
	if rerr := release(); rerr != nil {
		return 0, rerr
	}
	return n, nil
}

// Leveled-storage readers walk a table's run hierarchy part by part; each
// run's blocks are leased from the pool, so a scan loop carries one open
// obligation per run. These fixtures pin the per-run shapes.

// Positive: the per-run lease leaks when the loop exits early on a
// predicate hit — the obligation from the current iteration is never
// released.
func leakPerRunLease(pool *buffer.Pool, runs []pager.PageID) []byte {
	for _, id := range runs {
		l, err := pool.Lease(id) // want `buffer lease may not be released`
		if err != nil {
			return nil
		}
		if len(l.Data()) > 0 {
			return l.Data() // forgot l.Release() before returning
		}
		_ = l.Release()
	}
	return nil
}

// Positive: the run's release func is dropped when a later run in the same
// iteration fails.
func leakRunOnNextError(pf *runPrefetcher, n int) error {
	for i := 0; i < n; i++ {
		rf, release, err := pf.LeaseRun() // want `run lease \(release func\) may not be released`
		if err != nil {
			return err
		}
		if len(rf.data) == 0 {
			return errEmpty // forgot release()
		}
		_ = release()
	}
	return nil
}

// Near-miss: the idiomatic per-run reader — every iteration releases its
// lease before the next run is fetched, and the early exit releases first.
func mergeRunsReleased(pool *buffer.Pool, runs []pager.PageID) ([]byte, error) {
	var out []byte
	for _, id := range runs {
		l, err := pool.Lease(id)
		if err != nil {
			return nil, err
		}
		out = append(out, l.Data()...)
		if rerr := l.Release(); rerr != nil {
			return nil, rerr
		}
	}
	return out, nil
}

// Near-miss: a deferred release covers every exit of the per-run closure,
// the shape the morsel-parallel scan uses for its per-part workers.
func perRunClosure(pool *buffer.Pool, runs []pager.PageID) error {
	for _, id := range runs {
		err := func() error {
			l, err := pool.Lease(id)
			if err != nil {
				return err
			}
			defer l.Release()
			if len(l.Data()) == 0 {
				return errEmpty
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}
