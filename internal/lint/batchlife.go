package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	vecPoolGetFunc = "(*rodentstore/internal/vec.Pool).Get"
	vecPoolPutFunc = "(*rodentstore/internal/vec.Pool).Put"
)

// BatchLife builds the batchlife analyzer for pooled vec.Batch lifetimes:
//
//  1. A batch obtained from a vec.Pool must flow to exactly one owner —
//     recycled via Put, returned to a consumer, stored into a result, or
//     handed to a call — on every path out of the function (the obligation
//     engine, as for leases).
//  2. A batch must not be referenced after it has been recycled: any use of
//     the variable after pool.Put(b) — including a second Put — is a
//     use-after-recycle, until the variable is reassigned. (sync.Pool makes
//     the race silent: the batch may already back another goroutine's scan.)
func BatchLife() *Analyzer {
	a := &Analyzer{
		Name: "batchlife",
		Doc:  "pooled vec.Batch values flow to exactly one of recycle or consumer, and are never used after recycle",
	}
	spec := &obligSpec{
		matchAcquire:   matchBatchAcquire,
		releaseMethods: map[string]bool{}, // discharge is by transfer (Put is a call arg)
	}
	a.Run = func(pass *Pass) error {
		checkObligations(pass, spec)
		checkUseAfterRecycle(pass)
		return nil
	}
	return a
}

func matchBatchAcquire(p *Pass, call *ast.CallExpr) (obligIdx, errIdx int, what string, ok bool) {
	fn := p.CalleeFunc(call)
	if fn == nil {
		return 0, 0, "", false
	}
	if fn.FullName() == vecPoolGetFunc {
		return 0, -1, "pooled batch", true
	}
	// Functions that hand back a pooled batch propagate the obligation: a
	// (*vec.Batch, error) result from a same-module helper is treated as
	// pooled. This keeps decode helpers honest without whole-program
	// analysis.
	sig, sok := fn.Type().(*types.Signature)
	if !sok || fn.Pkg() == nil || fn.Pkg() != p.Pkg {
		return 0, 0, "", false
	}
	res := sig.Results()
	if res.Len() != 2 || !isErrorType(res.At(1).Type()) {
		return 0, 0, "", false
	}
	if typeFullName(res.At(0).Type()) != "rodentstore/internal/vec.Batch" {
		return 0, 0, "", false
	}
	if _, isPtr := res.At(0).Type().(*types.Pointer); !isPtr {
		return 0, 0, "", false
	}
	return 0, 1, "pooled batch", true
}

// putSite is one pool.Put(b) call on a plain identifier.
type putSite struct {
	obj      types.Object
	end      token.Pos // uses after this position are use-after-recycle
	pos      token.Pos
	blockEnd token.Pos // end of the innermost enclosing block: the poison window
}

// checkUseAfterRecycle flags identifier uses that textually follow a
// pool.Put of the same variable within the same function scope. The check is
// per function-literal scope (a Put inside a closure does not poison the
// enclosing body — closures run on their own schedule) and skips deferred
// Puts (they run last). Reassignment of the variable ends the poisoned
// region. Selector-rooted batches (c.batch) are out of scope here; the
// engine's ownership-transfer rule covers them.
func checkUseAfterRecycle(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkScopeRecycle(p, body)
			}
			return true
		})
	}
}

func checkScopeRecycle(p *Pass, body *ast.BlockStmt) {
	var puts []putSite
	// Pass 1: collect non-deferred Put calls in this scope, each with its
	// innermost enclosing block. The poison window is bounded by that block:
	// `if err != nil { pool.Put(b); return err }` exits the path, so code
	// after the branch is not a use-after-recycle. Loop-carried and
	// cross-branch recycles are conceded to the dynamic checkers.
	blocks := []token.Pos{body.End()}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			blocks = blocks[:len(blocks)-1]
			return false
		}
		switch b := n.(type) {
		case *ast.FuncLit:
			if n.Pos() != body.Pos() {
				return false
			}
		case *ast.DeferStmt:
			// The deferred call runs at function exit; uses between the
			// defer statement and the return are fine.
			return false
		case *ast.BlockStmt:
			blocks = append(blocks, b.End())
			return true
		case *ast.CaseClause, *ast.CommClause:
			blocks = append(blocks, b.End())
			return true
		case *ast.CallExpr:
			fn := p.CalleeFunc(b)
			if fn == nil || fn.FullName() != vecPoolPutFunc || len(b.Args) != 1 {
				break
			}
			id, ok := ast.Unparen(b.Args[0]).(*ast.Ident)
			if !ok {
				break
			}
			if obj := p.ObjectOf(id); obj != nil {
				puts = append(puts, putSite{obj: obj, end: b.End(), pos: b.Pos(), blockEnd: blocks[len(blocks)-1]})
			}
		}
		blocks = append(blocks, blocks[len(blocks)-1]) // keep pop symmetric
		return true
	})
	if len(puts) == 0 {
		return
	}
	// Pass 2: for each Put, find the earliest reassignment after it, then
	// flag uses in the (put, min(reassignment, block end)) window.
	reportedAt := make(map[token.Pos]bool)
	for _, put := range puts {
		reassign := token.Pos(-1)
		inScope(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Pos() <= put.end {
				return
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && p.ObjectOf(id) == put.obj {
					if reassign == token.Pos(-1) || as.Pos() < reassign {
						reassign = as.Pos()
					}
				}
			}
		})
		inScope(body, func(n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || id.Pos() <= put.end || id.Pos() >= put.blockEnd || p.ObjectOf(id) != put.obj {
				return
			}
			if reassign != token.Pos(-1) && id.Pos() >= reassign {
				return
			}
			if reportedAt[id.Pos()] {
				return
			}
			reportedAt[id.Pos()] = true
			p.Reportf(id.Pos(), "batch %s used after being recycled to the pool at line %d",
				id.Name, p.Fset.Position(put.pos).Line)
		})
	}
}

// inScope walks body without descending into nested function literals,
// invoking f on every node. Deferred calls are not descended into either:
// their execution point is function exit, not their textual position.
func inScope(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			if n.Pos() != body.Pos() {
				return false
			}
		case *ast.DeferStmt:
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
