package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultDeterministicPackages lists the packages whose behavior must be a
// pure function of their inputs (plus an explicitly injected seed or clock):
// WAL replay and recovery, the torture harness's model and fault schedule,
// the fault-injection VFS, and the codecs. A wall-clock read or an unseeded
// global rand in any of these makes a crash-recovery failure unreproducible.
var DefaultDeterministicPackages = []string{
	"rodentstore/internal/wal",
	"rodentstore/internal/torture",
	"rodentstore/internal/vfs",
	"rodentstore/internal/compress",
	"rodentstore/internal/value",
}

// bannedClockFuncs are time-package reads of the wall or monotonic clock.
// Constructors of explicit clocks/durations (time.Duration arithmetic,
// time.Unix on stored stamps) stay allowed.
var bannedClockFuncs = map[string]bool{
	"time.Now":       true,
	"time.Since":     true,
	"time.Until":     true,
	"time.After":     true,
	"time.Tick":      true,
	"time.NewTicker": true,
	"time.NewTimer":  true,
	"time.AfterFunc": true,
	"time.Sleep":     true,
}

// randConstructors are the seeded entry points that remain allowed: build a
// *rand.Rand from an explicit seed and use its methods freely.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// NewNoWallClock builds the nowallclock analyzer restricted to the given
// package paths (fixture tests pass their own list). It flags calls to
// wall-clock time functions and to package-level math/rand functions (which
// draw from the process-global, time-seeded source). Methods on an
// explicitly constructed *rand.Rand are allowed — determinism comes from
// owning the seed.
func NewNoWallClock(paths []string) *Analyzer {
	a := &Analyzer{
		Name: "nowallclock",
		Doc:  "deterministic replay/recovery paths must not read the wall clock or global rand",
	}
	a.Run = func(pass *Pass) error {
		if !deterministicPath(pass.Pkg.Path(), paths) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.CalleeFunc(call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				pkgPath, name := fn.Pkg().Path(), fn.Name()
				full := pkgPath + "." + name
				if bannedClockFuncs[full] {
					pass.Reportf(call.Pos(), "%s in a deterministic replay/recovery path: inject a clock or timestamp through the caller", full)
					return true
				}
				if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
					// Package-level funcs draw from the process-global,
					// time-seeded source; methods on *rand.Rand (which have
					// a receiver) are fine.
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[name] {
						pass.Reportf(call.Pos(), "global %s.%s in a deterministic replay/recovery path: use a *rand.Rand built from an explicit seed", pkgPath, name)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// deterministicPath matches the package path against the configured list,
// tolerating synthetic fixture paths by suffix.
func deterministicPath(pkgPath string, paths []string) bool {
	for _, p := range paths {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) || pathHasSuffix(p, pkgPath) {
			return true
		}
	}
	return false
}
