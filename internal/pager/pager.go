// Package pager implements RodentStore's lowest storage layer: a single-file
// page store with checksummed fixed-size pages, extent (contiguous page run)
// allocation, persistent metadata slots, and I/O statistics.
//
// The statistics are the measurement substrate for the paper's evaluation:
// Figure 2 reports the *number of disk pages read per query* and argues that
// z-ordering "reduces the number of disk seeks". The pager counts a logical
// page read per ReadPage and a seek whenever the requested page is not the
// successor of the previously read page, which reproduces both metrics
// without depending on physical hardware.
//
// Concurrency: page reads and writes use positional I/O (ReadAt/WriteAt) and
// never serialize on a global lock — concurrent readers of distinct pages
// proceed fully in parallel. A striped reader/writer lock per page keeps a
// read from observing a torn concurrent write of the same page. Allocation,
// the free list, metadata slots and header writes sit under one small
// mutex, and the I/O counters are atomics. Seek adjacency (lastRead) is
// tracked under its own tiny lock, so single-threaded experiment runs
// produce exactly the same Seeks/SeekDistance as the original serial pager.
//
// Layout: page 0 is the header (magic, page size, allocation cursor, meta
// slots, persisted free extents); all other pages belong to callers. Each
// page is [crc32 (4 B) | payload]. Dense-packing of data into payloads is
// the segment layer's job (paper §3.1 "Data Reduction").
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"rodentstore/internal/vfs"
)

// PageID identifies a page in the file. Page 0 is the header; callers never
// see it. InvalidPage (0) marks "no page".
type PageID uint64

// InvalidPage is the zero PageID; it never refers to a data page.
const InvalidPage PageID = 0

const (
	// DefaultPageSize matches the case study's 1 KB pages (paper §6; see
	// DESIGN.md for why "1000 KB" is read as 1 KB).
	DefaultPageSize = 1024
	// MinPageSize bounds how small new files' pages may be. The header
	// page's fixed fields (magic, page size, next-page cursor, 16 meta
	// slots, free-list count, leak counter) take 160 bytes, so 256 is the
	// smallest power of two that holds them plus a few free extents (see
	// freeListCap).
	MinPageSize = 256
	// legacyMinPageSize is the floor Open still accepts: files created
	// when MinPageSize was 128 may carry page sizes in [160, 256) (sizes
	// below 160 could never persist a header and so cannot exist on disk).
	legacyMinPageSize = 128
	// MaxPageSize bounds how large pages may be.
	MaxPageSize = 1 << 20

	pageHeaderSize = 4 // crc32 of payload
	// magicV1 is the original header magic: no header checksum. Files
	// carrying it still open; the first header write upgrades them to v2.
	magicV1 = "RDNT0001"
	// magic is the current header magic: the header page carries a crc32 of
	// its contents in its last 4 bytes, so a torn header write is detected
	// as corruption instead of being silently interpreted.
	magic = "RDNT0002"
	// metaSlots is the number of uint64 metadata slots exposed to upper
	// layers (catalog roots, WAL cursors, ...).
	metaSlots = 16
	// maxFreeExtents caps the persisted free list; further frees leak space
	// (counted in Stats.LeakedPages) rather than complicating the format.
	// The effective cap is the smaller of this and what fits in the header
	// page (freeListCap) — small pages hold fewer extents.
	maxFreeExtents = 128
	// pageStripes is the number of page-level RW locks. Distinct pages in
	// different stripes never contend; same-page read/write pairs are
	// serialized so checksums stay consistent.
	pageStripes = 128
)

// Stats counts logical I/O. Seeks increments when a read is not sequential
// with the previous read (first read after reset counts as one seek).
type Stats struct {
	PageReads  uint64
	PageWrites uint64
	Seeks      uint64
	// SeekDistance sums |target − expected| pages over all seeks: the total
	// head travel a spinning disk would perform. Space-filling curves lower
	// this even when the seek count stays flat (nearby cells in space land
	// nearby on disk), which is the paper's z-ordering argument.
	SeekDistance uint64
	Allocs       uint64
	Frees        uint64
	LeakedPages  uint64
}

// counters is the lock-free internal form of Stats.
type counters struct {
	pageReads    atomic.Uint64
	pageWrites   atomic.Uint64
	seeks        atomic.Uint64
	seekDistance atomic.Uint64
	allocs       atomic.Uint64
	frees        atomic.Uint64
	leakedPages  atomic.Uint64
}

// Extent is a contiguous run of pages [Start, Start+Count).
type Extent struct {
	Start PageID
	Count uint64
}

// ErrCorruptPage reports a page whose stored checksum does not match its
// content (or, for page 0, a header that fails validation). It carries the
// page identity so upper layers can quarantine the extent that owns it.
type ErrCorruptPage struct {
	Page   PageID
	Detail string
}

func (e *ErrCorruptPage) Error() string {
	return fmt.Sprintf("pager: page %d corrupt: %s", e.Page, e.Detail)
}

// File is a page store backed by one file (the OS implementation in
// production; vfs.Fault under fault-injection tests). All methods are safe
// for concurrent use; page reads and writes do not take any global lock.
type File struct {
	f        vfs.File
	path     string
	pageSize int
	readOnly bool

	// mu guards allocation state: the free list, metadata slots and header
	// writes. It is never held across page I/O issued by readers.
	mu   sync.Mutex
	free []Extent
	meta [metaSlots]uint64

	// nextPage is the allocation cursor (== number of pages incl. header).
	// Written under mu; read lock-free by checkID.
	nextPage atomic.Uint64

	// filePages is the file's size in pages (>= nextPage). The file grows
	// in batches so extending allocations do not pay one ftruncate (an ext4
	// journal transaction) each; pages in [nextPage, filePages) are
	// unallocated slack. Guarded by mu.
	filePages uint64

	// pageLocks stripes page-level access so a reader never observes a torn
	// concurrent write of the same page. Readers share the stripe.
	pageLocks [pageStripes]sync.RWMutex

	stats counters

	// seekMu orders seek-adjacency tracking. Serial callers see exactly the
	// historical Seeks/SeekDistance accounting.
	seekMu   sync.Mutex
	lastRead PageID
	haveLast bool
}

// Create creates a new page file at path on the OS file system with the
// given page size, truncating any existing file.
func Create(path string, pageSize int) (*File, error) {
	return CreateAt(vfs.OS, path, pageSize)
}

// CreateAt creates a new page file on the given file system.
func CreateAt(fsys vfs.FS, path string, pageSize int) (*File, error) {
	if pageSize < MinPageSize || pageSize > MaxPageSize {
		return nil, fmt.Errorf("pager: page size %d out of range [%d,%d]", pageSize, MinPageSize, MaxPageSize)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	p := &File{f: f, path: path, pageSize: pageSize, filePages: 1}
	p.nextPage.Store(1)
	p.mu.Lock()
	err = p.writeHeader()
	p.mu.Unlock()
	if err == nil {
		// Make the fresh header durable: a crash after Create must reopen as
		// an empty store, not as a missing or headerless file.
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// Open opens an existing page file on the OS file system and restores its
// header state.
func Open(path string) (*File, error) {
	return OpenAt(vfs.OS, path)
}

// OpenAt opens an existing page file on the given file system.
func OpenAt(fsys vfs.FS, path string) (*File, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	// Read a maximal header prefix; the true page size is in the header.
	buf := make([]byte, MaxPageSize)
	n, err := f.ReadAt(buf, 0)
	if n < legacyMinPageSize && err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: read header of %s: %w", path, err)
	}
	if string(buf[:8]) != magic && string(buf[:8]) != magicV1 {
		f.Close()
		return nil, fmt.Errorf("pager: %s is not a RodentStore file", path)
	}
	p := &File{f: f, path: path}
	if err := p.parseHeader(buf); err != nil {
		f.Close()
		return nil, err
	}
	if sz, err := f.Size(); err == nil {
		p.filePages = uint64(sz) / uint64(p.pageSize)
	}
	if p.filePages < p.nextPage.Load() {
		// A crash can leave the header cursor ahead of the file; restore
		// the invariant that the file covers every allocated page.
		if err := f.Truncate(int64(p.nextPage.Load()) * int64(p.pageSize)); err != nil {
			f.Close()
			return nil, fmt.Errorf("pager: restore size: %w", err)
		}
		p.filePages = p.nextPage.Load()
	}
	return p, nil
}

// freeListCap is how many free extents the header page can persist: the
// page must hold the fixed fields (magic, page size, next-page cursor,
// meta slots, extent count, trailing leak counter) plus 16 bytes per
// extent, with the last 4 bytes of the page reserved for the header crc32.
// freeLocked keeps len(p.free) within this, so writeHeader never overruns
// the crc. (v1 files, without the reserved crc bytes, can carry one extent
// more; parseHeader trims the overflow into the leak counter.)
func (p *File) freeListCap() int {
	c := (p.pageSize - (len(magic) + 4 + 8 + metaSlots*8 + 4 + 8 + 4)) / 16
	if c > maxFreeExtents {
		c = maxFreeExtents
	}
	if c < 0 {
		c = 0
	}
	return c
}

// header layout (after the 8-byte magic): pageSize u32, nextPage u64,
// meta[16] u64, nfree u32, {start u64, count u64}*nfree, leaked u64, and —
// since v2 — a crc32 of buf[:pageSize-4] in the page's last 4 bytes.
// Caller holds p.mu.
func (p *File) writeHeader() error {
	buf := make([]byte, p.pageSize)
	copy(buf, magic)
	off := 8
	binary.LittleEndian.PutUint32(buf[off:], uint32(p.pageSize))
	off += 4
	binary.LittleEndian.PutUint64(buf[off:], p.nextPage.Load())
	off += 8
	for _, m := range p.meta {
		binary.LittleEndian.PutUint64(buf[off:], m)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(p.free)))
	off += 4
	for _, e := range p.free {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.Start))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], e.Count)
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], p.stats.leakedPages.Load())
	binary.LittleEndian.PutUint32(buf[p.pageSize-4:], crc32.ChecksumIEEE(buf[:p.pageSize-4]))
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pager: write header: %w", err)
	}
	return nil
}

func (p *File) parseHeader(buf []byte) error {
	v1 := string(buf[:8]) == magicV1
	off := 8
	p.pageSize = int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if p.pageSize < legacyMinPageSize || p.pageSize > MaxPageSize {
		return &ErrCorruptPage{Page: 0, Detail: fmt.Sprintf("header page size %d", p.pageSize)}
	}
	if !v1 {
		want := binary.LittleEndian.Uint32(buf[p.pageSize-4:])
		if got := crc32.ChecksumIEEE(buf[:p.pageSize-4]); got != want {
			return &ErrCorruptPage{Page: 0, Detail: "header checksum mismatch"}
		}
	}
	p.nextPage.Store(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	for i := range p.meta {
		p.meta[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	nfree := binary.LittleEndian.Uint32(buf[off:])
	off += 4
	limit := p.freeListCap()
	if v1 {
		limit++ // v1 had no reserved crc bytes: one extra extent could fit
	}
	if int(nfree) > limit {
		return &ErrCorruptPage{Page: 0, Detail: fmt.Sprintf("header lists %d free extents", nfree)}
	}
	p.free = make([]Extent, nfree)
	for i := range p.free {
		p.free[i].Start = PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		p.free[i].Count = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	p.stats.leakedPages.Store(binary.LittleEndian.Uint64(buf[off:]))
	if len(p.free) > p.freeListCap() {
		// A v1 free list one past the v2 cap: leak the overflow so the next
		// header write (v2 format) fits.
		for _, e := range p.free[p.freeListCap():] {
			p.stats.leakedPages.Add(e.Count)
		}
		p.free = p.free[:p.freeListCap()]
	}
	return nil
}

// CheckHeader re-reads and re-validates the header page from disk, including
// its checksum. It is the integrity walker's entry point for page 0 (which
// ReadPage never serves).
func (p *File) CheckHeader() error {
	buf := make([]byte, p.pageSize)
	p.mu.Lock() // header writes happen under mu; avoid reading one torn
	_, err := p.f.ReadAt(buf, 0)
	p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("pager: read header: %w", err)
	}
	if string(buf[:8]) != magic && string(buf[:8]) != magicV1 {
		return &ErrCorruptPage{Page: 0, Detail: "bad magic"}
	}
	check := &File{path: p.path}
	return check.parseHeader(buf)
}

// PageSize returns the page size in bytes.
func (p *File) PageSize() int { return p.pageSize }

// PayloadSize returns the usable bytes per page.
func (p *File) PayloadSize() int { return p.pageSize - pageHeaderSize }

// NumPages returns the number of pages allocated so far, excluding header
// and free pages.
func (p *File) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.nextPage.Load() - 1
	for _, e := range p.free {
		n -= e.Count
	}
	return n
}

// MetaGet reads a persistent metadata slot.
func (p *File) MetaGet(slot int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.meta[slot]
}

// MetaSet writes a persistent metadata slot and flushes the header.
func (p *File) MetaSet(slot int, v uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[slot] = v
	return p.writeHeader()
}

// growTo extends the file to cover at least next pages, growing in batches
// (at least 64 pages, at most 16384, doubling with the file) so sequential
// extending allocations pay one ftruncate per batch, not one each. Caller
// holds p.mu.
func (p *File) growTo(next uint64) error {
	if next <= p.filePages {
		return nil
	}
	step := p.filePages
	if step < 64 {
		step = 64
	}
	if step > 16384 {
		step = 16384
	}
	target := p.filePages + step
	if target < next {
		target = next
	}
	// Extend the file so reads of unwritten pages fail loudly via checksum
	// rather than short reads. The new cursor publishes only after the file
	// covers it. Preallocation (vs a sparse truncate) means later page
	// writes do not allocate filesystem blocks, keeping them out of the
	// journal's way when the WAL fsyncs concurrently.
	if err := p.f.Preallocate(int64(target) * int64(p.pageSize)); err != nil {
		return fmt.Errorf("pager: extend: %w", err)
	}
	p.filePages = target
	return nil
}

// allocateLocked carves n contiguous pages from a free extent (first fit)
// or the end of the file, without persisting the header. Caller holds p.mu
// and must writeHeader before releasing durability-relevant state.
func (p *File) allocateLocked(n uint64) (PageID, error) {
	p.stats.allocs.Add(1)
	for i, e := range p.free {
		if e.Count >= n {
			start := e.Start
			p.free[i].Start += PageID(n)
			p.free[i].Count -= n
			if p.free[i].Count == 0 {
				p.free = append(p.free[:i], p.free[i+1:]...)
			}
			return start, nil
		}
	}
	start := PageID(p.nextPage.Load())
	next := uint64(start) + n
	if err := p.growTo(next); err != nil {
		return InvalidPage, err
	}
	p.nextPage.Store(next)
	return start, nil
}

// RecoverPage writes a page image during WAL recovery. The header — with
// the allocation cursor and free list — only reaches disk at checkpoints,
// so after a crash it can lag the fsync'd WAL: a replayed page may sit
// past the cursor, or inside an extent the stale header still lists as
// free. RecoverPage heals both (advancing the cursor over id and carving
// id out of the free list) so a replayed page is neither rejected as out
// of range nor handed out again by a later allocation. Recovery persists
// the healed header with Sync once replay finishes.
func (p *File) RecoverPage(id PageID, payload []byte) error {
	if id == InvalidPage {
		return fmt.Errorf("pager: recover invalid page")
	}
	p.mu.Lock()
	if uint64(id) >= p.nextPage.Load() {
		if err := p.growTo(uint64(id) + 1); err != nil {
			p.mu.Unlock()
			return err
		}
		p.nextPage.Store(uint64(id) + 1)
	}
	p.carveLocked(id)
	p.mu.Unlock()
	return p.WritePage(id, payload)
}

// carveLocked removes page id from whichever free extent covers it, if
// any, splitting the extent around it. Caller holds p.mu.
func (p *File) carveLocked(id PageID) {
	for i, e := range p.free {
		if id < e.Start || id >= e.Start+PageID(e.Count) {
			continue
		}
		out := make([]Extent, 0, len(p.free)+1)
		out = append(out, p.free[:i]...)
		if n := uint64(id - e.Start); n > 0 {
			out = append(out, Extent{e.Start, n})
		}
		if n := uint64(e.Start+PageID(e.Count)-id) - 1; n > 0 {
			out = append(out, Extent{id + 1, n})
		}
		out = append(out, p.free[i+1:]...)
		p.free = out
		return
	}
}

// AllocateRun allocates n contiguous pages, reusing a free extent when one
// fits (first fit) and extending the file otherwise.
func (p *File) AllocateRun(n uint64) (PageID, error) {
	if n == 0 {
		return InvalidPage, fmt.Errorf("pager: zero-length allocation")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	start, err := p.allocateLocked(n)
	if err != nil {
		return InvalidPage, err
	}
	return start, p.writeHeader()
}

// Allocate allocates a single page.
func (p *File) Allocate() (PageID, error) { return p.AllocateRun(1) }

// freeLocked returns an extent to the free list, coalescing with
// neighbours; the header is not persisted. Caller holds p.mu.
func (p *File) freeLocked(start PageID, n uint64) {
	p.stats.frees.Add(1)
	p.free = append(p.free, Extent{start, n})
	sort.Slice(p.free, func(i, j int) bool { return p.free[i].Start < p.free[j].Start })
	merged := p.free[:0]
	for _, e := range p.free {
		if m := len(merged); m > 0 && merged[m-1].Start+PageID(merged[m-1].Count) == e.Start {
			merged[m-1].Count += e.Count
		} else {
			merged = append(merged, e)
		}
	}
	p.free = merged
	if limit := p.freeListCap(); len(p.free) > limit {
		for _, e := range p.free[limit:] {
			p.stats.leakedPages.Add(e.Count)
		}
		p.free = p.free[:limit]
	}
}

// FreeRun returns an extent to the free list, coalescing with neighbours.
// When the free list is full the pages leak (tracked in stats).
func (p *File) FreeRun(start PageID, n uint64) error {
	if start == InvalidPage || n == 0 {
		return fmt.Errorf("pager: bad free of %d pages at %d", n, start)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.freeLocked(start, n)
	return p.writeHeader()
}

// noteRead updates seek-adjacency tracking for a read of page id.
func (p *File) noteRead(id PageID) {
	p.seekMu.Lock()
	if !p.haveLast || id != p.lastRead+1 {
		p.stats.seeks.Add(1)
		if p.haveLast {
			expected := p.lastRead + 1
			if id > expected {
				p.stats.seekDistance.Add(uint64(id - expected))
			} else {
				p.stats.seekDistance.Add(uint64(expected - id))
			}
		}
	}
	p.lastRead, p.haveLast = id, true
	p.seekMu.Unlock()
}

// ReadPage reads the payload of page id into a fresh slice, verifying the
// checksum and updating read/seek statistics. Concurrent reads of distinct
// pages run fully in parallel (positional I/O, no global lock).
func (p *File) ReadPage(id PageID) ([]byte, error) {
	if err := p.checkID(id); err != nil {
		return nil, err
	}
	lk := &p.pageLocks[uint64(id)%pageStripes]
	buf := make([]byte, p.pageSize)
	lk.RLock()
	_, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize))
	lk.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.stats.pageReads.Add(1)
	p.noteRead(id)
	want := binary.LittleEndian.Uint32(buf)
	if got := crc32.ChecksumIEEE(buf[pageHeaderSize:]); got != want {
		return nil, &ErrCorruptPage{Page: id, Detail: "checksum mismatch (corrupt or never written)"}
	}
	return buf[pageHeaderSize:], nil
}

// noteReadRun updates seek-adjacency tracking for a coalesced read of npages
// pages starting at start. The accounting is identical to a ReadPage loop
// over the run: at most one seek (to reach the run's first page), and the
// cursor ends on the run's last page.
func (p *File) noteReadRun(start PageID, npages uint64) {
	p.seekMu.Lock()
	if !p.haveLast || start != p.lastRead+1 {
		p.stats.seeks.Add(1)
		if p.haveLast {
			expected := p.lastRead + 1
			if start > expected {
				p.stats.seekDistance.Add(uint64(start - expected))
			} else {
				p.stats.seekDistance.Add(uint64(expected - start))
			}
		}
	}
	p.lastRead, p.haveLast = start+PageID(npages)-1, true
	p.seekMu.Unlock()
}

// ReadRunInto reads the payloads of npages pages starting at start with a
// single positional read, verifying each page's checksum and appending the
// payloads to dst. It is the read-side twin of WriteRun: functionally
// equivalent to a ReadPage loop over the run — identical page-read and seek
// statistics — but paying one syscall for the whole run, which is what makes
// coalesced scan I/O cheap.
//
// On a checksum failure the payloads of the pages *before* the corrupt one
// are still appended (a verified prefix callers may use) and the returned
// *ErrCorruptPage identifies the failing page. On a read error nothing is
// appended and no statistics are counted.
func (p *File) ReadRunInto(dst []byte, start PageID, npages uint64) ([]byte, error) {
	if npages == 0 {
		return dst, nil
	}
	if err := p.checkID(start); err != nil {
		return dst, err
	}
	if err := p.checkID(start + PageID(npages-1)); err != nil {
		return dst, err
	}
	need := int(npages) * p.pageSize
	buf, _ := runBufPool.Get().([]byte)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	// Share the read side of every stripe the run touches so no page in the
	// run is observed mid-write; concurrent readers still proceed in parallel.
	stripes := p.rlockRunStripes(start, npages)
	_, err := p.f.ReadAt(buf, int64(start)*int64(p.pageSize))
	for i := len(stripes) - 1; i >= 0; i-- {
		stripes[i].RUnlock()
	}
	if err != nil {
		runBufPool.Put(buf) //nolint:staticcheck // slice reuse is the point
		return dst, fmt.Errorf("pager: read run [%d,%d): %w", start, uint64(start)+npages, err)
	}
	for i := uint64(0); i < npages; i++ {
		page := buf[i*uint64(p.pageSize) : (i+1)*uint64(p.pageSize)]
		want := binary.LittleEndian.Uint32(page)
		if got := crc32.ChecksumIEEE(page[pageHeaderSize:]); got != want {
			p.stats.pageReads.Add(i)
			if i > 0 {
				p.noteReadRun(start, i)
			}
			runBufPool.Put(buf) //nolint:staticcheck // slice reuse is the point
			return dst, &ErrCorruptPage{Page: start + PageID(i), Detail: "checksum mismatch (corrupt or never written)"}
		}
		dst = append(dst, page[pageHeaderSize:]...)
	}
	runBufPool.Put(buf) //nolint:staticcheck // slice reuse is the point
	p.stats.pageReads.Add(npages)
	p.noteReadRun(start, npages)
	return dst, nil
}

// rlockRunStripes read-locks the distinct page-lock stripes covering the
// run, in index order (consistent with lockRunStripes, so run readers and
// run writers cannot deadlock against each other).
func (p *File) rlockRunStripes(start PageID, npages uint64) []*sync.RWMutex {
	n := npages
	if n > pageStripes {
		n = pageStripes
	}
	var hit [pageStripes]bool
	for i := uint64(0); i < npages && i < pageStripes; i++ {
		hit[(uint64(start)+i)%pageStripes] = true
	}
	if npages >= pageStripes {
		for i := range hit {
			hit[i] = true
		}
	}
	out := make([]*sync.RWMutex, 0, n)
	for i := range hit {
		if hit[i] {
			out = append(out, &p.pageLocks[i])
		}
	}
	for _, lk := range out {
		lk.RLock()
	}
	return out
}

// WritePage writes payload (at most PayloadSize bytes) to page id.
func (p *File) WritePage(id PageID, payload []byte) error {
	if p.readOnly {
		return fmt.Errorf("pager: file is read-only")
	}
	if err := p.checkID(id); err != nil {
		return err
	}
	if len(payload) > p.pageSize-pageHeaderSize {
		return fmt.Errorf("pager: payload %d exceeds page payload %d", len(payload), p.pageSize-pageHeaderSize)
	}
	buf := make([]byte, p.pageSize)
	copy(buf[pageHeaderSize:], payload)
	binary.LittleEndian.PutUint32(buf, crc32.ChecksumIEEE(buf[pageHeaderSize:]))
	lk := &p.pageLocks[uint64(id)%pageStripes]
	lk.Lock()
	_, err := p.f.WriteAt(buf, int64(id)*int64(p.pageSize))
	lk.Unlock()
	if err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	p.stats.pageWrites.Add(1)
	return nil
}

// WriteRun writes payload across the extent starting at start — one page
// per PayloadSize chunk, the last page zero-padded — in a single positional
// write. Functionally equivalent to a WritePage loop but pays one syscall
// for the whole extent, which is what makes bulk publishes (segment
// renders, catalog flips) cheap. Page-write statistics count one write per
// page, as the loop would.
func (p *File) WriteRun(start PageID, payload []byte) error {
	if p.readOnly {
		return fmt.Errorf("pager: file is read-only")
	}
	payloadSize := p.pageSize - pageHeaderSize
	npages := uint64(len(payload)+payloadSize-1) / uint64(payloadSize)
	if npages == 0 {
		npages = 1
	}
	if err := p.checkID(start); err != nil {
		return err
	}
	if err := p.checkID(start + PageID(npages-1)); err != nil {
		return err
	}
	need := int(npages) * p.pageSize
	buf, _ := runBufPool.Get().([]byte)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	for i := uint64(0); i < npages; i++ {
		page := buf[i*uint64(p.pageSize) : (i+1)*uint64(p.pageSize)]
		lo := int(i) * payloadSize
		hi := lo + payloadSize
		if hi > len(payload) {
			hi = len(payload)
		}
		n := 0
		if lo < len(payload) {
			n = copy(page[pageHeaderSize:], payload[lo:hi])
		}
		clear(page[pageHeaderSize+n:]) // pooled buffer may hold old bytes
		binary.LittleEndian.PutUint32(page, crc32.ChecksumIEEE(page[pageHeaderSize:]))
	}
	// Take every stripe the run touches, in order, so no reader of any page
	// in the run observes a torn write.
	stripes := p.lockRunStripes(start, npages)
	_, err := p.f.WriteAt(buf, int64(start)*int64(p.pageSize))
	for i := len(stripes) - 1; i >= 0; i-- {
		stripes[i].Unlock()
	}
	runBufPool.Put(buf) //nolint:staticcheck // slice reuse is the point
	if err != nil {
		return fmt.Errorf("pager: write run [%d,%d): %w", start, uint64(start)+npages, err)
	}
	p.stats.pageWrites.Add(npages)
	return nil
}

// runBufPool recycles WriteRun's staging buffers (extent image with page
// headers); bulk publishes would otherwise allocate tens of KB per call.
var runBufPool sync.Pool

// lockRunStripes write-locks the distinct page-lock stripes covering the
// run, in index order (deadlock-free against concurrent run writers).
func (p *File) lockRunStripes(start PageID, npages uint64) []*sync.RWMutex {
	n := npages
	if n > pageStripes {
		n = pageStripes
	}
	var hit [pageStripes]bool
	for i := uint64(0); i < npages && i < pageStripes; i++ {
		hit[(uint64(start)+i)%pageStripes] = true
	}
	if npages >= pageStripes {
		for i := range hit {
			hit[i] = true
		}
	}
	out := make([]*sync.RWMutex, 0, n)
	for i := range hit {
		if hit[i] {
			out = append(out, &p.pageLocks[i])
		}
	}
	for _, lk := range out {
		lk.Lock()
	}
	return out
}

// ReplaceMetaExtent is the crash-safe "write new extent, flip pointers,
// free old" pattern: it allocates a fresh extent for payload, writes it
// (one positional write), points the three meta slots at it (start page,
// page count, byte length), frees the old extent, and persists the header
// once. A crash before the header write leaves the previous state fully
// intact; after it, the new state. Compared to composing AllocateRun +
// WritePage* + MetaSet*3 + FreeRun, this pays one header write instead of
// five — it is the catalog's flush primitive.
func (p *File) ReplaceMetaExtent(slotStart, slotPages, slotLen int, payload []byte, old Extent) (Extent, error) {
	if p.readOnly {
		return Extent{}, fmt.Errorf("pager: file is read-only")
	}
	payloadSize := uint64(p.pageSize - pageHeaderSize)
	npages := (uint64(len(payload)) + payloadSize - 1) / payloadSize
	if npages == 0 {
		npages = 1
	}
	p.mu.Lock()
	start, err := p.allocateLocked(npages)
	p.mu.Unlock()
	if err != nil {
		return Extent{}, err
	}
	if err := p.WriteRun(start, payload); err != nil {
		return Extent{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[slotStart] = uint64(start)
	p.meta[slotPages] = npages
	p.meta[slotLen] = uint64(len(payload))
	if old.Start != InvalidPage && old.Count > 0 {
		p.freeLocked(old.Start, old.Count)
	}
	if err := p.writeHeader(); err != nil {
		return Extent{}, err
	}
	return Extent{Start: start, Count: npages}, nil
}

func (p *File) checkID(id PageID) error {
	if id == InvalidPage || uint64(id) >= p.nextPage.Load() {
		return fmt.Errorf("pager: page %d out of range [1,%d)", id, p.nextPage.Load())
	}
	return nil
}

// Sync flushes the header and fsyncs the file.
func (p *File) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.writeHeader(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (p *File) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

// Stats returns a snapshot of the I/O counters.
func (p *File) Stats() Stats {
	return Stats{
		PageReads:    p.stats.pageReads.Load(),
		PageWrites:   p.stats.pageWrites.Load(),
		Seeks:        p.stats.seeks.Load(),
		SeekDistance: p.stats.seekDistance.Load(),
		Allocs:       p.stats.allocs.Load(),
		Frees:        p.stats.frees.Load(),
		LeakedPages:  p.stats.leakedPages.Load(),
	}
}

// ResetStats zeroes the read/write/seek counters (allocation counters and
// leak accounting are preserved) and resets seek tracking, so each measured
// query starts cold.
func (p *File) ResetStats() {
	p.seekMu.Lock()
	p.stats.pageReads.Store(0)
	p.stats.pageWrites.Store(0)
	p.stats.seeks.Store(0)
	p.stats.seekDistance.Store(0)
	p.lastRead, p.haveLast = 0, false
	p.seekMu.Unlock()
}

// Path returns the backing file path.
func (p *File) Path() string { return p.path }
