package pager

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newFile(t *testing.T, pageSize int) *File {
	t.Helper()
	p, err := Create(filepath.Join(t.TempDir(), "test.rdnt"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestCreateRejectsBadPageSize(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "a"), 64); err == nil {
		t.Error("expected error for tiny page size")
	}
	if _, err := Create(filepath.Join(dir, "b"), MaxPageSize*2); err == nil {
		t.Error("expected error for huge page size")
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	p := newFile(t, 1024)
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello rodent")
	if err := p.WritePage(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:len(payload)]) != string(payload) {
		t.Errorf("payload mismatch: %q", got[:len(payload)])
	}
	if len(got) != p.PayloadSize() {
		t.Errorf("payload length %d, want %d", len(got), p.PayloadSize())
	}
}

func TestPayloadTooLarge(t *testing.T) {
	p := newFile(t, 1024)
	id, _ := p.Allocate()
	big := make([]byte, p.PayloadSize()+1)
	if err := p.WritePage(id, big); err == nil {
		t.Error("expected error for oversized payload")
	}
}

func TestReadUnwrittenPageFails(t *testing.T) {
	p := newFile(t, 1024)
	id, _ := p.Allocate()
	if _, err := p.ReadPage(id); err == nil {
		t.Error("expected checksum error reading unwritten page")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	p := newFile(t, 1024)
	if _, err := p.ReadPage(InvalidPage); err == nil {
		t.Error("expected error reading page 0")
	}
	if _, err := p.ReadPage(999); err == nil {
		t.Error("expected error reading unallocated page")
	}
	if err := p.WritePage(999, nil); err == nil {
		t.Error("expected error writing unallocated page")
	}
}

func TestAllocateRunContiguous(t *testing.T) {
	p := newFile(t, 1024)
	a, err := p.AllocateRun(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AllocateRun(5)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+10 {
		t.Errorf("second run should follow first: a=%d b=%d", a, b)
	}
	if _, err := p.AllocateRun(0); err == nil {
		t.Error("expected error for zero-length run")
	}
}

func TestFreeListReuse(t *testing.T) {
	p := newFile(t, 1024)
	a, _ := p.AllocateRun(10)
	if err := p.FreeRun(a, 10); err != nil {
		t.Fatal(err)
	}
	b, _ := p.AllocateRun(4)
	if b != a {
		t.Errorf("allocation should reuse freed extent: got %d want %d", b, a)
	}
	c, _ := p.AllocateRun(6)
	if c != a+4 {
		t.Errorf("remainder reuse: got %d want %d", c, a+4)
	}
}

func TestFreeCoalescing(t *testing.T) {
	p := newFile(t, 1024)
	a, _ := p.AllocateRun(12)
	p.FreeRun(a, 4)
	p.FreeRun(a+8, 4)
	p.FreeRun(a+4, 4) // middle: all three must coalesce
	b, _ := p.AllocateRun(12)
	if b != a {
		t.Errorf("coalesced extent should satisfy full run: got %d want %d", b, a)
	}
}

func TestNumPages(t *testing.T) {
	p := newFile(t, 1024)
	if n := p.NumPages(); n != 0 {
		t.Errorf("fresh file NumPages = %d", n)
	}
	a, _ := p.AllocateRun(7)
	if n := p.NumPages(); n != 7 {
		t.Errorf("after alloc NumPages = %d", n)
	}
	p.FreeRun(a, 3)
	if n := p.NumPages(); n != 4 {
		t.Errorf("after free NumPages = %d", n)
	}
}

func TestStatsAndSeeks(t *testing.T) {
	p := newFile(t, 1024)
	start, _ := p.AllocateRun(10)
	for i := uint64(0); i < 10; i++ {
		if err := p.WritePage(start+PageID(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.ResetStats()
	// Sequential scan: 10 reads, 1 seek (the initial positioning).
	for i := uint64(0); i < 10; i++ {
		if _, err := p.ReadPage(start + PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.PageReads != 10 {
		t.Errorf("PageReads = %d, want 10", s.PageReads)
	}
	if s.Seeks != 1 {
		t.Errorf("sequential scan Seeks = %d, want 1", s.Seeks)
	}
	p.ResetStats()
	// Strided access: every read is a seek.
	for _, off := range []uint64{0, 5, 2, 9, 4} {
		p.ReadPage(start + PageID(off))
	}
	if s := p.Stats(); s.Seeks != 5 {
		t.Errorf("random access Seeks = %d, want 5", s.Seeks)
	}
}

func TestMetaPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.rdnt")
	p, err := Create(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	p.MetaSet(3, 0xdeadbeef)
	p.MetaSet(0, 42)
	id, _ := p.Allocate()
	p.WritePage(id, []byte("persist me"))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.MetaGet(3) != 0xdeadbeef || q.MetaGet(0) != 42 {
		t.Error("meta slots not persisted")
	}
	if q.PageSize() != 2048 {
		t.Errorf("page size not persisted: %d", q.PageSize())
	}
	got, err := q.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:10]) != "persist me" {
		t.Error("page content not persisted")
	}
}

func TestFreeListPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "free.rdnt")
	p, _ := Create(path, 1024)
	a, _ := p.AllocateRun(20)
	p.FreeRun(a, 20)
	p.Close()

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	b, _ := q.AllocateRun(20)
	if b != a {
		t.Errorf("free list not persisted: got %d want %d", b, a)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("expected error opening non-RodentStore file")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error opening missing file")
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.rdnt")
	p, _ := Create(path, 1024)
	id, _ := p.Allocate()
	p.WritePage(id, []byte("important data"))
	p.Close()

	// Flip one byte in the page payload.
	raw, _ := os.ReadFile(path)
	raw[int(id)*1024+100] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.ReadPage(id); err == nil {
		t.Error("expected checksum error on corrupted page")
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	p := newFile(t, 1024)
	const pages = 64
	start, _ := p.AllocateRun(pages)
	for i := 0; i < pages; i++ {
		p.WritePage(start+PageID(i), []byte{byte(i)})
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				id := start + PageID(r.Intn(pages))
				if r.Intn(2) == 0 {
					if err := p.WritePage(id, []byte{byte(i)}); err != nil {
						done <- err
						return
					}
				} else {
					if _, err := p.ReadPage(id); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFreeListBoundedByHeaderPage(t *testing.T) {
	// A fragmented free pattern (free every other extent, so nothing
	// coalesces) must never grow the persisted free list past what the
	// header page can hold: overflow leaks (tracked in stats) instead of
	// corrupting the header. Regression test — ingest workloads that merge
	// many tail batches free hundreds of non-adjacent extents.
	p := newFile(t, MinPageSize)
	const extents = 200
	starts := make([]PageID, extents)
	for i := range starts {
		id, err := p.AllocateRun(2)
		if err != nil {
			t.Fatal(err)
		}
		starts[i] = id
	}
	for i := 0; i < extents; i += 2 {
		if err := p.FreeRun(starts[i], 2); err != nil {
			t.Fatalf("free %d: %v", i, err)
		}
	}
	if got, limit := len(p.free), p.freeListCap(); got > limit {
		t.Errorf("free list %d entries exceeds header capacity %d", got, limit)
	}
	if p.Stats().LeakedPages == 0 {
		t.Error("overflowing frees should leak (tracked), not vanish")
	}
	// The header must survive a sync + reopen round trip.
	path := p.path
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got, limit := len(p2.free), p2.freeListCap(); got > limit || got == 0 {
		t.Errorf("reopened free list = %d entries, want in [1, %d]", got, limit)
	}
}

func TestRecoverPageCarvesFreeList(t *testing.T) {
	// WAL replay can reference pages a stale header still lists as free
	// (the free was never checkpointed, or the allocation that reused the
	// extent was lost). RecoverPage must carve the page out of the free
	// list so later allocations cannot clobber the replayed content.
	p := newFile(t, 1024)
	id, err := p.AllocateRun(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FreeRun(id, 4); err != nil {
		t.Fatal(err)
	}
	target := id + 1
	if err := p.RecoverPage(target, []byte("replayed")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		a, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if a == target {
			t.Fatalf("allocation %d handed out the recovered page", i)
		}
	}
	got, err := p.ReadPage(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "replayed" {
		t.Error("recovered page content lost")
	}
}

func BenchmarkWritePage(b *testing.B) {
	dir := b.TempDir()
	p, _ := Create(filepath.Join(dir, "bench.rdnt"), 1024)
	defer p.Close()
	start, _ := p.AllocateRun(uint64(b.N) + 1)
	payload := make([]byte, p.PayloadSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.WritePage(start+PageID(i), payload)
	}
}

func BenchmarkReadPageSequential(b *testing.B) {
	dir := b.TempDir()
	p, _ := Create(filepath.Join(dir, "bench.rdnt"), 1024)
	defer p.Close()
	const pages = 1024
	start, _ := p.AllocateRun(pages)
	payload := make([]byte, p.PayloadSize())
	for i := 0; i < pages; i++ {
		p.WritePage(start+PageID(i), payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ReadPage(start + PageID(i%pages))
	}
}
