//go:build linux

package fsutil

import (
	"os"
	"syscall"
)

// preallocate allocates blocks and extends the file size in one call
// (fallocate mode 0, the posix_fallocate semantics).
func preallocate(f *os.File, size int64) error {
	return syscall.Fallocate(int(f.Fd()), 0, 0, size)
}
