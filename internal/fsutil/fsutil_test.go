package fsutil

import (
	"errors"
	"os"
	"syscall"
	"testing"
)

func TestPreallocateExtends(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "prealloc")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	if err := Preallocate(f, 8192); err != nil {
		t.Fatalf("preallocate: %v", err)
	}
	st, _ := f.Stat()
	if st.Size() != 8192 {
		t.Fatalf("size = %d, want 8192", st.Size())
	}
	// Never shrinks.
	if err := Preallocate(f, 100); err != nil {
		t.Fatalf("preallocate smaller: %v", err)
	}
	st, _ = f.Stat()
	if st.Size() != 8192 {
		t.Fatalf("size after smaller preallocate = %d", st.Size())
	}
}

func TestPreallocatePropagatesRealErrors(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "prealloc")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	f.Close()
	// fallocate on a closed descriptor is EBADF — a real I/O error, which
	// must propagate rather than be masked by a truncate fallback.
	err = Preallocate(f, 4096)
	if err == nil {
		t.Fatalf("preallocate on closed file succeeded")
	}
	if errors.Is(err, os.ErrClosed) {
		t.Fatalf("error came from the truncate fallback, not fallocate: %v", err)
	}
	if !errors.Is(err, syscall.EBADF) {
		t.Fatalf("err = %v, want EBADF", err)
	}
}

func TestFallocateUnsupportedClassification(t *testing.T) {
	for _, err := range []error{errors.ErrUnsupported, syscall.ENOTSUP, syscall.EOPNOTSUPP, syscall.EINVAL} {
		if !fallocateUnsupported(err) {
			t.Errorf("fallocateUnsupported(%v) = false, want true", err)
		}
	}
	for _, err := range []error{syscall.ENOSPC, syscall.EIO, syscall.EBADF} {
		if fallocateUnsupported(err) {
			t.Errorf("fallocateUnsupported(%v) = true, want false", err)
		}
	}
}
