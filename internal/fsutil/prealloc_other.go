//go:build !linux

package fsutil

import (
	"errors"
	"os"
)

// preallocate is unsupported off Linux; Preallocate falls back to truncate.
func preallocate(f *os.File, size int64) error {
	return errors.ErrUnsupported
}
