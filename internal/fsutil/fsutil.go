// Package fsutil holds small filesystem helpers shared by the pager and the
// write-ahead log.
package fsutil

import (
	"errors"
	"os"
	"syscall"
)

// Preallocate makes the file at least size bytes long with its blocks
// actually allocated where the platform supports it (fallocate on Linux),
// falling back to extending via truncate. Writing into preallocated space
// does not allocate filesystem blocks, so an fsync after such a write
// commits data without a metadata journal transaction — the difference
// between a ~50µs and a ~400µs fsync on ext4, and the reason the WAL
// preallocates its append space.
//
// The truncate fallback applies only when fallocate is unsupported by the
// platform or filesystem (ENOTSUP/EOPNOTSUPP, EINVAL from filesystems that
// reject the syscall, or errors.ErrUnsupported off Linux). Real allocation
// failures — ENOSPC, EIO, EBADF — propagate to the caller: silently
// "falling back" to a truncate that cannot reserve blocks either would
// defer the failure to a later write or fsync, where it is much harder to
// attribute.
func Preallocate(f *os.File, size int64) error {
	if st, err := f.Stat(); err == nil && st.Size() >= size {
		return nil
	}
	err := preallocate(f, size)
	if err == nil {
		return nil
	}
	if !fallocateUnsupported(err) {
		return err
	}
	return f.Truncate(size)
}

// fallocateUnsupported reports whether err means the platform or the
// underlying filesystem cannot do fallocate at all (as opposed to having
// tried and failed).
func fallocateUnsupported(err error) bool {
	if errors.Is(err, errors.ErrUnsupported) {
		return true
	}
	return errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP) ||
		errors.Is(err, syscall.EINVAL)
}
