// Package fsutil holds small filesystem helpers shared by the pager and the
// write-ahead log.
package fsutil

import "os"

// Preallocate makes the file at least size bytes long with its blocks
// actually allocated where the platform supports it (fallocate on Linux),
// falling back to extending via truncate. Writing into preallocated space
// does not allocate filesystem blocks, so an fsync after such a write
// commits data without a metadata journal transaction — the difference
// between a ~50µs and a ~400µs fsync on ext4, and the reason the WAL
// preallocates its append space.
func Preallocate(f *os.File, size int64) error {
	if st, err := f.Stat(); err == nil && st.Size() >= size {
		return nil
	}
	if err := preallocate(f, size); err == nil {
		return nil
	}
	return f.Truncate(size)
}
