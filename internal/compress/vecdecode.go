package compress

// Typed decode fast paths: each codec can additionally decode a chunk
// straight into an unboxed column vector — no value.Value allocation per
// cell. DecodeVec is the single entry point the segment reader uses; it
// dispatches to the codec's typed decoder for the column kind and falls
// back to the boxed Decode (plus a per-value unboxing pass) for codecs or
// kinds without one, so every registered codec works through the vector
// path with identical results.

import (
	"encoding/binary"
	"fmt"
	"math"

	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// Int64Decoder is the typed fast path for Int columns.
type Int64Decoder interface {
	// DecodeInt64s appends the chunk's values to dst.
	DecodeInt64s(src []byte, dst []int64) ([]int64, error)
}

// Float64Decoder is the typed fast path for Float columns.
type Float64Decoder interface {
	// DecodeFloat64s appends the chunk's values to dst.
	DecodeFloat64s(src []byte, dst []float64) ([]float64, error)
}

// BoolDecoder is the typed fast path for Bool columns (0/1 into int64s).
type BoolDecoder interface {
	// DecodeBools appends the chunk's values to dst as 0/1.
	DecodeBools(src []byte, dst []int64) ([]int64, error)
}

// BytesDecoder is the typed fast path for Str and Bytes columns: values are
// appended to the vector's byte arena without string allocation.
type BytesDecoder interface {
	// DecodeBytesVec appends the chunk's values to dst.
	DecodeBytesVec(src []byte, dst *vec.Vector) error
}

// DecodeVec decodes one chunk of kind k into dst, which must have been
// Reset(k). Codecs implementing the typed decoder for k decode without
// boxing; anything else routes through the boxed Decode adapter.
func DecodeVec(c Codec, src []byte, k value.Kind, dst *vec.Vector) error {
	switch k {
	case value.Int:
		if d, ok := c.(Int64Decoder); ok {
			out, err := d.DecodeInt64s(src, dst.Int64s[:0])
			if err != nil {
				return err
			}
			dst.Int64s = out
			dst.SyncLen()
			return nil
		}
	case value.Float:
		if d, ok := c.(Float64Decoder); ok {
			out, err := d.DecodeFloat64s(src, dst.Float64s[:0])
			if err != nil {
				return err
			}
			dst.Float64s = out
			dst.SyncLen()
			return nil
		}
	case value.Bool:
		if d, ok := c.(BoolDecoder); ok {
			out, err := d.DecodeBools(src, dst.Int64s[:0])
			if err != nil {
				return err
			}
			dst.Int64s = out
			dst.SyncLen()
			return nil
		}
	case value.Str, value.Bytes:
		if d, ok := c.(BytesDecoder); ok {
			return d.DecodeBytesVec(src, dst)
		}
	}
	// Fallback adapter: boxed decode, then unbox into the vector.
	vals, err := c.Decode(src, k)
	if err != nil {
		return err
	}
	for _, v := range vals {
		if err := dst.AppendValue(v); err != nil {
			return err
		}
	}
	return nil
}

// chunkHeader parses the leading uvarint row count shared by every codec.
func chunkHeader(src []byte) (n uint64, off int, err error) {
	n, off = binary.Uvarint(src)
	if off <= 0 {
		return 0, 0, fmt.Errorf("compress: bad block header")
	}
	return n, off, nil
}

// --- None ---

// DecodeInt64s implements Int64Decoder.
func (None) DecodeInt64s(src []byte, dst []int64) ([]int64, error) {
	n, off, err := chunkHeader(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(src)-off)/8 < n {
		return nil, fmt.Errorf("compress: short int block")
	}
	for i := uint64(0); i < n; i++ {
		dst = append(dst, int64(binary.LittleEndian.Uint64(src[off:])))
		off += 8
	}
	return dst, nil
}

// DecodeFloat64s implements Float64Decoder.
func (None) DecodeFloat64s(src []byte, dst []float64) ([]float64, error) {
	n, off, err := chunkHeader(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(src)-off)/8 < n {
		return nil, fmt.Errorf("compress: short float block")
	}
	for i := uint64(0); i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(src[off:])))
		off += 8
	}
	return dst, nil
}

// DecodeBools implements BoolDecoder.
func (None) DecodeBools(src []byte, dst []int64) ([]int64, error) {
	n, off, err := chunkHeader(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(src)-off) < n {
		return nil, fmt.Errorf("compress: short bool block")
	}
	for i := uint64(0); i < n; i++ {
		var x int64
		if src[off] != 0 {
			x = 1
		}
		dst = append(dst, x)
		off++
	}
	return dst, nil
}

// DecodeBytesVec implements BytesDecoder.
func (None) DecodeBytesVec(src []byte, dst *vec.Vector) error {
	n, off, err := chunkHeader(src)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(src[off:])
		if sz <= 0 || uint64(len(src)-off-sz) < l {
			return fmt.Errorf("compress: short byte block")
		}
		off += sz
		dst.AppendBytes(src[off : off+int(l)])
		off += int(l)
	}
	return nil
}

// --- Delta ---

// deltaWords decodes the delta-of-delta stream into raw uint64 words.
func deltaWords(src []byte, emit func(uint64)) error {
	n, off, err := chunkHeader(src)
	if err != nil {
		return fmt.Errorf("compress: bad delta header")
	}
	var prev, prevDelta uint64
	for i := uint64(0); i < n; i++ {
		var cur uint64
		switch i {
		case 0:
			if len(src[off:]) < 8 {
				return fmt.Errorf("compress: short delta block")
			}
			cur = binary.LittleEndian.Uint64(src[off:])
			off += 8
		case 1:
			d, used := binary.Varint(src[off:])
			if used <= 0 {
				return fmt.Errorf("compress: bad delta varint")
			}
			off += used
			prevDelta = uint64(d)
			cur = prev + prevDelta
		default:
			dd, used := binary.Varint(src[off:])
			if used <= 0 {
				return fmt.Errorf("compress: bad delta varint")
			}
			off += used
			prevDelta += uint64(dd)
			cur = prev + prevDelta
		}
		prev = cur
		emit(cur)
	}
	return nil
}

// DecodeInt64s implements Int64Decoder.
func (Delta) DecodeInt64s(src []byte, dst []int64) ([]int64, error) {
	err := deltaWords(src, func(u uint64) { dst = append(dst, int64(u)) })
	return dst, err
}

// DecodeFloat64s implements Float64Decoder.
func (Delta) DecodeFloat64s(src []byte, dst []float64) ([]float64, error) {
	err := deltaWords(src, func(u uint64) { dst = append(dst, math.Float64frombits(u)) })
	return dst, err
}

// --- RLE ---

// rleRuns decodes the run stream, calling emit(value bytes, run length).
// The value bytes are the plain encoding of one value of kind k.
func rleRuns(src []byte, k value.Kind, emit func([]byte, uint64) error) error {
	n, off, err := chunkHeader(src)
	if err != nil {
		return fmt.Errorf("compress: bad rle header")
	}
	var total uint64
	for total < n {
		run, used := binary.Uvarint(src[off:])
		if used <= 0 {
			return fmt.Errorf("compress: bad rle run length")
		}
		off += used
		var vlen int
		switch k {
		case value.Int, value.Float:
			vlen = 8
		case value.Bool:
			vlen = 1
		case value.Str, value.Bytes:
			l, sz := binary.Uvarint(src[off:])
			if sz <= 0 {
				return fmt.Errorf("compress: bad rle value")
			}
			vlen = sz + int(l)
		default:
			return fmt.Errorf("compress: rle typed decode unsupported for %s", k)
		}
		if off+vlen > len(src) {
			return fmt.Errorf("compress: short rle block")
		}
		if err := emit(src[off:off+vlen], run); err != nil {
			return err
		}
		off += vlen
		total += run
	}
	if total != n {
		return fmt.Errorf("compress: rle runs exceed block size")
	}
	return nil
}

// DecodeInt64s implements Int64Decoder.
func (RLE) DecodeInt64s(src []byte, dst []int64) ([]int64, error) {
	err := rleRuns(src, value.Int, func(b []byte, run uint64) error {
		x := int64(binary.LittleEndian.Uint64(b))
		for r := uint64(0); r < run; r++ {
			dst = append(dst, x)
		}
		return nil
	})
	return dst, err
}

// DecodeFloat64s implements Float64Decoder.
func (RLE) DecodeFloat64s(src []byte, dst []float64) ([]float64, error) {
	err := rleRuns(src, value.Float, func(b []byte, run uint64) error {
		x := math.Float64frombits(binary.LittleEndian.Uint64(b))
		for r := uint64(0); r < run; r++ {
			dst = append(dst, x)
		}
		return nil
	})
	return dst, err
}

// DecodeBools implements BoolDecoder.
func (RLE) DecodeBools(src []byte, dst []int64) ([]int64, error) {
	err := rleRuns(src, value.Bool, func(b []byte, run uint64) error {
		var x int64
		if b[0] != 0 {
			x = 1
		}
		for r := uint64(0); r < run; r++ {
			dst = append(dst, x)
		}
		return nil
	})
	return dst, err
}

// DecodeBytesVec implements BytesDecoder.
func (RLE) DecodeBytesVec(src []byte, dst *vec.Vector) error {
	return rleRuns(src, value.Str, func(b []byte, run uint64) error {
		l, sz := binary.Uvarint(b)
		payload := b[sz : sz+int(l)]
		for r := uint64(0); r < run; r++ {
			dst.AppendBytes(payload)
		}
		return nil
	})
}

// --- Dict ---

// dictHeader parses counts and returns the offset of the dictionary values.
func dictHeader(src []byte) (n, nd uint64, off int, err error) {
	n, off, err = chunkHeader(src)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("compress: bad dict header")
	}
	nd, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return 0, 0, 0, fmt.Errorf("compress: bad dict size")
	}
	return n, nd, off + sz, nil
}

// DecodeInt64s implements Int64Decoder.
func (Dict) DecodeInt64s(src []byte, dst []int64) ([]int64, error) {
	n, nd, off, err := dictHeader(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(src)-off)/8 < nd {
		return nil, fmt.Errorf("compress: short dict block")
	}
	dict := make([]int64, nd)
	for i := range dict {
		dict[i] = int64(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
	return dictGather(src[off:], n, dict, dst)
}

// DecodeFloat64s implements Float64Decoder.
func (Dict) DecodeFloat64s(src []byte, dst []float64) ([]float64, error) {
	n, nd, off, err := dictHeader(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(src)-off)/8 < nd {
		return nil, fmt.Errorf("compress: short dict block")
	}
	dict := make([]float64, nd)
	for i := range dict {
		dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
	return dictGather(src[off:], n, dict, dst)
}

// dictGather appends dict[index] for each of the n uvarint indexes in src.
func dictGather[T any](src []byte, n uint64, dict []T, dst []T) ([]T, error) {
	off := 0
	for i := uint64(0); i < n; i++ {
		idx, used := binary.Uvarint(src[off:])
		if used <= 0 || idx >= uint64(len(dict)) {
			return nil, fmt.Errorf("compress: bad dict index")
		}
		off += used
		dst = append(dst, dict[idx])
	}
	return dst, nil
}

// DecodeBytesVec implements BytesDecoder.
func (Dict) DecodeBytesVec(src []byte, dst *vec.Vector) error {
	n, nd, off, err := dictHeader(src)
	if err != nil {
		return err
	}
	dict := make([][]byte, nd)
	for i := range dict {
		l, sz := binary.Uvarint(src[off:])
		if sz <= 0 || uint64(len(src)-off-sz) < l {
			return fmt.Errorf("compress: short dict block")
		}
		off += sz
		dict[i] = src[off : off+int(l)]
		off += int(l)
	}
	for i := uint64(0); i < n; i++ {
		idx, used := binary.Uvarint(src[off:])
		if used <= 0 || idx >= uint64(len(dict)) {
			return fmt.Errorf("compress: bad dict index")
		}
		off += used
		dst.AppendBytes(dict[idx])
	}
	return nil
}

// --- BitPack ---

// DecodeInt64s implements Int64Decoder.
func (BitPack) DecodeInt64s(src []byte, dst []int64) ([]int64, error) {
	n, off, err := chunkHeader(src)
	if err != nil {
		return nil, fmt.Errorf("compress: bad bitpack header")
	}
	if n == 0 {
		return dst, nil
	}
	lo, used := binary.Varint(src[off:])
	if used <= 0 {
		return nil, fmt.Errorf("compress: bad bitpack base")
	}
	off += used
	if off >= len(src) {
		return nil, fmt.Errorf("compress: short bitpack block")
	}
	width := int(src[off])
	off++
	if width == 0 {
		for i := uint64(0); i < n; i++ {
			dst = append(dst, lo)
		}
		return dst, nil
	}
	var acc uint64
	bits := 0
	mask := uint64(1)<<width - 1
	for i := uint64(0); i < n; i++ {
		for bits < width {
			if off >= len(src) {
				return nil, fmt.Errorf("compress: short bitpack block")
			}
			acc |= uint64(src[off]) << bits
			off++
			bits += 8
		}
		dst = append(dst, lo+int64(acc&mask))
		acc >>= width
		bits -= width
	}
	return dst, nil
}
