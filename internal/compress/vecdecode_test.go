package compress

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// randVals builds a random null-free column of kind k with plenty of
// repetition (so rle/dict have real runs) and extremes (so delta/bitpack hit
// their corner cases).
func randVals(r *rand.Rand, k value.Kind, n int) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		switch k {
		case value.Int:
			switch r.Intn(4) {
			case 0:
				out[i] = value.NewInt(int64(r.Intn(5)))
			case 1:
				out[i] = value.NewInt(r.Int63() - r.Int63())
			default:
				out[i] = value.NewInt(int64(i * 3))
			}
		case value.Float:
			switch r.Intn(5) {
			case 0:
				out[i] = value.NewFloat(math.NaN())
			case 1:
				out[i] = value.NewFloat(math.Inf(1))
			default:
				out[i] = value.NewFloat(r.NormFloat64() * 1e3)
			}
		case value.Bool:
			out[i] = value.NewBool(r.Intn(2) == 0)
		case value.Str:
			out[i] = value.NewString(fmt.Sprintf("s%d", r.Intn(6)))
		case value.Bytes:
			b := make([]byte, r.Intn(6))
			r.Read(b)
			out[i] = value.NewBytes(b)
		}
	}
	return out
}

// kindsFor lists the kinds a codec accepts.
func kindsFor(name string) []value.Kind {
	switch name {
	case "delta":
		return []value.Kind{value.Int, value.Float}
	case "bitpack":
		return []value.Kind{value.Int}
	default:
		return []value.Kind{value.Int, value.Float, value.Bool, value.Str, value.Bytes}
	}
}

// TestDecodeVecMatchesBoxed checks the typed fast paths (and the fallback
// adapter) against the boxed Decode for every codec and kind.
func TestDecodeVecMatchesBoxed(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, name := range Names() {
		c, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kindsFor(name) {
			for _, n := range []int{0, 1, 7, 300} {
				vals := randVals(r, k, n)
				chunk, err := c.Encode(nil, k, vals)
				if err != nil {
					t.Fatalf("%s/%s: encode: %v", name, k, err)
				}
				boxed, err := c.Decode(chunk, k)
				if err != nil {
					t.Fatalf("%s/%s: decode: %v", name, k, err)
				}
				var v vec.Vector
				v.Reset(k)
				if err := DecodeVec(c, chunk, k, &v); err != nil {
					t.Fatalf("%s/%s: DecodeVec: %v", name, k, err)
				}
				if v.Len() != len(boxed) {
					t.Fatalf("%s/%s: vec len %d, boxed len %d", name, k, v.Len(), len(boxed))
				}
				for i := range boxed {
					got, want := v.Value(i), boxed[i]
					// NaN != NaN under Compare? Compare treats NaNs equal;
					// use it as the equality oracle like the scan does.
					if !value.Equal(got, want) {
						t.Fatalf("%s/%s row %d: got %v want %v", name, k, i, got, want)
					}
				}
			}
		}
	}
}

// boxedOnly wraps a codec hiding its typed decoders, forcing DecodeVec down
// the fallback adapter.
type boxedOnly struct{ c Codec }

func (b boxedOnly) Name() string { return b.c.Name() }
func (b boxedOnly) Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error) {
	return b.c.Encode(dst, k, vals)
}
func (b boxedOnly) Decode(src []byte, k value.Kind) ([]value.Value, error) {
	return b.c.Decode(src, k)
}

func TestDecodeVecFallbackAdapter(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range []value.Kind{value.Int, value.Float, value.Str, value.Bool, value.Bytes} {
		vals := randVals(r, k, 50)
		chunk, err := (None{}).Encode(nil, k, vals)
		if err != nil {
			t.Fatal(err)
		}
		var v vec.Vector
		v.Reset(k)
		if err := DecodeVec(boxedOnly{None{}}, chunk, k, &v); err != nil {
			t.Fatal(err)
		}
		if v.Len() != len(vals) {
			t.Fatalf("%s: len %d want %d", k, v.Len(), len(vals))
		}
		for i := range vals {
			if !value.Equal(v.Value(i), vals[i]) {
				t.Fatalf("%s row %d: got %v want %v", k, i, v.Value(i), vals[i])
			}
		}
	}
}

// TestDecodeVecCorruptInputs checks the typed paths error (rather than
// panic or truncate) on the corrupt inputs the boxed paths reject.
func TestDecodeVecCorruptInputs(t *testing.T) {
	for _, name := range Names() {
		c, _ := Lookup(name)
		for _, k := range kindsFor(name) {
			vals := randVals(rand.New(rand.NewSource(3)), k, 20)
			chunk, err := c.Encode(nil, k, vals)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 1; cut < len(chunk); cut += 3 {
				truncated := chunk[:len(chunk)-cut]
				_, boxedErr := c.Decode(truncated, k)
				var v vec.Vector
				v.Reset(k)
				vecErr := DecodeVec(c, truncated, k, &v)
				if boxedErr != nil && vecErr == nil && v.Len() == len(vals) {
					t.Fatalf("%s/%s cut=%d: boxed errored (%v), vec decoded fully", name, k, cut, boxedErr)
				}
			}
		}
	}
}
