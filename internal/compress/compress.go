// Package compress implements the data-reduction transforms of the storage
// algebra (paper §3.5.2). The paper supports "a wide range of compression
// schemes by producing nestings through user-defined functions" and gives
// delta compression as the worked example:
//
//	∆(N) ≡ [a − b | [a, b] ← [N, [0, n | \n ← N, limit count(N)−1]]]
//
// Codecs here are vector codecs: they encode a block of column values (one
// cell, chunk or page run) into bytes and back. Every codec is lossless.
// The codec registry maps names (as written in algebra expressions, e.g.
// delta[lat](...)) to implementations so layouts can be persisted in the
// catalog and re-instantiated on open.
package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"rodentstore/internal/value"
)

// Codec encodes and decodes one block of same-kind values.
type Codec interface {
	// Name is the codec's identifier in the algebra grammar and catalog.
	Name() string
	// Encode appends the encoding of vals (all of kind k) to dst.
	Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error)
	// Decode parses one block encoded by Encode.
	Decode(src []byte, k value.Kind) ([]value.Value, error)
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	switch name {
	case "none", "":
		return None{}, nil
	case "delta":
		return Delta{}, nil
	case "rle":
		return RLE{}, nil
	case "dict":
		return Dict{}, nil
	case "bitpack":
		return BitPack{}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec %q", name)
}

// Names lists the registered codec names (for the optimizer's search space).
func Names() []string { return []string{"none", "delta", "rle", "dict", "bitpack"} }

// None is the identity codec: values are stored with their plain encoding.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// Encode implements Codec.
func (None) Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		if v.IsNull() {
			return nil, fmt.Errorf("compress: null value in block (nulls must be isolated before compression)")
		}
		dst = value.AppendValue(dst, k, v)
	}
	return dst, nil
}

// Decode implements Codec.
func (None) Decode(src []byte, k value.Kind) ([]value.Value, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("compress: bad block header")
	}
	off := sz
	out := make([]value.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := value.DecodeValue(src[off:], k)
		if err != nil {
			return nil, err
		}
		off += used
		out = append(out, v)
	}
	return out, nil
}

// Delta stores the first value raw, the second as a zigzag-varint first
// difference, and the rest as second differences (delta-of-delta).
// Integers difference directly; floats difference their IEEE-754 bit
// patterns. Consecutive GPS readings move by small, near-constant
// increments — the paper's premise ("cars move continuously by small
// increments ... more efficient to store these small increments") — so the
// first differences are small and the second differences are tiny, which is
// exactly what varints reward. Regular timestamps collapse to one byte per
// value. Everything is exact uint64 arithmetic: the codec is lossless for
// every input including NaN and infinities.
type Delta struct{}

// Name implements Codec.
func (Delta) Name() string { return "delta" }

// Encode implements Codec.
func (Delta) Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error) {
	if k != value.Int && k != value.Float {
		return nil, fmt.Errorf("compress: delta requires int or float column, got %s", k)
	}
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	var prev, prevDelta uint64
	for i, v := range vals {
		if v.IsNull() {
			return nil, fmt.Errorf("compress: null value in delta block")
		}
		var cur uint64
		if k == value.Int {
			cur = uint64(v.Int())
		} else {
			cur = math.Float64bits(v.Float())
		}
		switch i {
		case 0:
			dst = binary.LittleEndian.AppendUint64(dst, cur)
		case 1:
			prevDelta = cur - prev
			dst = binary.AppendVarint(dst, int64(prevDelta))
		default:
			delta := cur - prev
			dst = binary.AppendVarint(dst, int64(delta-prevDelta))
			prevDelta = delta
		}
		prev = cur
	}
	return dst, nil
}

// Decode implements Codec.
func (Delta) Decode(src []byte, k value.Kind) ([]value.Value, error) {
	if k != value.Int && k != value.Float {
		return nil, fmt.Errorf("compress: delta requires int or float column, got %s", k)
	}
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("compress: bad delta header")
	}
	off := sz
	out := make([]value.Value, 0, n)
	var prev, prevDelta uint64
	for i := uint64(0); i < n; i++ {
		var cur uint64
		switch i {
		case 0:
			if len(src[off:]) < 8 {
				return nil, fmt.Errorf("compress: short delta block")
			}
			cur = binary.LittleEndian.Uint64(src[off:])
			off += 8
		case 1:
			d, used := binary.Varint(src[off:])
			if used <= 0 {
				return nil, fmt.Errorf("compress: bad delta varint")
			}
			off += used
			prevDelta = uint64(d)
			cur = prev + prevDelta
		default:
			dd, used := binary.Varint(src[off:])
			if used <= 0 {
				return nil, fmt.Errorf("compress: bad delta varint")
			}
			off += used
			prevDelta += uint64(dd)
			cur = prev + prevDelta
		}
		prev = cur
		if k == value.Int {
			out = append(out, value.NewInt(int64(cur)))
		} else {
			out = append(out, value.NewFloat(math.Float64frombits(cur)))
		}
	}
	return out, nil
}

// RLE run-length encodes repeated values as (run length, value) pairs. It is
// the natural codec for sorted low-cardinality columns (the paper's fold over
// prejoined data produces exactly such repetition).
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Encode implements Codec.
func (RLE) Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for i := 0; i < len(vals); {
		if vals[i].IsNull() {
			return nil, fmt.Errorf("compress: null value in rle block")
		}
		j := i + 1
		for j < len(vals) && value.Equal(vals[j], vals[i]) {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(j-i))
		dst = value.AppendValue(dst, k, vals[i])
		i = j
	}
	return dst, nil
}

// Decode implements Codec.
func (RLE) Decode(src []byte, k value.Kind) ([]value.Value, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("compress: bad rle header")
	}
	off := sz
	out := make([]value.Value, 0, n)
	for uint64(len(out)) < n {
		run, used := binary.Uvarint(src[off:])
		if used <= 0 {
			return nil, fmt.Errorf("compress: bad rle run length")
		}
		off += used
		v, used2, err := value.DecodeValue(src[off:], k)
		if err != nil {
			return nil, err
		}
		off += used2
		for r := uint64(0); r < run; r++ {
			out = append(out, v)
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("compress: rle runs exceed block size")
	}
	return out, nil
}

// Dict dictionary-encodes a block: distinct values are stored once in sorted
// order, then each position stores a varint dictionary index. Best for
// low-cardinality string columns (vehicle IDs, zip codes).
type Dict struct{}

// Name implements Codec.
func (Dict) Name() string { return "dict" }

// Encode implements Codec.
func (Dict) Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error) {
	distinct := make([]value.Value, 0)
	seen := make(map[uint64][]int) // hash -> indexes into distinct
	indexOf := func(v value.Value) int {
		h := v.Hash()
		for _, di := range seen[h] {
			if value.Equal(distinct[di], v) {
				return di
			}
		}
		return -1
	}
	for _, v := range vals {
		if v.IsNull() {
			return nil, fmt.Errorf("compress: null value in dict block")
		}
		if indexOf(v) < 0 {
			seen[v.Hash()] = append(seen[v.Hash()], len(distinct))
			distinct = append(distinct, v)
		}
	}
	// Sort the dictionary so equal blocks encode identically and decoded
	// dictionaries support binary search.
	perm := make([]int, len(distinct))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		return value.Compare(distinct[perm[a]], distinct[perm[b]]) < 0
	})
	sorted := make([]value.Value, len(distinct))
	rank := make([]int, len(distinct))
	for newIdx, oldIdx := range perm {
		sorted[newIdx] = distinct[oldIdx]
		rank[oldIdx] = newIdx
	}

	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	dst = binary.AppendUvarint(dst, uint64(len(sorted)))
	for _, v := range sorted {
		dst = value.AppendValue(dst, k, v)
	}
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(rank[indexOf(v)]))
	}
	return dst, nil
}

// Decode implements Codec.
func (Dict) Decode(src []byte, k value.Kind) ([]value.Value, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("compress: bad dict header")
	}
	off := sz
	nd, sz2 := binary.Uvarint(src[off:])
	if sz2 <= 0 {
		return nil, fmt.Errorf("compress: bad dict size")
	}
	off += sz2
	dict := make([]value.Value, 0, nd)
	for i := uint64(0); i < nd; i++ {
		v, used, err := value.DecodeValue(src[off:], k)
		if err != nil {
			return nil, err
		}
		off += used
		dict = append(dict, v)
	}
	out := make([]value.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		idx, used := binary.Uvarint(src[off:])
		if used <= 0 || idx >= uint64(len(dict)) {
			return nil, fmt.Errorf("compress: bad dict index")
		}
		off += used
		out = append(out, dict[idx])
	}
	return out, nil
}

// BitPack frame-of-reference bit-packs an integer block: it stores the block
// minimum and then each value's offset from it in the minimal fixed bit
// width. Random access within a block is O(1), which matters for the array
// direct-offsetting the paper discusses in §3.1 (Data Reordering).
type BitPack struct{}

// Name implements Codec.
func (BitPack) Name() string { return "bitpack" }

// Encode implements Codec.
func (BitPack) Encode(dst []byte, k value.Kind, vals []value.Value) ([]byte, error) {
	if k != value.Int {
		return nil, fmt.Errorf("compress: bitpack requires int column, got %s", k)
	}
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst, nil
	}
	lo, hi := vals[0].Int(), vals[0].Int()
	for _, v := range vals {
		if v.IsNull() {
			return nil, fmt.Errorf("compress: null value in bitpack block")
		}
		if x := v.Int(); x < lo {
			lo = x
		} else if x > hi {
			hi = x
		}
	}
	span := uint64(hi - lo)
	width := 0
	for span>>width != 0 {
		width++
	}
	dst = binary.AppendVarint(dst, lo)
	dst = append(dst, byte(width))
	if width == 0 {
		return dst, nil
	}
	var acc uint64
	bits := 0
	for _, v := range vals {
		acc |= uint64(v.Int()-lo) << bits
		bits += width
		for bits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst, nil
}

// Decode implements Codec.
func (BitPack) Decode(src []byte, k value.Kind) ([]value.Value, error) {
	if k != value.Int {
		return nil, fmt.Errorf("compress: bitpack requires int column, got %s", k)
	}
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("compress: bad bitpack header")
	}
	off := sz
	if n == 0 {
		return []value.Value{}, nil
	}
	lo, used := binary.Varint(src[off:])
	if used <= 0 {
		return nil, fmt.Errorf("compress: bad bitpack base")
	}
	off += used
	if off >= len(src) {
		return nil, fmt.Errorf("compress: short bitpack block")
	}
	width := int(src[off])
	off++
	out := make([]value.Value, 0, n)
	if width == 0 {
		for i := uint64(0); i < n; i++ {
			out = append(out, value.NewInt(lo))
		}
		return out, nil
	}
	var acc uint64
	bits := 0
	mask := uint64(1)<<width - 1
	for i := uint64(0); i < n; i++ {
		for bits < width {
			if off >= len(src) {
				return nil, fmt.Errorf("compress: short bitpack block")
			}
			acc |= uint64(src[off]) << bits
			off++
			bits += 8
		}
		out = append(out, value.NewInt(lo+int64(acc&mask)))
		acc >>= width
		bits -= width
	}
	return out, nil
}
