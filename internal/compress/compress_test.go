package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rodentstore/internal/value"
)

func roundtrip(t *testing.T, c Codec, k value.Kind, vals []value.Value) []byte {
	t.Helper()
	buf, err := c.Encode(nil, k, vals)
	if err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	got, err := c.Decode(buf, k)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: got %d values, want %d", c.Name(), len(got), len(vals))
	}
	for i := range vals {
		if !value.Equal(got[i], vals[i]) {
			t.Fatalf("%s: value %d: got %v want %v", c.Name(), i, got[i], vals[i])
		}
	}
	return buf
}

func ints(xs ...int64) []value.Value {
	out := make([]value.Value, len(xs))
	for i, x := range xs {
		out[i] = value.NewInt(x)
	}
	return out
}

func floats(xs ...float64) []value.Value {
	out := make([]value.Value, len(xs))
	for i, x := range xs {
		out[i] = value.NewFloat(x)
	}
	return out
}

func strs(xs ...string) []value.Value {
	out := make([]value.Value, len(xs))
	for i, x := range xs {
		out[i] = value.NewString(x)
	}
	return out
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		c, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, c.Name())
		}
	}
	if c, err := Lookup(""); err != nil || c.Name() != "none" {
		t.Error("empty name should resolve to none")
	}
	if _, err := Lookup("zip9000"); err == nil {
		t.Error("expected error for unknown codec")
	}
}

func TestNoneRoundtrip(t *testing.T) {
	roundtrip(t, None{}, value.Int, ints(1, 2, 3, -9))
	roundtrip(t, None{}, value.Str, strs("a", "", "long string here"))
	roundtrip(t, None{}, value.Float, floats(1.5, -2.5))
	roundtrip(t, None{}, value.Int, nil)
}

func TestDeltaRoundtripInt(t *testing.T) {
	roundtrip(t, Delta{}, value.Int, ints(100, 101, 103, 103, 99, -5))
	roundtrip(t, Delta{}, value.Int, ints(42))
	roundtrip(t, Delta{}, value.Int, nil)
}

func TestDeltaRoundtripFloat(t *testing.T) {
	roundtrip(t, Delta{}, value.Float, floats(42.3601, 42.3602, 42.3604, 42.3601))
	roundtrip(t, Delta{}, value.Float, floats(math.Inf(1), math.Inf(-1), 0, -0.0))
}

func TestDeltaCompressesTrajectories(t *testing.T) {
	// GPS-like data: small increments must compress well below raw 8 B/value.
	vals := make([]value.Value, 1000)
	lat := 42.36
	r := rand.New(rand.NewSource(1))
	for i := range vals {
		lat += (r.Float64() - 0.5) * 1e-4
		vals[i] = value.NewFloat(lat)
	}
	buf := roundtrip(t, Delta{}, value.Float, vals)
	raw, _ := None{}.Encode(nil, value.Float, vals)
	if len(buf) >= len(raw)*3/4 {
		t.Errorf("delta on trajectory data should save >25%%: delta=%d raw=%d", len(buf), len(raw))
	}
}

func TestDeltaRejectsStrings(t *testing.T) {
	if _, err := (Delta{}).Encode(nil, value.Str, strs("a")); err == nil {
		t.Error("expected error for string delta")
	}
	if _, err := (Delta{}).Decode([]byte{1}, value.Str); err == nil {
		t.Error("expected error for string delta decode")
	}
}

func TestDeltaQuick(t *testing.T) {
	f := func(xs []int64) bool {
		vals := make([]value.Value, len(xs))
		for i, x := range xs {
			vals[i] = value.NewInt(x)
		}
		buf, err := (Delta{}).Encode(nil, value.Int, vals)
		if err != nil {
			return false
		}
		got, err := (Delta{}).Decode(buf, value.Int)
		if err != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i].Int() != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRLERoundtrip(t *testing.T) {
	roundtrip(t, RLE{}, value.Int, ints(1, 1, 1, 2, 2, 3, 1))
	roundtrip(t, RLE{}, value.Str, strs("a", "a", "b"))
	roundtrip(t, RLE{}, value.Int, nil)
}

func TestRLECompressesRuns(t *testing.T) {
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewInt(int64(i / 200)) // 5 long runs
	}
	buf := roundtrip(t, RLE{}, value.Int, vals)
	if len(buf) > 100 {
		t.Errorf("RLE of 5 runs should be tiny, got %d bytes", len(buf))
	}
}

func TestDictRoundtrip(t *testing.T) {
	roundtrip(t, Dict{}, value.Str, strs("boston", "cambridge", "boston", "boston", "somerville"))
	roundtrip(t, Dict{}, value.Int, ints(5, 5, 9, 5, 9))
	roundtrip(t, Dict{}, value.Str, nil)
}

func TestDictCompressesLowCardinality(t *testing.T) {
	vals := make([]value.Value, 2000)
	cities := []string{"boston-massachusetts", "cambridge-massachusetts", "somerville-massachusetts"}
	r := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = value.NewString(cities[r.Intn(len(cities))])
	}
	buf := roundtrip(t, Dict{}, value.Str, vals)
	raw, _ := None{}.Encode(nil, value.Str, vals)
	if len(buf) >= len(raw)/4 {
		t.Errorf("dict should save >75%% on 3-value column: dict=%d raw=%d", len(buf), len(raw))
	}
}

func TestDictDeterministic(t *testing.T) {
	// Same multiset in different arrival order produces the same sorted
	// dictionary, so encodings have identical length, and re-encoding the
	// same block is byte-identical.
	a, _ := (Dict{}).Encode(nil, value.Str, strs("b", "a", "b"))
	b, _ := (Dict{}).Encode(nil, value.Str, strs("b", "b", "a"))
	if len(a) != len(b) {
		t.Errorf("permuted blocks should encode to the same length: %d vs %d", len(a), len(b))
	}
	a2, _ := (Dict{}).Encode(nil, value.Str, strs("b", "a", "b"))
	if string(a) != string(a2) {
		t.Error("dict encoding must be deterministic")
	}
}

func TestBitPackRoundtrip(t *testing.T) {
	roundtrip(t, BitPack{}, value.Int, ints(100, 101, 102, 100, 115))
	roundtrip(t, BitPack{}, value.Int, ints(7, 7, 7)) // width 0
	roundtrip(t, BitPack{}, value.Int, ints(-1000, 1000))
	roundtrip(t, BitPack{}, value.Int, nil)
	roundtrip(t, BitPack{}, value.Int, ints(math.MinInt64, math.MaxInt64))
}

func TestBitPackQuick(t *testing.T) {
	f := func(xs []int32, base int64) bool {
		vals := make([]value.Value, len(xs))
		for i, x := range xs {
			vals[i] = value.NewInt(base + int64(x))
		}
		buf, err := (BitPack{}).Encode(nil, value.Int, vals)
		if err != nil {
			return false
		}
		got, err := (BitPack{}).Decode(buf, value.Int)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i].Int() != vals[i].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitPackCompressesNarrowRange(t *testing.T) {
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewInt(1700000000 + int64(i%16)) // 4-bit span
	}
	buf := roundtrip(t, BitPack{}, value.Int, vals)
	if len(buf) > 600 { // 4 bits * 1000 = 500 B + header
		t.Errorf("bitpack of 4-bit span should be ~500 B, got %d", len(buf))
	}
}

func TestBitPackRejectsFloats(t *testing.T) {
	if _, err := (BitPack{}).Encode(nil, value.Float, floats(1)); err == nil {
		t.Error("expected error")
	}
}

func TestNullsRejected(t *testing.T) {
	withNull := []value.Value{value.NewInt(1), value.NullValue()}
	for _, c := range []Codec{None{}, Delta{}, RLE{}, Dict{}, BitPack{}} {
		if _, err := c.Encode(nil, value.Int, withNull); err == nil {
			t.Errorf("%s: expected error on null value", c.Name())
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	garbage := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	for _, c := range []Codec{None{}, Delta{}, RLE{}, Dict{}, BitPack{}} {
		// Must error or return values, never panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panicked on garbage: %v", c.Name(), r)
				}
			}()
			c.Decode(garbage, value.Int)
			c.Decode(nil, value.Int)
		}()
	}
}

func BenchmarkDeltaEncodeFloat(b *testing.B) {
	vals := make([]value.Value, 1000)
	lat := 42.36
	for i := range vals {
		lat += 1e-5
		vals[i] = value.NewFloat(lat)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ := (Delta{}).Encode(nil, value.Float, vals)
		_ = buf
	}
}

func BenchmarkDictEncode(b *testing.B) {
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewString([]string{"a", "bb", "ccc"}[i%3])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ := (Dict{}).Encode(nil, value.Str, vals)
		_ = buf
	}
}
