package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
)

// SectorSize is the granularity at which torn writes are modeled: a crashed
// write persists a whole number of sectors, never a partial one. 512 bytes is
// the traditional disk atomicity unit.
const SectorSize = 512

// ErrInjected is the sentinel wrapped by every fault the Fault file system
// injects; errors.Is(err, ErrInjected) distinguishes injected faults from
// logic errors in tests.
var ErrInjected = errors.New("vfs: injected fault")

// OpKind classifies an I/O operation for injection and observation.
type OpKind int

// The injectable operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpSync
	OpTruncate
	OpPreallocate
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpPreallocate:
		return "preallocate"
	}
	return "unknown"
}

// Op identifies one I/O operation: the Nth operation on the file system
// (N starts at 1), its kind, the file, and the affected range (Off is the
// new size for truncate/preallocate; Len is 0 for non-data ops).
type Op struct {
	N    uint64
	Kind OpKind
	Path string
	Off  int64
	Len  int
}

// Decision is an injection verdict for one operation.
type Decision int

const (
	// OK performs the operation normally.
	OK Decision = iota
	// Fail returns an error without touching the file. For OpSync the
	// semantics are fsyncgate's: the error is returned AND the un-synced
	// data is dropped from the pending set, so a later Sync "succeeds"
	// without ever having made the data durable — exactly the Linux
	// behavior that made retrying a failed fsync unsafe.
	Fail
	// Tear (writes only) persists a sector-aligned prefix of the write and
	// then fails, modeling a power cut mid-write.
	Tear
	// ShortRead (reads only) returns fewer bytes than requested with
	// io.ErrUnexpectedEOF.
	ShortRead
	// FlipBit (reads only) returns the data with a single bit flipped,
	// modeling silent media corruption on the read path.
	FlipBit
)

// CrashMode selects what a simulated power cut does with writes issued after
// the last successful sync.
type CrashMode int

const (
	// CrashDrop discards every un-synced write: the file reverts to its
	// state at the last sync. The strictest (and most common) model.
	CrashDrop CrashMode = iota
	// CrashKeep persists every un-synced write: the crash happened after
	// the device wrote everything but before anything acknowledged it.
	CrashKeep
	// CrashTorn persists a random sector-aligned prefix of each un-synced
	// write (independently per write), modeling writes torn mid-transfer.
	CrashTorn
)

// Fault is an in-memory file system with precise durability semantics: each
// file tracks a durable image (what the last successful sync persisted) plus
// the ordered list of writes since, so a simulated power cut can replay any
// physically plausible outcome. Every operation consults Inject (when set)
// for a fault verdict and then reports to OnOp (when set), which is how the
// torture harness snapshots crash states at every injectable I/O point.
//
// Inject and OnOp must be set before the file system is used; they are read
// without synchronization.
type Fault struct {
	// Inject decides the fate of each operation. nil means everything
	// succeeds.
	Inject func(Op) Decision
	// OnOp observes each operation after it completed (even when a fault
	// was injected), outside all file locks — it may call SnapshotCrash.
	OnOp func(Op)

	mu     sync.Mutex
	files  map[string]*memFile
	rng    *rand.Rand
	nextOp atomic.Uint64
}

// NewFault returns an empty fault file system. The seed drives torn-write
// prefix choices, making crash simulations reproducible.
func NewFault(seed int64) *Fault {
	return &Fault{files: make(map[string]*memFile), rng: rand.New(rand.NewSource(seed))}
}

// Image is a point-in-time copy of one file's content.
type Image struct {
	Data []byte
	Size int64 // logical size; bytes in [len(Data), Size) read as zero
}

// NewFaultFromImages returns a fault file system pre-populated with files
// whose content (and durable state) is the given images — the way the
// torture harness turns a crash snapshot into a reopenable store.
func NewFaultFromImages(seed int64, images map[string]Image) *Fault {
	f := NewFault(seed)
	for path, img := range images {
		data := append([]byte(nil), img.Data...)
		f.files[path] = &memFile{
			fs:      f,
			path:    path,
			data:    data,
			size:    img.Size,
			durable: Image{Data: append([]byte(nil), img.Data...), Size: img.Size},
		}
	}
	return f
}

// OpenFile opens (or with os.O_CREATE creates) an in-memory file. Reopening
// a path shares the underlying file state, so close/crash/reopen sequences
// behave like a real file system.
func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	mf := f.files[name]
	if mf == nil {
		if flag&os.O_CREATE == 0 {
			f.mu.Unlock()
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		mf = &memFile{fs: f, path: name}
		f.files[name] = mf
	}
	f.mu.Unlock()
	if flag&os.O_TRUNC != 0 {
		mf.mu.Lock()
		mf.applyTruncate(0)
		mf.mu.Unlock()
	}
	return &faultFile{mf: mf}, nil
}

// Remove deletes the named file.
func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(f.files, name)
	return nil
}

// Crash simulates a power cut across the whole file system: every file's
// content is rebuilt from its durable image plus whatever the mode says
// survived of the un-synced writes, and all pending state is discarded. Open
// handles remain usable (they see the post-crash content) but a real harness
// abandons them and reopens, as a restarted process would.
func (f *Fault) Crash(mode CrashMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, mf := range f.files {
		mf.mu.Lock()
		img := mf.crashImageLocked(mode, f.rng)
		mf.data = img.Data
		mf.size = img.Size
		mf.durable = Image{Data: append([]byte(nil), img.Data...), Size: img.Size}
		mf.pending = nil
		mf.mu.Unlock()
	}
}

// SnapshotCrash returns, without touching live state, the per-file images a
// power cut right now would leave behind under the given mode. The torture
// harness calls this from OnOp to check crash consistency at every
// injectable I/O point without restarting the workload.
func (f *Fault) SnapshotCrash(mode CrashMode) map[string]Image {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]Image, len(f.files))
	for path, mf := range f.files {
		mf.mu.Lock()
		out[path] = mf.crashImageLocked(mode, f.rng)
		mf.mu.Unlock()
	}
	return out
}

// Corrupt XORs every byte in [off, off+n) of the named file with 0xA5, in
// both the live and the durable image — simulating at-rest media corruption
// that survives reopen. It reports how many bytes were in range.
func (f *Fault) Corrupt(path string, off int64, n int) int {
	f.mu.Lock()
	mf := f.files[path]
	f.mu.Unlock()
	if mf == nil {
		return 0
	}
	mf.mu.Lock()
	defer mf.mu.Unlock()
	count := 0
	for _, buf := range [][]byte{mf.data, mf.durable.Data} {
		c := 0
		for i := off; i < off+int64(n) && i < int64(len(buf)); i++ {
			buf[i] ^= 0xA5
			c++
		}
		if c > count {
			count = c
		}
	}
	return count
}

// memFile is the shared state behind every handle on one path.
type memFile struct {
	fs   *Fault
	path string

	mu      sync.Mutex
	data    []byte // written bytes; [len(data), size) reads as zeros
	size    int64
	durable Image       // content as of the last successful sync
	pending []pendingOp // ordered mutations since the last sync
}

// pendingOp is one un-synced mutation. Writes carry cloned data; truncate
// and preallocate carry the new size in off.
type pendingOp struct {
	kind OpKind
	off  int64
	data []byte
}

// crashImageLocked computes the post-power-cut content under mode, starting
// from the durable image and replaying the un-synced ops the mode says
// survived. Data writes are droppable/tearable; truncate and preallocate are
// treated as journaled metadata and replayed atomically in all modes except
// CrashDrop (which reverts everything to the last sync). Note the replay
// base is the durable image, never the live bytes: writes dropped by a
// failed fsync stay visible to reads (the "page cache") but can never
// reappear in a crash image.
func (mf *memFile) crashImageLocked(mode CrashMode, rng *rand.Rand) Image {
	img := Image{Data: append([]byte(nil), mf.durable.Data...), Size: mf.durable.Size}
	if mode == CrashDrop {
		return img
	}
	for _, op := range mf.pending {
		switch op.kind {
		case OpWrite:
			data := op.data
			if mode == CrashTorn {
				// Keep a random sector-aligned prefix, independently per
				// write.
				sectors := (len(data) + SectorSize - 1) / SectorSize
				keep := rng.Intn(sectors+1) * SectorSize
				if keep > len(data) {
					keep = len(data)
				}
				data = data[:keep]
			}
			img = applyWrite(img, op.off, data)
		case OpTruncate:
			img = applyResize(img, op.off)
		case OpPreallocate:
			if op.off > img.Size {
				img.Size = op.off
			}
		}
	}
	return img
}

func applyWrite(img Image, off int64, p []byte) Image {
	if len(p) == 0 {
		return img
	}
	end := off + int64(len(p))
	if end > int64(len(img.Data)) {
		img.Data = append(img.Data, make([]byte, end-int64(len(img.Data)))...)
	}
	copy(img.Data[off:end], p)
	if end > img.Size {
		img.Size = end
	}
	return img
}

func applyResize(img Image, size int64) Image {
	if size < int64(len(img.Data)) {
		img.Data = img.Data[:size]
	}
	img.Size = size
	return img
}

// applyTruncate mutates live state (caller holds mf.mu) and records the op.
func (mf *memFile) applyTruncate(size int64) {
	if size < int64(len(mf.data)) {
		mf.data = mf.data[:size]
	}
	mf.size = size
	mf.pending = append(mf.pending, pendingOp{kind: OpTruncate, off: size})
}

// faultFile is one open handle.
type faultFile struct {
	mf     *memFile
	closed atomic.Bool
}

func (h *faultFile) op(kind OpKind, off int64, n int) (Op, Decision) {
	op := Op{N: h.mf.fs.nextOp.Add(1), Kind: kind, Path: h.mf.path, Off: off, Len: n}
	d := OK
	if inj := h.mf.fs.Inject; inj != nil {
		d = inj(op)
	}
	return op, d
}

func (h *faultFile) done(op Op) {
	if fn := h.mf.fs.OnOp; fn != nil {
		fn(op)
	}
}

func injectedErr(op Op) error {
	return fmt.Errorf("%w: %s %s @%d+%d (op %d)", ErrInjected, op.Kind, op.Path, op.Off, op.Len, op.N)
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if h.closed.Load() {
		return 0, os.ErrClosed
	}
	op, d := h.op(OpRead, off, len(p))
	defer h.done(op)
	if d == Fail {
		return 0, injectedErr(op)
	}
	mf := h.mf
	mf.mu.Lock()
	n := 0
	if off < mf.size {
		n = len(p)
		if int64(n) > mf.size-off {
			n = int(mf.size - off)
		}
		// Copy the written portion; the rest of the range is preallocated
		// space that reads as zeros.
		for i := 0; i < n; i++ {
			if off+int64(i) < int64(len(mf.data)) {
				p[i] = mf.data[off+int64(i)]
			} else {
				p[i] = 0
			}
		}
	}
	mf.mu.Unlock()
	switch d {
	case ShortRead:
		short := n / 2
		return short, fmt.Errorf("short read: %w (%v)", io.ErrUnexpectedEOF, injectedErr(op))
	case FlipBit:
		if n > 0 {
			bit := op.N % uint64(n*8)
			p[bit/8] ^= 1 << (bit % 8)
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if h.closed.Load() {
		return 0, os.ErrClosed
	}
	op, d := h.op(OpWrite, off, len(p))
	defer h.done(op)
	if d == Fail {
		return 0, injectedErr(op)
	}
	keep := p
	if d == Tear {
		// Persist a sector-aligned prefix (half the sectors, rounded down),
		// then report failure — the caller must treat the range as garbage.
		sectors := (len(p) + SectorSize - 1) / SectorSize
		keep = p[:(sectors/2)*SectorSize]
	}
	mf := h.mf
	mf.mu.Lock()
	if len(keep) > 0 {
		end := off + int64(len(keep))
		if end > int64(len(mf.data)) {
			mf.data = append(mf.data, make([]byte, end-int64(len(mf.data)))...)
		}
		copy(mf.data[off:end], keep)
		if end > mf.size {
			mf.size = end
		}
		mf.pending = append(mf.pending, pendingOp{kind: OpWrite, off: off, data: append([]byte(nil), keep...)})
	}
	mf.mu.Unlock()
	if d == Tear {
		return 0, fmt.Errorf("torn at %d bytes: %w", len(keep), injectedErr(op))
	}
	return len(p), nil
}

func (h *faultFile) Sync() error {
	if h.closed.Load() {
		return os.ErrClosed
	}
	op, d := h.op(OpSync, 0, 0)
	defer h.done(op)
	mf := h.mf
	mf.mu.Lock()
	if d == Fail {
		// fsyncgate: report the failure AND drop the dirty set. Reads keep
		// seeing the data (it is still in the "page cache"), but it can
		// never become durable — a subsequent Sync succeeds with nothing
		// left to write, exactly the Linux behavior that made retrying a
		// failed fsync unsafe.
		mf.pending = nil
		mf.mu.Unlock()
		return injectedErr(op)
	}
	// Durability is the replay of surviving pending ops onto the previous
	// durable image — NOT a clone of the live bytes, which may include
	// writes a failed fsync already condemned.
	mf.durable = mf.crashImageLocked(CrashKeep, nil)
	mf.pending = nil
	mf.mu.Unlock()
	return nil
}

func (h *faultFile) Truncate(size int64) error {
	if h.closed.Load() {
		return os.ErrClosed
	}
	op, d := h.op(OpTruncate, size, 0)
	defer h.done(op)
	if d == Fail {
		return injectedErr(op)
	}
	mf := h.mf
	mf.mu.Lock()
	mf.applyTruncate(size)
	mf.mu.Unlock()
	return nil
}

func (h *faultFile) Preallocate(size int64) error {
	if h.closed.Load() {
		return os.ErrClosed
	}
	op, d := h.op(OpPreallocate, size, 0)
	defer h.done(op)
	if d == Fail {
		return injectedErr(op)
	}
	mf := h.mf
	mf.mu.Lock()
	if size > mf.size {
		mf.size = size
		mf.pending = append(mf.pending, pendingOp{kind: OpPreallocate, off: size})
	}
	mf.mu.Unlock()
	return nil
}

func (h *faultFile) Size() (int64, error) {
	if h.closed.Load() {
		return 0, os.ErrClosed
	}
	mf := h.mf
	mf.mu.Lock()
	defer mf.mu.Unlock()
	return mf.size, nil
}

func (h *faultFile) Close() error {
	h.closed.Store(true)
	return nil
}
