// Package vfs is the file-system seam between RodentStore's storage layers
// (pager, write-ahead log) and the operating system. Production code runs on
// the OS implementation; crash-consistency and corruption tests run on Fault,
// an in-memory implementation that models durability precisely (what survives
// a power cut is what was written before the last successful sync) and can
// inject the classic storage faults: failed or torn writes, fsync errors with
// fsyncgate semantics, short or bit-flipped reads, and power cuts.
//
// The interface is positional-I/O only. RodentStore's pager and WAL never
// seek — every read and write carries its own offset — so File deliberately
// has no cursor, which keeps both implementations trivial to reason about
// under concurrency.
package vfs

import (
	"io"
	"os"
)

// File is the I/O surface the pager and the write-ahead log run on.
// Implementations must support concurrent ReadAt/WriteAt calls on
// non-overlapping ranges (the pager issues parallel page reads).
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes all completed writes durable. After an error, the un-synced
	// data may or may not be durable and the file should be considered
	// suspect (see the fsyncgate discussion in internal/wal).
	Sync() error
	// Truncate changes the file size, zero-filling on extension.
	Truncate(size int64) error
	// Preallocate makes the file at least size bytes long with backing
	// blocks reserved where the platform supports it. It never shrinks.
	Preallocate(size int64) error
	// Size returns the current file size in bytes.
	Size() (int64, error)
	Close() error
}

// FS opens files. It is the factory the engine threads down to the pager
// and the WAL; everything else about a database's I/O follows from it.
type FS interface {
	// OpenFile opens the named file with os.OpenFile-style flags
	// (os.O_RDWR, os.O_CREATE, os.O_TRUNC, ...).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
}
