package vfs

import (
	"errors"
	"io"
	"os"
	"testing"
)

func openTemp(t *testing.T, fs FS, name string) File {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return f
}

func TestFaultBasicIO(t *testing.T) {
	fs := NewFault(1)
	f := openTemp(t, fs, "a")
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "world" {
		t.Fatalf("read got %q", buf)
	}
	if sz, _ := f.Size(); sz != 11 {
		t.Fatalf("size = %d, want 11", sz)
	}
	// Preallocated space reads as zeros and extends the size.
	if err := f.Preallocate(1024); err != nil {
		t.Fatalf("preallocate: %v", err)
	}
	if sz, _ := f.Size(); sz != 1024 {
		t.Fatalf("size after preallocate = %d", sz)
	}
	zeros := make([]byte, 16)
	if _, err := f.ReadAt(zeros, 500); err != nil {
		t.Fatalf("read preallocated: %v", err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Fatalf("preallocated space not zero: %v", zeros)
		}
	}
	// Reads past EOF follow the ReaderAt contract.
	if n, err := f.ReadAt(buf, 1022); n != 2 || err != io.EOF {
		t.Fatalf("read at tail: n=%d err=%v", n, err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if sz, _ := f.Size(); sz != 4 {
		t.Fatalf("size after truncate = %d", sz)
	}
}

func TestFaultCrashDropKeep(t *testing.T) {
	fs := NewFault(2)
	f := openTemp(t, fs, "a")
	f.WriteAt([]byte("durable!"), 0)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	f.WriteAt([]byte("PENDING."), 8)

	imgs := fs.SnapshotCrash(CrashDrop)
	if got := string(imgs["a"].Data); got != "durable!" {
		t.Fatalf("drop image = %q", got)
	}
	imgs = fs.SnapshotCrash(CrashKeep)
	if got := string(imgs["a"].Data); got != "durable!PENDING." {
		t.Fatalf("keep image = %q", got)
	}

	// A real crash resets live state too.
	fs.Crash(CrashDrop)
	if sz, _ := f.Size(); sz != 8 {
		t.Fatalf("post-crash size = %d, want 8", sz)
	}
	buf := make([]byte, 8)
	f.ReadAt(buf, 0)
	if string(buf) != "durable!" {
		t.Fatalf("post-crash content = %q", buf)
	}
}

func TestFaultCrashTornPrefixes(t *testing.T) {
	fs := NewFault(3)
	f := openTemp(t, fs, "a")
	f.Sync()
	// One 4-sector write; torn crashes must keep 0..4 whole sectors.
	payload := make([]byte, 4*SectorSize)
	for i := range payload {
		payload[i] = 0xCC
	}
	f.WriteAt(payload, 0)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		img := fs.SnapshotCrash(CrashTorn)
		n := len(img["a"].Data)
		if n%SectorSize != 0 {
			t.Fatalf("torn image not sector aligned: %d", n)
		}
		for j := 0; j < n; j++ {
			if img["a"].Data[j] != 0xCC {
				t.Fatalf("torn prefix corrupted at %d", j)
			}
		}
		seen[n/SectorSize] = true
	}
	if len(seen) < 3 {
		t.Fatalf("torn prefixes not varied: %v", seen)
	}
}

func TestFaultFsyncGate(t *testing.T) {
	fs := NewFault(4)
	failNext := false
	fs.Inject = func(op Op) Decision {
		if op.Kind == OpSync && failNext {
			failNext = false
			return Fail
		}
		return OK
	}
	f := openTemp(t, fs, "a")
	f.WriteAt([]byte("base"), 0)
	f.Sync()
	f.WriteAt([]byte("lost"), 4)
	failNext = true
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync should fail, got %v", err)
	}
	// Reads still see the data (page cache)...
	buf := make([]byte, 8)
	f.ReadAt(buf, 0)
	if string(buf) != "baselost" {
		t.Fatalf("post-gate read = %q", buf)
	}
	// ...the retried fsync "succeeds"...
	if err := f.Sync(); err != nil {
		t.Fatalf("retried sync: %v", err)
	}
	// ...but the data never became durable.
	img := fs.SnapshotCrash(CrashDrop)
	if got := string(img["a"].Data); got != "base" {
		t.Fatalf("durable after fsyncgate = %q, want %q", got, "base")
	}
	// New writes after the failed fsync do become durable.
	f.WriteAt([]byte("new!"), 8)
	f.Sync()
	img = fs.SnapshotCrash(CrashDrop)
	if got := string(img["a"].Data); got != "base\x00\x00\x00\x00new!" {
		t.Fatalf("durable after new write = %q", got)
	}
}

func TestFaultInjectWriteAndRead(t *testing.T) {
	fs := NewFault(5)
	var verdict Decision
	fs.Inject = func(op Op) Decision {
		if op.Kind == OpWrite || op.Kind == OpRead {
			return verdict
		}
		return OK
	}
	f := openTemp(t, fs, "a")

	verdict = Fail
	if _, err := f.WriteAt(make([]byte, 10), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed write: %v", err)
	}
	if sz, _ := f.Size(); sz != 0 {
		t.Fatalf("failed write mutated file: size=%d", sz)
	}

	verdict = Tear
	payload := make([]byte, 3*SectorSize)
	for i := range payload {
		payload[i] = 1
	}
	if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: %v", err)
	}
	if sz, _ := f.Size(); sz != SectorSize {
		t.Fatalf("torn write kept %d bytes, want %d", sz, SectorSize)
	}

	verdict = OK
	f.WriteAt(payload, 0)

	verdict = ShortRead
	buf := make([]byte, 100)
	if n, err := f.ReadAt(buf, 0); n >= 100 || err == nil {
		t.Fatalf("short read returned n=%d err=%v", n, err)
	}

	verdict = FlipBit
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("flipbit read: %v", err)
	}
	flipped := 0
	for _, b := range buf {
		if b != 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("flipbit flipped %d bytes", flipped)
	}
}

func TestFaultImagesRoundTrip(t *testing.T) {
	fs := NewFault(6)
	f := openTemp(t, fs, "db")
	f.WriteAt([]byte("content"), 0)
	f.Preallocate(64)
	f.Sync()
	imgs := fs.SnapshotCrash(CrashDrop)

	fs2 := NewFaultFromImages(1, imgs)
	f2 := openTemp(t, fs2, "db")
	if sz, _ := f2.Size(); sz != 64 {
		t.Fatalf("restored size = %d, want 64", sz)
	}
	buf := make([]byte, 7)
	f2.ReadAt(buf, 0)
	if string(buf) != "content" {
		t.Fatalf("restored content = %q", buf)
	}

	// Missing files fail without O_CREATE.
	if _, err := fs2.OpenFile("nope", os.O_RDWR, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestFaultCorrupt(t *testing.T) {
	fs := NewFault(7)
	f := openTemp(t, fs, "a")
	f.WriteAt(make([]byte, 100), 0)
	f.Sync()
	if n := fs.Corrupt("a", 10, 5); n != 5 {
		t.Fatalf("corrupt count = %d", n)
	}
	buf := make([]byte, 100)
	f.ReadAt(buf, 0)
	for i, b := range buf {
		want := byte(0)
		if i >= 10 && i < 15 {
			want = 0xA5
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
	// Corruption is at rest: it survives a crash image.
	img := fs.SnapshotCrash(CrashDrop)
	if img["a"].Data[12] != 0xA5 {
		t.Fatalf("corruption lost in crash image")
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	f, err := OS.OpenFile(dir+"/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Preallocate(4096); err != nil {
		t.Fatalf("preallocate: %v", err)
	}
	if sz, _ := f.Size(); sz != 4096 {
		t.Fatalf("size = %d", sz)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := OS.Remove(dir + "/x"); err != nil {
		t.Fatalf("remove: %v", err)
	}
}
