package vfs

import (
	"os"

	"rodentstore/internal/fsutil"
)

// OS is the production file system: thin adapters over *os.File.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &osFile{f}, nil
}

func (osFS) Remove(name string) error { return os.Remove(name) }

// osFile adds Size and Preallocate to *os.File's ReadAt/WriteAt/Sync/
// Truncate/Close.
type osFile struct {
	*os.File
}

func (f *osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (f *osFile) Preallocate(size int64) error {
	return fsutil.Preallocate(f.File, size)
}
