package cartel

import (
	"math"
	"testing"
)

func TestGenerateCountAndBounds(t *testing.T) {
	rows := Generate(DefaultConfig(10000))
	if len(rows) != 10000 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i, r := range rows {
		lat, lon := r[1].Float(), r[2].Float()
		if lat < MinLat-0.01 || lat > MaxLat+0.01 || lon < MinLon-0.01 || lon > MaxLon+0.01 {
			t.Fatalf("row %d out of bounds: %f %f", i, lat, lon)
		}
		if r[3].Str() == "" {
			t.Fatalf("row %d empty id", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(1000))
	b := Generate(DefaultConfig(1000))
	for i := range a {
		if a[i][1].Float() != b[i][1].Float() || a[i][3].Str() != b[i][3].Str() {
			t.Fatalf("row %d differs between runs", i)
		}
	}
	c := Generate(Config{N: 1000, Cars: 4, StepDeg: 7e-5, TripLen: 600, Seed: 99})
	same := true
	for i := range a {
		if a[i][1].Float() != c[i][1].Float() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSmallIncrements(t *testing.T) {
	// The delta-compression premise: consecutive observations of one car
	// move by small increments (excluding trip resets).
	cfg := DefaultConfig(20000)
	rows := Generate(cfg)
	lastLat := map[string]float64{}
	small, large := 0, 0
	for _, r := range rows {
		id := r[3].Str()
		lat := r[1].Float()
		if prev, ok := lastLat[id]; ok {
			if math.Abs(lat-prev) < 10*cfg.StepDeg {
				small++
			} else {
				large++
			}
		}
		lastLat[id] = lat
	}
	if small < 9*large {
		t.Errorf("movement not incremental: %d small vs %d large steps", small, large)
	}
}

func TestTimeOrdered(t *testing.T) {
	rows := Generate(DefaultConfig(5000))
	for i := 1; i < len(rows); i++ {
		if rows[i][0].Int() < rows[i-1][0].Int() {
			t.Fatal("timestamps not non-decreasing in arrival order")
		}
	}
}

func TestSchema(t *testing.T) {
	s := Schema()
	if s.String() != "t:int, lat:float, lon:float, id:string" {
		t.Errorf("schema: %s", s)
	}
	if err := s.Validate(Generate(DefaultConfig(100))[0]); err != nil {
		t.Errorf("generated rows must validate: %v", err)
	}
}

func TestQueries(t *testing.T) {
	qs := Queries(200, 0.01, 7)
	if len(qs) != 200 {
		t.Fatalf("queries: %d", len(qs))
	}
	wantSideLat := math.Sqrt(0.01) * (MaxLat - MinLat)
	for i, q := range qs {
		if q.MinLat < MinLat || q.MaxLat > MaxLat || q.MinLon < MinLon || q.MaxLon > MaxLon {
			t.Fatalf("query %d out of region: %+v", i, q)
		}
		if math.Abs((q.MaxLat-q.MinLat)-wantSideLat) > 1e-9 {
			t.Fatalf("query %d wrong side: %f", i, q.MaxLat-q.MinLat)
		}
	}
	// Deterministic per seed.
	qs2 := Queries(200, 0.01, 7)
	if qs[0] != qs2[0] {
		t.Error("queries not deterministic")
	}
}

func TestCarIDsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := carID(i)
		if seen[id] {
			t.Fatalf("duplicate car id %q at %d", id, i)
		}
		seen[id] = true
	}
}
