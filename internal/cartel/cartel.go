// Package cartel generates synthetic GPS trajectory data modeled on the
// CarTel deployment the paper's case study uses (§6): "hundreds of
// thousands of motion traces from a fleet of cars in Boston", with a dense
// subset "centered around MIT containing ten million observations".
//
// The real traces are not publicly available; this generator is the
// substitution documented in DESIGN.md. It reproduces the three properties
// Figure 2 depends on: (a) observations densely cover a bounded urban area,
// (b) consecutive observations of one vehicle move by small increments (the
// delta-compression premise: "cars move continuously by small increments"),
// and (c) volume is parameterizable up to the paper's 10M observations.
//
// Vehicles perform random-walk trips inside the greater-Boston bounding box
// at 1 Hz, with occasional trip resets (teleports to a new start, modeling
// a new fare/route). The workload generator produces the paper's queries:
// random square regions covering a fixed fraction of the total area.
package cartel

import (
	"math"
	"math/rand"

	"rodentstore/internal/value"
)

// Bounding box of the generated region (greater Boston, roughly the area
// the case study covers).
const (
	MinLat = 42.30
	MaxLat = 42.42
	MinLon = -71.15
	MaxLon = -71.02
)

// Config parameterizes the generator.
type Config struct {
	// N is the total number of observations.
	N int
	// Cars is the fleet size (trajectories ≈ Cars × trips).
	Cars int
	// StepDeg is the per-second movement scale in degrees (~5-10 m).
	StepDeg float64
	// TripLen is the mean observations per trip before a reset.
	TripLen int
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultConfig mirrors the case study's shape at a configurable scale:
// a few thousand trajectories over the Boston box.
func DefaultConfig(n int) Config {
	cars := n / 5000
	if cars < 4 {
		cars = 4
	}
	return Config{N: n, Cars: cars, StepDeg: 7e-5, TripLen: 600, Seed: 1}
}

// Schema returns the Traces logical schema of the case study:
// Traces(int t, float lat, float lon, string id) — the paper lists further
// attributes it omits; Extra adds them for width-sensitive experiments.
func Schema() *value.Schema {
	return value.MustSchema(
		value.Field{Name: "t", Type: value.Int},
		value.Field{Name: "lat", Type: value.Float},
		value.Field{Name: "lon", Type: value.Float},
		value.Field{Name: "id", Type: value.Str},
	)
}

// Generate produces N observations in arrival (time) order across the
// fleet. Deterministic for a given config.
func Generate(cfg Config) []value.Row {
	r := rand.New(rand.NewSource(cfg.Seed))
	type car struct {
		lat, lon   float64
		dLat, dLon float64 // current heading
		id         string
		left       int // observations left in current trip
	}
	cars := make([]car, cfg.Cars)
	for i := range cars {
		cars[i] = car{
			lat:  MinLat + r.Float64()*(MaxLat-MinLat),
			lon:  MinLon + r.Float64()*(MaxLon-MinLon),
			id:   carID(i),
			left: 1 + r.Intn(2*cfg.TripLen),
		}
		cars[i].dLat, cars[i].dLon = heading(r, cfg.StepDeg)
	}
	rows := make([]value.Row, 0, cfg.N)
	t := int64(0)
	for len(rows) < cfg.N {
		for i := range cars {
			if len(rows) >= cfg.N {
				break
			}
			c := &cars[i]
			if c.left <= 0 {
				// New trip: jump to a new start (car picked up elsewhere).
				c.lat = MinLat + r.Float64()*(MaxLat-MinLat)
				c.lon = MinLon + r.Float64()*(MaxLon-MinLon)
				c.dLat, c.dLon = heading(r, cfg.StepDeg)
				c.left = 1 + r.Intn(2*cfg.TripLen)
			}
			// Random-walk with heading persistence: mostly straight, with
			// occasional turns, bouncing off the region boundary.
			if r.Float64() < 0.05 {
				c.dLat, c.dLon = heading(r, cfg.StepDeg)
			}
			c.lat += c.dLat
			c.lon += c.dLon
			if c.lat < MinLat || c.lat > MaxLat {
				c.dLat = -c.dLat
				c.lat += 2 * c.dLat
			}
			if c.lon < MinLon || c.lon > MaxLon {
				c.dLon = -c.dLon
				c.lon += 2 * c.dLon
			}
			c.left--
			rows = append(rows, value.Row{
				value.NewInt(t),
				value.NewFloat(c.lat),
				value.NewFloat(c.lon),
				value.NewString(c.id),
			})
		}
		t++
	}
	return rows
}

func heading(r *rand.Rand, step float64) (float64, float64) {
	angle := r.Float64() * 2 * math.Pi
	return step * math.Sin(angle), step * math.Cos(angle)
}

func carID(i int) string {
	return "car-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+(i/676)%10))
}

// Query is one spatial window query: a square region.
type Query struct {
	MinLat, MaxLat, MinLon, MaxLon float64
}

// Queries generates the paper's workload: count random square regions each
// covering `fraction` of the total area (the paper uses 200 queries at 1%).
func Queries(count int, fraction float64, seed int64) []Query {
	r := rand.New(rand.NewSource(seed))
	// A square covering `fraction` of area: side = sqrt(fraction) of each
	// extent (the region is treated as a unit square in degree space).
	sideLat := math.Sqrt(fraction) * (MaxLat - MinLat)
	sideLon := math.Sqrt(fraction) * (MaxLon - MinLon)
	out := make([]Query, count)
	for i := range out {
		lat := MinLat + r.Float64()*(MaxLat-MinLat-sideLat)
		lon := MinLon + r.Float64()*(MaxLon-MinLon-sideLon)
		out[i] = Query{MinLat: lat, MaxLat: lat + sideLat, MinLon: lon, MaxLon: lon + sideLon}
	}
	return out
}
