// Package transforms implements the storage algebra's transforms (paper
// §3.5-3.6) over in-memory relations. These are the reference semantics the
// physical layout engine must agree with; the segment renderer uses them to
// materialize nestings before writing pages.
//
// Fold is implemented twice, exactly as §4.2 discusses: FoldNestedLoop is
// the paper's Algorithm 1 (two nested for-loops, O(n²)); FoldHash is the
// "hash-join like algorithm" that builds a hash table in one pass and emits
// groups in a second. Both produce identical output (tested by property),
// and the fold-rendering benchmark quantifies the difference.
package transforms

import (
	"fmt"
	"math"

	"rodentstore/internal/algebra"
	"rodentstore/internal/value"
)

// Relation is an in-memory table: a schema plus rows.
type Relation struct {
	Schema *value.Schema
	Rows   []value.Row
}

// Clone returns a relation with a copied row spine (values are shared).
func (r Relation) Clone() Relation {
	rows := make([]value.Row, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = row.Clone()
	}
	return Relation{Schema: r.Schema, Rows: rows}
}

// Project isolates the named fields (paper §3.5.1 project).
func Project(rel Relation, fields []string) (Relation, error) {
	schema, idx, err := rel.Schema.Project(fields)
	if err != nil {
		return Relation{}, err
	}
	rows := make([]value.Row, len(rel.Rows))
	for i, row := range rel.Rows {
		nr := make(value.Row, len(idx))
		for j, src := range idx {
			nr[j] = row[src]
		}
		rows[i] = nr
	}
	return Relation{Schema: schema, Rows: rows}, nil
}

// Append attaches extra named values to every row (paper §3.5.1 append, the
// reciprocal of project). compute receives the row and returns the new
// field's value.
func Append(rel Relation, field value.Field, compute func(value.Row) value.Value) (Relation, error) {
	fields := append(append([]value.Field(nil), rel.Schema.Fields...), field)
	schema, err := value.NewSchema(fields...)
	if err != nil {
		return Relation{}, err
	}
	rows := make([]value.Row, len(rel.Rows))
	for i, row := range rel.Rows {
		rows[i] = append(row.Clone(), compute(row))
	}
	return Relation{Schema: schema, Rows: rows}, nil
}

// Select keeps rows satisfying the predicate (paper §3.5.1 select).
func Select(rel Relation, pred algebra.Predicate) (Relation, error) {
	if err := pred.Validate(rel.Schema); err != nil {
		return Relation{}, err
	}
	var rows []value.Row
	for _, row := range rel.Rows {
		if pred.Eval(rel.Schema, row) {
			rows = append(rows, row)
		}
	}
	return Relation{Schema: rel.Schema, Rows: rows}, nil
}

// Partition horizontally splits the relation by a predicate (paper §3.5.1
// partition): matching rows first, the rest second.
func Partition(rel Relation, pred algebra.Predicate) (Relation, Relation, error) {
	if err := pred.Validate(rel.Schema); err != nil {
		return Relation{}, Relation{}, err
	}
	var yes, no []value.Row
	for _, row := range rel.Rows {
		if pred.Eval(rel.Schema, row) {
			yes = append(yes, row)
		} else {
			no = append(no, row)
		}
	}
	return Relation{Schema: rel.Schema, Rows: yes}, Relation{Schema: rel.Schema, Rows: no}, nil
}

// OrderBy stably sorts rows by the keys (paper §3.5.3 orderby).
func OrderBy(rel Relation, keys []algebra.OrderKey) (Relation, error) {
	cols := make([]int, len(keys))
	desc := make([]bool, len(keys))
	for i, k := range keys {
		c := rel.Schema.Index(k.Field)
		if c < 0 {
			return Relation{}, fmt.Errorf("transforms: orderby: unknown field %q", k.Field)
		}
		cols[i], desc[i] = c, k.Desc
	}
	out := rel.Clone()
	value.SortRows(out.Rows, cols, desc)
	return out, nil
}

// GroupBy clusters rows with equal key values contiguously, preserving the
// first-appearance order of groups and the relative order within each group
// (the paper's groupby clause on flat rows).
func GroupBy(rel Relation, fields []string) (Relation, error) {
	cols := make([]int, len(fields))
	for i, f := range fields {
		c := rel.Schema.Index(f)
		if c < 0 {
			return Relation{}, fmt.Errorf("transforms: groupby: unknown field %q", f)
		}
		cols[i] = c
	}
	key := func(row value.Row) value.Value {
		ks := make([]value.Value, len(cols))
		for i, c := range cols {
			ks[i] = row[c]
		}
		return value.NewList(ks...)
	}
	type group struct {
		k    value.Value
		rows []value.Row
	}
	var groups []group
	index := make(map[uint64][]int)
	for _, row := range rel.Rows {
		k := key(row)
		h := k.Hash()
		found := -1
		for _, gi := range index[h] {
			if value.Equal(groups[gi].k, k) {
				found = gi
				break
			}
		}
		if found < 0 {
			found = len(groups)
			groups = append(groups, group{k: k})
			index[h] = append(index[h], found)
		}
		groups[found].rows = append(groups[found].rows, row)
	}
	out := make([]value.Row, 0, len(rel.Rows))
	for _, g := range groups {
		out = append(out, g.rows...)
	}
	return Relation{Schema: rel.Schema, Rows: out}, nil
}

// Limit keeps the first n rows.
func Limit(rel Relation, n int) Relation {
	if n < 0 || n > len(rel.Rows) {
		n = len(rel.Rows)
	}
	return Relation{Schema: rel.Schema, Rows: rel.Rows[:n]}
}

// foldOutputSchema builds the folded schema [by..., folded list].
func foldOutputSchema(s *value.Schema, values, by []string) (*value.Schema, []int, []int, error) {
	byIdx := make([]int, len(by))
	var fields []value.Field
	for i, f := range by {
		c := s.Index(f)
		if c < 0 {
			return nil, nil, nil, fmt.Errorf("transforms: fold: unknown key field %q", f)
		}
		byIdx[i] = c
		fields = append(fields, s.Fields[c])
	}
	valIdx := make([]int, len(values))
	name := "folded"
	for i, f := range values {
		c := s.Index(f)
		if c < 0 {
			return nil, nil, nil, fmt.Errorf("transforms: fold: unknown value field %q", f)
		}
		valIdx[i] = c
		name += "_" + f
	}
	fields = append(fields, value.Field{Name: name, Type: value.List})
	schema, err := value.NewSchema(fields...)
	if err != nil {
		return nil, nil, nil, err
	}
	return schema, byIdx, valIdx, nil
}

// foldEntry extracts the nested element for one row: a scalar when one value
// field is folded, a list when several are.
func foldEntry(row value.Row, valIdx []int) value.Value {
	if len(valIdx) == 1 {
		return row[valIdx[0]]
	}
	vs := make([]value.Value, len(valIdx))
	for i, c := range valIdx {
		vs[i] = row[c]
	}
	return value.NewList(vs...)
}

// FoldNestedLoop is the paper's Algorithm 1: for each row, if its key has
// not been emitted, scan the whole relation again collecting matching
// values. O(n²) but allocation-light — the baseline the rendering
// experiment compares against.
func FoldNestedLoop(rel Relation, values, by []string) (Relation, error) {
	schema, byIdx, valIdx, err := foldOutputSchema(rel.Schema, values, by)
	if err != nil {
		return Relation{}, err
	}
	key := func(row value.Row) value.Value {
		ks := make([]value.Value, len(byIdx))
		for i, c := range byIdx {
			ks[i] = row[c]
		}
		return value.NewList(ks...)
	}
	var out []value.Row
	var outerKeys []value.Value // outerList of Algorithm 1
	seen := func(k value.Value) bool {
		for _, ok := range outerKeys {
			if value.Equal(ok, k) {
				return true
			}
		}
		return false
	}
	for _, r := range rel.Rows {
		k := key(r)
		if seen(k) {
			continue
		}
		var inner []value.Value // innerList of Algorithm 1
		for _, r2 := range rel.Rows {
			if value.Equal(key(r2), k) {
				inner = append(inner, foldEntry(r2, valIdx))
			}
		}
		outerKeys = append(outerKeys, k)
		row := make(value.Row, 0, len(byIdx)+1)
		for _, c := range byIdx {
			row = append(row, r[c])
		}
		row = append(row, value.NewList(inner...))
		out = append(out, row)
	}
	return Relation{Schema: schema, Rows: out}, nil
}

// FoldHash is the hash-join-like fold of §4.2: one pass builds a hash table
// keyed on A, a second emits each key with its collected B values. Output
// order (first appearance of each key; row order within groups) matches
// FoldNestedLoop exactly.
func FoldHash(rel Relation, values, by []string) (Relation, error) {
	schema, byIdx, valIdx, err := foldOutputSchema(rel.Schema, values, by)
	if err != nil {
		return Relation{}, err
	}
	type group struct {
		keyRow value.Row
		key    value.Value
		inner  []value.Value
	}
	var groups []group
	index := make(map[uint64][]int)
	for _, r := range rel.Rows {
		ks := make([]value.Value, len(byIdx))
		for i, c := range byIdx {
			ks[i] = r[c]
		}
		k := value.NewList(ks...)
		h := k.Hash()
		found := -1
		for _, gi := range index[h] {
			if value.Equal(groups[gi].key, k) {
				found = gi
				break
			}
		}
		if found < 0 {
			found = len(groups)
			groups = append(groups, group{keyRow: value.Row(ks), key: k})
			index[h] = append(index[h], found)
		}
		groups[found].inner = append(groups[found].inner, foldEntry(r, valIdx))
	}
	out := make([]value.Row, len(groups))
	for i, g := range groups {
		out[i] = append(g.keyRow.Clone(), value.NewList(g.inner...))
	}
	return Relation{Schema: schema, Rows: out}, nil
}

// Unfold reverses a fold produced with the given values/by fields,
// recovering the flat relation (rows ordered group by group).
func Unfold(rel Relation, values []string, valueTypes []value.Kind) (Relation, error) {
	n := rel.Schema.Arity()
	if n == 0 || rel.Schema.Fields[n-1].Type != value.List {
		return Relation{}, fmt.Errorf("transforms: unfold: input is not folded")
	}
	if len(values) != len(valueTypes) {
		return Relation{}, fmt.Errorf("transforms: unfold: %d names but %d types", len(values), len(valueTypes))
	}
	var fields []value.Field
	fields = append(fields, rel.Schema.Fields[:n-1]...)
	for i, v := range values {
		fields = append(fields, value.Field{Name: v, Type: valueTypes[i]})
	}
	schema, err := value.NewSchema(fields...)
	if err != nil {
		return Relation{}, err
	}
	var out []value.Row
	for _, row := range rel.Rows {
		nested := row[n-1]
		if nested.Kind() != value.List {
			return Relation{}, fmt.Errorf("transforms: unfold: folded field is %s", nested.Kind())
		}
		for _, entry := range nested.List() {
			nr := make(value.Row, 0, len(fields))
			nr = append(nr, row[:n-1]...)
			if len(values) == 1 {
				nr = append(nr, entry)
			} else {
				if entry.Kind() != value.List || entry.Len() != len(values) {
					return Relation{}, fmt.Errorf("transforms: unfold: entry arity mismatch")
				}
				nr = append(nr, entry.List()...)
			}
			out = append(out, nr)
		}
	}
	return Relation{Schema: schema, Rows: out}, nil
}

// Prejoin denormalizes two relations on a join attribute (paper §3.5.2).
// The joined attribute appears once; right-side name clashes get an r_
// prefix (matching algebra.Infer).
func Prejoin(left, right Relation, joinAttr string) (Relation, error) {
	li := left.Schema.Index(joinAttr)
	ri := right.Schema.Index(joinAttr)
	if li < 0 || ri < 0 {
		return Relation{}, fmt.Errorf("transforms: prejoin: attribute %q missing", joinAttr)
	}
	var fields []value.Field
	fields = append(fields, left.Schema.Fields...)
	var rightCols []int
	for c, f := range right.Schema.Fields {
		if c == ri {
			continue
		}
		if left.Schema.Index(f.Name) >= 0 {
			f.Name = "r_" + f.Name
		}
		fields = append(fields, f)
		rightCols = append(rightCols, c)
	}
	schema, err := value.NewSchema(fields...)
	if err != nil {
		return Relation{}, err
	}
	// Hash join on the attribute.
	buckets := make(map[uint64][]value.Row)
	for _, rr := range right.Rows {
		buckets[rr[ri].Hash()] = append(buckets[rr[ri].Hash()], rr)
	}
	var out []value.Row
	for _, lr := range left.Rows {
		for _, rr := range buckets[lr[li].Hash()] {
			if !value.Equal(lr[li], rr[ri]) {
				continue
			}
			nr := make(value.Row, 0, len(fields))
			nr = append(nr, lr...)
			for _, c := range rightCols {
				nr = append(nr, rr[c])
			}
			out = append(out, nr)
		}
	}
	return Relation{Schema: schema, Rows: out}, nil
}

// Transpose swaps the two outer levels of a nesting (paper §3.6):
// transpose([[1,2,3],[4,5,6]]) = [[1,4],[2,5],[3,6]]. All inner lists must
// have equal length.
func Transpose(n value.Value) (value.Value, error) {
	if n.Kind() != value.List {
		return value.Value{}, fmt.Errorf("transforms: transpose: not a list")
	}
	rows := n.List()
	if len(rows) == 0 {
		return value.NewList(), nil
	}
	width := -1
	for _, r := range rows {
		if r.Kind() != value.List {
			return value.Value{}, fmt.Errorf("transforms: transpose: element is %s", r.Kind())
		}
		if width < 0 {
			width = r.Len()
		} else if r.Len() != width {
			return value.Value{}, fmt.Errorf("transforms: transpose: ragged matrix (%d vs %d)", r.Len(), width)
		}
	}
	out := make([]value.Value, width)
	for j := 0; j < width; j++ {
		col := make([]value.Value, len(rows))
		for i, r := range rows {
			col[i] = r.List()[j]
		}
		out[j] = value.NewList(col...)
	}
	return value.NewList(out...), nil
}

// Chunk splits rows into consecutive chunks of n.
func Chunk(rel Relation, n int) ([][]value.Row, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transforms: chunk: size %d", n)
	}
	var out [][]value.Row
	for i := 0; i < len(rel.Rows); i += n {
		j := i + n
		if j > len(rel.Rows) {
			j = len(rel.Rows)
		}
		out = append(out, rel.Rows[i:j])
	}
	return out, nil
}

// GridBounds holds the discretization of one grid dimension: the value
// interval and cell count (stride = (Max-Min)/Cells, the paper's grid
// strides resolved against data statistics).
type GridBounds struct {
	Field    string
	Col      int
	Min, Max float64
	Cells    int
}

// Stride returns the cell width along this dimension.
func (b GridBounds) Stride() float64 {
	if b.Cells == 0 {
		return 0
	}
	return (b.Max - b.Min) / float64(b.Cells)
}

// CellOf maps a value to its cell index along this dimension, clamped to
// [0, Cells-1].
func (b GridBounds) CellOf(v float64) int {
	if b.Max <= b.Min {
		return 0
	}
	c := int(math.Floor((v - b.Min) / (b.Max - b.Min) * float64(b.Cells)))
	if c < 0 {
		c = 0
	}
	if c >= b.Cells {
		c = b.Cells - 1
	}
	return c
}

// CellRange returns the inclusive cell index interval overlapping [lo, hi].
func (b GridBounds) CellRange(lo, hi float64) (int, int) {
	return b.CellOf(lo), b.CellOf(hi)
}

// ComputeGridBounds derives per-dimension bounds from the data (min/max of
// each grid attribute).
func ComputeGridBounds(rel Relation, dims []algebra.GridDim) ([]GridBounds, error) {
	out := make([]GridBounds, len(dims))
	for i, d := range dims {
		c := rel.Schema.Index(d.Field)
		if c < 0 {
			return nil, fmt.Errorf("transforms: grid: unknown field %q", d.Field)
		}
		if t := rel.Schema.Fields[c].Type; t != value.Int && t != value.Float {
			return nil, fmt.Errorf("transforms: grid: field %q is %s, not numeric", d.Field, t)
		}
		b := GridBounds{Field: d.Field, Col: c, Cells: d.Cells, Min: math.Inf(1), Max: math.Inf(-1)}
		for _, row := range rel.Rows {
			if row[c].IsNull() {
				return nil, fmt.Errorf("transforms: grid: null value in dimension %q", d.Field)
			}
			v := row[c].Float()
			if v < b.Min {
				b.Min = v
			}
			if v > b.Max {
				b.Max = v
			}
		}
		if len(rel.Rows) == 0 {
			b.Min, b.Max = 0, 0
		}
		out[i] = b
	}
	return out, nil
}

// GridAssign partitions rows into cells. The returned map is keyed by the
// linearized row-major cell index; each cell keeps its rows in input order.
func GridAssign(rel Relation, bounds []GridBounds) (map[uint64][]value.Row, error) {
	cells := make(map[uint64][]value.Row)
	for _, row := range rel.Rows {
		idx, err := CellIndex(row, bounds)
		if err != nil {
			return nil, err
		}
		cells[idx] = append(cells[idx], row)
	}
	return cells, nil
}

// CellIndex linearizes the cell coordinates of a row in row-major order
// (first dimension varies slowest).
func CellIndex(row value.Row, bounds []GridBounds) (uint64, error) {
	var idx uint64
	for _, b := range bounds {
		if row[b.Col].IsNull() {
			return 0, fmt.Errorf("transforms: grid: null value in dimension %q", b.Field)
		}
		idx = idx*uint64(b.Cells) + uint64(b.CellOf(row[b.Col].Float()))
	}
	return idx, nil
}

// CellCoords inverts CellIndex back to per-dimension cell coordinates.
func CellCoords(idx uint64, bounds []GridBounds) []int {
	out := make([]int, len(bounds))
	for i := len(bounds) - 1; i >= 0; i-- {
		out[i] = int(idx % uint64(bounds[i].Cells))
		idx /= uint64(bounds[i].Cells)
	}
	return out
}
