package transforms

import (
	"math/rand"
	"reflect"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/value"
)

func areasRel() Relation {
	s := value.MustSchema(
		value.Field{Name: "area", Type: value.Int},
		value.Field{Name: "zip", Type: value.Int},
		value.Field{Name: "addr", Type: value.Str},
	)
	return Relation{Schema: s, Rows: []value.Row{
		{value.NewInt(617), value.NewInt(2139), value.NewString("32 Vassar St")},
		{value.NewInt(212), value.NewInt(10001), value.NewString("350 5th Ave")},
		{value.NewInt(617), value.NewInt(2142), value.NewString("1 Broadway")},
		{value.NewInt(617), value.NewInt(2138), value.NewString("1 Oxford St")},
		{value.NewInt(212), value.NewInt(10002), value.NewString("B St")},
	}}
}

func TestProject(t *testing.T) {
	rel := areasRel()
	got, err := Project(rel, []string{"zip", "area"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.String() != "zip:int, area:int" {
		t.Errorf("schema: %s", got.Schema)
	}
	if got.Rows[0][0].Int() != 2139 || got.Rows[0][1].Int() != 617 {
		t.Errorf("row 0: %v", got.Rows[0])
	}
	if _, err := Project(rel, []string{"nope"}); err == nil {
		t.Error("expected error for unknown field")
	}
}

func TestAppend(t *testing.T) {
	rel := areasRel()
	got, err := Append(rel, value.Field{Name: "flag", Type: value.Bool}, func(r value.Row) value.Value {
		return value.NewBool(r[0].Int() == 617)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Arity() != 4 {
		t.Fatalf("arity %d", got.Schema.Arity())
	}
	if !got.Rows[0][3].Bool() || got.Rows[1][3].Bool() {
		t.Error("computed column wrong")
	}
	// Project then append is the identity modulo order (paper: append is
	// project's reciprocal).
	if _, err := Append(rel, value.Field{Name: "area", Type: value.Int}, nil); err == nil {
		t.Error("duplicate field must fail")
	}
}

func TestSelectAndPartition(t *testing.T) {
	rel := areasRel()
	pred := algebra.True.And("area", algebra.OpEq, value.NewInt(617))
	sel, err := Select(rel, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 3 {
		t.Errorf("select rows: %d", len(sel.Rows))
	}
	yes, no, err := Partition(rel, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(yes.Rows) != 3 || len(no.Rows) != 2 {
		t.Errorf("partition: %d / %d", len(yes.Rows), len(no.Rows))
	}
	bad := algebra.True.And("nope", algebra.OpEq, value.NewInt(1))
	if _, err := Select(rel, bad); err == nil {
		t.Error("bad predicate should fail")
	}
	if _, _, err := Partition(rel, bad); err == nil {
		t.Error("bad predicate should fail")
	}
}

func TestOrderBy(t *testing.T) {
	rel := areasRel()
	got, err := OrderBy(rel, []algebra.OrderKey{{Field: "zip"}})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, r := range got.Rows {
		if r[1].Int() < prev {
			t.Fatal("not sorted")
		}
		prev = r[1].Int()
	}
	// Original must be untouched (Clone semantics).
	if areasRel().Rows[0][1].Int() != 2139 {
		t.Error("input mutated")
	}
	desc, _ := OrderBy(rel, []algebra.OrderKey{{Field: "zip", Desc: true}})
	if desc.Rows[0][1].Int() != 10002 {
		t.Errorf("desc first: %v", desc.Rows[0])
	}
	if _, err := OrderBy(rel, []algebra.OrderKey{{Field: "nope"}}); err == nil {
		t.Error("unknown field should fail")
	}
}

func TestGroupByClusters(t *testing.T) {
	rel := areasRel()
	got, err := GroupBy(rel, []string{"area"})
	if err != nil {
		t.Fatal(err)
	}
	wantAreas := []int64{617, 617, 617, 212, 212}
	for i, r := range got.Rows {
		if r[0].Int() != wantAreas[i] {
			t.Fatalf("row %d area %d, want %d", i, r[0].Int(), wantAreas[i])
		}
	}
	// Within-group order preserved: zips 2139, 2142, 2138.
	if got.Rows[0][1].Int() != 2139 || got.Rows[1][1].Int() != 2142 || got.Rows[2][1].Int() != 2138 {
		t.Error("within-group order not preserved")
	}
	if _, err := GroupBy(rel, []string{"nope"}); err == nil {
		t.Error("unknown field should fail")
	}
}

func TestLimit(t *testing.T) {
	rel := areasRel()
	if got := Limit(rel, 2); len(got.Rows) != 2 {
		t.Errorf("limit 2: %d", len(got.Rows))
	}
	if got := Limit(rel, 100); len(got.Rows) != 5 {
		t.Errorf("limit 100: %d", len(got.Rows))
	}
	if got := Limit(rel, -1); len(got.Rows) != 5 {
		t.Errorf("limit -1 should mean all: %d", len(got.Rows))
	}
}

func TestFoldMatchesPaperExample(t *testing.T) {
	// fold zip,addr by area: [Area1, [[Zip11, Addr11], ...]], ... (paper §3.5.2).
	rel := areasRel()
	got, err := FoldNestedLoop(rel, []string{"zip", "addr"}, []string{"area"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.String() != "area:int, folded_zip_addr:list" {
		t.Errorf("schema: %s", got.Schema)
	}
	if len(got.Rows) != 2 {
		t.Fatalf("groups: %d", len(got.Rows))
	}
	// First group is area 617 (first appearance), with three [zip addr] pairs.
	if got.Rows[0][0].Int() != 617 {
		t.Errorf("group 0 key: %v", got.Rows[0][0])
	}
	nested := got.Rows[0][1].List()
	if len(nested) != 3 {
		t.Fatalf("group 0 size: %d", len(nested))
	}
	if nested[0].List()[0].Int() != 2139 || nested[0].List()[1].Str() != "32 Vassar St" {
		t.Errorf("group 0 entry 0: %v", nested[0])
	}
}

func TestFoldHashEqualsNestedLoop(t *testing.T) {
	// Property (paper §4.2): the hash rendering must produce exactly the
	// nested-loop rendering.
	r := rand.New(rand.NewSource(3))
	s := value.MustSchema(
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "b", Type: value.Int},
		value.Field{Name: "c", Type: value.Str},
	)
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(60)
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{
				value.NewInt(int64(r.Intn(5))),
				value.NewInt(int64(r.Intn(100))),
				value.NewString(string(rune('a' + r.Intn(4)))),
			}
		}
		rel := Relation{Schema: s, Rows: rows}
		for _, spec := range []struct{ vals, by []string }{
			{[]string{"b"}, []string{"a"}},
			{[]string{"b", "c"}, []string{"a"}},
			{[]string{"b"}, []string{"a", "c"}},
		} {
			nl, err := FoldNestedLoop(rel, spec.vals, spec.by)
			if err != nil {
				t.Fatal(err)
			}
			h, err := FoldHash(rel, spec.vals, spec.by)
			if err != nil {
				t.Fatal(err)
			}
			if len(nl.Rows) != len(h.Rows) {
				t.Fatalf("trial %d: group counts differ: %d vs %d", trial, len(nl.Rows), len(h.Rows))
			}
			for i := range nl.Rows {
				for j := range nl.Rows[i] {
					if !value.Equal(nl.Rows[i][j], h.Rows[i][j]) {
						t.Fatalf("trial %d row %d col %d: %v vs %v", trial, i, j, nl.Rows[i][j], h.Rows[i][j])
					}
				}
			}
		}
	}
}

func TestFoldUnfoldRoundtrip(t *testing.T) {
	rel := areasRel()
	folded, err := FoldHash(rel, []string{"zip", "addr"}, []string{"area"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unfold(folded, []string{"zip", "addr"}, []value.Kind{value.Int, value.Str})
	if err != nil {
		t.Fatal(err)
	}
	// Unfold emits group-by-group: same multiset as GroupBy(area).
	grouped, _ := GroupBy(rel, []string{"area"})
	if len(back.Rows) != len(grouped.Rows) {
		t.Fatalf("row count: %d vs %d", len(back.Rows), len(grouped.Rows))
	}
	for i := range back.Rows {
		if back.Rows[i][0].Int() != grouped.Rows[i][0].Int() ||
			back.Rows[i][1].Int() != grouped.Rows[i][1].Int() ||
			back.Rows[i][2].Str() != grouped.Rows[i][2].Str() {
			t.Fatalf("row %d: %v vs %v", i, back.Rows[i], grouped.Rows[i])
		}
	}
}

func TestUnfoldErrors(t *testing.T) {
	rel := areasRel()
	if _, err := Unfold(rel, []string{"x"}, []value.Kind{value.Int}); err == nil {
		t.Error("unfold of flat relation should fail")
	}
	folded, _ := FoldHash(rel, []string{"zip"}, []string{"area"})
	if _, err := Unfold(folded, []string{"a", "b"}, []value.Kind{value.Int}); err == nil {
		t.Error("name/type mismatch should fail")
	}
}

func TestPrejoin(t *testing.T) {
	customers := Relation{
		Schema: value.MustSchema(
			value.Field{Name: "cid", Type: value.Int},
			value.Field{Name: "name", Type: value.Str},
		),
		Rows: []value.Row{
			{value.NewInt(1), value.NewString("alice")},
			{value.NewInt(2), value.NewString("bob")},
		},
	}
	orders := Relation{
		Schema: value.MustSchema(
			value.Field{Name: "oid", Type: value.Int},
			value.Field{Name: "cid", Type: value.Int},
		),
		Rows: []value.Row{
			{value.NewInt(100), value.NewInt(1)},
			{value.NewInt(101), value.NewInt(1)},
			{value.NewInt(102), value.NewInt(2)},
			{value.NewInt(103), value.NewInt(9)}, // dangling
		},
	}
	got, err := Prejoin(orders, customers, "cid")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.String() != "oid:int, cid:int, name:string" {
		t.Errorf("schema: %s", got.Schema)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("rows: %d", len(got.Rows))
	}
	if got.Rows[0][2].Str() != "alice" || got.Rows[2][2].Str() != "bob" {
		t.Errorf("join values wrong: %v", got.Rows)
	}
	if _, err := Prejoin(orders, customers, "nope"); err == nil {
		t.Error("missing attribute should fail")
	}
	// fold over prejoined data (the paper's canonical pairing).
	folded, err := FoldHash(got, []string{"oid"}, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if len(folded.Rows) != 2 {
		t.Errorf("folded groups: %d", len(folded.Rows))
	}
}

func TestTranspose(t *testing.T) {
	m := value.NewList(
		value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3)),
		value.NewList(value.NewInt(4), value.NewInt(5), value.NewInt(6)),
	)
	got, err := Transpose(m)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewList(
		value.NewList(value.NewInt(1), value.NewInt(4)),
		value.NewList(value.NewInt(2), value.NewInt(5)),
		value.NewList(value.NewInt(3), value.NewInt(6)),
	)
	if !value.Equal(got, want) {
		t.Errorf("transpose: %v", got)
	}
	// transpose ∘ transpose = id.
	back, err := Transpose(got)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(back, m) {
		t.Errorf("double transpose: %v", back)
	}
	// Errors.
	if _, err := Transpose(value.NewInt(1)); err == nil {
		t.Error("scalar transpose should fail")
	}
	ragged := value.NewList(value.NewList(value.NewInt(1)), value.NewList(value.NewInt(2), value.NewInt(3)))
	if _, err := Transpose(ragged); err == nil {
		t.Error("ragged transpose should fail")
	}
	empty, err := Transpose(value.NewList())
	if err != nil || empty.Len() != 0 {
		t.Error("empty transpose should be empty")
	}
}

func TestChunk(t *testing.T) {
	rel := areasRel()
	chunks, err := Chunk(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, len(chunks))
	for i, c := range chunks {
		sizes[i] = len(c)
	}
	if !reflect.DeepEqual(sizes, []int{2, 2, 1}) {
		t.Errorf("chunk sizes: %v", sizes)
	}
	if _, err := Chunk(rel, 0); err == nil {
		t.Error("chunk 0 should fail")
	}
}

func TestGridBoundsAndAssign(t *testing.T) {
	s := value.MustSchema(
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
	)
	var rows []value.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, value.Row{
			value.NewFloat(float64(i % 10)),
			value.NewFloat(float64(i / 10)),
		})
	}
	rel := Relation{Schema: s, Rows: rows}
	bounds, err := ComputeGridBounds(rel, []algebra.GridDim{{Field: "x", Cells: 5}, {Field: "y", Cells: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0].Min != 0 || bounds[0].Max != 9 || bounds[0].Stride() != 1.8 {
		t.Errorf("bounds[0]: %+v", bounds[0])
	}
	cells, err := GridAssign(rel, bounds)
	if err != nil {
		t.Fatal(err)
	}
	// 5x5 grid over a uniform 10x10 lattice: 25 non-empty cells, 4 rows each.
	if len(cells) != 25 {
		t.Fatalf("cells: %d", len(cells))
	}
	total := 0
	for idx, cellRows := range cells {
		total += len(cellRows)
		coords := CellCoords(idx, bounds)
		// Every row in the cell must map back to the same coordinates.
		for _, r := range cellRows {
			if bounds[0].CellOf(r[0].Float()) != coords[0] || bounds[1].CellOf(r[1].Float()) != coords[1] {
				t.Fatalf("cell %d contains row %v outside its bounds", idx, r)
			}
		}
	}
	if total != 100 {
		t.Errorf("assigned rows: %d", total)
	}
}

func TestGridEdgeCases(t *testing.T) {
	s := value.MustSchema(value.Field{Name: "x", Type: value.Float})
	// Constant dimension: everything lands in cell 0.
	rel := Relation{Schema: s, Rows: []value.Row{
		{value.NewFloat(5)}, {value.NewFloat(5)},
	}}
	bounds, err := ComputeGridBounds(rel, []algebra.GridDim{{Field: "x", Cells: 4}})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := GridAssign(rel, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || len(cells[0]) != 2 {
		t.Errorf("constant dim cells: %v", cells)
	}
	// Max value must clamp into the last cell, not overflow.
	if c := (GridBounds{Min: 0, Max: 10, Cells: 4}).CellOf(10); c != 3 {
		t.Errorf("max clamps to %d", c)
	}
	if c := (GridBounds{Min: 0, Max: 10, Cells: 4}).CellOf(-1); c != 0 {
		t.Errorf("below-min clamps to %d", c)
	}
	// Nulls rejected.
	relNull := Relation{Schema: s, Rows: []value.Row{{value.NullValue()}}}
	if _, err := ComputeGridBounds(relNull, []algebra.GridDim{{Field: "x", Cells: 2}}); err == nil {
		t.Error("null in grid dimension should fail")
	}
	// Empty relation is fine.
	relEmpty := Relation{Schema: s}
	b, err := ComputeGridBounds(relEmpty, []algebra.GridDim{{Field: "x", Cells: 2}})
	if err != nil || b[0].Min != 0 || b[0].Max != 0 {
		t.Errorf("empty bounds: %+v %v", b, err)
	}
}

func TestCellIndexRoundtrip(t *testing.T) {
	bounds := []GridBounds{
		{Field: "a", Col: 0, Min: 0, Max: 1, Cells: 7},
		{Field: "b", Col: 1, Min: 0, Max: 1, Cells: 5},
		{Field: "c", Col: 2, Min: 0, Max: 1, Cells: 3},
	}
	for i := 0; i < 7*5*3; i++ {
		coords := CellCoords(uint64(i), bounds)
		// Rebuild the index from coordinates.
		idx := uint64(coords[0])
		idx = idx*5 + uint64(coords[1])
		idx = idx*3 + uint64(coords[2])
		if idx != uint64(i) {
			t.Fatalf("roundtrip %d -> %v -> %d", i, coords, idx)
		}
	}
}

func BenchmarkFoldNestedLoop(b *testing.B) {
	rel := syntheticFoldRel(2000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FoldNestedLoop(rel, []string{"b"}, []string{"a"})
	}
}

func BenchmarkFoldHash(b *testing.B) {
	rel := syntheticFoldRel(2000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FoldHash(rel, []string{"b"}, []string{"a"})
	}
}

func syntheticFoldRel(n, keys int) Relation {
	s := value.MustSchema(
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "b", Type: value.Int},
	)
	r := rand.New(rand.NewSource(1))
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(r.Intn(keys))), value.NewInt(int64(i))}
	}
	return Relation{Schema: s, Rows: rows}
}
