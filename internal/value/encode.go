package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Binary encoding of values and rows. Fixed-width kinds (Int, Float, Bool)
// encode without a tag into their natural widths; variable-width kinds carry
// a uvarint length prefix. Rows encode fields back-to-back with a leading
// null bitmap so the decoder can restore Nulls in typed columns.

// AppendValue appends the encoding of v (which must be of kind k, or Null)
// to dst and returns the extended slice. Null is encoded as the kind's zero
// value; callers that must distinguish Null use the row-level null bitmap.
func AppendValue(dst []byte, k Kind, v Value) []byte {
	switch k {
	case Int:
		var u uint64
		if !v.IsNull() {
			u = uint64(v.Int())
		}
		return binary.LittleEndian.AppendUint64(dst, u)
	case Float:
		var u uint64
		if !v.IsNull() {
			u = math.Float64bits(v.Float())
		}
		return binary.LittleEndian.AppendUint64(dst, u)
	case Bool:
		var b byte
		if !v.IsNull() && v.Bool() {
			b = 1
		}
		return append(dst, b)
	case Str:
		var s string
		if !v.IsNull() {
			s = v.Str()
		}
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case Bytes:
		var b []byte
		if !v.IsNull() {
			b = v.Bytes()
		}
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		return append(dst, b...)
	case List:
		var l []Value
		if !v.IsNull() {
			l = v.List()
		}
		dst = binary.AppendUvarint(dst, uint64(len(l)))
		for _, c := range l {
			dst = append(dst, byte(c.Kind()))
			dst = AppendValue(dst, c.Kind(), c)
		}
		return dst
	case Null:
		// Null carries no payload; list children are tagged so the kind byte
		// alone identifies them, and top-level nulls use the row bitmap.
		return dst
	default:
		panic(fmt.Sprintf("value: cannot encode kind %s", k))
	}
}

// DecodeValue decodes one value of kind k from buf, returning the value and
// the number of bytes consumed.
func DecodeValue(buf []byte, k Kind) (Value, int, error) {
	switch k {
	case Int:
		if len(buf) < 8 {
			return Value{}, 0, fmt.Errorf("value: short buffer for int")
		}
		return NewInt(int64(binary.LittleEndian.Uint64(buf))), 8, nil
	case Float:
		if len(buf) < 8 {
			return Value{}, 0, fmt.Errorf("value: short buffer for float")
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf))), 8, nil
	case Bool:
		if len(buf) < 1 {
			return Value{}, 0, fmt.Errorf("value: short buffer for bool")
		}
		return NewBool(buf[0] != 0), 1, nil
	case Str:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf)-sz) < n {
			return Value{}, 0, fmt.Errorf("value: short buffer for string")
		}
		return NewString(string(buf[sz : sz+int(n)])), sz + int(n), nil
	case Bytes:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf)-sz) < n {
			return Value{}, 0, fmt.Errorf("value: short buffer for bytes")
		}
		out := make([]byte, n)
		copy(out, buf[sz:sz+int(n)])
		return NewBytes(out), sz + int(n), nil
	case List:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("value: short buffer for list")
		}
		off := sz
		children := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			if off >= len(buf) {
				return Value{}, 0, fmt.Errorf("value: short buffer for list child")
			}
			ck := Kind(buf[off])
			off++
			c, used, err := DecodeValue(buf[off:], ck)
			if err != nil {
				return Value{}, 0, err
			}
			off += used
			children = append(children, c)
		}
		return NewList(children...), off, nil
	case Null:
		return NullValue(), 0, nil
	default:
		return Value{}, 0, fmt.Errorf("value: cannot decode kind %s", k)
	}
}

// AppendRow appends the row encoding (null bitmap + field encodings) to dst.
func AppendRow(dst []byte, s *Schema, r Row) []byte {
	nb := (len(s.Fields) + 7) / 8
	start := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	for i, f := range s.Fields {
		if r[i].IsNull() {
			dst[start+i/8] |= 1 << (i % 8)
		}
		dst = AppendValue(dst, f.Type, r[i])
	}
	return dst
}

// DecodeRow decodes one row, returning it and the bytes consumed.
func DecodeRow(buf []byte, s *Schema) (Row, int, error) {
	nb := (len(s.Fields) + 7) / 8
	if len(buf) < nb {
		return nil, 0, fmt.Errorf("value: short buffer for null bitmap")
	}
	bitmap := buf[:nb]
	off := nb
	row := make(Row, len(s.Fields))
	for i, f := range s.Fields {
		v, used, err := DecodeValue(buf[off:], f.Type)
		if err != nil {
			return nil, 0, fmt.Errorf("value: field %q: %w", f.Name, err)
		}
		off += used
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			row[i] = NullValue()
		} else {
			row[i] = v
		}
	}
	return row, off, nil
}

// EncodedRowSize returns the number of bytes AppendRow would write.
func EncodedRowSize(s *Schema, r Row) int {
	n := (len(s.Fields) + 7) / 8
	for i, f := range s.Fields {
		n += encodedValueSize(f.Type, r[i])
	}
	return n
}

func encodedValueSize(k Kind, v Value) int {
	switch k {
	case Int, Float:
		return 8
	case Bool:
		return 1
	case Str:
		var l int
		if !v.IsNull() {
			l = len(v.Str())
		}
		return uvarintLen(uint64(l)) + l
	case Bytes:
		var l int
		if !v.IsNull() {
			l = len(v.Bytes())
		}
		return uvarintLen(uint64(l)) + l
	case List:
		var l []Value
		if !v.IsNull() {
			l = v.List()
		}
		n := uvarintLen(uint64(len(l)))
		for _, c := range l {
			n += 1 + encodedValueSize(c.Kind(), c)
		}
		return n
	default:
		return 0
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Parse converts the textual form s into a value of kind k. It is used by
// the CSV loader and the shell.
func Parse(k Kind, s string) (Value, error) {
	if s == "null" || s == "" {
		return NullValue(), nil
	}
	switch k {
	case Int:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parse int %q: %w", s, err)
		}
		return NewInt(i), nil
	case Float:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parse float %q: %w", s, err)
		}
		return NewFloat(f), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("value: parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case Str:
		if len(s) >= 2 && s[0] == '"' {
			u, err := strconv.Unquote(s)
			if err == nil {
				return NewString(u), nil
			}
		}
		return NewString(s), nil
	case Bytes:
		return NewBytes([]byte(s)), nil
	default:
		return Value{}, fmt.Errorf("value: cannot parse kind %s", k)
	}
}
