package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueEncodeRoundtrip(t *testing.T) {
	cases := []struct {
		k Kind
		v Value
	}{
		{Int, NewInt(0)},
		{Int, NewInt(-1)},
		{Int, NewInt(1 << 62)},
		{Float, NewFloat(3.14159)},
		{Float, NewFloat(-0.0)},
		{Bool, NewBool(true)},
		{Bool, NewBool(false)},
		{Str, NewString("")},
		{Str, NewString("hello, 世界")},
		{Bytes, NewBytes([]byte{0, 1, 2, 255})},
		{List, NewList(NewInt(1), NewString("x"), NewList(NewFloat(2.5)))},
		{List, NewList()},
	}
	for i, c := range cases {
		buf := AppendValue(nil, c.k, c.v)
		got, n, err := DecodeValue(buf, c.k)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !Equal(got, c.v) {
			t.Errorf("case %d: roundtrip %v -> %v", i, c.v, got)
		}
	}
}

func TestDecodeValueShortBuffer(t *testing.T) {
	for _, k := range []Kind{Int, Float, Bool, Str, Bytes} {
		if _, _, err := DecodeValue(nil, k); err == nil {
			t.Errorf("kind %s: expected error on empty buffer", k)
		}
	}
	// String claiming more bytes than available.
	buf := AppendValue(nil, Str, NewString("hello"))
	if _, _, err := DecodeValue(buf[:3], Str); err == nil {
		t.Error("expected error on truncated string")
	}
}

func TestRowEncodeRoundtrip(t *testing.T) {
	s := MustSchema(
		Field{"t", Int},
		Field{"lat", Float},
		Field{"lon", Float},
		Field{"id", Str},
		Field{"ok", Bool},
	)
	rows := []Row{
		{NewInt(1), NewFloat(42.36), NewFloat(-71.06), NewString("car-1"), NewBool(true)},
		{NewInt(2), NullValue(), NewFloat(-71.0), NewString(""), NullValue()},
		{NullValue(), NullValue(), NullValue(), NullValue(), NullValue()},
	}
	var buf []byte
	for _, r := range rows {
		if got, want := EncodedRowSize(s, r), len(AppendRow(nil, s, r)); got != want {
			t.Errorf("EncodedRowSize=%d, actual=%d", got, want)
		}
		buf = AppendRow(buf, s, r)
	}
	off := 0
	for i, want := range rows {
		got, n, err := DecodeRow(buf[off:], s)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		off += n
		for j := range want {
			if !Equal(got[j], want[j]) {
				t.Errorf("row %d field %d: got %v want %v", i, j, got[j], want[j])
			}
		}
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestRowEncodeQuick(t *testing.T) {
	s := MustSchema(Field{"a", Int}, Field{"b", Float}, Field{"c", Str})
	f := func(a int64, b float64, c string) bool {
		r := Row{NewInt(a), NewFloat(b), NewString(c)}
		buf := AppendRow(nil, s, r)
		got, n, err := DecodeRow(buf, s)
		if err != nil || n != len(buf) {
			return false
		}
		return got[0].Int() == a && got[2].Str() == c &&
			(got[1].Float() == b || b != b) // NaN roundtrips as NaN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		k    Kind
		in   string
		want Value
	}{
		{Int, "42", NewInt(42)},
		{Int, "-7", NewInt(-7)},
		{Float, "2.5", NewFloat(2.5)},
		{Bool, "true", NewBool(true)},
		{Str, "plain", NewString("plain")},
		{Str, `"quoted"`, NewString("quoted")},
		{Bytes, "ab", NewBytes([]byte("ab"))},
		{Int, "null", NullValue()},
		{Float, "", NullValue()},
	}
	for i, c := range cases {
		got, err := Parse(c.k, c.in)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !Equal(got, c.want) {
			t.Errorf("case %d: Parse(%s,%q)=%v want %v", i, c.k, c.in, got, c.want)
		}
	}
	if _, err := Parse(Int, "xyz"); err == nil {
		t.Error("expected error parsing bad int")
	}
	if _, err := Parse(Float, "xyz"); err == nil {
		t.Error("expected error parsing bad float")
	}
	if _, err := Parse(Bool, "xyz"); err == nil {
		t.Error("expected error parsing bad bool")
	}
	if _, err := Parse(List, "[1]"); err == nil {
		t.Error("expected error parsing list")
	}
}

func TestEncodedValueFuzzRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 2)
		k := v.Kind()
		if k == Null {
			continue // null encodes via the row bitmap, not standalone
		}
		buf := AppendValue(nil, k, v)
		got, n, err := DecodeValue(buf, k)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", i, k, err)
		}
		if n != len(buf) || !Equal(got, v) {
			t.Fatalf("iter %d: roundtrip mismatch %v -> %v", i, v, got)
		}
	}
}
