// Package value implements the RodentStore data model (paper §3.2): typed
// scalar values, records, schemas, and the nested lists manipulated by the
// storage algebra. A database is a set of tables; each table holds records
// of n elements; elements carry one of the algebra's types
//
//	τ := int | float | string | ... | l:τ | [τ1, ..., τn]
//
// Scalars are represented by Value, a small tagged union that avoids
// interface boxing on hot paths. Nested lists ([τ1..τn]) are represented by
// the List kind, whose children are themselves Values.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the algebra's types.
type Kind uint8

const (
	// Null is the absence of a value. It sorts before everything.
	Null Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Float is a 64-bit IEEE float.
	Float
	// Str is a variable-length UTF-8 string.
	Str
	// Bytes is a variable-length byte string.
	Bytes
	// Bool is a boolean.
	Bool
	// List is a nesting [τ1, ..., τn]: an ordered list of child values.
	List
)

// String returns the type name as used by the algebra grammar.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Bytes:
		return "bytes"
	case Bool:
		return "bool"
	case List:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses a type name. It is the inverse of Kind.String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "null":
		return Null, nil
	case "int":
		return Int, nil
	case "float":
		return Float, nil
	case "string":
		return Str, nil
	case "bytes":
		return Bytes, nil
	case "bool":
		return Bool, nil
	case "list":
		return List, nil
	}
	return Null, fmt.Errorf("value: unknown type %q", s)
}

// FixedSize reports the on-disk size of the kind's fixed-width encoding, or
// 0 if the kind is variable-length.
func (k Kind) FixedSize() int {
	switch k {
	case Int, Float:
		return 8
	case Bool:
		return 1
	default:
		return 0
	}
}

// Value is a tagged union holding one scalar or one nesting.
// The zero Value is Null.
type Value struct {
	kind Kind
	i    int64   // Int, Bool (0/1)
	f    float64 // Float
	s    string  // Str
	b    []byte  // Bytes
	l    []Value // List
}

// NewInt returns an Int value.
func NewInt(v int64) Value { return Value{kind: Int, i: v} }

// NewFloat returns a Float value.
func NewFloat(v float64) Value { return Value{kind: Float, f: v} }

// NewString returns a Str value.
func NewString(v string) Value { return Value{kind: Str, s: v} }

// NewBytes returns a Bytes value. The slice is retained, not copied.
func NewBytes(v []byte) Value { return Value{kind: Bytes, b: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// NewList returns a List value wrapping children. The slice is retained.
func NewList(children ...Value) Value { return Value{kind: List, l: children} }

// NullValue returns the Null value.
func NullValue() Value { return Value{} }

// Kind returns the value's type tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is Null.
func (v Value) IsNull() bool { return v.kind == Null }

// Int returns the integer payload. It panics if the value is not an Int or Bool.
func (v Value) Int() int64 {
	if v.kind != Int && v.kind != Bool {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the float payload; Int values are widened. Panics otherwise.
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: Float() on %s", v.kind))
}

// Str returns the string payload. Panics if the value is not a Str.
func (v Value) Str() string {
	if v.kind != Str {
		panic(fmt.Sprintf("value: Str() on %s", v.kind))
	}
	return v.s
}

// Bytes returns the byte payload. Panics if the value is not Bytes.
func (v Value) Bytes() []byte {
	if v.kind != Bytes {
		panic(fmt.Sprintf("value: Bytes() on %s", v.kind))
	}
	return v.b
}

// Bool returns the boolean payload. Panics if the value is not a Bool.
func (v Value) Bool() bool {
	if v.kind != Bool {
		panic(fmt.Sprintf("value: Bool() on %s", v.kind))
	}
	return v.i != 0
}

// List returns the child values. Panics if the value is not a List.
func (v Value) List() []Value {
	if v.kind != List {
		panic(fmt.Sprintf("value: List() on %s", v.kind))
	}
	return v.l
}

// Len returns the number of children of a List, the byte length of a
// Str/Bytes, and 1 for scalars (0 for Null). This backs the algebra's
// count() helper.
func (v Value) Len() int {
	switch v.kind {
	case List:
		return len(v.l)
	case Str:
		return len(v.s)
	case Bytes:
		return len(v.b)
	case Null:
		return 0
	default:
		return 1
	}
}

// Compare orders two values. Null < Bool < Int/Float < Str < Bytes < List;
// Int and Float compare numerically with each other. Lists compare
// lexicographically. The result is -1, 0 or +1.
func Compare(a, b Value) int {
	ra, rb := rank(a.kind), rank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.kind {
	case Null:
		return 0
	case Bool:
		return cmpInt(a.i, b.i)
	case Int:
		if b.kind == Float {
			return cmpFloat(float64(a.i), b.f)
		}
		return cmpInt(a.i, b.i)
	case Float:
		if b.kind == Int {
			return cmpFloat(a.f, float64(b.i))
		}
		return cmpFloat(a.f, b.f)
	case Str:
		return strings.Compare(a.s, b.s)
	case Bytes:
		return strings.Compare(string(a.b), string(b.b))
	case List:
		n := len(a.l)
		if len(b.l) < n {
			n = len(b.l)
		}
		for i := 0; i < n; i++ {
			if c := Compare(a.l[i], b.l[i]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(a.l)), int64(len(b.l)))
	}
	return 0
}

// rank groups Int and Float into the same comparison class.
func rank(k Kind) int {
	switch k {
	case Null:
		return 0
	case Bool:
		return 1
	case Int, Float:
		return 2
	case Str:
		return 3
	case Bytes:
		return 4
	case List:
		return 5
	}
	return 6
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int { return CompareFloats(a, b) }

// CompareFloats is the float ordering Compare uses: NaNs sort before
// everything (stable, arbitrary choice), equal NaNs compare equal. It is
// exported so vectorized comparison loops (algebra.CompilePred) share the
// one definition instead of a hand-synchronized copy.
func CompareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	default:
		return 0
	}
}

// Equal reports deep equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash consistent with Equal (used by hash-based fold
// and group-by rendering).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (int, error)
}

func (v Value) hashInto(h hasher) {
	var tag [1]byte
	switch v.kind {
	case Null:
		tag[0] = 0
		h.Write(tag[:])
	case Bool:
		tag[0] = 1
		h.Write(tag[:])
		writeUint64(h, uint64(v.i))
	case Int:
		tag[0] = 2
		h.Write(tag[:])
		writeUint64(h, uint64(v.i))
	case Float:
		// Hash integral floats identically to ints so Equal ⇒ same hash.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			tag[0] = 2
			h.Write(tag[:])
			writeUint64(h, uint64(int64(v.f)))
		} else {
			tag[0] = 3
			h.Write(tag[:])
			writeUint64(h, math.Float64bits(v.f))
		}
	case Str:
		tag[0] = 4
		h.Write(tag[:])
		h.Write([]byte(v.s))
	case Bytes:
		tag[0] = 5
		h.Write(tag[:])
		h.Write(v.b)
	case List:
		tag[0] = 6
		h.Write(tag[:])
		for _, c := range v.l {
			c.hashInto(h)
		}
	}
}

func writeUint64(h hasher, u uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// String renders the value in the algebra's literal syntax.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Str:
		return strconv.Quote(v.s)
	case Bytes:
		return fmt.Sprintf("0x%x", v.b)
	case List:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, c := range v.l {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
		sb.WriteByte(']')
		return sb.String()
	}
	return "?"
}

// Row is one record: a flat list of field values in schema order.
type Row []Value

// Clone returns a deep-enough copy of the row (scalar payloads are immutable;
// only the slice spine is copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Field describes one column of a schema.
type Field struct {
	Name string
	Type Kind
}

// Schema is an ordered list of named, typed fields.
type Schema struct {
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema, validating that names are unique and non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("value: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("value: duplicate field %q", f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for static schemas; it panics on error.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named field, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Arity returns the number of fields.
func (s *Schema) Arity() int { return len(s.Fields) }

// Names returns the field names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// Project returns a new schema with the named fields, plus the index of each
// in the source schema.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	fields := make([]Field, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, nil, fmt.Errorf("value: no field %q in schema (%s)", n, strings.Join(s.Names(), ", "))
		}
		fields = append(fields, s.Fields[i])
		idx = append(idx, i)
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	return out, idx, nil
}

// String renders the schema as "name:type, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.Name + ":" + f.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Validate checks that the row conforms to the schema (arity and types;
// Null is accepted for any type, and Int is accepted where Float is declared).
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Fields) {
		return fmt.Errorf("value: row arity %d != schema arity %d", len(r), len(s.Fields))
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := s.Fields[i].Type
		if v.kind == want || (want == Float && v.kind == Int) {
			continue
		}
		return fmt.Errorf("value: field %q: got %s, want %s", s.Fields[i].Name, v.kind, want)
	}
	return nil
}

// SortRows sorts rows in place by the given key columns (ascending per key
// unless desc[i] is true). The sort is stable so secondary groupings survive.
func SortRows(rows []Row, keys []int, desc []bool) {
	sort.SliceStable(rows, func(a, b int) bool {
		for k, col := range keys {
			c := Compare(rows[a][col], rows[b][col])
			if c == 0 {
				continue
			}
			if k < len(desc) && desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}
