package value

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Null, Int, Float, Str, Bytes, Bool, List} {
		got, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("roundtrip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := KindFromString("widget"); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestValueAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int: got %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float: got %g", got)
	}
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("Int widening: got %g", got)
	}
	if got := NewString("hi").Str(); got != "hi" {
		t.Errorf("Str: got %q", got)
	}
	if got := NewBool(true); !got.Bool() {
		t.Error("Bool: got false")
	}
	if got := NewBytes([]byte{1, 2}).Bytes(); len(got) != 2 {
		t.Errorf("Bytes: got %v", got)
	}
	l := NewList(NewInt(1), NewInt(2), NewInt(3))
	if l.Len() != 3 {
		t.Errorf("List len: got %d", l.Len())
	}
	if !NullValue().IsNull() {
		t.Error("zero value should be null")
	}
	if NullValue().Len() != 0 {
		t.Error("null Len should be 0")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewString("x").Int() },
		func() { NewString("x").Float() },
		func() { NewInt(1).Str() },
		func() { NewInt(1).Bytes() },
		func() { NewInt(1).Bool() },
		func() { NewInt(1).List() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.5), NewInt(1), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NullValue(), NewInt(-100), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewInt(0), -1}, // bool ranks below numerics
		{NewList(NewInt(1)), NewList(NewInt(1), NewInt(2)), -1},
		{NewList(NewInt(2)), NewList(NewInt(1), NewInt(9)), 1},
		{NewBytes([]byte("a")), NewBytes([]byte("b")), -1},
		{NewString("z"), NewBytes([]byte("a")), -1}, // str ranks below bytes
	}
	for i, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v)=%d want %d", i, c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("case %d reversed: got %d want %d", i, got, -c.want)
		}
	}
}

func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN should compare equal to itself for stable sorting")
	}
	if Compare(nan, NewFloat(0)) != -1 {
		t.Error("NaN should sort before numbers")
	}
	if Compare(NewFloat(0), nan) != 1 {
		t.Error("numbers should sort after NaN")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewFloat(7)},
		{NewString("abc"), NewString("abc")},
		{NewList(NewInt(1), NewString("x")), NewList(NewInt(1), NewString("x"))},
	}
	for i, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("case %d: expected equal", i)
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("case %d: Equal values with different hashes", i)
		}
	}
}

func TestHashProperty(t *testing.T) {
	// Equal values must hash identically; Int/Float cross-type equality holds
	// for exactly representable integers, so their hashes must agree too.
	f := func(x int32) bool {
		return NewInt(int64(x)).Hash() == NewFloat(float64(x)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(5), "5"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), `"hi"`},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NullValue(), "null"},
		{NewList(NewInt(1), NewInt(2)), "[1, 2]"},
		{NewBytes([]byte{0xab}), "0xab"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s, err := NewSchema(Field{"a", Int}, Field{"b", Str}, Field{"c", Float})
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 3 {
		t.Errorf("arity: got %d", s.Arity())
	}
	if s.Index("b") != 1 || s.Index("zzz") != -1 {
		t.Error("Index lookup wrong")
	}
	if got := s.String(); got != "a:int, b:string, c:float" {
		t.Errorf("String: %q", got)
	}
	if !reflect.DeepEqual(s.Names(), []string{"a", "b", "c"}) {
		t.Errorf("Names: %v", s.Names())
	}

	if _, err := NewSchema(Field{"a", Int}, Field{"a", Str}); err == nil {
		t.Error("expected duplicate-name error")
	}
	if _, err := NewSchema(Field{"", Int}); err == nil {
		t.Error("expected empty-name error")
	}
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(Field{"a", Int}, Field{"b", Str}, Field{"c", Float})
	p, idx, err := s.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, []int{2, 0}) {
		t.Errorf("idx: %v", idx)
	}
	if p.String() != "c:float, a:int" {
		t.Errorf("projected schema: %q", p.String())
	}
	if _, _, err := s.Project([]string{"nope"}); err == nil {
		t.Error("expected missing-field error")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := MustSchema(Field{"a", Int}, Field{"b", Float})
	if err := s.Validate(Row{NewInt(1), NewFloat(2)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{NewInt(1), NewInt(2)}); err != nil {
		t.Errorf("int-for-float should be accepted: %v", err)
	}
	if err := s.Validate(Row{NullValue(), NullValue()}); err != nil {
		t.Errorf("nulls should be accepted: %v", err)
	}
	if err := s.Validate(Row{NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := s.Validate(Row{NewString("x"), NewFloat(2)}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSortRows(t *testing.T) {
	rows := []Row{
		{NewInt(2), NewString("b")},
		{NewInt(1), NewString("z")},
		{NewInt(2), NewString("a")},
		{NewInt(1), NewString("a")},
	}
	SortRows(rows, []int{0, 1}, nil)
	want := [][2]interface{}{{int64(1), "a"}, {int64(1), "z"}, {int64(2), "a"}, {int64(2), "b"}}
	for i, w := range want {
		if rows[i][0].Int() != w[0].(int64) || rows[i][1].Str() != w[1].(string) {
			t.Fatalf("row %d: got (%v,%v)", i, rows[i][0], rows[i][1])
		}
	}
	SortRows(rows, []int{0}, []bool{true})
	if rows[0][0].Int() != 2 {
		t.Error("descending sort failed")
	}
}

// randomValue generates a random scalar-or-shallow-list value for property
// tests. Depth is bounded so tests stay fast.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth <= 0 && k == 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return NullValue()
	case 1:
		return NewInt(r.Int63() - r.Int63())
	case 2:
		return NewFloat(r.NormFloat64() * 1e6)
	case 3:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return NewString(string(b))
	case 4:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return NewBytes(b)
	case 5:
		return NewBool(r.Intn(2) == 0)
	default:
		n := r.Intn(4)
		children := make([]Value, n)
		for i := range children {
			children[i] = randomValue(r, depth-1)
		}
		return NewList(children...)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := make([]Value, 200)
	for i := range vals {
		vals[i] = randomValue(r, 2)
	}
	// Antisymmetry and reflexivity.
	for i := 0; i < 50; i++ {
		a, b := vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v vs %v", a, b)
		}
		if Compare(a, a) != 0 {
			t.Fatalf("reflexivity violated for %v", a)
		}
	}
	// Sorting with Compare must yield a sorted sequence (transitivity smoke test).
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	for i := 1; i < len(vals); i++ {
		if Compare(vals[i-1], vals[i]) > 0 {
			t.Fatalf("sequence not sorted at %d", i)
		}
	}
}
