package nesting

import (
	"testing"

	"rodentstore/internal/value"
	"rodentstore/internal/zorder"
)

// These tests execute the paper's formal transform definitions literally
// through the comprehension engine, tying the §3.5 transforms back to the
// §3.3 semantics they are defined in.

// TestPaperDeltaComprehension evaluates the paper's delta definition
//
//	∆(N) ≡ [a − b | [a, b] ← [N, [0, n | \n ← N, limit count(N)−1]]]
//
// i.e. pair N with itself shifted right by one (prefixed with 0) and emit
// pairwise differences. The result must reconstruct N by prefix sums.
func TestPaperDeltaComprehension(t *testing.T) {
	N := list(100, 103, 101, 108, 108)

	// Inner comprehension: [0, n | \n ← N, limit count(N)−1] — N shifted.
	shifted := []value.Value{value.NewInt(0)}
	inner := &Comprehension{
		Generators: []Generator{{Var: "n", Source: func(*Env) value.Value { return N }}},
		Head:       func(e *Env) value.Value { return e.Val("n") },
		Limit:      N.Len() - 1,
	}
	innerRes, err := inner.Eval()
	if err != nil {
		t.Fatal(err)
	}
	shifted = append(shifted, innerRes.List()...)
	shiftedN := value.NewList(shifted...)

	// Outer: [a − b | [a,b] ← zip(N, shifted)] — expressed with a generator
	// over positions (the pairing [N, [...]] of the paper zips the lists).
	outer := &Comprehension{
		Generators: []Generator{{Var: "a", Source: func(*Env) value.Value { return N }}},
		Head: func(e *Env) value.Value {
			b := shiftedN.List()[e.Pos("a")]
			return value.NewInt(e.Val("a").Int() - b.Int())
		},
		Limit: -1,
	}
	deltas, err := outer.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want := list(100, 3, -2, 7, 0)
	if !value.Equal(deltas, want) {
		t.Fatalf("∆(N) = %v, want %v", deltas, want)
	}
	// Prefix sums reconstruct N (losslessness of the formal definition).
	sum := int64(0)
	for i, d := range deltas.List() {
		sum += d.Int()
		if sum != N.List()[i].Int() {
			t.Fatalf("prefix sum at %d: %d != %d", i, sum, N.List()[i].Int())
		}
	}
}

// TestPaperZorderComprehension evaluates the paper's zorder definition
//
//	zorder(N) ≡ [r' | \r ← N, \r' ← r,
//	             r' orderby interleave(bin(pos(r)), bin(pos(r'))) ASC]
//
// over a 2-level nesting and checks the result equals sorting the elements
// by their Morton code zorder.Interleave2(pos(r), pos(r')).
func TestPaperZorderComprehension(t *testing.T) {
	// A 4×4 matrix holding values 10*row + col so provenance is visible.
	var rows []value.Value
	for r := 0; r < 4; r++ {
		var cols []value.Value
		for c := 0; c < 4; c++ {
			cols = append(cols, value.NewInt(int64(10*r+c)))
		}
		rows = append(rows, value.NewList(cols...))
	}
	N := value.NewList(rows...)

	c := &Comprehension{
		Generators: []Generator{
			{Var: "r", Source: func(*Env) value.Value { return N }},
			{Var: "rp", Source: func(e *Env) value.Value { return e.Val("r") }},
		},
		Head: func(e *Env) value.Value { return e.Val("rp") },
		// orderby interleave(bin(pos(r)), bin(pos(r'))): the inner (column)
		// position takes the low interleave bits so the traversal visits
		// the (0,0),(0,1),(1,0),(1,1) quadrant first — the standard z.
		OrderKey: func(e *Env) value.Value {
			z := zorder.Interleave2(uint32(e.Pos("rp")), uint32(e.Pos("r")))
			return value.NewInt(int64(z))
		},
		Limit: -1,
	}
	got, err := c.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 16 {
		t.Fatalf("length %d", got.Len())
	}
	// The first four elements must be the 2×2 quadrant (0,0),(0,1),(1,0),(1,1)
	// in z order: values 0, 1, 10, 11.
	want := []int64{0, 1, 10, 11}
	for i, w := range want {
		if got.List()[i].Int() != w {
			t.Fatalf("z-order prefix: got %v", got.List()[:4])
		}
	}
	// Every element appears exactly once (it is a permutation).
	seen := map[int64]bool{}
	for _, v := range got.List() {
		if seen[v.Int()] {
			t.Fatalf("duplicate %d", v.Int())
		}
		seen[v.Int()] = true
	}
}

// TestPaperFoldComprehension evaluates §3.5.2's fold definition
//
//	fold_B,A(N) ≡ [r.A, [r'.B | \r' ← N, r.A = r'.A] | \r ← N]
//
// with the outer duplicate suppression of Algorithm 1, and checks it against
// the transforms-level implementations' documented example shape.
func TestPaperFoldComprehension(t *testing.T) {
	// N = [[area, zip]] rows.
	N := value.NewList(
		value.NewList(value.NewInt(617), value.NewInt(2139)),
		value.NewList(value.NewInt(212), value.NewInt(10001)),
		value.NewList(value.NewInt(617), value.NewInt(2142)),
	)
	// Inner comprehension parameterized by the outer row's key.
	innerFor := func(key int64) value.Value {
		c := &Comprehension{
			Generators: []Generator{{Var: "rp", Source: func(*Env) value.Value { return N }}},
			Where:      func(e *Env) bool { return e.Val("rp").List()[0].Int() == key },
			Head:       func(e *Env) value.Value { return e.Val("rp").List()[1] },
			Limit:      -1,
		}
		v, err := c.Eval()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Outer with groupby on the key: one result element per distinct key.
	outer := &Comprehension{
		Generators: []Generator{{Var: "r", Source: func(*Env) value.Value { return N }}},
		Head: func(e *Env) value.Value {
			key := e.Val("r").List()[0]
			return value.NewList(key, innerFor(key.Int()))
		},
		GroupKey: func(e *Env) value.Value { return e.Val("r").List()[0] },
		Limit:    -1,
	}
	res, err := outer.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// Two groups (617 and 212); each group's elements are identical fold
	// rows, so take the first of each.
	if res.Len() != 2 {
		t.Fatalf("groups: %v", res)
	}
	g617 := res.List()[0].List()[0]
	if g617.List()[0].Int() != 617 || !value.Equal(g617.List()[1], list(2139, 2142)) {
		t.Errorf("fold group 617: %v", g617)
	}
	g212 := res.List()[1].List()[0]
	if g212.List()[0].Int() != 212 || !value.Equal(g212.List()[1], list(10001)) {
		t.Errorf("fold group 212: %v", g212)
	}
}
