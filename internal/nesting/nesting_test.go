package nesting

import (
	"testing"

	"rodentstore/internal/value"
)

func list(vs ...int64) value.Value {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		out[i] = value.NewInt(v)
	}
	return value.NewList(out...)
}

// table T = [[zip, area, addr]] from the paper's §3.3 example.
func sampleTable() value.Value {
	return value.NewList(
		value.NewList(value.NewInt(2139), value.NewInt(617), value.NewString("32 Vassar St")),
		value.NewList(value.NewInt(2142), value.NewInt(617), value.NewString("1 Broadway")),
		value.NewList(value.NewInt(10001), value.NewInt(212), value.NewString("350 5th Ave")),
		value.NewList(value.NewInt(2138), value.NewInt(617), value.NewString("1 Oxford St")),
	)
}

func TestRowMajorComprehension(t *testing.T) {
	// Nr = [[r.Zip, r.Area, r.Addr] | \r ← T]: the identity on rows.
	T := sampleTable()
	c := &Comprehension{
		Generators: []Generator{{Var: "r", Source: func(*Env) value.Value { return T }}},
		Head:       func(e *Env) value.Value { return e.Val("r") },
		Limit:      -1,
	}
	got, err := c.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, T) {
		t.Errorf("row-major comprehension should be identity:\n got %v\nwant %v", got, T)
	}
}

func TestColumnMajorComprehension(t *testing.T) {
	// Nc = [[r.Zip|\r←T], [r.Area|\r←T], [r.Addr|\r←T]].
	T := sampleTable()
	colOf := func(idx int) value.Value {
		c := &Comprehension{
			Generators: []Generator{{Var: "r", Source: func(*Env) value.Value { return T }}},
			Head:       func(e *Env) value.Value { return e.Val("r").List()[idx] },
			Limit:      -1,
		}
		v, err := c.Eval()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	zips := colOf(0)
	if !value.Equal(zips, list(2139, 2142, 10001, 2138)) {
		t.Errorf("zip column: %v", zips)
	}
	// φ(Nc) lays out all zips, then all areas, then all addrs.
	nc := value.NewList(colOf(0), colOf(1), colOf(2))
	flat := Flatten(nc)
	if len(flat) != 12 {
		t.Fatalf("flatten length %d", len(flat))
	}
	if flat[0].Int() != 2139 || flat[3].Int() != 2138 || flat[4].Int() != 617 {
		t.Errorf("column-major flattening wrong: %v", flat[:6])
	}
}

func TestPaperSortedZipComprehension(t *testing.T) {
	// Nz = [r.Zip | \r ← T, r.Area = 617, orderby r.Zip ASC] (paper §3.3).
	T := sampleTable()
	c := &Comprehension{
		Generators: []Generator{{Var: "r", Source: func(*Env) value.Value { return T }}},
		Where:      func(e *Env) bool { return e.Val("r").List()[1].Int() == 617 },
		Head:       func(e *Env) value.Value { return e.Val("r").List()[0] },
		OrderKey:   func(e *Env) value.Value { return e.Val("r").List()[0] },
		Limit:      -1,
	}
	got, err := c.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want := list(2138, 2139, 2142)
	if !value.Equal(got, want) {
		t.Errorf("Nz: got %v want %v", got, want)
	}
}

func TestOrderByDesc(t *testing.T) {
	src := list(3, 1, 2)
	c := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return src }}},
		Head:       func(e *Env) value.Value { return e.Val("x") },
		OrderKey:   func(e *Env) value.Value { return e.Val("x") },
		OrderDesc:  true,
		Limit:      -1,
	}
	got, _ := c.Eval()
	if !value.Equal(got, list(3, 2, 1)) {
		t.Errorf("desc order: %v", got)
	}
}

func TestLimitClause(t *testing.T) {
	src := list(1, 2, 3, 4, 5)
	c := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return src }}},
		Head:       func(e *Env) value.Value { return e.Val("x") },
		Limit:      2,
	}
	got, _ := c.Eval()
	if !value.Equal(got, list(1, 2)) {
		t.Errorf("limit: %v", got)
	}
	// Limit 0 yields the empty nesting.
	c.Limit = 0
	got, _ = c.Eval()
	if got.Len() != 0 {
		t.Errorf("limit 0: %v", got)
	}
}

func TestGroupByClause(t *testing.T) {
	// Group areas: elements with equal group key fall into one sub-nesting.
	T := sampleTable()
	c := &Comprehension{
		Generators: []Generator{{Var: "r", Source: func(*Env) value.Value { return T }}},
		Head:       func(e *Env) value.Value { return e.Val("r").List()[0] },
		GroupKey:   func(e *Env) value.Value { return e.Val("r").List()[1] },
		Limit:      -1,
	}
	got, err := c.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// Two groups: area 617 (zips 2139, 2142, 2138) then area 212 (10001).
	if got.Len() != 2 {
		t.Fatalf("groups: %v", got)
	}
	if !value.Equal(got.List()[0], list(2139, 2142, 2138)) {
		t.Errorf("group 0: %v", got.List()[0])
	}
	if !value.Equal(got.List()[1], list(10001)) {
		t.Errorf("group 1: %v", got.List()[1])
	}
}

func TestDependentGenerators(t *testing.T) {
	// [x | \row ← M, \x ← row]: flattens a matrix row by row.
	M := value.NewList(list(1, 2), list(3, 4, 5))
	c := &Comprehension{
		Generators: []Generator{
			{Var: "row", Source: func(*Env) value.Value { return M }},
			{Var: "x", Source: func(e *Env) value.Value { return e.Val("row") }},
		},
		Head:  func(e *Env) value.Value { return e.Val("x") },
		Limit: -1,
	}
	got, err := c.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, list(1, 2, 3, 4, 5)) {
		t.Errorf("dependent generators: %v", got)
	}
}

func TestPosAndCountHelpers(t *testing.T) {
	// Delta-like use of pos(): emit pos(x) * 10 + x for each element.
	src := list(7, 8, 9)
	c := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return src }}},
		Head: func(e *Env) value.Value {
			return value.NewInt(int64(e.Pos("x"))*10 + e.Val("x").Int())
		},
		Limit: -1,
	}
	got, _ := c.Eval()
	if !value.Equal(got, list(7, 18, 29)) {
		t.Errorf("pos helper: %v", got)
	}
	// count() via Where: keep all but the last (limit count(N)-1 pattern).
	c2 := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return src }}},
		Where:      func(e *Env) bool { return e.Pos("x") < e.Count("x")-1 },
		Head:       func(e *Env) value.Value { return e.Val("x") },
		Limit:      -1,
	}
	got, _ = c2.Eval()
	if !value.Equal(got, list(7, 8)) {
		t.Errorf("count helper: %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := (&Comprehension{Limit: -1}).Eval(); err == nil {
		t.Error("no generators should fail")
	}
	c := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return value.NewInt(5) }}},
		Head:       func(e *Env) value.Value { return e.Val("x") },
		Limit:      -1,
	}
	if _, err := c.Eval(); err == nil {
		t.Error("non-list source should fail")
	}
	c2 := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return list(1) }}},
		Limit:      -1,
	}
	if _, err := c2.Eval(); err == nil {
		t.Error("missing head should fail")
	}
}

func TestEnvUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unbound variable")
		}
	}()
	c := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return list(1) }}},
		Head:       func(e *Env) value.Value { return e.Val("nope") },
		Limit:      -1,
	}
	c.Eval()
}

func TestFlattenScalarsAndDeep(t *testing.T) {
	if got := Flatten(value.NewInt(7)); len(got) != 1 || got[0].Int() != 7 {
		t.Errorf("scalar flatten: %v", got)
	}
	deep := value.NewList(
		value.NewList(value.NewList(value.NewInt(1)), value.NewInt(2)),
		value.NewInt(3),
	)
	got := Flatten(deep)
	if len(got) != 3 || got[0].Int() != 1 || got[1].Int() != 2 || got[2].Int() != 3 {
		t.Errorf("deep flatten: %v", got)
	}
	if got := Flatten(value.NewList()); len(got) != 0 {
		t.Errorf("empty flatten: %v", got)
	}
}

func TestFromToRows(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1), value.NewString("a")},
		{value.NewInt(2), value.NewString("b")},
	}
	n := FromRows(rows)
	back, err := ToRows(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1][1].Str() != "b" {
		t.Errorf("roundtrip: %v", back)
	}
	if _, err := ToRows(value.NewInt(1)); err == nil {
		t.Error("ToRows of scalar should fail")
	}
	if _, err := ToRows(list(1, 2)); err == nil {
		t.Error("ToRows of scalar list should fail")
	}
}

func TestStableSortLarge(t *testing.T) {
	// Exercise the merge-sort path (>= 64 elements) and check stability:
	// elements with equal keys keep insertion order.
	n := 500
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = value.NewList(value.NewInt(int64(i%7)), value.NewInt(int64(i)))
	}
	src := value.NewList(elems...)
	c := &Comprehension{
		Generators: []Generator{{Var: "x", Source: func(*Env) value.Value { return src }}},
		Head:       func(e *Env) value.Value { return e.Val("x") },
		OrderKey:   func(e *Env) value.Value { return e.Val("x").List()[0] },
		Limit:      -1,
	}
	got, err := c.Eval()
	if err != nil {
		t.Fatal(err)
	}
	prevKey, prevSeq := int64(-1), int64(-1)
	for _, el := range got.List() {
		k, s := el.List()[0].Int(), el.List()[1].Int()
		if k < prevKey {
			t.Fatal("not sorted")
		}
		if k == prevKey && s < prevSeq {
			t.Fatal("not stable")
		}
		if k != prevKey {
			prevSeq = -1
		}
		prevKey, prevSeq = k, s
	}
}
