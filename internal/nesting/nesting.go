// Package nesting implements the storage algebra's nested lists and list
// comprehensions (paper §3.3-3.4). Nestings are ordered lists of elements
// that can be nested arbitrarily; comprehensions
//
//	e(v) | \v ← N, C
//
// declare new nestings from existing ones through generators (\v ← N),
// conditions C, and the clauses limit, orderby and groupby. The helper
// functions pos() and count() of the paper are exposed through Env.
//
// The package also implements the physical representation φ(N) (paper
// §3.4): the flattening of a nesting obtained by recursively enumerating
// entries from the leftmost — the order in which the storage backend lays
// values on disk.
package nesting

import (
	"fmt"

	"rodentstore/internal/value"
)

// Env holds the variable bindings of one comprehension iteration.
type Env struct {
	parent *Env
	name   string
	val    value.Value
	pos    int
	count  int
}

// bind returns a child environment with one more binding.
func (e *Env) bind(name string, v value.Value, pos, count int) *Env {
	return &Env{parent: e, name: name, val: v, pos: pos, count: count}
}

// lookup finds a binding by name.
func (e *Env) lookup(name string) (*Env, error) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("nesting: unbound variable %q", name)
}

// Val returns the value bound to the variable (the paper's \v).
func (e *Env) Val(name string) value.Value {
	b, err := e.lookup(name)
	if err != nil {
		panic(err)
	}
	return b.val
}

// Pos returns the position of the variable's element within its source
// nesting — the paper's pos() helper.
func (e *Env) Pos(name string) int {
	b, err := e.lookup(name)
	if err != nil {
		panic(err)
	}
	return b.pos
}

// Count returns the number of elements in the variable's source nesting —
// the paper's count() helper.
func (e *Env) Count(name string) int {
	b, err := e.lookup(name)
	if err != nil {
		panic(err)
	}
	return b.count
}

// Generator binds Var to successive elements of the nesting produced by
// Source (which may reference previously bound variables, enabling
// dependent generators like \r' ← r).
type Generator struct {
	Var    string
	Source func(*Env) value.Value
}

// Comprehension is a declarative list definition. Head computes each result
// element; Where filters; OrderKey/GroupKey/Limit implement the paper's
// orderby, groupby and limit clauses, applied in that order.
type Comprehension struct {
	Generators []Generator
	Where      func(*Env) bool
	Head       func(*Env) value.Value
	// OrderKey, when non-nil, sorts results by the returned key.
	OrderKey  func(*Env) value.Value
	OrderDesc bool
	// GroupKey, when non-nil, regroups consecutive equal-key results into
	// sub-nestings (applied after ordering).
	GroupKey func(*Env) value.Value
	// Limit truncates the result when >= 0.
	Limit int
}

type resultElem struct {
	head  value.Value
	order value.Value
	group value.Value
}

// Eval runs the comprehension and returns the resulting nesting (a List).
func (c *Comprehension) Eval() (value.Value, error) {
	if len(c.Generators) == 0 {
		return value.Value{}, fmt.Errorf("nesting: comprehension needs at least one generator")
	}
	if c.Head == nil {
		return value.Value{}, fmt.Errorf("nesting: comprehension needs a head")
	}
	var results []resultElem
	var rec func(env *Env, depth int) error
	rec = func(env *Env, depth int) error {
		if depth == len(c.Generators) {
			if c.Where != nil && !c.Where(env) {
				return nil
			}
			el := resultElem{head: c.Head(env)}
			if c.OrderKey != nil {
				el.order = c.OrderKey(env)
			}
			if c.GroupKey != nil {
				el.group = c.GroupKey(env)
			}
			results = append(results, el)
			return nil
		}
		g := c.Generators[depth]
		src := g.Source(env)
		if src.Kind() != value.List {
			return fmt.Errorf("nesting: generator %q source is %s, not a list", g.Var, src.Kind())
		}
		items := src.List()
		for i, item := range items {
			if err := rec(env.bind(g.Var, item, i, len(items)), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(nil, 0); err != nil {
		return value.Value{}, err
	}

	if c.OrderKey != nil {
		stableSortBy(results, func(a, b resultElem) int {
			cmp := value.Compare(a.order, b.order)
			if c.OrderDesc {
				return -cmp
			}
			return cmp
		})
	}

	var out []value.Value
	if c.GroupKey != nil {
		// Group equal keys in first-appearance order (stable within group).
		type groupEntry struct {
			key   value.Value
			elems []value.Value
		}
		var groups []groupEntry
		index := make(map[uint64][]int)
		for _, r := range results {
			h := r.group.Hash()
			found := -1
			for _, gi := range index[h] {
				if value.Equal(groups[gi].key, r.group) {
					found = gi
					break
				}
			}
			if found < 0 {
				found = len(groups)
				groups = append(groups, groupEntry{key: r.group})
				index[h] = append(index[h], found)
			}
			groups[found].elems = append(groups[found].elems, r.head)
		}
		for _, g := range groups {
			out = append(out, value.NewList(g.elems...))
		}
	} else {
		for _, r := range results {
			out = append(out, r.head)
		}
	}

	if c.Limit >= 0 && c.Limit < len(out) {
		out = out[:c.Limit]
	}
	return value.NewList(out...), nil
}

// stableSortBy is a stable merge-insertion sort over resultElems (small
// helper to avoid importing sort with a closure wrapper repeatedly).
func stableSortBy(xs []resultElem, cmp func(a, b resultElem) int) {
	// Insertion sort is stable; inputs here are comprehension results,
	// usually modest. For large inputs use a bottom-up merge sort.
	if len(xs) < 64 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && cmp(xs[j-1], xs[j]) > 0; j-- {
				xs[j-1], xs[j] = xs[j], xs[j-1]
			}
		}
		return
	}
	buf := make([]resultElem, len(xs))
	for width := 1; width < len(xs); width *= 2 {
		for lo := 0; lo < len(xs); lo += 2 * width {
			mid := min(lo+width, len(xs))
			hi := min(lo+2*width, len(xs))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if cmp(xs[j], xs[i]) < 0 {
					buf[k] = xs[j]
					j++
				} else {
					buf[k] = xs[i]
					i++
				}
				k++
			}
			copy(buf[k:hi], xs[i:mid])
			copy(buf[k+mid-i:hi], xs[j:hi])
			copy(xs[lo:hi], buf[lo:hi])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Flatten computes the physical representation φ(N): the list of scalar
// entries obtained by recursively enumerating the nesting from the leftmost
// entry (paper §3.4). Scalars flatten to themselves.
func Flatten(n value.Value) []value.Value {
	var out []value.Value
	var rec func(v value.Value)
	rec = func(v value.Value) {
		if v.Kind() == value.List {
			for _, c := range v.List() {
				rec(c)
			}
			return
		}
		out = append(out, v)
	}
	rec(n)
	return out
}

// FromRows builds the canonical nesting of a relation: a list of row lists
// (the paper's row-major representation Nr).
func FromRows(rows []value.Row) value.Value {
	out := make([]value.Value, len(rows))
	for i, r := range rows {
		out[i] = value.NewList(r...)
	}
	return value.NewList(out...)
}

// ToRows converts a nesting of flat row lists back to relation rows.
func ToRows(n value.Value) ([]value.Row, error) {
	if n.Kind() != value.List {
		return nil, fmt.Errorf("nesting: not a list")
	}
	rows := make([]value.Row, 0, n.Len())
	for _, el := range n.List() {
		if el.Kind() != value.List {
			return nil, fmt.Errorf("nesting: element is %s, not a row list", el.Kind())
		}
		rows = append(rows, value.Row(el.List()))
	}
	return rows, nil
}
