package layout

import (
	"reflect"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/value"
)

func schemas() map[string]*value.Schema {
	return map[string]*value.Schema{
		"Traces": value.MustSchema(
			value.Field{Name: "t", Type: value.Int},
			value.Field{Name: "lat", Type: value.Float},
			value.Field{Name: "lon", Type: value.Float},
			value.Field{Name: "id", Type: value.Str},
		),
		"Areas": value.MustSchema(
			value.Field{Name: "area", Type: value.Int},
			value.Field{Name: "zip", Type: value.Int},
		),
	}
}

func compile(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Compile(algebra.MustParse(src), schemas())
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return spec
}

func TestCompileRows(t *testing.T) {
	spec := compile(t, "rows(Traces)")
	if spec.Table != "Traces" {
		t.Errorf("table: %s", spec.Table)
	}
	if len(spec.Segments) != 1 {
		t.Fatalf("segments: %d", len(spec.Segments))
	}
	if !reflect.DeepEqual(spec.Segments[0].Fields, []string{"t", "lat", "lon", "id"}) {
		t.Errorf("fields: %v", spec.Segments[0].Fields)
	}
	if len(spec.Steps) != 0 || spec.Grid != nil {
		t.Errorf("rows should have no steps or grid: %+v", spec)
	}
	if spec.RowsPerBlock != 4096 {
		t.Errorf("default rows/block: %d", spec.RowsPerBlock)
	}
}

func TestCompileCols(t *testing.T) {
	spec := compile(t, "cols(Traces)")
	if len(spec.Segments) != 4 {
		t.Fatalf("segments: %d", len(spec.Segments))
	}
	for i, f := range []string{"t", "lat", "lon", "id"} {
		if !reflect.DeepEqual(spec.Segments[i].Fields, []string{f}) {
			t.Errorf("segment %d: %v", i, spec.Segments[i].Fields)
		}
	}
}

func TestCompileColGroupsWithRemainder(t *testing.T) {
	spec := compile(t, "colgroup[lat,lon](Traces)")
	if len(spec.Segments) != 2 {
		t.Fatalf("segments: %d", len(spec.Segments))
	}
	if !reflect.DeepEqual(spec.Segments[0].Fields, []string{"lat", "lon"}) {
		t.Errorf("group 0: %v", spec.Segments[0].Fields)
	}
	if !reflect.DeepEqual(spec.Segments[1].Fields, []string{"t", "id"}) {
		t.Errorf("remainder: %v", spec.Segments[1].Fields)
	}
}

func TestCompileCaseStudyN4(t *testing.T) {
	// The paper's most elaborate layout: delta(zorder(grid(project(orderby(groupby)))))
	spec := compile(t, "delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](orderby[t](groupby[id](Traces))))))")
	wantSteps := []StepKind{StepGroupBy, StepOrderBy, StepProject}
	if len(spec.Steps) != len(wantSteps) {
		t.Fatalf("steps: %+v", spec.Steps)
	}
	for i, k := range wantSteps {
		if spec.Steps[i].Kind != k {
			t.Errorf("step %d: %s, want %s", i, spec.Steps[i].Kind, k)
		}
	}
	if spec.Grid == nil || spec.Grid.Curve != algebra.CurveZOrder {
		t.Fatalf("grid: %+v", spec.Grid)
	}
	if spec.Grid.Dims[0].Field != "lat" || spec.Grid.Dims[0].Cells != 64 {
		t.Errorf("dims: %+v", spec.Grid.Dims)
	}
	if len(spec.Segments) != 1 || !reflect.DeepEqual(spec.Segments[0].Codecs, []string{"delta", "delta"}) {
		t.Errorf("segments: %+v", spec.Segments)
	}
	if spec.FinalSchema.String() != "lat:float, lon:float" {
		t.Errorf("final schema: %s", spec.FinalSchema)
	}
}

func TestCompileFold(t *testing.T) {
	spec := compile(t, "fold[zip; area](Areas)")
	if len(spec.Steps) != 1 || spec.Steps[0].Kind != StepFold {
		t.Fatalf("steps: %+v", spec.Steps)
	}
	if spec.FinalSchema.String() != "area:int, folded_zip:list" {
		t.Errorf("final schema: %s", spec.FinalSchema)
	}
	if len(spec.Segments) != 1 || len(spec.Segments[0].Fields) != 2 {
		t.Errorf("segments: %+v", spec.Segments)
	}
}

func TestCompileUnfold(t *testing.T) {
	spec := compile(t, "unfold(fold[zip; area](Areas))")
	if len(spec.Steps) != 2 || spec.Steps[1].Kind != StepUnfold {
		t.Fatalf("steps: %+v", spec.Steps)
	}
	if spec.Steps[1].Kinds[0] != value.Int {
		t.Errorf("unfold kinds: %v", spec.Steps[1].Kinds)
	}
}

func TestCompileChunk(t *testing.T) {
	spec := compile(t, "chunk[512](rows(Traces))")
	if spec.RowsPerBlock != 512 {
		t.Errorf("rows/block: %d", spec.RowsPerBlock)
	}
}

func TestCompileSelectLimit(t *testing.T) {
	spec := compile(t, "limit[10](select[lat > 42.0](Traces))")
	if len(spec.Steps) != 2 || spec.Steps[0].Kind != StepSelect || spec.Steps[1].Kind != StepLimit {
		t.Fatalf("steps: %+v", spec.Steps)
	}
	if spec.Steps[1].N != 10 {
		t.Errorf("limit: %d", spec.Steps[1].N)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"cols(cols(Traces))",                        // double segmentation
		"colgroup[lat](cols(Traces))",               // mixed segmentation
		"delta[lat](delta[lat](Traces))",            // double compression
		"grid[lat; 4](grid[lon; 4](Traces))",        // double grid
		"chunk[2](chunk[3](Traces))",                // double chunk
		"hilbert(grid[lat; 8](Traces))",             // hilbert needs 2 dims
		"prejoin[area](Areas, Areas)",               // prejoin in layout
		"transpose(Traces)",                         // transpose in layout
		"project[lat](delta[lon](Traces))",          // compressed field projected away
		"project[t](grid[lat,lon; 4,4](Traces))",    // grid dims projected away
		"grid[area; 4](fold[zip; area](Areas))",     // grid over fold
		"unfold(Areas)",                             // unfold without fold (also caught by Infer)
		"sizetiered[4](leveled[4](Traces))",         // double compaction directive
		"sizetiered[4](grid[lat,lon; 4,4](Traces))", // per-run grids break global cell addressing
		"leveled[4](fold[zip; area](Areas))",        // fold groups globally
		"leveled[4](limit[10](Traces))",             // limit is a whole-table property
	}
	for _, src := range bad {
		e, err := algebra.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Compile(e, schemas()); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestCompileCompaction(t *testing.T) {
	spec := compile(t, "sizetiered[4](orderby[t](Traces))")
	if spec.Compaction == nil || spec.Compaction.Kind != algebra.CompactSizeTiered || spec.Compaction.Fanout != 4 {
		t.Fatalf("compaction: %+v", spec.Compaction)
	}
	// The directive is an annotation: the physical plan underneath is the
	// same as without it.
	plain := compile(t, "orderby[t](Traces)")
	if len(spec.Steps) != len(plain.Steps) || len(spec.Segments) != len(plain.Segments) {
		t.Errorf("compaction changed the physical plan: %+v vs %+v", spec, plain)
	}
	if lev := compile(t, "leveled[8](cols(Traces))"); lev.Compaction.Kind != algebra.CompactLeveled || lev.Compaction.Fanout != 8 {
		t.Errorf("leveled: %+v", lev.Compaction)
	}
	if compile(t, "rows(Traces)").Compaction != nil {
		t.Error("plain layout grew a compaction spec")
	}
}

func TestStoredOrders(t *testing.T) {
	spec := compile(t, "orderby[t](Traces)")
	orders := spec.StoredOrders()
	if len(orders) != 1 || orders[0][0].Field != "t" {
		t.Errorf("orders: %+v", orders)
	}
	// The LAST reordering wins.
	spec2 := compile(t, "orderby[lat](orderby[t](Traces))")
	orders2 := spec2.StoredOrders()
	if len(orders2) != 1 || orders2[0][0].Field != "lat" {
		t.Errorf("orders2: %+v", orders2)
	}
	// groupby reports its fields as the clustering order.
	spec3 := compile(t, "groupby[id](orderby[t](Traces))")
	orders3 := spec3.StoredOrders()
	if len(orders3) != 1 || orders3[0][0].Field != "id" {
		t.Errorf("orders3: %+v", orders3)
	}
	// Grid reorders everything: no row order survives.
	spec4 := compile(t, "grid[lat,lon; 8,8](orderby[t](Traces))")
	if len(spec4.StoredOrders()) != 0 {
		t.Errorf("grid should clear stored orders")
	}
	// No ordering at all.
	spec5 := compile(t, "rows(Traces)")
	if len(spec5.StoredOrders()) != 0 {
		t.Errorf("rows(T) has no stored order")
	}
}

func TestCompilePreservesExprText(t *testing.T) {
	src := "zorder(grid[lat,lon; 64,64](project[lat,lon](Traces)))"
	spec := compile(t, src)
	if spec.Expr != src {
		t.Errorf("expr text: %q", spec.Expr)
	}
	// Re-compiling the persisted text yields the same plan shape.
	spec2 := compile(t, spec.Expr)
	if !reflect.DeepEqual(spec.Segments, spec2.Segments) || len(spec.Steps) != len(spec2.Steps) {
		t.Error("recompilation differs")
	}
}
