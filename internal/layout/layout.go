// Package layout is RodentStore's algebra interpreter (paper §2, §4.2): it
// compiles a storage-algebra expression into a physical storage plan — the
// ordered pipeline of relational steps to apply to the canonical row stream,
// followed by the terminal physical mapping (vertical partitioning into
// segments, grid partitioning with a cell-ordering curve, per-field codecs,
// and block chunking).
//
// The declarative gap the paper describes ("the storage algebra is
// declarative ... there are many layout alternatives") is resolved here with
// the paper's own defaults: absent an explicit ordering, all segments of a
// table are stored and walked in the same order so multi-segment scans never
// re-sort (§4.1), and data is dense-packed into blocks.
package layout

import (
	"fmt"

	"rodentstore/internal/algebra"
	"rodentstore/internal/value"
)

// StepKind enumerates pipeline steps.
type StepKind string

// Pipeline step kinds, applied to the row stream in order.
const (
	StepSelect  StepKind = "select"
	StepOrderBy StepKind = "orderby"
	StepGroupBy StepKind = "groupby"
	StepLimit   StepKind = "limit"
	StepProject StepKind = "project"
	StepFold    StepKind = "fold"
	StepUnfold  StepKind = "unfold"
)

// Step is one relational transformation of the row stream, applied at
// render time (inside-out expression order).
type Step struct {
	Kind   StepKind
	Pred   algebra.Predicate  // StepSelect
	Keys   []algebra.OrderKey // StepOrderBy
	Fields []string           // StepGroupBy, StepProject, StepFold values, StepUnfold values
	By     []string           // StepFold
	Kinds  []value.Kind       // StepUnfold value types
	N      int                // StepLimit
}

// SegmentDef is one vertical partition of the final schema.
type SegmentDef struct {
	Fields []string
	Codecs []string // parallel to Fields
}

// GridSpec is the grid partitioning of the final row stream.
type GridSpec struct {
	Dims  []algebra.GridDim
	Curve algebra.CurveKind
}

// CompactionSpec is a run-compaction policy directive: the table keeps a
// leveled hierarchy of organized runs between the main rendering and the
// unorganized tails, folded one level at a time by the merge worker.
type CompactionSpec struct {
	Kind   algebra.CompactKind
	Fanout int
}

// Spec is a compiled physical storage plan.
type Spec struct {
	Table        string
	Expr         string // canonical expression text (the persisted form)
	Steps        []Step
	Segments     []SegmentDef
	Grid         *GridSpec
	RowsPerBlock int
	// Compaction, when set, maintains the table as leveled runs instead of
	// one monolithic rendering (see internal/table compaction).
	Compaction *CompactionSpec
	// FinalSchema is the schema of the rendered row stream (after steps).
	FinalSchema *value.Schema
}

// Compile interprets an algebra expression against the base-table schemas
// and produces the physical plan. It rejects compositions the backend does
// not materialize (multiple grids, fold+grid, prejoin — prejoin is executed
// by the transforms layer at load time).
func Compile(expr algebra.Expr, schemas map[string]*value.Schema) (*Spec, error) {
	final, err := algebra.Infer(expr, schemas)
	if err != nil {
		return nil, err
	}
	table, err := algebra.BaseOf(expr)
	if err != nil {
		return nil, fmt.Errorf("layout: %w (hint: materialize prejoin via transforms.Prejoin and load the result)", err)
	}

	c := &compiler{schemas: schemas}
	if err := c.walk(expr); err != nil {
		return nil, err
	}

	spec := &Spec{
		Table:        table,
		Expr:         expr.String(),
		Steps:        c.steps,
		Grid:         c.grid,
		RowsPerBlock: c.rowsPerBlock,
		Compaction:   c.compaction,
		FinalSchema:  final,
	}

	// Terminal segmentation over the final schema.
	names := final.Names()
	codecFor := func(f string) string { return c.codecs[f] }
	switch {
	case c.cols && c.groups != nil:
		return nil, fmt.Errorf("layout: cols and colgroup cannot both appear")
	case c.cols:
		for _, f := range names {
			spec.Segments = append(spec.Segments, SegmentDef{Fields: []string{f}, Codecs: []string{codecFor(f)}})
		}
	case c.groups != nil:
		covered := make(map[string]bool)
		for _, g := range c.groups {
			def := SegmentDef{Fields: g, Codecs: make([]string, len(g))}
			for i, f := range g {
				def.Codecs[i] = codecFor(f)
				covered[f] = true
			}
			spec.Segments = append(spec.Segments, def)
		}
		// Fields not listed in any group form a final catch-all segment,
		// so a colgroup need not enumerate the whole schema.
		var rest SegmentDef
		for _, f := range names {
			if !covered[f] {
				rest.Fields = append(rest.Fields, f)
				rest.Codecs = append(rest.Codecs, codecFor(f))
			}
		}
		if len(rest.Fields) > 0 {
			spec.Segments = append(spec.Segments, rest)
		}
	default:
		def := SegmentDef{Fields: names, Codecs: make([]string, len(names))}
		for i, f := range names {
			def.Codecs[i] = codecFor(f)
		}
		spec.Segments = []SegmentDef{def}
	}

	// Compressed fields must survive into the final schema.
	for f := range c.codecs {
		if final.Index(f) < 0 {
			return nil, fmt.Errorf("layout: compressed field %q is projected away", f)
		}
	}
	// Grid dimensions must survive into the final schema.
	if spec.Grid != nil {
		for _, d := range spec.Grid.Dims {
			if final.Index(d.Field) < 0 {
				return nil, fmt.Errorf("layout: grid dimension %q is projected away", d.Field)
			}
		}
		if c.hasFold {
			return nil, fmt.Errorf("layout: grid over folded data is not supported")
		}
	}
	// Compaction maintains per-run renderings; compositions whose physical
	// mapping is global — a grid's cell directory and curve span the whole
	// table, fold's groups span every row — cannot be kept per run.
	if spec.Compaction != nil {
		if spec.Grid != nil {
			return nil, fmt.Errorf("layout: %s compaction over a gridded layout is not supported", spec.Compaction.Kind)
		}
		if c.hasFold {
			return nil, fmt.Errorf("layout: %s compaction over folded data is not supported", spec.Compaction.Kind)
		}
		for _, st := range c.steps {
			if st.Kind == StepLimit {
				return nil, fmt.Errorf("layout: %s compaction cannot maintain a limit step", spec.Compaction.Kind)
			}
		}
	}
	if spec.RowsPerBlock == 0 {
		spec.RowsPerBlock = 4096
	}
	return spec, nil
}

type compiler struct {
	schemas      map[string]*value.Schema
	steps        []Step // built outside-in, reversed at the end by walk order
	codecs       map[string]string
	grid         *GridSpec
	curve        algebra.CurveKind
	cols         bool
	groups       [][]string
	rowsPerBlock int
	hasFold      bool
	compaction   *CompactionSpec
}

// walk descends to the base first so steps accumulate inside-out (base
// transformations first).
func (c *compiler) walk(e algebra.Expr) error {
	if c.codecs == nil {
		c.codecs = make(map[string]string)
	}
	switch n := e.(type) {
	case *algebra.Base:
		return nil
	case *algebra.Rows:
		return c.walk(n.Input)
	case *algebra.Cols:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		if c.cols || c.groups != nil {
			return fmt.Errorf("layout: multiple segmentation directives")
		}
		c.cols = true
		return nil
	case *algebra.ColGroups:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		if c.cols || c.groups != nil {
			return fmt.Errorf("layout: multiple segmentation directives")
		}
		c.groups = n.Groups
		return nil
	case *algebra.Project:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepProject, Fields: n.Fields})
		return nil
	case *algebra.Select:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepSelect, Pred: n.Pred})
		return nil
	case *algebra.OrderBy:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepOrderBy, Keys: n.Keys})
		return nil
	case *algebra.GroupBy:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepGroupBy, Fields: n.Fields})
		return nil
	case *algebra.Limit:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepLimit, N: n.N})
		return nil
	case *algebra.Fold:
		// Resolve before the fold changes the schema.
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepFold, Fields: n.Values, By: n.By})
		c.hasFold = true
		return nil
	case *algebra.Unfold:
		inner, ok := findFold(n.Input)
		if !ok {
			return fmt.Errorf("layout: unfold requires a fold in its input")
		}
		// Types of the folded values come from the schema below the fold.
		preFold, err := algebra.Infer(inner.Input, c.schemas)
		if err != nil {
			return err
		}
		kinds := make([]value.Kind, len(inner.Values))
		for i, f := range inner.Values {
			kinds[i] = preFold.Fields[preFold.Index(f)].Type
		}
		if err := c.walk(n.Input); err != nil {
			return err
		}
		c.steps = append(c.steps, Step{Kind: StepUnfold, Fields: inner.Values, Kinds: kinds})
		c.hasFold = false
		return nil
	case *algebra.Prejoin:
		return fmt.Errorf("layout: prejoin is materialized at load time (use transforms.Prejoin); it cannot appear in a table layout")
	case *algebra.Transpose:
		return fmt.Errorf("layout: transpose applies to array nestings (use transforms.Transpose); it cannot appear in a table layout")
	case *algebra.Compress:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		for _, f := range n.Fields {
			if prev, dup := c.codecs[f]; dup {
				return fmt.Errorf("layout: field %q compressed twice (%s, %s)", f, prev, n.Codec)
			}
			c.codecs[f] = n.Codec
		}
		return nil
	case *algebra.Grid:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		if c.grid != nil {
			return fmt.Errorf("layout: multiple grid transforms")
		}
		c.grid = &GridSpec{Dims: n.Dims, Curve: algebra.CurveRowMajor}
		return nil
	case *algebra.Curve:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		if c.grid == nil {
			return fmt.Errorf("layout: %s requires a grid input", n.Kind)
		}
		if n.Kind == algebra.CurveHilbert && len(c.grid.Dims) != 2 {
			return fmt.Errorf("layout: hilbert curve requires exactly 2 grid dimensions")
		}
		c.grid.Curve = n.Kind
		return nil
	case *algebra.Chunk:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		if c.rowsPerBlock != 0 {
			return fmt.Errorf("layout: multiple chunk directives")
		}
		c.rowsPerBlock = n.N
		return nil
	case *algebra.Compact:
		if err := c.walk(n.Input); err != nil {
			return err
		}
		if c.compaction != nil {
			return fmt.Errorf("layout: multiple compaction directives")
		}
		c.compaction = &CompactionSpec{Kind: n.Kind, Fanout: n.Fanout}
		return nil
	default:
		return fmt.Errorf("layout: unsupported node %T", e)
	}
}

func findFold(e algebra.Expr) (*algebra.Fold, bool) {
	var found *algebra.Fold
	algebra.Walk(e, func(x algebra.Expr) {
		if f, ok := x.(*algebra.Fold); ok && found == nil {
			found = f
		}
	})
	return found, found != nil
}

// StoredOrders returns the sort orders the plan stores data in — the basis
// of the API's order_list (paper §4.1). The outermost orderby step that is
// not disturbed by a later reordering step wins; grouped layouts report
// their grouping fields first.
func (s *Spec) StoredOrders() [][]algebra.OrderKey {
	var out [][]algebra.OrderKey
	// Walk steps backwards: the last reordering step determines the final
	// physical order (grid reorders everything and is handled below).
	if s.Grid == nil {
	loop:
		for i := len(s.Steps) - 1; i >= 0; i-- {
			st := s.Steps[i]
			switch st.Kind {
			case StepOrderBy:
				out = append(out, st.Keys)
				break loop
			case StepGroupBy:
				keys := make([]algebra.OrderKey, len(st.Fields))
				for j, f := range st.Fields {
					keys[j] = algebra.OrderKey{Field: f}
				}
				out = append(out, keys)
				break loop
			case StepFold, StepUnfold:
				break loop
			}
		}
	}
	return out
}
