package segment

import (
	"testing"

	"rodentstore/internal/pager"
	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// writeTraceSegment renders traceRows into a segment with the given codecs.
func writeTraceSegment(t *testing.T, codecs []string, n, perBlock int) (*Reader, []value.Row) {
	t.Helper()
	f := newFile(t)
	spec := traceSpec()
	if codecs != nil {
		spec.Codecs = codecs
	}
	w, err := NewWriter(f, spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := traceRows(n)
	for i := 0; i < len(rows); i += perBlock {
		j := i + perBlock
		if j > len(rows) {
			j = len(rows)
		}
		if err := w.WriteBlock(NoCell, rows[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f, meta, spec)
	if err != nil {
		t.Fatal(err)
	}
	return r, rows
}

// TestReadBlockVecMatchesReadBlock checks the batch read against the boxed
// read, block by block, including I/O accounting.
func TestReadBlockVecMatchesReadBlock(t *testing.T) {
	for _, codecs := range [][]string{
		{"", "", ""},
		{"delta", "delta", "dict"},
		{"bitpack", "rle", "rle"},
	} {
		r, _ := writeTraceSegment(t, codecs, 1000, 256)
		boxed := r.Clone()
		schema := value.MustSchema(r.spec.Fields...)
		batch := vec.NewBatch(schema)
		for b := 0; b < r.NumBlocks(); b++ {
			batch.Reset(schema)
			if err := r.ReadBlockVec(b, nil, batch); err != nil {
				t.Fatalf("codecs %v block %d: %v", codecs, b, err)
			}
			cols, err := boxed.ReadBlock(b, nil)
			if err != nil {
				t.Fatal(err)
			}
			if batch.Len() != len(cols[0]) {
				t.Fatalf("codecs %v block %d: %d vs %d rows", codecs, b, batch.Len(), len(cols[0]))
			}
			for i := 0; i < batch.Len(); i++ {
				row := batch.Row(i)
				for c := range cols {
					if !value.Equal(row[c], cols[c][i]) {
						t.Fatalf("codecs %v block %d row %d col %d: %v vs %v",
							codecs, b, i, c, row[c], cols[c][i])
					}
				}
			}
		}
	}
}

// TestReadBlockVecProjection reads a column subset.
func TestReadBlockVecProjection(t *testing.T) {
	r, rows := writeTraceSegment(t, nil, 300, 100)
	schema := value.MustSchema(r.spec.Fields[1]) // lat only
	batch := vec.NewBatch(schema)
	pos := 0
	for b := 0; b < r.NumBlocks(); b++ {
		batch.Reset(schema)
		if err := r.ReadBlockVec(b, []int{1}, batch); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batch.Len(); i++ {
			if batch.Cols[0].Float64s[i] != rows[pos][1].Float() {
				t.Fatalf("row %d: %v vs %v", pos, batch.Cols[0].Float64s[i], rows[pos][1])
			}
			pos++
		}
	}
	if pos != len(rows) {
		t.Fatalf("decoded %d rows, want %d", pos, len(rows))
	}
}

// TestViewLateMaterialization decodes one column, then another, from the
// same view — the two-phase read the scan's late materialization performs —
// and checks only one range fetch happened (page reads equal the eager
// ReadBlock path).
func TestViewLateMaterialization(t *testing.T) {
	r, rows := writeTraceSegment(t, nil, 500, 100)
	file := r.file.(*pager.File)
	file.ResetStats()
	bv, err := r.View(0)
	if err != nil {
		t.Fatal(err)
	}
	var lat, id vec.Vector
	if err := bv.DecodeCol(1, &lat); err != nil {
		t.Fatal(err)
	}
	if err := bv.DecodeCol(2, &id); err != nil {
		t.Fatal(err)
	}
	viewReads := file.Stats().PageReads
	file.ResetStats()
	if _, err := r.Clone().ReadBlock(0, nil); err != nil {
		t.Fatal(err)
	}
	if eager := file.Stats().PageReads; viewReads != eager {
		t.Fatalf("view path read %d pages, eager path %d", viewReads, eager)
	}
	if lat.Len() != 100 || id.Len() != 100 {
		t.Fatalf("lens %d %d", lat.Len(), id.Len())
	}
	for i := 0; i < 100; i++ {
		if lat.Float64s[i] != rows[i][1].Float() || string(id.BytesAt(i)) != rows[i][2].Str() {
			t.Fatalf("row %d mismatch", i)
		}
	}
	// Metadata row-count mismatch is an error, not a truncation: corrupt the
	// metadata copy and re-open.
	bad := r.meta
	bad.Blocks = append([]BlockMeta(nil), r.meta.Blocks...)
	bad.Blocks[0].Rows++
	r2, err := NewReader(r.file, bad, r.spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.View(0); err == nil {
		t.Fatal("View accepted metadata/stream row-count mismatch")
	}
}
