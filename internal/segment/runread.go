package segment

// Coalesced run reads: a scan that is about to decode a run of physically
// adjacent blocks can fetch the whole run's bytes with one large positional
// read instead of one range read per block. FetchRunInto performs the raw
// fetch (one RangeReader call when the page source supports it), AdoptRun
// installs the fetched bytes as the reader's current run, and View then
// serves any block inside the run straight from the buffer with no further
// I/O. The fetch is split from the adopt so an asynchronous prefetcher can
// read the next run on a Clone while the owner decodes the current one.
//
// Partial results: a coalesced read that hits a corrupt page still yields
// the verified prefix, so FetchRunInto reports how many *leading* blocks of
// the run are fully contained in the returned bytes. Callers adopt that
// prefix and retry or quarantine only the failed tail — never the blocks
// that already read cleanly.

import (
	"fmt"

	"rodentstore/internal/pager"
)

// RangeReader is an optional PageSource extension for coalesced multi-page
// reads: ReadRunInto appends the payloads of npages pages starting at start
// to dst using (at most) one underlying positional read per gap of uncached
// pages. *pager.File implements it with a single ReadAt for the whole run;
// *buffer.Pool implements it serving resident pages from its frames and
// reading only the gaps, admitting scan pages through its scan-resistant
// bypass lane. On a checksum failure the verified payload prefix is still
// appended and the error identifies the corrupt page.
type RangeReader interface {
	ReadRunInto(dst []byte, start pager.PageID, npages uint64) ([]byte, error)
}

// runSpan returns the byte range [off, end) of the segment stream covering
// blocks [lo, hi).
func (r *Reader) runSpan(lo, hi int) (off, end uint64) {
	first := r.meta.Blocks[lo]
	last := r.meta.Blocks[hi-1]
	return first.Off, last.Off + uint64(last.Len)
}

// goodBlocks counts the leading blocks of [lo, hi) whose bytes are fully
// contained in avail bytes of stream starting at byte offset base.
func (r *Reader) goodBlocks(lo, hi int, base uint64, avail int) int {
	good := 0
	for b := lo; b < hi; b++ {
		bm := r.meta.Blocks[b]
		if bm.Off+uint64(bm.Len) > base+uint64(avail) {
			break
		}
		good++
	}
	return good
}

// FetchRunInto reads the raw stream bytes covering blocks [lo, hi) into buf
// (reusing its capacity) with one coalesced read when the page source
// implements RangeReader, falling back to per-page reads otherwise. It
// returns the fetched bytes — page-aligned, starting at the page boundary at
// or before block lo — and the number of leading blocks fully covered by
// them. On error the returned count may be short of hi-lo (a verified
// prefix) and the error describes the first failure; blocks in the prefix
// are still usable via AdoptRun.
//
// FetchRunInto touches none of the reader's mutable state, so a prefetcher
// may call it on a Clone while the owning goroutine decodes.
func (r *Reader) FetchRunInto(buf []byte, lo, hi int) ([]byte, int, error) {
	if lo < 0 || hi <= lo || hi > len(r.meta.Blocks) {
		return buf[:0], 0, fmt.Errorf("segment: run [%d,%d) out of range", lo, hi)
	}
	off, end := r.runSpan(lo, hi)
	if end > r.meta.UsedBytes {
		return buf[:0], 0, r.corrupt(lo, fmt.Errorf("run [%d,%d) beyond used bytes %d", off, end, r.meta.UsedBytes))
	}
	payload := uint64(r.file.PayloadSize())
	firstPage := off / payload
	lastPage := (end - 1) / payload
	base := firstPage * payload
	start := r.meta.ExtentStart + pager.PageID(firstPage)
	npages := lastPage - firstPage + 1

	var (
		data []byte
		err  error
	)
	if rr, ok := r.file.(RangeReader); ok {
		data, err = rr.ReadRunInto(buf[:0], start, npages)
	} else {
		data, err = r.fetchRunPages(buf[:0], start, npages)
	}
	good := r.goodBlocks(lo, hi, base, len(data))
	if err != nil {
		return data, good, r.classifyReadErr(lo+good, err)
	}
	return data, good, nil
}

// fetchRunPages is FetchRunInto's fallback for plain PageSources: one read
// per page, appended in order, stopping at the first failure (the verified
// prefix is kept). It bypasses the reader's lookbehind so it stays safe to
// run on a Clone concurrently with the owner.
func (r *Reader) fetchRunPages(dst []byte, start pager.PageID, npages uint64) ([]byte, error) {
	leaser, _ := r.file.(PageLeaser)
	for i := uint64(0); i < npages; i++ {
		id := start + pager.PageID(i)
		if leaser != nil {
			page, release, err := leaser.LeasePage(id)
			if err != nil {
				return dst, err
			}
			dst = append(dst, page...)
			if err := release(); err != nil {
				return dst, err
			}
			continue
		}
		page, err := r.file.ReadPage(id)
		if err != nil {
			return dst, err
		}
		dst = append(dst, page...)
	}
	return dst, nil
}

// AdoptRun installs data — bytes from FetchRunInto for blocks [lo, lo+good)
// — as the reader's current run: Views of those blocks decode straight from
// it with no I/O. The reader borrows data until the next AdoptRun, DropRun,
// or the reader's end of life; a prefetcher recycling its buffers must keep
// the handoff alive until the run's last block has been decoded.
func (r *Reader) AdoptRun(lo, good int, data []byte) {
	if good <= 0 {
		return
	}
	payload := uint64(r.file.PayloadSize())
	r.runLo, r.runHi = lo, lo+good
	r.runOff = r.meta.Blocks[lo].Off / payload * payload
	r.runData = data
}

// DropRun forgets the adopted run (if any), so subsequent Views go back to
// per-block reads. It does not free the buffer — that belongs to whoever
// handed it to AdoptRun.
func (r *Reader) DropRun() {
	r.runLo, r.runHi, r.runOff, r.runData = 0, 0, 0, nil
}

// PreloadRun fetches blocks [lo, hi) into the reader's own run buffer with
// one coalesced read and adopts the result. It returns how many leading
// blocks were loaded; on error that count may be short (the verified prefix
// is still adopted) and the caller decides whether to retry the failed tail
// — [lo+n, hi) — or fall back to per-block reads.
func (r *Reader) PreloadRun(lo, hi int) (int, error) {
	data, good, err := r.FetchRunInto(r.runOwn[:0], lo, hi)
	r.runOwn = data[:0]
	r.DropRun()
	r.AdoptRun(lo, good, data)
	return good, err
}
