package segment

import (
	"math/rand"
	"path/filepath"
	"testing"

	"rodentstore/internal/pager"
	"rodentstore/internal/value"
)

func newFile(t *testing.T) *pager.File {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "seg.rdnt"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func traceSpec() Spec {
	return Spec{
		Fields: []value.Field{
			{Name: "t", Type: value.Int},
			{Name: "lat", Type: value.Float},
			{Name: "id", Type: value.Str},
		},
		Codecs: []string{"", "", ""},
	}
}

func traceRows(n int) []value.Row {
	r := rand.New(rand.NewSource(7))
	rows := make([]value.Row, n)
	lat := 42.3
	for i := range rows {
		lat += (r.Float64() - 0.5) * 1e-3
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewFloat(lat),
			value.NewString([]string{"car-1", "car-2", "car-3"}[i%3]),
		}
	}
	return rows
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Error("empty spec should fail")
	}
	if err := (Spec{Fields: []value.Field{{Name: "a", Type: value.Int}}, Codecs: nil}).Validate(); err == nil {
		t.Error("codec count mismatch should fail")
	}
	bad := Spec{Fields: []value.Field{{Name: "a", Type: value.Int}}, Codecs: []string{"nope"}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown codec should fail")
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	f := newFile(t)
	w, err := NewWriter(f, traceSpec())
	if err != nil {
		t.Fatal(err)
	}
	rows := traceRows(1000)
	for i := 0; i < len(rows); i += 256 {
		j := i + 256
		if j > len(rows) {
			j = len(rows)
		}
		if err := w.WriteBlock(NoCell, rows[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Rows != 1000 || len(meta.Blocks) != 4 {
		t.Fatalf("meta: rows=%d blocks=%d", meta.Rows, len(meta.Blocks))
	}

	r, err := NewReader(f, meta, traceSpec())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for b := 0; b < r.NumBlocks(); b++ {
		cols, err := r.ReadBlock(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cols[0] {
			want := rows[got]
			if cols[0][i].Int() != want[0].Int() ||
				cols[1][i].Float() != want[1].Float() ||
				cols[2][i].Str() != want[2].Str() {
				t.Fatalf("row %d mismatch", got)
			}
			got++
		}
	}
	if got != 1000 {
		t.Errorf("read %d rows", got)
	}
}

func TestCompressedColumns(t *testing.T) {
	f := newFile(t)
	spec := traceSpec()
	spec.Codecs = []string{"bitpack", "delta", "dict"}
	w, err := NewWriter(f, spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := traceRows(2000)
	if err := w.WriteBlock(NoCell, rows); err != nil {
		t.Fatal(err)
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Compare against uncompressed size: codecs must shrink this data.
	w2, _ := NewWriter(f, traceSpec())
	w2.WriteBlock(NoCell, rows)
	meta2, _ := w2.Finish()
	if meta.UsedBytes >= meta2.UsedBytes {
		t.Errorf("compressed %d >= raw %d", meta.UsedBytes, meta2.UsedBytes)
	}

	r, _ := NewReader(f, meta, spec)
	cols, err := r.ReadBlock(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if cols[0][i].Int() != row[0].Int() || cols[1][i].Float() != row[1].Float() || cols[2][i].Str() != row[2].Str() {
			t.Fatalf("row %d corrupted by codecs", i)
		}
	}
}

func TestColumnProjection(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	rows := traceRows(100)
	w.WriteBlock(NoCell, rows)
	meta, _ := w.Finish()

	r, _ := NewReader(f, meta, traceSpec())
	cols, err := r.ReadBlock(0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if cols[0] != nil || cols[2] != nil {
		t.Error("unrequested columns should be nil")
	}
	if len(cols[1]) != 100 {
		t.Errorf("projected column length %d", len(cols[1]))
	}
}

func TestCellsAndZoneMaps(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	rows := traceRows(100)
	w.WriteBlock(7, rows[:50])
	w.WriteBlock(9, rows[50:])
	meta, _ := w.Finish()

	if meta.Blocks[0].Cell != 7 || meta.Blocks[1].Cell != 9 {
		t.Errorf("cells: %d %d", meta.Blocks[0].Cell, meta.Blocks[1].Cell)
	}
	if meta.Blocks[1].RowStart != 50 {
		t.Errorf("rowstart: %d", meta.Blocks[1].RowStart)
	}
	// Zone maps exist for t (int) and lat (float), not id (string).
	z := meta.Blocks[0].Zones
	if len(z) != 2 {
		t.Fatalf("zones: %+v", z)
	}
	if z[0].Field != "t" || z[0].Min != 0 || z[0].Max != 49 {
		t.Errorf("t zone: %+v", z[0])
	}
	if z[1].Field != "lat" || z[1].Min >= z[1].Max {
		t.Errorf("lat zone: %+v", z[1])
	}
}

func TestBlockForRow(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	rows := traceRows(1000)
	for i := 0; i < 1000; i += 100 {
		w.WriteBlock(NoCell, rows[i:i+100])
	}
	meta, _ := w.Finish()
	r, _ := NewReader(f, meta, traceSpec())
	cases := []struct {
		pos   int64
		block int
	}{
		{0, 0}, {99, 0}, {100, 1}, {555, 5}, {999, 9},
	}
	for _, c := range cases {
		got, err := r.BlockForRow(c.pos)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.block {
			t.Errorf("BlockForRow(%d) = %d, want %d", c.pos, got, c.block)
		}
	}
	if _, err := r.BlockForRow(-1); err == nil {
		t.Error("negative row should fail")
	}
	if _, err := r.BlockForRow(1000); err == nil {
		t.Error("out-of-range row should fail")
	}
}

func TestSequentialScanCountsPagesOnce(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	rows := traceRows(5000)
	for i := 0; i < len(rows); i += 500 {
		w.WriteBlock(NoCell, rows[i:i+500])
	}
	meta, _ := w.Finish()
	r, _ := NewReader(f, meta, traceSpec())

	f.ResetStats()
	for b := 0; b < r.NumBlocks(); b++ {
		if _, err := r.ReadBlock(b, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.PageReads != meta.ExtentPages {
		t.Errorf("sequential scan read %d pages, extent has %d", s.PageReads, meta.ExtentPages)
	}
	if s.Seeks != 1 {
		t.Errorf("sequential scan seeks = %d, want 1", s.Seeks)
	}
}

func TestRowArityMismatch(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	if err := w.WriteBlock(NoCell, []value.Row{{value.NewInt(1)}}); err == nil {
		t.Error("expected arity error")
	}
}

func TestEmptySegment(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Rows != 0 || len(meta.Blocks) != 0 {
		t.Errorf("empty segment meta: %+v", meta)
	}
	r, _ := NewReader(f, meta, traceSpec())
	if _, err := r.ReadBlock(0, nil); err == nil {
		t.Error("reading block of empty segment should fail")
	}
}

func TestWriteBlockEmptyRowsNoop(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	if err := w.WriteBlock(NoCell, nil); err != nil {
		t.Fatal(err)
	}
	meta, _ := w.Finish()
	if len(meta.Blocks) != 0 {
		t.Error("empty WriteBlock should not create a block")
	}
}

func TestFreeReturnsExtent(t *testing.T) {
	f := newFile(t)
	w, _ := NewWriter(f, traceSpec())
	w.WriteBlock(NoCell, traceRows(1000))
	meta, _ := w.Finish()
	before := f.NumPages()
	if err := Free(f, meta); err != nil {
		t.Fatal(err)
	}
	if got := f.NumPages(); got != before-meta.ExtentPages {
		t.Errorf("pages after free: %d, want %d", got, before-meta.ExtentPages)
	}
}

func TestFoldedListColumn(t *testing.T) {
	// Fold output (trailing List column) must render and read back.
	f := newFile(t)
	spec := Spec{
		Fields: []value.Field{
			{Name: "area", Type: value.Int},
			{Name: "folded_zip", Type: value.List},
		},
		Codecs: []string{"", ""},
	}
	w, err := NewWriter(f, spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.NewInt(617), value.NewList(value.NewInt(2139), value.NewInt(2142))},
		{value.NewInt(212), value.NewList(value.NewInt(10001))},
	}
	if err := w.WriteBlock(NoCell, rows); err != nil {
		t.Fatal(err)
	}
	meta, _ := w.Finish()
	r, _ := NewReader(f, meta, spec)
	cols, err := r.ReadBlock(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cols[1][0].Len() != 2 || cols[1][0].List()[1].Int() != 2142 {
		t.Errorf("folded column: %v", cols[1][0])
	}
}
