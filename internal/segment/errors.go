package segment

import (
	"errors"
	"fmt"

	"rodentstore/internal/pager"
)

// ErrCorruptExtent reports that a segment's extent holds data that cannot be
// decoded: a page failed its checksum, a block's framing is inconsistent, or
// a column chunk decoded to the wrong shape. It carries the extent identity
// (and the block index when known, -1 otherwise) so scans can quarantine
// exactly the damaged extent and integrity reports can name it.
type ErrCorruptExtent struct {
	Start pager.PageID
	Pages uint64
	Block int
	Cause error
}

func (e *ErrCorruptExtent) Error() string {
	if e.Block >= 0 {
		return fmt.Sprintf("segment: extent [%d,+%d) block %d corrupt: %v", e.Start, e.Pages, e.Block, e.Cause)
	}
	return fmt.Sprintf("segment: extent [%d,+%d) corrupt: %v", e.Start, e.Pages, e.Cause)
}

func (e *ErrCorruptExtent) Unwrap() error { return e.Cause }

// corrupt wraps err with the reader's extent identity (once — an error that
// already carries it passes through so nested read paths do not double-wrap).
func (r *Reader) corrupt(block int, err error) error {
	var ce *ErrCorruptExtent
	if errors.As(err, &ce) {
		return err
	}
	return &ErrCorruptExtent{Start: r.meta.ExtentStart, Pages: r.meta.ExtentPages, Block: block, Cause: err}
}

// classifyReadErr distinguishes data corruption surfacing from the page
// layer (checksum mismatches become ErrCorruptExtent, carrying the extent)
// from transient I/O failures, which pass through unwrapped so callers can
// retry them.
func (r *Reader) classifyReadErr(block int, err error) error {
	var cp *pager.ErrCorruptPage
	if errors.As(err, &cp) {
		return r.corrupt(block, err)
	}
	return err
}
