package segment

// Vectorized block reads: View fetches one block's bytes (a single
// readRange, so page/seek accounting is identical to ReadBlock) and exposes
// the column chunks for lazy per-column typed decoding. The scan layer uses
// it for late materialization — decode predicate columns, filter, and only
// then decode the projected columns, or skip them entirely when no row
// survives. ReadBlockVec is the eager wrapper: one call, one Batch.
//
// The view and the reader's raw buffer are reused across calls: a view (and
// any chunk slices it handed out) is valid only until the next View or
// ReadBlock call on the same reader. Decoded vectors copy out of the raw
// buffer, so batches outlive the view.

import (
	"encoding/binary"
	"fmt"

	"rodentstore/internal/compress"
	"rodentstore/internal/vec"
)

// BlockView is one fetched block, ready for per-column decode.
type BlockView struct {
	r      *Reader
	idx    int
	nrows  int
	cell   uint64
	chunks [][]byte // per spec column, aliasing the reader's raw buffer
}

// View fetches block i (one contiguous range read, same I/O accounting as
// ReadBlock) and parses its chunk directory. The returned view aliases the
// reader's reusable buffer: it is invalidated by the next View or ReadBlock
// on this reader.
func (r *Reader) View(i int) (*BlockView, error) {
	if i < 0 || i >= len(r.meta.Blocks) {
		return nil, fmt.Errorf("segment: block %d out of range", i)
	}
	bm := r.meta.Blocks[i]
	var raw []byte
	if i >= r.runLo && i < r.runHi {
		// Block is resident in the adopted coalesced run: slice it out with
		// no I/O (see runread.go).
		s := bm.Off - r.runOff
		raw = r.runData[s : s+uint64(bm.Len)]
	} else {
		var err error
		raw, err = r.readRangeInto(r.rawBuf[:0], bm.Off, bm.Len)
		if err != nil {
			return nil, err
		}
		r.rawBuf = raw
	}
	if len(raw) < 12 {
		return nil, r.corrupt(i, fmt.Errorf("block truncated"))
	}
	bodyLen := binary.LittleEndian.Uint32(raw)
	if uint32(len(raw)) < 4+bodyLen {
		return nil, r.corrupt(i, fmt.Errorf("short body"))
	}
	body := raw[4 : 4+bodyLen]
	if len(body) < 9 {
		return nil, r.corrupt(i, fmt.Errorf("corrupt block header"))
	}
	cell := binary.LittleEndian.Uint64(body)
	nrows, sz := binary.Uvarint(body[8:])
	if sz <= 0 {
		return nil, r.corrupt(i, fmt.Errorf("bad row count"))
	}
	// Block metadata is the authoritative row count: a chunk that decodes to
	// a different length is corruption, caught in DecodeCol.
	if int64(nrows) != int64(bm.Rows) {
		return nil, r.corrupt(i, fmt.Errorf("block holds %d rows, metadata says %d", nrows, bm.Rows))
	}
	off := 8 + sz
	bv := &r.view
	bv.r, bv.idx, bv.nrows, bv.cell = r, i, int(nrows), cell
	bv.chunks = bv.chunks[:0]
	for c := range r.spec.Fields {
		if off+4 > len(body) {
			return nil, r.corrupt(i, fmt.Errorf("truncated at column %d", c))
		}
		chunkLen := binary.LittleEndian.Uint32(body[off:])
		off += 4
		if off+int(chunkLen) > len(body) {
			return nil, r.corrupt(i, fmt.Errorf("column %d overruns body", c))
		}
		bv.chunks = append(bv.chunks, body[off:off+int(chunkLen)])
		off += int(chunkLen)
	}
	return bv, nil
}

// Rows returns the block's row count (from segment metadata).
func (bv *BlockView) Rows() int { return bv.nrows }

// Cell returns the block's grid cell (NoCell when ungridded).
func (bv *BlockView) Cell() uint64 { return bv.cell }

// DecodeCol decodes column c into dst (which is Reset first), using the
// codec's typed fast path when it has one. The decoded length is checked
// against the block's metadata row count.
func (bv *BlockView) DecodeCol(c int, dst *vec.Vector) error {
	if c < 0 || c >= len(bv.chunks) {
		return fmt.Errorf("segment: column %d out of range", c)
	}
	r := bv.r
	dst.Reset(r.spec.Fields[c].Type)
	if err := compress.DecodeVec(r.codecs[c], bv.chunks[c], r.spec.Fields[c].Type, dst); err != nil {
		return r.corrupt(bv.idx, fmt.Errorf("field %q: %w", r.spec.Fields[c].Name, err))
	}
	if dst.Len() != bv.nrows {
		return r.corrupt(bv.idx, fmt.Errorf("field %q: %d values, %d rows",
			r.spec.Fields[c].Name, dst.Len(), bv.nrows))
	}
	return nil
}

// ReadBlockVec decodes block i's wanted columns (nil = all) into dst, whose
// schema must list the wanted fields in spec order. One range read per
// block, typed decode per column; dst's buffers are reused across calls, so
// pairing it with a vec.Pool gives allocation-free steady-state scans.
func (r *Reader) ReadBlockVec(i int, wantCols []int, dst *vec.Batch) error {
	bv, err := r.View(i)
	if err != nil {
		return err
	}
	if wantCols == nil {
		wantCols = make([]int, len(r.spec.Fields))
		for c := range wantCols {
			wantCols[c] = c
		}
	}
	if dst.Schema().Arity() != len(wantCols) {
		return fmt.Errorf("segment: batch arity %d for %d wanted columns", dst.Schema().Arity(), len(wantCols))
	}
	for k, c := range wantCols {
		if err := bv.DecodeCol(c, &dst.Cols[k]); err != nil {
			return err
		}
	}
	return dst.SetLen(bv.nrows)
}
