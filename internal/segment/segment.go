// Package segment implements RodentStore's physical storage objects. A
// segment is one flattened nesting φ(N) (paper §3.4) written as a byte
// stream over a contiguous page extent: the disk realization of one vertical
// partition of a table.
//
// Segments are sequences of self-delimiting blocks. A block holds a run of
// rows in PAX style (column chunks within the block, after Ailamaki et al.,
// which the paper cites): each column chunk is compressed independently with
// the codec the layout assigns to that field (paper §3.5.2). Blocks carry
// the grid cell they belong to (paper §3.6) and zone maps (min/max per
// numeric field) so ordered and gridded scans can skip irrelevant pages —
// the data co-location and reordering dimensions of §3.1.
//
// Block wire format:
//
//	u32 bodyLen | u64 cell | uvarint nrows | ncols × (u32 chunkLen | chunk)
package segment

import (
	"encoding/binary"
	"fmt"
	"math"

	"rodentstore/internal/compress"
	"rodentstore/internal/pager"
	"rodentstore/internal/value"
)

// DefaultRowsPerBlock bounds block size for non-grid segments.
const DefaultRowsPerBlock = 4096

// NoCell marks blocks of ungridded segments.
const NoCell = ^uint64(0)

// Spec describes a segment's stored fields and per-field codecs.
type Spec struct {
	Fields []value.Field
	Codecs []string // parallel to Fields; "" = none
}

// Validate checks the spec and resolves codec names.
func (s Spec) Validate() error {
	if len(s.Fields) == 0 {
		return fmt.Errorf("segment: no fields")
	}
	if len(s.Codecs) != len(s.Fields) {
		return fmt.Errorf("segment: %d codecs for %d fields", len(s.Codecs), len(s.Fields))
	}
	for i, c := range s.Codecs {
		if _, err := compress.Lookup(c); err != nil {
			return fmt.Errorf("segment: field %q: %w", s.Fields[i].Name, err)
		}
	}
	return nil
}

// ZoneMap is the min/max of one numeric field within a block.
type ZoneMap struct {
	Field string  `json:"f"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// BlockMeta locates one block inside the segment stream.
type BlockMeta struct {
	Off      uint64    `json:"off"`  // byte offset of the u32 length header
	Len      uint32    `json:"len"`  // total bytes including the header
	Rows     int       `json:"rows"` // row count
	RowStart int64     `json:"rs"`   // cumulative rows before this block
	Cell     uint64    `json:"cell"` // grid cell (NoCell when ungridded)
	Zones    []ZoneMap `json:"z,omitempty"`
}

// Meta is the persistent description of a rendered segment.
type Meta struct {
	ExtentStart pager.PageID `json:"start"`
	ExtentPages uint64       `json:"pages"`
	UsedBytes   uint64       `json:"used"`
	Rows        int64        `json:"rows"`
	Blocks      []BlockMeta  `json:"blocks"`
}

// Writer renders blocks into an in-memory stream and flushes them to a
// freshly allocated extent on Finish. (Buffering the stream keeps extents
// contiguous, which is what makes page-adjacency seek accounting faithful;
// segment renders are bulk operations in RodentStore, as §5's eager
// reorganization discussion assumes.)
type Writer struct {
	file   *pager.File
	spec   Spec
	codecs []compress.Codec
	buf    []byte
	blocks []BlockMeta
	rows   int64
}

// NewWriter creates a segment writer.
func NewWriter(file *pager.File, spec Spec) (*Writer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	codecs := make([]compress.Codec, len(spec.Codecs))
	for i, name := range spec.Codecs {
		c, err := compress.Lookup(name)
		if err != nil {
			return nil, err
		}
		codecs[i] = c
	}
	return &Writer{file: file, spec: spec, codecs: codecs}, nil
}

// WriteBlock appends one block of rows belonging to the given cell
// (NoCell for ungridded segments). Rows must match the spec's fields.
func (w *Writer) WriteBlock(cell uint64, rows []value.Row) error {
	if len(rows) == 0 {
		return nil
	}
	ncols := len(w.spec.Fields)
	cols := make([][]value.Value, ncols)
	for c := range cols {
		col := make([]value.Value, len(rows))
		for r, row := range rows {
			if len(row) != ncols {
				return fmt.Errorf("segment: row arity %d != %d fields", len(row), ncols)
			}
			col[r] = row[c]
		}
		cols[c] = col
	}

	body := make([]byte, 0, len(rows)*16)
	body = binary.LittleEndian.AppendUint64(body, cell)
	body = binary.AppendUvarint(body, uint64(len(rows)))
	for c, col := range cols {
		chunk, err := w.codecs[c].Encode(nil, w.spec.Fields[c].Type, col)
		if err != nil {
			return fmt.Errorf("segment: field %q: %w", w.spec.Fields[c].Name, err)
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(chunk)))
		body = append(body, chunk...)
	}

	meta := BlockMeta{
		Off:      uint64(len(w.buf)),
		Len:      uint32(4 + len(body)),
		Rows:     len(rows),
		RowStart: w.rows,
		Cell:     cell,
		Zones:    zones(w.spec.Fields, cols),
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = append(w.buf, body...)
	w.blocks = append(w.blocks, meta)
	w.rows += int64(len(rows))
	return nil
}

// zones computes per-numeric-field min/max for a block.
func zones(fields []value.Field, cols [][]value.Value) []ZoneMap {
	var out []ZoneMap
	for c, f := range fields {
		if f.Type != value.Int && f.Type != value.Float {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		ok := true
		for _, v := range cols[c] {
			if v.IsNull() {
				ok = false
				break
			}
			x := v.Float()
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if ok {
			out = append(out, ZoneMap{Field: f.Name, Min: lo, Max: hi})
		}
	}
	return out
}

// Rows returns the number of rows written so far.
func (w *Writer) Rows() int64 { return w.rows }

// Buf returns the writer's encoded stream — the bytes FinishChunks hands
// out as per-page chunks — for callers that write the extent themselves.
func (w *Writer) Buf() []byte { return w.buf }

// Finish allocates a contiguous extent, writes the stream (one positional
// write for the whole extent), and returns the segment metadata. The writer
// must not be reused afterwards.
func (w *Writer) Finish() (Meta, error) {
	meta, _, err := w.FinishChunks()
	if err != nil {
		return Meta{}, err
	}
	if err := w.file.WriteRun(meta.ExtentStart, w.buf); err != nil {
		return Meta{}, err
	}
	return meta, nil
}

// FinishChunks allocates the extent and returns the metadata plus the
// per-page payload chunks (aliasing the writer's buffer) WITHOUT writing
// them. Callers that need both the write and the page images — durable
// staged inserts write the extent with WriteRun and log the chunks as WAL
// records — use this to avoid a second pass over the stream. The writer
// must not be reused afterwards.
func (w *Writer) FinishChunks() (Meta, [][]byte, error) {
	payload := uint64(w.file.PayloadSize())
	npages := (uint64(len(w.buf)) + payload - 1) / payload
	if npages == 0 {
		npages = 1
	}
	start, err := w.file.AllocateRun(npages)
	if err != nil {
		return Meta{}, nil, err
	}
	chunks := make([][]byte, npages)
	for i := uint64(0); i < npages; i++ {
		lo := i * payload
		hi := lo + payload
		if hi > uint64(len(w.buf)) {
			hi = uint64(len(w.buf))
		}
		if lo < uint64(len(w.buf)) {
			chunks[i] = w.buf[lo:hi]
		}
	}
	return Meta{
		ExtentStart: start,
		ExtentPages: npages,
		UsedBytes:   uint64(len(w.buf)),
		Rows:        w.rows,
		Blocks:      w.blocks,
	}, chunks, nil
}

// PageSource supplies page payloads to a Reader. *pager.File implements it
// directly; *buffer.Pool implements it with caching in front of the pager.
type PageSource interface {
	ReadPage(pager.PageID) ([]byte, error)
	PayloadSize() int
}

// PageLeaser is an optional PageSource extension offering pinned, zero-copy
// page access: the returned slice is the source's own cached frame, valid
// until release is called. *buffer.Pool implements it; readers over a
// leasing source skip the full-page copy ReadPage pays per access.
type PageLeaser interface {
	LeasePage(pager.PageID) (data []byte, release func() error, err error)
}

// Reader decodes blocks of a rendered segment, counting page I/O through
// the page source. A one-page lookbehind keeps sequential block reads from
// double-counting shared boundary pages. Readers are not safe for
// concurrent use; use Clone to give each goroutine its own.
type Reader struct {
	file     PageSource
	meta     Meta
	spec     Spec
	codecs   []compress.Codec
	lastPage pager.PageID
	lastBuf  []byte
	// rawBuf and view are the vectorized read path's reusable scratch: View
	// fetches block bytes into rawBuf and parses the chunk directory into
	// view, so steady-state block reads allocate nothing.
	rawBuf []byte
	view   BlockView
	// Coalesced run state (see runread.go): blocks [runLo, runHi) are
	// resident in runData, whose first byte is stream offset runOff. runOwn
	// is the reader-owned buffer PreloadRun fetches into; runData may instead
	// borrow a prefetcher's buffer via AdoptRun.
	runLo, runHi int
	runOff       uint64
	runData      []byte
	runOwn       []byte
}

// NewReader opens a segment for reading.
func NewReader(file PageSource, meta Meta, spec Spec) (*Reader, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	codecs := make([]compress.Codec, len(spec.Codecs))
	for i, name := range spec.Codecs {
		c, err := compress.Lookup(name)
		if err != nil {
			return nil, err
		}
		codecs[i] = c
	}
	return &Reader{file: file, meta: meta, spec: spec, codecs: codecs}, nil
}

// Meta returns the segment metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Clone returns an independent reader over the same segment and page
// source, for use by another goroutine (parallel scans clone one reader per
// worker). Metadata and codecs are shared — both are immutable — while the
// per-reader lookbehind cache is not.
func (r *Reader) Clone() *Reader {
	return &Reader{file: r.file, meta: r.meta, spec: r.spec, codecs: r.codecs}
}

// NumBlocks returns the number of blocks.
func (r *Reader) NumBlocks() int { return len(r.meta.Blocks) }

// readRange reads [off, off+n) from the segment stream via whole-page reads.
// Over a PageLeaser source, bytes are copied straight out of the source's
// pinned frame (no full-page copy per access); only the range's final page
// — the one the next sequential block may share — is retained in the
// one-page lookbehind, so sequential block reads never touch a shared
// boundary page twice no matter how small the source's cache is. Over a
// plain PageSource, whole pages are read with the same lookbehind.
func (r *Reader) readRange(off uint64, n uint32) ([]byte, error) {
	return r.readRangeInto(make([]byte, 0, n), off, n)
}

// readRangeInto is readRange appending into a caller-supplied buffer (the
// vectorized path reuses one buffer across blocks).
func (r *Reader) readRangeInto(out []byte, off uint64, n uint32) ([]byte, error) {
	if off+uint64(n) > r.meta.UsedBytes {
		return nil, r.corrupt(-1, fmt.Errorf("range [%d,%d) beyond used bytes %d", off, off+uint64(n), r.meta.UsedBytes))
	}
	payload := uint64(r.file.PayloadSize())
	first := off / payload
	last := (off + uint64(n) - 1) / payload
	leaser, _ := r.file.(PageLeaser)
	for p := first; p <= last; p++ {
		id := r.meta.ExtentStart + pager.PageID(p)
		lo := uint64(0)
		if p == first {
			lo = off - p*payload
		}
		hi := payload
		if p == last {
			hi = off + uint64(n) - p*payload
		}
		if id == r.lastPage && r.lastBuf != nil {
			out = append(out, r.lastBuf[lo:hi]...)
			continue
		}
		if leaser != nil {
			page, release, err := leaser.LeasePage(id)
			if err != nil {
				return nil, r.classifyReadErr(-1, err)
			}
			out = append(out, page[lo:hi]...)
			if p == last {
				buf := make([]byte, len(page))
				copy(buf, page)
				r.lastPage, r.lastBuf = id, buf
			}
			if err := release(); err != nil {
				return nil, err
			}
			continue
		}
		page, err := r.file.ReadPage(id)
		if err != nil {
			return nil, r.classifyReadErr(-1, err)
		}
		r.lastPage, r.lastBuf = id, page
		out = append(out, page[lo:hi]...)
	}
	return out, nil
}

// ReadBlock decodes block i into boxed column vectors. wantCols selects
// columns by index (nil = all); unselected columns return nil vectors but
// their bytes are still fetched with the block (they share its pages —
// projecting saves CPU, not I/O; to save I/O, store the column in its own
// segment). It is View plus an eager boxed decode of each wanted chunk, so
// the block parser (and its metadata row-count check) exists exactly once.
func (r *Reader) ReadBlock(i int, wantCols []int) ([][]value.Value, error) {
	bv, err := r.View(i)
	if err != nil {
		return nil, err
	}
	want := make(map[int]bool, len(wantCols))
	for _, c := range wantCols {
		want[c] = true
	}
	out := make([][]value.Value, len(r.spec.Fields))
	for c := range r.spec.Fields {
		if wantCols != nil && !want[c] {
			continue
		}
		vals, err := r.codecs[c].Decode(bv.chunks[c], r.spec.Fields[c].Type)
		if err != nil {
			return nil, r.corrupt(i, fmt.Errorf("field %q: %w", r.spec.Fields[c].Name, err))
		}
		if len(vals) != bv.nrows {
			return nil, r.corrupt(i, fmt.Errorf("field %q: %d values, %d rows", r.spec.Fields[c].Name, len(vals), bv.nrows))
		}
		out[c] = vals
	}
	return out, nil
}

// BlockForRow returns the index of the block containing global row position
// pos, via binary search over cumulative row counts.
func (r *Reader) BlockForRow(pos int64) (int, error) {
	if pos < 0 || pos >= r.meta.Rows {
		return 0, fmt.Errorf("segment: row %d out of range [0,%d)", pos, r.meta.Rows)
	}
	lo, hi := 0, len(r.meta.Blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.meta.Blocks[mid].RowStart <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// Free releases the segment's extent back to the page file.
func Free(file *pager.File, meta Meta) error {
	if meta.ExtentPages == 0 {
		return nil
	}
	return file.FreeRun(meta.ExtentStart, meta.ExtentPages)
}
