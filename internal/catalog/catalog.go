// Package catalog persists RodentStore's table metadata: logical schemas,
// layout expressions (the persisted form of a physical design — recompiled
// by the algebra interpreter on open), rendered segment locations, grid
// bounds and reorganization state.
//
// The catalog serializes to a compact binary form (see codec.go; legacy
// JSON catalogs still load) and lives in its own page extent inside the
// database file; pager meta slots record the extent. Updates write a fresh
// extent before flipping the meta slots, so a crash mid-update leaves the
// previous catalog intact.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/value"
)

// ErrNotFound is wrapped by lookups and deletes of absent tables. Callers
// that race with DropTable (the background merge worker, most notably) test
// with errors.Is instead of treating every lookup failure as damage.
var ErrNotFound = errors.New("table not found")

// Meta slot assignments in the pager header.
const (
	slotExtentStart = 0
	slotExtentPages = 1
	slotByteLen     = 2
)

// FieldMeta is the serialized form of a schema field.
type FieldMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// GridBoundsMeta records the rendered discretization of one grid dimension.
type GridBoundsMeta struct {
	Field string  `json:"field"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Cells int     `json:"cells"`
}

// IndexMeta records one secondary B+tree index: the indexed field, the
// tree's root page, and how many stored rows (a prefix of stored order) the
// tree covers. Tail-only inserts append rows beyond Rows without shifting
// positions, so the index survives them; IndexScan treats positions at or
// past Rows as an unindexed suffix and scans them instead.
type IndexMeta struct {
	Field string `json:"field"`
	Root  uint64 `json:"root"`
	Rows  int64  `json:"rows,omitempty"`
}

// SegmentEntry pairs a vertical partition's definition with its rendered
// extent.
type SegmentEntry struct {
	Fields []string     `json:"fields"`
	Codecs []string     `json:"codecs"`
	Meta   segment.Meta `json:"meta"`
}

// RunEntry is one organized rendering in a table's run hierarchy (leveled
// storage). Level 1 runs hold freshly folded tail batches; compaction folds
// every run of a level into a single run at level+1, so higher levels hold
// strictly older data. Segments is one rendered segment list in the table's
// layout (aligned with Table.Segments vertical partitioning); Rows is the
// run's logical row count.
type RunEntry struct {
	Level    int            `json:"level"`
	Rows     int64          `json:"rows"`
	Segments []SegmentEntry `json:"segments"`
}

// Table is the catalog record of one table.
type Table struct {
	Name       string         `json:"name"`
	Fields     []FieldMeta    `json:"schema"`
	LayoutExpr string         `json:"layout"`
	RowCount   int64          `json:"rows"`
	Segments   []SegmentEntry `json:"segments,omitempty"`
	// Runs is the leveled run hierarchy between the bulk-loaded main
	// rendering (Segments, the oldest data) and the unorganized Tails (the
	// newest). Empty unless the table's layout carries a compaction policy.
	Runs       []RunEntry       `json:"runs,omitempty"`
	Tails      [][]SegmentEntry `json:"tails,omitempty"` // per insert batch, aligned with Segments
	GridBounds []GridBoundsMeta `json:"grid,omitempty"`
	Indexes    []IndexMeta      `json:"indexes,omitempty"`
	NeedsReorg bool             `json:"needsReorg,omitempty"` // lazy reorganization pending
	// PendingExpr is the layout to apply on next access when NeedsReorg.
	PendingExpr string `json:"pendingExpr,omitempty"`
}

// Schema reconstructs the value.Schema of the table's logical schema.
func (t *Table) Schema() (*value.Schema, error) {
	fields := make([]value.Field, len(t.Fields))
	for i, f := range t.Fields {
		k, err := value.KindFromString(f.Type)
		if err != nil {
			return nil, fmt.Errorf("catalog: table %s field %s: %w", t.Name, f.Name, err)
		}
		fields[i] = value.Field{Name: f.Name, Type: k}
	}
	return value.NewSchema(fields...)
}

// Catalog is the in-memory catalog bound to a page file.
type Catalog struct {
	mu     sync.Mutex
	file   *pager.File
	tables map[string]*Table
	extent segment.Meta // current catalog extent (reuses segment.Meta fields)
	encBuf []byte       // reusable flush encode buffer (guarded by mu)
	dirty  bool         // buffered updates not yet persisted (see PutBuffered)

	// DeferFree, when set, is offered the previous catalog extent on every
	// flush instead of it being freed inline with the meta-slot flip. A true
	// return means the hook took ownership (the engine queues it to be freed
	// only after the flip is made durable by a checkpoint — reusing it
	// earlier would let WAL replay clobber a catalog a crash rolled back
	// to). A false return keeps the inline free. Set before first use; the
	// hook is called with the catalog lock held and must not reenter it.
	DeferFree func(pager.Extent) bool
}

// Load reads the catalog from the file (empty catalog if none yet).
func Load(file *pager.File) (*Catalog, error) {
	c := &Catalog{file: file, tables: make(map[string]*Table)}
	start := pager.PageID(file.MetaGet(slotExtentStart))
	pages := file.MetaGet(slotExtentPages)
	byteLen := file.MetaGet(slotByteLen)
	if start == pager.InvalidPage || pages == 0 {
		return c, nil
	}
	payload := uint64(file.PayloadSize())
	buf := make([]byte, 0, byteLen)
	for p := uint64(0); p < pages; p++ {
		page, err := file.ReadPage(start + pager.PageID(p))
		if err != nil {
			return nil, fmt.Errorf("catalog: read: %w", err)
		}
		need := byteLen - uint64(len(buf))
		if need > payload {
			need = payload
		}
		buf = append(buf, page[:need]...)
	}
	tables, err := decodeTables(buf)
	if err != nil {
		return nil, err
	}
	for _, t := range tables {
		c.tables[t.Name] = t
	}
	c.extent = segment.Meta{ExtentStart: start, ExtentPages: pages, UsedBytes: byteLen}
	return c, nil
}

// flush serializes and writes the catalog, then flips the meta slots.
// Caller holds c.mu.
func (c *Catalog) flush() error {
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	buf := encodeTablesInto(c.encBuf, tables)
	c.encBuf = buf
	// Write the new extent, flip the meta slots and free the old extent
	// with a single header write: a crash leaves either the whole previous
	// catalog or the whole new one. With a DeferFree hook the old extent is
	// handed off instead of freed here (see the field comment).
	old := pager.Extent{Start: c.extent.ExtentStart, Count: c.extent.ExtentPages}
	if old.Count > 0 && c.DeferFree != nil && c.DeferFree(old) {
		old = pager.Extent{Start: pager.InvalidPage}
	}
	ext, err := c.file.ReplaceMetaExtent(slotExtentStart, slotExtentPages, slotByteLen, buf, old)
	if err != nil {
		return err
	}
	c.extent = segment.Meta{ExtentStart: ext.Start, ExtentPages: ext.Count, UsedBytes: uint64(len(buf))}
	c.dirty = false // a full flush persists buffered updates too
	return nil
}

// Get returns the table record, or an error if absent. Records are
// treated as immutable once published: a flush (checkpoint) may encode any
// record concurrently with engine work, so mutators copy the record,
// update the copy, and swap it in with Put or PutBuffered rather than
// writing through this pointer.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// Has reports whether the table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.tables[name]
	return ok
}

// Names lists table names sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Put inserts or replaces a table record and persists the catalog.
func (c *Catalog) Put(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
	return c.flush()
}

// PutBuffered inserts or replaces a table record in memory only; the change
// is persisted by the next Flush (or by any full flush from Put/Delete).
// Durable tail inserts use it: each insert's catalog rewrite is O(catalog
// size), the single largest serialized cost on the ingest path, while the
// tail delta itself is already redo-logged in the WAL (see EncodeTailAppend)
// — so persistence can wait for the checkpoint that makes the pages durable
// anyway.
func (c *Catalog) PutBuffered(t *Table) {
	c.mu.Lock()
	c.tables[t.Name] = t
	c.dirty = true
	c.mu.Unlock()
}

// Flush persists buffered updates; it is a no-op when the catalog is clean.
// The transaction manager calls it before every checkpoint, so the on-disk
// catalog is current whenever the WAL is truncated.
func (c *Catalog) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	return c.flush()
}

// Delete removes a table record and persists the catalog. The caller is
// responsible for freeing the table's extents first.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q: %w", name, ErrNotFound)
	}
	delete(c.tables, name)
	return c.flush()
}

// Schemas returns the name→schema map of every table (the input the algebra
// interpreter needs).
func (c *Catalog) Schemas() (map[string]*value.Schema, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*value.Schema, len(c.tables))
	for n, t := range c.tables {
		s, err := t.Schema()
		if err != nil {
			return nil, err
		}
		out[n] = s
	}
	return out, nil
}

// FieldsOf converts a value.Schema into catalog field metadata.
func FieldsOf(s *value.Schema) []FieldMeta {
	out := make([]FieldMeta, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = FieldMeta{Name: f.Name, Type: f.Type.String()}
	}
	return out
}
