// Package catalog persists RodentStore's table metadata: logical schemas,
// layout expressions (the persisted form of a physical design — recompiled
// by the algebra interpreter on open), rendered segment locations, grid
// bounds and reorganization state.
//
// The catalog serializes to JSON and lives in its own page extent inside the
// database file; pager meta slots record the extent. Updates write a fresh
// extent before flipping the meta slots, so a crash mid-update leaves the
// previous catalog intact.
package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/value"
)

// Meta slot assignments in the pager header.
const (
	slotExtentStart = 0
	slotExtentPages = 1
	slotByteLen     = 2
)

// FieldMeta is the serialized form of a schema field.
type FieldMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// GridBoundsMeta records the rendered discretization of one grid dimension.
type GridBoundsMeta struct {
	Field string  `json:"field"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Cells int     `json:"cells"`
}

// IndexMeta records one secondary B+tree index: the indexed field and the
// tree's root page.
type IndexMeta struct {
	Field string `json:"field"`
	Root  uint64 `json:"root"`
}

// SegmentEntry pairs a vertical partition's definition with its rendered
// extent.
type SegmentEntry struct {
	Fields []string     `json:"fields"`
	Codecs []string     `json:"codecs"`
	Meta   segment.Meta `json:"meta"`
}

// Table is the catalog record of one table.
type Table struct {
	Name       string           `json:"name"`
	Fields     []FieldMeta      `json:"schema"`
	LayoutExpr string           `json:"layout"`
	RowCount   int64            `json:"rows"`
	Segments   []SegmentEntry   `json:"segments,omitempty"`
	Tails      [][]SegmentEntry `json:"tails,omitempty"` // per insert batch, aligned with Segments
	GridBounds []GridBoundsMeta `json:"grid,omitempty"`
	Indexes    []IndexMeta      `json:"indexes,omitempty"`
	NeedsReorg bool             `json:"needsReorg,omitempty"` // lazy reorganization pending
	// PendingExpr is the layout to apply on next access when NeedsReorg.
	PendingExpr string `json:"pendingExpr,omitempty"`
}

// Schema reconstructs the value.Schema of the table's logical schema.
func (t *Table) Schema() (*value.Schema, error) {
	fields := make([]value.Field, len(t.Fields))
	for i, f := range t.Fields {
		k, err := value.KindFromString(f.Type)
		if err != nil {
			return nil, fmt.Errorf("catalog: table %s field %s: %w", t.Name, f.Name, err)
		}
		fields[i] = value.Field{Name: f.Name, Type: k}
	}
	return value.NewSchema(fields...)
}

// Catalog is the in-memory catalog bound to a page file.
type Catalog struct {
	mu     sync.Mutex
	file   *pager.File
	tables map[string]*Table
	extent segment.Meta // current catalog extent (reuses segment.Meta fields)
}

// Load reads the catalog from the file (empty catalog if none yet).
func Load(file *pager.File) (*Catalog, error) {
	c := &Catalog{file: file, tables: make(map[string]*Table)}
	start := pager.PageID(file.MetaGet(slotExtentStart))
	pages := file.MetaGet(slotExtentPages)
	byteLen := file.MetaGet(slotByteLen)
	if start == pager.InvalidPage || pages == 0 {
		return c, nil
	}
	payload := uint64(file.PayloadSize())
	buf := make([]byte, 0, byteLen)
	for p := uint64(0); p < pages; p++ {
		page, err := file.ReadPage(start + pager.PageID(p))
		if err != nil {
			return nil, fmt.Errorf("catalog: read: %w", err)
		}
		need := byteLen - uint64(len(buf))
		if need > payload {
			need = payload
		}
		buf = append(buf, page[:need]...)
	}
	var tables []*Table
	if err := json.Unmarshal(buf, &tables); err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", err)
	}
	for _, t := range tables {
		c.tables[t.Name] = t
	}
	c.extent = segment.Meta{ExtentStart: start, ExtentPages: pages, UsedBytes: byteLen}
	return c, nil
}

// flush serializes and writes the catalog, then flips the meta slots.
// Caller holds c.mu.
func (c *Catalog) flush() error {
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	buf, err := json.Marshal(tables)
	if err != nil {
		return fmt.Errorf("catalog: encode: %w", err)
	}
	payload := uint64(c.file.PayloadSize())
	npages := (uint64(len(buf)) + payload - 1) / payload
	if npages == 0 {
		npages = 1
	}
	start, err := c.file.AllocateRun(npages)
	if err != nil {
		return err
	}
	for p := uint64(0); p < npages; p++ {
		lo := p * payload
		hi := lo + payload
		if hi > uint64(len(buf)) {
			hi = uint64(len(buf))
		}
		var chunk []byte
		if lo < uint64(len(buf)) {
			chunk = buf[lo:hi]
		}
		if err := c.file.WritePage(start+pager.PageID(p), chunk); err != nil {
			return err
		}
	}
	// Flip the pointers (single header write per slot; last write wins on
	// crash — the extent itself is already durable).
	if err := c.file.MetaSet(slotExtentStart, uint64(start)); err != nil {
		return err
	}
	if err := c.file.MetaSet(slotExtentPages, npages); err != nil {
		return err
	}
	if err := c.file.MetaSet(slotByteLen, uint64(len(buf))); err != nil {
		return err
	}
	// Free the previous extent.
	if c.extent.ExtentPages > 0 {
		if err := c.file.FreeRun(c.extent.ExtentStart, c.extent.ExtentPages); err != nil {
			return err
		}
	}
	c.extent = segment.Meta{ExtentStart: start, ExtentPages: npages, UsedBytes: uint64(len(buf))}
	return nil
}

// Get returns the table record, or an error if absent.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Has reports whether the table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.tables[name]
	return ok
}

// Names lists table names sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Put inserts or replaces a table record and persists the catalog.
func (c *Catalog) Put(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
	return c.flush()
}

// Delete removes a table record and persists the catalog. The caller is
// responsible for freeing the table's extents first.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	return c.flush()
}

// Schemas returns the name→schema map of every table (the input the algebra
// interpreter needs).
func (c *Catalog) Schemas() (map[string]*value.Schema, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*value.Schema, len(c.tables))
	for n, t := range c.tables {
		s, err := t.Schema()
		if err != nil {
			return nil, err
		}
		out[n] = s
	}
	return out, nil
}

// FieldsOf converts a value.Schema into catalog field metadata.
func FieldsOf(s *value.Schema) []FieldMeta {
	out := make([]FieldMeta, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = FieldMeta{Name: f.Name, Type: f.Type.String()}
	}
	return out
}
