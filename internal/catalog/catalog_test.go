package catalog

import (
	"path/filepath"
	"reflect"
	"testing"

	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/value"
)

func newFile(t *testing.T) (*pager.File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cat.rdnt")
	f, err := pager.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, path
}

func sampleTable() *Table {
	return &Table{
		Name: "Traces",
		Fields: []FieldMeta{
			{Name: "t", Type: "int"},
			{Name: "lat", Type: "float"},
			{Name: "id", Type: "string"},
		},
		LayoutExpr: "rows(Traces)",
		RowCount:   42,
		Segments: []SegmentEntry{{
			Fields: []string{"t", "lat", "id"},
			Codecs: []string{"", "delta", ""},
			Meta: segment.Meta{
				ExtentStart: 5, ExtentPages: 10, UsedBytes: 9000, Rows: 42,
				Blocks: []segment.BlockMeta{{Off: 0, Len: 9000, Rows: 42, Cell: segment.NoCell}},
			},
		}},
		GridBounds: []GridBoundsMeta{{Field: "lat", Min: 42.3, Max: 42.4, Cells: 64}},
	}
}

func TestEmptyCatalog(t *testing.T) {
	f, _ := newFile(t)
	c, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Names()) != 0 {
		t.Errorf("names: %v", c.Names())
	}
	if c.Has("x") {
		t.Error("Has on empty catalog")
	}
	if _, err := c.Get("x"); err == nil {
		t.Error("Get on empty catalog should fail")
	}
}

func TestPutGetPersist(t *testing.T) {
	f, path := newFile(t)
	c, _ := Load(f)
	if err := c.Put(sampleTable()); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("Traces")
	if err != nil {
		t.Fatal(err)
	}
	if got.RowCount != 42 || got.LayoutExpr != "rows(Traces)" {
		t.Errorf("got %+v", got)
	}
	f.Close()

	// Reopen: everything must be restored.
	f2, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	c2, err := Load(f2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := c2.Get("Traces")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, sampleTable()) {
		t.Errorf("persisted table differs:\n got %+v\nwant %+v", got2, sampleTable())
	}
}

func TestSchemaReconstruction(t *testing.T) {
	tab := sampleTable()
	s, err := tab.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "t:int, lat:float, id:string" {
		t.Errorf("schema: %s", s)
	}
	bad := &Table{Name: "X", Fields: []FieldMeta{{Name: "a", Type: "widget"}}}
	if _, err := bad.Schema(); err == nil {
		t.Error("bad type should fail")
	}
}

func TestFieldsOfRoundtrip(t *testing.T) {
	s := value.MustSchema(
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "b", Type: value.Bool},
	)
	fm := FieldsOf(s)
	tab := &Table{Name: "T", Fields: fm}
	back, err := tab.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Errorf("roundtrip: %s vs %s", back, s)
	}
}

func TestDeleteAndNames(t *testing.T) {
	f, _ := newFile(t)
	c, _ := Load(f)
	c.Put(sampleTable())
	c.Put(&Table{Name: "Areas", Fields: []FieldMeta{{Name: "a", Type: "int"}}, LayoutExpr: "rows(Areas)"})
	if got := c.Names(); !reflect.DeepEqual(got, []string{"Areas", "Traces"}) {
		t.Errorf("names: %v", got)
	}
	if err := c.Delete("Areas"); err != nil {
		t.Fatal(err)
	}
	if c.Has("Areas") {
		t.Error("Areas still present")
	}
	if err := c.Delete("Areas"); err == nil {
		t.Error("double delete should fail")
	}
}

func TestSchemas(t *testing.T) {
	f, _ := newFile(t)
	c, _ := Load(f)
	c.Put(sampleTable())
	m, err := c.Schemas()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["Traces"].Arity() != 3 {
		t.Errorf("schemas: %v", m)
	}
}

func TestRepeatedFlushReclaimsSpace(t *testing.T) {
	// Rewriting the catalog many times must not grow the file unboundedly:
	// old extents are freed and reused.
	f, _ := newFile(t)
	c, _ := Load(f)
	c.Put(sampleTable())
	after1 := f.NumPages()
	for i := 0; i < 50; i++ {
		tab, _ := c.Get("Traces")
		tab.RowCount = int64(i)
		if err := c.Put(tab); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.NumPages(); got > after1+2 {
		t.Errorf("catalog rewrites leak pages: %d -> %d", after1, got)
	}
}

func TestLargeCatalog(t *testing.T) {
	// A catalog spanning many pages (large block lists) roundtrips.
	f, path := newFile(t)
	c, _ := Load(f)
	tab := sampleTable()
	for i := 0; i < 2000; i++ {
		tab.Segments[0].Meta.Blocks = append(tab.Segments[0].Meta.Blocks, segment.BlockMeta{
			Off: uint64(i * 100), Len: 100, Rows: 10, RowStart: int64(i * 10), Cell: uint64(i),
			Zones: []segment.ZoneMap{{Field: "lat", Min: float64(i), Max: float64(i + 1)}},
		})
	}
	if err := c.Put(tab); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, _ := pager.Open(path)
	defer f2.Close()
	c2, err := Load(f2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c2.Get("Traces")
	if len(got.Segments[0].Meta.Blocks) != 2001 {
		t.Errorf("blocks: %d", len(got.Segments[0].Meta.Blocks))
	}
}
