package catalog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
)

// Binary catalog serialization. The catalog is rewritten on every DDL and
// on every Insert's publish phase; at ingest rates the old JSON encoding was
// the single largest serialized cost on the write path (it re-marshals
// every tail batch's block metadata per insert). The binary form is a
// straightforward length-prefixed little-endian encoding, several times
// faster to produce and ~4x smaller on disk.
//
// Format: [catMagic u8][catVersion u8][uvarint ntables][table...]
// Legacy catalogs (JSON arrays, first byte '[') are still decoded, so files
// written before this encoding open cleanly; the first flush rewrites them
// in binary form.

// Version 1 is the original binary layout; version 2 appends each table's
// leveled run list (Runs) after PendingExpr. The encoder emits version 1
// whenever no table has runs — so stores that never enable a compaction
// policy keep writing byte-identical catalogs — and version 2 otherwise.
const (
	catMagic     = 0xC7
	catVersion   = 1
	catVersionV2 = 2
)

// encodeTables serializes the catalog's table list.
func encodeTables(tables []*Table) []byte {
	return encodeTablesInto(nil, tables)
}

// encodeTablesInto serializes into buf (reusing its capacity) and returns
// the encoded bytes. The catalog's flush keeps a scratch buffer so the
// per-insert catalog rewrite does not reallocate its way up from empty.
func encodeTablesInto(buf []byte, tables []*Table) []byte {
	ver := byte(catVersion)
	for _, t := range tables {
		if len(t.Runs) > 0 {
			ver = catVersionV2
			break
		}
	}
	e := &enc{buf: buf[:0]}
	e.buf = append(e.buf, catMagic, ver)
	e.uvarint(uint64(len(tables)))
	for _, t := range tables {
		e.str(t.Name)
		e.uvarint(uint64(len(t.Fields)))
		for _, f := range t.Fields {
			e.str(f.Name)
			e.str(f.Type)
		}
		e.str(t.LayoutExpr)
		e.i64(t.RowCount)
		e.segments(t.Segments)
		e.uvarint(uint64(len(t.Tails)))
		for _, batch := range t.Tails {
			e.segments(batch)
		}
		e.uvarint(uint64(len(t.GridBounds)))
		for _, g := range t.GridBounds {
			e.str(g.Field)
			e.f64(g.Min)
			e.f64(g.Max)
			e.i64(int64(g.Cells))
		}
		e.uvarint(uint64(len(t.Indexes)))
		for _, ix := range t.Indexes {
			e.str(ix.Field)
			e.u64(ix.Root)
			e.i64(ix.Rows)
		}
		e.bool(t.NeedsReorg)
		e.str(t.PendingExpr)
		if ver >= catVersionV2 {
			e.uvarint(uint64(len(t.Runs)))
			for _, r := range t.Runs {
				e.i64(int64(r.Level))
				e.i64(r.Rows)
				e.segments(r.Segments)
			}
		}
	}
	return e.buf
}

// decodeTables deserializes a catalog payload, accepting both the binary
// format and the legacy JSON array.
func decodeTables(buf []byte) ([]*Table, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	if buf[0] == '[' {
		var tables []*Table
		if err := json.Unmarshal(buf, &tables); err != nil {
			return nil, fmt.Errorf("catalog: decode legacy: %w", err)
		}
		// Legacy catalogs predate IndexMeta.Rows. The engine that wrote
		// them dropped indexes on every insert, so a persisted index covers
		// every stored row — leaving Rows at the zero value would make
		// IndexScan treat the whole table as an unindexed suffix.
		for _, t := range tables {
			for i := range t.Indexes {
				if t.Indexes[i].Rows == 0 {
					t.Indexes[i].Rows = t.RowCount
				}
			}
		}
		return tables, nil
	}
	if len(buf) < 2 || buf[0] != catMagic || (buf[1] != catVersion && buf[1] != catVersionV2) {
		return nil, fmt.Errorf("catalog: bad catalog header % x", buf[:min(len(buf), 2)])
	}
	ver := buf[1]
	d := &dec{buf: buf[2:]}
	n := d.uvarint()
	tables := make([]*Table, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		t := &Table{}
		t.Name = d.str()
		nf := d.uvarint()
		t.Fields = make([]FieldMeta, 0, nf)
		for j := uint64(0); j < nf && d.err == nil; j++ {
			t.Fields = append(t.Fields, FieldMeta{Name: d.str(), Type: d.str()})
		}
		t.LayoutExpr = d.str()
		t.RowCount = d.i64()
		t.Segments = d.segments()
		nt := d.uvarint()
		for j := uint64(0); j < nt && d.err == nil; j++ {
			t.Tails = append(t.Tails, d.segments())
		}
		ng := d.uvarint()
		for j := uint64(0); j < ng && d.err == nil; j++ {
			t.GridBounds = append(t.GridBounds, GridBoundsMeta{
				Field: d.str(), Min: d.f64(), Max: d.f64(), Cells: int(d.i64()),
			})
		}
		ni := d.uvarint()
		for j := uint64(0); j < ni && d.err == nil; j++ {
			t.Indexes = append(t.Indexes, IndexMeta{Field: d.str(), Root: d.u64(), Rows: d.i64()})
		}
		t.NeedsReorg = d.bool()
		t.PendingExpr = d.str()
		if ver >= catVersionV2 {
			nr := d.uvarint()
			for j := uint64(0); j < nr && d.err == nil; j++ {
				t.Runs = append(t.Runs, RunEntry{
					Level: int(d.i64()), Rows: d.i64(), Segments: d.segments(),
				})
			}
		}
		tables = append(tables, t)
	}
	if d.err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", d.err)
	}
	return tables, nil
}

// tailMagic tags a tail-append delta blob (EncodeTailAppend), distinct from
// the full-catalog magic so a mixed-up payload fails loudly.
const tailMagic = 0xC8

// EncodeTailAppend serializes one insert's catalog delta — "append this tail
// batch to table name, adding rows to its count" — for redo logging. The
// blob is O(one batch), not O(catalog): durable inserts log it in the WAL
// instead of rewriting the whole catalog, and recovery replays it with
// ApplyTailAppend.
func EncodeTailAppend(name string, batch []SegmentEntry, rows int64) []byte {
	e := &enc{}
	e.buf = append(e.buf, tailMagic, catVersion)
	e.str(name)
	e.i64(rows)
	e.segments(batch)
	return e.buf
}

// ApplyTailAppend decodes a tail-append delta and applies it to the
// in-memory catalog, marking it dirty (the next Flush persists it). The
// apply is idempotent: a batch whose extent the table already references is
// skipped, so replaying a delta that a full catalog flush already captured
// (e.g. a DDL flushed between the insert and the crash) cannot duplicate
// rows. Deltas for tables that no longer exist are skipped too (the table
// was dropped after the insert; its extents were freed under a checkpoint).
func (c *Catalog) ApplyTailAppend(blob []byte) error {
	if len(blob) < 2 || blob[0] != tailMagic || blob[1] != catVersion {
		return fmt.Errorf("catalog: bad tail-append header % x", blob[:min(len(blob), 2)])
	}
	d := &dec{buf: blob[2:]}
	name := d.str()
	rows := d.i64()
	batch := d.segments()
	if d.err != nil {
		return fmt.Errorf("catalog: decode tail-append: %w", d.err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok || len(batch) == 0 {
		return nil
	}
	for _, existing := range t.Tails {
		if len(existing) > 0 && existing[0].Meta.ExtentStart == batch[0].Meta.ExtentStart {
			return nil // already applied (captured by a full flush pre-crash)
		}
	}
	t.Tails = append(t.Tails, batch)
	t.RowCount += rows
	c.dirty = true
	return nil
}

// enc is a little-endian append-only encoder.
type enc struct{ buf []byte }

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) u64(v uint64)     { e.uvarint(v) }
func (e *enc) i64(v int64)      { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) segments(entries []SegmentEntry) {
	e.uvarint(uint64(len(entries)))
	for _, s := range entries {
		e.uvarint(uint64(len(s.Fields)))
		for _, f := range s.Fields {
			e.str(f)
		}
		e.uvarint(uint64(len(s.Codecs)))
		for _, c := range s.Codecs {
			e.str(c)
		}
		m := s.Meta
		e.u64(uint64(m.ExtentStart))
		e.u64(m.ExtentPages)
		e.u64(m.UsedBytes)
		e.i64(m.Rows)
		e.uvarint(uint64(len(m.Blocks)))
		for _, b := range m.Blocks {
			e.u64(b.Off)
			e.u64(uint64(b.Len))
			e.i64(int64(b.Rows))
			e.i64(b.RowStart)
			e.u64(b.Cell)
			e.uvarint(uint64(len(b.Zones)))
			for _, z := range b.Zones {
				e.str(z.Field)
				e.f64(z.Min)
				e.f64(z.Max)
			}
		}
	}
}

// dec is the matching decoder; the first malformed read latches err and
// zero-values every subsequent read.
type dec struct {
	buf []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated catalog payload")
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) u64() uint64 { return d.uvarint() }

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < 1 {
		d.fail()
		return false
	}
	b := d.buf[0] != 0
	d.buf = d.buf[1:]
	return b
}

func (d *dec) segments() []SegmentEntry {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]SegmentEntry, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s SegmentEntry
		nf := d.uvarint()
		for j := uint64(0); j < nf && d.err == nil; j++ {
			s.Fields = append(s.Fields, d.str())
		}
		nc := d.uvarint()
		for j := uint64(0); j < nc && d.err == nil; j++ {
			s.Codecs = append(s.Codecs, d.str())
		}
		s.Meta.ExtentStart = pager.PageID(d.u64())
		s.Meta.ExtentPages = d.u64()
		s.Meta.UsedBytes = d.u64()
		s.Meta.Rows = d.i64()
		nb := d.uvarint()
		if d.err == nil && nb > 0 {
			s.Meta.Blocks = make([]segment.BlockMeta, 0, nb)
		}
		for j := uint64(0); j < nb && d.err == nil; j++ {
			var b segment.BlockMeta
			b.Off = d.u64()
			b.Len = uint32(d.u64())
			b.Rows = int(d.i64())
			b.RowStart = d.i64()
			b.Cell = d.u64()
			nz := d.uvarint()
			for k := uint64(0); k < nz && d.err == nil; k++ {
				b.Zones = append(b.Zones, segment.ZoneMap{Field: d.str(), Min: d.f64(), Max: d.f64()})
			}
			s.Meta.Blocks = append(s.Meta.Blocks, b)
		}
		out = append(out, s)
	}
	return out
}
