package catalog

import (
	"bytes"
	"reflect"
	"testing"

	"rodentstore/internal/segment"
)

func runTable() *Table {
	t := sampleTable()
	t.Runs = []RunEntry{
		{Level: 2, Rows: 80, Segments: []SegmentEntry{{
			Fields: []string{"t", "lat", "id"},
			Codecs: []string{"", "", "dict"},
			Meta: segment.Meta{
				ExtentStart: 30, ExtentPages: 6, UsedBytes: 4100, Rows: 80,
				Blocks: []segment.BlockMeta{{Off: 0, Len: 4100, Rows: 80, Cell: segment.NoCell}},
			},
		}}},
		{Level: 1, Rows: 25, Segments: []SegmentEntry{{
			Fields: []string{"t", "lat", "id"},
			Codecs: []string{"", "", ""},
			Meta: segment.Meta{
				ExtentStart: 40, ExtentPages: 2, UsedBytes: 900, Rows: 25,
				Blocks: []segment.BlockMeta{{Off: 0, Len: 900, Rows: 25, Cell: segment.NoCell}},
			},
		}}},
	}
	return t
}

func TestCodecRunsRoundtrip(t *testing.T) {
	want := []*Table{runTable(), sampleTable()}
	blob := encodeTables(want)
	if blob[1] != catVersionV2 {
		t.Fatalf("catalog with runs should encode as v%d, got v%d", catVersionV2, blob[1])
	}
	got, err := decodeTables(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got[0], want[0])
	}
}

func TestCodecRunFreeTablesStayV1(t *testing.T) {
	// A catalog without runs must keep emitting the version-1 format so
	// default-path databases (and the paper figures built on them) stay
	// byte-identical across this change.
	tables := []*Table{sampleTable(), sampleTable()}
	tables[1].Name = "Other"
	blob := encodeTables(tables)
	if blob[1] != catVersion {
		t.Fatalf("run-free catalog should encode as v%d, got v%d", catVersion, blob[1])
	}
	got, err := decodeTables(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tables) {
		t.Error("v1 roundtrip mismatch")
	}

	// Dropping the runs from a v2 table must fall back to the v1 bytes
	// exactly — the version bump is data-driven, not sticky.
	rt := runTable()
	rt.Runs = nil
	if !bytes.Equal(encodeTables([]*Table{rt}), encodeTables([]*Table{sampleTable()})) {
		t.Error("table with cleared runs does not re-encode identically to v1")
	}
}

func TestCodecV2Truncated(t *testing.T) {
	blob := encodeTables([]*Table{runTable()})
	for _, cut := range []int{len(blob) - 1, len(blob) / 2, 3} {
		if _, err := decodeTables(blob[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}
