package table

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rodentstore/internal/algebra"
	"rodentstore/internal/buffer"
	"rodentstore/internal/value"
)

// parallelEngine loads a gridded Traces table with enough blocks for the
// parallel scanner to have real work.
func parallelEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e, _, _ := newEngine(t)
	layout := "chunk[64](zorder(grid[lat,lon; 8,8](Traces)))"
	if err := e.Create("Traces", tracesSchema(), layout); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Traces", traceRows(n)); err != nil {
		t.Fatal(err)
	}
	return e
}

func rowsEqual(a, b []value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].String() != b[i][j].String() {
				return false
			}
		}
	}
	return true
}

func TestParallelScanMatchesSerial(t *testing.T) {
	e := parallelEngine(t, 5000)
	pred := algebra.True.
		And("lat", algebra.OpGe, value.NewFloat(42.35)).
		And("lat", algebra.OpLt, value.NewFloat(42.37))
	for _, workers := range []int{1, 2, 4, 8} {
		serial, err := e.Scan("Traces", ScanOptions{Pred: pred})
		if err != nil {
			t.Fatal(err)
		}
		want := drain(t, serial)
		par, err := e.Scan("Traces", ScanOptions{Pred: pred, Parallel: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, par)
		if !rowsEqual(want, got) {
			t.Fatalf("workers=%d: parallel scan differs from serial (%d vs %d rows)", workers, len(got), len(want))
		}
	}
}

func TestParallelScanFullTableAndProjection(t *testing.T) {
	e := parallelEngine(t, 3000)
	serial, err := e.Scan("Traces", ScanOptions{Fields: []string{"lat", "lon"}})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, serial)
	if len(want) != 3000 {
		t.Fatalf("serial full scan rows = %d", len(want))
	}
	par, err := e.Scan("Traces", ScanOptions{Fields: []string{"lat", "lon"}, Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, par)
	if !rowsEqual(want, got) {
		t.Fatal("parallel projected scan differs from serial")
	}
}

func TestParallelScanWarmPool(t *testing.T) {
	e := parallelEngine(t, 4000)
	pool, err := buffer.NewPool(e.file, 512)
	if err != nil {
		t.Fatal(err)
	}
	e.Source = pool
	serial, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, serial) // also warms the pool
	par, err := e.Scan("Traces", ScanOptions{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, par)
	if !rowsEqual(want, got) {
		t.Fatal("parallel warm scan differs from serial")
	}
	if s := pool.Stats(); s.Hits == 0 {
		t.Errorf("warm parallel scan should hit the pool: %+v", s)
	}
}

func TestParallelScanMaterializedSort(t *testing.T) {
	e := parallelEngine(t, 2000)
	order := []algebra.OrderKey{{Field: "t"}}
	serial, err := e.Scan("Traces", ScanOptions{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, serial)
	par, err := e.Scan("Traces", ScanOptions{Order: order, Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, par)
	if !rowsEqual(want, got) {
		t.Fatal("parallel sorted scan differs from serial")
	}
}

func TestParallelScanEarlyClose(t *testing.T) {
	e := parallelEngine(t, 4000)
	for i := 0; i < 20; i++ {
		cur, err := e.Scan("Traces", ScanOptions{Parallel: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Read a few rows, then abandon the cursor; workers must stop
		// without deadlock or leak (run under -race).
		for j := 0; j < 3; j++ {
			if _, ok, err := cur.Next(); err != nil || !ok {
				t.Fatalf("row %d: ok=%v err=%v", j, ok, err)
			}
		}
		cur.Close()
	}
}

// TestParallelScanAbandonedCursor abandons partially-consumed parallel
// cursors without Close; the GC cleanup must cancel their pipelines so the
// dispatcher/worker goroutines exit instead of leaking.
func TestParallelScanAbandonedCursor(t *testing.T) {
	e := parallelEngine(t, 4000)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cur, err := e.Scan("Traces", ScanOptions{Parallel: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := cur.Next(); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		// Abandoned: no Close.
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after GC", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestParallelScanStress hammers one table from many client goroutines,
// each running its own parallel scan, over a shared sharded pool. Run with
// -race; it asserts row counts, pool stat consistency, and that every pin
// was released (Invalidate fails if any frame is still pinned).
func TestParallelScanStress(t *testing.T) {
	const n = 4000
	e := parallelEngine(t, n)
	pool, err := buffer.NewPool(e.file, 256)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Shards() < 2 {
		t.Fatalf("stress pool should be sharded, got %d shards", pool.Shards())
	}
	e.Source = pool

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				cur, err := e.Scan("Traces", ScanOptions{Parallel: c%2 == 0, Workers: 3})
				if err != nil {
					errs <- err
					return
				}
				count := 0
				for {
					_, ok, err := cur.Next()
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						break
					}
					count++
				}
				cur.Close()
				if count != n {
					errs <- fmt.Errorf("client %d scan %d: %d rows, want %d", c, i, count, n)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("expected pool traffic, got %+v", s)
	}
	// No lost pins: Invalidate fails if anything is still pinned.
	if err := pool.Invalidate(); err != nil {
		t.Errorf("pins leaked: %v", err)
	}
}
