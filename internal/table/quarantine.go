package table

// Corruption quarantine (opt-in via ScanOptions.Quarantine): instead of the
// default fail-stop behavior — any unreadable block aborts the scan — a
// quarantined scan skips the damaged extent, records it in a report, and
// keeps serving every other extent. Transient I/O errors are retried with
// capped backoff first; only errors that persist (or that are corruption by
// construction: checksum mismatches, undecodable blocks) quarantine the
// extent. The report names exactly what was skipped and how many rows it
// held, so callers can decide whether a partial answer is acceptable.

import (
	"errors"
	"sync"
	"time"

	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
)

const (
	// quarRetries is how many times a transient (non-corruption) read error
	// is retried before the block is treated as corrupt.
	quarRetries = 3
	// quarBackoff is the first retry delay; it doubles per attempt up to
	// quarBackoffCap. The budget is deliberately small — a scan holding the
	// table's shared lock must not stall for human-scale durations.
	quarBackoff    = 250 * time.Microsecond
	quarBackoffCap = 2 * time.Millisecond
)

// SkippedExtent is one quarantined extent in a scan report.
type SkippedExtent struct {
	// Extent is the page run that could not be read.
	Extent pager.Extent
	// Blocks is how many blocks of the scan fell in the extent.
	Blocks int
	// Rows is the metadata row count of those blocks — an upper bound on
	// rows the scan could not return.
	Rows int64
	// Err is the first error observed for the extent.
	Err error
}

// ScanReport describes what a quarantined scan skipped. An empty Skipped
// list means the scan saw everything.
type ScanReport struct {
	Skipped []SkippedExtent
}

// quarState is the shared quarantine bookkeeping of one cursor; parallel
// scan workers record into it concurrently.
type quarState struct {
	mu      sync.Mutex
	index   map[pager.PageID]int // extent start -> Skipped index
	skipped []SkippedExtent
}

func newQuarState() *quarState {
	return &quarState{index: make(map[pager.PageID]int)}
}

// isCorrupt reports whether err is corruption by construction — a failed
// page checksum or an undecodable block — as opposed to an I/O error that
// might be transient.
func isCorrupt(err error) bool {
	var ce *segment.ErrCorruptExtent
	var cp *pager.ErrCorruptPage
	return errors.As(err, &ce) || errors.As(err, &cp)
}

// quarExtent resolves which extent err belongs to: the typed corruption
// errors carry it; other errors are attributed to the part's first readable
// segment (the best identity available).
func quarExtent(p *part, err error) pager.Extent {
	var ce *segment.ErrCorruptExtent
	if errors.As(err, &ce) {
		return pager.Extent{Start: ce.Start, Count: ce.Pages}
	}
	var cp *pager.ErrCorruptPage
	if errors.As(err, &cp) {
		for _, entry := range p.entries {
			m := entry.Meta
			if cp.Page >= m.ExtentStart && cp.Page < m.ExtentStart+pager.PageID(m.ExtentPages) {
				return pager.Extent{Start: m.ExtentStart, Count: m.ExtentPages}
			}
		}
	}
	m := p.entries[firstReadSeg(p)].Meta
	return pager.Extent{Start: m.ExtentStart, Count: m.ExtentPages}
}

// handle applies the quarantine policy to a failed block load: errors from
// already-quarantined extents skip immediately; corruption quarantines
// immediately; anything else is retried with capped backoff (via retry,
// which must re-attempt the same load) and quarantined only if it keeps
// failing. It returns skipped=true when the block was recorded and the scan
// should move on.
func (q *quarState) handle(p *part, ref blockRef, err error, retry func() error) (skipped bool, out error) {
	q.mu.Lock()
	_, known := q.index[quarExtent(p, err).Start]
	q.mu.Unlock()
	if !known && !isCorrupt(err) {
		backoff := quarBackoff
		for i := 0; i < quarRetries; i++ {
			time.Sleep(backoff)
			if backoff *= 2; backoff > quarBackoffCap {
				backoff = quarBackoffCap
			}
			if err = retry(); err == nil {
				return false, nil
			}
			if isCorrupt(err) {
				break
			}
		}
	}
	q.record(p, ref, err)
	return true, nil
}

// record adds one skipped block to the report, aggregating per extent.
func (q *quarState) record(p *part, ref blockRef, err error) {
	ext := quarExtent(p, err)
	rows := int64(blockRowCount(p, ref.block))
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.index[ext.Start]
	if !ok {
		i = len(q.skipped)
		q.index[ext.Start] = i
		q.skipped = append(q.skipped, SkippedExtent{Extent: ext, Err: err})
	}
	q.skipped[i].Blocks++
	q.skipped[i].Rows += rows
}

// report snapshots the skip list.
func (q *quarState) report() ScanReport {
	if q == nil {
		return ScanReport{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]SkippedExtent, len(q.skipped))
	copy(out, q.skipped)
	return ScanReport{Skipped: out}
}
