package table

import (
	"fmt"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/value"
)

// insertBatches appends n batches of size rows each, with distinct t keys
// starting at base, and returns the inserted rows.
func insertBatches(t *testing.T, e *Engine, n, size, base int) []value.Row {
	t.Helper()
	var all []value.Row
	for b := 0; b < n; b++ {
		batch := traceRows(size)
		for i := range batch {
			batch[i][0] = value.NewInt(int64(base + b*size + i))
		}
		if err := e.Insert("Traces", batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	return all
}

func TestCompactFoldsTailsIntoRun(t *testing.T) {
	e, _, rows := setup(t, "sizetiered[4](orderby[t](Traces))", 200)
	extra := insertBatches(t, e, 3, 40, 1000)
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	if len(tab.Tails) != 0 {
		t.Errorf("tails not folded: %d left", len(tab.Tails))
	}
	if len(tab.Runs) != 1 || tab.Runs[0].Level != 1 {
		t.Fatalf("want one level-1 run, got %+v", tab.Runs)
	}
	if tab.Runs[0].Rows != 120 {
		t.Errorf("run rows: %d", tab.Runs[0].Rows)
	}
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, drain(t, cur), append(append([]value.Row{}, rows...), extra...))
}

func TestCompactNoopWithoutTails(t *testing.T) {
	e, _, _ := setup(t, "sizetiered[4](rows(Traces))", 100)
	tab, _ := e.cat.Get("Traces")
	before := fmt.Sprintf("%+v", tab)
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	tab, _ = e.cat.Get("Traces")
	if got := fmt.Sprintf("%+v", tab); got != before {
		t.Errorf("no-op compact changed the record:\n before %s\n after  %s", before, got)
	}
	if st := e.CompactStats(); st.Merges != 0 {
		t.Errorf("no-op compact counted %d merges", st.Merges)
	}
}

func TestSizeTieredCascade(t *testing.T) {
	e, _, rows := setup(t, "sizetiered[2](orderby[t](Traces))", 50)
	// Each Compact folds the pending tails into one L1 run; with fanout 2,
	// every second fold cascades. Drive enough folds to reach level 3.
	var extra []value.Row
	for round := 0; round < 4; round++ {
		extra = append(extra, insertBatches(t, e, 1, 30, 1000+round*1000)...)
		if err := e.Compact("Traces"); err != nil {
			t.Fatal(err)
		}
	}
	tab, _ := e.cat.Get("Traces")
	maxLevel := 0
	for i, run := range tab.Runs {
		if run.Level > maxLevel {
			maxLevel = run.Level
		}
		if i > 0 && tab.Runs[i-1].Level < run.Level {
			t.Fatalf("levels not non-increasing: %+v", tab.Runs)
		}
	}
	if maxLevel < 2 {
		t.Fatalf("cascade never promoted past level %d: %+v", maxLevel, tab.Runs)
	}
	if st := e.CompactStats(); st.Merges == 0 || st.Bytes == 0 {
		t.Errorf("fold counters not bumped: %+v", st)
	}
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, drain(t, cur), append(append([]value.Row{}, rows...), extra...))
}

func TestLeveledKeepsOneRunPerLevel(t *testing.T) {
	e, _, rows := setup(t, "leveled[4](orderby[t](Traces))", 50)
	var extra []value.Row
	for round := 0; round < 6; round++ {
		extra = append(extra, insertBatches(t, e, 2, 25, 1000+round*1000)...)
		if err := e.Compact("Traces"); err != nil {
			t.Fatal(err)
		}
		tab, _ := e.cat.Get("Traces")
		seen := map[int]bool{}
		for _, run := range tab.Runs {
			if seen[run.Level] {
				t.Fatalf("round %d: two runs at level %d: %+v", round, run.Level, tab.Runs)
			}
			seen[run.Level] = true
		}
	}
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, drain(t, cur), append(append([]value.Row{}, rows...), extra...))
}

func TestCompactFallsBackToReorganize(t *testing.T) {
	e, _, rows := setup(t, "orderby[t](Traces)", 100)
	extra := insertBatches(t, e, 2, 20, 1000)
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	if len(tab.Runs) != 0 || len(tab.Tails) != 0 {
		t.Fatalf("plain layout should reorganize fully: runs=%d tails=%d",
			len(tab.Runs), len(tab.Tails))
	}
	cur, _ := e.Scan("Traces", ScanOptions{})
	got := drain(t, cur)
	sameMultiset(t, got, append(append([]value.Row{}, rows...), extra...))
	for i := 1; i < len(got); i++ {
		if got[i][0].Int() < got[i-1][0].Int() {
			t.Fatal("not ordered after fallback reorganize")
		}
	}
}

func TestCompactOrderedScanResorts(t *testing.T) {
	// With several per-run sorted parts the stored order no longer matches a
	// requested global order; the scan must materialize and re-sort.
	e, _, _ := setup(t, "sizetiered[8](orderby[t](Traces))", 100)
	insertBatches(t, e, 2, 30, 1000)
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	insertBatches(t, e, 2, 30, 2000)
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	if len(tab.Runs) < 2 {
		t.Fatalf("want >=2 runs, got %+v", tab.Runs)
	}
	cur, err := e.Scan("Traces", ScanOptions{Order: []algebra.OrderKey{{Field: "t"}}})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	if len(got) != 220 {
		t.Fatalf("rows: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i][0].Int() < got[i-1][0].Int() {
			t.Fatal("ordered scan over runs not globally sorted")
		}
	}
}

func TestCompactDropsIndexesPastMain(t *testing.T) {
	e, _, _ := setup(t, "sizetiered[4](rows(Traces))", 100)
	// Index over main only: survives compaction.
	if err := e.CreateIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
	insertBatches(t, e, 2, 20, 1000)
	// Index covering the tails too: positions past main go stale on fold.
	if err := e.CreateIndex("Traces", "lat"); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	var fields []string
	for _, ix := range tab.Indexes {
		fields = append(fields, ix.Field)
	}
	if len(fields) != 1 || fields[0] != "t" {
		t.Errorf("surviving indexes: %v (want [t])", fields)
	}
}

func TestCompactPersistsAcrossReopen(t *testing.T) {
	path := ""
	var want []value.Row
	{
		e, f, p := newEngine(t)
		path = p
		if err := e.Create("Traces", tracesSchema(), "sizetiered[4](orderby[t](Traces))"); err != nil {
			t.Fatal(err)
		}
		want = traceRows(100)
		if err := e.Load("Traces", want); err != nil {
			t.Fatal(err)
		}
		want = append(want, insertBatches(t, e, 3, 30, 1000)...)
		if err := e.Compact("Traces"); err != nil {
			t.Fatal(err)
		}
		tab, _ := e.cat.Get("Traces")
		if len(tab.Runs) == 0 {
			t.Fatal("no runs before reopen")
		}
		if err := e.cat.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	f, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cat, err := catalog.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(f, cat, nil)
	tab, err := e.cat.Get("Traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Runs) != 1 || tab.Runs[0].Level != 1 || tab.Runs[0].Rows != 90 {
		t.Fatalf("runs after reopen: %+v", tab.Runs)
	}
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, drain(t, cur), want)
}

func TestCompactIntegrityAndEstimate(t *testing.T) {
	e, _, _ := setup(t, "sizetiered[2](cols(Traces))", 100)
	insertBatches(t, e, 2, 30, 1000)
	if err := e.Compact("Traces"); err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("integrity issues over runs: %v", rep.Issues)
	}
	est, err := e.EstimateScan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 160 {
		t.Errorf("estimate rows over runs: %d", est.Rows)
	}
}

func TestAutoMergeCompactsPolicyTable(t *testing.T) {
	e, _, _ := setup(t, "sizetiered[3](orderby[t](Traces))", 60)
	e.EnableAutoMerge(MergePolicy{MaxTails: 100, Workers: 2})
	defer e.DisableAutoMerge()
	want := insertBatches(t, e, 9, 10, 1000)
	e.WaitMerges()
	if err := e.MergeErr(); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	// The policy trigger (>= fanout tails), not MaxTails=100, must have fired.
	if len(tab.Runs) == 0 {
		t.Fatalf("background compaction never folded: tails=%d", len(tab.Tails))
	}
	if len(tab.Tails) >= 3+3 {
		t.Errorf("tail backlog kept growing: %d", len(tab.Tails))
	}
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	if len(got) != 60+len(want) {
		t.Errorf("rows after background folds: %d", len(got))
	}
}

func TestMergeWorkerToleratesDroppedTable(t *testing.T) {
	e, _, _ := setup(t, "sizetiered[2](rows(Traces))", 20)
	e.EnableAutoMerge(MergePolicy{MaxTails: 100, Workers: 1})
	defer e.DisableAutoMerge()
	insertBatches(t, e, 3, 10, 1000)
	// Drop races the queued background fold; whichever side wins, a vanished
	// table must not latch a merge error.
	if err := e.Drop("Traces"); err != nil {
		t.Fatal(err)
	}
	e.WaitMerges()
	if err := e.MergeErr(); err != nil {
		t.Errorf("dropped table latched a merge error: %v", err)
	}
}

func TestCompactUnknownTable(t *testing.T) {
	e, _, _ := newEngine(t)
	err := e.Compact("nope")
	if err == nil {
		t.Fatal("want error")
	}
}
