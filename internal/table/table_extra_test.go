package table

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/wal"
)

func TestThreeDimensionalGrid(t *testing.T) {
	e, _, _ := newEngine(t)
	schema := value.MustSchema(
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
		value.Field{Name: "z", Type: value.Float},
	)
	if err := e.Create("Cube", schema, "zorder(grid[x,y,z; 4,4,4](Cube))"); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	rows := make([]value.Row, 2000)
	for i := range rows {
		rows[i] = value.Row{
			value.NewFloat(r.Float64()),
			value.NewFloat(r.Float64()),
			value.NewFloat(r.Float64()),
		}
	}
	if err := e.Load("Cube", rows); err != nil {
		t.Fatal(err)
	}
	// Full scan returns everything.
	cur, _ := e.Scan("Cube", ScanOptions{})
	if got := drain(t, cur); len(got) != 2000 {
		t.Fatalf("3D scan rows: %d", len(got))
	}
	// An octant query returns exactly the brute-force result.
	pred, _ := algebra.ParsePredicate("x < 0.5 and y < 0.5 and z < 0.5")
	cur2, err := e.Scan("Cube", ScanOptions{Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur2)
	want := 0
	for _, row := range rows {
		if row[0].Float() < 0.5 && row[1].Float() < 0.5 && row[2].Float() < 0.5 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("octant query: got %d want %d", len(got), want)
	}
	// 3-D cell addressing via GetElement.
	cur3, err := e.GetElement("Cube", nil, []int64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r0, ok, _ := cur3.Next(); !ok || r0[0].Float() >= 0.5 {
		t.Errorf("cell (0,0,0) row: %v ok=%v", r0, ok)
	}
}

func TestNoZonePruneReadsEverything(t *testing.T) {
	e, f, _ := setup(t, "chunk[64](groupby[id](orderby[t](Traces)))", 3000)
	pred, _ := algebra.ParsePredicate("lat >= 42.3599 and lat < 42.3601")

	f.ResetStats()
	cur, _ := e.Scan("Traces", ScanOptions{Pred: pred})
	pruned := drain(t, cur)
	prunedPages := f.Stats().PageReads

	f.ResetStats()
	cur2, _ := e.Scan("Traces", ScanOptions{Pred: pred, NoZonePrune: true})
	full := drain(t, cur2)
	fullPages := f.Stats().PageReads

	if len(pruned) != len(full) {
		t.Fatalf("pruning changed results: %d vs %d", len(pruned), len(full))
	}
	if prunedPages >= fullPages {
		t.Errorf("zone maps should prune clustered data: pruned=%d full=%d", prunedPages, fullPages)
	}
}

func TestConcurrentScansAndInserts(t *testing.T) {
	// Engine with the lock manager wired in: concurrent readers and writers
	// must stay consistent (no torn reads, counts only grow).
	dir := t.TempDir()
	path := filepath.Join(dir, "conc.rdnt")
	f, err := pager.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := wal.Open(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cat, _ := catalog.Load(f)
	e := NewEngine(f, cat, txn.NewManager(f, log))

	if err := e.Create("Traces", tracesSchema(), "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Traces", traceRows(500)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				cur, err := e.Scan("Traces", ScanOptions{})
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				for {
					_, ok, err := cur.Next()
					if err != nil {
						errCh <- err
						return
					}
					if !ok {
						break
					}
					n++
				}
				if n < 500 {
					errCh <- &countError{n}
					return
				}
			}
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := e.Insert("Traces", traceRows(20)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n, _ := e.RowCount("Traces"); n != 500+2*5*20 {
		t.Errorf("final count: %d", n)
	}
}

type countError struct{ n int }

func (e *countError) Error() string { return "scan saw fewer rows than loaded" }

func TestScanAfterSegmentCorruption(t *testing.T) {
	// Damage a data page on disk: scans must fail with a checksum error,
	// never return corrupt rows silently.
	path := ""
	{
		e, f, p := newEngine(t)
		path = p
		e.Create("Traces", tracesSchema(), "rows(Traces)")
		e.Load("Traces", traceRows(2000))
		f.Close()
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the data region.
	raw[len(raw)/2] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	f, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cat, err := catalog.Load(f)
	if err != nil {
		// Corruption may have landed in the catalog extent; also a pass.
		return
	}
	e := NewEngine(f, cat, nil)
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		return // failing at open is acceptable
	}
	for {
		_, ok, err := cur.Next()
		if err != nil {
			return // detected — good
		}
		if !ok {
			t.Fatal("scan over corrupted file completed without error")
		}
	}
}

func TestLimitLayout(t *testing.T) {
	e, _, _ := setup(t, "limit[100](orderby[lat](Traces))", 500)
	cur, _ := e.Scan("Traces", ScanOptions{})
	got := drain(t, cur)
	if len(got) != 100 {
		t.Fatalf("limit layout stored %d rows", len(got))
	}
	// The stored rows are the 100 smallest lats.
	for i := 1; i < len(got); i++ {
		if got[i][1].Float() < got[i-1][1].Float() {
			t.Fatal("limit layout lost ordering")
		}
	}
	// Insert into a limit layout is rejected.
	if err := e.Insert("Traces", traceRows(5)); err == nil {
		t.Error("insert into limit layout should fail")
	}
}

func TestUnfoldLayoutRoundtrip(t *testing.T) {
	e, _, _ := newEngine(t)
	schema := value.MustSchema(
		value.Field{Name: "area", Type: value.Int},
		value.Field{Name: "zip", Type: value.Int},
	)
	if err := e.Create("Areas", schema, "unfold(fold[zip; area](Areas))"); err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.NewInt(617), value.NewInt(2139)},
		{value.NewInt(212), value.NewInt(10001)},
		{value.NewInt(617), value.NewInt(2142)},
	}
	if err := e.Load("Areas", rows); err != nil {
		t.Fatal(err)
	}
	cur, _ := e.Scan("Areas", ScanOptions{})
	got := drain(t, cur)
	// unfold(fold(x)) = x regrouped: 3 flat rows, grouped by area.
	if len(got) != 3 {
		t.Fatalf("rows: %d", len(got))
	}
	if got[0][0].Int() != 617 || got[1][0].Int() != 617 || got[2][0].Int() != 212 {
		t.Errorf("group order: %v", got)
	}
}

func TestEmptyTableScans(t *testing.T) {
	e, _, _ := newEngine(t)
	e.Create("Traces", tracesSchema(), "rows(Traces)")
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, cur); len(got) != 0 {
		t.Errorf("empty table scan: %d rows", len(got))
	}
	if _, err := e.GetElement("Traces", nil, []int64{0}); err == nil {
		t.Error("getElement on empty table should fail")
	}
	est, err := e.EstimateScan("Traces", ScanOptions{})
	if err != nil || est.Pages != 0 {
		t.Errorf("empty estimate: %+v %v", est, err)
	}
}

func TestConcurrentScansTriggerLazyReorgOnce(t *testing.T) {
	// A pending lazy reorganization observed by many concurrent readers
	// must run exactly once (under the exclusive lock): shared-lock readers
	// reorganizing in place would each free the same old extents, and the
	// doubled free list would hand one extent to two tables.
	dir := t.TempDir()
	path := filepath.Join(dir, "lazy.rdnt")
	f, err := pager.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := wal.Open(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cat, _ := catalog.Load(f)
	e := NewEngine(f, cat, txn.NewManager(f, log))
	if err := e.Create("Traces", tracesSchema(), "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Traces", traceRows(800)); err != nil {
		t.Fatal(err)
	}
	if err := e.AlterLayout("Traces", "orderby[lat](Traces)", ReorgLazy); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, err := e.Scan("Traces", ScanOptions{})
			if err != nil {
				errCh <- err
				return
			}
			n := 0
			for {
				_, ok, err := cur.Next()
				if err != nil {
					errCh <- err
					return
				}
				if !ok {
					break
				}
				n++
			}
			if n != 800 {
				errCh <- &countError{n}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// A double free would let this load reuse the reorganized table's
	// pages; verify the original data survives a new table's allocation.
	if err := e.Create("Other", tracesSchema(), "rows(Other)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Other", traceRows(800)); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, e, "Traces"); got != 800 {
		t.Errorf("rows after concurrent lazy reorg + new load: %d, want 800", got)
	}
}

// durableEnv builds an engine with SyncInserts over real files, returning
// the pieces so a test can simulate a crash by closing them without a
// checkpoint.
func durableEnv(t *testing.T, path string) (*Engine, *pager.File, *wal.Log, *txn.Manager) {
	t.Helper()
	f, err := pager.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		f, err = pager.Create(path, 1024)
	}
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(f, log)
	e := NewEngine(f, cat, mgr)
	e.SyncInserts = true
	return e, f, log, mgr
}

func countRows(t *testing.T, e *Engine, name string) int {
	t.Helper()
	cur, err := e.Scan(name, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return len(drain(t, cur))
}

func TestDurableInsertCrashRecovery(t *testing.T) {
	// Durable inserts log tail pages plus a catalog tail-append delta; the
	// catalog itself is only updated in memory until a checkpoint. A crash
	// before any checkpoint must lose nothing: recovery replays the images
	// and rebuilds the catalog from the deltas.
	path := filepath.Join(t.TempDir(), "crash.rdnt")
	e, f, log, _ := durableEnv(t, path)
	if err := e.Create("Traces", tracesSchema(), "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Insert("Traces", traceRows(20)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: close the files with no checkpoint. The on-disk catalog still
	// has zero tails; only the WAL knows about the inserts.
	log.Close()
	f.Close()

	e2, f2, log2, mgr2 := durableEnv(t, path)
	n, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("recovered %d txns, want 3", n)
	}
	if got := countRows(t, e2, "Traces"); got != 60 {
		t.Errorf("rows after recovery: %d, want 60", got)
	}
	if rc, _ := e2.RowCount("Traces"); rc != 60 {
		t.Errorf("RowCount after recovery: %d, want 60", rc)
	}
	// Recovery flushed the rebuilt catalog before truncating the log, so a
	// further reopen (now with an empty log) still sees the rows.
	log2.Close()
	f2.Close()
	e3, f3, log3, mgr3 := durableEnv(t, path)
	defer func() { log3.Close(); f3.Close() }()
	if n, err := mgr3.Recover(); err != nil || n != 0 {
		t.Fatalf("second recovery: n=%d err=%v", n, err)
	}
	if got := countRows(t, e3, "Traces"); got != 60 {
		t.Errorf("rows after clean reopen: %d, want 60", got)
	}
}

func TestConcurrentDurableInsertsWithCheckpoints(t *testing.T) {
	// Durable inserts update the catalog in memory; the checkpoint policy
	// flushes it from whatever goroutine trips the size trigger — racing
	// the copy-on-write publish path. Run under -race this guards the
	// record-swap discipline (catalog.Catalog.Get).
	path := filepath.Join(t.TempDir(), "ckpt.rdnt")
	e, f, log, mgr := durableEnv(t, path)
	defer func() { log.Close(); f.Close() }()
	mgr.CheckpointBytes = 8 << 10 // tiny: checkpoints fire throughout the run
	mgr.LockTimeout = 30 * time.Second
	if err := e.Create("Traces", tracesSchema(), "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	const writers, rounds, batch = 4, 25, 10
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := e.Insert("Traces", traceRows(batch)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := int64(writers * rounds * batch)
	if rc, _ := e.RowCount("Traces"); rc != want {
		t.Errorf("RowCount: %d, want %d", rc, want)
	}
	if got := countRows(t, e, "Traces"); int64(got) != want {
		t.Errorf("scanned rows: %d, want %d", got, want)
	}
}

func TestDurableInsertDeltaReplayIdempotent(t *testing.T) {
	// A DDL between durable inserts and a crash flushes the full catalog —
	// tails included — while the deltas are still in the WAL. Recovery
	// re-applies them; the extent-identity check must skip batches the
	// flush already captured, or rows would duplicate.
	path := filepath.Join(t.TempDir(), "dup.rdnt")
	e, f, log, _ := durableEnv(t, path)
	if err := e.Create("Traces", tracesSchema(), "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Insert("Traces", traceRows(20)); err != nil {
			t.Fatal(err)
		}
	}
	// Create flushes the whole catalog (buffered tails included); the WAL
	// still holds the three deltas.
	if err := e.Create("Other", tracesSchema(), "rows(Other)"); err != nil {
		t.Fatal(err)
	}
	log.Close()
	f.Close()

	e2, f2, log2, mgr2 := durableEnv(t, path)
	defer func() { log2.Close(); f2.Close() }()
	if _, err := mgr2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, e2, "Traces"); got != 60 {
		t.Errorf("rows after recovery: %d, want 60 (deltas must not re-apply)", got)
	}
	if rc, _ := e2.RowCount("Traces"); rc != 60 {
		t.Errorf("RowCount after recovery: %d, want 60", rc)
	}
}

func TestLoadEmptyThenInsert(t *testing.T) {
	e, _, _ := newEngine(t)
	e.Create("Traces", tracesSchema(), "orderby[t](Traces)")
	if err := e.Load("Traces", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("Traces", traceRows(10)); err != nil {
		t.Fatal(err)
	}
	cur, _ := e.Scan("Traces", ScanOptions{})
	if got := drain(t, cur); len(got) != 10 {
		t.Errorf("rows: %d", len(got))
	}
}
