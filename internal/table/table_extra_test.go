package table

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/wal"
)

func TestThreeDimensionalGrid(t *testing.T) {
	e, _, _ := newEngine(t)
	schema := value.MustSchema(
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
		value.Field{Name: "z", Type: value.Float},
	)
	if err := e.Create("Cube", schema, "zorder(grid[x,y,z; 4,4,4](Cube))"); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	rows := make([]value.Row, 2000)
	for i := range rows {
		rows[i] = value.Row{
			value.NewFloat(r.Float64()),
			value.NewFloat(r.Float64()),
			value.NewFloat(r.Float64()),
		}
	}
	if err := e.Load("Cube", rows); err != nil {
		t.Fatal(err)
	}
	// Full scan returns everything.
	cur, _ := e.Scan("Cube", ScanOptions{})
	if got := drain(t, cur); len(got) != 2000 {
		t.Fatalf("3D scan rows: %d", len(got))
	}
	// An octant query returns exactly the brute-force result.
	pred, _ := algebra.ParsePredicate("x < 0.5 and y < 0.5 and z < 0.5")
	cur2, err := e.Scan("Cube", ScanOptions{Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur2)
	want := 0
	for _, row := range rows {
		if row[0].Float() < 0.5 && row[1].Float() < 0.5 && row[2].Float() < 0.5 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("octant query: got %d want %d", len(got), want)
	}
	// 3-D cell addressing via GetElement.
	cur3, err := e.GetElement("Cube", nil, []int64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r0, ok, _ := cur3.Next(); !ok || r0[0].Float() >= 0.5 {
		t.Errorf("cell (0,0,0) row: %v ok=%v", r0, ok)
	}
}

func TestNoZonePruneReadsEverything(t *testing.T) {
	e, f, _ := setup(t, "chunk[64](groupby[id](orderby[t](Traces)))", 3000)
	pred, _ := algebra.ParsePredicate("lat >= 42.3599 and lat < 42.3601")

	f.ResetStats()
	cur, _ := e.Scan("Traces", ScanOptions{Pred: pred})
	pruned := drain(t, cur)
	prunedPages := f.Stats().PageReads

	f.ResetStats()
	cur2, _ := e.Scan("Traces", ScanOptions{Pred: pred, NoZonePrune: true})
	full := drain(t, cur2)
	fullPages := f.Stats().PageReads

	if len(pruned) != len(full) {
		t.Fatalf("pruning changed results: %d vs %d", len(pruned), len(full))
	}
	if prunedPages >= fullPages {
		t.Errorf("zone maps should prune clustered data: pruned=%d full=%d", prunedPages, fullPages)
	}
}

func TestConcurrentScansAndInserts(t *testing.T) {
	// Engine with the lock manager wired in: concurrent readers and writers
	// must stay consistent (no torn reads, counts only grow).
	dir := t.TempDir()
	path := filepath.Join(dir, "conc.rdnt")
	f, err := pager.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := wal.Open(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cat, _ := catalog.Load(f)
	e := NewEngine(f, cat, txn.NewManager(f, log))

	if err := e.Create("Traces", tracesSchema(), "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Traces", traceRows(500)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				cur, err := e.Scan("Traces", ScanOptions{})
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				for {
					_, ok, err := cur.Next()
					if err != nil {
						errCh <- err
						return
					}
					if !ok {
						break
					}
					n++
				}
				if n < 500 {
					errCh <- &countError{n}
					return
				}
			}
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := e.Insert("Traces", traceRows(20)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n, _ := e.RowCount("Traces"); n != 500+2*5*20 {
		t.Errorf("final count: %d", n)
	}
}

type countError struct{ n int }

func (e *countError) Error() string { return "scan saw fewer rows than loaded" }

func TestScanAfterSegmentCorruption(t *testing.T) {
	// Damage a data page on disk: scans must fail with a checksum error,
	// never return corrupt rows silently.
	path := ""
	{
		e, f, p := newEngine(t)
		path = p
		e.Create("Traces", tracesSchema(), "rows(Traces)")
		e.Load("Traces", traceRows(2000))
		f.Close()
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the data region.
	raw[len(raw)/2] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	f, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cat, err := catalog.Load(f)
	if err != nil {
		// Corruption may have landed in the catalog extent; also a pass.
		return
	}
	e := NewEngine(f, cat, nil)
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		return // failing at open is acceptable
	}
	for {
		_, ok, err := cur.Next()
		if err != nil {
			return // detected — good
		}
		if !ok {
			t.Fatal("scan over corrupted file completed without error")
		}
	}
}

func TestLimitLayout(t *testing.T) {
	e, _, _ := setup(t, "limit[100](orderby[lat](Traces))", 500)
	cur, _ := e.Scan("Traces", ScanOptions{})
	got := drain(t, cur)
	if len(got) != 100 {
		t.Fatalf("limit layout stored %d rows", len(got))
	}
	// The stored rows are the 100 smallest lats.
	for i := 1; i < len(got); i++ {
		if got[i][1].Float() < got[i-1][1].Float() {
			t.Fatal("limit layout lost ordering")
		}
	}
	// Insert into a limit layout is rejected.
	if err := e.Insert("Traces", traceRows(5)); err == nil {
		t.Error("insert into limit layout should fail")
	}
}

func TestUnfoldLayoutRoundtrip(t *testing.T) {
	e, _, _ := newEngine(t)
	schema := value.MustSchema(
		value.Field{Name: "area", Type: value.Int},
		value.Field{Name: "zip", Type: value.Int},
	)
	if err := e.Create("Areas", schema, "unfold(fold[zip; area](Areas))"); err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.NewInt(617), value.NewInt(2139)},
		{value.NewInt(212), value.NewInt(10001)},
		{value.NewInt(617), value.NewInt(2142)},
	}
	if err := e.Load("Areas", rows); err != nil {
		t.Fatal(err)
	}
	cur, _ := e.Scan("Areas", ScanOptions{})
	got := drain(t, cur)
	// unfold(fold(x)) = x regrouped: 3 flat rows, grouped by area.
	if len(got) != 3 {
		t.Fatalf("rows: %d", len(got))
	}
	if got[0][0].Int() != 617 || got[1][0].Int() != 617 || got[2][0].Int() != 212 {
		t.Errorf("group order: %v", got)
	}
}

func TestEmptyTableScans(t *testing.T) {
	e, _, _ := newEngine(t)
	e.Create("Traces", tracesSchema(), "rows(Traces)")
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, cur); len(got) != 0 {
		t.Errorf("empty table scan: %d rows", len(got))
	}
	if _, err := e.GetElement("Traces", nil, []int64{0}); err == nil {
		t.Error("getElement on empty table should fail")
	}
	est, err := e.EstimateScan("Traces", ScanOptions{})
	if err != nil || est.Pages != 0 {
		t.Errorf("empty estimate: %+v %v", est, err)
	}
}

func TestLoadEmptyThenInsert(t *testing.T) {
	e, _, _ := newEngine(t)
	e.Create("Traces", tracesSchema(), "orderby[t](Traces)")
	if err := e.Load("Traces", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("Traces", traceRows(10)); err != nil {
		t.Fatal(err)
	}
	cur, _ := e.Scan("Traces", ScanOptions{})
	if got := drain(t, cur); len(got) != 10 {
		t.Errorf("rows: %d", len(got))
	}
}
