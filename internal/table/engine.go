// Package table is RodentStore's storage backend (paper §2, §4): it renders
// compiled layout plans into segments on disk and serves the access-method
// API of §4.1 — scan with optional projection/predicate/order, positional
// and multidimensional getElement, cost estimation, and order_list.
//
// A table's stored form is a set of aligned vertical partitions (segments)
// over the final row stream produced by the layout pipeline. Newly inserted
// rows accumulate as unorganized tail batches ("reorganize only new data",
// paper §5); Reorganize folds them into the main layout, eagerly or lazily
// on next access.
package table

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/layout"
	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/transforms"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/zorder"
)

// FoldStrategy selects the fold rendering algorithm of §4.2.
type FoldStrategy string

// Fold rendering strategies.
const (
	// FoldHash is the hash-join-like rendering (default).
	FoldHash FoldStrategy = "hash"
	// FoldNestedLoop is the paper's Algorithm 1 (two nested for loops).
	FoldNestedLoop FoldStrategy = "nestedloop"
)

// ReorgMode selects when a layout change is applied (paper §5).
type ReorgMode string

// Reorganization modes.
const (
	// ReorgEager rewrites every object immediately.
	ReorgEager ReorgMode = "eager"
	// ReorgLazy marks the table and rewrites on next access.
	ReorgLazy ReorgMode = "lazy"
)

// Engine is the storage backend over one page file.
type Engine struct {
	file  *pager.File
	cat   *catalog.Catalog
	locks *txn.Manager
	// Source is where readers fetch pages: the pager itself (cold, exact
	// page counts) or a buffer.Pool wrapped around it (warm).
	Source segment.PageSource
	// Fold selects the fold rendering strategy.
	Fold FoldStrategy
	// SyncInserts makes Insert durable: the tail's rendered pages are
	// WAL-logged as images together with a catalog tail-append delta, and
	// Insert returns only after the (group-committed) fsync. The catalog is
	// updated in memory only; recovery replays the images and rebuilds the
	// catalog from the deltas, so an acknowledged insert survives a crash
	// without the publish phase ever rewriting the whole catalog. Requires
	// a lock manager; ignored without one.
	SyncInserts bool

	mu    sync.Mutex
	specs map[string]*layout.Spec // compile cache keyed by expr text

	// snapMu guards insertSnaps, the per-table cache of the layout/schema
	// snapshot Insert's prepare phase runs against. A hit skips the
	// shared-lock round and schema rebuild per insert; staleness is caught
	// by publish-time revalidation (the entry is dropped and the insert
	// retried).
	snapMu      sync.Mutex
	insertSnaps map[string]insertSnapshot

	// merge is the background tail-merge worker (nil until EnableAutoMerge).
	mergeMu sync.Mutex
	merge   *merger

	// freeMu guards the deferred-free queue. In durable (SyncInserts) mode,
	// extents a catalog update stopped referencing are not freed inline:
	// until the update is durable, a crash rolls the catalog back to a
	// version that still references them, and a reallocated extent rewritten
	// by WAL replay would corrupt that old catalog's data. Queued extents
	// are staged when a checkpoint begins and freed once it has synced the
	// file and truncated the log (the AfterCheckpoint hook), so the worst
	// crash outcome is a leaked extent.
	freeMu        sync.Mutex
	deferredFrees []pager.Extent // queued, awaiting a checkpoint
	stagedFrees   []pager.Extent // covered by the in-progress checkpoint

	// Fold counters for leveled-storage tables (see compact.go; Ext-15
	// reports them as per-merge write amplification).
	statMerges     atomic.Int64
	statMergeRows  atomic.Int64
	statMergeBytes atomic.Int64
}

// NewEngine creates an engine over an open page file and catalog. lockMgr
// may be nil to disable table-level locking (single-threaded use). With a
// lock manager, the engine hooks the catalog into its checkpoint/recovery
// protocol: buffered catalog updates flush before every checkpoint, and
// WAL catalog deltas (durable tail appends) replay during recovery — so
// create the engine before calling the manager's Recover.
func NewEngine(file *pager.File, cat *catalog.Catalog, lockMgr *txn.Manager) *Engine {
	e := &Engine{
		file:        file,
		cat:         cat,
		locks:       lockMgr,
		Source:      file,
		Fold:        FoldHash,
		specs:       make(map[string]*layout.Spec),
		insertSnaps: make(map[string]insertSnapshot),
	}
	if lockMgr != nil {
		// Stage the deferred-free queue before the catalog flush: everything
		// queued by then had its catalog update already written, so this
		// checkpoint's file sync makes those updates durable and the staged
		// extents safe to free afterwards. Extents queued mid-checkpoint wait
		// for the next one.
		lockMgr.BeforeCheckpoint = func() error {
			e.freeMu.Lock()
			e.stagedFrees = append(e.stagedFrees, e.deferredFrees...)
			e.deferredFrees = nil
			e.freeMu.Unlock()
			return cat.Flush()
		}
		lockMgr.AfterCheckpoint = e.freeStaged
		lockMgr.OnRecoverCatalog = cat.ApplyTailAppend
		cat.DeferFree = e.deferFree
	}
	return e
}

// deferFree queues an extent to be freed by the next checkpoint when the
// engine runs durably; without durability there is no WAL replay to guard
// against, so it reports false and the caller frees inline.
func (e *Engine) deferFree(ext pager.Extent) bool {
	if !e.SyncInserts || e.locks == nil || ext.Count == 0 {
		return false
	}
	e.freeMu.Lock()
	e.deferredFrees = append(e.deferredFrees, ext)
	e.freeMu.Unlock()
	return true
}

// freeStaged releases the extents staged by the checkpoint that just made
// their catalog un-references durable (the Manager's AfterCheckpoint hook).
func (e *Engine) freeStaged() error {
	e.freeMu.Lock()
	staged := e.stagedFrees
	e.stagedFrees = nil
	e.freeMu.Unlock()
	for i, ext := range staged {
		if err := e.file.FreeRun(ext.Start, ext.Count); err != nil {
			// Re-queue what remains: freeing is retried by the next
			// checkpoint; losing track of it would leak the pages for good.
			e.freeMu.Lock()
			e.stagedFrees = append(e.stagedFrees, staged[i:]...)
			e.freeMu.Unlock()
			return err
		}
	}
	return nil
}

// freeSegment frees one segment's extent — deferred to the next checkpoint
// in durable mode, inline otherwise.
func (e *Engine) freeSegment(meta segment.Meta) error {
	if meta.ExtentPages == 0 {
		return nil
	}
	if e.deferFree(pager.Extent{Start: meta.ExtentStart, Count: meta.ExtentPages}) {
		return nil
	}
	return segment.Free(e.file, meta)
}

// checkpointAfterFlip runs right after a catalog update that unreferenced
// extents (reorganize, drop) in durable mode: the checkpoint makes the new
// catalog durable and drains the deferred frees it queued. Without it the
// extents would stay unavailable until the next policy checkpoint — a delay,
// never a leak.
func (e *Engine) checkpointAfterFlip() error {
	if !e.SyncInserts || e.locks == nil {
		return nil
	}
	return e.locks.Checkpoint()
}

// withLock takes a table-level lock around fn.
func (e *Engine) withLock(name string, mode txn.LockMode, fn func() error) error {
	if e.locks == nil {
		return fn()
	}
	t := e.locks.Begin()
	if err := t.Lock(name, mode); err != nil {
		t.Abort()
		return err
	}
	defer t.Abort() // strict 2PL release; fn writes through the pager directly
	return fn()
}

// compile resolves a layout expression against the current catalog schemas,
// with caching.
func (e *Engine) compile(exprText string) (*layout.Spec, error) {
	e.mu.Lock()
	if spec, ok := e.specs[exprText]; ok {
		e.mu.Unlock()
		return spec, nil
	}
	e.mu.Unlock()
	expr, err := algebra.Parse(exprText)
	if err != nil {
		return nil, err
	}
	schemas, err := e.cat.Schemas()
	if err != nil {
		return nil, err
	}
	spec, err := layout.Compile(expr, schemas)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.specs[exprText] = spec
	e.mu.Unlock()
	return spec, nil
}

// invalidateSpecCache drops cached plans (schemas changed).
func (e *Engine) invalidateSpecCache() {
	e.mu.Lock()
	e.specs = make(map[string]*layout.Spec)
	e.mu.Unlock()
	e.dropInsertSnap("")
}

// dropInsertSnap forgets the cached insert snapshot of one table ("" for
// all).
func (e *Engine) dropInsertSnap(name string) {
	e.snapMu.Lock()
	if name == "" {
		e.insertSnaps = make(map[string]insertSnapshot)
	} else {
		delete(e.insertSnaps, name)
	}
	e.snapMu.Unlock()
}

// Create registers a table with its logical schema and layout expression.
// Nothing is rendered until Load.
func (e *Engine) Create(name string, schema *value.Schema, layoutExpr string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		if e.cat.Has(name) {
			return fmt.Errorf("table: %q already exists", name)
		}
		// Validate the layout against a catalog view that includes the new
		// table.
		schemas, err := e.cat.Schemas()
		if err != nil {
			return err
		}
		schemas[name] = schema
		expr, err := algebra.Parse(layoutExpr)
		if err != nil {
			return err
		}
		spec, err := layout.Compile(expr, schemas)
		if err != nil {
			return err
		}
		if spec.Table != name {
			return fmt.Errorf("table: layout %q is for table %q, not %q", layoutExpr, spec.Table, name)
		}
		e.invalidateSpecCache()
		return e.cat.Put(&catalog.Table{
			Name:       name,
			Fields:     catalog.FieldsOf(schema),
			LayoutExpr: expr.String(),
		})
	})
}

// Drop removes a table and frees its extents.
func (e *Engine) Drop(name string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if err := e.checkpointBeforeFree(); err != nil {
			return err
		}
		if err := e.freeAll(tab); err != nil {
			return err
		}
		e.invalidateSpecCache()
		if err := e.cat.Delete(name); err != nil {
			return err
		}
		return e.checkpointAfterFlip()
	})
}

// checkpointBeforeFree forces a WAL checkpoint before extents are freed
// when durable inserts are on: freed extents can be reallocated and
// rewritten outside the log, and a stale tail image left in the log would
// be replayed over the new content after a crash. A checkpoint makes the
// applied pages durable and empties the log, closing the window.
func (e *Engine) checkpointBeforeFree() error {
	if !e.SyncInserts || e.locks == nil {
		return nil
	}
	// CheckpointBarrier, not Checkpoint: an insert that published before we
	// took this table's lock may not have logged its images yet; the
	// barrier makes its LogAppliedSince fall back to a checkpoint instead
	// of logging images of extents we are about to free.
	return e.locks.CheckpointBarrier()
}

// freeAll frees (or defers, in durable mode) every extent of a table
// snapshot.
func (e *Engine) freeAll(tab *catalog.Table) error {
	for _, s := range tab.Segments {
		if err := e.freeSegment(s.Meta); err != nil {
			return err
		}
	}
	for _, run := range tab.Runs {
		for _, s := range run.Segments {
			if err := e.freeSegment(s.Meta); err != nil {
				return err
			}
		}
	}
	for _, batch := range tab.Tails {
		for _, s := range batch {
			if err := e.freeSegment(s.Meta); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load bulk-loads rows into an empty table, rendering the layout. Rows must
// match the logical schema. Use Insert to add data afterwards.
func (e *Engine) Load(name string, rows []value.Row) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if tab.RowCount > 0 {
			return fmt.Errorf("table: %q already loaded (%d rows); use Insert or Reorganize", name, tab.RowCount)
		}
		schema, err := tab.Schema()
		if err != nil {
			return err
		}
		for i, r := range rows {
			if err := schema.Validate(r); err != nil {
				return fmt.Errorf("table: row %d: %w", i, err)
			}
		}
		// Render into a private copy; Put swaps it in atomically so a
		// concurrent checkpoint flush never encodes a half-rendered table.
		work := *tab
		return e.render(&work, schema, rows)
	})
}

// insertRetries bounds optimistic staged-insert attempts before falling
// back to preparing under the exclusive lock (only a concurrent AlterLayout
// racing every attempt can exhaust them).
const insertRetries = 4

// Insert appends rows as an unorganized tail batch. The main layout is not
// touched (the "reorganize only new data" strategy of §5); call Reorganize
// to merge, or EnableAutoMerge to have tails folded in the background.
//
// Insert is staged: validation, the per-row pipeline steps and the segment
// block encoding all run with no table lock held (concurrent inserters to
// the same table overlap this work); only the publish phase — extent
// allocation, page writes, tail append and catalog put — runs under a short
// exclusive lock. If the table's layout changes between the two phases the
// stage is thrown away and re-prepared.
//
// With SyncInserts, durability also stays off the lock: the published tail
// pages and the catalog tail-append delta are logged to the WAL and fsync'd
// (group commit) after the lock is released, so concurrent inserters'
// fsyncs coalesce. Insert then returns only once the batch is redo-durable.
// Because deltas are logged after the lock drops, two batches published in
// one order can commit in the other; recovery then rebuilds the tails in
// commit order — a permutation of unorganized batches, never a loss.
func (e *Engine) Insert(name string, rows []value.Row) error {
	if len(rows) == 0 {
		return nil
	}
	for attempt := 0; ; attempt++ {
		exclusive := attempt >= insertRetries // guaranteed-progress fallback
		pub, err := e.insertOnce(name, rows, exclusive)
		if err != nil {
			return err
		}
		if pub.ok {
			if len(pub.images) > 0 || len(pub.delta) > 0 {
				if err := e.locks.LogAppliedSince(pub.barrier, pub.images, pub.delta); err != nil {
					return err
				}
			}
			e.maybeAutoMerge(name, pub.mergeNeeded)
			return nil
		}
		e.dropInsertSnap(name) // layout moved; re-snapshot on retry
	}
}

// insertSnapshot is the catalog state a staged insert was prepared against.
type insertSnapshot struct {
	layoutExpr string
	schema     *value.Schema
}

// stagedTail is a fully encoded tail batch, ready to publish.
type stagedTail struct {
	writers []*segment.Writer
	defs    []layout.SegmentDef
	rows    int64
}

// published is the outcome of one publish phase: whether it installed the
// tail (ok=false means the layout moved and the caller must re-prepare),
// whether the merge policy fired, and — in SyncInserts mode — the page
// images, catalog delta and free-barrier value for LogAppliedSince.
type published struct {
	ok          bool
	mergeNeeded bool
	images      []txn.PageImage
	delta       []byte
	barrier     uint64
}

// insertOnce runs one prepare/publish round. With exclusivePrepare the
// whole round holds the exclusive table lock (the snapshot cannot go stale);
// otherwise prepare runs lock-free and publish revalidates the layout,
// returning ok=false when it moved. In SyncInserts mode the published page
// images and the catalog tail-append delta come back to the caller, to be
// logged after the lock is released.
func (e *Engine) insertOnce(name string, rows []value.Row, exclusivePrepare bool) (pub published, err error) {
	if exclusivePrepare {
		err = e.withLock(name, txn.Exclusive, func() error {
			tab, err := e.cat.Get(name)
			if err != nil {
				return err
			}
			schema, err := tab.Schema()
			if err != nil {
				return err
			}
			snap := insertSnapshot{layoutExpr: tab.LayoutExpr, schema: schema}
			st, err := e.prepareTail(snap, rows)
			if err != nil {
				return err
			}
			pub, err = e.publishTail(name, snap.layoutExpr, st, false)
			return err
		})
		return pub, err
	}

	snap, err := e.snapshotForInsert(name)
	if err != nil {
		return published{}, err
	}
	st, err := e.prepareTail(snap, rows)
	if err != nil {
		return published{}, err
	}
	err = e.withLock(name, txn.Exclusive, func() error {
		pub, err = e.publishTail(name, snap.layoutExpr, st, true)
		return err
	})
	return pub, err
}

// snapshotForInsert returns the table's layout and schema for the prepare
// phase: from the per-table cache when possible, else read under a brief
// shared lock (concurrent inserters snapshot in parallel). A stale cached
// snapshot is harmless — publish revalidates the layout and the insert
// retries after dropping the entry.
func (e *Engine) snapshotForInsert(name string) (insertSnapshot, error) {
	e.snapMu.Lock()
	snap, hit := e.insertSnaps[name]
	e.snapMu.Unlock()
	if hit {
		return snap, nil
	}
	err := e.withLock(name, txn.Shared, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		schema, err := tab.Schema()
		if err != nil {
			return err
		}
		snap = insertSnapshot{layoutExpr: tab.LayoutExpr, schema: schema}
		return nil
	})
	if err != nil {
		return snap, err
	}
	e.snapMu.Lock()
	e.insertSnaps[name] = snap
	e.snapMu.Unlock()
	return snap, nil
}

// prepareTail validates rows, runs the per-row pipeline steps (project,
// select — tails stay unorganized, see applySteps) and encodes the tail's
// segment blocks into memory. No locks held, no page I/O.
func (e *Engine) prepareTail(snap insertSnapshot, rows []value.Row) (*stagedTail, error) {
	for i, r := range rows {
		if err := snap.schema.Validate(r); err != nil {
			return nil, fmt.Errorf("table: row %d: %w", i, err)
		}
	}
	spec, err := e.compile(snap.layoutExpr)
	if err != nil {
		return nil, err
	}
	rel := transforms.Relation{Schema: snap.schema, Rows: rows}
	rel, err = e.applySteps(rel, spec, true)
	if err != nil {
		return nil, err
	}
	st := &stagedTail{rows: int64(len(rel.Rows))}
	for _, def := range spec.Segments {
		w, err := e.stageSegment(rel, def, spec.RowsPerBlock, nil)
		if err != nil {
			return nil, err
		}
		st.writers = append(st.writers, w)
		st.defs = append(st.defs, def)
	}
	return st, nil
}

// publishTail installs a staged tail batch: allocate extents, write the
// rendered pages in place, append the tail entry and bump the catalog. The
// caller holds the exclusive table lock. With revalidate, a layout mismatch
// against the prepare-time snapshot returns ok=false so the caller can
// re-prepare. Tail-only appends do not shift positions in the main
// rendering, so secondary indexes survive (IndexScan post-scans the
// unindexed suffix).
//
// In SyncInserts mode the written pages are also returned as WAL images,
// with a catalog tail-append delta (catalog.EncodeTailAppend); the caller
// logs and fsyncs both once the lock is dropped, keeping the durability
// wait off the table's critical section. The catalog itself is only updated
// in memory (PutBuffered) — rewriting the whole catalog per insert is
// O(catalog size) of serialized work, while the logged delta is O(batch)
// and replays on recovery. The image payloads alias the staged writers'
// buffers, which st keeps alive.
func (e *Engine) publishTail(name, layoutExpr string, st *stagedTail, revalidate bool) (pub published, err error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return published{}, err
	}
	if revalidate && tab.LayoutExpr != layoutExpr {
		return published{}, nil // layout moved between prepare and publish
	}
	durable := e.SyncInserts && e.locks != nil
	batch := make([]catalog.SegmentEntry, 0, len(st.writers))
	for i, w := range st.writers {
		var meta segment.Meta
		var err error
		if durable {
			var chunks [][]byte
			meta, chunks, err = w.FinishChunks()
			if err == nil {
				err = e.file.WriteRun(meta.ExtentStart, w.Buf())
				for j, chunk := range chunks {
					pub.images = append(pub.images, txn.PageImage{
						ID: meta.ExtentStart + pager.PageID(j), Payload: chunk,
					})
				}
			}
		} else {
			meta, err = w.Finish()
		}
		if err != nil {
			return published{}, err
		}
		batch = append(batch, catalog.SegmentEntry{
			Fields: st.defs[i].Fields, Codecs: st.defs[i].Codecs, Meta: meta,
		})
	}
	// Copy-on-write: the append builds a new record and Put/PutBuffered
	// swaps it in under the catalog lock, so a concurrent checkpoint flush
	// never encodes a half-applied append. Appending to the copied slice
	// only ever writes past the shared prefix's length, which readers of
	// the old record never reach.
	work := *tab
	work.Tails = append(work.Tails, batch)
	work.RowCount += st.rows
	var tailRows int64
	for _, b := range work.Tails {
		if len(b) > 0 {
			tailRows += b[0].Meta.Rows
		}
	}
	if comp := e.compactionOf(work.LayoutExpr); comp != nil {
		// Leveled-storage tables trigger their level-0 fold from the
		// policy's fanout, not the generic tail-count policy.
		pub.mergeNeeded = e.mergeActive() && len(work.Tails) >= comp.Fanout
	} else {
		pub.mergeNeeded = e.mergeTrigger(len(work.Tails), tailRows)
	}
	if durable {
		pub.delta = catalog.EncodeTailAppend(name, batch, st.rows)
		e.cat.PutBuffered(&work)
		// Captured under the table lock: any checkpointBeforeFree that
		// could free this batch's extents must take this lock first, so it
		// is ordered strictly after this read and bumps the barrier.
		pub.barrier = e.locks.Barrier()
	} else if err := e.cat.Put(&work); err != nil {
		return published{}, err
	}
	pub.ok = true
	return pub, nil
}

// AlterLayout changes the table's layout expression. ReorgEager re-renders
// immediately; ReorgLazy defers to the next access (paper §5).
func (e *Engine) AlterLayout(name, layoutExpr string, mode ReorgMode) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		expr, err := algebra.Parse(layoutExpr)
		if err != nil {
			return err
		}
		schemas, err := e.cat.Schemas()
		if err != nil {
			return err
		}
		spec, err := layout.Compile(expr, schemas)
		if err != nil {
			return err
		}
		if spec.Table != name {
			return fmt.Errorf("table: layout %q is for table %q, not %q", layoutExpr, spec.Table, name)
		}
		work := *tab // copy-on-write; Put swaps the finished record in
		switch mode {
		case ReorgEager:
			work.LayoutExpr = expr.String()
			work.NeedsReorg = false
			work.PendingExpr = ""
			if err := e.cat.Put(&work); err != nil {
				return err
			}
			return e.reorganizeLocked(&work)
		case ReorgLazy:
			work.PendingExpr = expr.String()
			work.NeedsReorg = true
			return e.cat.Put(&work)
		default:
			return fmt.Errorf("table: unknown reorg mode %q", mode)
		}
	})
}

// Reorganize re-renders the table under its current (or pending) layout,
// merging tail batches into the main segments.
func (e *Engine) Reorganize(name string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		return e.reorganizeLocked(tab)
	})
}

// reorganizeLocked re-renders tab. Caller holds the table lock.
func (e *Engine) reorganizeLocked(tab *catalog.Table) error {
	e.dropInsertSnap(tab.Name) // the layout (pending expr) may flip below
	// Work on a private copy: the shared record — which a concurrent
	// checkpoint may flush to disk at any point — must never pair the new
	// layout with the old segments. The render's Put swaps the finished
	// copy in atomically.
	work := *tab
	tab = &work
	schema, err := tab.Schema()
	if err != nil {
		return err
	}
	if tab.NeedsReorg && tab.PendingExpr != "" {
		tab.LayoutExpr = tab.PendingExpr
		tab.PendingExpr = ""
	}
	tab.NeedsReorg = false
	// Read everything back in logical (base schema) form. Reorganization
	// requires the stored representation to retain the full logical schema;
	// projected layouts reorganize over their final schema instead.
	rows, readSchema, err := e.readAllRows(tab)
	if err != nil {
		return err
	}
	if err := e.checkpointBeforeFree(); err != nil {
		return err
	}
	old := *tab // snapshot for extent freeing after render
	if readSchema.String() != schema.String() {
		// The stored form dropped attributes (e.g. project[lat,lon]); the
		// new layout is compiled against what is actually stored.
		return e.renderNarrowed(tab, readSchema, rows, &old)
	}
	if err := e.render(tab, schema, rows); err != nil {
		return err
	}
	if err := e.freeAll(&old); err != nil {
		return err
	}
	e.noteFullMerge(&old, tab)
	return e.checkpointAfterFlip()
}

// noteFullMerge counts a full re-render as a fold when it had tails or runs
// to absorb, so CompactStats reports the O(table) rewrite cost the plain
// path pays for the same merge schedule a compaction policy handles
// incrementally (what Ext-15 compares).
func (e *Engine) noteFullMerge(old, now *catalog.Table) {
	if len(old.Tails) == 0 && len(old.Runs) == 0 {
		return
	}
	var bytes uint64
	for _, s := range now.Segments {
		bytes += s.Meta.UsedBytes
	}
	e.statMerges.Add(1)
	e.statMergeRows.Add(now.RowCount)
	e.statMergeBytes.Add(int64(bytes))
}

// renderNarrowed handles reorganization of layouts whose stored schema is a
// projection of the logical one: the pipeline runs against the stored
// schema, so steps referencing dropped fields fail with a clear error.
func (e *Engine) renderNarrowed(tab *catalog.Table, stored *value.Schema, rows []value.Row, old *catalog.Table) error {
	spec, err := e.compileAgainst(tab.LayoutExpr, tab.Name, stored)
	if err != nil {
		return fmt.Errorf("table: reorganize %q: layout needs attributes the stored form dropped: %w", tab.Name, err)
	}
	if err := e.renderWithSpec(tab, stored, rows, spec); err != nil {
		return err
	}
	if err := e.freeAll(old); err != nil {
		return err
	}
	e.noteFullMerge(old, tab)
	return e.checkpointAfterFlip()
}

// compileAgainst compiles exprText treating `name` as having the given
// schema (bypassing the catalog's logical schema).
func (e *Engine) compileAgainst(exprText, name string, schema *value.Schema) (*layout.Spec, error) {
	expr, err := algebra.Parse(exprText)
	if err != nil {
		return nil, err
	}
	schemas, err := e.cat.Schemas()
	if err != nil {
		return nil, err
	}
	schemas[name] = schema
	return layout.Compile(expr, schemas)
}

// render compiles the table's layout and materializes rows into segments,
// replacing the catalog entry. It does NOT free old extents (callers that
// re-render must snapshot and free).
func (e *Engine) render(tab *catalog.Table, schema *value.Schema, rows []value.Row) error {
	spec, err := e.compile(tab.LayoutExpr)
	if err != nil {
		return err
	}
	return e.renderWithSpec(tab, schema, rows, spec)
}

func (e *Engine) renderWithSpec(tab *catalog.Table, schema *value.Schema, rows []value.Row, spec *layout.Spec) error {
	rel := transforms.Relation{Schema: schema, Rows: rows}
	rel, err := e.applySteps(rel, spec, false)
	if err != nil {
		return err
	}

	var bounds []transforms.GridBounds
	var ordered []cellRun
	if spec.Grid != nil {
		bounds, err = transforms.ComputeGridBounds(rel, spec.Grid.Dims)
		if err != nil {
			return err
		}
		cells, err := transforms.GridAssign(rel, bounds)
		if err != nil {
			return err
		}
		ordered, err = orderCells(cells, bounds, spec.Grid.Curve)
		if err != nil {
			return err
		}
	} else {
		ordered = []cellRun{{cell: segment.NoCell, rows: rel.Rows}}
	}

	var entries []catalog.SegmentEntry
	for _, def := range spec.Segments {
		entry, err := e.writeSegment(rel, def, spec.RowsPerBlock, ordered)
		if err != nil {
			return err
		}
		entries = append(entries, entry)
	}

	tab.Segments = entries
	tab.Runs = nil // a full render collapses the run hierarchy
	tab.Tails = nil
	tab.RowCount = int64(len(rel.Rows))
	dropIndexes(tab)
	tab.GridBounds = nil
	for _, b := range bounds {
		tab.GridBounds = append(tab.GridBounds, catalog.GridBoundsMeta{
			Field: b.Field, Min: b.Min, Max: b.Max, Cells: b.Cells,
		})
	}
	return e.cat.Put(tab)
}

// cellRun is one grid cell's rows (or the whole stream for ungridded).
type cellRun struct {
	cell uint64
	rows []value.Row
}

// orderCells arranges cells along the layout's space-filling curve.
func orderCells(cells map[uint64][]value.Row, bounds []transforms.GridBounds, curve algebra.CurveKind) ([]cellRun, error) {
	maxCells := 0
	for _, b := range bounds {
		if b.Cells > maxCells {
			maxCells = b.Cells
		}
	}
	bits := 1
	for (1 << bits) < maxCells {
		bits++
	}
	curveKey := func(cell uint64) (uint64, error) {
		coords := transforms.CellCoords(cell, bounds)
		switch curve {
		case algebra.CurveRowMajor, "":
			return cell, nil
		case algebra.CurveZOrder:
			cs := make([]uint32, len(coords))
			for i, c := range coords {
				cs[i] = uint32(c)
			}
			return zorder.InterleaveN(cs, bits)
		case algebra.CurveHilbert:
			if len(coords) != 2 {
				return 0, fmt.Errorf("table: hilbert needs 2 dims")
			}
			return zorder.Hilbert2(uint(bits), uint32(coords[0]), uint32(coords[1])), nil
		default:
			return 0, fmt.Errorf("table: unknown curve %q", curve)
		}
	}
	type keyed struct {
		key  uint64
		cell uint64
	}
	ks := make([]keyed, 0, len(cells))
	for cell := range cells {
		k, err := curveKey(cell)
		if err != nil {
			return nil, err
		}
		ks = append(ks, keyed{k, cell})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]cellRun, len(ks))
	for i, k := range ks {
		out[i] = cellRun{cell: k.cell, rows: cells[k.cell]}
	}
	return out, nil
}

// stageSegment encodes one vertical partition's blocks into an in-memory
// segment writer (no extent allocated, no page I/O — that happens when the
// caller Finishes the writer). ordered carries the cell-ordered row runs
// (nil means "use rel.Rows as one run", used by Insert tails).
func (e *Engine) stageSegment(rel transforms.Relation, def layout.SegmentDef, rowsPerBlock int, ordered []cellRun) (*segment.Writer, error) {
	proj, idx, err := rel.Schema.Project(def.Fields)
	if err != nil {
		return nil, err
	}
	spec := segment.Spec{Fields: proj.Fields, Codecs: def.Codecs}
	w, err := segment.NewWriter(e.file, spec)
	if err != nil {
		return nil, err
	}
	if ordered == nil {
		ordered = []cellRun{{cell: segment.NoCell, rows: rel.Rows}}
	}
	if rowsPerBlock <= 0 {
		rowsPerBlock = segment.DefaultRowsPerBlock
	}
	// A segment holding every field in schema order needs no per-row
	// projection: pass the row slice through (WriteBlock only reads it).
	// This is the common tail-insert shape (rows/chunk layouts) and saves a
	// Row allocation per row on the ingest path.
	identity := len(idx) == len(rel.Schema.Fields)
	for i, c := range idx {
		if c != i {
			identity = false
			break
		}
	}
	projRow := func(r value.Row) value.Row {
		out := make(value.Row, len(idx))
		for i, c := range idx {
			out[i] = r[c]
		}
		return out
	}
	for _, run := range ordered {
		for lo := 0; lo < len(run.rows); lo += rowsPerBlock {
			hi := lo + rowsPerBlock
			if hi > len(run.rows) {
				hi = len(run.rows)
			}
			block := run.rows[lo:hi]
			if !identity {
				block = make([]value.Row, hi-lo)
				for i, r := range run.rows[lo:hi] {
					block[i] = projRow(r)
				}
			}
			if err := w.WriteBlock(run.cell, block); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// writeSegment renders one vertical partition: stage the blocks, then
// allocate the extent and write the stream.
func (e *Engine) writeSegment(rel transforms.Relation, def layout.SegmentDef, rowsPerBlock int, ordered []cellRun) (catalog.SegmentEntry, error) {
	w, err := e.stageSegment(rel, def, rowsPerBlock, ordered)
	if err != nil {
		return catalog.SegmentEntry{}, err
	}
	meta, err := w.Finish()
	if err != nil {
		return catalog.SegmentEntry{}, err
	}
	return catalog.SegmentEntry{Fields: def.Fields, Codecs: def.Codecs, Meta: meta}, nil
}

// applySteps runs the layout pipeline over the relation. When tailOnly is
// true, only per-row steps run (project/select/fold would corrupt tail
// semantics differently: project and select apply; reordering steps are
// skipped because tails are unorganized by design; fold/unfold/limit make
// incremental inserts ill-defined and are rejected).
func (e *Engine) applySteps(rel transforms.Relation, spec *layout.Spec, tailOnly bool) (transforms.Relation, error) {
	for _, st := range spec.Steps {
		var err error
		switch st.Kind {
		case layout.StepSelect:
			rel, err = transforms.Select(rel, st.Pred)
		case layout.StepProject:
			rel, err = transforms.Project(rel, st.Fields)
		case layout.StepOrderBy:
			if tailOnly {
				continue
			}
			rel, err = transforms.OrderBy(rel, st.Keys)
		case layout.StepGroupBy:
			if tailOnly {
				continue
			}
			rel, err = transforms.GroupBy(rel, st.Fields)
		case layout.StepLimit:
			if tailOnly {
				return rel, fmt.Errorf("table: cannot Insert into a limit[] layout; Reorganize instead")
			}
			rel = transforms.Limit(rel, st.N)
		case layout.StepFold:
			if tailOnly {
				return rel, fmt.Errorf("table: cannot Insert into a folded layout; Reorganize instead")
			}
			if e.Fold == FoldNestedLoop {
				rel, err = transforms.FoldNestedLoop(rel, st.Fields, st.By)
			} else {
				rel, err = transforms.FoldHash(rel, st.Fields, st.By)
			}
		case layout.StepUnfold:
			if tailOnly {
				return rel, fmt.Errorf("table: cannot Insert into an unfold layout; Reorganize instead")
			}
			rel, err = transforms.Unfold(rel, st.Fields, st.Kinds)
		default:
			err = fmt.Errorf("table: unknown step %q", st.Kind)
		}
		if err != nil {
			return rel, err
		}
	}
	return rel, nil
}

// readAllRows reads the table's full stored content (main + tails) in
// stored order, returning the stored schema.
func (e *Engine) readAllRows(tab *catalog.Table) ([]value.Row, *value.Schema, error) {
	cur, err := e.scanStored(tab, nil, algebra.True, true)
	if err != nil {
		return nil, nil, err
	}
	defer cur.Close()
	var rows []value.Row
	for {
		row, ok, err := cur.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	return rows, cur.Schema(), nil
}

// storedSchema reconstructs the final (stored) schema of the table from its
// segment entries.
func storedSchema(tab *catalog.Table) (*value.Schema, error) {
	logical, err := tab.Schema()
	if err != nil {
		return nil, err
	}
	entries := tab.Segments
	if len(entries) == 0 && len(tab.Runs) > 0 {
		// Never bulk-loaded: the oldest organized run carries the stored
		// schema (all runs of a table share the layout's segmentation).
		entries = tab.Runs[0].Segments
	}
	if len(entries) == 0 {
		return logical, nil
	}
	var fields []value.Field
	for _, seg := range entries {
		for _, f := range seg.Fields {
			i := logical.Index(f)
			if i >= 0 {
				fields = append(fields, logical.Fields[i])
				continue
			}
			// Folded synthetic field.
			fields = append(fields, value.Field{Name: f, Type: value.List})
		}
	}
	return value.NewSchema(fields...)
}
