// Package table is RodentStore's storage backend (paper §2, §4): it renders
// compiled layout plans into segments on disk and serves the access-method
// API of §4.1 — scan with optional projection/predicate/order, positional
// and multidimensional getElement, cost estimation, and order_list.
//
// A table's stored form is a set of aligned vertical partitions (segments)
// over the final row stream produced by the layout pipeline. Newly inserted
// rows accumulate as unorganized tail batches ("reorganize only new data",
// paper §5); Reorganize folds them into the main layout, eagerly or lazily
// on next access.
package table

import (
	"fmt"
	"sort"
	"sync"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/layout"
	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/transforms"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/zorder"
)

// FoldStrategy selects the fold rendering algorithm of §4.2.
type FoldStrategy string

// Fold rendering strategies.
const (
	// FoldHash is the hash-join-like rendering (default).
	FoldHash FoldStrategy = "hash"
	// FoldNestedLoop is the paper's Algorithm 1 (two nested for loops).
	FoldNestedLoop FoldStrategy = "nestedloop"
)

// ReorgMode selects when a layout change is applied (paper §5).
type ReorgMode string

// Reorganization modes.
const (
	// ReorgEager rewrites every object immediately.
	ReorgEager ReorgMode = "eager"
	// ReorgLazy marks the table and rewrites on next access.
	ReorgLazy ReorgMode = "lazy"
)

// Engine is the storage backend over one page file.
type Engine struct {
	file  *pager.File
	cat   *catalog.Catalog
	locks *txn.Manager
	// Source is where readers fetch pages: the pager itself (cold, exact
	// page counts) or a buffer.Pool wrapped around it (warm).
	Source segment.PageSource
	// Fold selects the fold rendering strategy.
	Fold FoldStrategy

	mu    sync.Mutex
	specs map[string]*layout.Spec // compile cache keyed by expr text
}

// NewEngine creates an engine over an open page file and catalog. lockMgr
// may be nil to disable table-level locking (single-threaded use).
func NewEngine(file *pager.File, cat *catalog.Catalog, lockMgr *txn.Manager) *Engine {
	return &Engine{
		file:   file,
		cat:    cat,
		locks:  lockMgr,
		Source: file,
		Fold:   FoldHash,
		specs:  make(map[string]*layout.Spec),
	}
}

// withLock takes a table-level lock around fn.
func (e *Engine) withLock(name string, mode txn.LockMode, fn func() error) error {
	if e.locks == nil {
		return fn()
	}
	t := e.locks.Begin()
	if err := t.Lock(name, mode); err != nil {
		t.Abort()
		return err
	}
	defer t.Abort() // strict 2PL release; fn writes through the pager directly
	return fn()
}

// compile resolves a layout expression against the current catalog schemas,
// with caching.
func (e *Engine) compile(exprText string) (*layout.Spec, error) {
	e.mu.Lock()
	if spec, ok := e.specs[exprText]; ok {
		e.mu.Unlock()
		return spec, nil
	}
	e.mu.Unlock()
	expr, err := algebra.Parse(exprText)
	if err != nil {
		return nil, err
	}
	schemas, err := e.cat.Schemas()
	if err != nil {
		return nil, err
	}
	spec, err := layout.Compile(expr, schemas)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.specs[exprText] = spec
	e.mu.Unlock()
	return spec, nil
}

// invalidateSpecCache drops cached plans (schemas changed).
func (e *Engine) invalidateSpecCache() {
	e.mu.Lock()
	e.specs = make(map[string]*layout.Spec)
	e.mu.Unlock()
}

// Create registers a table with its logical schema and layout expression.
// Nothing is rendered until Load.
func (e *Engine) Create(name string, schema *value.Schema, layoutExpr string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		if e.cat.Has(name) {
			return fmt.Errorf("table: %q already exists", name)
		}
		// Validate the layout against a catalog view that includes the new
		// table.
		schemas, err := e.cat.Schemas()
		if err != nil {
			return err
		}
		schemas[name] = schema
		expr, err := algebra.Parse(layoutExpr)
		if err != nil {
			return err
		}
		spec, err := layout.Compile(expr, schemas)
		if err != nil {
			return err
		}
		if spec.Table != name {
			return fmt.Errorf("table: layout %q is for table %q, not %q", layoutExpr, spec.Table, name)
		}
		e.invalidateSpecCache()
		return e.cat.Put(&catalog.Table{
			Name:       name,
			Fields:     catalog.FieldsOf(schema),
			LayoutExpr: expr.String(),
		})
	})
}

// Drop removes a table and frees its extents.
func (e *Engine) Drop(name string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if err := freeAll(e.file, tab); err != nil {
			return err
		}
		e.invalidateSpecCache()
		return e.cat.Delete(name)
	})
}

func freeAll(file *pager.File, tab *catalog.Table) error {
	for _, s := range tab.Segments {
		if err := segment.Free(file, s.Meta); err != nil {
			return err
		}
	}
	for _, batch := range tab.Tails {
		for _, s := range batch {
			if err := segment.Free(file, s.Meta); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load bulk-loads rows into an empty table, rendering the layout. Rows must
// match the logical schema. Use Insert to add data afterwards.
func (e *Engine) Load(name string, rows []value.Row) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if tab.RowCount > 0 {
			return fmt.Errorf("table: %q already loaded (%d rows); use Insert or Reorganize", name, tab.RowCount)
		}
		schema, err := tab.Schema()
		if err != nil {
			return err
		}
		for i, r := range rows {
			if err := schema.Validate(r); err != nil {
				return fmt.Errorf("table: row %d: %w", i, err)
			}
		}
		return e.render(tab, schema, rows)
	})
}

// Insert appends rows as an unorganized tail batch. The main layout is not
// touched (the "reorganize only new data" strategy of §5); call Reorganize
// to merge.
func (e *Engine) Insert(name string, rows []value.Row) error {
	if len(rows) == 0 {
		return nil
	}
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		schema, err := tab.Schema()
		if err != nil {
			return err
		}
		for i, r := range rows {
			if err := schema.Validate(r); err != nil {
				return fmt.Errorf("table: row %d: %w", i, err)
			}
		}
		spec, err := e.compile(tab.LayoutExpr)
		if err != nil {
			return err
		}
		// Tails hold final-schema rows: apply the per-row pipeline steps
		// (project, select) but no reordering/grid — tails are unorganized.
		rel := transforms.Relation{Schema: schema, Rows: rows}
		rel, err = e.applySteps(rel, spec, true)
		if err != nil {
			return err
		}
		var batch []catalog.SegmentEntry
		for _, def := range spec.Segments {
			entry, err := e.writeSegment(rel, def, spec.RowsPerBlock, nil, nil)
			if err != nil {
				return err
			}
			batch = append(batch, entry)
		}
		tab.Tails = append(tab.Tails, batch)
		tab.RowCount += int64(len(rel.Rows))
		dropIndexes(tab) // positions shift; indexes describe one rendering
		return e.cat.Put(tab)
	})
}

// AlterLayout changes the table's layout expression. ReorgEager re-renders
// immediately; ReorgLazy defers to the next access (paper §5).
func (e *Engine) AlterLayout(name, layoutExpr string, mode ReorgMode) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		expr, err := algebra.Parse(layoutExpr)
		if err != nil {
			return err
		}
		schemas, err := e.cat.Schemas()
		if err != nil {
			return err
		}
		spec, err := layout.Compile(expr, schemas)
		if err != nil {
			return err
		}
		if spec.Table != name {
			return fmt.Errorf("table: layout %q is for table %q, not %q", layoutExpr, spec.Table, name)
		}
		switch mode {
		case ReorgEager:
			tab.LayoutExpr = expr.String()
			tab.NeedsReorg = false
			tab.PendingExpr = ""
			if err := e.cat.Put(tab); err != nil {
				return err
			}
			return e.reorganizeLocked(tab)
		case ReorgLazy:
			tab.PendingExpr = expr.String()
			tab.NeedsReorg = true
			return e.cat.Put(tab)
		default:
			return fmt.Errorf("table: unknown reorg mode %q", mode)
		}
	})
}

// Reorganize re-renders the table under its current (or pending) layout,
// merging tail batches into the main segments.
func (e *Engine) Reorganize(name string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		return e.reorganizeLocked(tab)
	})
}

// reorganizeLocked re-renders tab. Caller holds the table lock.
func (e *Engine) reorganizeLocked(tab *catalog.Table) error {
	schema, err := tab.Schema()
	if err != nil {
		return err
	}
	if tab.NeedsReorg && tab.PendingExpr != "" {
		tab.LayoutExpr = tab.PendingExpr
		tab.PendingExpr = ""
	}
	tab.NeedsReorg = false
	// Read everything back in logical (base schema) form. Reorganization
	// requires the stored representation to retain the full logical schema;
	// projected layouts reorganize over their final schema instead.
	rows, readSchema, err := e.readAllRows(tab)
	if err != nil {
		return err
	}
	old := *tab // snapshot for extent freeing after render
	if readSchema.String() != schema.String() {
		// The stored form dropped attributes (e.g. project[lat,lon]); the
		// new layout is compiled against what is actually stored.
		return e.renderNarrowed(tab, readSchema, rows, &old)
	}
	if err := e.render(tab, schema, rows); err != nil {
		return err
	}
	return freeAll(e.file, &old)
}

// renderNarrowed handles reorganization of layouts whose stored schema is a
// projection of the logical one: the pipeline runs against the stored
// schema, so steps referencing dropped fields fail with a clear error.
func (e *Engine) renderNarrowed(tab *catalog.Table, stored *value.Schema, rows []value.Row, old *catalog.Table) error {
	spec, err := e.compileAgainst(tab.LayoutExpr, tab.Name, stored)
	if err != nil {
		return fmt.Errorf("table: reorganize %q: layout needs attributes the stored form dropped: %w", tab.Name, err)
	}
	if err := e.renderWithSpec(tab, stored, rows, spec); err != nil {
		return err
	}
	return freeAll(e.file, old)
}

// compileAgainst compiles exprText treating `name` as having the given
// schema (bypassing the catalog's logical schema).
func (e *Engine) compileAgainst(exprText, name string, schema *value.Schema) (*layout.Spec, error) {
	expr, err := algebra.Parse(exprText)
	if err != nil {
		return nil, err
	}
	schemas, err := e.cat.Schemas()
	if err != nil {
		return nil, err
	}
	schemas[name] = schema
	return layout.Compile(expr, schemas)
}

// render compiles the table's layout and materializes rows into segments,
// replacing the catalog entry. It does NOT free old extents (callers that
// re-render must snapshot and free).
func (e *Engine) render(tab *catalog.Table, schema *value.Schema, rows []value.Row) error {
	spec, err := e.compile(tab.LayoutExpr)
	if err != nil {
		return err
	}
	return e.renderWithSpec(tab, schema, rows, spec)
}

func (e *Engine) renderWithSpec(tab *catalog.Table, schema *value.Schema, rows []value.Row, spec *layout.Spec) error {
	rel := transforms.Relation{Schema: schema, Rows: rows}
	rel, err := e.applySteps(rel, spec, false)
	if err != nil {
		return err
	}

	var bounds []transforms.GridBounds
	var ordered []cellRun
	if spec.Grid != nil {
		bounds, err = transforms.ComputeGridBounds(rel, spec.Grid.Dims)
		if err != nil {
			return err
		}
		cells, err := transforms.GridAssign(rel, bounds)
		if err != nil {
			return err
		}
		ordered, err = orderCells(cells, bounds, spec.Grid.Curve)
		if err != nil {
			return err
		}
	} else {
		ordered = []cellRun{{cell: segment.NoCell, rows: rel.Rows}}
	}

	var entries []catalog.SegmentEntry
	for _, def := range spec.Segments {
		entry, err := e.writeSegment(rel, def, spec.RowsPerBlock, ordered, bounds)
		if err != nil {
			return err
		}
		entries = append(entries, entry)
	}

	tab.Segments = entries
	tab.Tails = nil
	tab.RowCount = int64(len(rel.Rows))
	dropIndexes(tab)
	tab.GridBounds = nil
	for _, b := range bounds {
		tab.GridBounds = append(tab.GridBounds, catalog.GridBoundsMeta{
			Field: b.Field, Min: b.Min, Max: b.Max, Cells: b.Cells,
		})
	}
	return e.cat.Put(tab)
}

// cellRun is one grid cell's rows (or the whole stream for ungridded).
type cellRun struct {
	cell uint64
	rows []value.Row
}

// orderCells arranges cells along the layout's space-filling curve.
func orderCells(cells map[uint64][]value.Row, bounds []transforms.GridBounds, curve algebra.CurveKind) ([]cellRun, error) {
	maxCells := 0
	for _, b := range bounds {
		if b.Cells > maxCells {
			maxCells = b.Cells
		}
	}
	bits := 1
	for (1 << bits) < maxCells {
		bits++
	}
	curveKey := func(cell uint64) (uint64, error) {
		coords := transforms.CellCoords(cell, bounds)
		switch curve {
		case algebra.CurveRowMajor, "":
			return cell, nil
		case algebra.CurveZOrder:
			cs := make([]uint32, len(coords))
			for i, c := range coords {
				cs[i] = uint32(c)
			}
			return zorder.InterleaveN(cs, bits)
		case algebra.CurveHilbert:
			if len(coords) != 2 {
				return 0, fmt.Errorf("table: hilbert needs 2 dims")
			}
			return zorder.Hilbert2(uint(bits), uint32(coords[0]), uint32(coords[1])), nil
		default:
			return 0, fmt.Errorf("table: unknown curve %q", curve)
		}
	}
	type keyed struct {
		key  uint64
		cell uint64
	}
	ks := make([]keyed, 0, len(cells))
	for cell := range cells {
		k, err := curveKey(cell)
		if err != nil {
			return nil, err
		}
		ks = append(ks, keyed{k, cell})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]cellRun, len(ks))
	for i, k := range ks {
		out[i] = cellRun{cell: k.cell, rows: cells[k.cell]}
	}
	return out, nil
}

// writeSegment renders one vertical partition. ordered carries the
// cell-ordered row runs (nil means "use rel.Rows as one run", used by
// Insert tails).
func (e *Engine) writeSegment(rel transforms.Relation, def layout.SegmentDef, rowsPerBlock int, ordered []cellRun, bounds []transforms.GridBounds) (catalog.SegmentEntry, error) {
	proj, idx, err := rel.Schema.Project(def.Fields)
	if err != nil {
		return catalog.SegmentEntry{}, err
	}
	spec := segment.Spec{Fields: proj.Fields, Codecs: def.Codecs}
	w, err := segment.NewWriter(e.file, spec)
	if err != nil {
		return catalog.SegmentEntry{}, err
	}
	if ordered == nil {
		ordered = []cellRun{{cell: segment.NoCell, rows: rel.Rows}}
	}
	if rowsPerBlock <= 0 {
		rowsPerBlock = segment.DefaultRowsPerBlock
	}
	projRow := func(r value.Row) value.Row {
		out := make(value.Row, len(idx))
		for i, c := range idx {
			out[i] = r[c]
		}
		return out
	}
	for _, run := range ordered {
		for lo := 0; lo < len(run.rows); lo += rowsPerBlock {
			hi := lo + rowsPerBlock
			if hi > len(run.rows) {
				hi = len(run.rows)
			}
			block := make([]value.Row, hi-lo)
			for i, r := range run.rows[lo:hi] {
				block[i] = projRow(r)
			}
			if err := w.WriteBlock(run.cell, block); err != nil {
				return catalog.SegmentEntry{}, err
			}
		}
	}
	meta, err := w.Finish()
	if err != nil {
		return catalog.SegmentEntry{}, err
	}
	return catalog.SegmentEntry{Fields: def.Fields, Codecs: def.Codecs, Meta: meta}, nil
}

// applySteps runs the layout pipeline over the relation. When tailOnly is
// true, only per-row steps run (project/select/fold would corrupt tail
// semantics differently: project and select apply; reordering steps are
// skipped because tails are unorganized by design; fold/unfold/limit make
// incremental inserts ill-defined and are rejected).
func (e *Engine) applySteps(rel transforms.Relation, spec *layout.Spec, tailOnly bool) (transforms.Relation, error) {
	for _, st := range spec.Steps {
		var err error
		switch st.Kind {
		case layout.StepSelect:
			rel, err = transforms.Select(rel, st.Pred)
		case layout.StepProject:
			rel, err = transforms.Project(rel, st.Fields)
		case layout.StepOrderBy:
			if tailOnly {
				continue
			}
			rel, err = transforms.OrderBy(rel, st.Keys)
		case layout.StepGroupBy:
			if tailOnly {
				continue
			}
			rel, err = transforms.GroupBy(rel, st.Fields)
		case layout.StepLimit:
			if tailOnly {
				return rel, fmt.Errorf("table: cannot Insert into a limit[] layout; Reorganize instead")
			}
			rel = transforms.Limit(rel, st.N)
		case layout.StepFold:
			if tailOnly {
				return rel, fmt.Errorf("table: cannot Insert into a folded layout; Reorganize instead")
			}
			if e.Fold == FoldNestedLoop {
				rel, err = transforms.FoldNestedLoop(rel, st.Fields, st.By)
			} else {
				rel, err = transforms.FoldHash(rel, st.Fields, st.By)
			}
		case layout.StepUnfold:
			if tailOnly {
				return rel, fmt.Errorf("table: cannot Insert into an unfold layout; Reorganize instead")
			}
			rel, err = transforms.Unfold(rel, st.Fields, st.Kinds)
		default:
			err = fmt.Errorf("table: unknown step %q", st.Kind)
		}
		if err != nil {
			return rel, err
		}
	}
	return rel, nil
}

// readAllRows reads the table's full stored content (main + tails) in
// stored order, returning the stored schema.
func (e *Engine) readAllRows(tab *catalog.Table) ([]value.Row, *value.Schema, error) {
	cur, err := e.scanStored(tab, nil, algebra.True, true)
	if err != nil {
		return nil, nil, err
	}
	defer cur.Close()
	var rows []value.Row
	for {
		row, ok, err := cur.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	return rows, cur.Schema(), nil
}

// storedSchema reconstructs the final (stored) schema of the table from its
// segment entries.
func storedSchema(tab *catalog.Table) (*value.Schema, error) {
	logical, err := tab.Schema()
	if err != nil {
		return nil, err
	}
	if len(tab.Segments) == 0 {
		return logical, nil
	}
	var fields []value.Field
	for _, seg := range tab.Segments {
		for _, f := range seg.Fields {
			i := logical.Index(f)
			if i >= 0 {
				fields = append(fields, logical.Fields[i])
				continue
			}
			// Folded synthetic field.
			fields = append(fields, value.Field{Name: f, Type: value.List})
		}
	}
	return value.NewSchema(fields...)
}
