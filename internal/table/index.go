package table

import (
	"fmt"
	"sort"

	"rodentstore/internal/algebra"
	"rodentstore/internal/btree"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
)

// Secondary B+tree indexes (paper §1: "RodentStore will include both
// B+Trees as well as a variety of geo-spatial indices"; the paper explicitly
// does not innovate here, and neither do we). An index maps one field's
// values to row positions in the table's stored order.
//
// Indexes describe a specific rendering of the main segments: operations
// that rewrite the stored order (Reorganize, AlterLayout, Load) drop them;
// rebuild with CreateIndex. Tail-only Inserts do NOT drop indexes — an
// appended tail shifts no existing position, so the tree stays valid for
// the prefix it covers (IndexMeta.Rows) and IndexScan post-scans the
// unindexed suffix.

// CreateIndex builds a B+tree over the named field of the table's stored
// rows. The field must be stored by the current layout.
func (e *Engine) CreateIndex(tableName, field string) error {
	return e.withLock(tableName, txn.Exclusive, func() error {
		tab, err := e.cat.Get(tableName)
		if err != nil {
			return err
		}
		for _, idx := range tab.Indexes {
			if idx.Field == field {
				return fmt.Errorf("table: index on %s(%s) already exists", tableName, field)
			}
		}
		stored, err := storedSchema(tab)
		if err != nil {
			return err
		}
		fi := stored.Index(field)
		if fi < 0 {
			return fmt.Errorf("table: cannot index %q: not stored by layout %s", field, tab.LayoutExpr)
		}
		if stored.Fields[fi].Type == value.List {
			return fmt.Errorf("table: cannot index folded field %q", field)
		}
		tree, err := btree.New(e.file)
		if err != nil {
			return err
		}
		cur, err := e.scanStored(tab, []string{field}, algebra.True, true)
		if err != nil {
			return err
		}
		defer cur.Close()
		pos := uint64(0)
		for {
			row, ok, err := cur.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if !row[0].IsNull() {
				if err := tree.Insert(btree.EncodeKey(row[0]), pos); err != nil {
					return err
				}
			}
			pos++
		}
		// Copy-on-write: Put swaps the finished record in under the catalog
		// lock, so a concurrent checkpoint flush never encodes a half-updated
		// table (see catalog.Catalog.Get).
		work := *tab
		work.Indexes = append(append([]catalog.IndexMeta(nil), tab.Indexes...), catalog.IndexMeta{
			Field: field, Root: uint64(tree.Root()), Rows: tab.RowCount,
		})
		return e.cat.Put(&work)
	})
}

// DropIndex removes the index on the given field.
func (e *Engine) DropIndex(tableName, field string) error {
	return e.withLock(tableName, txn.Exclusive, func() error {
		tab, err := e.cat.Get(tableName)
		if err != nil {
			return err
		}
		for i, idx := range tab.Indexes {
			if idx.Field == field {
				work := *tab
				work.Indexes = append(append([]catalog.IndexMeta(nil), tab.Indexes[:i]...), tab.Indexes[i+1:]...)
				return e.cat.Put(&work)
			}
		}
		return fmt.Errorf("table: no index on %s(%s)", tableName, field)
	})
}

// Indexes lists the indexed fields of a table.
func (e *Engine) Indexes(tableName string) ([]string, error) {
	tab, err := e.cat.Get(tableName)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(tab.Indexes))
	for i, idx := range tab.Indexes {
		out[i] = idx.Field
	}
	return out, nil
}

// dropIndexes clears index metadata after a data rewrite (the tree pages
// themselves leak into the file until the next Reorganize reclaims extents;
// B+tree pages are single-page allocations, so they are simply abandoned —
// bounded by rebuild frequency and documented behavior).
func dropIndexes(tab *catalog.Table) { tab.Indexes = nil }

// IndexScan runs a range lookup through the index on field and returns the
// matching rows (post-filtered by pred, projected to fields). It reads only
// the blocks containing matching positions — for selective predicates this
// touches far fewer pages than a scan, at the cost of index node reads and
// seeks (the classic secondary-index trade the paper's Figure 2 probes with
// its R-tree).
func (e *Engine) IndexScan(tableName string, fields []string, pred algebra.Predicate, indexField string) (*Cursor, error) {
	var cur *Cursor
	err := e.withLock(tableName, txn.Shared, func() error {
		tab, err := e.cat.Get(tableName)
		if err != nil {
			return err
		}
		var root pager.PageID
		indexedRows := int64(0)
		found := false
		for _, idx := range tab.Indexes {
			if idx.Field == indexField {
				root = pager.PageID(idx.Root)
				indexedRows = idx.Rows
				found = true
			}
		}
		if !found {
			return fmt.Errorf("table: no index on %s(%s)", tableName, indexField)
		}
		lo, hi, loOpen, hiOpen, ok := pred.Bounds(indexField)
		if !ok {
			return fmt.Errorf("table: predicate does not constrain indexed field %q", indexField)
		}
		tree := btree.Open(e.file, root)
		var loKey, hiKey []byte
		if !lo.IsNull() {
			loKey = btree.EncodeKey(lo)
		}
		if !hi.IsNull() {
			hiKey = btree.EncodeKey(hi)
		}
		var positions []int64
		err = tree.Range(loKey, hiKey, func(key []byte, v uint64) bool {
			positions = append(positions, int64(v))
			return true
		})
		if err != nil {
			return err
		}
		// Strict bounds re-checked by the predicate during materialization;
		// loOpen/hiOpen only widen the candidate set.
		_ = loOpen
		_ = hiOpen
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		// Rows appended since the index was built (tail batches) are not in
		// the tree; add them as an unindexed suffix of candidates — the
		// predicate post-filter below rejects non-matches. Every tree hit is
		// below indexedRows, so the combined list stays sorted. This is one
		// candidate per tail row, so the suffix cost grows with tail size:
		// the merge policy (EnableAutoMerge) is what keeps it bounded. A
		// future refinement could scan the tail batches directly with the
		// predicate (zone maps apply) instead of materializing positions.
		for p := indexedRows; p < tab.RowCount; p++ {
			positions = append(positions, p)
		}

		// Fetch the raw rows at those positions (no predicate: filtering
		// would compact block offsets and break the position mapping), then
		// post-filter and project.
		stored, err := storedSchema(tab)
		if err != nil {
			return err
		}
		outFields := fields
		if outFields == nil {
			outFields = stored.Names()
		}
		needSet := map[string]bool{}
		for _, f := range outFields {
			needSet[f] = true
		}
		for _, f := range pred.Fields() {
			needSet[f] = true
		}
		var decoded []string
		for _, f := range stored.Names() {
			if needSet[f] {
				decoded = append(decoded, f)
			}
		}
		raw, err := e.scanStored(tab, decoded, algebra.True, true)
		if err != nil {
			return err
		}
		rows, err := raw.fetchPositions(positions)
		if err != nil {
			return err
		}
		outSchema, outIdx, err := raw.schema.Project(outFields)
		if err != nil {
			return err
		}
		var final []value.Row
		for _, r := range rows {
			if !pred.Eval(raw.schema, r) {
				continue
			}
			pr := make(value.Row, len(outIdx))
			for i, c := range outIdx {
				pr[i] = r[c]
			}
			final = append(final, pr)
		}
		cur = &Cursor{schema: outSchema, sorted: final}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cur, nil
}

// fetchPositions materializes the rows at the given stored positions
// (ascending), reading each containing block once. The cursor must have
// been built without pruning-affecting state consumed.
func (c *Cursor) fetchPositions(positions []int64) ([]value.Row, error) {
	if len(c.parts) == 0 {
		return nil, nil
	}
	var out []value.Row
	pi := 0
	// Walk blocks in order, draining positions that fall inside each.
	var before int64
	for _, ref := range c.blocks {
		bm := c.parts[ref.part].entries[firstReadSeg(c.parts[ref.part])].Meta.Blocks[ref.block]
		blockLo, blockHi := before, before+int64(bm.Rows)
		before = blockHi
		if pi >= len(positions) {
			break
		}
		if positions[pi] >= blockHi {
			continue
		}
		// Decode this block once and pick the requested offsets.
		if err := c.loadBlock(ref); err != nil {
			return nil, err
		}
		for pi < len(positions) && positions[pi] < blockHi {
			off := int(positions[pi] - blockLo)
			if row, ok := c.blockRow(off); ok {
				out = append(out, row)
			}
			pi++
		}
	}
	return out, nil
}
