package table

import (
	"sync"
	"sync/atomic"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/value"
	"rodentstore/internal/vfs"
)

// newFaultEngine builds an engine over the fault-injection file system so
// tests can count, fail, and corrupt individual ReadAt calls.
func newFaultEngine(t *testing.T) (*Engine, *pager.File, *vfs.Fault) {
	t.Helper()
	fs := vfs.NewFault(42)
	f, err := pager.CreateAt(fs, "db.rdnt", 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	cat, err := catalog.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(f, cat, nil), f, fs
}

// loadScanIOTable creates and loads a table whose main part has many
// physically adjacent blocks, returning the block count.
func loadScanIOTable(t *testing.T, e *Engine, rows int) int {
	t.Helper()
	if err := e.Create("T", tracesSchema(), "chunk[128](rows(T))"); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("T", traceRows(rows)); err != nil {
		t.Fatal(err)
	}
	tab, err := e.cat.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	return len(tab.Segments[0].Meta.Blocks)
}

// TestScanCoalescedReadAtCount pins the tentpole's syscall win and the
// paper-figure invariance on real op counts: a coalesced full scan of N
// adjacent blocks must issue at most N/4 ReadAt calls, while the default
// serial scan must keep reading one page per ReadAt, each spanned page
// exactly once — the access pattern the paper-figure experiments measure.
func TestScanCoalescedReadAtCount(t *testing.T) {
	e, _, fs := newFaultEngine(t)
	nblocks := loadScanIOTable(t, e, 4096)
	if nblocks < 16 {
		t.Fatalf("want >= 16 blocks for a meaningful ratio, got %d", nblocks)
	}

	var mu sync.Mutex
	var ops []vfs.Op
	countScan := func(opts ScanOptions) []vfs.Op {
		mu.Lock()
		ops = nil
		mu.Unlock()
		fs.OnOp = func(op vfs.Op) {
			if op.Kind == vfs.OpRead {
				mu.Lock()
				ops = append(ops, op)
				mu.Unlock()
			}
		}
		defer func() { fs.OnOp = nil }()
		cur, err := e.Scan("T", opts)
		if err != nil {
			t.Fatal(err)
		}
		n := len(drain(t, cur))
		cur.Close()
		if n != 4096 {
			t.Fatalf("scan returned %d rows, want 4096", n)
		}
		mu.Lock()
		defer mu.Unlock()
		return ops
	}

	serial := countScan(ScanOptions{})
	for _, op := range serial {
		if op.Len != 1024 {
			t.Fatalf("default serial scan issued a %d-byte read: the paper-figure access pattern must stay one page per ReadAt", op.Len)
		}
	}
	seen := make(map[int64]int)
	for _, op := range serial {
		seen[op.Off]++
	}
	for off, n := range seen {
		if n != 1 {
			t.Fatalf("default serial scan read page at offset %d %d times, want exactly once", off, n)
		}
	}

	coalesced := countScan(ScanOptions{Coalesce: true})
	if max := nblocks / 4; len(coalesced) > max {
		t.Fatalf("coalesced scan of %d blocks issued %d ReadAt calls, want <= %d", nblocks, len(coalesced), max)
	}
	var serialBytes, coalescedBytes int
	for _, op := range serial {
		serialBytes += op.Len
	}
	for _, op := range coalesced {
		coalescedBytes += op.Len
	}
	if coalescedBytes > serialBytes+4*1024 {
		t.Fatalf("coalescing re-read data: %d bytes vs %d serial", coalescedBytes, serialBytes)
	}

	prefetched := countScan(ScanOptions{Prefetch: true})
	if max := nblocks / 4; len(prefetched) > max {
		t.Fatalf("prefetched scan of %d blocks issued %d ReadAt calls, want <= %d", nblocks, len(prefetched), max)
	}
}

// TestScanCoalescedQuarantineSubRange corrupts one page mid-extent and
// checks the coalesced and prefetched quarantine scans skip exactly the rows
// the per-block quarantine scan skips: the failed read retries only the
// damaged tail, never discarding blocks whose bytes already read cleanly.
func TestScanCoalescedQuarantineSubRange(t *testing.T) {
	e, f, fs := newFaultEngine(t)
	nblocks := loadScanIOTable(t, e, 4096)
	tab, err := e.cat.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	meta := tab.Segments[0].Meta
	payload := int64(f.PayloadSize())
	// Corrupt the page holding the middle block's first byte.
	bm := meta.Blocks[nblocks/2]
	pg := int64(meta.ExtentStart) + int64(bm.Off)/payload
	fs.Corrupt("db.rdnt", pg*1024+4+int64(bm.Off)%payload, 8)

	scanRows := func(opts ScanOptions) ([]value.Row, ScanReport) {
		opts.Quarantine = true
		cur, err := e.Scan("T", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		return drain(t, cur), cur.Report()
	}
	want, wantRep := scanRows(ScanOptions{})
	if len(want) == 4096 || len(want) == 0 {
		t.Fatalf("corruption not exercised: oracle returned %d rows", len(want))
	}
	for _, opts := range []ScanOptions{
		{Coalesce: true},
		{Prefetch: true},
		{Prefetch: true, NoVectorize: true},
		{Prefetch: true, Parallel: true, Workers: 3},
	} {
		got, rep := scanRows(opts)
		if len(got) != len(want) {
			t.Fatalf("opts %+v: %d rows, per-block quarantine oracle %d", opts, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				if !value.Equal(got[i][c], want[i][c]) {
					t.Fatalf("opts %+v: row %d col %d: %v != %v", opts, i, c, got[i][c], want[i][c])
				}
			}
		}
		if len(rep.Skipped) != len(wantRep.Skipped) {
			t.Fatalf("opts %+v: quarantined %d extents, oracle %d", opts, len(rep.Skipped), len(wantRep.Skipped))
		}
	}
	if n := prefetchInFlight.Load(); n != 0 {
		t.Fatalf("%d prefetch leases still outstanding", n)
	}
}

// TestScanPrefetchNoLeakUnderShortReads injects intermittent short reads and
// checks that every prefetched buffer set has exactly one owner on every
// path: after full drains, early closes, and quarantined retries, no lease
// is left outstanding.
func TestScanPrefetchNoLeakUnderShortReads(t *testing.T) {
	e, _, fs := newFaultEngine(t)
	loadScanIOTable(t, e, 4096)
	var reads atomic.Uint64
	fs.Inject = func(op vfs.Op) vfs.Decision {
		if op.Kind == vfs.OpRead && reads.Add(1)%7 == 0 {
			return vfs.ShortRead
		}
		return vfs.OK
	}
	defer func() { fs.Inject = nil }()

	for trial := 0; trial < 8; trial++ {
		opts := ScanOptions{Prefetch: true, Quarantine: true}
		if trial%2 == 1 {
			opts.Parallel, opts.Workers = true, 3
		}
		cur, err := e.Scan("T", opts)
		if err != nil {
			t.Fatal(err)
		}
		if trial%4 < 2 {
			// Early close mid-prefetch: read a few rows, then abandon.
			for i := 0; i < 10; i++ {
				if _, ok, err := cur.Next(); err != nil || !ok {
					break
				}
			}
		} else {
			drain(t, cur)
		}
		cur.Close()
	}
	if n := prefetchInFlight.Load(); n != 0 {
		t.Fatalf("%d prefetch leases outstanding after Close", n)
	}
}

// TestScanPrefetchCloseRace hammers concurrent scans that close mid-prefetch
// (run under -race): cursor teardown must join the prefetcher so no
// goroutine touches readers or buffers after Close returns.
func TestScanPrefetchCloseRace(t *testing.T) {
	e, _, _ := newFaultEngine(t)
	loadScanIOTable(t, e, 4096)
	pred := algebra.True.And("t", algebra.OpLt, value.NewInt(4000))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				opts := ScanOptions{Prefetch: true, Pred: pred}
				if g%2 == 0 {
					opts.Parallel, opts.Workers = true, 2
				}
				cur, err := e.Scan("T", opts)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < (i%5)*7; j++ {
					if _, ok, err := cur.Next(); err != nil || !ok {
						break
					}
				}
				cur.Close()
			}
		}(g)
	}
	wg.Wait()
	if n := prefetchInFlight.Load(); n != 0 {
		t.Fatalf("%d prefetch leases outstanding after close storm", n)
	}
}
