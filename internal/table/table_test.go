package table

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/value"
)

func newEngine(t *testing.T) (*Engine, *pager.File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.rdnt")
	f, err := pager.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	cat, err := catalog.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(f, cat, nil), f, path
}

func tracesSchema() *value.Schema {
	return value.MustSchema(
		value.Field{Name: "t", Type: value.Int},
		value.Field{Name: "lat", Type: value.Float},
		value.Field{Name: "lon", Type: value.Float},
		value.Field{Name: "id", Type: value.Str},
	)
}

func traceRows(n int) []value.Row {
	r := rand.New(rand.NewSource(11))
	rows := make([]value.Row, n)
	lat, lon := 42.36, -71.09
	for i := range rows {
		lat += (r.Float64() - 0.5) * 1e-3
		lon += (r.Float64() - 0.5) * 1e-3
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewFloat(lat),
			value.NewFloat(lon),
			value.NewString([]string{"car-1", "car-2", "car-3"}[i%3]),
		}
	}
	return rows
}

func drain(t *testing.T, c *Cursor) []value.Row {
	t.Helper()
	var out []value.Row
	for {
		r, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// rowKey builds a comparable key for multiset comparison.
func rowKey(r value.Row) string {
	s := ""
	for _, v := range r {
		s += v.String() + "|"
	}
	return s
}

func sameMultiset(t *testing.T, got, want []value.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d want %d", len(got), len(want))
	}
	g := make([]string, len(got))
	w := make([]string, len(want))
	for i := range got {
		g[i], w[i] = rowKey(got[i]), rowKey(want[i])
	}
	sort.Strings(g)
	sort.Strings(w)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("multiset mismatch at %d:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
}

func setup(t *testing.T, layoutExpr string, n int) (*Engine, *pager.File, []value.Row) {
	t.Helper()
	e, f, _ := newEngine(t)
	if err := e.Create("Traces", tracesSchema(), layoutExpr); err != nil {
		t.Fatal(err)
	}
	rows := traceRows(n)
	if err := e.Load("Traces", rows); err != nil {
		t.Fatal(err)
	}
	return e, f, rows
}

func TestLayoutsRoundtripFullScan(t *testing.T) {
	layouts := []string{
		"rows(Traces)",
		"cols(Traces)",
		"colgroup[lat,lon](Traces)",
		"orderby[t](Traces)",
		"groupby[id](Traces)",
		"orderby[t](groupby[id](Traces))",
		"chunk[100](rows(Traces))",
		"grid[lat,lon; 8,8](Traces)",
		"zorder(grid[lat,lon; 8,8](Traces))",
		"hilbert(grid[lat,lon; 8,8](Traces))",
		"delta[lat,lon](zorder(grid[lat,lon; 8,8](Traces)))",
		"dict[id](bitpack[t](rows(Traces)))",
	}
	for _, l := range layouts {
		t.Run(l, func(t *testing.T) {
			e, _, rows := setup(t, l, 500)
			// Request fields in logical order: layouts like colgroup store a
			// permuted schema, but projection restores the logical view.
			cur, err := e.Scan("Traces", ScanOptions{Fields: tracesSchema().Names()})
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, cur)
			sameMultiset(t, got, rows)
		})
	}
}

func TestProjectedLayoutDropsFields(t *testing.T) {
	e, _, rows := setup(t, "project[lat,lon](orderby[t](Traces))", 300)
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	if len(got) != len(rows) || len(got[0]) != 2 {
		t.Fatalf("projected scan shape: %d rows × %d cols", len(got), len(got[0]))
	}
	// Asking for a dropped field must fail with a clear error.
	if _, err := e.Scan("Traces", ScanOptions{Fields: []string{"id"}}); err == nil {
		t.Error("scan of dropped field should fail")
	}
}

func TestOrderedLayoutStreamsInOrder(t *testing.T) {
	e, _, _ := setup(t, "orderby[t desc](Traces)", 300)
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	for i := 1; i < len(got); i++ {
		if got[i][0].Int() > got[i-1][0].Int() {
			t.Fatal("not descending by t")
		}
	}
}

func TestPredicateScanMatchesBruteForce(t *testing.T) {
	layouts := []string{
		"rows(Traces)",
		"orderby[lat](Traces)",
		"zorder(grid[lat,lon; 8,8](Traces))",
		"cols(Traces)",
	}
	pred, err := algebra.ParsePredicate("lat >= 42.3595 and lat < 42.3605 and lon >= -71.0905 and lon < -71.0895")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range layouts {
		t.Run(l, func(t *testing.T) {
			e, _, rows := setup(t, l, 800)
			var want []value.Row
			schema := tracesSchema()
			for _, r := range rows {
				if pred.Eval(schema, r) {
					want = append(want, r)
				}
			}
			cur, err := e.Scan("Traces", ScanOptions{Pred: pred})
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, cur)
			sameMultiset(t, got, want)
		})
	}
}

func TestGridPruningReadsFewerPages(t *testing.T) {
	pred, _ := algebra.ParsePredicate("lat >= 42.3598 and lat < 42.3602 and lon >= -71.0902 and lon < -71.0898")
	// Row layout: full scan.
	eRows, fRows, _ := setup(t, "chunk[64](rows(Traces))", 4000)
	fRows.ResetStats()
	cur, _ := eRows.Scan("Traces", ScanOptions{Pred: pred})
	drain(t, cur)
	fullPages := fRows.Stats().PageReads

	// Grid layout: prune to overlapping cells.
	eGrid, fGrid, _ := setup(t, "chunk[64](zorder(grid[lat,lon; 16,16](Traces)))", 4000)
	fGrid.ResetStats()
	cur2, _ := eGrid.Scan("Traces", ScanOptions{Pred: pred})
	drain(t, cur2)
	gridPages := fGrid.Stats().PageReads

	if gridPages == 0 || gridPages*4 > fullPages {
		t.Errorf("grid pruning ineffective: grid=%d full=%d pages", gridPages, fullPages)
	}
}

func TestColumnLayoutReadsFewerPagesForProjection(t *testing.T) {
	eRow, fRow, _ := setup(t, "rows(Traces)", 3000)
	fRow.ResetStats()
	cur, _ := eRow.Scan("Traces", ScanOptions{Fields: []string{"t"}})
	drain(t, cur)
	rowPages := fRow.Stats().PageReads

	eCol, fCol, _ := setup(t, "cols(Traces)", 3000)
	fCol.ResetStats()
	cur2, _ := eCol.Scan("Traces", ScanOptions{Fields: []string{"t"}})
	drain(t, cur2)
	colPages := fCol.Stats().PageReads

	if colPages*2 > rowPages {
		t.Errorf("column projection should read far fewer pages: col=%d row=%d", colPages, rowPages)
	}
}

func TestScanWithOrderMaterializes(t *testing.T) {
	e, _, rows := setup(t, "rows(Traces)", 200)
	cur, err := e.Scan("Traces", ScanOptions{Order: []algebra.OrderKey{{Field: "lat"}}})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	if len(got) != len(rows) {
		t.Fatalf("rows: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i][1].Float() < got[i-1][1].Float() {
			t.Fatal("not sorted by lat")
		}
	}
}

func TestScanStoredOrderStreams(t *testing.T) {
	e, _, _ := setup(t, "orderby[t](Traces)", 200)
	cur, err := e.Scan("Traces", ScanOptions{Order: []algebra.OrderKey{{Field: "t"}}})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	for i := 1; i < len(got); i++ {
		if got[i][0].Int() < got[i-1][0].Int() {
			t.Fatal("not ascending")
		}
	}
}

func TestGetElementPositional(t *testing.T) {
	e, _, _ := setup(t, "orderby[t](Traces)", 300)
	cur, err := e.GetElement("Traces", nil, []int64{42})
	if err != nil {
		t.Fatal(err)
	}
	r, ok, err := cur.Next()
	if err != nil || !ok {
		t.Fatalf("next: %v %v", ok, err)
	}
	if r[0].Int() != 42 {
		t.Errorf("element 42 has t=%d", r[0].Int())
	}
	// next() continues in stored order (paper §4.1).
	r2, ok, _ := cur.Next()
	if !ok || r2[0].Int() != 43 {
		t.Errorf("next after getElement: %v", r2)
	}
	if _, err := e.GetElement("Traces", nil, []int64{999999}); err == nil {
		t.Error("out-of-range position should fail")
	}
}

func TestGetElementCell(t *testing.T) {
	e, _, rows := setup(t, "zorder(grid[lat,lon; 4,4](Traces))", 500)
	tab, _ := e.cat.Get("Traces")
	bounds := boundsOf(tab)
	// Find a cell that certainly has data: cell of row 0.
	cx := bounds[0].CellOf(rows[0][1].Float())
	cy := bounds[1].CellOf(rows[0][2].Float())
	cur, err := e.GetElement("Traces", nil, []int64{int64(cx), int64(cy)})
	if err != nil {
		t.Fatal(err)
	}
	r, ok, err := cur.Next()
	if err != nil || !ok {
		t.Fatalf("cell cursor empty: %v", err)
	}
	if bounds[0].CellOf(r[1].Float()) != cx || bounds[1].CellOf(r[2].Float()) != cy {
		t.Error("first row not in requested cell")
	}
	// Wrong arity.
	if _, err := e.GetElement("Traces", nil, []int64{1, 2, 3}); err == nil {
		t.Error("bad index arity should fail")
	}
	// Out-of-range cell.
	if _, err := e.GetElement("Traces", nil, []int64{99, 0}); err == nil {
		t.Error("cell index out of range should fail")
	}
}

func TestInsertAndScanMerge(t *testing.T) {
	e, _, rows := setup(t, "orderby[t](Traces)", 200)
	extra := traceRows(50)
	for i := range extra {
		extra[i][0] = value.NewInt(int64(1000 + i))
	}
	if err := e.Insert("Traces", extra); err != nil {
		t.Fatal(err)
	}
	cur, _ := e.Scan("Traces", ScanOptions{})
	got := drain(t, cur)
	sameMultiset(t, got, append(append([]value.Row{}, rows...), extra...))
	if n, _ := e.RowCount("Traces"); n != 250 {
		t.Errorf("row count: %d", n)
	}
}

func TestReorganizeMergesTails(t *testing.T) {
	e, _, rows := setup(t, "orderby[t](Traces)", 200)
	extra := traceRows(50)
	for i := range extra {
		extra[i][0] = value.NewInt(int64(1000 + i))
	}
	e.Insert("Traces", extra)
	if err := e.Reorganize("Traces"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	if len(tab.Tails) != 0 {
		t.Error("tails not merged")
	}
	cur, _ := e.Scan("Traces", ScanOptions{})
	got := drain(t, cur)
	sameMultiset(t, got, append(append([]value.Row{}, rows...), extra...))
	// After reorganize the t-order covers the inserted rows too.
	for i := 1; i < len(got); i++ {
		if got[i][0].Int() < got[i-1][0].Int() {
			t.Fatal("not ordered after reorganize")
		}
	}
}

func TestAlterLayoutEager(t *testing.T) {
	e, _, rows := setup(t, "rows(Traces)", 300)
	if err := e.AlterLayout("Traces", "zorder(grid[lat,lon; 8,8](Traces))", ReorgEager); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	if len(tab.GridBounds) != 2 || tab.NeedsReorg {
		t.Errorf("grid not rendered: %+v", tab.GridBounds)
	}
	cur, _ := e.Scan("Traces", ScanOptions{})
	sameMultiset(t, drain(t, cur), rows)
}

func TestAlterLayoutLazy(t *testing.T) {
	e, _, rows := setup(t, "rows(Traces)", 300)
	if err := e.AlterLayout("Traces", "orderby[lat](Traces)", ReorgLazy); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.cat.Get("Traces")
	if !tab.NeedsReorg {
		t.Fatal("lazy alter should mark NeedsReorg")
	}
	// First scan triggers the reorganization.
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	sameMultiset(t, got, rows)
	for i := 1; i < len(got); i++ {
		if got[i][1].Float() < got[i-1][1].Float() {
			t.Fatal("lazy reorg did not apply ordering")
		}
	}
	tab, _ = e.cat.Get("Traces")
	if tab.NeedsReorg || tab.LayoutExpr != "orderby[lat](Traces)" {
		t.Errorf("reorg state: %+v", tab.NeedsReorg)
	}
}

func TestEstimateScanMatchesActual(t *testing.T) {
	layouts := []string{
		"rows(Traces)",
		"cols(Traces)",
		"zorder(grid[lat,lon; 8,8](Traces))",
	}
	pred, _ := algebra.ParsePredicate("lat >= 42.3598 and lat < 42.3602")
	for _, l := range layouts {
		t.Run(l, func(t *testing.T) {
			e, f, _ := setup(t, l, 2000)
			for _, opts := range []ScanOptions{{}, {Pred: pred}, {Fields: []string{"lat"}}} {
				est, err := e.EstimateScan("Traces", opts)
				if err != nil {
					t.Fatal(err)
				}
				f.ResetStats()
				cur, err := e.Scan("Traces", opts)
				if err != nil {
					t.Fatal(err)
				}
				drain(t, cur)
				actual := f.Stats().PageReads
				// Estimates count whole blocks; actual reads share boundary
				// pages, so the estimate may exceed actual slightly.
				if est.Pages < actual || est.Pages > actual+uint64(len(f.Path()))+16 {
					t.Errorf("opts %+v: estimated %d pages, actual %d", opts, est.Pages, actual)
				}
			}
		})
	}
}

func TestEstimateGet(t *testing.T) {
	e, f, _ := setup(t, "cols(Traces)", 2000)
	est, err := e.EstimateGet("Traces", []string{"lat"}, []int64{1500})
	if err != nil {
		t.Fatal(err)
	}
	f.ResetStats()
	cur, err := e.GetElement("Traces", []string{"lat"}, []int64{1500})
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	actual := f.Stats().PageReads
	if est.Pages < actual {
		t.Errorf("estimate %d < actual %d pages", est.Pages, actual)
	}
}

func TestOrderListAndGridOrder(t *testing.T) {
	e, _, _ := setup(t, "orderby[t,id desc](Traces)", 100)
	orders, err := e.OrderList("Traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 1 || orders[0][0].Field != "t" || !orders[0][1].Desc {
		t.Errorf("orders: %+v", orders)
	}
	if g, _ := e.GridOrder("Traces"); g != "" {
		t.Errorf("ungridded GridOrder: %q", g)
	}

	e2, _, _ := setup(t, "zorder(grid[lat,lon; 8,8](Traces))", 100)
	if g, _ := e2.GridOrder("Traces"); g != "zorder(lat,lon)" {
		t.Errorf("GridOrder: %q", g)
	}
	orders2, _ := e2.OrderList("Traces")
	if len(orders2) != 0 {
		t.Errorf("grid table should expose no row orders: %+v", orders2)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := ""
	var rows []value.Row
	{
		e, f, p := newEngine(t)
		path = p
		e.Create("Traces", tracesSchema(), "zorder(grid[lat,lon; 8,8](Traces))")
		rows = traceRows(400)
		if err := e.Load("Traces", rows); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	f, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cat, err := catalog.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(f, cat, nil)
	cur, err := e.Scan("Traces", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, drain(t, cur), rows)
}

func TestFoldedLayoutScan(t *testing.T) {
	e, _, _ := newEngine(t)
	schema := value.MustSchema(
		value.Field{Name: "area", Type: value.Int},
		value.Field{Name: "zip", Type: value.Int},
	)
	if err := e.Create("Areas", schema, "fold[zip; area](Areas)"); err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.NewInt(617), value.NewInt(2139)},
		{value.NewInt(212), value.NewInt(10001)},
		{value.NewInt(617), value.NewInt(2142)},
	}
	if err := e.Load("Areas", rows); err != nil {
		t.Fatal(err)
	}
	cur, err := e.Scan("Areas", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	if len(got) != 2 {
		t.Fatalf("folded groups: %d", len(got))
	}
	if got[0][0].Int() != 617 || got[0][1].Len() != 2 {
		t.Errorf("group 0: %v", got[0])
	}
	// Folded layouts reject Insert (reorganize-only).
	if err := e.Insert("Areas", rows[:1]); err == nil {
		t.Error("insert into folded layout should fail")
	}
}

func TestSelectLayoutFiltersAtLoad(t *testing.T) {
	e, _, rows := setup(t, "select[lat >= 42.36](Traces)", 300)
	cur, _ := e.Scan("Traces", ScanOptions{})
	got := drain(t, cur)
	want := 0
	for _, r := range rows {
		if r[1].Float() >= 42.36 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("select layout stored %d rows, want %d", len(got), want)
	}
}

func TestCreateErrors(t *testing.T) {
	e, _, _ := newEngine(t)
	s := tracesSchema()
	if err := e.Create("Traces", s, "rows(Traces)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Create("Traces", s, "rows(Traces)"); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := e.Create("Other", s, "rows(Traces)"); err == nil {
		t.Error("layout for wrong table should fail")
	}
	if err := e.Create("Bad", s, "this is not algebra ("); err == nil {
		t.Error("unparseable layout should fail")
	}
	if err := e.Create("Bad2", s, "project[bogus](Bad2)"); err == nil {
		t.Error("invalid layout should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	e, _, _ := newEngine(t)
	e.Create("Traces", tracesSchema(), "rows(Traces)")
	bad := []value.Row{{value.NewInt(1)}}
	if err := e.Load("Traces", bad); err == nil {
		t.Error("arity mismatch should fail")
	}
	good := traceRows(10)
	if err := e.Load("Traces", good); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Traces", good); err == nil {
		t.Error("double load should fail")
	}
	if err := e.Load("Missing", good); err == nil {
		t.Error("load into missing table should fail")
	}
}

func TestDropFreesPages(t *testing.T) {
	e, f, _ := setup(t, "rows(Traces)", 2000)
	used := f.NumPages()
	if err := e.Drop("Traces"); err != nil {
		t.Fatal(err)
	}
	if got := f.NumPages(); got >= used {
		t.Errorf("drop did not free pages: %d -> %d", used, got)
	}
	if _, err := e.Scan("Traces", ScanOptions{}); err == nil {
		t.Error("scan of dropped table should fail")
	}
}

func TestFoldStrategiesAgree(t *testing.T) {
	schema := value.MustSchema(
		value.Field{Name: "area", Type: value.Int},
		value.Field{Name: "zip", Type: value.Int},
	)
	rows := make([]value.Row, 200)
	r := rand.New(rand.NewSource(5))
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(r.Intn(10))), value.NewInt(int64(r.Intn(100000)))}
	}
	run := func(strategy FoldStrategy) []value.Row {
		e, _, _ := newEngine(t)
		e.Fold = strategy
		e.Create("Areas", schema, "fold[zip; area](Areas)")
		if err := e.Load("Areas", rows); err != nil {
			t.Fatal(err)
		}
		cur, err := e.Scan("Areas", ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, cur)
	}
	h := run(FoldHash)
	nl := run(FoldNestedLoop)
	if len(h) != len(nl) {
		t.Fatalf("group counts differ: %d vs %d", len(h), len(nl))
	}
	for i := range h {
		if rowKey(h[i]) != rowKey(nl[i]) {
			t.Fatalf("row %d differs between strategies", i)
		}
	}
}
