package table

// Leveled run storage (ROADMAP item 3, after CobbleDB's composition of LSM
// runs in storage-algebra terms): a table whose layout carries a compaction
// directive — sizetiered[k](...) or leveled[k](...) — keeps its data as a
// hierarchy of runs instead of one monolithic rendering. Unorganized tail
// batches are level 0; a fold renders all current tails into one organized
// level-1 run; compaction folds whole levels into the next. Every fold is
// O(the folded runs), never O(table), so write amplification under sustained
// ingest stays bounded by the hierarchy depth instead of growing linearly
// with table size (the degradation Ext-15 measures on the default path).
//
// Invariant: catalog.Table.Runs is kept in chronological order, oldest data
// first, which coincides with non-increasing levels (a level-L run is always
// newer than every level-(L+1) run: tail folds append the newest data at
// level 1, and a level fold merges runs that are adjacent in age). Scans
// concatenate main segments, runs in slice order, then tails — global insert
// order, the same contract single-rendering tables have.
//
// Each run is organized: the layout's full pipeline (project, select,
// orderby, groupby) runs per fold, and the segment writer emits per-block
// zone maps, so zone pruning works run by run. Compositions whose physical
// mapping is inherently global (grid, fold, limit) are rejected with the
// compaction directive at compile time.
//
// Durability rides the PR-6 protocol unchanged: new run segments are written
// before the copy-on-write catalog swap, a checkpoint barrier precedes any
// free, superseded extents are deferred to the next checkpoint in durable
// mode, and a checkpoint after the flip drains them.

import (
	"fmt"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/layout"
	"rodentstore/internal/transforms"
	"rodentstore/internal/txn"
)

// CompactStats counts background/foreground fold work since the engine
// opened: incremental run folds, plus full re-renders that absorbed tails
// or runs (the plain path's O(table) merge). Bytes is the payload written
// by those folds — the write amplification Ext-15 reports per merge.
type CompactStats struct {
	Merges int64 // folds performed (tail folds + level folds)
	Rows   int64 // rows written into rendered runs
	Bytes  int64 // payload bytes written into rendered runs
}

// CompactStats returns a snapshot of the fold counters.
func (e *Engine) CompactStats() CompactStats {
	return CompactStats{
		Merges: e.statMerges.Load(),
		Rows:   e.statMergeRows.Load(),
		Bytes:  e.statMergeBytes.Load(),
	}
}

// Compact folds a table's accumulated tail batches into its run hierarchy
// and cascades level folds until its compaction policy is satisfied. Tables
// whose layout has no compaction directive (or with a pending lazy layout
// change) fall back to a full Reorganize — Compact is always safe to call.
// The background merge worker routes every triggered table through here.
func (e *Engine) Compact(name string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		spec, err := e.compile(tab.LayoutExpr)
		if err != nil {
			return err
		}
		if tab.NeedsReorg || spec.Compaction == nil {
			return e.reorganizeLocked(tab)
		}
		return e.compactLocked(tab, spec)
	})
}

// compactLocked runs the fold loop. Caller holds the exclusive table lock
// and has verified spec.Compaction is set.
func (e *Engine) compactLocked(tab *catalog.Table, spec *layout.Spec) error {
	e.dropInsertSnap(tab.Name)
	// Copy-on-write: all mutation happens on a private copy with fresh
	// slices; the one Put below swaps it in, so a concurrent checkpoint
	// flush never encodes a half-folded table.
	work := *tab
	cur := &work
	var freed []catalog.SegmentEntry

	// Level-0 fold: every current tail batch becomes one organized level-1
	// run (the newest run, so it appends at the end of the hierarchy).
	if len(cur.Tails) > 0 {
		run, err := e.renderRun(cur, spec, nil, cur.Tails, 1)
		if err != nil {
			return err
		}
		for _, batch := range cur.Tails {
			freed = append(freed, batch...)
		}
		cur.Runs = append(append([]catalog.RunEntry(nil), cur.Runs...), run)
		cur.Tails = nil
	}

	// Cascade: fold whole levels into the next until the policy holds.
	for {
		lo, hi, level, ok := pickFold(cur.Runs, spec)
		if !ok {
			break
		}
		run, err := e.renderRun(cur, spec, cur.Runs[lo:hi], nil, level)
		if err != nil {
			return err
		}
		for _, r := range cur.Runs[lo:hi] {
			freed = append(freed, r.Segments...)
		}
		runs := append([]catalog.RunEntry(nil), cur.Runs[:lo]...)
		runs = append(runs, run)
		cur.Runs = append(runs, cur.Runs[hi:]...)
	}

	if len(freed) == 0 {
		return nil // nothing triggered; catalog untouched
	}
	// A fold reorders every position past the immutable main prefix, so
	// indexes whose coverage extends beyond it describe stale positions.
	var mainRows int64
	if len(cur.Segments) > 0 {
		mainRows = cur.Segments[0].Meta.Rows
	}
	var kept []catalog.IndexMeta
	for _, ix := range cur.Indexes {
		if ix.Rows <= mainRows {
			kept = append(kept, ix)
		}
	}
	cur.Indexes = kept

	if err := e.checkpointBeforeFree(); err != nil {
		return err
	}
	if err := e.cat.Put(cur); err != nil {
		return err
	}
	for _, s := range freed {
		if err := e.freeSegment(s.Meta); err != nil {
			return err
		}
	}
	return e.checkpointAfterFlip()
}

// renderRun reads the given runs and tail batches back in chronological
// order, re-applies the layout pipeline, and writes one organized run at the
// given level. It does not touch the catalog — the caller swaps the record.
func (e *Engine) renderRun(tab *catalog.Table, spec *layout.Spec, runs []catalog.RunEntry, tails [][]catalog.SegmentEntry, level int) (catalog.RunEntry, error) {
	view := *tab
	view.Segments = nil
	view.Runs = runs
	view.Tails = tails
	rows, readSchema, err := e.readAllRows(&view)
	if err != nil {
		return catalog.RunEntry{}, err
	}
	logical, err := tab.Schema()
	if err != nil {
		return catalog.RunEntry{}, err
	}
	if readSchema.String() != logical.String() {
		// The stored form dropped attributes (e.g. project[lat,lon]); run
		// the pipeline against what is actually stored, as Reorganize does.
		spec, err = e.compileAgainst(tab.LayoutExpr, tab.Name, readSchema)
		if err != nil {
			return catalog.RunEntry{}, fmt.Errorf("table: compact %q: layout needs attributes the stored form dropped: %w", tab.Name, err)
		}
	}
	rel := transforms.Relation{Schema: readSchema, Rows: rows}
	rel, err = e.applySteps(rel, spec, false)
	if err != nil {
		return catalog.RunEntry{}, err
	}
	entries := make([]catalog.SegmentEntry, 0, len(spec.Segments))
	var bytes uint64
	for _, def := range spec.Segments {
		entry, err := e.writeSegment(rel, def, spec.RowsPerBlock, nil)
		if err != nil {
			return catalog.RunEntry{}, err
		}
		bytes += entry.Meta.UsedBytes
		entries = append(entries, entry)
	}
	e.statMerges.Add(1)
	e.statMergeRows.Add(int64(len(rel.Rows)))
	e.statMergeBytes.Add(int64(bytes))
	return catalog.RunEntry{Level: level, Rows: int64(len(rel.Rows)), Segments: entries}, nil
}

// pickFold selects the next fold: the contiguous range runs[lo:hi) to merge
// and the level of the resulting run. ok=false means the policy is
// satisfied. Runs are grouped by level (contiguous by the chronological
// invariant) and checked newest level first.
func pickFold(runs []catalog.RunEntry, spec *layout.Spec) (lo, hi, level int, ok bool) {
	comp := spec.Compaction
	if len(runs) == 0 || comp == nil {
		return 0, 0, 0, false
	}
	type group struct {
		level, lo, hi int
		rows          int64
	}
	var groups []group
	for i, r := range runs {
		if n := len(groups); n > 0 && groups[n-1].level == r.Level {
			groups[n-1].hi = i + 1
			groups[n-1].rows += r.Rows
		} else {
			groups = append(groups, group{level: r.Level, lo: i, hi: i + 1, rows: r.Rows})
		}
	}
	for i := len(groups) - 1; i >= 0; i-- {
		g := groups[i]
		switch comp.Kind {
		case algebra.CompactSizeTiered:
			// A level folds once it accumulates Fanout runs.
			if g.hi-g.lo >= comp.Fanout {
				return g.lo, g.hi, g.level + 1, true
			}
		case algebra.CompactLeveled:
			// At most one run per level: merge duplicates in place first.
			if g.hi-g.lo > 1 {
				return g.lo, g.hi, g.level, true
			}
			// A run that outgrows its level's target merges into the level
			// above (together with that level's run, if present).
			if g.rows >= targetRows(spec, g.level) {
				lo := g.lo
				if i > 0 && groups[i-1].level == g.level+1 {
					lo = groups[i-1].lo
				}
				return lo, g.hi, g.level + 1, true
			}
		}
	}
	return 0, 0, 0, false
}

// targetRows is the leveled policy's per-level size target: one block of
// rows at level 0, growing by the fanout per level — so each promotion
// rewrites geometrically more data geometrically less often.
func targetRows(spec *layout.Spec, level int) int64 {
	t := int64(spec.RowsPerBlock)
	for i := 0; i < level; i++ {
		t *= int64(spec.Compaction.Fanout)
		if t > 1<<40 {
			break
		}
	}
	return t
}

// compactionOf returns the compaction policy of a layout expression, or nil
// when the layout has none (or does not compile — callers surface compile
// errors on their own paths).
func (e *Engine) compactionOf(layoutExpr string) *layout.CompactionSpec {
	spec, err := e.compile(layoutExpr)
	if err != nil {
		return nil
	}
	return spec.Compaction
}
