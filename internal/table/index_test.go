package table

import (
	"testing"

	"rodentstore/internal/algebra"
)

func TestCreateIndexAndScan(t *testing.T) {
	e, f, rows := setup(t, "chunk[64](rows(Traces))", 4000)
	if err := e.CreateIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
	idx, err := e.Indexes("Traces")
	if err != nil || len(idx) != 1 || idx[0] != "t" {
		t.Fatalf("indexes: %v %v", idx, err)
	}

	pred, _ := algebra.ParsePredicate("t >= 100 and t < 120")
	cur, err := e.IndexScan("Traces", nil, pred, "t")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	var want []int
	schema := tracesSchema()
	for _, r := range rows {
		if pred.Eval(schema, r) {
			want = append(want, 1)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("index scan: got %d rows, want %d", len(got), len(want))
	}
	for _, r := range got {
		if r[0].Int() < 100 || r[0].Int() >= 120 {
			t.Fatalf("row outside range: %v", r)
		}
	}

	// The index scan must read far fewer pages than the (zone-pruning
	// disabled) full scan on this unordered heap.
	f.ResetStats()
	cur2, _ := e.IndexScan("Traces", []string{"t"}, pred, "t")
	drain(t, cur2)
	idxPages := f.Stats().PageReads

	f.ResetStats()
	cur3, _ := e.Scan("Traces", ScanOptions{Fields: []string{"t"}, Pred: pred, NoZonePrune: true})
	drain(t, cur3)
	fullPages := f.Stats().PageReads
	if idxPages*3 > fullPages {
		t.Errorf("index scan should be much cheaper: idx=%d full=%d pages", idxPages, fullPages)
	}
}

func TestIndexScanWithProjectionAndExtraPredicate(t *testing.T) {
	e, _, _ := setup(t, "rows(Traces)", 1000)
	if err := e.CreateIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
	// Conjunct on a non-indexed field is post-filtered.
	pred, _ := algebra.ParsePredicate(`t >= 10 and t < 500 and id = "car-1"`)
	cur, err := e.IndexScan("Traces", []string{"t", "id"}, pred, "t")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	if len(got) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range got {
		if r[1].Str() != "car-1" {
			t.Fatalf("post-filter failed: %v", r)
		}
		if len(r) != 2 {
			t.Fatalf("projection width: %d", len(r))
		}
	}
}

func TestIndexErrors(t *testing.T) {
	e, _, _ := setup(t, "rows(Traces)", 100)
	if err := e.CreateIndex("Traces", "bogus"); err == nil {
		t.Error("indexing unknown field should fail")
	}
	if err := e.CreateIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("Traces", "t"); err == nil {
		t.Error("duplicate index should fail")
	}
	pred, _ := algebra.ParsePredicate("lat > 0")
	if _, err := e.IndexScan("Traces", nil, pred, "lat"); err == nil {
		t.Error("index scan without index should fail")
	}
	if _, err := e.IndexScan("Traces", nil, algebra.True, "t"); err == nil {
		t.Error("index scan without bounds should fail")
	}
	if err := e.DropIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("Traces", "t"); err == nil {
		t.Error("double drop should fail")
	}
	// Projected-away field cannot be indexed.
	e2, _, _ := setup(t, "project[lat,lon](Traces)", 100)
	if err := e2.CreateIndex("Traces", "t"); err == nil {
		t.Error("indexing dropped field should fail")
	}
}

func TestIndexSurvivesInsertDroppedOnReorg(t *testing.T) {
	e, _, _ := setup(t, "orderby[t](Traces)", 200)
	e.CreateIndex("Traces", "t")
	// Tail-only appends shift no positions in the main rendering: the index
	// survives and IndexScan covers the unindexed suffix by post-scan.
	if err := e.Insert("Traces", traceRows(10)); err != nil {
		t.Fatal(err)
	}
	if idx, _ := e.Indexes("Traces"); len(idx) != 1 {
		t.Error("tail-only insert should not drop indexes")
	}
	pred, _ := algebra.ParsePredicate("t >= 0 and t < 5")
	cur, err := e.IndexScan("Traces", []string{"t"}, pred, "t")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	// 200 indexed rows + 10 tail rows, traceRows assigns t = i in order:
	// t in [0,5) matches 5 rows from the main rendering and 5 from the tail.
	if len(got) != 10 {
		t.Errorf("index scan over main+tail: got %d rows, want 10", len(got))
	}
	// Rewrites shift positions; the index must go.
	if err := e.Reorganize("Traces"); err != nil {
		t.Fatal(err)
	}
	if idx, _ := e.Indexes("Traces"); len(idx) != 0 {
		t.Error("reorganize should drop indexes")
	}
}

func TestIndexOnStringField(t *testing.T) {
	e, _, rows := setup(t, "rows(Traces)", 600)
	if err := e.CreateIndex("Traces", "id"); err != nil {
		t.Fatal(err)
	}
	pred, _ := algebra.ParsePredicate(`id = "car-2"`)
	cur, err := e.IndexScan("Traces", nil, pred, "id")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	want := 0
	for _, r := range rows {
		if r[3].Str() == "car-2" {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("string index: got %d want %d", len(got), want)
	}
}
