package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/value"
)

// vecSchema is the differential-test schema: one column per vectorizable
// kind plus spatial floats for grid layouts.
func vecSchema() *value.Schema {
	return value.MustSchema(
		value.Field{Name: "t", Type: value.Int},
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
		value.Field{Name: "s", Type: value.Str},
		value.Field{Name: "b", Type: value.Bool},
	)
}

func vecRows(r *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(r.Intn(7))),
			value.NewFloat(r.Float64() * 100),
			value.NewFloat(r.Float64() * 100),
			value.NewString(fmt.Sprintf("s%d", r.Intn(5))),
			value.NewBool(r.Intn(2) == 0),
		}
	}
	return rows
}

// vecLayouts samples the layout space: plain rows, pure columns, column
// groups, ordered, gridded, and codec-compressed variants.
var vecLayouts = []string{
	"chunk[64](rows(T))",
	"chunk[64](cols(T))",
	"chunk[64](colgroup[t,a](T))",
	"chunk[64](orderby[t](rows(T)))",
	"chunk[64](zorder(grid[x,y; 8,8](rows(T))))",
	"chunk[64](delta[x,y](zorder(grid[x,y; 8,8](rows(T)))))",
	"chunk[64](dict[s](rle[a](delta[t](cols(T)))))",
	"chunk[64](bitpack[a](rows(T)))",
}

// vecPreds samples the predicate space (conjunctions over every kind).
func vecPred(r *rand.Rand) algebra.Predicate {
	ops := []algebra.CmpOp{algebra.OpEq, algebra.OpNe, algebra.OpLt, algebra.OpLe, algebra.OpGt, algebra.OpGe}
	p := algebra.True
	for n := r.Intn(3); n >= 0; n-- {
		op := ops[r.Intn(len(ops))]
		switch r.Intn(5) {
		case 0:
			p = p.And("t", op, value.NewInt(int64(r.Intn(3000))))
		case 1:
			p = p.And("a", op, value.NewFloat(float64(r.Intn(7))-0.5)) // cross-numeric
		case 2:
			p = p.And("x", op, value.NewFloat(r.Float64()*100))
		case 3:
			p = p.And("s", op, value.NewString(fmt.Sprintf("s%d", r.Intn(5))))
		default:
			p = p.And("b", op, value.NewBool(r.Intn(2) == 0))
		}
	}
	return p
}

func vecProj(r *rand.Rand) []string {
	switch r.Intn(4) {
	case 0:
		return nil // all fields
	case 1:
		return []string{"x", "y"}
	case 2:
		return []string{"s", "t"}
	default:
		return []string{"a"}
	}
}

// TestVectorizedScanDifferential is the differential property test of the
// vectorized executor: across layouts, codecs, projections, predicates,
// tails, zone pruning and parallelism, every execution strategy must return
// rows identical to the boxed serial oracle, via Next and via NextBatch.
func TestVectorizedScanDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	rows := vecRows(r, 3000)
	for _, layoutExpr := range vecLayouts {
		layoutExpr := layoutExpr
		t.Run(layoutExpr, func(t *testing.T) {
			e, _, _ := newEngine(t)
			if err := e.Create("T", vecSchema(), layoutExpr); err != nil {
				t.Fatal(err)
			}
			if err := e.Load("T", rows[:2500]); err != nil {
				t.Fatal(err)
			}
			// Tail batches exercise the multi-part paths.
			if err := e.Insert("T", rows[2500:]); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 12; trial++ {
				pred := vecPred(r)
				fields := vecProj(r)
				noZone := r.Intn(2) == 0
				base := ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone}

				oracleOpts := base
				oracleOpts.NoVectorize = true
				oracle, err := e.Scan("T", oracleOpts)
				if err != nil {
					t.Fatal(err)
				}
				want := drain(t, oracle)
				oracle.Close()

				variants := []struct {
					name  string
					opts  ScanOptions
					batch bool
				}{
					{"vec-serial-next", base, false},
					{"vec-serial-batch", base, true},
					{"vec-coalesce", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Coalesce: true}, false},
					{"vec-prefetch", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Prefetch: true}, true},
					{"boxed-coalesce", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Coalesce: true, NoVectorize: true}, false},
					{"boxed-prefetch", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Prefetch: true, NoVectorize: true}, false},
					{"vec-parallel-prefetch", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Parallel: true, Workers: 4, Prefetch: true}, true},
					{"vec-parallel-next", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Parallel: true, Workers: 4}, false},
					{"vec-parallel-batch", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Parallel: true, Workers: 4}, true},
					{"boxed-parallel", ScanOptions{Fields: fields, Pred: pred, NoZonePrune: noZone, Parallel: true, Workers: 4, NoVectorize: true}, false},
				}
				for _, v := range variants {
					cur, err := e.Scan("T", v.opts)
					if err != nil {
						t.Fatal(err)
					}
					var got []value.Row
					if v.batch {
						for {
							b, ok, err := cur.NextBatch()
							if err != nil {
								t.Fatal(err)
							}
							if !ok {
								break
							}
							for i := 0; i < b.Len(); i++ {
								got = append(got, b.Row(i))
							}
						}
					} else {
						got = drain(t, cur)
					}
					cur.Close()
					if len(got) != len(want) {
						t.Fatalf("trial %d %s pred=%q fields=%v noZone=%v: %d rows, oracle %d",
							trial, v.name, pred, fields, noZone, len(got), len(want))
					}
					for i := range want {
						for c := range want[i] {
							if !value.Equal(got[i][c], want[i][c]) {
								t.Fatalf("trial %d %s pred=%q row %d col %d: %v != %v",
									trial, v.name, pred, i, c, got[i][c], want[i][c])
							}
						}
					}
				}
			}
		})
	}
}

// TestVectorizedScanMixedNextAndBatch drains a cursor alternating Next and
// NextBatch and checks nothing is lost or duplicated at the seams.
func TestVectorizedScanMixedNextAndBatch(t *testing.T) {
	e, _, _ := newEngine(t)
	if err := e.Create("T", vecSchema(), "chunk[64](rows(T))"); err != nil {
		t.Fatal(err)
	}
	rows := vecRows(rand.New(rand.NewSource(5)), 1000)
	if err := e.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	oracle, err := e.Scan("T", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, oracle)
	oracle.Close()

	cur, err := e.Scan("T", ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	r := rand.New(rand.NewSource(6))
	var got []value.Row
	for {
		if r.Intn(2) == 0 {
			row, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, row)
			continue
		}
		b, ok, err := cur.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for i := 0; i < b.Len(); i++ {
			got = append(got, b.Row(i))
		}
	}
	if !rowsEqual(got, want) {
		t.Fatalf("mixed iteration diverged: %d vs %d rows", len(got), len(want))
	}
}

// TestVectorizedScanPagesIdentical checks the executor does not change I/O
// accounting: vectorized and boxed serial scans read the same pages and
// seeks — the invariant the paper-figure experiments stand on.
func TestVectorizedScanPagesIdentical(t *testing.T) {
	e, f, _ := newEngine(t)
	if err := e.Create("T", vecSchema(), "chunk[64](zorder(grid[x,y; 8,8](rows(T))))"); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("T", vecRows(rand.New(rand.NewSource(9)), 4000)); err != nil {
		t.Fatal(err)
	}
	pred := algebra.True.
		And("x", algebra.OpGe, value.NewFloat(20)).
		And("x", algebra.OpLt, value.NewFloat(40))
	measure := func(noVec bool) (uint64, uint64) {
		f.ResetStats()
		cur, err := e.Scan("T", ScanOptions{Fields: []string{"x", "y"}, Pred: pred, NoVectorize: noVec})
		if err != nil {
			t.Fatal(err)
		}
		drain(t, cur)
		cur.Close()
		s := f.Stats()
		return s.PageReads, s.Seeks
	}
	boxedPages, boxedSeeks := measure(true)
	vecPages, vecSeeks := measure(false)
	if boxedPages != vecPages || boxedSeeks != vecSeeks {
		t.Fatalf("I/O accounting diverged: boxed %d pages/%d seeks, vectorized %d/%d",
			boxedPages, boxedSeeks, vecPages, vecSeeks)
	}
	if boxedPages == 0 {
		t.Fatal("measurement read no pages")
	}
}

// TestPooledBatchStress hammers the shared batch pool from many concurrent
// cursors — serial and parallel, Next and NextBatch — so the race detector
// can see any cross-goroutine batch reuse bug.
func TestPooledBatchStress(t *testing.T) {
	e, _, _ := newEngine(t)
	if err := e.Create("T", vecSchema(), "chunk[64](zorder(grid[x,y; 8,8](rows(T))))"); err != nil {
		t.Fatal(err)
	}
	rows := vecRows(rand.New(rand.NewSource(21)), 4000)
	if err := e.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	pred := algebra.True.And("x", algebra.OpLt, value.NewFloat(50))
	oracle, err := e.Scan("T", ScanOptions{Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, oracle)
	oracle.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				opts := ScanOptions{Pred: pred, Parallel: g%2 == 0, Workers: 3}
				cur, err := e.Scan("T", opts)
				if err != nil {
					errs <- err
					return
				}
				n := 0
				if g%3 == 0 {
					for {
						b, ok, err := cur.NextBatch()
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							break
						}
						// Touch every cell so the race detector sees reads of
						// pooled memory.
						for i := 0; i < b.Len(); i++ {
							_ = b.Row(i)
							n++
						}
					}
				} else {
					for {
						_, ok, err := cur.Next()
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							break
						}
						n++
					}
				}
				cur.Close()
				if n != len(want) {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", g, n, len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
