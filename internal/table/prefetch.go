package table

// The scan I/O pipeline: coalesced run reads and asynchronous prefetch.
//
// A scan's block list is planned into runs of physically adjacent blocks
// (buildRuns). With ScanOptions.Coalesce the cursor fetches each run's bytes
// with one large positional read (segment.PreloadRun) instead of one range
// read per block; with ScanOptions.Prefetch a per-scan prefetcher goroutine
// additionally reads the NEXT run on cloned readers while the current one
// decodes — classic double buffering, bounded to two buffer sets.
//
// Ownership follows the lease discipline the rest of the scan pipeline uses
// (see the leaselease analyzer): every prefetched buffer set is leased from
// the prefetcher via LeaseRun, whose release func is the single point that
// recycles it. A set is released exactly when no reader references it any
// more — after every reader of the part has adopted the next run's bytes
// (or dropped its run) — on every path: normal advance, quarantine retry,
// early Close, and abandoned-cursor cleanup.
//
// Error handling preserves the quarantine semantics of per-block reads: a
// coalesced read that fails mid-run still yields its verified prefix, and
// only the failed tail [b, hi) is retried (fetchTail) — never blocks that
// already read cleanly. A tail that cannot be read at all surfaces the error
// on the exact block that needs it, so quarState retries/records that block
// like any other.

import (
	"sync"
	"sync/atomic"

	"rodentstore/internal/segment"
)

// scanIO are the cursor-internal knobs of the scan I/O pipeline.
type scanIO struct {
	coalesce, prefetch bool
}

// Run planning bounds: a run stops growing at runMaxBlocks blocks or when
// its byte span exceeds runByteBudget (per segment), whichever comes first.
// 1 MiB is large enough to amortize per-read overhead on any disk yet small
// enough that double buffering stays a bounded fraction of scan memory.
const (
	runByteBudget = 1 << 20
	runMaxBlocks  = 64
)

// segRun is one planned run: blocks [lo, hi) of one part, physically
// adjacent in every segment of the part (block indices are shared across a
// part's segments).
type segRun struct {
	part   int
	lo, hi int
}

// buildRuns coalesces an ordered block sequence into runs, reusing dst's
// capacity. Only immediately adjacent blocks of the same part coalesce; a
// pruning gap starts a new run (re-reading pruned blocks to bridge a gap
// would defeat the pruning).
func buildRuns(dst []segRun, seq []blockRef, parts []*part) []segRun {
	dst = dst[:0]
	for _, ref := range seq {
		p := parts[ref.part]
		blocks := p.entries[firstReadSeg(p)].Meta.Blocks
		if n := len(dst); n > 0 {
			r := &dst[n-1]
			if r.part == ref.part && ref.block == r.hi && r.hi-r.lo < runMaxBlocks {
				first, last := blocks[r.lo], blocks[ref.block]
				if last.Off+uint64(last.Len)-first.Off <= runByteBudget {
					r.hi = ref.block + 1
					continue
				}
			}
		}
		dst = append(dst, segRun{part: ref.part, lo: ref.block, hi: ref.block + 1})
	}
	return dst
}

// segBuf is one segment's fetched run bytes within a prefetched set.
type segBuf struct {
	si   int // segment index within the part
	data []byte
	good int // leading blocks of the run fully covered by data
}

// runFetch is one completed prefetch: the run, its per-segment buffers, the
// number of leading blocks covered by EVERY segment, and the first fetch
// error (the tail past good, if any).
type runFetch struct {
	run  segRun
	segs []segBuf
	good int
	err  error
}

// prefetchInFlight counts leased-and-unreleased prefetch sets across all
// scans; tests assert it returns to zero after Close under fault injection.
var prefetchInFlight atomic.Int64

// errPrefetchClosed reports a lease attempt on a closed prefetcher; the
// loader degrades to synchronous reads.
type prefetchClosedError struct{}

func (prefetchClosedError) Error() string { return "table: prefetcher closed" }

var errPrefetchClosed = prefetchClosedError{}

// prefetcher reads runs ahead of the scan on its own goroutine, over its own
// reader clones (segment.FetchRunInto touches no mutable reader state, and
// the clones are the prefetcher's alone). One request may be outstanding at
// a time (reqs/outs are buffered(1)); buffer sets cycle through free, so at
// most two sets exist: the one the scan decodes and the one being fetched.
type prefetcher struct {
	parts  []*part
	clones [][]*segment.Reader // lazily built, owned by the loop goroutine
	reqs   chan segRun
	outs   chan runFetch
	free   chan []segBuf
	done   chan struct{}
	stop   sync.Once
	wg     sync.WaitGroup
}

func newPrefetcher(parts []*part) *prefetcher {
	pf := &prefetcher{
		parts:  parts,
		clones: make([][]*segment.Reader, len(parts)),
		reqs:   make(chan segRun, 1),
		outs:   make(chan runFetch, 1),
		free:   make(chan []segBuf, 2),
		done:   make(chan struct{}),
	}
	pf.free <- nil // two buffer sets, allocated on first use
	pf.free <- nil
	pf.wg.Add(1)
	go pf.loop()
	return pf
}

func (pf *prefetcher) loop() {
	defer pf.wg.Done()
	for {
		var r segRun
		select {
		case r = <-pf.reqs:
		case <-pf.done:
			return
		}
		var segs []segBuf
		select {
		case segs = <-pf.free:
		case <-pf.done:
			return
		}
		rf := pf.fetch(r, segs)
		select {
		case pf.outs <- rf:
		case <-pf.done:
			return
		}
	}
}

// fetch reads run r's bytes for every needed segment of its part, reusing
// the buffers of a recycled set. Errors do not abort the set: each segment
// keeps its verified prefix and the first error rides along for the loader
// to surface on the first uncovered block.
func (pf *prefetcher) fetch(r segRun, prev []segBuf) runFetch {
	p := pf.parts[r.part]
	if pf.clones[r.part] == nil {
		rs := make([]*segment.Reader, len(p.readers))
		for si, rd := range p.readers {
			if rd != nil {
				rs[si] = rd.Clone()
			}
		}
		pf.clones[r.part] = rs
	}
	rf := runFetch{run: r, good: r.hi - r.lo}
	k := 0
	for si, rd := range pf.clones[r.part] {
		if rd == nil {
			continue
		}
		var buf []byte
		if k < len(prev) {
			buf = prev[k].data
		}
		k++
		data, good, err := rd.FetchRunInto(buf, r.lo, r.hi)
		rf.segs = append(rf.segs, segBuf{si: si, data: data, good: good})
		if good < rf.good {
			rf.good = good
		}
		if err != nil && rf.err == nil {
			rf.err = err
		}
	}
	return rf
}

// request hands the prefetcher its next run. It never blocks: the loader
// requests a new run only after leasing the previous result, so the
// buffered(1) channel always has room (the done case covers shutdown races).
func (pf *prefetcher) request(r segRun) {
	select {
	case pf.reqs <- r:
	case <-pf.done:
	}
}

// LeaseRun blocks until the outstanding request completes and leases its
// buffer set to the caller. The release func returns the set to the free
// list (idempotent); the caller must release on every path once no reader
// references the set's bytes anymore. The leaselease analyzer tracks these
// leases like page leases.
func (pf *prefetcher) LeaseRun() (runFetch, func() error, error) {
	select {
	case rf := <-pf.outs:
		prefetchInFlight.Add(1)
		segs := rf.segs
		var once sync.Once
		release := func() error {
			once.Do(func() {
				prefetchInFlight.Add(-1)
				select {
				case pf.free <- segs:
				default: // closed and drained: the set just dies with the prefetcher
				}
			})
			return nil
		}
		return rf, release, nil
	case <-pf.done:
		return runFetch{}, nil, errPrefetchClosed
	}
}

// close stops and joins the prefetch goroutine. Idempotent; safe to call
// from both Close and the abandoned-cursor cleanup.
func (pf *prefetcher) close() {
	pf.stop.Do(func() { close(pf.done) })
	pf.wg.Wait()
	select {
	case <-pf.outs: // fetched but never leased: just drop the set
	default:
	}
}

// runLoader drives one scan goroutine's I/O pipeline: it plans runs over the
// goroutine's block sequence, keeps the current run's bytes adopted in the
// goroutine's readers, and (with prefetch) keeps the next run's fetch in
// flight. The serial cursor owns one; each parallel worker owns its own.
type runLoader struct {
	parts []*part
	pf    *prefetcher // nil: synchronous coalescing only

	runs    []segRun
	cur     int // index into runs of the adopted run, -1 if none
	reqd    int // index of the run requested from pf, -1 if none
	covered int // leading blocks of runs[cur] served by adopted bytes
	tailErr error // pending error for block runs[cur].lo+covered, delivered once

	release func() error // lease on the adopted run's prefetched buffers
}

func newRunLoader(parts []*part, prefetch bool) *runLoader {
	rl := &runLoader{parts: parts, cur: -1, reqd: -1}
	if prefetch {
		rl.pf = newPrefetcher(parts)
	}
	return rl
}

// setSeq plans runs over a new block sequence (a morsel, or the serial
// cursor's whole block list) and starts the first prefetch. Any previous
// sequence must be fully decoded: its lease is released here, and readers'
// stale adopted spans are only ever behind the scan position, so they are
// never consulted again.
func (rl *runLoader) setSeq(seq []blockRef) {
	rl.releaseLease()
	rl.runs = buildRuns(rl.runs, seq, rl.parts)
	rl.cur, rl.reqd, rl.covered, rl.tailErr = -1, -1, 0, nil
	if rl.pf != nil && len(rl.runs) > 0 {
		rl.pf.request(rl.runs[0])
		rl.reqd = 0
	}
}

// releaseLease releases the adopted run's prefetch lease, if one is held.
func (rl *runLoader) releaseLease() {
	if rl.release != nil {
		_ = rl.release() // release only recycles buffers; it cannot fail
		rl.release = nil
	}
}

// close releases the current lease and stops the prefetcher.
func (rl *runLoader) close() {
	rl.releaseLease()
	if rl.pf != nil {
		rl.pf.close()
	}
}

// ensure makes ref's bytes resident in readers before the block decodes:
// within the adopted run it is a bounds check; at a run boundary it adopts
// the prefetched bytes (or fetches synchronously) and pipelines the next
// run. A nil loader (pipeline off) is a no-op. Errors surface exactly on the
// block that needs the failed bytes, so quarantine treats them like
// per-block read errors — and its retry, which calls ensure again, re-reads
// only the failed tail of the run.
func (rl *runLoader) ensure(ref blockRef, readers []*segment.Reader) error {
	if rl == nil {
		return nil
	}
	if rl.cur >= 0 {
		r := rl.runs[rl.cur]
		if ref.part == r.part && ref.block >= r.lo && ref.block < r.hi {
			if ref.block-r.lo < rl.covered {
				return nil
			}
			if rl.tailErr != nil {
				err := rl.tailErr
				rl.tailErr = nil
				return err
			}
			return rl.fetchTail(r, ref.block, readers)
		}
	}
	ri := -1
	for i := rl.cur + 1; i < len(rl.runs); i++ {
		r := rl.runs[i]
		if r.part == ref.part && ref.block >= r.lo && ref.block < r.hi {
			ri = i
			break
		}
	}
	if ri < 0 {
		return nil // not in any planned run: plain per-block read
	}
	return rl.enter(ri, readers)
}

// enter makes runs[ri] the current run: lease the prefetched set when the
// pipeline is in step, fall back to a synchronous coalesced read otherwise,
// and request the next run so the prefetcher works while this one decodes.
func (rl *runLoader) enter(ri int, readers []*segment.Reader) error {
	r := rl.runs[ri]
	rl.cur, rl.covered, rl.tailErr = ri, 0, nil
	if rl.pf == nil || rl.reqd != ri {
		// No prefetcher, or entry out of step with the request pipeline
		// (defensive: forward-only scans stay in step).
		return rl.fetchTail(r, r.lo, readers)
	}
	rf, release, err := rl.pf.LeaseRun()
	if err != nil {
		rl.reqd = -1 // prefetcher closed: degrade to synchronous reads
		return rl.fetchTail(r, r.lo, readers)
	}
	if ri+1 < len(rl.runs) {
		rl.pf.request(rl.runs[ri+1])
		rl.reqd = ri + 1
	} else {
		rl.reqd = -1
	}
	if rf.run != r {
		_ = release() // out-of-step delivery (defensive): discard it
		return rl.fetchTail(r, r.lo, readers)
	}
	if rf.good <= 0 {
		// Nothing usable: drop stale spans so no reader points at recycled
		// bytes, give both sets back, and surface the error on this block.
		for _, rd := range readers {
			if rd != nil {
				rd.DropRun()
			}
		}
		rl.releaseLease()
		_ = release()
		if rf.err != nil {
			return rf.err
		}
		return rl.fetchTail(r, r.lo, readers)
	}
	for _, sb := range rf.segs {
		if sb.si < len(readers) && readers[sb.si] != nil {
			readers[sb.si].AdoptRun(r.lo, sb.good, sb.data)
		}
	}
	// Every reader now points at the new set; the previous one is free.
	rl.releaseLease()
	rl.release = release
	rl.covered = rf.good
	if rf.err != nil && rf.good < r.hi-r.lo {
		rl.tailErr = rf.err
	}
	return nil
}

// fetchTail synchronously (re)reads blocks [b, r.hi) of the current run into
// the readers' own buffers — the sub-range retry: blocks before b already
// decoded cleanly and are never re-read. A partial tail keeps its verified
// prefix and parks the error for the first uncovered block; a tail that
// yields nothing fails this block (quarantine's backoff retry lands back
// here with the same b).
func (rl *runLoader) fetchTail(r segRun, b int, readers []*segment.Reader) error {
	// Drop adopted spans first: if the loop below stops early, a reader left
	// holding a recycled prefetch buffer must fall back to per-block reads,
	// not serve stale bytes.
	for _, rd := range readers {
		if rd != nil {
			rd.DropRun()
		}
	}
	rl.releaseLease()
	good := r.hi - b
	var firstErr error
	for _, rd := range readers {
		if rd == nil {
			continue
		}
		g, err := rd.PreloadRun(b, r.hi)
		if g < good {
			good = g
		}
		if err != nil {
			firstErr = err
			break
		}
	}
	rl.covered = b - r.lo + good
	if firstErr != nil {
		if good == 0 {
			return firstErr
		}
		rl.tailErr = firstErr
	}
	return nil
}
