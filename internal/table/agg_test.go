package table

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/segment"
	"rodentstore/internal/value"
)

// aggSchema covers every aggregate input kind plus group keys: small-domain
// ints and strings, floats with NaN/Inf/-0, huge ints for overflow, nulls
// in every nullable column.
func aggSchema() *value.Schema {
	return value.MustSchema(
		value.Field{Name: "t", Type: value.Int},
		value.Field{Name: "a", Type: value.Int},
		value.Field{Name: "x", Type: value.Float},
		value.Field{Name: "y", Type: value.Float},
		value.Field{Name: "s", Type: value.Str},
		value.Field{Name: "b", Type: value.Bool},
		value.Field{Name: "big", Type: value.Int},
	)
}

func aggRows(r *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		// Stored columns cannot hold nulls (compression isolates them);
		// null aggregation inputs come from expressions (x/0) and empty
		// groups instead.
		a := value.NewInt(int64(r.Intn(5))) // includes 0: division-by-zero food
		x := value.NewFloat(r.Float64()*200 - 100)
		switch r.Intn(40) {
		case 0:
			x = value.NewFloat(math.NaN())
		case 1:
			x = value.NewFloat(math.Copysign(0, -1)) // -0.0
		}
		y := value.NewFloat(r.Float64() * 10)
		big := value.NewInt(math.MaxInt64 - int64(r.Intn(3))) // sum overflows fast
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			a,
			x,
			y,
			value.NewString(fmt.Sprintf("g%d", r.Intn(4))),
			value.NewBool(r.Intn(2) == 0),
			big,
		}
	}
	return rows
}

// aggSpecs exercises every kernel (count/sum/min/max/avg × int/float ×
// grouped/ungrouped), expressions (widening, constants, division by zero,
// overflow) and group keys of every kind including floats with NaN and -0.
func aggSpecs() []AggSpec {
	mk := func(group []string, aggs ...string) AggSpec {
		var spec AggSpec
		spec.GroupBy = group
		for _, s := range aggs {
			item, err := ParseAggItem(s)
			if err != nil {
				panic(err)
			}
			spec.Items = append(spec.Items, item)
		}
		return spec
	}
	return []AggSpec{
		mk(nil, "count"),
		mk(nil, "count(a)", "sum(a)", "min(a)", "max(a)", "avg(a)"),
		mk(nil, "count(x)", "sum(x)", "min(x)", "max(x)", "avg(x)"),
		mk(nil, "sum(big)", "max(big)"), // int64 sum wraps
		mk(nil, "sum(t*a + 2)", "min(x*2.5 - y)", "avg(t / a)", "max(-t)"),
		mk([]string{"s"}, "count", "sum(a)", "avg(x)", "min(t)"),
		mk([]string{"a"}, "count", "min(t)", "max(t)"), // null group key
		mk([]string{"s", "b"}, "count", "sum(t)"),
		mk([]string{"x"}, "count", "max(y)"), // float keys: NaN, -0, nulls
	}
}

// aggOracle computes the spec row-at-a-time over the scanned rows in stored
// order — independent accumulation the engine variants are pinned to (float
// sums within tolerance; everything else exact).
func aggOracle(t *testing.T, spec AggSpec, schema *value.Schema, rows []value.Row) []value.Row {
	t.Helper()
	type group struct {
		key  value.Row
		accs []aggAcc
	}
	var exec []aggItemExec
	for _, it := range spec.Items {
		ie := aggItemExec{fn: it.Func, expr: it.Expr, kind: value.Int}
		if it.Expr != nil {
			k, err := algebra.ExprType(it.Expr, schema)
			if err != nil {
				t.Fatal(err)
			}
			ie.kind = k
		}
		exec = append(exec, ie)
	}
	keyIdx := make([]int, len(spec.GroupBy))
	for i, f := range spec.GroupBy {
		keyIdx[i] = schema.Index(f)
	}
	groups := make(map[string]*group)
	var order []string
	keyOf := func(row value.Row) (string, value.Row) {
		var sb strings.Builder
		key := make(value.Row, len(keyIdx))
		for i, ki := range keyIdx {
			v := row[ki]
			key[i] = v
			// Canonicalize float keys so -0 == +0 and NaN == NaN, matching
			// value.Equal.
			if v.Kind() == value.Float {
				f := v.Float()
				switch {
				case f == 0:
					sb.WriteString("f:0")
				case math.IsNaN(f):
					sb.WriteString("f:NaN")
				default:
					fmt.Fprintf(&sb, "f:%x", math.Float64bits(f))
				}
			} else {
				sb.WriteString(v.Kind().String())
				sb.WriteByte(':')
				sb.WriteString(v.String())
			}
			sb.WriteByte('|')
		}
		return sb.String(), key
	}
	for _, row := range rows {
		k, key := keyOf(row)
		g := groups[k]
		if g == nil {
			g = &group{key: key, accs: make([]aggAcc, len(exec))}
			for i := range g.accs {
				g.accs[i].grow(&exec[i], 1)
			}
			groups[k] = g
			order = append(order, k)
		}
		for ii := range exec {
			it := &exec[ii]
			acc := &g.accs[ii]
			if it.expr == nil {
				acc.count[0]++
				continue
			}
			v, err := algebra.EvalScalar(it.expr, schema, row)
			if err != nil {
				t.Fatal(err)
			}
			if v.IsNull() {
				continue
			}
			switch it.fn {
			case AggCount:
				acc.count[0]++
			case AggSum, AggAvg:
				if it.kind == value.Float {
					acc.sumF[0] += v.Float()
				} else {
					acc.sumI[0] += v.Int()
				}
				acc.count[0]++
			case AggMin, AggMax:
				if it.kind == value.Float {
					acc.foldMinMaxF(0, v.Float(), v.Float(), 1)
				} else {
					acc.foldMinMaxI(0, v.Int(), v.Int(), 1)
				}
			}
		}
	}
	if len(keyIdx) == 0 && len(order) == 0 {
		g := &group{accs: make([]aggAcc, len(exec))}
		for i := range g.accs {
			g.accs[i].grow(&exec[i], 1)
		}
		groups[""] = g
		order = append(order, "")
	}
	var out []value.Row
	for _, k := range order {
		g := groups[k]
		row := make(value.Row, len(keyIdx)+len(exec))
		copy(row, g.key)
		for ii := range exec {
			row[len(keyIdx)+ii] = exec[ii].finalize(&g.accs[ii], 0)
		}
		out = append(out, row)
	}
	if len(keyIdx) > 0 {
		keys := make([]int, len(keyIdx))
		for i := range keys {
			keys[i] = i
		}
		value.SortRows(out, keys, nil)
	}
	return out
}

// approxEqual compares oracle cells: exact under value.Equal, or within
// relative tolerance for floats (float sums reduce in a different
// association in the block-partial executors than in the row-order oracle).
func approxEqual(a, b value.Value) bool {
	if value.Equal(a, b) {
		return true
	}
	if a.Kind() != value.Float || b.Kind() != value.Float {
		return false
	}
	af, bf := a.Float(), b.Float()
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
	return math.Abs(af-bf) <= tol
}

// TestAggregateDifferential pins every aggregate kernel and typed
// expression to the boxed row oracle across serial/parallel ×
// vectorized/NoVectorize × zone-prune on/off. All engine variants must be
// bit-identical to each other (the block-partial merge order guarantees
// it, floats included) and match the independent row-order oracle.
func TestAggregateDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	rows := aggRows(r, 3000)
	preds := []algebra.Predicate{
		algebra.True, // 100% selectivity
		algebra.True.And("t", algebra.OpLt, value.NewInt(1500)),
		algebra.True.And("t", algebra.OpLt, value.NewInt(-1)), // empty selection
		algebra.True.And("x", algebra.OpGe, value.NewFloat(0)),
	}
	layouts := []string{
		"chunk[64](rows(T))",
		"chunk[64](dict[s](rle[a](delta[t](cols(T)))))",
		"chunk[64](orderby[s](rows(T)))",
		"chunk[64](zorder(grid[t,big; 8,8](rows(T))))", // grid dims must be non-null
	}
	for _, layoutExpr := range layouts {
		t.Run(layoutExpr, func(t *testing.T) {
			e, _, _ := newEngine(t)
			if err := e.Create("T", aggSchema(), layoutExpr); err != nil {
				t.Fatal(err)
			}
			if err := e.Load("T", rows[:2500]); err != nil {
				t.Fatal(err)
			}
			if err := e.Insert("T", rows[2500:]); err != nil {
				t.Fatal(err)
			}
			for pi, pred := range preds {
				// The oracle input: matching rows in stored order.
				plain, err := e.Scan("T", ScanOptions{Pred: pred})
				if err != nil {
					t.Fatal(err)
				}
				input := drain(t, plain)
				plain.Close()
				for si, spec := range aggSpecs() {
					spec := spec
					want := aggOracle(t, spec, aggSchema(), input)
					var exact []value.Row // first variant's rows: all others must match bit-for-bit
					for _, v := range []struct {
						name string
						opts ScanOptions
					}{
						{"vec-serial", ScanOptions{Pred: pred, Aggregate: &spec}},
						{"boxed-serial", ScanOptions{Pred: pred, Aggregate: &spec, NoVectorize: true}},
						{"vec-parallel", ScanOptions{Pred: pred, Aggregate: &spec, Parallel: true, Workers: 4}},
						{"boxed-parallel", ScanOptions{Pred: pred, Aggregate: &spec, Parallel: true, Workers: 4, NoVectorize: true}},
						{"vec-serial-nozone", ScanOptions{Pred: pred, Aggregate: &spec, NoZonePrune: true}},
						{"boxed-parallel-nozone", ScanOptions{Pred: pred, Aggregate: &spec, NoZonePrune: true, Parallel: true, Workers: 3, NoVectorize: true}},
					} {
						cur, err := e.Scan("T", v.opts)
						if err != nil {
							t.Fatal(err)
						}
						got := drain(t, cur)
						cur.Close()
						if len(got) != len(want) {
							t.Fatalf("pred %d spec %d %s: %d groups, oracle %d", pi, si, v.name, len(got), len(want))
						}
						for i := range want {
							for c := range want[i] {
								if !approxEqual(got[i][c], want[i][c]) {
									t.Fatalf("pred %d spec %d %s group %d col %d: %v, oracle %v",
										pi, si, v.name, i, c, got[i][c], want[i][c])
								}
							}
						}
						if exact == nil {
							exact = got
							continue
						}
						for i := range exact {
							for c := range exact[i] {
								if !value.Equal(got[i][c], exact[i][c]) {
									t.Fatalf("pred %d spec %d %s group %d col %d: %v, first variant %v (executor variants must be bit-identical)",
										pi, si, v.name, i, c, got[i][c], exact[i][c])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestAggregateEmptyTable: ungrouped aggregation over zero rows yields one
// row (count 0, null aggregates); grouped yields zero rows.
func TestAggregateEmptyTable(t *testing.T) {
	e, _, _ := newEngine(t)
	if err := e.Create("T", aggSchema(), "chunk[64](rows(T))"); err != nil {
		t.Fatal(err)
	}
	spec := AggSpec{Items: []AggItem{
		{Func: AggCount},
		{Func: AggSum, Expr: mustExpr(t, "a")},
		{Func: AggMin, Expr: mustExpr(t, "x")},
	}}
	cur, err := e.Scan("T", ScanOptions{Aggregate: &spec})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	cur.Close()
	if len(got) != 1 {
		t.Fatalf("ungrouped empty aggregate: %d rows, want 1", len(got))
	}
	if got[0][0].Int() != 0 || !got[0][1].IsNull() || !got[0][2].IsNull() {
		t.Fatalf("ungrouped empty aggregate row: %v", got[0])
	}

	gspec := AggSpec{GroupBy: []string{"s"}, Items: []AggItem{{Func: AggCount}}}
	cur, err = e.Scan("T", ScanOptions{Aggregate: &gspec, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	got = drain(t, cur)
	cur.Close()
	if len(got) != 0 {
		t.Fatalf("grouped empty aggregate: %d rows, want 0", len(got))
	}
}

func mustExpr(t *testing.T, s string) algebra.ScalarExpr {
	t.Helper()
	e, err := algebra.ParseScalarExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAggregateValidation: Aggregate is mutually exclusive with Fields and
// Order, rejects unknown columns and non-numeric expression inputs.
func TestAggregateValidation(t *testing.T) {
	e, _, _ := newEngine(t)
	if err := e.Create("T", aggSchema(), "chunk[64](rows(T))"); err != nil {
		t.Fatal(err)
	}
	spec := AggSpec{Items: []AggItem{{Func: AggCount}}}
	cases := []ScanOptions{
		{Aggregate: &spec, Fields: []string{"t"}},
		{Aggregate: &spec, Order: []algebra.OrderKey{{Field: "t"}}},
		{Aggregate: &AggSpec{}},
		{Aggregate: &AggSpec{GroupBy: []string{"nope"}, Items: spec.Items}},
		{Aggregate: &AggSpec{Items: []AggItem{{Func: AggSum, Expr: mustExpr(t, "s + 1")}}}},
		{Aggregate: &AggSpec{Items: []AggItem{{Func: AggSum, Expr: mustExpr(t, "nope")}}}},
		{Aggregate: &AggSpec{Items: []AggItem{{Func: AggSum}}}},
		{Aggregate: &AggSpec{Items: []AggItem{{Func: AggSum, Expr: mustExpr(t, "a")}, {Func: AggSum, Expr: mustExpr(t, "a")}}}},
	}
	for i, opts := range cases {
		if _, err := e.Scan("T", opts); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// TestAggregateCountReadsNoPages: a bare count(*) with no predicate answers
// from block metadata without reading a single data page.
func TestAggregateCountReadsNoPages(t *testing.T) {
	e, f, _ := newEngine(t)
	if err := e.Create("T", aggSchema(), "chunk[64](rows(T))"); err != nil {
		t.Fatal(err)
	}
	rows := aggRows(rand.New(rand.NewSource(3)), 2000)
	if err := e.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	f.ResetStats()
	spec := AggSpec{Items: []AggItem{{Func: AggCount}}}
	cur, err := e.Scan("T", ScanOptions{Aggregate: &spec})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cur)
	cur.Close()
	if len(got) != 1 || got[0][0].Int() != int64(len(rows)) {
		t.Fatalf("count(*) = %v, want %d", got, len(rows))
	}
	if reads := f.Stats().PageReads; reads != 0 {
		t.Fatalf("bare count(*) read %d pages, want 0", reads)
	}
}

// fakePart builds a part with just enough metadata for blockRowCount.
func fakePart(blockRows ...int) *part {
	var meta segment.Meta
	for _, n := range blockRows {
		meta.Blocks = append(meta.Blocks, segment.BlockMeta{Rows: n})
	}
	return &part{entries: []catalog.SegmentEntry{{Meta: meta}}}
}

// TestBuildMorsels checks the morsel queue construction: stored order
// preserved, part boundaries respected, sizes near the row target.
func TestBuildMorsels(t *testing.T) {
	// One part, 100 blocks of 64 rows.
	rowsPerBlock := make([]int, 100)
	for i := range rowsPerBlock {
		rowsPerBlock[i] = 64
	}
	p := fakePart(rowsPerBlock...)
	var blocks []blockRef
	for i := 0; i < 100; i++ {
		blocks = append(blocks, blockRef{part: 0, block: i})
	}
	morsels := buildMorsels(blocks, []*part{p}, 4)
	if len(morsels) < 2 {
		t.Fatalf("expected multiple morsels, got %d", len(morsels))
	}
	var flat []blockRef
	for _, m := range morsels {
		if len(m) == 0 {
			t.Fatal("empty morsel")
		}
		flat = append(flat, m...)
	}
	if len(flat) != len(blocks) {
		t.Fatalf("morsels cover %d blocks, want %d", len(flat), len(blocks))
	}
	for i := range flat {
		if flat[i] != blocks[i] {
			t.Fatalf("morsel order diverges at %d: %v != %v", i, flat[i], blocks[i])
		}
	}
	// Two parts: a morsel never spans parts.
	blocks2 := append(append([]blockRef{}, blocks[:10]...), blockRef{part: 1, block: 0})
	morsels2 := buildMorsels(blocks2, []*part{p, fakePart(64)}, 2)
	for _, m := range morsels2 {
		for _, ref := range m[1:] {
			if ref.part != m[0].part {
				t.Fatalf("morsel spans parts: %v", m)
			}
		}
	}
}

// TestMorselSchedulerStress hammers the morsel queue under the race
// detector: concurrent parallel scans and aggregations with worker counts
// from 1 to far beyond the morsel count, plus early closes mid-stream.
func TestMorselSchedulerStress(t *testing.T) {
	e, _, _ := newEngine(t)
	if err := e.Create("T", aggSchema(), "chunk[64](rows(T))"); err != nil {
		t.Fatal(err)
	}
	rows := aggRows(rand.New(rand.NewSource(11)), 4000)
	if err := e.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	pred := algebra.True.And("t", algebra.OpLt, value.NewInt(3000))
	oracle, err := e.Scan("T", ScanOptions{Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, oracle)
	oracle.Close()
	spec := AggSpec{GroupBy: []string{"s"}, Items: []AggItem{
		{Func: AggCount}, {Func: AggSum, Expr: mustExpr(t, "t")},
	}}
	aggCur, err := e.Scan("T", ScanOptions{Pred: pred, Aggregate: &spec})
	if err != nil {
		t.Fatal(err)
	}
	wantAgg := drain(t, aggCur)
	aggCur.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	workerCounts := []int{1, 2, 3, 7, 64} // 64 >> morsel count: cap must bite
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < 6; it++ {
				workers := workerCounts[r.Intn(len(workerCounts))]
				if g%4 == 0 {
					// Aggregation through the morsel pipeline.
					cur, err := e.Scan("T", ScanOptions{Pred: pred, Aggregate: &spec, Parallel: true, Workers: workers})
					if err != nil {
						errs <- err
						return
					}
					got := make([]value.Row, 0, len(wantAgg))
					for {
						row, ok, err := cur.Next()
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							break
						}
						got = append(got, row)
					}
					cur.Close()
					if !rowsEqual(got, wantAgg) {
						errs <- fmt.Errorf("goroutine %d: aggregate diverged", g)
						return
					}
					continue
				}
				cur, err := e.Scan("T", ScanOptions{Pred: pred, Parallel: true, Workers: workers})
				if err != nil {
					errs <- err
					return
				}
				if it%3 == 2 {
					// Early close mid-stream: workers must stop and join.
					for i := 0; i < 100; i++ {
						if _, ok, err := cur.Next(); err != nil || !ok {
							break
						}
					}
					cur.Close()
					continue
				}
				got := make([]value.Row, 0, len(want))
				for {
					row, ok, err := cur.Next()
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						break
					}
					got = append(got, row)
				}
				cur.Close()
				if !rowsEqual(got, want) {
					errs <- fmt.Errorf("goroutine %d: scan diverged (%d vs %d rows)", g, len(got), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
