package table

// Aggregation pushed below the cursor: an AggSpec on ScanOptions turns the
// scan into count/sum/min/max/avg (optionally grouped by stored columns)
// computed block-at-a-time with the vectorized kernels in internal/vec —
// no row is ever materialized, and a bare count(*) with no predicate reads
// no data pages at all (block metadata carries the row counts).
//
// Determinism: every executor variant — serial or parallel, vectorized or
// NoVectorize — produces bit-identical results, floats included. The
// invariant that makes this true: each block folds into its own partial
// state, and partials merge into the final state in stored block order, so
// float sums always reduce in the same association. The parallel pipeline's
// ordered merge provides exactly that order; the serial loop follows the
// same two-level shape instead of folding rows straight into the final
// state.
//
// Null semantics are SQL-ish: count(*) counts rows; count/sum/min/max/avg
// over an expression skip null inputs and return null (count: 0) when no
// non-null input exists. Output groups are sorted by key, ascending.

import (
	"fmt"
	"strings"

	"rodentstore/internal/algebra"
	"rodentstore/internal/segment"
	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

const (
	// AggCount counts rows (Expr nil) or non-null expression values.
	AggCount AggFunc = iota
	// AggSum sums expression values (int64 sums wrap).
	AggSum
	// AggMin takes the minimum expression value.
	AggMin
	// AggMax takes the maximum expression value.
	AggMax
	// AggAvg averages expression values (always a float).
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("aggfunc(%d)", uint8(f))
}

// AggItem is one aggregate output: Func over Expr (nil Expr = count(*)).
type AggItem struct {
	Func AggFunc
	Expr algebra.ScalarExpr
	// Name is the output column name; "" derives "func(expr)".
	Name string
}

// AggSpec turns a scan into an aggregation: one output row per distinct
// GroupBy key tuple (one row total when GroupBy is empty), sorted by key.
type AggSpec struct {
	// GroupBy lists stored columns to group on (empty = one global group).
	GroupBy []string
	// Items are the aggregate outputs, after the group keys.
	Items []AggItem
}

// ParseAggItem parses an aggregate string: "count", "count(*)",
// "sum(a*b)", "avg(price - cost) as margin", ...
func ParseAggItem(s string) (AggItem, error) {
	var item AggItem
	s = strings.TrimSpace(s)
	if i := strings.LastIndex(strings.ToLower(s), " as "); i >= 0 {
		item.Name = strings.TrimSpace(s[i+4:])
		s = strings.TrimSpace(s[:i])
	}
	open := strings.IndexByte(s, '(')
	fn, arg := s, ""
	if open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return item, fmt.Errorf("table: aggregate %q: missing ')'", s)
		}
		fn, arg = s[:open], strings.TrimSpace(s[open+1:len(s)-1])
	}
	switch strings.ToLower(strings.TrimSpace(fn)) {
	case "count":
		item.Func = AggCount
	case "sum":
		item.Func = AggSum
	case "min":
		item.Func = AggMin
	case "max":
		item.Func = AggMax
	case "avg":
		item.Func = AggAvg
	default:
		return item, fmt.Errorf("table: unknown aggregate function %q (want count/sum/min/max/avg)", fn)
	}
	if arg == "" || arg == "*" {
		if item.Func != AggCount {
			return item, fmt.Errorf("table: %s needs an expression argument", item.Func)
		}
		return item, nil
	}
	expr, err := algebra.ParseScalarExpr(arg)
	if err != nil {
		return item, err
	}
	item.Expr = expr
	return item, nil
}

// outName is the item's output column name.
func (a AggItem) outName() string {
	if a.Name != "" {
		return a.Name
	}
	if a.Expr == nil {
		return "count"
	}
	return a.Func.String() + "(" + a.Expr.String() + ")"
}

// ScanFields returns the stored columns the spec reads (group keys plus
// expression inputs), deduplicated in first-use order.
func (s *AggSpec) ScanFields() []string {
	var out []string
	seen := make(map[string]bool)
	for _, f := range s.GroupBy {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, it := range s.Items {
		if it.Expr == nil {
			continue
		}
		for _, f := range algebra.ExprFields(it.Expr) {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// aggItemExec is one compiled aggregate output.
type aggItemExec struct {
	fn   AggFunc
	expr algebra.ScalarExpr    // nil for count(*)
	ce   *algebra.CompiledExpr // vectorized evaluator; nil for count(*) or boxed mode
	kind value.Kind            // expression result kind (Int/Float); Int for count(*)
}

// aggExec is an AggSpec compiled against a cursor's decoded schema.
type aggExec struct {
	spec      *AggSpec
	decoded   *value.Schema
	pred      algebra.Predicate
	keyIdx    []int // group-by column positions in decoded
	keySchema *value.Schema
	items     []aggItemExec
	out       *value.Schema
	boxed     bool
}

// buildAggExec compiles spec against the decoded schema. boxed selects the
// row-at-a-time oracle executor (ScanOptions.NoVectorize).
func buildAggExec(spec *AggSpec, decoded *value.Schema, pred algebra.Predicate, boxed bool) (*aggExec, error) {
	if len(spec.Items) == 0 {
		return nil, fmt.Errorf("table: aggregate spec has no items")
	}
	ex := &aggExec{spec: spec, decoded: decoded, pred: pred, boxed: boxed}
	var outFields []value.Field
	for _, name := range spec.GroupBy {
		di := decoded.Index(name)
		if di < 0 {
			return nil, fmt.Errorf("table: group-by field %q not in scan schema", name)
		}
		ex.keyIdx = append(ex.keyIdx, di)
		outFields = append(outFields, decoded.Fields[di])
	}
	if len(ex.keyIdx) > 0 {
		ks, err := value.NewSchema(outFields[:len(ex.keyIdx)]...)
		if err != nil {
			return nil, err
		}
		ex.keySchema = ks
	}
	for _, it := range spec.Items {
		ie := aggItemExec{fn: it.Func, expr: it.Expr, kind: value.Int}
		if it.Expr != nil {
			kind, err := algebra.ExprType(it.Expr, decoded)
			if err != nil {
				return nil, err
			}
			ie.kind = kind
			if !boxed {
				ce, err := algebra.CompileExpr(it.Expr, decoded)
				if err != nil {
					return nil, err
				}
				ie.ce = ce
			}
		} else if it.Func != AggCount {
			return nil, fmt.Errorf("table: %s needs an expression", it.Func)
		}
		outKind := ie.kind
		switch it.Func {
		case AggCount:
			outKind = value.Int
		case AggAvg:
			outKind = value.Float
		}
		outFields = append(outFields, value.Field{Name: it.outName(), Type: outKind})
		ex.items = append(ex.items, ie)
	}
	out, err := value.NewSchema(outFields...)
	if err != nil {
		return nil, fmt.Errorf("table: aggregate outputs collide: %w (name them with \"... as alias\")", err)
	}
	ex.out = out
	return ex, nil
}

// aggAcc is one item's per-group accumulators, indexed by dense group id.
// count tracks non-null inputs (rows for count(*)); count == 0 doubles as
// the "min/max unseen" sentinel.
type aggAcc struct {
	sumI       []int64
	sumF       []float64
	minI, maxI []int64
	minF, maxF []float64
	count      []int64
}

// grow extends the accumulators to n groups (zero-valued).
func (a *aggAcc) grow(it *aggItemExec, n int) {
	for len(a.count) < n {
		a.count = append(a.count, 0)
	}
	if it.expr == nil {
		return
	}
	isFloat := it.kind == value.Float
	switch it.fn {
	case AggSum, AggAvg:
		if isFloat {
			for len(a.sumF) < n {
				a.sumF = append(a.sumF, 0)
			}
		} else {
			for len(a.sumI) < n {
				a.sumI = append(a.sumI, 0)
			}
		}
	case AggMin, AggMax:
		if isFloat {
			for len(a.minF) < n {
				a.minF = append(a.minF, 0)
				a.maxF = append(a.maxF, 0)
			}
		} else {
			for len(a.minI) < n {
				a.minI = append(a.minI, 0)
				a.maxI = append(a.maxI, 0)
			}
		}
	}
}

// aggState is one aggregation state: a per-block partial or the final fold.
type aggState struct {
	// gt holds the typed group table (vectorized grouped mode).
	gt *vec.GroupTable
	// keys/kidx hold the boxed grouping (NoVectorize grouped mode): distinct
	// key tuples in first-seen order and a hash index over them.
	keys []value.Row
	kidx map[uint64][]int32
	// accs holds the per-item accumulators, parallel to exec.items.
	accs []aggAcc
}

// newState allocates a state for the exec.
func (ex *aggExec) newState() *aggState {
	st := &aggState{accs: make([]aggAcc, len(ex.items))}
	if len(ex.keyIdx) > 0 {
		if ex.boxed {
			st.kidx = make(map[uint64][]int32)
		} else {
			st.gt = vec.NewGroupTable(ex.keySchema)
		}
	} else {
		// Ungrouped: exactly one group, present even with zero input rows.
		for i := range st.accs {
			st.accs[i].grow(&ex.items[i], 1)
		}
	}
	return st
}

// ngroups returns the number of groups in the state.
func (st *aggState) ngroups(ex *aggExec) int {
	if len(ex.keyIdx) == 0 {
		return 1
	}
	if ex.boxed {
		return len(st.keys)
	}
	return st.gt.Len()
}

// aggScratch is one goroutine's reusable aggregation scratch.
type aggScratch struct {
	es      algebra.ExprScratch
	eval    vec.Vector
	gids    []int32
	mapping []int32
	keyCols []*vec.Vector
	keyBuf  value.Row
}

// observeBlock folds one block into a fresh partial state, choosing the
// vectorized or boxed executor.
func (ex *aggExec) observeBlock(p *part, readers []*segment.Reader, block int, filter *algebra.CompiledPred, vs *vecScratch, dec *rowDecoder, as *aggScratch) (*aggState, error) {
	if ex.boxed {
		return ex.observeBlockBoxed(p, readers, block, dec)
	}
	return ex.observeBlockVec(p, readers, block, filter, vs, as)
}

// observeBlockVec is the vectorized block fold: decode predicate columns,
// filter to a selection vector, decode only the key/input columns, assign
// group ids with the typed hash table, and run the typed kernels. Columns
// nothing needs are never decoded; when nothing at all is needed (bare
// count(*), no predicate) the block's pages are never read.
func (ex *aggExec) observeBlockVec(p *part, readers []*segment.Reader, block int, filter *algebra.CompiledPred, vs *vecScratch, as *aggScratch) (*aggState, error) {
	nrows := blockRowCount(p, block)
	if cap(vs.views) < len(p.entries) {
		vs.views = make([]*segment.BlockView, len(p.entries))
	}
	views := vs.views[:len(p.entries)]
	for si := range views {
		views[si] = nil
	}
	dec := batchPool.Get(ex.decoded)
	defer batchPool.Put(dec)
	if cap(vs.done) < ex.decoded.Arity() {
		vs.done = make([]bool, ex.decoded.Arity())
	}
	done := vs.done[:ex.decoded.Arity()]
	for i := range done {
		done[i] = false
	}
	// decodeInto fetches the owning segment's block bytes on first use, so a
	// fold that needs no columns performs no reads.
	decodeInto := func(di int) error {
		if done[di] {
			return nil
		}
		loc := p.fieldSeg[ex.decoded.Fields[di].Name]
		if views[loc[0]] == nil {
			bv, err := readers[loc[0]].View(block)
			if err != nil {
				return err
			}
			if bv.Rows() != nrows {
				return fmt.Errorf("table: block %d: segment %d holds %d rows, block metadata says %d",
					block, loc[0], bv.Rows(), nrows)
			}
			views[loc[0]] = bv
		}
		if err := views[loc[0]].DecodeCol(loc[1], &dec.Cols[di]); err != nil {
			return err
		}
		done[di] = true
		return nil
	}
	for _, di := range filter.Columns() {
		if err := decodeInto(di); err != nil {
			return nil, err
		}
	}
	nsel := nrows
	var sel []int32
	if !filter.Empty() {
		vs.sel = vec.FillSel(vs.sel, nrows)
		vs.sel = filter.Filter(dec, vs.sel)
		nsel = len(vs.sel)
		if nsel < nrows {
			sel = vs.sel
		}
	}
	st := ex.newState()
	if nsel == 0 {
		return st, nil
	}
	for _, di := range ex.keyIdx {
		if err := decodeInto(di); err != nil {
			return nil, err
		}
	}
	for i := range ex.items {
		if ex.items[i].ce == nil {
			continue
		}
		for _, di := range ex.items[i].ce.Columns() {
			if err := decodeInto(di); err != nil {
				return nil, err
			}
		}
	}
	var gids []int32
	if len(ex.keyIdx) > 0 {
		as.keyCols = as.keyCols[:0]
		for _, di := range ex.keyIdx {
			as.keyCols = append(as.keyCols, &dec.Cols[di])
		}
		as.gids = st.gt.GroupIDs(as.keyCols, sel, nrows, as.gids[:0])
		gids = as.gids
	}
	ngroups := st.ngroups(ex)
	for ii := range ex.items {
		it := &ex.items[ii]
		acc := &st.accs[ii]
		acc.grow(it, ngroups)
		if it.ce == nil {
			// count(*): selected rows per group; no column input.
			if gids == nil {
				acc.count[0] += int64(nsel)
			} else {
				vec.CountRowsGroups(nsel, nil, gids, acc.count)
			}
			continue
		}
		// Evaluate the expression densely over the selection: slot k of the
		// result belongs to selected row k, parallel to gids.
		if err := it.ce.EvalVec(dec, nrows, sel, &as.eval, &as.es); err != nil {
			return nil, err
		}
		ev := &as.eval
		isFloat := it.kind == value.Float
		switch it.fn {
		case AggCount:
			if gids == nil {
				acc.count[0] += vec.CountNonNull(ev.Len(), &ev.Nulls, nil)
			} else {
				vec.CountNonNullGroups(ev.Len(), &ev.Nulls, nil, gids, acc.count)
			}
		case AggSum, AggAvg:
			switch {
			case gids == nil && isFloat:
				s, n := vec.SumFloat64(ev.Float64s, &ev.Nulls, nil)
				acc.sumF[0] += s
				acc.count[0] += n
			case gids == nil:
				s, n := vec.SumInt64(ev.Int64s, &ev.Nulls, nil)
				acc.sumI[0] += s
				acc.count[0] += n
			case isFloat:
				vec.SumFloat64Groups(ev.Float64s, &ev.Nulls, nil, gids, acc.sumF, acc.count)
			default:
				vec.SumInt64Groups(ev.Int64s, &ev.Nulls, nil, gids, acc.sumI, acc.count)
			}
		case AggMin, AggMax:
			switch {
			case gids == nil && isFloat:
				mn, mx, n := vec.MinMaxFloat64(ev.Float64s, &ev.Nulls, nil)
				acc.foldMinMaxF(0, mn, mx, n)
			case gids == nil:
				mn, mx, n := vec.MinMaxInt64(ev.Int64s, &ev.Nulls, nil)
				acc.foldMinMaxI(0, mn, mx, n)
			case isFloat:
				vec.MinMaxFloat64Groups(ev.Float64s, &ev.Nulls, nil, gids, acc.minF, acc.maxF, acc.count)
			default:
				vec.MinMaxInt64Groups(ev.Int64s, &ev.Nulls, nil, gids, acc.minI, acc.maxI, acc.count)
			}
		}
	}
	return st, nil
}

// foldMinMaxI folds a (min, max, count) summary into group g.
func (a *aggAcc) foldMinMaxI(g int, mn, mx, n int64) {
	if n == 0 {
		return
	}
	if a.count[g] == 0 {
		a.minI[g], a.maxI[g] = mn, mx
	} else {
		if mn < a.minI[g] {
			a.minI[g] = mn
		}
		if mx > a.maxI[g] {
			a.maxI[g] = mx
		}
	}
	a.count[g] += n
}

// foldMinMaxF folds a float (min, max, count) summary into group g under
// value.CompareFloats ordering.
func (a *aggAcc) foldMinMaxF(g int, mn, mx float64, n int64) {
	if n == 0 {
		return
	}
	if a.count[g] == 0 {
		a.minF[g], a.maxF[g] = mn, mx
	} else {
		if value.CompareFloats(mn, a.minF[g]) < 0 {
			a.minF[g] = mn
		}
		if value.CompareFloats(mx, a.maxF[g]) > 0 {
			a.maxF[g] = mx
		}
	}
	a.count[g] += n
}

// observeBlockBoxed is the row-at-a-time oracle fold: decode boxed rows,
// filter with Predicate.Eval, evaluate expressions with EvalScalar, and
// accumulate per row. Same results as observeBlockVec, bit for bit.
func (ex *aggExec) observeBlockBoxed(p *part, readers []*segment.Reader, block int, dec *rowDecoder) (*aggState, error) {
	rows, err := dec.decodeBlockRows(p, readers, block, ex.decoded, ex.pred, nil, true)
	if err != nil {
		return nil, err
	}
	st := ex.newState()
	var key value.Row
	for _, row := range rows {
		g := 0
		if len(ex.keyIdx) > 0 {
			key = key[:0]
			for _, di := range ex.keyIdx {
				key = append(key, row[di])
			}
			g = st.boxedGroupID(ex, key)
		}
		for ii := range ex.items {
			it := &ex.items[ii]
			acc := &st.accs[ii]
			acc.grow(it, g+1)
			if it.expr == nil {
				acc.count[g]++
				continue
			}
			v, err := algebra.EvalScalar(it.expr, ex.decoded, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			switch it.fn {
			case AggCount:
				acc.count[g]++
			case AggSum, AggAvg:
				if it.kind == value.Float {
					acc.sumF[g] += v.Float()
				} else {
					acc.sumI[g] += v.Int()
				}
				acc.count[g]++
			case AggMin, AggMax:
				if it.kind == value.Float {
					acc.foldMinMaxF(g, v.Float(), v.Float(), 1)
				} else {
					acc.foldMinMaxI(g, v.Int(), v.Int(), 1)
				}
			}
		}
	}
	return st, nil
}

// boxedGroupID finds or inserts a boxed key tuple. Hashing canonicalizes
// float keys (-0 -> +0, one NaN) so it is consistent with value.Equal.
func (st *aggState) boxedGroupID(ex *aggExec, key value.Row) int {
	h := boxedKeyHash(key)
	for _, cand := range st.kidx[h] {
		if rowsEqualKeys(st.keys[cand], key) {
			return int(cand)
		}
	}
	id := int32(len(st.keys))
	st.keys = append(st.keys, key.Clone())
	st.kidx[h] = append(st.kidx[h], id)
	return int(id)
}

func rowsEqualKeys(a, b value.Row) bool {
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// boxedKeyHash hashes a key tuple consistently with value.Equal: floats
// canonicalize -0 and NaN; integral floats are distinct from ints only
// across kinds, which cannot collide within one typed column.
func boxedKeyHash(key value.Row) uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range key {
		var cell uint64
		switch v.Kind() {
		case value.Null:
			cell = 0x9e3779b97f4a7c15
		case value.Int, value.Bool:
			cell = mixCell(uint64(v.Int()))
		case value.Float:
			cell = mixCell(vec.CanonicalFloatBits(v.Float()))
		default:
			cell = v.Hash()
		}
		h = mixCell(h ^ cell)
	}
	return h
}

// mixCell is the SplitMix64 finalizer (same mixing as vec's GroupTable).
func mixCell(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// merge folds a partial state into st. Partials must be merged in stored
// block order — that order is what makes float sums deterministic across
// executors.
func (st *aggState) merge(ex *aggExec, part *aggState, as *aggScratch) {
	if len(ex.keyIdx) == 0 {
		for ii := range ex.items {
			st.accs[ii].mergeGroup(&ex.items[ii], 0, &part.accs[ii], 0)
		}
		return
	}
	if ex.boxed {
		for lg, key := range part.keys {
			fg := st.boxedGroupID(ex, key)
			for ii := range ex.items {
				st.accs[ii].grow(&ex.items[ii], fg+1)
				st.accs[ii].mergeGroup(&ex.items[ii], fg, &part.accs[ii], lg)
			}
		}
		return
	}
	n := part.gt.Len()
	if n == 0 {
		return
	}
	// Re-key the partial's groups into the final table: the mapping from
	// local to final group ids is just GroupIDs over the stored key tuples.
	as.mapping = st.gt.GroupIDs(part.gt.KeyCols(), nil, n, as.mapping[:0])
	ngroups := st.gt.Len()
	for ii := range ex.items {
		st.accs[ii].grow(&ex.items[ii], ngroups)
		for lg, fg := range as.mapping {
			st.accs[ii].mergeGroup(&ex.items[ii], int(fg), &part.accs[ii], lg)
		}
	}
}

// mergeGroup folds one partial group into one final group.
func (a *aggAcc) mergeGroup(it *aggItemExec, fg int, p *aggAcc, lg int) {
	if p.count[lg] == 0 {
		return
	}
	switch it.fn {
	case AggCount:
		a.count[fg] += p.count[lg]
	case AggSum, AggAvg:
		if it.kind == value.Float {
			a.sumF[fg] += p.sumF[lg]
		} else {
			a.sumI[fg] += p.sumI[lg]
		}
		a.count[fg] += p.count[lg]
	case AggMin, AggMax:
		if it.kind == value.Float {
			a.foldMinMaxF(fg, p.minF[lg], p.maxF[lg], p.count[lg])
		} else {
			a.foldMinMaxI(fg, p.minI[lg], p.maxI[lg], p.count[lg])
		}
	}
}

// resultRows materializes the final state as boxed rows under ex.out,
// sorted ascending by the group key columns.
func (ex *aggExec) resultRows(st *aggState) []value.Row {
	n := st.ngroups(ex)
	if len(ex.keyIdx) > 0 && !ex.boxed {
		// Late-created groups may not have grown every accumulator.
		for ii := range ex.items {
			st.accs[ii].grow(&ex.items[ii], n)
		}
	}
	rows := make([]value.Row, 0, n)
	for g := 0; g < n; g++ {
		row := make(value.Row, ex.out.Arity())
		for ki := range ex.keyIdx {
			if ex.boxed {
				row[ki] = st.keys[g][ki]
			} else {
				row[ki] = st.gt.Keys().Cols[ki].Value(g)
			}
		}
		base := len(ex.keyIdx)
		for ii := range ex.items {
			row[base+ii] = ex.items[ii].finalize(&st.accs[ii], g)
		}
		rows = append(rows, row)
	}
	if len(ex.keyIdx) > 0 {
		keys := make([]int, len(ex.keyIdx))
		for i := range keys {
			keys[i] = i
		}
		value.SortRows(rows, keys, nil)
	}
	return rows
}

// finalize boxes one item's result for group g.
func (it *aggItemExec) finalize(a *aggAcc, g int) value.Value {
	n := a.count[g]
	switch it.fn {
	case AggCount:
		return value.NewInt(n)
	case AggSum:
		if n == 0 {
			return value.NullValue()
		}
		if it.kind == value.Float {
			return value.NewFloat(a.sumF[g])
		}
		return value.NewInt(a.sumI[g])
	case AggMin:
		if n == 0 {
			return value.NullValue()
		}
		if it.kind == value.Float {
			return value.NewFloat(a.minF[g])
		}
		return value.NewInt(a.minI[g])
	case AggMax:
		if n == 0 {
			return value.NullValue()
		}
		if it.kind == value.Float {
			return value.NewFloat(a.maxF[g])
		}
		return value.NewInt(a.maxI[g])
	case AggAvg:
		if n == 0 {
			return value.NullValue()
		}
		if it.kind == value.Float {
			return value.NewFloat(a.sumF[g] / float64(n))
		}
		return value.NewFloat(float64(a.sumI[g]) / float64(n))
	}
	return value.NullValue()
}

// runAggregate drains the cursor's blocks through the aggregation executor
// and replaces the cursor's stream with the (sorted) result rows. Serial
// and parallel paths merge per-block partials in stored block order;
// quarantined blocks contribute nothing and are reported as usual.
func (c *Cursor) runAggregate() error {
	ex := c.agg
	final := ex.newState()
	var as aggScratch
	if c.par != nil {
		for {
			res, ok, err := c.par.next()
			if err != nil {
				c.exhausted = true
				return err
			}
			if !ok {
				break
			}
			if res.skipped || res.agg == nil {
				continue
			}
			final.merge(ex, res.agg, &as)
		}
	} else {
		observe := func(ref blockRef) (*aggState, error) {
			p := c.parts[ref.part]
			if err := c.rl.ensure(ref, p.readers); err != nil {
				return nil, err
			}
			return ex.observeBlock(p, p.readers, ref.block, c.filter, &c.vs, &c.dec, &as)
		}
		for _, ref := range c.blocks {
			ref := ref
			st, err := observe(ref)
			if err != nil {
				if c.quar == nil {
					return err
				}
				skipped, qerr := c.quar.handle(c.parts[ref.part], ref, err, func() error {
					st, err = observe(ref)
					return err
				})
				if qerr != nil {
					return qerr
				}
				if skipped {
					continue
				}
			}
			final.merge(ex, st, &as)
		}
	}
	c.schema = ex.out
	c.sorted, c.sortedPos = ex.resultRows(final), 0
	return nil
}
