package table

// Offline integrity checking: CheckIntegrity walks every table's segments
// and decodes every block, so damage is found before a query trips over it.
// The walk is read-only and runs under each table's shared lock (writers are
// excluded per table, readers are not). It never stops at the first problem:
// every issue is collected, typed and extent-addressed, which is what the
// quarantine path and an operator repairing a file both need.

import (
	"fmt"
	"sort"

	"rodentstore/internal/catalog"
	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
)

// IntegrityIssue is one problem found by CheckIntegrity, addressed down to
// the block when known.
type IntegrityIssue struct {
	// Table is the owning table ("" for store-level issues reported by
	// callers that append pager/WAL findings).
	Table string
	// Part locates the segment list: "main", "tail[N]", or a store-level
	// area name.
	Part string
	// Segment is the index within the part (-1 when not segment-scoped).
	Segment int
	// Extent is the damaged page run (zero when unknown).
	Extent pager.Extent
	// Block is the block index within the segment (-1 for whole-segment
	// issues).
	Block int
	// Err is the underlying error (typed corruption errors pass through).
	Err error
}

func (i IntegrityIssue) String() string {
	where := i.Part
	if i.Table != "" {
		where = i.Table + "/" + where
	}
	if i.Segment >= 0 {
		where = fmt.Sprintf("%s/seg%d", where, i.Segment)
	}
	if i.Block >= 0 {
		where = fmt.Sprintf("%s/block%d", where, i.Block)
	}
	return fmt.Sprintf("%s [%d,+%d): %v", where, i.Extent.Start, i.Extent.Count, i.Err)
}

// IntegrityReport is the outcome of an integrity walk.
type IntegrityReport struct {
	// Tables, Segments and Blocks count what the walk covered.
	Tables   int
	Segments int
	Blocks   int
	// Issues lists everything that failed to read or decode.
	Issues []IntegrityIssue
}

// OK reports whether the walk found no issues.
func (r *IntegrityReport) OK() bool { return len(r.Issues) == 0 }

// CheckIntegrity decodes every block of every table (main segments and tail
// batches, all columns) and reports each one that cannot be read. Damage
// does not stop the walk; only infrastructure failures (catalog unreadable,
// lock manager shut down) return a non-nil error alongside the partial
// report.
func (e *Engine) CheckIntegrity() (*IntegrityReport, error) {
	rep := &IntegrityReport{}
	names := e.cat.Names()
	sort.Strings(names)
	for _, name := range names {
		err := e.withLock(name, txn.Shared, func() error {
			tab, err := e.cat.Get(name)
			if err != nil {
				return err
			}
			rep.Tables++
			stored, err := storedSchema(tab)
			if err != nil {
				rep.Issues = append(rep.Issues, IntegrityIssue{
					Table: name, Part: "schema", Segment: -1, Block: -1, Err: err,
				})
				return nil
			}
			e.checkEntries(rep, name, "main", tab.Segments, stored)
			for ri, run := range tab.Runs {
				e.checkEntries(rep, name, fmt.Sprintf("run[%d]L%d", ri, run.Level), run.Segments, stored)
			}
			for ti, batch := range tab.Tails {
				e.checkEntries(rep, name, fmt.Sprintf("tail[%d]", ti), batch, stored)
			}
			return nil
		})
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// checkEntries walks one part's segment list, decoding every block of every
// segment.
func (e *Engine) checkEntries(rep *IntegrityReport, table, part string, entries []catalog.SegmentEntry, stored *value.Schema) {
	for si, entry := range entries {
		rep.Segments++
		ext := pager.Extent{Start: entry.Meta.ExtentStart, Count: entry.Meta.ExtentPages}
		issue := func(block int, err error) {
			rep.Issues = append(rep.Issues, IntegrityIssue{
				Table: table, Part: part, Segment: si, Extent: ext, Block: block, Err: err,
			})
		}
		fields := make([]value.Field, 0, len(entry.Fields))
		bad := false
		for _, f := range entry.Fields {
			i := stored.Index(f)
			if i < 0 {
				issue(-1, fmt.Errorf("segment field %q not in stored schema", f))
				bad = true
				break
			}
			fields = append(fields, stored.Fields[i])
		}
		if bad {
			continue
		}
		r, err := segment.NewReader(e.Source, entry.Meta, segment.Spec{Fields: fields, Codecs: entry.Codecs})
		if err != nil {
			issue(-1, err)
			continue
		}
		for bi := range entry.Meta.Blocks {
			rep.Blocks++
			if _, err := r.ReadBlock(bi, nil); err != nil {
				issue(bi, err)
			}
		}
	}
}
