package table

import (
	"errors"
	"sync"

	"rodentstore/internal/catalog"
)

// Background tail merging (paper §5's "reorganize only new data", run off
// the ingest path). Insert appends unorganized tail batches; when a table
// accumulates enough of them the engine's merge workers fold the tails —
// into the main rendering for plain layouts (Engine.Reorganize), or into
// the run hierarchy for layouts with a compaction policy (Engine.Compact,
// which folds one level at a time instead of rewriting the table). The
// worker pool lets compactions of different tables proceed concurrently;
// per table, the inflight set keeps folds serialized.
//
// The pool is opt-in (EnableAutoMerge); without it the synchronous path —
// calling Reorganize or Compact explicitly — is unchanged, which is what
// the paper experiments use.

// MergePolicy decides when a table's accumulated tails are folded by the
// background merge workers. Tables whose layout carries a compaction
// directive ignore the tail thresholds: their level-0 fold triggers at the
// policy's own fanout.
type MergePolicy struct {
	// MaxTails triggers a merge when the table has at least this many tail
	// batches (0 disables the batch-count trigger).
	MaxTails int
	// MaxTailRows triggers a merge when the tails hold at least this many
	// rows in total (0 disables the row-count trigger).
	MaxTailRows int64
	// Workers sizes the background pool (0 = defaultMergeWorkers). More
	// workers let merges of distinct tables overlap; a single table's
	// merges always serialize on its exclusive lock.
	Workers int
}

// DefaultMergePolicy keeps read amplification bounded without merging on
// every insert.
var DefaultMergePolicy = MergePolicy{MaxTails: 8}

// defaultMergeWorkers bounds background fold concurrency when the policy
// does not: enough to keep a few tables' merges overlapping without
// competing with query threads for the whole machine.
const defaultMergeWorkers = 4

// merger is the engine-owned background worker pool. Tables are enqueued at
// most once; a worker takes the oldest queued table that no other worker is
// already folding.
type merger struct {
	e      *Engine
	policy MergePolicy
	wg     sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []string
	queued   map[string]bool
	inflight map[string]bool
	pending  int // enqueued + in-flight merges (WaitMerges barrier)
	stopped  bool
	lastErr  error
}

// EnableAutoMerge starts the background merge pool with the given policy
// (zero-value trigger fields fall back to DefaultMergePolicy). Calling it
// again replaces the policy, stopping and restarting the pool.
func (e *Engine) EnableAutoMerge(p MergePolicy) {
	if p.MaxTails <= 0 && p.MaxTailRows <= 0 {
		workers := p.Workers
		p = DefaultMergePolicy
		p.Workers = workers
	}
	if p.Workers <= 0 {
		p.Workers = defaultMergeWorkers
	}
	e.DisableAutoMerge()
	m := &merger{
		e: e, policy: p,
		queued: make(map[string]bool), inflight: make(map[string]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	e.mergeMu.Lock()
	e.merge = m
	e.mergeMu.Unlock()
	m.wg.Add(p.Workers)
	for i := 0; i < p.Workers; i++ {
		go m.worker()
	}
}

// DisableAutoMerge stops the merge pool, draining any queued merges first.
// No-op when auto merge is off.
func (e *Engine) DisableAutoMerge() {
	e.mergeMu.Lock()
	m := e.merge
	e.merge = nil
	e.mergeMu.Unlock()
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// WaitMerges blocks until every merge enqueued so far has completed. It is
// a measurement/test barrier; production inserters never wait.
func (e *Engine) WaitMerges() {
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return
	}
	m.mu.Lock()
	for m.pending > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// MergeErr returns the most recent background merge failure, if any.
// Inserts never fail because a merge did; errors surface here. A table
// dropped while queued is not a failure (see worker).
func (e *Engine) MergeErr() error {
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// mergeActive reports whether a background merge pool is running.
func (e *Engine) mergeActive() bool {
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	return e.merge != nil
}

// mergeTrigger reports whether tab's tails exceed the active policy. The
// caller holds the exclusive table lock, so reading Tails is safe.
func (e *Engine) mergeTrigger(tails int, tailRows int64) bool {
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return false
	}
	if m.policy.MaxTails > 0 && tails >= m.policy.MaxTails {
		return true
	}
	return m.policy.MaxTailRows > 0 && tailRows >= m.policy.MaxTailRows
}

// maybeAutoMerge enqueues the table for a background merge. Called by
// Insert after its publish phase observed the policy trigger.
func (e *Engine) maybeAutoMerge(name string, trigger bool) {
	if !trigger {
		return
	}
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return
	}
	m.enqueue(name)
}

func (m *merger) enqueue(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped || m.queued[name] {
		return
	}
	m.queued[name] = true
	m.queue = append(m.queue, name)
	m.pending++
	m.cond.Broadcast()
}

// takeLocked pops the oldest queued table no other worker is folding and
// marks it inflight. Caller holds m.mu.
func (m *merger) takeLocked() (string, bool) {
	for i, name := range m.queue {
		if m.inflight[name] {
			continue
		}
		m.queue = append(m.queue[:i], m.queue[i+1:]...)
		delete(m.queued, name)
		m.inflight[name] = true
		return name, true
	}
	return "", false
}

func (m *merger) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		name, ok := m.takeLocked()
		for !ok {
			if m.stopped && len(m.queue) == 0 {
				m.mu.Unlock()
				return
			}
			m.cond.Wait()
			name, ok = m.takeLocked()
		}
		m.mu.Unlock()

		// Compact folds leveled-storage tables incrementally and falls back
		// to a full Reorganize for plain layouts.
		err := m.e.Compact(name)

		m.mu.Lock()
		delete(m.inflight, name)
		if err != nil && !errors.Is(err, catalog.ErrNotFound) {
			// A table dropped while queued (or mid-dequeue) is a benign
			// no-op, not a failure worth latching.
			m.lastErr = err
		}
		m.pending--
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}
