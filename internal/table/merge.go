package table

import "sync"

// Background tail merging (paper §5's "reorganize only new data", run off
// the ingest path). Insert appends unorganized tail batches; when a table
// accumulates enough of them the engine's merge worker folds the tails into
// the main rendering with the same machinery as an explicit Reorganize —
// the levelled tail-then-merge shape of log-structured stores, amortized in
// the background so committers never pay for reorganization.
//
// The worker is opt-in (EnableAutoMerge); without it the synchronous path —
// calling Reorganize explicitly — is unchanged, which is what the paper
// experiments use.

// MergePolicy decides when a table's accumulated tails are folded into the
// main rendering by the background merge worker.
type MergePolicy struct {
	// MaxTails triggers a merge when the table has at least this many tail
	// batches (0 disables the batch-count trigger).
	MaxTails int
	// MaxTailRows triggers a merge when the tails hold at least this many
	// rows in total (0 disables the row-count trigger).
	MaxTailRows int64
}

// DefaultMergePolicy keeps read amplification bounded without merging on
// every insert.
var DefaultMergePolicy = MergePolicy{MaxTails: 8}

// merger is the engine-owned background worker. Tables are enqueued at most
// once; the worker folds each with Engine.Reorganize (which takes the
// exclusive table lock, so merges serialize with inserts per table but not
// across tables).
type merger struct {
	e      *Engine
	policy MergePolicy

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []string
	queued  map[string]bool
	pending int // enqueued + in-flight merges (WaitMerges barrier)
	stopped bool
	lastErr error
	done    chan struct{}
}

// EnableAutoMerge starts the background tail-merge worker with the given
// policy (zero-value fields fall back to DefaultMergePolicy). Calling it
// again replaces the policy, stopping and restarting the worker.
func (e *Engine) EnableAutoMerge(p MergePolicy) {
	if p.MaxTails <= 0 && p.MaxTailRows <= 0 {
		p = DefaultMergePolicy
	}
	e.DisableAutoMerge()
	m := &merger{e: e, policy: p, queued: make(map[string]bool), done: make(chan struct{})}
	m.cond = sync.NewCond(&m.mu)
	e.mergeMu.Lock()
	e.merge = m
	e.mergeMu.Unlock()
	go m.run()
}

// DisableAutoMerge stops the merge worker, draining any queued merges
// first. No-op when auto merge is off.
func (e *Engine) DisableAutoMerge() {
	e.mergeMu.Lock()
	m := e.merge
	e.merge = nil
	e.mergeMu.Unlock()
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	<-m.done
}

// WaitMerges blocks until every merge enqueued so far has completed. It is
// a measurement/test barrier; production inserters never wait.
func (e *Engine) WaitMerges() {
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return
	}
	m.mu.Lock()
	for m.pending > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// MergeErr returns the most recent background merge failure, if any.
// Inserts never fail because a merge did; errors surface here.
func (e *Engine) MergeErr() error {
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// mergeTrigger reports whether tab's tails exceed the active policy. The
// caller holds the exclusive table lock, so reading Tails is safe.
func (e *Engine) mergeTrigger(tails int, tailRows int64) bool {
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return false
	}
	if m.policy.MaxTails > 0 && tails >= m.policy.MaxTails {
		return true
	}
	return m.policy.MaxTailRows > 0 && tailRows >= m.policy.MaxTailRows
}

// maybeAutoMerge enqueues the table for a background merge. Called by
// Insert after its publish phase observed the policy trigger.
func (e *Engine) maybeAutoMerge(name string, trigger bool) {
	if !trigger {
		return
	}
	e.mergeMu.Lock()
	m := e.merge
	e.mergeMu.Unlock()
	if m == nil {
		return
	}
	m.enqueue(name)
}

func (m *merger) enqueue(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped || m.queued[name] {
		return
	}
	m.queued[name] = true
	m.queue = append(m.queue, name)
	m.pending++
	m.cond.Broadcast()
}

func (m *merger) run() {
	defer close(m.done)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.stopped {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return // stopped and drained
		}
		name := m.queue[0]
		m.queue = m.queue[1:]
		delete(m.queued, name)
		m.mu.Unlock()

		err := m.e.Reorganize(name)

		m.mu.Lock()
		if err != nil {
			m.lastErr = err
		}
		m.pending--
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}
